package sdquery

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/core"
)

// Persistence: SDIndex and ShardedIndex serialize to a versioned binary
// format and load back bit-exactly — the reloaded index returns the same
// answers (ascending-ID tie-breaks included) and reports the same Bytes,
// because sealed segments round-trip their exact rows, global IDs, and
// tombstones, and their index structures rebuild deterministically. A
// persisted index therefore restarts without re-ingesting data or replaying
// updates: `cmd/sdquery -index file` serves queries straight from the file.
//
// The file's structural identity — roles, pairing layout, tree shape,
// shard partition — is authoritative; SDOptions passed to the Load
// functions configure runtime behavior only (scheduler, plan cache,
// memtable threshold, compaction, workers). Structural options (pairing,
// branching, angles, shard count) are ignored on load.

// fileMagic opens every persisted index; fileVersion versions the outer
// envelope (the core engine section carries its own version).
var fileMagic = [4]byte{'S', 'D', 'Q', 'X'}

const (
	fileVersion = 1

	kindSDIndex = 1
	kindSharded = 2
)

func writeHeader(w io.Writer, kind uint8) error {
	if _, err := w.Write(fileMagic[:]); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, [2]uint8{fileVersion, kind})
}

func readHeader(r io.Reader) (kind uint8, err error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return 0, fmt.Errorf("sdquery: load: %w", err)
	}
	if magic != fileMagic {
		return 0, fmt.Errorf("sdquery: load: not an SD-Index file (magic %q)", magic[:])
	}
	var vk [2]uint8
	if err := binary.Read(r, binary.LittleEndian, &vk); err != nil {
		return 0, fmt.Errorf("sdquery: load: %w", err)
	}
	if vk[0] != fileVersion {
		return 0, fmt.Errorf("sdquery: load: unsupported file version %d (have %d)", vk[0], fileVersion)
	}
	return vk[1], nil
}

// runtimeOptions projects an option list onto the knobs Load honors.
func runtimeOptions(opts []SDOption) (core.RuntimeOptions, sdConfig) {
	var cfg sdConfig
	for _, o := range opts {
		o(&cfg)
	}
	return core.RuntimeOptions{
		Scheduler:         cfg.sched,
		DisablePlanCache:  cfg.noPlanCache,
		MemtableSize:      cfg.memSize,
		DisableCompaction: cfg.noCompact,
		MaxSegmentRows:    cfg.maxSegRows,
	}, cfg
}

// Save serializes the index's current snapshot. Like every read path it is
// lock-free: concurrent queries, inserts, and compactions proceed
// unhindered, and the file captures exactly the rows live at the atomic
// snapshot acquisition.
func (s *SDIndex) Save(w io.Writer) error {
	if err := writeHeader(w, kindSDIndex); err != nil {
		return err
	}
	return s.eng.Save(w)
}

// LoadSDIndex reconstructs a saved SDIndex. See the package persistence
// notes for which options apply.
func LoadSDIndex(r io.Reader, opts ...SDOption) (*SDIndex, error) {
	br := bufio.NewReader(r)
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != kindSDIndex {
		return nil, fmt.Errorf("sdquery: load: file holds a sharded index; use LoadShardedIndex or Load")
	}
	return loadSDIndexBody(br, opts)
}

func loadSDIndexBody(r io.Reader, opts []SDOption) (*SDIndex, error) {
	opt, cfg := runtimeOptions(opts)
	var pool *workerPool
	if cfg.workersSet {
		pool = newWorkerPool(cfg.workers)
		opt.Pool = poolRunner{pool}
	}
	eng, err := core.Load(r, opt)
	if err != nil {
		if pool != nil {
			pool.close()
		}
		return nil, err
	}
	return &SDIndex{eng: eng, roles: eng.Roles(), pool: pool}, nil
}

// Save serializes the sharded index: the shard partition, the routing
// table, and every shard engine's snapshot. It briefly holds the routing
// lock so the cross-shard cut is consistent; queries keep flowing.
func (s *ShardedIndex) Save(w io.Writer) error {
	if err := writeHeader(w, kindSharded); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	hdr := []any{uint32(len(s.shards)), uint32(s.next), uint64(len(s.byGlobal))}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, s.byGlobal); err != nil {
		return err
	}
	for si, sh := range s.shards {
		if err := sh.eng.Save(w); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return nil
}

// LoadShardedIndex reconstructs a saved ShardedIndex. The shard partition
// comes from the file (WithShards is ignored); WithWorkers and the runtime
// engine knobs apply.
func LoadShardedIndex(r io.Reader, opts ...SDOption) (*ShardedIndex, error) {
	br := bufio.NewReader(r)
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	if kind != kindSharded {
		return nil, fmt.Errorf("sdquery: load: file holds a single-engine index; use LoadSDIndex or Load")
	}
	return loadShardedBody(br, opts)
}

func loadShardedBody(r io.Reader, opts []SDOption) (*ShardedIndex, error) {
	opt, cfg := runtimeOptions(opts)
	var shards, next uint32
	var rows uint64
	for _, v := range []any{&shards, &next, &rows} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return nil, fmt.Errorf("sdquery: load: %w", err)
		}
	}
	if shards == 0 || shards > 1<<20 || next >= shards || rows > 1<<31 {
		return nil, fmt.Errorf("sdquery: load: implausible shard header (%d shards, cursor %d, %d rows)", shards, next, rows)
	}
	s := &ShardedIndex{
		byGlobal: make([]int32, rows),
		next:     int(next),
		shards:   make([]*shard, shards),
	}
	if err := binary.Read(r, binary.LittleEndian, s.byGlobal); err != nil {
		return nil, fmt.Errorf("sdquery: load: %w", err)
	}
	for _, si := range s.byGlobal {
		if si < 0 || si >= int32(shards) {
			return nil, fmt.Errorf("sdquery: load: routing table names shard %d of %d", si, shards)
		}
	}
	for si := range s.shards {
		eng, err := core.Load(r, opt)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		s.shards[si] = &shard{eng: eng}
	}
	s.roles = s.shards[0].eng.Roles()
	s.pool = newWorkerPool(cfg.workers)
	return s, nil
}

// Load reconstructs whichever index kind the stream holds, dispatching on
// the file header — the convenient form for tools that serve any persisted
// index (cmd/sdquery -index).
func Load(r io.Reader, opts ...SDOption) (Engine, error) {
	br := bufio.NewReader(r)
	kind, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	switch kind {
	case kindSDIndex:
		return loadSDIndexBody(br, opts)
	case kindSharded:
		return loadShardedBody(br, opts)
	}
	return nil, fmt.Errorf("sdquery: load: unknown index kind %d", kind)
}
