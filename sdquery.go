package sdquery

import (
	"repro/internal/query"
)

// Role classifies one dimension of a query or an index.
type Role = query.Role

// Role values: Ignored dimensions do not contribute to the score; Attractive
// dimensions reward closeness (the set S of the paper); Repulsive dimensions
// reward distance (the set D).
const (
	Ignored    = query.Ignored
	Attractive = query.Attractive
	Repulsive  = query.Repulsive
)

// Query is a complete SD-Query: the query object, the answer size, and the
// per-dimension roles and weights (α for repulsive dimensions, β for
// attractive ones). All weights must be finite and non-negative, and at
// least one dimension must be active.
type Query struct {
	Point   []float64
	K       int
	Roles   []Role
	Weights []float64
}

func (q Query) spec() query.Spec {
	return query.Spec{Point: q.Point, K: q.K, Roles: q.Roles, Weights: q.Weights}
}

// Score evaluates the SD-score of a data point under this query (Eqn. 3 of
// the paper). Exposed for applications that post-process results.
func (q Query) Score(p []float64) float64 { return q.spec().Score(p) }

// Result is one answer: the dataset row index and its SD-score. Results are
// returned best-first.
type Result struct {
	ID    int
	Score float64
}

// Engine answers SD-Queries over a dataset. All provided engines return
// score-identical answers; they differ in indexing strategy and therefore
// speed. Every engine is safe for concurrent TopK calls. SDIndex and
// ShardedIndex additionally support fully concurrent updates: their
// queries read an atomically loaded snapshot of an immutable segment
// store (no lock on the read path), while Insert/Remove/compaction
// publish new snapshots without blocking readers. The baseline engines
// (scan, TA, BRS, PE) are read-only.
type Engine interface {
	// TopK returns the q.K highest-scoring points, best first. It returns
	// fewer results only when the dataset is smaller than q.K.
	TopK(q Query) ([]Result, error)
	// Len reports the number of indexed points.
	Len() int
}

func convertResults(in []query.Result) []Result {
	out := make([]Result, len(in))
	for i, r := range in {
		out[i] = Result{ID: r.ID, Score: r.Score}
	}
	return out
}
