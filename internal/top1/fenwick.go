package top1

// fenwick is a 1-based binary indexed tree over int counts, used for the
// k-skyband dominance filter.
type fenwick struct {
	tree []int
	n    int
	sum  int
}

func newFenwick(n int) *fenwick {
	return &fenwick{tree: make([]int, n+1), n: n}
}

// add increments the count at 1-based index i.
func (f *fenwick) add(i, delta int) {
	f.sum += delta
	for ; i <= f.n; i += i & (-i) {
		f.tree[i] += delta
	}
}

// prefix returns the sum of counts at indices 1..i. prefix(0) = 0.
func (f *fenwick) prefix(i int) int {
	s := 0
	for ; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// total returns the sum over all indices.
func (f *fenwick) total() int { return f.sum }
