// Package top1 implements the paper's §3 index structure: for a projection
// angle and answer size k fixed at build time, the x-axis is partitioned into
// regions inside which the identities of the k highest lower projections
// (and, symmetrically, the k lowest upper projections) never change. A query
// is then a binary search over the region boundaries followed by exact
// scoring of at most 2k candidates.
//
// # Geometry
//
// Working in the scaled intercept space of package geom, the lower
// projections of a point p trace the ∧-shaped function
//
//	f_p(x) = min(u_p + β·x, v_p − β·x)        (apex α·y_p at x = x_p)
//
// over query-axis positions x, and the upper projections trace the ∨-shaped
//
//	g_p(x) = max(v_p − β·x, u_p + β·x).
//
// For every point, SD-score(p, q) = max(f_p(x_q) − α·y_q, α·y_q − g_p(x_q)),
// with the maximum attained by the projection Eqn. 6 selects. The index
// therefore stores the regions of the k-level of the upper envelope of the
// f's and of the lower envelope of the g's (Claims 4 and 5). The ∨ case
// reduces to the ∧ case under the transform (u, v) → (−v, −u), so a single
// sweep implementation serves both.
package top1

import (
	"math"
	"sort"

	"repro/internal/pq"
)

// item is one point in intercept space.
type item struct {
	id   int32
	u, v float64
}

// Region is a maximal x-interval on which the identity of the top-k envelope
// functions is constant. A region covers (previous XEnd, XEnd]; the final
// region has XEnd = +Inf.
type Region struct {
	XEnd float64
	IDs  []int32 // envelope leaders, best first at region entry
}

// sortForSweep orders items for the line sweep: by u descending (the order
// of the ∧ functions at x = −∞), ties by v descending (the eventual order at
// x = +∞), final ties by id for determinism.
func sortForSweep(items []item) {
	sort.Slice(items, func(i, j int) bool {
		a, b := items[i], items[j]
		if a.u != b.u {
			return a.u > b.u
		}
		if a.v != b.v {
			return a.v > b.v
		}
		return a.id < b.id
	})
}

// sweepTop1 is Algorithm 1 of the paper: a single left-to-right scan that
// emits the regions of the (k = 1) upper envelope. items must already be in
// sortForSweep order. beta is the normalized attractive weight sin θ.
func sweepTop1(items []item, beta float64) []Region {
	if len(items) == 0 {
		return nil
	}
	if beta == 0 {
		// θ = 0°: every f_p is the constant α·y_p; one region.
		return []Region{{XEnd: math.Inf(1), IDs: []int32{items[0].id}}}
	}
	var regions []Region
	cur := items[0]
	for _, next := range items[1:] {
		// next overtakes cur iff next's llp intersects cur's rlp, i.e.
		// iff next's v-branch ends above cur's (Claim 5); otherwise next
		// is dominated by cur everywhere and is discarded.
		if next.v > cur.v {
			x := (cur.v - next.u) / (2 * beta)
			regions = append(regions, Region{XEnd: x, IDs: []int32{cur.id}})
			cur = next
		}
	}
	return append(regions, Region{XEnd: math.Inf(1), IDs: []int32{cur.id}})
}

// sweepTopK generalizes the sweep to arbitrary fixed k: it records a region
// boundary whenever the *membership* of the top-k level changes. (The paper
// also re-indexes pure order changes inside the top k; membership suffices
// because queries re-score the k candidates exactly, and it yields strictly
// fewer regions.) items must be in sortForSweep order.
//
// The sweep first drops every point that is k-dominated (≥ k other points
// with u' ≥ u and v' ≥ v dominate it everywhere — it can never enter the
// k-level), then runs a Bentley–Ottmann pass over the surviving "k-skyband":
// the order of two ∧ functions changes at most once, at
// x = (v_hi − u_lo) / 2β, so adjacent-swap events drive the level.
func sweepTopK(items []item, beta float64, k int) []Region {
	if len(items) == 0 {
		return nil
	}
	if k == 1 {
		return sweepTop1(items, beta)
	}
	if beta == 0 {
		ids := make([]int32, 0, k)
		for i := 0; i < len(items) && i < k; i++ {
			ids = append(ids, items[i].id)
		}
		return []Region{{XEnd: math.Inf(1), IDs: ids}}
	}
	items = skyband(items, k)
	n := len(items)
	if n <= k {
		ids := make([]int32, n)
		for i, it := range items {
			ids[i] = it.id
		}
		return []Region{{XEnd: math.Inf(1), IDs: ids}}
	}

	order := make([]int32, n) // order[j] = item index at height rank j (0 = highest)
	pos := make([]int32, n)   // pos[i] = current rank of item i
	for i := range order {
		order[i] = int32(i)
		pos[i] = int32(i)
	}

	type event struct {
		x    float64
		a, b int32 // item indices; a directly above b when scheduled
	}
	events := pq.NewHeap(func(p, q event) bool { return p.x < q.x })
	schedule := func(j int) { // candidate crossing between ranks j and j+1
		if j < 0 || j+1 >= n {
			return
		}
		a, b := items[order[j]], items[order[j+1]]
		if a.u > b.u && a.v < b.v {
			events.Push(event{x: (a.v - b.u) / (2 * beta), a: order[j], b: order[j+1]})
		}
	}
	for j := 0; j < n-1; j++ {
		schedule(j)
	}

	snapshot := func() []int32 {
		ids := make([]int32, k)
		for i := 0; i < k; i++ {
			ids[i] = items[order[i]].id
		}
		return ids
	}

	var regions []Region
	lastX := math.Inf(-1)
	current := snapshot()
	for events.Len() > 0 {
		e := events.Pop()
		if pos[e.a]+1 != pos[e.b] {
			continue // stale: the pair is no longer adjacent
		}
		j := int(pos[e.a])
		x := math.Max(e.x, lastX) // guard against float non-monotonicity
		lastX = x
		order[j], order[j+1] = order[j+1], order[j]
		pos[e.a], pos[e.b] = pos[e.b], pos[e.a]
		if j+1 == k { // the swap crossed the k-level: membership changed
			// On coincident events the intermediate set is valid only on a
			// zero-width interval; keep the region emitted at the first
			// event and let the final snapshot flow into the next region.
			if len(regions) == 0 || regions[len(regions)-1].XEnd != x {
				regions = append(regions, Region{XEnd: x, IDs: current})
			}
			current = snapshot()
		}
		schedule(j - 1)
		schedule(j + 1)
	}
	return append(regions, Region{XEnd: math.Inf(1), IDs: current})
}

// skyband retains the points not dominated (u' ≥ u and v' ≥ v) by k or more
// others. Input must be in sortForSweep order; the order is preserved in the
// output. Runs in O(n log n) using a Fenwick tree over compressed v-ranks.
func skyband(items []item, k int) []item {
	n := len(items)
	vs := make([]float64, n)
	for i, it := range items {
		vs[i] = it.v
	}
	sort.Float64s(vs)
	rank := func(v float64) int { // number of distinct values ≤ v, 1-based rank
		return sort.SearchFloat64s(vs, math.Nextafter(v, math.Inf(1)))
	}
	fw := newFenwick(n)
	kept := items[:0:0]
	for _, it := range items {
		r := rank(it.v)
		// Points processed earlier have u ≥ it.u (sweep order); those with
		// v ≥ it.v dominate it. fw.prefix(r-1) counts v-ranks < r.
		dominators := fw.total() - fw.prefix(r-1)
		if dominators < k {
			kept = append(kept, it)
		}
		fw.add(r, 1)
	}
	return kept
}

// regionAt returns the region whose x-interval contains x. regions must be
// non-empty with ascending XEnd and a final +Inf sentinel.
func regionAt(regions []Region, x float64) *Region {
	i := sort.Search(len(regions), func(i int) bool { return regions[i].XEnd >= x })
	if i == len(regions) {
		i = len(regions) - 1 // x = +Inf edge: the sentinel region
	}
	return &regions[i]
}

// envelopeValue evaluates f_p(x) = min(u + βx, v − βx) — used by tests and
// by the insert fast path to compare an apex against the current envelope.
func envelopeValue(it item, beta, x float64) float64 {
	return math.Min(it.u+beta*x, it.v-beta*x)
}
