package top1

import (
	"fmt"
	"math"
	"sort"
	"unsafe"

	"repro/internal/geom"
	"repro/internal/pq"
)

// Index is the §3 structure: projection angle and k are fixed at build time.
// It stores two region arrays — one for the k highest lower projections, one
// for the k lowest upper projections — and answers queries with two binary
// searches plus exact scoring of at most 2k candidates.
//
// An Index retains the full point set in two sweep-ordered arrays so that
// updates can repair the envelopes without re-deriving or re-sorting
// projections (the paper's delete relies on the same retention). Only the
// region arrays are consulted at query time.
//
// Point IDs are caller-assigned; the index never enforces uniqueness on
// Insert (duplicate IDs simply behave as distinct points that tie).
type Index struct {
	k                 int
	rawAlpha, rawBeta float64
	angle             geom.Angle
	upperRegions      []region // k-level of the lower-projection ∧ envelope
	upperLeaders      map[int32]bool
	lowerRegions      []region // k-level of the upper-projection ∨ envelope
	lowerLeaders      map[int32]bool
	byU               []geom.Point // sortForSweep order of the ∧ sweep
	byV               []geom.Point // sortForSweep order of the ∨ sweep (transformed)
	// pending buffers inserted points. Queries scan it alongside the
	// region candidates (it is capped at maxPending entries), and it is
	// merged into the sorted arrays — with a single re-sweep — only when
	// full or when a deletion forces one. This keeps every insert at
	// O(log n) amortized, the behavior the paper's update analysis
	// promises for the common dominated-point case, without an O(n)
	// envelope repair on the uncommon case.
	pending []geom.Point
}

// maxPending bounds the insert buffer: large enough that re-sweeps amortize
// into insignificance (one O(n) merge per thousands of inserts), small
// enough that scanning the buffer per query stays trivial next to the two
// binary searches.
func (idx *Index) maxPending() int {
	if n := len(idx.byU) >> 8; n > 4096 {
		return n
	}
	return 4096
}

// region is the query-time payload: the leader points themselves, so that a
// query never needs an ID-to-point lookup.
type region struct {
	xEnd float64
	pts  []geom.Point
}

// Result is one answer of a query: the point and its raw SD-score under the
// weights the index was built with.
type Result struct {
	Point geom.Point
	Score float64
}

// Config fixes the build-time parameters of the index.
type Config struct {
	Alpha float64 // weight of the repulsive (y) dimension; must be ≥ 0
	Beta  float64 // weight of the attractive (x) dimension; must be ≥ 0
	K     int     // answer size; must be ≥ 1
}

// Build constructs the index over the given points. Coordinates must be
// finite and IDs must fit in int32.
func Build(points []geom.Point, cfg Config) (*Index, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("top1: k must be ≥ 1, got %d", cfg.K)
	}
	angle, err := geom.NewAngle(cfg.Alpha, cfg.Beta)
	if err != nil {
		return nil, fmt.Errorf("top1: %w", err)
	}
	for _, p := range points {
		if err := checkPoint(p); err != nil {
			return nil, err
		}
	}
	idx := &Index{
		k:        cfg.K,
		rawAlpha: cfg.Alpha,
		rawBeta:  cfg.Beta,
		angle:    angle,
		byU:      append([]geom.Point(nil), points...),
		byV:      append([]geom.Point(nil), points...),
	}
	idx.sortArrays()
	idx.resweepUpper()
	idx.resweepLower()
	return idx, nil
}

func checkPoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("top1: point %d has non-finite coordinates (%v, %v)", p.ID, p.X, p.Y)
	}
	if p.ID < 0 || int64(p.ID) > math.MaxInt32 {
		return fmt.Errorf("top1: point ID %d outside int32 range", p.ID)
	}
	return nil
}

// upperItem maps a point to ∧-sweep intercept space.
func (idx *Index) upperItem(p geom.Point) item {
	return item{id: int32(p.ID), u: idx.angle.U(p.X, p.Y), v: idx.angle.V(p.X, p.Y)}
}

// lowerItem maps a point to the transformed space in which the ∨ min-envelope
// becomes a ∧ max-envelope: (u, v) → (−v, −u). Query-axis x is unchanged by
// the transform, so region boundaries remain directly comparable.
func (idx *Index) lowerItem(p geom.Point) item {
	return item{id: int32(p.ID), u: -idx.angle.V(p.X, p.Y), v: -idx.angle.U(p.X, p.Y)}
}

func (idx *Index) sortArrays() {
	sort.Slice(idx.byU, func(i, j int) bool {
		return lessItem(idx.upperItem(idx.byU[i]), idx.upperItem(idx.byU[j]))
	})
	sort.Slice(idx.byV, func(i, j int) bool {
		return lessItem(idx.lowerItem(idx.byV[i]), idx.lowerItem(idx.byV[j]))
	})
}

// resweepUpper/resweepLower rebuild one region array from the corresponding
// retained sorted array. O(n) plus sweep events; no sorting.
func (idx *Index) resweepUpper() {
	idx.upperRegions = idx.sweepFrom(idx.byU, idx.upperItem)
	idx.upperLeaders = leaderSet(idx.upperRegions)
}

func (idx *Index) resweepLower() {
	idx.lowerRegions = idx.sweepFrom(idx.byV, idx.lowerItem)
	idx.lowerLeaders = leaderSet(idx.lowerRegions)
}

func (idx *Index) sweepFrom(pts []geom.Point, toItem func(geom.Point) item) []region {
	items := make([]item, len(pts))
	byID := make(map[int32]geom.Point, 2*idx.k)
	for i, p := range pts {
		items[i] = toItem(p)
	}
	raw := sweepTopK(items, idx.angle.Beta, idx.k)
	// Resolve leader IDs to point copies. Leaders are few; collect them in
	// one pass over the raw regions, then one pass over the points.
	need := make(map[int32]bool)
	for _, r := range raw {
		for _, id := range r.IDs {
			need[id] = true
		}
	}
	for _, p := range pts {
		if need[int32(p.ID)] {
			byID[int32(p.ID)] = p
		}
	}
	out := make([]region, len(raw))
	for i, r := range raw {
		leaders := make([]geom.Point, len(r.IDs))
		for j, id := range r.IDs {
			leaders[j] = byID[id]
		}
		out[i] = region{xEnd: r.XEnd, pts: leaders}
	}
	return out
}

func leaderSet(regions []region) map[int32]bool {
	set := make(map[int32]bool)
	for _, r := range regions {
		for _, p := range r.pts {
			set[int32(p.ID)] = true
		}
	}
	return set
}

// K returns the answer size the index was built for.
func (idx *Index) K() int { return idx.k }

// Len returns the number of indexed points.
func (idx *Index) Len() int { return len(idx.byU) + len(idx.pending) }

// Regions returns the region counts of the two envelope arrays; exposed for
// the memory-footprint experiments.
func (idx *Index) Regions() (upper, lower int) {
	return len(idx.upperRegions), len(idx.lowerRegions)
}

// score computes the raw SD-score under the build-time weights.
func (idx *Index) score(p, q geom.Point) float64 {
	return idx.rawAlpha*math.Abs(p.Y-q.Y) - idx.rawBeta*math.Abs(p.X-q.X)
}

func regionPtsAt(regions []region, x float64) []geom.Point {
	if len(regions) == 0 {
		return nil
	}
	i := sort.Search(len(regions), func(i int) bool { return regions[i].xEnd >= x })
	if i == len(regions) {
		i = len(regions) - 1 // x = +Inf: the sentinel region
	}
	return regions[i].pts
}

// Query returns the top-k points for query q, best first. Scores are in the
// raw (unnormalized) weight scale. It returns fewer than k results only when
// the index holds fewer than k points.
func (idx *Index) Query(q geom.Point) []Result {
	if len(idx.byU)+len(idx.pending) == 0 {
		return nil
	}
	collector := pq.NewTopK[geom.Point](idx.k)
	seen := make(map[int32]bool, 2*idx.k)
	consider := func(p geom.Point) {
		if seen[int32(p.ID)] {
			return
		}
		seen[int32(p.ID)] = true
		collector.Add(p, idx.score(p, q))
	}
	for _, p := range idx.pending {
		consider(p)
	}
	for _, p := range regionPtsAt(idx.upperRegions, q.X) {
		consider(p)
	}
	for _, p := range regionPtsAt(idx.lowerRegions, q.X) {
		consider(p)
	}
	scored := collector.Results()
	out := make([]Result, len(scored))
	for i, s := range scored {
		out[i] = Result{Point: s.Item, Score: s.Score}
	}
	return out
}

// Insert adds a point to the pending buffer in O(1); when the buffer
// reaches its cap the sorted arrays absorb it in one merge pass and both
// envelopes are re-swept, so the amortized insert cost is O(log n) — the
// behavior behind the paper's Figure 8b. Queries remain exact throughout:
// buffered points are scored directly alongside the region candidates.
func (idx *Index) Insert(p geom.Point) error {
	if err := checkPoint(p); err != nil {
		return err
	}
	idx.pending = append(idx.pending, p)
	if len(idx.pending) > idx.maxPending() {
		idx.flushPending()
		idx.resweepUpper()
		idx.resweepLower()
	}
	return nil
}

// flushPending merges the buffered dominated inserts into the sorted arrays
// (sort the buffer, one merge pass per array).
func (idx *Index) flushPending() {
	if len(idx.pending) == 0 {
		return
	}
	add := idx.pending
	idx.pending = nil
	idx.byU = mergeSorted(idx.byU, add, idx.upperItem)
	idx.byV = mergeSorted(idx.byV, add, idx.lowerItem)
}

// mergeSorted merges unsorted extra points into a sortForSweep-ordered base.
func mergeSorted(base, extra []geom.Point, toItem func(geom.Point) item) []geom.Point {
	extra = append([]geom.Point(nil), extra...)
	sort.Slice(extra, func(i, j int) bool { return lessItem(toItem(extra[i]), toItem(extra[j])) })
	out := make([]geom.Point, 0, len(base)+len(extra))
	i, j := 0, 0
	for i < len(base) && j < len(extra) {
		if lessItem(toItem(base[i]), toItem(extra[j])) {
			out = append(out, base[i])
			i++
		} else {
			out = append(out, extra[j])
			j++
		}
	}
	out = append(out, base[i:]...)
	return append(out, extra[j:]...)
}

// Delete removes the given point (matched by ID at its coordinates).
// Deleting a non-leader point splices the sorted arrays (or the pending
// buffer); deleting an envelope leader flushes the buffer — a buffered
// point may become the new leader — and re-sweeps from the retained arrays
// (O(n), no re-sorting). It reports whether the point was found.
func (idx *Index) Delete(p geom.Point) bool {
	for i, q := range idx.pending {
		if q.ID == p.ID && q.X == p.X && q.Y == p.Y {
			idx.pending = append(idx.pending[:i], idx.pending[i+1:]...)
			return true
		}
	}
	n := len(idx.byU)
	idx.byU = spliceOut(idx.byU, p, idx.upperItem)
	if len(idx.byU) == n {
		return false
	}
	idx.byV = spliceOut(idx.byV, p, idx.lowerItem)
	if idx.upperLeaders[int32(p.ID)] || idx.lowerLeaders[int32(p.ID)] {
		// The deleted point shaped an envelope. Absorb the buffer (one of
		// its points may be the new leader) and re-sweep both envelopes —
		// once buffered points enter the sorted arrays they are only
		// reachable through the region indexes.
		idx.flushPending()
		idx.resweepUpper()
		idx.resweepLower()
	}
	return true
}

func spliceIn(pts []geom.Point, p geom.Point, toItem func(geom.Point) item) []geom.Point {
	target := toItem(p)
	i := sort.Search(len(pts), func(i int) bool { return !lessItem(toItem(pts[i]), target) })
	pts = append(pts, geom.Point{})
	copy(pts[i+1:], pts[i:])
	pts[i] = p
	return pts
}

func spliceOut(pts []geom.Point, p geom.Point, toItem func(geom.Point) item) []geom.Point {
	target := toItem(p)
	i := sort.Search(len(pts), func(i int) bool { return !lessItem(toItem(pts[i]), target) })
	for i < len(pts) && pts[i].ID != p.ID {
		if it := toItem(pts[i]); it.u != target.u || it.v != target.v {
			return pts // past the tie run: point not present
		}
		i++ // walk over intercept ties to the exact ID
	}
	if i == len(pts) {
		return pts
	}
	copy(pts[i:], pts[i+1:])
	return pts[:len(pts)-1]
}

// lessItem is the sortForSweep order as a two-item comparison.
func lessItem(a, b item) bool {
	if a.u != b.u {
		return a.u > b.u
	}
	if a.v != b.v {
		return a.v > b.v
	}
	return a.id < b.id
}

// RegionBytes estimates the memory held by the query-time structures (the
// two region arrays) — the quantity the paper's O(kn) storage analysis
// bounds and Figure 8h plots.
func (idx *Index) RegionBytes() int {
	total := 0
	ptSize := int(unsafe.Sizeof(geom.Point{}))
	for _, rs := range [][]region{idx.upperRegions, idx.lowerRegions} {
		total += len(rs) * int(unsafe.Sizeof(region{}))
		for _, r := range rs {
			total += len(r.pts) * ptSize
		}
	}
	return total
}

// TotalBytes estimates the full resident size of the index, including the
// sweep-ordered point arrays and the pending buffer retained for updates.
func (idx *Index) TotalBytes() int {
	ptSize := int(unsafe.Sizeof(geom.Point{}))
	return idx.RegionBytes() + (len(idx.byU)+len(idx.byV)+len(idx.pending))*ptSize
}
