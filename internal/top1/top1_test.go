package top1

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

const eps = 1e-9

// scanTopK is the ground truth: exact scores for every point, best k.
func scanTopK(pts []geom.Point, q geom.Point, alpha, beta float64, k int) []float64 {
	scores := make([]float64, len(pts))
	for i, p := range pts {
		scores[i] = alpha*math.Abs(p.Y-q.Y) - beta*math.Abs(p.X-q.X)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

func randomPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: i, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
	}
	return pts
}

func checkAgainstScan(t *testing.T, idx *Index, pts []geom.Point, q geom.Point, alpha, beta float64, k int) {
	t.Helper()
	got := idx.Query(q)
	want := scanTopK(pts, q, alpha, beta, k)
	if len(got) != len(want) {
		t.Fatalf("query %+v: got %d results, want %d", q, len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i].Score-want[i]) > eps*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("query %+v result %d: score %v, want %v (point %+v)",
				q, i, got[i].Score, want[i], got[i].Point)
		}
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	good := []geom.Point{{ID: 0, X: 1, Y: 1}}
	if _, err := Build(good, Config{Alpha: 1, Beta: 1, K: 0}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := Build(good, Config{Alpha: -1, Beta: 1, K: 1}); err == nil {
		t.Error("negative alpha: want error")
	}
	if _, err := Build([]geom.Point{{ID: 0, X: math.NaN(), Y: 0}}, Config{Alpha: 1, Beta: 1, K: 1}); err == nil {
		t.Error("NaN coordinate: want error")
	}
	if _, err := Build([]geom.Point{{ID: -1, X: 0, Y: 0}}, Config{Alpha: 1, Beta: 1, K: 1}); err == nil {
		t.Error("negative ID: want error")
	}
}

func TestEmptyIndex(t *testing.T) {
	idx, err := Build(nil, Config{Alpha: 1, Beta: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res := idx.Query(geom.Point{X: 0, Y: 0}); res != nil {
		t.Fatalf("empty index query = %v, want nil", res)
	}
}

func TestSinglePoint(t *testing.T) {
	pts := []geom.Point{{ID: 7, X: 2, Y: 3}}
	idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	res := idx.Query(geom.Point{X: 0, Y: 0})
	if len(res) != 1 || res[0].Point.ID != 7 {
		t.Fatalf("got %+v, want the single point", res)
	}
	if want := 3.0 - 2.0; math.Abs(res[0].Score-want) > eps {
		t.Fatalf("score = %v, want %v", res[0].Score, want)
	}
}

// TestPaperFigure3Regions reproduces the worked example after Claim 5: with
// the Figure-3 layout, the highest-lower-projection envelope has exactly
// three regions led by p2, p1, p3, and p4/p5 are discarded.
func TestPaperFigure3Regions(t *testing.T) {
	// Reconstructed layout: p2 leftmost and high, p1 middle and highest,
	// p3 right and high, p4/p5 low points dominated everywhere.
	pts := []geom.Point{
		{ID: 1, X: 4, Y: 10}, // p1: tallest apex
		{ID: 2, X: -6, Y: 8}, // p2: leads far left
		{ID: 3, X: 14, Y: 8}, // p3: leads far right
		{ID: 4, X: -1, Y: 2}, // p4: dominated
		{ID: 5, X: 9, Y: 1},  // p5: dominated
	}
	idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	upper, _ := idx.Regions()
	if upper != 3 {
		t.Fatalf("upper envelope has %d regions, want 3", upper)
	}
	var leaders []int
	for _, r := range idx.upperRegions {
		leaders = append(leaders, r.pts[0].ID)
	}
	want := []int{2, 1, 3}
	for i := range want {
		if leaders[i] != want[i] {
			t.Fatalf("region leaders = %v, want %v", leaders, want)
		}
	}
	if idx.upperLeaders[4] || idx.upperLeaders[5] {
		t.Fatal("dominated points p4/p5 should not be envelope leaders")
	}
}

func TestTop1MatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 120; trial++ {
		n := rng.Intn(300) + 1
		pts := randomPoints(rng, n)
		alpha, beta := rng.Float64()+0.01, rng.Float64()+0.01
		idx, err := Build(pts, Config{Alpha: alpha, Beta: beta, K: 1})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 20; qi++ {
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			checkAgainstScan(t, idx, pts, q, alpha, beta, 1)
		}
	}
}

func TestTopKFixedMatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(200) + 1
		k := rng.Intn(8) + 1
		pts := randomPoints(rng, n)
		alpha, beta := rng.Float64()+0.01, rng.Float64()+0.01
		idx, err := Build(pts, Config{Alpha: alpha, Beta: beta, K: k})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 15; qi++ {
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			checkAgainstScan(t, idx, pts, q, alpha, beta, k)
		}
	}
}

func TestDegenerateAngles(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pts := randomPoints(rng, 200)
	cases := []struct{ alpha, beta float64 }{
		{1, 0}, // θ = 0°: pure repulsive 1D
		{0, 1}, // θ = 90°: pure attractive 1D (nearest-x)
	}
	for _, c := range cases {
		for _, k := range []int{1, 3} {
			idx, err := Build(pts, Config{Alpha: c.alpha, Beta: c.beta, K: k})
			if err != nil {
				t.Fatal(err)
			}
			for qi := 0; qi < 25; qi++ {
				q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
				checkAgainstScan(t, idx, pts, q, c.alpha, c.beta, k)
			}
		}
	}
}

func TestDuplicateAndCollinearPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	pts := []geom.Point{
		{ID: 0, X: 1, Y: 1}, {ID: 1, X: 1, Y: 1}, {ID: 2, X: 1, Y: 1}, // exact duplicates
		{ID: 3, X: 0, Y: 0}, {ID: 4, X: 2, Y: 2}, {ID: 5, X: 3, Y: 3}, // collinear at 45°
		{ID: 6, X: -1, Y: 1}, {ID: 7, X: -2, Y: 2},
	}
	for _, k := range []int{1, 2, 4, 8} {
		idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: k})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 30; qi++ {
			q := geom.Point{X: rng.NormFloat64() * 3, Y: rng.NormFloat64() * 3}
			checkAgainstScan(t, idx, pts, q, 1, 1, k)
		}
	}
}

func TestKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	pts := randomPoints(rng, 5)
	idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 0, Y: 0}
	res := idx.Query(q)
	if len(res) != 5 {
		t.Fatalf("got %d results, want all 5 points", len(res))
	}
	checkAgainstScan(t, idx, pts, q, 1, 1, 10)
}

func TestInsertMaintainsCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for _, k := range []int{1, 3} {
		pts := randomPoints(rng, 50)
		idx, err := Build(pts, Config{Alpha: 1, Beta: 0.5, K: k})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 120; i++ {
			p := geom.Point{ID: 1000 + i, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
			if err := idx.Insert(p); err != nil {
				t.Fatal(err)
			}
			pts = append(pts, p)
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			checkAgainstScan(t, idx, pts, q, 1, 0.5, k)
		}
		if idx.Len() != len(pts) {
			t.Fatalf("Len = %d, want %d", idx.Len(), len(pts))
		}
	}
}

func TestDeleteMaintainsCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for _, k := range []int{1, 3} {
		pts := randomPoints(rng, 150)
		idx, err := Build(pts, Config{Alpha: 0.7, Beta: 1, K: k})
		if err != nil {
			t.Fatal(err)
		}
		for len(pts) > 1 {
			victim := rng.Intn(len(pts))
			if !idx.Delete(pts[victim]) {
				t.Fatalf("Delete(%+v) = false, want true", pts[victim])
			}
			pts = append(pts[:victim], pts[victim+1:]...)
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			checkAgainstScan(t, idx, pts, q, 0.7, 1, k)
			if len(pts)%37 != 0 {
				continue
			}
		}
	}
}

func TestDeleteUnknownPoint(t *testing.T) {
	pts := []geom.Point{{ID: 0, X: 1, Y: 1}}
	idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Delete(geom.Point{ID: 99, X: 5, Y: 5}) {
		t.Fatal("Delete of unknown point returned true")
	}
	if idx.Len() != 1 {
		t.Fatalf("Len = %d after failed delete, want 1", idx.Len())
	}
}

func TestMixedInsertDeleteChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	pts := randomPoints(rng, 80)
	idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	nextID := 1000
	for step := 0; step < 200; step++ {
		if len(pts) > 0 && rng.Intn(2) == 0 {
			victim := rng.Intn(len(pts))
			idx.Delete(pts[victim])
			pts = append(pts[:victim], pts[victim+1:]...)
		} else {
			p := geom.Point{ID: nextID, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
			nextID++
			if err := idx.Insert(p); err != nil {
				t.Fatal(err)
			}
			pts = append(pts, p)
		}
		if step%10 == 0 && len(pts) > 0 {
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			checkAgainstScan(t, idx, pts, q, 1, 1, 2)
		}
	}
}

func TestRegionBoundariesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		pts := randomPoints(rng, 400)
		k := rng.Intn(5) + 1
		idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: k})
		if err != nil {
			t.Fatal(err)
		}
		for _, regions := range [][]region{idx.upperRegions, idx.lowerRegions} {
			if len(regions) == 0 {
				t.Fatal("no regions for non-empty index")
			}
			for i := 1; i < len(regions); i++ {
				if regions[i].xEnd < regions[i-1].xEnd {
					t.Fatalf("region boundaries not sorted: %v then %v",
						regions[i-1].xEnd, regions[i].xEnd)
				}
			}
			if !math.IsInf(regions[len(regions)-1].xEnd, 1) {
				t.Fatal("final region must extend to +Inf")
			}
			for _, r := range regions {
				if len(r.pts) == 0 || len(r.pts) > k {
					t.Fatalf("region holds %d leaders, want 1..%d", len(r.pts), k)
				}
			}
		}
	}
}

// TestLinearStorageBound checks the O(n) region-count guarantee for k=1
// (Claim 5: at most one region per point and envelope).
func TestLinearStorageBound(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	pts := randomPoints(rng, 3000)
	idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	upper, lower := idx.Regions()
	if upper > len(pts) || lower > len(pts) {
		t.Fatalf("region counts (%d, %d) exceed n=%d", upper, lower, len(pts))
	}
	if idx.RegionBytes() <= 0 || idx.TotalBytes() <= idx.RegionBytes() {
		t.Fatal("byte accounting inconsistent")
	}
}

func TestSkybandFilter(t *testing.T) {
	// Points on a descending staircase: nothing dominates anything.
	var items []item
	for i := 0; i < 10; i++ {
		items = append(items, item{id: int32(i), u: float64(10 - i), v: float64(i)})
	}
	sortForSweep(items)
	if got := len(skyband(items, 1)); got != 10 {
		t.Fatalf("staircase skyband size = %d, want 10", got)
	}
	// A dominated point: u and v both below another's.
	items = []item{{id: 0, u: 5, v: 5}, {id: 1, u: 4, v: 4}, {id: 2, u: 6, v: 3}}
	sortForSweep(items)
	kept := skyband(items, 1)
	for _, it := range kept {
		if it.id == 1 {
			t.Fatal("dominated point survived 1-skyband")
		}
	}
	// With k=2 the same point survives (only one dominator).
	kept = skyband(items, 2)
	found := false
	for _, it := range kept {
		if it.id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("point with one dominator dropped from 2-skyband")
	}
}

func TestFenwick(t *testing.T) {
	f := newFenwick(10)
	f.add(3, 1)
	f.add(7, 2)
	f.add(10, 1)
	if got := f.prefix(2); got != 0 {
		t.Fatalf("prefix(2) = %d, want 0", got)
	}
	if got := f.prefix(3); got != 1 {
		t.Fatalf("prefix(3) = %d, want 1", got)
	}
	if got := f.prefix(9); got != 3 {
		t.Fatalf("prefix(9) = %d, want 3", got)
	}
	if got := f.total(); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
}

func TestQueryAtRegionBoundary(t *testing.T) {
	// Two apexes of equal height: the boundary is the midpoint; a query
	// exactly there must still return a score-correct answer.
	pts := []geom.Point{{ID: 0, X: -2, Y: 4}, {ID: 1, X: 2, Y: 4}}
	idx, err := Build(pts, Config{Alpha: 1, Beta: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstScan(t, idx, pts, geom.Point{X: 0, Y: 0}, 1, 1, 1)
	checkAgainstScan(t, idx, pts, geom.Point{X: -2, Y: 0}, 1, 1, 1)
	checkAgainstScan(t, idx, pts, geom.Point{X: 100, Y: 0}, 1, 1, 1)
	checkAgainstScan(t, idx, pts, geom.Point{X: -100, Y: 0}, 1, 1, 1)
}
