package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= eps*scale
}

func TestNewAngleRejectsBadWeights(t *testing.T) {
	cases := []struct{ alpha, beta float64 }{
		{-1, 1}, {1, -1}, {0, 0},
		{math.NaN(), 1}, {1, math.NaN()},
		{math.Inf(1), 1}, {1, math.Inf(-1)},
	}
	for _, c := range cases {
		if _, err := NewAngle(c.alpha, c.beta); err == nil {
			t.Errorf("NewAngle(%v, %v): want error, got nil", c.alpha, c.beta)
		}
	}
}

func TestNewAngleNormalizes(t *testing.T) {
	a, err := NewAngle(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(a.Alpha, 0.6) || !approxEq(a.Beta, 0.8) {
		t.Fatalf("NewAngle(3,4) = %+v, want (0.6, 0.8)", a)
	}
	if !approxEq(Scale(3, 4), 5) {
		t.Fatalf("Scale(3,4) = %v, want 5", Scale(3, 4))
	}
}

func TestAngleFromDegreesEndpoints(t *testing.T) {
	a0, err := AngleFromDegrees(0)
	if err != nil || a0.Alpha != 1 || a0.Beta != 0 {
		t.Fatalf("AngleFromDegrees(0) = %+v err=%v, want exact (1,0)", a0, err)
	}
	a90, err := AngleFromDegrees(90)
	if err != nil || a90.Alpha != 0 || a90.Beta != 1 {
		t.Fatalf("AngleFromDegrees(90) = %+v err=%v, want exact (0,1)", a90, err)
	}
	if _, err := AngleFromDegrees(-1); err == nil {
		t.Error("AngleFromDegrees(-1): want error")
	}
	if _, err := AngleFromDegrees(91); err == nil {
		t.Error("AngleFromDegrees(91): want error")
	}
	a45 := MustAngle(1, 1)
	if !approxEq(a45.Degrees(), 45) {
		t.Fatalf("MustAngle(1,1).Degrees() = %v, want 45", a45.Degrees())
	}
}

// TestPaperIntroExample checks the worked example after Definition 1:
// with α = β = 1, SD-score(p1, q1) = 3 and SD-score(p3, q2) = 2 for the
// Figure-1 layout (phylogeny = attractive x, habitat = repulsive y).
func TestPaperIntroExample(t *testing.T) {
	// Raw (unnormalized) α = β = 1: scores scale by 1/√2 after
	// normalization, so compare against scaled expectations.
	a := MustAngle(1, 1)
	scale := Scale(1, 1)
	q1 := Point{X: 1, Y: 1}
	p1 := Point{X: 1, Y: 4} // same phylogeny, habitat distance 3
	if got := a.Score(p1, q1) * scale; !approxEq(got, 3) {
		t.Fatalf("SD-score(p1,q1) = %v, want 3", got)
	}
	q2 := Point{X: 5, Y: 1}
	p3 := Point{X: 5, Y: 3}
	if got := a.Score(p3, q2) * scale; !approxEq(got, 2) {
		t.Fatalf("SD-score(p3,q2) = %v, want 2", got)
	}
}

func TestSelectProjectionQuadrants(t *testing.T) {
	q := Point{X: 0, Y: 0}
	cases := []struct {
		p    Point
		want Kind
	}{
		{Point{X: 1, Y: 1}, LLP},   // right of axis, above query
		{Point{X: 1, Y: -1}, LUP},  // right of axis, below query
		{Point{X: -1, Y: 1}, RLP},  // left of axis, above query
		{Point{X: -1, Y: -1}, RUP}, // left of axis, below query
		{Point{X: 0, Y: 0}, LLP},   // boundary: x and y ties go to llp
		{Point{X: 0, Y: -1}, LUP},
	}
	for _, c := range cases {
		if got := SelectProjection(c.p, q); got != c.want {
			t.Errorf("SelectProjection(%+v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{LLP: "llp", RLP: "rlp", LUP: "lup", RUP: "rup"}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if !LLP.Lower() || !RLP.Lower() || LUP.Lower() || RUP.Lower() {
		t.Error("Kind.Lower misclassifies")
	}
}

func randomAngle(rng *rand.Rand) Angle {
	switch rng.Intn(5) {
	case 0:
		return Angle{Alpha: 1, Beta: 0} // θ = 0°
	case 1:
		return Angle{Alpha: 0, Beta: 1} // θ = 90°
	default:
		return MustAngle(rng.Float64()+1e-9, rng.Float64()+1e-9)
	}
}

func randomPoint(rng *rand.Rand) Point {
	return Point{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 10}
}

// TestClaim2And3ScoreViaProjection: for every configuration, the score
// computed from the selected projection's axis intersection equals the
// directly computed SD-score. This covers Claim 2 (positive scores: the
// projection is the isoline) and Claim 3 (negative scores: the projection
// still carries the score).
func TestClaim2And3ScoreViaProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20000; trial++ {
		a := randomAngle(rng)
		p, q := randomPoint(rng), randomPoint(rng)
		direct := a.Score(p, q)
		viaProj := a.ScoreViaProjection(p, q)
		if !approxEq(direct, viaProj) {
			t.Fatalf("trial %d: angle %+v p=%+v q=%+v: direct %v != viaProjection %v",
				trial, a, p, q, direct, viaProj)
		}
	}
}

// TestClaim1Straddling: whenever q lies between p's two projected points on
// the axis, the score is non-positive — and conversely, a positive score
// implies no straddling.
func TestClaim1Straddling(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20000; trial++ {
		a := randomAngle(rng)
		p, q := randomPoint(rng), randomPoint(rng)
		score := a.Score(p, q)
		straddles := a.StraddlesAxis(p, q)
		if straddles && score > eps {
			t.Fatalf("trial %d: straddling but positive score %v (p=%+v q=%+v angle=%+v)",
				trial, score, p, q, a)
		}
		if !straddles && score < -eps {
			t.Fatalf("trial %d: negative score %v without straddling (p=%+v q=%+v angle=%+v)",
				trial, score, p, q, a)
		}
	}
}

// TestClaim4TopKFromExtremeProjections: the top-k answer for a random query
// is always contained in the union of the k highest lower-projection keys
// and the k lowest upper-projection keys on the query's axis — computed per
// the side-dependent projection selection of Eqn. 6.
func TestClaim4TopKFromExtremeProjections(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		a := randomAngle(rng)
		n := rng.Intn(60) + 5
		k := rng.Intn(n) + 1
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = randomPoint(rng)
			pts[i].ID = i
		}
		q := randomPoint(rng)

		// Brute-force top-k by score (IDs, allowing score ties to swap).
		all := make([]scored2, n)
		for i, p := range pts {
			all[i] = scored2{p.ID, a.Score(p, q)}
		}
		// kth best score
		kth := kthLargest(all, k)

		// Candidate set from projections.
		var lower, upper []scored2
		for _, p := range pts {
			kind := SelectProjection(p, q)
			key := a.Key(p, q.X, kind)
			if kind.Lower() {
				lower = append(lower, scored2{p.ID, key})
			} else {
				upper = append(upper, scored2{p.ID, key})
			}
		}
		cand := make(map[int]bool)
		for _, s := range topByKey(lower, k, true) {
			cand[s.id] = true
		}
		for _, s := range topByKey(upper, k, false) {
			cand[s.id] = true
		}
		// Every point scoring strictly above kth must be in the candidates;
		// points tied at kth must have at least k candidates covering them.
		for _, s := range all {
			if s.score > kth+eps && !cand[s.id] {
				t.Fatalf("trial %d: point %d with score %v (kth=%v) missing from projection candidates",
					trial, s.id, s.score, kth)
			}
		}
	}
}

func kthLargest(all []scored2, k int) float64 {
	scoresCopy := make([]float64, len(all))
	for i, s := range all {
		scoresCopy[i] = s.score
	}
	// simple selection: sort descending
	for i := 0; i < k; i++ {
		maxIdx := i
		for j := i + 1; j < len(scoresCopy); j++ {
			if scoresCopy[j] > scoresCopy[maxIdx] {
				maxIdx = j
			}
		}
		scoresCopy[i], scoresCopy[maxIdx] = scoresCopy[maxIdx], scoresCopy[i]
	}
	return scoresCopy[k-1]
}

type scored2 struct {
	id    int
	score float64
}

func topByKey(in []scored2, k int, highest bool) []scored2 {
	out := make([]scored2, len(in))
	copy(out, in)
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if highest && out[j].score > out[best].score {
				best = j
			}
			if !highest && out[j].score < out[best].score {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestKeyMatchesProjectedHeight: for finite θ < 90°, the scaled key equals
// α times the geometric intersection height of the projection ray with the
// axis.
func TestKeyMatchesProjectedHeight(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10000; trial++ {
		a := MustAngle(rng.Float64()+0.05, rng.Float64()+0.05)
		p, q := randomPoint(rng), randomPoint(rng)
		s := a.Beta / a.Alpha // slope tan θ
		dx := math.Abs(p.X - q.X)
		// geometric heights
		lowerY := p.Y - s*dx
		upperY := p.Y + s*dx
		var lowerKind, upperKind Kind
		if p.X >= q.X {
			lowerKind, upperKind = LLP, LUP
		} else {
			lowerKind, upperKind = RLP, RUP
		}
		if got := a.Key(p, q.X, lowerKind); !approxEq(got, a.Alpha*lowerY) {
			t.Fatalf("lower key %v != α·y' %v", got, a.Alpha*lowerY)
		}
		if got := a.Key(p, q.X, upperKind); !approxEq(got, a.Alpha*upperY) {
			t.Fatalf("upper key %v != α·y' %v", got, a.Alpha*upperY)
		}
	}
}

// TestSingleCrossingProperty verifies observation 2 of §4.2 (the basis of
// Claim 6): if p1 scores at least p2 at θ1 and p2 scores at least p1 at
// θ2 > θ1, then p2 scores at least p1 at every θ3 > θ2.
func TestSingleCrossingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 5000; trial++ {
		p1, p2, q := randomPoint(rng), randomPoint(rng), randomPoint(rng)
		d1, d2, d3 := rng.Float64()*90, rng.Float64()*90, rng.Float64()*90
		if d1 > d2 {
			d1, d2 = d2, d1
		}
		if d2 > d3 {
			d2, d3 = d3, d2
			if d1 > d2 {
				d1, d2 = d2, d1
			}
		}
		a1, _ := AngleFromDegrees(d1)
		a2, _ := AngleFromDegrees(d2)
		a3, _ := AngleFromDegrees(d3)
		if a1.Score(p1, q) >= a1.Score(p2, q) && a2.Score(p2, q) >= a2.Score(p1, q) {
			if a3.Score(p2, q) < a3.Score(p1, q)-eps {
				t.Fatalf("single-crossing violated: p1=%+v p2=%+v q=%+v θ=(%v,%v,%v)",
					p1, p2, q, d1, d2, d3)
			}
		}
	}
}

// Quick-check that normalization preserves ranking: for any weights and any
// two points, the normalized score order equals the raw score order.
func TestNormalizationPreservesOrderQuick(t *testing.T) {
	property := func(ax, bx, px1, py1, px2, py2, qx, qy float64) bool {
		alpha := math.Abs(math.Mod(ax, 10)) + 0.01
		beta := math.Abs(math.Mod(bx, 10)) + 0.01
		a := MustAngle(alpha, beta)
		p1 := Point{X: clampT(px1), Y: clampT(py1)}
		p2 := Point{X: clampT(px2), Y: clampT(py2)}
		q := Point{X: clampT(qx), Y: clampT(qy)}
		raw1 := alpha*math.Abs(p1.Y-q.Y) - beta*math.Abs(p1.X-q.X)
		raw2 := alpha*math.Abs(p2.Y-q.Y) - beta*math.Abs(p2.X-q.X)
		n1, n2 := a.Score(p1, q), a.Score(p2, q)
		if raw1 < raw2 && n1 > n2+eps {
			return false
		}
		if raw1 > raw2 && n1 < n2-eps {
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func clampT(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1000)
}
