// Package geom implements the 2D projection geometry underlying the SD-Query
// index structures of Ranu & Singh (PVLDB 2011): isoline projections at angle
// θ = arctan(β/α), the projection-selection rule (Eqn. 6 of the paper), and
// the score identities stated as Claims 1–4.
//
// # Convention
//
// Within a 2D subproblem the y dimension is repulsive (weight α ≥ 0, larger
// |Δy| is better) and the x dimension is attractive (weight β ≥ 0, smaller
// |Δx| is better):
//
//	SD-score(p, q) = α·|y_p − y_q| − β·|x_p − x_q|
//
// # The u/v reformulation
//
// Every point has four projections (llp, rlp, lup, rup) — rays leaving the
// point at angle θ. Projections of the same kind are parallel, so their
// relative order is captured by their intercepts. Scaling by α to stay finite
// at θ = 90°, the two intercept values per point are
//
//	u(p) = α·y_p − β·x_p   (shared by llp and rup)
//	v(p) = α·y_p + β·x_p   (shared by rlp and lup)
//
// For a query axis x = x_q, a projection of p meets the axis at scaled height
// key = u(p) + β·x_q (llp, rup) or key = v(p) − β·x_q (rlp, lup), and
//
//	SD-score(p, q) = key_lower − α·y_q   when y_p ≥ y_q (lower projection)
//	SD-score(p, q) = α·y_q − key_upper   when y_p <  y_q (upper projection)
//
// with no further case analysis: the "negative score" configurations of the
// paper's Claims 1 and 3 satisfy the same identities.
package geom

import (
	"fmt"
	"math"
)

// Point is a 2D point with an identifier into the owning dataset.
type Point struct {
	ID int
	X  float64 // attractive dimension
	Y  float64 // repulsive dimension
}

// Angle is a normalized projection angle. Alpha = cos θ weights the repulsive
// (y) dimension, Beta = sin θ the attractive (x) dimension, with θ ∈ [0°, 90°].
// Normalization only rescales scores (by 1/hypot(α, β)); it never changes the
// ranking, and it keeps all intercept arithmetic finite at the endpoints.
type Angle struct {
	Alpha float64 // cos θ, weight of the repulsive dimension
	Beta  float64 // sin θ, weight of the attractive dimension
}

// NewAngle normalizes arbitrary non-negative weights (alpha for the repulsive
// dimension, beta for the attractive one) onto the unit circle. It returns an
// error if either weight is negative, non-finite, or both are zero.
func NewAngle(alpha, beta float64) (Angle, error) {
	if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.IsNaN(beta) || math.IsInf(beta, 0) {
		return Angle{}, fmt.Errorf("geom: non-finite weights alpha=%v beta=%v", alpha, beta)
	}
	if alpha < 0 || beta < 0 {
		return Angle{}, fmt.Errorf("geom: negative weights alpha=%v beta=%v", alpha, beta)
	}
	h := math.Hypot(alpha, beta)
	if h == 0 {
		return Angle{}, fmt.Errorf("geom: both weights are zero")
	}
	return Angle{Alpha: alpha / h, Beta: beta / h}, nil
}

// MustAngle is NewAngle for statically known weights; it panics on error.
func MustAngle(alpha, beta float64) Angle {
	a, err := NewAngle(alpha, beta)
	if err != nil {
		panic(err)
	}
	return a
}

// AngleFromDegrees returns the normalized angle for θ degrees in [0, 90].
func AngleFromDegrees(deg float64) (Angle, error) {
	if math.IsNaN(deg) || deg < 0 || deg > 90 {
		return Angle{}, fmt.Errorf("geom: angle %v degrees outside [0, 90]", deg)
	}
	rad := deg * math.Pi / 180
	// sin/cos of exact endpoints must be exact for the degenerate-angle
	// code paths (β = 0 and α = 0) to behave as pure 1D scoring.
	switch deg {
	case 0:
		return Angle{Alpha: 1, Beta: 0}, nil
	case 90:
		return Angle{Alpha: 0, Beta: 1}, nil
	}
	return Angle{Alpha: math.Cos(rad), Beta: math.Sin(rad)}, nil
}

// Degrees returns θ in degrees.
func (a Angle) Degrees() float64 { return math.Atan2(a.Beta, a.Alpha) * 180 / math.Pi }

// Scale returns the factor by which normalized scores must be multiplied to
// recover scores under the original (alpha, beta) weights.
func Scale(alpha, beta float64) float64 { return math.Hypot(alpha, beta) }

// U returns the llp/rup intercept α·y − β·x.
func (a Angle) U(x, y float64) float64 { return a.Alpha*y - a.Beta*x }

// V returns the rlp/lup intercept α·y + β·x.
func (a Angle) V(x, y float64) float64 { return a.Alpha*y + a.Beta*x }

// Score returns the normalized SD-score α·|y_p − y_q| − β·|x_p − x_q|.
func (a Angle) Score(p, q Point) float64 {
	return a.Alpha*math.Abs(p.Y-q.Y) - a.Beta*math.Abs(p.X-q.X)
}

// Kind identifies one of the four projections of a point (Definition 4).
type Kind uint8

const (
	// LLP is the left lower projection: the ray leaving the point toward
	// smaller x and smaller y. It can only meet query axes at x_q ≤ x_p.
	LLP Kind = iota
	// RLP is the right lower projection (larger x, smaller y); x_q ≥ x_p.
	RLP
	// LUP is the left upper projection (smaller x, larger y); x_q ≤ x_p.
	LUP
	// RUP is the right upper projection (larger x, larger y); x_q ≥ x_p.
	RUP
)

// String returns the paper's abbreviation for the projection kind.
func (k Kind) String() string {
	switch k {
	case LLP:
		return "llp"
	case RLP:
		return "rlp"
	case LUP:
		return "lup"
	case RUP:
		return "rup"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Lower reports whether the projection descends from the point.
func (k Kind) Lower() bool { return k == LLP || k == RLP }

// SelectProjection returns the projection of p that carries p's score onto
// q's axis, following Eqn. 6 of the paper: points left of the axis use right
// projections and vice versa; points at or above the query use lower
// projections, points strictly below use upper ones.
func SelectProjection(p, q Point) Kind {
	if p.X >= q.X {
		if p.Y >= q.Y {
			return LLP
		}
		return LUP
	}
	if p.Y >= q.Y {
		return RLP
	}
	return RUP
}

// Key returns the scaled height α·y′ at which projection kind of p meets the
// axis x = xq. The caller is responsible for kind/axis compatibility (a left
// projection only exists for xq ≤ p.X); Key extrapolates the ray's line
// otherwise, which is exactly what the index bounds require.
func (a Angle) Key(p Point, xq float64, kind Kind) float64 {
	switch kind {
	case LLP, RUP:
		return a.U(p.X, p.Y) + a.Beta*xq
	default: // RLP, LUP
		return a.V(p.X, p.Y) - a.Beta*xq
	}
}

// ScoreViaProjection recomputes the normalized SD-score of p against q using
// only p's selected projection and q's axis, per Claims 2 and 3. It equals
// Score(p, q) exactly (up to floating-point association).
func (a Angle) ScoreViaProjection(p, q Point) float64 {
	kind := SelectProjection(p, q)
	key := a.Key(p, q.X, kind)
	if kind.Lower() {
		return key - a.Alpha*q.Y
	}
	return a.Alpha*q.Y - key
}

// StraddlesAxis reports the configuration of Claim 1: q lies on the axis
// segment between p's upper and lower projected points, which guarantees
// SD-score(p, q) ≤ 0.
func (a Angle) StraddlesAxis(p, q Point) bool {
	// α·y_p ± β·|x_p − x_q| are the two projected heights on the axis;
	// which of the u- and v-based keys is the lower one depends on the
	// side of the axis p lies on, so take min/max.
	h1 := a.Key(p, q.X, LLP) // α·y_p + β·(x_q − x_p)
	h2 := a.Key(p, q.X, LUP) // α·y_p − β·(x_q − x_p)
	lower, upper := math.Min(h1, h2), math.Max(h1, h2)
	qh := a.Alpha * q.Y
	return lower <= qh && qh <= upper
}
