package dimlist

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/query"
)

func column(data [][]float64, d int) []float64 {
	out := make([]float64, len(data))
	for i, p := range data {
		out[i] = p[d]
	}
	return out
}

func TestBuildSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	data := make([][]float64, 200)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	for d := 0; d < 2; d++ {
		l := Build(data, d)
		if l.Len() != len(data) {
			t.Fatalf("Len = %d, want %d", l.Len(), len(data))
		}
		for i := 1; i < len(l.vals); i++ {
			if l.vals[i] < l.vals[i-1] {
				t.Fatalf("dim %d not sorted at %d", d, i)
			}
		}
		for i, id := range l.ids {
			if data[id][d] != l.vals[i] {
				t.Fatalf("dim %d entry %d: id %d has value %v, list says %v",
					d, i, id, data[id][d], l.vals[i])
			}
		}
	}
}

// TestIterOrderAndBound: contributions are non-increasing, Bound always
// equals the next contribution, and the full enumeration covers every point.
func TestIterOrderAndBound(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(100) + 1
		data := make([][]float64, n)
		for i := range data {
			data[i] = []float64{rng.NormFloat64() * 3}
		}
		l := Build(data, 0)
		for _, attractive := range []bool{true, false} {
			qv := rng.NormFloat64() * 4
			w := rng.Float64() + 0.01
			it := l.NewIter(qv, w, attractive)
			var prev float64
			first := true
			seen := map[int32]bool{}
			for {
				b := it.Bound()
				id, contrib, ok := it.Next()
				if !ok {
					if !math.IsInf(b, -1) {
						t.Fatalf("Bound = %v on exhausted iter", b)
					}
					break
				}
				if b != contrib {
					t.Fatalf("Bound %v != next contribution %v", b, contrib)
				}
				if seen[id] {
					t.Fatalf("id %d emitted twice", id)
				}
				seen[id] = true
				want := w * math.Abs(data[id][0]-qv)
				if attractive {
					want = -want
				}
				if math.Abs(contrib-want) > 1e-12 {
					t.Fatalf("contribution %v, want %v", contrib, want)
				}
				if !first && contrib > prev+1e-12 {
					t.Fatalf("contributions increased: %v after %v", contrib, prev)
				}
				prev, first = contrib, false
			}
			if len(seen) != n {
				t.Fatalf("enumerated %d of %d points", len(seen), n)
			}
		}
	}
}

func TestIterMatchesSortedContributions(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	data := make([][]float64, 300)
	for i := range data {
		data[i] = []float64{rng.Float64() * 10}
	}
	l := Build(data, 0)
	for _, attractive := range []bool{true, false} {
		qv := 4.2
		it := l.NewIter(qv, 1, attractive)
		var got []float64
		for {
			_, c, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, c)
		}
		want := make([]float64, len(data))
		for i, p := range data {
			want[i] = math.Abs(p[0] - qv)
			if attractive {
				want[i] = -want[i]
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("attractive=%v position %d: %v, want %v", attractive, i, got[i], want[i])
			}
		}
	}
}

func TestInsertDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	data := [][]float64{{1}, {5}, {3}}
	l := Build(data, 0)
	l.Insert(2, 10)
	l.Insert(4, 11)
	if l.Len() != 5 {
		t.Fatalf("Len = %d, want 5", l.Len())
	}
	for i := 1; i < len(l.vals); i++ {
		if l.vals[i] < l.vals[i-1] {
			t.Fatal("not sorted after inserts")
		}
	}
	if !l.Delete(2, 10) {
		t.Fatal("Delete(2, 10) = false")
	}
	if l.Delete(2, 10) {
		t.Fatal("double delete succeeded")
	}
	if l.Delete(99, 0) {
		t.Fatal("deleted a missing value")
	}
	if l.Delete(3, 999) {
		t.Fatal("deleted with wrong id")
	}
	if l.Len() != 4 {
		t.Fatalf("Len = %d, want 4", l.Len())
	}
	_ = rng
}

func TestEmptyList(t *testing.T) {
	l := Build(nil, 0)
	it := l.NewIter(0, 1, true)
	if _, _, ok := it.Next(); ok {
		t.Fatal("empty list yielded a point")
	}
	if !math.IsInf(it.Bound(), -1) {
		t.Fatal("empty list Bound not -Inf")
	}
}

func TestQueryOutsideRange(t *testing.T) {
	data := [][]float64{{1}, {2}, {3}}
	l := Build(data, 0)
	// Attractive query far left: nearest is 1, then 2, then 3.
	it := l.NewIter(-10, 1, true)
	wantOrder := []int32{0, 1, 2}
	for _, want := range wantOrder {
		id, _, ok := it.Next()
		if !ok || id != want {
			t.Fatalf("got id %d ok=%v, want %d", id, ok, want)
		}
	}
	// Repulsive query in the middle: farthest first (ties by contribution).
	it = l.NewIter(2, 1, false)
	id, c, ok := it.Next()
	if !ok || c != 1 || (id != 0 && id != 2) {
		t.Fatalf("repulsive first = (%d, %v), want distance 1 from an end", id, c)
	}
}

func TestDuplicateValues(t *testing.T) {
	data := [][]float64{{2}, {2}, {2}, {2}}
	l := Build(data, 0)
	it := l.NewIter(2, 1, true)
	count := 0
	for {
		_, c, ok := it.Next()
		if !ok {
			break
		}
		if c != 0 {
			t.Fatalf("contribution %v, want 0", c)
		}
		count++
	}
	if count != 4 {
		t.Fatalf("enumerated %d, want 4", count)
	}
}

// TestNextBatchMatchesNext: the bulk fetch must emit exactly the sequence
// repeated Next calls produce, for both roles, all batch shapes, and
// duplicate-heavy data.
func TestNextBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(200)
		data := make([][]float64, n)
		for i := range data {
			if trial%2 == 0 {
				data[i] = []float64{float64(rng.Intn(5)) / 4} // dense ties
			} else {
				data[i] = []float64{rng.Float64()}
			}
		}
		l := Build(data, 0)
		qv := rng.Float64()
		w := rng.Float64()
		attractive := trial%3 == 0

		seq := l.NewIter(qv, w, attractive)
		type emi struct {
			id int32
			c  float64
		}
		var want []emi
		for {
			id, c, ok := seq.Next()
			if !ok {
				break
			}
			want = append(want, emi{id, c})
		}

		bat := l.NewIter(qv, w, attractive)
		var got []emi
		buf := make([]query.Emission, 1+rng.Intn(9))
		for {
			m, bound := bat.NextBatch(buf[:1+rng.Intn(len(buf))])
			// The returned frontier bound must always agree with Bound.
			if want := bat.Bound(); bound != want && !(math.IsInf(bound, -1) && math.IsInf(want, -1)) {
				t.Fatalf("trial %d: NextBatch bound %v, Bound() %v", trial, bound, want)
			}
			if m == 0 {
				if !math.IsInf(bound, -1) {
					t.Fatalf("trial %d: empty batch with finite bound %v", trial, bound)
				}
				break
			}
			for _, e := range buf[:m] {
				got = append(got, emi{e.ID, e.Contrib})
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: batch emitted %d, sequential %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d position %d: batch %+v, sequential %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestNextBatchInterleaved: alternating Next and NextBatch on one iterator
// must still walk the same global sequence.
func TestNextBatchInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	data := make([][]float64, 100)
	for i := range data {
		data[i] = []float64{float64(rng.Intn(8)) / 8}
	}
	l := Build(data, 0)
	for _, attractive := range []bool{false, true} {
		ref := l.NewIter(0.4, 1.5, attractive)
		mix := l.NewIter(0.4, 1.5, attractive)
		buf := make([]query.Emission, 7)
		for {
			if rng.Intn(2) == 0 {
				id, c, ok := mix.Next()
				wid, wc, wok := ref.Next()
				if ok != wok || id != wid || c != wc {
					t.Fatalf("attractive=%v: Next diverged", attractive)
				}
				if !ok {
					break
				}
				continue
			}
			m, _ := mix.NextBatch(buf[:1+rng.Intn(6)])
			for j := 0; j < m; j++ {
				wid, wc, wok := ref.Next()
				if !wok || buf[j].ID != wid || buf[j].Contrib != wc {
					t.Fatalf("attractive=%v: NextBatch diverged at %d", attractive, j)
				}
			}
			if m == 0 {
				if _, _, wok := ref.Next(); wok {
					t.Fatalf("attractive=%v: batch exhausted early", attractive)
				}
				break
			}
		}
	}
}
