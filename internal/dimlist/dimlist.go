// Package dimlist provides the per-dimension sorted access structure used by
// the adapted Threshold Algorithm baseline, the Progressive Exploration
// baseline, and the 1D subproblems of the §5 multi-dimensional engine: a
// sorted array of (value, id) pairs per dimension with a bidirectional
// iterator that yields points in decreasing score-contribution order.
//
// For a repulsive dimension the best unfetched point is the one farthest
// from the query value — one of the two ends of the array, walked inward.
// For an attractive dimension it is the closest — the two neighbors of the
// query's insertion position, walked outward (§5's "bidirectional search").
package dimlist

import (
	"math"
	"sort"

	"repro/internal/query"
)

// List is one dimension's sorted column.
type List struct {
	vals []float64
	ids  []int32
}

// Build extracts and sorts column dim from the dataset.
func Build(data [][]float64, dim int) *List {
	l := &List{
		vals: make([]float64, len(data)),
		ids:  make([]int32, len(data)),
	}
	idx := make([]int32, len(data))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := data[idx[a]][dim], data[idx[b]][dim]
		if va != vb {
			return va < vb
		}
		return idx[a] < idx[b]
	})
	for i, id := range idx {
		l.vals[i] = data[id][dim]
		l.ids[i] = id
	}
	return l
}

// FromColumn builds a List over one pre-extracted column: entry i carries
// the implicit local ID i — the sealed-segment constructor, where a
// segment's rows are identified by their local row index.
func FromColumn(col []float64) *List {
	l := &List{
		vals: make([]float64, len(col)),
		ids:  make([]int32, len(col)),
	}
	idx := make([]int32, len(col))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		va, vb := col[idx[a]], col[idx[b]]
		if va != vb {
			return va < vb
		}
		return idx[a] < idx[b]
	})
	for i, id := range idx {
		l.vals[i] = col[id]
		l.ids[i] = id
	}
	return l
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.vals) }

// Insert adds a (value, id) pair, keeping the list sorted. O(n) splice.
func (l *List) Insert(val float64, id int32) {
	i := sort.Search(len(l.vals), func(i int) bool {
		if l.vals[i] != val {
			return l.vals[i] > val
		}
		return l.ids[i] >= id
	})
	l.vals = append(l.vals, 0)
	l.ids = append(l.ids, 0)
	copy(l.vals[i+1:], l.vals[i:])
	copy(l.ids[i+1:], l.ids[i:])
	l.vals[i], l.ids[i] = val, id
}

// Delete removes the (value, id) pair, reporting whether it was found.
func (l *List) Delete(val float64, id int32) bool {
	i := sort.Search(len(l.vals), func(i int) bool {
		if l.vals[i] != val {
			return l.vals[i] > val
		}
		return l.ids[i] >= id
	})
	if i == len(l.vals) || l.vals[i] != val || l.ids[i] != id {
		return false
	}
	l.vals = append(l.vals[:i], l.vals[i+1:]...)
	l.ids = append(l.ids[:i], l.ids[i+1:]...)
	return true
}

// Iter is a one-query iterator over a List in decreasing contribution order.
type Iter struct {
	l          *List
	attractive bool
	qv         float64
	weight     float64
	lo, hi     int // repulsive: next candidates at the ends, moving inward;
	//              attractive: next candidates around qv, moving outward
}

// NewIter starts an iterator for a query value on this dimension.
// For attractive dimensions the contribution of point p is −weight·|p−qv|;
// for repulsive ones +weight·|p−qv|. Contributions are non-increasing across
// Next calls.
func (l *List) NewIter(qv, weight float64, attractive bool) *Iter {
	it := new(Iter)
	l.InitIter(it, qv, weight, attractive)
	return it
}

// InitIter is NewIter into caller-provided storage, so pooled query contexts
// restart an iterator without allocating.
func (l *List) InitIter(it *Iter, qv, weight float64, attractive bool) {
	*it = Iter{l: l, attractive: attractive, qv: qv, weight: weight}
	if attractive {
		pos := sort.SearchFloat64s(l.vals, qv)
		it.lo, it.hi = pos-1, pos
	} else {
		it.lo, it.hi = 0, len(l.vals)-1
	}
}

// contribution of index i (valid i only).
func (it *Iter) contrib(i int) float64 {
	d := math.Abs(it.l.vals[i] - it.qv)
	if it.attractive {
		return -it.weight * d
	}
	return it.weight * d
}

// Next returns the id and contribution of the best unfetched point, or
// ok = false when the dimension is exhausted.
func (it *Iter) Next() (id int32, contrib float64, ok bool) {
	i, ok := it.peekIndex()
	if !ok {
		return 0, 0, false
	}
	id, contrib = it.l.ids[i], it.contrib(i)
	if it.attractive {
		if i == it.lo {
			it.lo--
		} else {
			it.hi++
		}
	} else {
		if i == it.lo {
			it.lo++
		} else {
			it.hi--
		}
	}
	return id, contrib, true
}

// NextBatch bulk-fetches up to len(dst) emissions in non-increasing
// contribution order, returning the count (0 when exhausted) and the
// contribution of the next unfetched point — the post-batch frontier bound,
// −Inf when exhausted. It emits runs from both frontiers with the two
// frontier contributions cached, so the per-point cost is one comparison and
// one |p−qv| evaluation instead of the two peekIndex recomputations Next
// pays, and the bound comes from the already-cached frontier contributions
// rather than a separate Bound call. Emission order is identical to repeated
// Next calls, and the returned bound always equals what Bound would report.
func (it *Iter) NextBatch(dst []query.Emission) (int, float64) {
	vals, ids := it.l.vals, it.l.ids
	w, qv := it.weight, it.qv
	n := 0
	if it.attractive {
		// Frontiers move outward from the query's insertion position; the
		// closer candidate (larger, i.e. less negative, contribution) wins.
		lo, hi := it.lo, it.hi
		loC, hiC := math.Inf(-1), math.Inf(-1)
		loOK, hiOK := lo >= 0, hi < len(vals)
		if loOK {
			loC = -w * math.Abs(vals[lo]-qv)
		}
		if hiOK {
			hiC = -w * math.Abs(vals[hi]-qv)
		}
		for n < len(dst) {
			if loOK && (!hiOK || loC >= hiC) {
				dst[n] = query.Emission{ID: ids[lo], Contrib: loC}
				n++
				lo--
				if loOK = lo >= 0; loOK {
					loC = -w * math.Abs(vals[lo]-qv)
				} else {
					loC = math.Inf(-1) // frontier off the array: no candidate
				}
			} else if hiOK {
				dst[n] = query.Emission{ID: ids[hi], Contrib: hiC}
				n++
				hi++
				if hiOK = hi < len(vals); hiOK {
					hiC = -w * math.Abs(vals[hi]-qv)
				} else {
					hiC = math.Inf(-1)
				}
			} else {
				break
			}
		}
		it.lo, it.hi = lo, hi
		// Invalid frontiers hold −Inf, so the max is the live bound (or −Inf
		// when both frontiers ran off the array).
		return n, math.Max(loC, hiC)
	}
	// Repulsive: frontiers are the array ends moving inward; the farther
	// candidate wins, and the iterator is exhausted once they cross.
	lo, hi := it.lo, it.hi
	if lo > hi {
		return 0, math.Inf(-1)
	}
	loC := w * math.Abs(vals[lo]-qv)
	hiC := w * math.Abs(vals[hi]-qv)
	for n < len(dst) && lo <= hi {
		if loC >= hiC {
			dst[n] = query.Emission{ID: ids[lo], Contrib: loC}
			n++
			lo++
			if lo <= hi {
				loC = w * math.Abs(vals[lo]-qv)
			}
		} else {
			dst[n] = query.Emission{ID: ids[hi], Contrib: hiC}
			n++
			hi--
			if lo <= hi {
				hiC = w * math.Abs(vals[hi]-qv)
			}
		}
	}
	it.lo, it.hi = lo, hi
	if lo > hi {
		return n, math.Inf(-1)
	}
	return n, math.Max(loC, hiC)
}

// Bound returns the contribution of the next unfetched point — an upper
// bound on the contribution of every unfetched point in this dimension —
// or −Inf when exhausted.
func (it *Iter) Bound() float64 {
	i, ok := it.peekIndex()
	if !ok {
		return math.Inf(-1)
	}
	return it.contrib(i)
}

// peekIndex picks the better of the two frontier candidates.
func (it *Iter) peekIndex() (int, bool) {
	loOK := it.lo >= 0 && it.lo < it.l.Len()
	hiOK := it.hi >= 0 && it.hi < it.l.Len()
	if it.attractive {
		// moving outward: lo descends, hi ascends; also stop when the
		// frontiers have crossed the array bounds
		loOK = it.lo >= 0
		hiOK = it.hi < it.l.Len()
	} else {
		// moving inward: stop when pointers cross
		if it.lo > it.hi {
			return 0, false
		}
	}
	switch {
	case !loOK && !hiOK:
		return 0, false
	case !loOK:
		return it.hi, true
	case !hiOK:
		return it.lo, true
	case it.contrib(it.lo) >= it.contrib(it.hi):
		return it.lo, true
	default:
		return it.hi, true
	}
}
