package query

import (
	"math"
	"strings"
	"testing"
)

func validSpec() Spec {
	return Spec{
		Point:   []float64{1, 2, 3},
		K:       5,
		Roles:   []Role{Repulsive, Attractive, Ignored},
		Weights: []float64{1, 0.5, 0},
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := validSpec().Validate(3); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"k=0", func(s *Spec) { s.K = 0 }},
		{"dims mismatch", func(s *Spec) { s.Point = []float64{1} }},
		{"roles mismatch", func(s *Spec) { s.Roles = s.Roles[:2] }},
		{"weights mismatch", func(s *Spec) { s.Weights = s.Weights[:2] }},
		{"negative weight", func(s *Spec) { s.Weights[0] = -1 }},
		{"NaN weight", func(s *Spec) { s.Weights[1] = math.NaN() }},
		{"Inf point", func(s *Spec) { s.Point[0] = math.Inf(1) }},
		{"all ignored", func(s *Spec) { s.Roles = []Role{Ignored, Ignored, Ignored} }},
		{"unknown role", func(s *Spec) { s.Roles[0] = Role(99) }},
	}
	for _, c := range cases {
		s := validSpec()
		c.mutate(&s)
		if err := s.Validate(3); err == nil {
			t.Errorf("%s: want error, got nil", c.name)
		}
	}
}

func TestValidateIgnoredWeightNotChecked(t *testing.T) {
	s := validSpec()
	s.Weights[2] = math.NaN() // ignored dimension: weight unread
	if err := s.Validate(3); err != nil {
		t.Fatalf("NaN weight on ignored dim rejected: %v", err)
	}
}

func TestScore(t *testing.T) {
	s := validSpec()
	p := []float64{4, 1, 100}
	// repulsive dim 0: 1·|4−1| = 3; attractive dim 1: −0.5·|1−2| = −0.5
	if got, want := s.Score(p), 2.5; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Score = %v, want %v", got, want)
	}
}

func TestDims(t *testing.T) {
	s := validSpec()
	rep, attr := s.Dims()
	if len(rep) != 1 || rep[0] != 0 || len(attr) != 1 || attr[0] != 1 {
		t.Fatalf("Dims = %v, %v", rep, attr)
	}
}

func TestRoleString(t *testing.T) {
	if Ignored.String() != "ignored" || Attractive.String() != "attractive" || Repulsive.String() != "repulsive" {
		t.Fatal("Role.String misnames")
	}
	if !strings.Contains(Role(42).String(), "42") {
		t.Fatal("unknown role string should carry the value")
	}
}
