// Package query defines the SD-Query specification shared by every engine
// in this module: the query point, per-dimension roles (attractive /
// repulsive / ignored), per-dimension weights, and the answer size k
// (Definition 1 of the paper).
package query

import (
	"fmt"
	"math"
)

// Role classifies one dimension of a query.
type Role uint8

const (
	// Ignored dimensions contribute nothing to the score.
	Ignored Role = iota
	// Attractive dimensions contribute −weight·|p_i − q_i| (set S): closer
	// is better.
	Attractive
	// Repulsive dimensions contribute +weight·|p_i − q_i| (set D): farther
	// is better.
	Repulsive
)

// String names the role.
func (r Role) String() string {
	switch r {
	case Ignored:
		return "ignored"
	case Attractive:
		return "attractive"
	case Repulsive:
		return "repulsive"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// Spec is a complete SD-Query.
type Spec struct {
	// Point is the query object q.
	Point []float64
	// K is the answer size.
	K int
	// Roles assigns each dimension to D (Repulsive), S (Attractive), or
	// neither. len(Roles) must equal len(Point).
	Roles []Role
	// Weights are the α (repulsive) and β (attractive) parameters, one per
	// dimension, aligned with Roles. Weights of Ignored dimensions are not
	// read. All weights must be ≥ 0 and finite.
	Weights []float64
}

// Validate checks the spec against a dataset dimensionality.
func (s Spec) Validate(dims int) error {
	if s.K < 1 {
		return fmt.Errorf("query: k must be ≥ 1, got %d", s.K)
	}
	if len(s.Point) != dims {
		return fmt.Errorf("query: point has %d dims, dataset has %d", len(s.Point), dims)
	}
	if len(s.Roles) != dims || len(s.Weights) != dims {
		return fmt.Errorf("query: roles/weights lengths (%d, %d) != dims %d",
			len(s.Roles), len(s.Weights), dims)
	}
	active := 0
	for i := range s.Roles {
		switch s.Roles[i] {
		case Attractive, Repulsive:
			active++
			if math.IsNaN(s.Weights[i]) || math.IsInf(s.Weights[i], 0) || s.Weights[i] < 0 {
				return fmt.Errorf("query: dimension %d has invalid weight %v", i, s.Weights[i])
			}
		case Ignored:
		default:
			return fmt.Errorf("query: dimension %d has unknown role %d", i, s.Roles[i])
		}
		if math.IsNaN(s.Point[i]) || math.IsInf(s.Point[i], 0) {
			return fmt.Errorf("query: dimension %d of the query point is %v", i, s.Point[i])
		}
	}
	if active == 0 {
		return fmt.Errorf("query: no attractive or repulsive dimensions")
	}
	return nil
}

// Dims returns the index sets D (repulsive) and S (attractive).
func (s Spec) Dims() (repulsive, attractive []int) {
	for i, r := range s.Roles {
		switch r {
		case Repulsive:
			repulsive = append(repulsive, i)
		case Attractive:
			attractive = append(attractive, i)
		}
	}
	return repulsive, attractive
}

// Score evaluates Eqn. 3 of the paper for a data point:
//
//	SD-score(p, q) = Σ_{i∈D} w_i·|p_i − q_i| − Σ_{j∈S} w_j·|p_j − q_j|.
func (s Spec) Score(p []float64) float64 {
	var score float64
	for i, r := range s.Roles {
		switch r {
		case Repulsive:
			score += s.Weights[i] * math.Abs(p[i]-s.Point[i])
		case Attractive:
			score -= s.Weights[i] * math.Abs(p[i]-s.Point[i])
		}
	}
	return score
}

// Result is one answer: the index of the point in the dataset and its score.
type Result struct {
	ID    int
	Score float64
}

// Emission is one sorted-access output of a subproblem iterator: a dataset
// row and its exact contribution to the SD-score from that subproblem's
// dimensions. Batched fetch paths (topk.Stream.NextBatch, dimlist
// Iter.NextBatch) fill caller-provided Emission slices so the aggregation
// loop moves whole runs per call instead of paying one interface dispatch
// per point.
type Emission struct {
	ID      int32
	Contrib float64
}
