package bench

import (
	"fmt"

	"repro/internal/baseline/brs"
	"repro/internal/baseline/pe"
	"repro/internal/baseline/scan"
	"repro/internal/baseline/ta"
	"repro/internal/dataset"
	"repro/internal/query"
)

func init() {
	for _, d := range []struct {
		suffix string
		dist   dataset.Distribution
	}{{"a", dataset.Uniform}, {"b", dataset.Correlated}, {"c", dataset.AntiCorrelated}} {
		d := d
		register(Experiment{
			ID:    "fig7" + d.suffix,
			Title: fmt.Sprintf("Fig 7%s: querying time vs dataset size (6-d %s, k=5)", d.suffix, d.dist),
			Run:   func(cfg Config) Report { return runFig7Size(cfg, d.dist) },
		})
	}
	for _, d := range []struct {
		suffix string
		dist   dataset.Distribution
	}{{"d", dataset.Uniform}, {"e", dataset.Correlated}, {"f", dataset.AntiCorrelated}} {
		d := d
		register(Experiment{
			ID:    "fig7" + d.suffix,
			Title: fmt.Sprintf("Fig 7%s: querying time vs dimensionality (%s, k=5)", d.suffix, d.dist),
			Run:   func(cfg Config) Report { return runFig7Dims(cfg, d.dist) },
		})
	}
	for _, d := range []struct {
		suffix string
		dist   dataset.Distribution
	}{{"g", dataset.Uniform}, {"h", dataset.Correlated}} {
		d := d
		register(Experiment{
			ID:    "fig7" + d.suffix,
			Title: fmt.Sprintf("Fig 7%s: querying time vs k (6-d %s)", d.suffix, d.dist),
			Run:   func(cfg Config) Report { return runFig7K(cfg, d.dist) },
		})
	}
	for _, d := range []struct {
		suffix string
		dist   dataset.Distribution
	}{{"i", dataset.Uniform}, {"j", dataset.Correlated}} {
		d := d
		register(Experiment{
			ID:    "fig7" + d.suffix,
			Title: fmt.Sprintf("Fig 7%s: querying time vs number of attractive dimensions (6-d %s)", d.suffix, d.dist),
			Run:   func(cfg Config) Report { return runFig7Attractive(cfg, d.dist) },
		})
	}
}

// runFig7Size: 6-d points, 3 repulsive + 3 attractive, k = 5, n swept to one
// million; methods: sequential scan, SD-Index, TA, BRS, PE.
func runFig7Size(cfg Config, dist dataset.Distribution) Report {
	cfg = cfg.withDefaults()
	const dims, k = 6, 5
	roles := rolesSplit(dims, 3)
	sizes := []int{100_000, 250_000, 500_000, 750_000, 1_000_000}
	methods := []string{"Sequential Scan", "SD-Index", "TA", "BRS", "PE"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for _, n0 := range sizes {
		n := cfg.scaled(n0)
		cfg.logf("fig7%v: n=%d generating %s data", dist, n, dist)
		data := dataset.Generate(dist, n, dims, cfg.Seed)
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		for i, m := range methods {
			ms := timeMethod(cfg, m, data, roles, specs)
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, ms)
			cfg.logf("fig7 size n=%d %s: %.1f ms", n, m, ms)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Querying time vs dataset size (6-d %s, k=5, %d queries)", dist, cfg.Queries),
		XLabel: "n", YLabel: "total ms", Series: series,
	}
}

// timeMethod builds the named engine, runs the query batch, and lets the
// engine be collected afterwards (one engine resident at a time).
func timeMethod(cfg Config, method string, data [][]float64, roles []query.Role, specs []query.Spec) float64 {
	switch method {
	case "Sequential Scan":
		eng, err := scan.New(data)
		if err != nil {
			panic(err)
		}
		return runQueries(eng, specs)
	case "SD-Index":
		eng := newSDEngine(data, roles)
		return runQueries(eng, specs)
	case "TA":
		eng, err := ta.New(data)
		if err != nil {
			panic(err)
		}
		return runQueries(eng, specs)
	case "BRS":
		eng, err := brs.New(data)
		if err != nil {
			panic(err)
		}
		return runQueries(eng, specs)
	case "PE":
		eng, err := pe.New(data)
		if err != nil {
			panic(err)
		}
		return runQueries(eng, specs)
	}
	panic("unknown method " + method)
}

// runFig7Dims: dimensionality swept 2..8 with an even attractive/repulsive
// split, n = 100k, k = 5. PE is excluded as in the paper (it tracks scan).
func runFig7Dims(cfg Config, dist dataset.Distribution) Report {
	cfg = cfg.withDefaults()
	const k = 5
	n := cfg.scaled(100_000)
	methods := []string{"Sequential Scan", "SD-Index", "TA", "BRS"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for _, dims := range []int{2, 4, 6, 8} {
		data := dataset.Generate(dist, n, dims, cfg.Seed)
		roles := rolesSplit(dims, dims/2)
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		for i, m := range methods {
			ms := timeMethod(cfg, m, data, roles, specs)
			series[i].X = append(series[i].X, float64(dims))
			series[i].Y = append(series[i].Y, ms)
			cfg.logf("fig7 dims d=%d %s: %.1f ms", dims, m, ms)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Querying time vs dimensionality (%s, n=%d, k=5)", dist, n),
		XLabel: "dims", YLabel: "total ms", Series: series,
	}
}

// runFig7K: k swept 5..100 on 6-d data.
func runFig7K(cfg Config, dist dataset.Distribution) Report {
	cfg = cfg.withDefaults()
	const dims = 6
	n := cfg.scaled(100_000)
	roles := rolesSplit(dims, 3)
	data := dataset.Generate(dist, n, dims, cfg.Seed)
	methods := []string{"Sequential Scan", "SD-Index", "TA", "BRS"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for _, k := range []int{5, 25, 50, 75, 100} {
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		for i, m := range methods {
			ms := timeMethod(cfg, m, data, roles, specs)
			series[i].X = append(series[i].X, float64(k))
			series[i].Y = append(series[i].Y, ms)
			cfg.logf("fig7 k=%d %s: %.1f ms", k, m, ms)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Querying time vs k (6-d %s, n=%d)", dist, n),
		XLabel: "k", YLabel: "total ms", Series: series,
	}
}

// runFig7Attractive: the number of attractive dimensions swept 0..3 of 6
// (every pairing scenario; at 0 the SD-Index degenerates into TA).
func runFig7Attractive(cfg Config, dist dataset.Distribution) Report {
	cfg = cfg.withDefaults()
	const dims, k = 6, 5
	n := cfg.scaled(100_000)
	data := dataset.Generate(dist, n, dims, cfg.Seed)
	methods := []string{"Sequential Scan", "SD-Index", "TA", "BRS"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for a := 0; a <= 3; a++ {
		roles := rolesSplit(dims, a)
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		for i, m := range methods {
			ms := timeMethod(cfg, m, data, roles, specs)
			series[i].X = append(series[i].X, float64(a))
			series[i].Y = append(series[i].Y, ms)
			cfg.logf("fig7 attr=%d %s: %.1f ms", a, m, ms)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Querying time vs attractive dimensions (6-d %s, n=%d, k=5)", dist, n),
		XLabel: "attractive", YLabel: "total ms", Series: series,
	}
}
