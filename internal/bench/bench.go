// Package bench reproduces the paper's evaluation (§6): one experiment per
// figure and table, each emitting the same series the paper plots. The
// cmd/sdbench binary runs experiments at paper scale (adjustable with a
// scale factor); the root bench_test.go exposes each experiment as a Go
// benchmark at reduced scale.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config parameterizes an experiment run.
type Config struct {
	// Scale multiplies every dataset size (1.0 = paper scale). Sizes are
	// floored at 1000 points.
	Scale float64
	// Seed drives all data and query generation.
	Seed int64
	// Queries is the number of query points per measurement (paper: 100).
	Queries int
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Queries <= 0 {
		c.Queries = 100
	}
	return c
}

func (c Config) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

func (c Config) scaled(n int) int {
	m := int(float64(n) * c.Scale)
	if m < 1000 {
		m = 1000
	}
	return m
}

// Report is a printable experiment result.
type Report interface {
	Print(w io.Writer)
}

// Series is one line of a figure: Y (milliseconds, megabytes, or seconds —
// see the experiment's YLabel) against X.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// SeriesReport prints one or more series as an aligned table, X first.
type SeriesReport struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Print writes the report as aligned columns.
func (r *SeriesReport) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Title)
	fmt.Fprintf(w, "# y: %s\n", r.YLabel)
	header := []string{r.XLabel}
	for _, s := range r.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	if len(r.Series) > 0 {
		for i := range r.Series[0].X {
			row := []string{formatNum(r.Series[0].X[i])}
			for _, s := range r.Series {
				if i < len(s.Y) {
					row = append(row, formatNum(s.Y[i]))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
	}
	printAligned(w, rows)
}

// TableReport prints labelled rows (used by Table 1).
type TableReport struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Print writes the table with aligned columns.
func (r *TableReport) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", r.Title)
	rows := append([][]string{r.Columns}, r.Rows...)
	printAligned(w, rows)
}

func printAligned(w io.Writer, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
}

func formatNum(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Experiment is one reproducible figure or table.
type Experiment struct {
	ID    string // e.g. "fig7a", "table1", "ablation-angles"
	Title string
	Run   func(Config) Report
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns every experiment, figures first, in publication order.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

func orderKey(id string) string {
	// fig7a..fig8j sort naturally; tables after figures, ablations last.
	switch {
	case strings.HasPrefix(id, "fig"):
		return "0" + id
	case strings.HasPrefix(id, "table"):
		return "1" + id
	default:
		return "2" + id
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
