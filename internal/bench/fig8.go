package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/baseline/brs"
	"repro/internal/baseline/pe"
	"repro/internal/baseline/scan"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/top1"
	"repro/internal/topk"
)

func init() {
	register(Experiment{ID: "fig8a",
		Title: "Fig 8a: querying cost growth with updates (6-d, SD-Index top-k)",
		Run:   runFig8Updates})
	register(Experiment{ID: "fig8b",
		Title: "Fig 8b: insertion cost vs dataset size (6-d)",
		Run:   runFig8Insert})
	register(Experiment{ID: "fig8c",
		Title: "Fig 8c: querying time vs dataset size (2-d uniform, SD-Index top-k)",
		Run: func(cfg Config) Report {
			return runFig82D(cfg, dataset.Uniform)
		}})
	register(Experiment{ID: "fig8d",
		Title: "Fig 8d: querying time vs dataset size (2-d correlated, SD-Index top-k)",
		Run: func(cfg Config) Report {
			return runFig82D(cfg, dataset.Correlated)
		}})
	register(Experiment{ID: "fig8e",
		Title: "Fig 8e: top-1 querying time vs dataset size (2-d, all distributions)",
		Run:   runFig8Top1})
	register(Experiment{ID: "fig8f",
		Title: "Fig 8f: querying time vs k (2-d uniform, 10M points)",
		Run: func(cfg Config) Report {
			return runFig8K2D(cfg, dataset.Uniform)
		}})
	register(Experiment{ID: "fig8g",
		Title: "Fig 8g: querying time vs k (2-d correlated, 10M points)",
		Run: func(cfg Config) Report {
			return runFig8K2D(cfg, dataset.Correlated)
		}})
	register(Experiment{ID: "fig8h",
		Title: "Fig 8h: memory footprint vs dataset size (6-d)",
		Run:   runFig8Memory})
	register(Experiment{ID: "fig8i",
		Title: "Fig 8i: memory footprint vs branching factor (SD-Index top-k)",
		Run:   runFig8Branching})
	register(Experiment{ID: "fig8j",
		Title: "Fig 8j: index construction time vs dataset size (6-d)",
		Run:   runFig8Construction})
}

// runFig8Updates: build the 6-d SD-Index, measure the query batch, then
// interleave random deletions and insertions (equal numbers, constant index
// size) and re-measure at checkpoints. "SD-Index" is the cost without
// updates; "SD-Index*" after updates.
func runFig8Updates(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims, k = 6, 5
	n := cfg.scaled(100_000)
	roles := rolesSplit(dims, 3)
	checkpoints := []int{0, 250, 500, 750, 1000}
	var series []Series
	for _, dist := range []dataset.Distribution{dataset.Uniform, dataset.Correlated} {
		data := dataset.Generate(dist, n, dims, cfg.Seed)
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		eng := newSDEngine(data, roles)
		base := runQueries(eng, specs)
		noUpd := Series{Name: fmt.Sprintf("SD-Index %s", dist)}
		withUpd := Series{Name: fmt.Sprintf("SD-Index* %s", dist)}
		rng := rand.New(rand.NewSource(cfg.Seed + 7))
		live := make([]int, len(data))
		for i := range live {
			live[i] = i
		}
		done := 0
		for _, cp := range checkpoints {
			for done < cp {
				// one delete + one insert keeps the size constant
				vi := rng.Intn(len(live))
				eng.Remove(live[vi])
				p := make([]float64, dims)
				for d := range p {
					p[d] = rng.Float64()
				}
				id, err := eng.Insert(p)
				if err != nil {
					panic(err)
				}
				live[vi] = id
				done++
			}
			ms := runQueries(eng, specs)
			noUpd.X = append(noUpd.X, float64(cp))
			noUpd.Y = append(noUpd.Y, base)
			withUpd.X = append(withUpd.X, float64(cp))
			withUpd.Y = append(withUpd.Y, ms)
			cfg.logf("fig8a %s updates=%d: %.1f ms (base %.1f)", dist, cp, ms, base)
		}
		series = append(series, noUpd, withUpd)
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Querying cost after updates (6-d, n=%d, k=5)", n),
		XLabel: "deletions+insertions", YLabel: "total ms", Series: series,
	}
}

// runFig8Insert: time to insert 1000 points into each index built over n
// 6-d points.
func runFig8Insert(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims = 6
	const batch = 1000
	roles := rolesSplit(dims, 3)
	sizes := []int{200_000, 400_000, 600_000, 800_000, 1_000_000}
	methods := []string{"SD-Index top1", "SD-Index topK", "BRS", "PE"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for _, n0 := range sizes {
		n := cfg.scaled(n0)
		data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
		inserts := dataset.Generate(dataset.Uniform, batch, dims, cfg.Seed+3)
		for i, m := range methods {
			var ms float64
			switch m {
			case "SD-Index top1":
				idx := newMultiTop1(data, roles, 1)
				ms = timeMS(func() {
					for j, p := range inserts {
						idx.insert(n+j, p)
					}
				})
			case "SD-Index topK":
				eng := newSDEngine(data, roles)
				ms = timeMS(func() {
					for _, p := range inserts {
						if _, err := eng.Insert(p); err != nil {
							panic(err)
						}
					}
				})
			case "BRS":
				eng, err := brs.New(data)
				if err != nil {
					panic(err)
				}
				ms = timeMS(func() {
					for _, p := range inserts {
						if err := eng.Insert(p); err != nil {
							panic(err)
						}
					}
				})
			case "PE":
				eng, err := pe.New(data)
				if err != nil {
					panic(err)
				}
				ms = timeMS(func() {
					for _, p := range inserts {
						if err := eng.Insert(p); err != nil {
							panic(err)
						}
					}
				})
			}
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, ms)
			cfg.logf("fig8b n=%d %s: %.1f ms for %d inserts", n, m, ms, batch)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Insertion cost (6-d uniform, %d inserts)", batch),
		XLabel: "n", YLabel: "total ms", Series: series,
	}
}

// runFig82D: the 2-d subproblem in isolation, n swept to ten million.
func runFig82D(cfg Config, dist dataset.Distribution) Report {
	cfg = cfg.withDefaults()
	const dims, k = 2, 5
	roles := rolesSplit(dims, 1)
	sizes := []int{2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000}
	methods := []string{"Sequential Scan", "SD-Index topK", "TA", "BRS"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for _, n0 := range sizes {
		n := cfg.scaled(n0)
		cfg.logf("fig8cd: generating %d 2-d %s points", n, dist)
		data := dataset.Generate(dist, n, dims, cfg.Seed)
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		for i, m := range methods {
			name := m
			if name == "SD-Index topK" {
				name = "SD-Index"
			}
			ms := timeMethod(cfg, name, data, roles, specs)
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, ms)
			cfg.logf("fig8cd n=%d %s: %.1f ms", n, m, ms)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Querying time vs dataset size (2-d %s, k=5)", dist),
		XLabel: "n", YLabel: "total ms", Series: series,
	}
}

// runFig8Top1: the §3 fixed-parameter index (k=1, α=β=1) against scan on
// all three distributions.
func runFig8Top1(cfg Config) Report {
	cfg = cfg.withDefaults()
	sizes := []int{2_000_000, 4_000_000, 6_000_000, 8_000_000, 10_000_000}
	dists := []dataset.Distribution{dataset.Uniform, dataset.Correlated, dataset.AntiCorrelated}
	series := make([]Series, 1+len(dists))
	series[0].Name = "Sequential Scan"
	for i, d := range dists {
		series[i+1].Name = fmt.Sprintf("SD-Index top1 %s", d)
	}
	for _, n0 := range sizes {
		n := cfg.scaled(n0)
		queries := dataset.Queries(cfg.Queries, 2, cfg.Seed+2)
		var scanMS float64
		for di, dist := range dists {
			data := dataset.Generate(dist, n, 2, cfg.Seed)
			pts := make([]geom.Point, n)
			for i, p := range data {
				pts[i] = geom.Point{ID: i, X: p[0], Y: p[1]}
			}
			idx, err := top1.Build(pts, top1.Config{Alpha: 1, Beta: 1, K: 1})
			if err != nil {
				panic(err)
			}
			ms := timeMS(func() {
				for _, q := range queries {
					idx.Query(geom.Point{X: q[0], Y: q[1]})
				}
			})
			series[di+1].X = append(series[di+1].X, float64(n))
			series[di+1].Y = append(series[di+1].Y, ms)
			cfg.logf("fig8e n=%d top1 %s: %.3f ms", n, dist, ms)
			if dist == dataset.Uniform {
				eng, err := scan.New(data)
				if err != nil {
					panic(err)
				}
				specs := make([]query.Spec, len(queries))
				for i, q := range queries {
					specs[i] = query.Spec{Point: q, K: 1,
						Roles:   rolesSplit(2, 1),
						Weights: []float64{1, 1}}
				}
				scanMS = runQueries(eng, specs)
				cfg.logf("fig8e n=%d scan: %.1f ms", n, scanMS)
			}
		}
		series[0].X = append(series[0].X, float64(n))
		series[0].Y = append(series[0].Y, scanMS)
	}
	return &SeriesReport{
		Title:  "Top-1 querying time vs dataset size (2-d, fixed k=1, α=β=1)",
		XLabel: "n", YLabel: "total ms", Series: series,
	}
}

// runFig8K2D: k swept on ten million 2-d points.
func runFig8K2D(cfg Config, dist dataset.Distribution) Report {
	cfg = cfg.withDefaults()
	const dims = 2
	roles := rolesSplit(dims, 1)
	n := cfg.scaled(10_000_000)
	cfg.logf("fig8fg: generating %d 2-d %s points", n, dist)
	data := dataset.Generate(dist, n, dims, cfg.Seed)
	methods := []string{"Sequential Scan", "SD-Index", "TA", "BRS"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for _, k := range []int{5, 25, 50, 75, 100} {
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		for i, m := range methods {
			ms := timeMethod(cfg, m, data, roles, specs)
			series[i].X = append(series[i].X, float64(k))
			series[i].Y = append(series[i].Y, ms)
			cfg.logf("fig8fg k=%d %s: %.1f ms", k, m, ms)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Querying time vs k (2-d %s, n=%d)", dist, n),
		XLabel: "k", YLabel: "total ms", Series: series,
	}
}

// runFig8Memory: index bytes vs n on 6-d data; top-k once (distribution
// independent) and top-1 per distribution.
func runFig8Memory(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims = 6
	roles := rolesSplit(dims, 3)
	sizes := []int{200_000, 400_000, 600_000, 800_000, 1_000_000}
	dists := []dataset.Distribution{dataset.Uniform, dataset.Correlated, dataset.AntiCorrelated}
	series := make([]Series, 1+len(dists))
	series[0].Name = "SD-Index topK"
	for i, d := range dists {
		series[i+1].Name = fmt.Sprintf("SD-Index top1 %s", d)
	}
	for _, n0 := range sizes {
		n := cfg.scaled(n0)
		dataU := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
		eng := newSDEngine(dataU, roles)
		mb := float64(eng.Bytes()) / (1 << 20)
		series[0].X = append(series[0].X, float64(n))
		series[0].Y = append(series[0].Y, mb)
		cfg.logf("fig8h n=%d topK: %.1f MB", n, mb)
		for di, dist := range dists {
			data := dataU
			if dist != dataset.Uniform {
				data = dataset.Generate(dist, n, dims, cfg.Seed)
			}
			idx := newMultiTop1(data, roles, 1)
			mb := float64(idx.bytes()) / (1 << 20)
			series[di+1].X = append(series[di+1].X, float64(n))
			series[di+1].Y = append(series[di+1].Y, mb)
			cfg.logf("fig8h n=%d top1 %s: %.3f MB", n, dist, mb)
		}
	}
	return &SeriesReport{
		Title:  "Memory footprint vs dataset size (6-d)",
		XLabel: "n", YLabel: "MB", Series: series,
	}
}

// runFig8Branching: top-k tree bytes vs branching factor, in the paper's
// single-point-leaf layout (where fan-out determines the internal node
// count) with the packed-leaf default alongside.
func runFig8Branching(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims = 6
	roles := rolesSplit(dims, 3)
	n := cfg.scaled(200_000)
	data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
	leaf1 := Series{Name: "SD-Index topK leaf=1"}
	leaf64 := Series{Name: "SD-Index topK leaf=64"}
	for _, b := range []int{2, 5, 10, 20, 30, 40, 50} {
		for _, variant := range []struct {
			s    *Series
			leaf int
		}{{&leaf1, 1}, {&leaf64, 64}} {
			eng, err := core.New(data, core.Config{Roles: roles,
				Tree: topk.Config{Branching: b, LeafCap: variant.leaf}})
			if err != nil {
				panic(err)
			}
			mb := float64(eng.Bytes()) / (1 << 20)
			variant.s.X = append(variant.s.X, float64(b))
			variant.s.Y = append(variant.s.Y, mb)
			cfg.logf("fig8i b=%d leaf=%d: %.1f MB", b, variant.leaf, mb)
		}
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Memory footprint vs branching factor (6-d uniform, n=%d)", n),
		XLabel: "branching", YLabel: "MB", Series: []Series{leaf1, leaf64},
	}
}

// runFig8Construction: wall time to build each index over n 6-d points.
func runFig8Construction(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims = 6
	roles := rolesSplit(dims, 3)
	sizes := []int{200_000, 400_000, 600_000, 800_000, 1_000_000}
	methods := []string{"SD-Index topK", "SD-Index top1", "BRS", "PE"}
	series := make([]Series, len(methods))
	for i, m := range methods {
		series[i].Name = m
	}
	for _, n0 := range sizes {
		n := cfg.scaled(n0)
		data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
		for i, m := range methods {
			var secs float64
			switch m {
			case "SD-Index topK":
				secs = timeMS(func() { newSDEngine(data, roles) }) / 1000
			case "SD-Index top1":
				secs = timeMS(func() { newMultiTop1(data, roles, 1) }) / 1000
			case "BRS":
				secs = timeMS(func() {
					if _, err := brs.New(data); err != nil {
						panic(err)
					}
				}) / 1000
			case "PE":
				secs = timeMS(func() {
					if _, err := pe.New(data); err != nil {
						panic(err)
					}
				}) / 1000
			}
			series[i].X = append(series[i].X, float64(n))
			series[i].Y = append(series[i].Y, secs)
			cfg.logf("fig8j n=%d %s: %.2f s", n, m, secs)
		}
	}
	return &SeriesReport{
		Title:  "Index construction time vs dataset size (6-d uniform)",
		XLabel: "n", YLabel: "seconds", Series: series,
	}
}
