package bench

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/top1"
	"repro/internal/topk"
)

// rolesSplit assigns the first `attractive` dimensions to S and the rest to
// D (the evaluation varies only the counts, not the positions).
func rolesSplit(dims, attractive int) []query.Role {
	roles := make([]query.Role, dims)
	for d := range roles {
		if d < attractive {
			roles[d] = query.Attractive
		} else {
			roles[d] = query.Repulsive
		}
	}
	return roles
}

// makeSpecs draws the paper's workload: query points from a uniform
// distribution, weights from U(0, 1), fixed k.
func makeSpecs(roles []query.Role, k, count int, seed int64) []query.Spec {
	dims := len(roles)
	rng := rand.New(rand.NewSource(seed))
	points := dataset.Queries(count, dims, seed+1)
	specs := make([]query.Spec, count)
	for i := range specs {
		w := make([]float64, dims)
		for d := range w {
			w[d] = rng.Float64()
		}
		specs[i] = query.Spec{Point: points[i], K: k, Roles: roles, Weights: w}
	}
	return specs
}

// BatchSpecs exposes the evaluation's query workload to external drivers —
// cmd/sdbench's shard-count sweep runs it through the public ShardedIndex,
// which this internal package cannot import. The roles split the first
// `attractive` dimensions into S and the rest into D; query points are
// uniform and weights U(0, 1), exactly as makeSpecs draws them.
func BatchSpecs(dims, attractive, k, count int, seed int64) ([]query.Spec, []query.Role) {
	roles := rolesSplit(dims, attractive)
	return makeSpecs(roles, k, count, seed), roles
}

// timeMS runs f and returns elapsed wall time in milliseconds.
func timeMS(f func()) float64 {
	start := time.Now()
	f()
	return float64(time.Since(start).Nanoseconds()) / 1e6
}

// engine is any top-k engine in the module.
type engine interface {
	TopK(query.Spec) ([]query.Result, error)
}

// appendEngine is the zero-allocation query surface (core.Engine): results
// appended into a reused buffer, no per-query garbage.
type appendEngine interface {
	TopKAppend([]query.Result, query.Spec) ([]query.Result, core.Stats, error)
}

// runQueries executes all specs and returns total wall milliseconds.
// Engines exposing the append path are measured through it with a reused
// buffer, so the figures time the algorithms rather than the allocator.
// Engines are pre-validated by construction; errors here are programming
// errors in the harness and panic.
func runQueries(eng engine, specs []query.Spec) float64 {
	if ae, ok := eng.(appendEngine); ok {
		var buf []query.Result
		return timeMS(func() {
			for _, s := range specs {
				var err error
				buf, _, err = ae.TopKAppend(buf[:0], s)
				if err != nil {
					panic(err)
				}
			}
		})
	}
	return timeMS(func() {
		for _, s := range specs {
			if _, err := eng.TopK(s); err != nil {
				panic(err)
			}
		}
	})
}

// newSDEngine builds the SD-Index with the evaluation defaults (branching 8,
// single-point leaves, the five §6.1 angles).
func newSDEngine(data [][]float64, roles []query.Role) *core.Engine {
	eng, err := core.New(data, core.Config{Roles: roles})
	if err != nil {
		panic(err)
	}
	return eng
}

// multiTop1 is the fixed-parameter §3 structure lifted to d dimensions the
// same way the §5 engine lifts the top-k tree: one 2D envelope index per
// paired (repulsive, attractive) dimension couple, aggregated by threshold.
// It answers the fixed workload (k and weights chosen at build time) that
// the top-1 experiments of Figures 8b/8e/8h/8j measure.
type multiTop1 struct {
	pairs []core.Pair
	idxs  []*top1.Index
	data  [][]float64
	k     int
}

func newMultiTop1(data [][]float64, roles []query.Role, k int) *multiTop1 {
	var rep, attr []int
	for d, r := range roles {
		if r == query.Repulsive {
			rep = append(rep, d)
		} else if r == query.Attractive {
			attr = append(attr, d)
		}
	}
	n := len(rep)
	if len(attr) < n {
		n = len(attr)
	}
	m := &multiTop1{data: data, k: k}
	for i := 0; i < n; i++ {
		pr := core.Pair{Rep: rep[i], Attr: attr[i]}
		pts := make([]geom.Point, len(data))
		for j, p := range data {
			pts[j] = geom.Point{ID: j, X: p[pr.Attr], Y: p[pr.Rep]}
		}
		idx, err := top1.Build(pts, top1.Config{Alpha: 1, Beta: 1, K: k})
		if err != nil {
			panic(err)
		}
		m.pairs = append(m.pairs, pr)
		m.idxs = append(m.idxs, idx)
	}
	return m
}

func (m *multiTop1) insert(id int, p []float64) {
	for i, pr := range m.pairs {
		if err := m.idxs[i].Insert(geom.Point{ID: id, X: p[pr.Attr], Y: p[pr.Rep]}); err != nil {
			panic(err)
		}
	}
}

func (m *multiTop1) bytes() int {
	total := 0
	for _, idx := range m.idxs {
		total += idx.RegionBytes()
	}
	return total
}

// newWeightRNG seeds the weight generator used by experiments that draw
// α, β ~ U(0, 1) outside makeSpecs.
func newWeightRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// treeConfig returns the §6.1 default tree configuration.
func treeConfig() topk.Config {
	return topk.Config{}
}
