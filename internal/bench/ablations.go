package bench

import (
	"fmt"

	"repro/internal/baseline/ta"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/topk"
)

func init() {
	register(Experiment{ID: "ablation-angles",
		Title: "Ablation: querying time vs number of indexed angles (§4.2)",
		Run:   runAblationAngles})
	register(Experiment{ID: "ablation-pairing",
		Title: "Ablation: querying time by pairing strategy (§8 future work)",
		Run:   runAblationPairing})
	register(Experiment{ID: "ablation-granularity",
		Title: "Ablation: 2-d subproblems vs 1-d subproblems (§5)",
		Run:   runAblationGranularity})
	register(Experiment{ID: "ablation-branching",
		Title: "Ablation: querying time vs branching factor (§4.1)",
		Run:   runAblationBranching})
	register(Experiment{ID: "ablation-bulk",
		Title: "Ablation: leaf capacity (disk-style bulk packing, §4)",
		Run:   runAblationBulk})
	register(Experiment{ID: "ablation-alg4",
		Title: "Ablation: blended-bound stream vs literal Algorithm 4 (§4.2)",
		Run:   runAblationAlg4})
	register(Experiment{ID: "ablation-scheduler",
		Title: "Ablation: bound-driven vs round-robin sorted-access scheduling",
		Run:   runAblationScheduler})
}

// uniformAngles returns m angles evenly spaced across [0°, 90°].
func uniformAngles(m int) []geom.Angle {
	out := make([]geom.Angle, m)
	for i := 0; i < m; i++ {
		deg := 90 * float64(i) / float64(m-1)
		a, err := geom.AngleFromDegrees(deg)
		if err != nil {
			panic(err)
		}
		out[i] = a
	}
	return out
}

// runAblationAngles: more indexed angles narrow the Claim-6 bracket (less
// θ_u over-fetching) at the cost of memory. The paper asserts five uniform
// angles suffice; this sweep shows the trade-off.
func runAblationAngles(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims, k = 2, 5
	roles := rolesSplit(dims, 1)
	n := cfg.scaled(1_000_000)
	data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
	specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
	timeSeries := Series{Name: "query ms"}
	memSeries := Series{Name: "index MB"}
	for _, m := range []int{2, 3, 5, 9, 17} {
		eng, err := core.New(data, core.Config{Roles: roles,
			Tree: topk.Config{Angles: uniformAngles(m)}})
		if err != nil {
			panic(err)
		}
		ms := runQueries(eng, specs)
		timeSeries.X = append(timeSeries.X, float64(m))
		timeSeries.Y = append(timeSeries.Y, ms)
		memSeries.X = append(memSeries.X, float64(m))
		memSeries.Y = append(memSeries.Y, float64(eng.Bytes())/(1<<20))
		cfg.logf("ablation-angles m=%d: %.1f ms, %.1f MB", m, ms, float64(eng.Bytes())/(1<<20))
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Indexed angle count (2-d uniform, n=%d, k=5)", n),
		XLabel: "angles", YLabel: "total ms / MB", Series: []Series{timeSeries, memSeries},
	}
}

// runAblationPairing: correlation- and variance-guided build-time pairings
// and the plan-time adaptive (weight-sorted) bijection against the paper's
// arbitrary in-order mapping on correlated data, where the mapping choice
// matters most.
func runAblationPairing(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims, k = 6, 5
	roles := rolesSplit(dims, 3)
	n := cfg.scaled(250_000)
	strategies := []core.Pairing{core.PairInOrder, core.PairByCorrelation, core.PairByVariance, core.PairAdaptive}
	var series []Series
	for _, dist := range []dataset.Distribution{dataset.Uniform, dataset.Correlated, dataset.AntiCorrelated} {
		data := dataset.Generate(dist, n, dims, cfg.Seed)
		specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
		s := Series{Name: dist.String()}
		for si, strat := range strategies {
			eng, err := core.New(data, core.Config{Roles: roles, Pairing: strat})
			if err != nil {
				panic(err)
			}
			ms := runQueries(eng, specs)
			s.X = append(s.X, float64(si))
			s.Y = append(s.Y, ms)
			cfg.logf("ablation-pairing %s %s: %.1f ms", dist, strat, ms)
		}
		series = append(series, s)
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Pairing strategy (x: 0=in-order, 1=by-correlation, 2=by-variance, 3=adaptive; 6-d, n=%d)", n),
		XLabel: "strategy", YLabel: "total ms", Series: series,
	}
}

// runAblationScheduler isolates the sorted-access scheduler: the same engine
// configuration under the paper's round-robin rotation and under the
// bound-driven (frontier descent rate) schedule, reporting both wall time
// and the mean sorted accesses per query — the quantity the scheduler
// exists to cut.
func runAblationScheduler(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims, k = 6, 5
	roles := rolesSplit(dims, 3)
	n := cfg.scaled(250_000)
	data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
	specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
	timeSeries := Series{Name: "total ms"}
	fetchSeries := Series{Name: "fetched mean"}
	for si, sched := range []core.Scheduler{core.SchedRoundRobin, core.SchedBoundDriven} {
		eng, err := core.New(data, core.Config{Roles: roles, Scheduler: sched})
		if err != nil {
			panic(err)
		}
		ms := runQueries(eng, specs)
		fetched := 0
		for _, sp := range specs {
			_, st, err := eng.TopKWithStats(sp)
			if err != nil {
				panic(err)
			}
			fetched += st.Fetched
		}
		mean := float64(fetched) / float64(len(specs))
		timeSeries.X = append(timeSeries.X, float64(si))
		timeSeries.Y = append(timeSeries.Y, ms)
		fetchSeries.X = append(fetchSeries.X, float64(si))
		fetchSeries.Y = append(fetchSeries.Y, mean)
		cfg.logf("ablation-scheduler %v: %.1f ms, fetched mean %.1f", sched, ms, mean)
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Scheduler (x: 0=round-robin, 1=bound-driven; 6-d, n=%d)", n),
		XLabel: "scheduler", YLabel: "total ms / fetched", Series: []Series{timeSeries, fetchSeries},
	}
}

// runAblationGranularity: the paper's central claim isolated — identical
// aggregation machinery with 2-d subproblems (SD-Index), with 1-d
// subproblems inside the same engine (PairNone), and the standalone adapted
// TA.
func runAblationGranularity(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims, k = 6, 5
	roles := rolesSplit(dims, 3)
	n := cfg.scaled(1_000_000)
	data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
	specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
	var series []Series

	engPaired, err := core.New(data, core.Config{Roles: roles})
	if err != nil {
		panic(err)
	}
	series = append(series, Series{Name: "2-d subproblems (SD-Index)",
		X: []float64{0}, Y: []float64{runQueries(engPaired, specs)}})

	engFlat, err := core.New(data, core.Config{Roles: roles, Pairing: core.PairNone})
	if err != nil {
		panic(err)
	}
	series = append(series, Series{Name: "1-d subproblems (engine, PairNone)",
		X: []float64{0}, Y: []float64{runQueries(engFlat, specs)}})

	taEng, err := ta.New(data)
	if err != nil {
		panic(err)
	}
	series = append(series, Series{Name: "1-d subproblems (adapted TA)",
		X: []float64{0}, Y: []float64{runQueries(taEng, specs)}})

	for _, s := range series {
		cfg.logf("ablation-granularity %s: %.1f ms", s.Name, s.Y[0])
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Subproblem granularity (6-d uniform, n=%d, k=5)", n),
		XLabel: "-", YLabel: "total ms", Series: series,
	}
}

// runAblationBranching: query time against fan-out (complements Figure 8i's
// memory view).
func runAblationBranching(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims, k = 2, 5
	roles := rolesSplit(dims, 1)
	n := cfg.scaled(1_000_000)
	data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
	specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
	s := Series{Name: "SD-Index topK"}
	for _, b := range []int{2, 4, 8, 16, 32, 64} {
		eng, err := core.New(data, core.Config{Roles: roles, Tree: topk.Config{Branching: b}})
		if err != nil {
			panic(err)
		}
		ms := runQueries(eng, specs)
		s.X = append(s.X, float64(b))
		s.Y = append(s.Y, ms)
		cfg.logf("ablation-branching b=%d: %.1f ms", b, ms)
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Branching factor (2-d uniform, n=%d, k=5)", n),
		XLabel: "branching", YLabel: "total ms", Series: []Series{s},
	}
}

// runAblationAlg4 compares the two arbitrary-weight query paths over the
// same §4 tree: the default single merge over λ/μ-blended node bounds, and
// the paper's literal Algorithm 4 (θ_l top set progressively covered by a
// θ_u prefix). Identical answers; the blended path avoids the θ_u
// over-fetch.
func runAblationAlg4(cfg Config) Report {
	cfg = cfg.withDefaults()
	rng := newWeightRNG(cfg.Seed + 5)
	sizes := []int{250_000, 500_000, 1_000_000}
	blended := Series{Name: "blended bounds"}
	alg4 := Series{Name: "Algorithm 4"}
	for _, n0 := range sizes {
		n := cfg.scaled(n0)
		data := dataset.Generate(dataset.Uniform, n, 2, cfg.Seed)
		pts := make([]geom.Point, n)
		for i, p := range data {
			pts[i] = geom.Point{ID: i, X: p[0], Y: p[1]}
		}
		idx, err := topk.Build(pts, topk.Config{LeafCap: 64})
		if err != nil {
			panic(err)
		}
		queries := dataset.Queries(cfg.Queries, 2, cfg.Seed+2)
		weights := make([][2]float64, cfg.Queries)
		for i := range weights {
			weights[i] = [2]float64{rng.Float64() + 1e-6, rng.Float64() + 1e-6}
		}
		run := func(alg4Path bool) float64 {
			return timeMS(func() {
				for i, q := range queries {
					qp := geom.Point{X: q[0], Y: q[1]}
					var st *topk.Stream
					var err error
					if alg4Path {
						st, err = idx.StreamAlg4(qp, weights[i][0], weights[i][1])
					} else {
						st, err = idx.Stream(qp, weights[i][0], weights[i][1])
					}
					if err != nil {
						panic(err)
					}
					for j := 0; j < 5; j++ {
						if _, ok := st.Next(); !ok {
							break
						}
					}
					st.Close()
				}
			})
		}
		blended.X = append(blended.X, float64(n))
		blended.Y = append(blended.Y, run(false))
		alg4.X = append(alg4.X, float64(n))
		alg4.Y = append(alg4.Y, run(true))
		cfg.logf("ablation-alg4 n=%d: blended %.2f ms, alg4 %.2f ms",
			n, blended.Y[len(blended.Y)-1], alg4.Y[len(alg4.Y)-1])
	}
	return &SeriesReport{
		Title:  "Arbitrary-weight query paths (2-d uniform, k=5)",
		XLabel: "n", YLabel: "total ms", Series: []Series{blended, alg4},
	}
}

// runAblationBulk: leaf capacity sweep — single-point leaves (the paper's
// in-memory layout) against the disk-style packed leaves.
func runAblationBulk(cfg Config) Report {
	cfg = cfg.withDefaults()
	const dims, k = 2, 5
	roles := rolesSplit(dims, 1)
	n := cfg.scaled(1_000_000)
	data := dataset.Generate(dataset.Uniform, n, dims, cfg.Seed)
	specs := makeSpecs(roles, k, cfg.Queries, cfg.Seed+2)
	timeSeries := Series{Name: "query ms"}
	memSeries := Series{Name: "index MB"}
	for _, lc := range []int{1, 4, 16, 64} {
		eng, err := core.New(data, core.Config{Roles: roles, Tree: topk.Config{LeafCap: lc}})
		if err != nil {
			panic(err)
		}
		ms := runQueries(eng, specs)
		timeSeries.X = append(timeSeries.X, float64(lc))
		timeSeries.Y = append(timeSeries.Y, ms)
		memSeries.X = append(memSeries.X, float64(lc))
		memSeries.Y = append(memSeries.Y, float64(eng.Bytes())/(1<<20))
		cfg.logf("ablation-bulk leaf=%d: %.1f ms, %.1f MB", lc, ms, float64(eng.Bytes())/(1<<20))
	}
	return &SeriesReport{
		Title:  fmt.Sprintf("Leaf capacity (2-d uniform, n=%d, k=5)", n),
		XLabel: "leaf capacity", YLabel: "total ms / MB", Series: []Series{timeSeries, memSeries},
	}
}
