package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestRegistryComplete: every figure and table of the paper has a registered
// experiment.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig7a", "fig7b", "fig7c", "fig7d", "fig7e", "fig7f",
		"fig7g", "fig7h", "fig7i", "fig7j",
		"fig8a", "fig8b", "fig8c", "fig8d", "fig8e",
		"fig8f", "fig8g", "fig8h", "fig8i", "fig8j",
		"table1",
		"ablation-angles", "ablation-pairing", "ablation-granularity",
		"ablation-branching", "ablation-bulk", "ablation-alg4",
		"ablation-scheduler",
	}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(All()) != len(want) {
		t.Errorf("registry holds %d experiments, want %d", len(All()), len(want))
	}
	// Publication order: figures, then tables, then ablations.
	all := All()
	if all[0].ID != "fig7a" || all[len(all)-1].ID[:8] != "ablation" {
		t.Errorf("ordering wrong: first %s last %s", all[0].ID, all[len(all)-1].ID)
	}
}

// TestEveryExperimentRunsTiny smoke-runs each experiment at minimal scale
// and checks the report prints non-empty output with the expected series.
func TestEveryExperimentRunsTiny(t *testing.T) {
	cfg := Config{Scale: 0.001, Seed: 1, Queries: 3}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			report := e.Run(cfg)
			var buf bytes.Buffer
			report.Print(&buf)
			out := buf.String()
			if len(out) == 0 {
				t.Fatal("empty report")
			}
			if sr, ok := report.(*SeriesReport); ok {
				if len(sr.Series) == 0 {
					t.Fatal("no series")
				}
				for _, s := range sr.Series {
					if len(s.X) == 0 || len(s.X) != len(s.Y) {
						t.Fatalf("series %q has %d X / %d Y", s.Name, len(s.X), len(s.Y))
					}
				}
			}
			if tr, ok := report.(*TableReport); ok {
				if len(tr.Rows) == 0 {
					t.Fatal("no table rows")
				}
			}
		})
	}
}

func TestSeriesReportFormatting(t *testing.T) {
	r := &SeriesReport{
		Title:  "demo",
		XLabel: "n",
		YLabel: "ms",
		Series: []Series{
			{Name: "a", X: []float64{1, 10}, Y: []float64{0.5, 123.456}},
			{Name: "b", X: []float64{1, 10}, Y: []float64{2, 4}},
		},
	}
	var buf bytes.Buffer
	r.Print(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "n", "a", "b", "0.500", "123.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != 1 || c.Queries != 100 {
		t.Fatalf("defaults = %+v", c)
	}
	if got := (Config{Scale: 0.5}).scaled(10_000); got != 5000 {
		t.Fatalf("scaled = %d, want 5000", got)
	}
	if got := (Config{Scale: 1e-9}).scaled(10_000); got != 1000 {
		t.Fatalf("scaled floor = %d, want 1000", got)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID accepted an unknown id")
	}
}
