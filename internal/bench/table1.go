package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/query"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: SD-query on the ChEMBL-like molecular dataset",
		Run:   runTable1,
	})
}

// runTable1 reproduces the qualitative analysis of §6.3: a query molecule
// with high drug-likeness (11) and low molecular weight (250), attractive on
// drug-likeness and repulsive on MW. The averages of the top-k sets are
// reported against the overall averages; the paper's finding is that the
// top-k molecules are overweight yet drug-like, with far lower polar surface
// area than the global mean.
func runTable1(cfg Config) Report {
	cfg = cfg.withDefaults()
	n := dataset.ChEMBLSize
	if cfg.Scale < 1 {
		n = cfg.scaled(n)
	}
	cfg.logf("table1: simulating %d molecules", n)
	mols := dataset.ChEMBL(n, cfg.Seed)
	data := dataset.MoleculeVectors(mols) // [drug-likeness, MW] normalized
	roles := []query.Role{query.Attractive, query.Repulsive}
	eng, err := core.New(data, core.Config{Roles: roles})
	if err != nil {
		panic(err)
	}
	overall := dataset.Stats(mols)
	columns := []string{"Description", "Drug-likeness", "MW", "PSA", "exceptions"}
	rows := [][]string{{
		"Overall Average",
		fmt.Sprintf("%.2f", overall.DrugLikeness),
		fmt.Sprintf("%.1f", overall.MW),
		fmt.Sprintf("%.2f", overall.PSA),
		"-",
	}}
	queryPoint := []float64{11 / dataset.MaxDrugLikeness, 250.0 / 1500}
	for _, k := range []int{10, 50, 100, 200} {
		res, err := eng.TopK(query.Spec{
			Point:   queryPoint,
			K:       k,
			Roles:   roles,
			Weights: []float64{1, 1},
		})
		if err != nil {
			panic(err)
		}
		top := make([]dataset.Molecule, len(res))
		exceptions := 0
		for i, r := range res {
			top[i] = mols[r.ID]
			if top[i].Exception {
				exceptions++
			}
		}
		s := dataset.Stats(top)
		rows = append(rows, []string{
			fmt.Sprintf("k=%d", k),
			fmt.Sprintf("%.2f", s.DrugLikeness),
			fmt.Sprintf("%.1f", s.MW),
			fmt.Sprintf("%.2f", s.PSA),
			fmt.Sprintf("%d/%d", exceptions, k),
		})
		cfg.logf("table1 k=%d: DL %.2f MW %.1f PSA %.2f", k, s.DrugLikeness, s.MW, s.PSA)
	}
	return &TableReport{
		Title:   fmt.Sprintf("Statistics on top-k results (%d molecules; query: drug-likeness 11 attractive, MW 250 repulsive)", n),
		Columns: columns,
		Rows:    rows,
	}
}
