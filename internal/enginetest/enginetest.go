// Package enginetest is the reusable cross-engine differential test
// harness: every engine in the module is validated by exact agreement with
// an exhaustive sequential scan, the oracle the paper itself uses (§6) —
// the standard strategy for non-monotonic ranking engines, where no simpler
// invariant certifies an answer.
//
// The harness feeds each engine a table of randomized workloads (seeded
// RNG; varied dataset sizes, dimensionalities, role sets, weights, and k;
// quantized coordinates that force duplicate scores; degenerate
// all-attractive and all-repulsive role sets) and checks every answer
// against the oracle recomputed from first principles. Engines that promise
// deterministic ascending-ID tie-breaking (scan, SDIndex, TA, ShardedIndex)
// must be byte-identical to the oracle; the rest (BRS, PE) must return the
// exact top-k score multiset with every claimed score verified by
// rescoring. Engines exposing Insert/Remove are additionally exercised
// through a randomized update phase with the oracle tracking live rows,
// and engines exposing Snapshot are held to snapshot isolation: views
// pinned mid-stream are re-queried after every later mutation against the
// oracle frozen at their acquisition point.
package enginetest

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	sdquery "repro"
)

// Factory names an engine construction under test.
type Factory struct {
	// Name labels the subtests.
	Name string
	// New builds the engine over the dataset with the given build-time
	// roles.
	New func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error)
	// Deterministic engines promise the oracle's exact answer — ties
	// broken by ascending dataset ID. Non-deterministic engines may
	// resolve ties at the k-th rank differently and are held to
	// score-exact agreement instead.
	Deterministic bool
	// SkipUpdates leaves the update phase out even when the engine
	// implements Insert/Remove.
	SkipUpdates bool
}

// updatable is the update surface shared by SDIndex and ShardedIndex.
type updatable interface {
	Insert(p []float64) (int, error)
	Remove(id int) bool
}

// frozenView is the query surface of a point-in-time snapshot.
type frozenView interface {
	TopK(q sdquery.Query) ([]sdquery.Result, error)
	Len() int
}

// snapshotOf acquires an engine's snapshot when it offers one (SDIndex and
// ShardedIndex return distinct concrete types; both satisfy frozenView).
func snapshotOf(eng sdquery.Engine) frozenView {
	switch e := eng.(type) {
	case interface{ Snapshot() *sdquery.Snapshot }:
		return e.Snapshot()
	case interface {
		Snapshot() *sdquery.ShardedSnapshot
	}:
		return e.Snapshot()
	}
	return nil
}

// workload is one randomized dataset plus the query mix run against it.
type workload struct {
	name  string
	data  [][]float64
	roles []sdquery.Role
	seed  int64
}

// workloads builds the deterministic table every factory runs through.
func workloads() []workload {
	var out []workload
	add := func(name string, n, dims int, quantized bool, roles []sdquery.Role, seed int64) {
		out = append(out, workload{
			name:  fmt.Sprintf("%s/n=%d/d=%d", name, n, dims),
			data:  genData(n, dims, quantized, seed),
			roles: roles,
			seed:  seed,
		})
	}

	// Degenerate role sets: every dimension attractive, every dimension
	// repulsive, and a single dimension of each kind.
	add("all-attractive", 80, 3, true, rolesOf("AAA"), 1)
	add("all-repulsive", 80, 3, true, rolesOf("RRR"), 2)
	add("single-attractive", 40, 1, true, rolesOf("A"), 3)
	add("single-repulsive", 40, 1, false, rolesOf("R"), 4)
	add("ignored-mixed", 90, 4, true, rolesOf("IRAI"), 5)

	// Randomized mixes over sizes, dimensionalities, and tie density.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 14; i++ {
		n := 1 + rng.Intn(300)
		dims := 1 + rng.Intn(6)
		roles := make([]sdquery.Role, dims)
		active := false
		for d := range roles {
			roles[d] = sdquery.Role(rng.Intn(3)) // Ignored / Attractive / Repulsive
			active = active || roles[d] != sdquery.Ignored
		}
		if !active {
			roles[rng.Intn(dims)] = sdquery.Repulsive
		}
		quantized := i%2 == 0 // half the workloads force duplicate scores
		add("random", n, dims, quantized, roles, int64(100+i))
	}
	return out
}

func rolesOf(s string) []sdquery.Role {
	roles := make([]sdquery.Role, len(s))
	for i, c := range s {
		switch c {
		case 'A':
			roles[i] = sdquery.Attractive
		case 'R':
			roles[i] = sdquery.Repulsive
		default:
			roles[i] = sdquery.Ignored
		}
	}
	return roles
}

// genData draws n×dims coordinates; quantized sets snap to a 4-step grid so
// distinct rows collide on exact SD-scores.
func genData(n, dims int, quantized bool, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dims)
		for d := range row {
			if quantized {
				row[d] = float64(rng.Intn(4)) / 4
			} else {
				row[d] = rng.Float64()
			}
		}
		data[i] = row
	}
	return data
}

// queries draws the query mix for a workload: varied k (including 1, the
// full dataset, and beyond it), zero and duplicate weights, and occasional
// demotion of active dimensions to Ignored.
func queries(wl workload, count int) []sdquery.Query {
	rng := rand.New(rand.NewSource(wl.seed * 31))
	dims := len(wl.roles)
	var active []int
	for d, r := range wl.roles {
		if r != sdquery.Ignored {
			active = append(active, d)
		}
	}
	out := make([]sdquery.Query, 0, count)
	for i := 0; i < count; i++ {
		q := sdquery.Query{
			Point:   make([]float64, dims),
			Roles:   append([]sdquery.Role(nil), wl.roles...),
			Weights: make([]float64, dims),
		}
		switch i {
		case 0:
			q.K = 1
		case 1:
			q.K = len(wl.data)
		case 2:
			q.K = len(wl.data) + 3
		default:
			q.K = 1 + rng.Intn(len(wl.data)+2)
		}
		for d := 0; d < dims; d++ {
			q.Point[d] = float64(rng.Intn(5)) / 4
			switch rng.Intn(4) {
			case 0:
				q.Weights[d] = 0
			case 1:
				q.Weights[d] = 1 // duplicate weights across dimensions
			default:
				q.Weights[d] = rng.Float64()
			}
		}
		// Demote a random active dimension, keeping at least one active.
		if len(active) > 1 && rng.Intn(3) == 0 {
			q.Roles[active[rng.Intn(len(active))]] = sdquery.Ignored
		}
		out = append(out, q)
	}
	return out
}

// oracle is the exhaustive reference: every live row scored from first
// principles, ordered by score descending then ID ascending, truncated to k.
func oracle(data [][]float64, dead []bool, q sdquery.Query) []sdquery.Result {
	all := make([]sdquery.Result, 0, len(data))
	for id, p := range data {
		if dead != nil && dead[id] {
			continue
		}
		all = append(all, sdquery.Result{ID: id, Score: q.Score(p)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

// check asserts one answer against the oracle. Deterministic engines must
// match byte for byte. All engines must return the oracle's exact score
// sequence, rescore-verified IDs, and no duplicates — which together pin
// the answer set everywhere except inside the k-th rank's tie group.
func check(t *testing.T, q sdquery.Query, data [][]float64, dead []bool, got []sdquery.Result, deterministic bool) {
	t.Helper()
	want := oracle(data, dead, q)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d\ngot  %v\nwant %v", len(got), len(want), got, want)
	}
	seen := make(map[int]bool, len(got))
	for i, r := range got {
		if seen[r.ID] {
			t.Fatalf("rank %d: duplicate ID %d in %v", i, r.ID, got)
		}
		seen[r.ID] = true
		if r.ID < 0 || r.ID >= len(data) || (dead != nil && dead[r.ID]) {
			t.Fatalf("rank %d: ID %d is not a live row", i, r.ID)
		}
		if exact := q.Score(data[r.ID]); r.Score != exact {
			t.Fatalf("rank %d: ID %d reported score %v, rescores to %v", i, r.ID, r.Score, exact)
		}
		if r.Score != want[i].Score {
			t.Fatalf("rank %d: score %v, oracle has %v\ngot  %v\nwant %v", i, r.Score, want[i].Score, got, want)
		}
		if deterministic && r.ID != want[i].ID {
			t.Fatalf("rank %d: ID %d, oracle has %d (ascending-ID tie-break)\ngot  %v\nwant %v",
				i, r.ID, want[i].ID, got, want)
		}
	}
}

// Run drives the factory through every workload. Each workload is a subtest
// so failures name the offending configuration and seed.
func Run(t *testing.T, f Factory) {
	for _, wl := range workloads() {
		t.Run(wl.name, func(t *testing.T) {
			eng, err := f.New(wl.data, wl.roles)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if c, ok := eng.(interface{ Close() }); ok {
				defer c.Close()
			}
			if eng.Len() != len(wl.data) {
				t.Fatalf("Len = %d, want %d", eng.Len(), len(wl.data))
			}
			for qi, q := range queries(wl, 8) {
				got, err := eng.TopK(q)
				if err != nil {
					t.Fatalf("query %d: %v", qi, err)
				}
				check(t, q, wl.data, nil, got, f.Deterministic)
			}
			if up, ok := eng.(updatable); ok && !f.SkipUpdates {
				runUpdates(t, f, wl, eng, up)
			}
		})
	}
}

// runUpdates interleaves inserts, removes, and differential queries,
// mirroring the live set for the oracle. Engines that expose snapshots are
// additionally held to snapshot isolation: snapshots taken mid-stream are
// re-queried after every later mutation and must keep answering
// byte-identically to the oracle frozen at their acquisition point, no
// matter how much insert/remove churn (and, for segment engines, background
// compaction) has happened since.
func runUpdates(t *testing.T, f Factory, wl workload, eng sdquery.Engine, up updatable) {
	t.Helper()
	rng := rand.New(rand.NewSource(wl.seed * 7))
	mirror := append([][]float64(nil), wl.data...)
	dead := make([]bool, len(mirror))
	dims := len(wl.roles)

	// Epoch discipline, for engines that expose it (the serve layer's result
	// cache keys on these invariants): the epoch never moves backwards, and
	// every mutation strictly advances it. Queries and no-op removes must
	// not regress it either — though background compaction may legitimately
	// advance it at any time, so only monotonicity is asserted there.
	ep, hasEpoch := eng.(interface{ Epoch() uint64 })
	var lastEpoch uint64
	if hasEpoch {
		lastEpoch = ep.Epoch()
	}
	checkEpoch := func(step int, mutated bool) {
		if !hasEpoch {
			return
		}
		now := ep.Epoch()
		if now < lastEpoch {
			t.Fatalf("step %d: epoch went backwards: %d -> %d", step, lastEpoch, now)
		}
		if mutated && now == lastEpoch {
			t.Fatalf("step %d: mutation did not advance the epoch (still %d)", step, now)
		}
		lastEpoch = now
	}

	// One frozen view plus the oracle state it was taken against; re-taken
	// at a few fixed steps so isolation is tested across varying amounts of
	// subsequent churn.
	type frozen struct {
		view   frozenView
		mirror [][]float64
		dead   []bool
		step   int
	}
	var snaps []frozen
	takeSnapshot := func(step int) {
		if v := snapshotOf(eng); v != nil {
			snaps = append(snaps, frozen{
				view:   v,
				mirror: append([][]float64(nil), mirror...),
				dead:   append([]bool(nil), dead...),
				step:   step,
			})
		}
	}
	checkSnapshots := func(step int) {
		for _, fr := range snaps {
			if got := fr.view.Len(); got != liveCount(fr.dead) {
				t.Fatalf("step %d: snapshot from step %d: Len = %d, frozen oracle has %d",
					step, fr.step, got, liveCount(fr.dead))
			}
			for _, q := range queries(wl, 1) {
				got, err := fr.view.TopK(q)
				if err != nil {
					t.Fatalf("step %d: snapshot from step %d: %v", step, fr.step, err)
				}
				check(t, q, fr.mirror, fr.dead, got, f.Deterministic)
			}
		}
	}

	for step := 0; step < 60; step++ {
		if step == 0 || step == 17 || step == 41 {
			takeSnapshot(step)
		}
		switch rng.Intn(3) {
		case 0:
			p := make([]float64, dims)
			for d := range p {
				p[d] = float64(rng.Intn(4)) / 4
			}
			id, err := up.Insert(p)
			if err != nil {
				t.Fatalf("step %d: insert: %v", step, err)
			}
			if id != len(mirror) {
				t.Fatalf("step %d: insert returned ID %d, want %d", step, id, len(mirror))
			}
			mirror = append(mirror, p)
			dead = append(dead, false)
			checkEpoch(step, true)
			checkSnapshots(step)
		case 1:
			id := rng.Intn(len(mirror))
			removed := up.Remove(id)
			if removed != !dead[id] {
				t.Fatalf("step %d: Remove(%d) liveness disagrees with mirror", step, id)
			}
			dead[id] = true
			checkEpoch(step, removed)
			checkSnapshots(step)
		default:
			for _, q := range queries(wl, 2) {
				got, err := eng.TopK(q)
				if err != nil {
					t.Fatalf("step %d: query: %v", step, err)
				}
				check(t, q, mirror, dead, got, f.Deterministic)
			}
			checkEpoch(step, false)
		}
	}
	checkSnapshots(60)
}

func liveCount(dead []bool) int {
	n := 0
	for _, d := range dead {
		if !d {
			n++
		}
	}
	return n
}
