// Package brs is the Branch-and-bound Ranked Search baseline [Tao et al.,
// Information Systems 2007] adapted to main memory as in the paper's §6.1:
// points indexed by an in-memory R*-tree, queries answered by best-first
// traversal with an upper bound of the SD-score computed per minimum
// bounding rectangle.
//
// The paper describes BRS's adaptation as running constrained top-k queries
// in each region where the score is monotone per dimension. The per-MBR
// bound below is the same computation: within a rectangle, the repulsive
// contribution is maximized at the corner farthest from q per dimension, and
// the attractive penalty minimized at the nearest coordinate (zero when q's
// coordinate lies inside the rectangle's extent) — exactly the region-wise
// monotone extrema.
package brs

import (
	"fmt"
	"math"

	"repro/internal/query"
	"repro/internal/rstar"
)

// Engine holds the R*-tree over the dataset.
type Engine struct {
	data [][]float64
	dims int
	tree *rstar.Tree
}

// NodeCapacityFor returns the paper's tuned node capacities: 28, 16, 12, 9
// for 2, 4, 6, 8 dimensions (nearest bucket for other dimensionalities).
func NodeCapacityFor(dims int) int {
	switch {
	case dims <= 3:
		return 28
	case dims <= 5:
		return 16
	case dims <= 7:
		return 12
	default:
		return 9
	}
}

// New builds the engine with the paper's tuned node capacity for the data's
// dimensionality. Points are inserted one by one (the R*-tree construction
// whose cost Figure 8j reports).
func New(data [][]float64) (*Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	return NewWithCapacity(data, NodeCapacityFor(dims))
}

// NewWithCapacity builds the engine with an explicit R*-tree node capacity.
func NewWithCapacity(data [][]float64, capacity int) (*Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	e := &Engine{data: data, dims: dims, tree: rstar.New(max(dims, 1), capacity)}
	for i, p := range data {
		if len(p) != dims {
			return nil, fmt.Errorf("brs: point %d has %d dims, want %d", i, len(p), dims)
		}
		if err := e.tree.Insert(p, int32(i)); err != nil {
			return nil, fmt.Errorf("brs: %w", err)
		}
	}
	return e, nil
}

// Len returns the dataset size.
func (e *Engine) Len() int { return len(e.data) }

// Insert adds a point to the underlying tree (Figure 8b's insertion cost).
func (e *Engine) Insert(p []float64) error {
	if len(p) != e.dims {
		return fmt.Errorf("brs: point has %d dims, want %d", len(p), e.dims)
	}
	id := int32(len(e.data))
	e.data = append(e.data, p)
	return e.tree.Insert(p, id)
}

// TopK answers the query by best-first branch and bound. Because the bound
// is exact on points, the traversal emits points in true score order and the
// first k popped points are the answer.
func (e *Engine) TopK(spec query.Spec) ([]query.Result, error) {
	if err := spec.Validate(e.dims); err != nil {
		return nil, err
	}
	upper := func(lo, hi []float64) float64 {
		var bound float64
		for d, role := range spec.Roles {
			switch role {
			case query.Repulsive:
				bound += spec.Weights[d] * math.Max(math.Abs(spec.Point[d]-lo[d]), math.Abs(spec.Point[d]-hi[d]))
			case query.Attractive:
				if spec.Point[d] < lo[d] {
					bound -= spec.Weights[d] * (lo[d] - spec.Point[d])
				} else if spec.Point[d] > hi[d] {
					bound -= spec.Weights[d] * (spec.Point[d] - hi[d])
				}
			}
		}
		return bound
	}
	bf := e.tree.BestFirst(upper)
	out := make([]query.Result, 0, spec.K)
	for len(out) < spec.K {
		_, id, score, ok := bf.Next()
		if !ok {
			break
		}
		out = append(out, query.Result{ID: int(id), Score: score})
	}
	return out, nil
}
