package brs

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline/scan"
	"repro/internal/dataset"
	"repro/internal/query"
)

func TestNodeCapacityFor(t *testing.T) {
	cases := map[int]int{2: 28, 4: 16, 6: 12, 8: 9, 3: 28, 5: 16, 7: 12, 10: 9}
	for dims, want := range cases {
		if got := NodeCapacityFor(dims); got != want {
			t.Errorf("NodeCapacityFor(%d) = %d, want %d", dims, got, want)
		}
	}
}

func TestBRSMatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 20; trial++ {
		dims := 2 + rng.Intn(5)
		data := dataset.Generate(dataset.Correlated, 150+rng.Intn(300), dims, int64(trial))
		e, err := New(data)
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := scan.New(data)
		spec := query.Spec{
			Point:   make([]float64, dims),
			K:       rng.Intn(10) + 1,
			Roles:   make([]query.Role, dims),
			Weights: make([]float64, dims),
		}
		for d := 0; d < dims; d++ {
			spec.Point[d] = rng.Float64()
			spec.Weights[d] = rng.Float64()
			if d%2 == 0 {
				spec.Roles[d] = query.Repulsive
			} else {
				spec.Roles[d] = query.Attractive
			}
		}
		got, err := e.TopK(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := truth.TopK(spec)
		if len(got) != len(want) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("result %d: %v, want %v", i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestBRSInsert(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 50, 2, 3)
	e, err := New(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert([]float64{0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert([]float64{0.5}); err == nil {
		t.Fatal("wrong-dims insert accepted")
	}
	if e.Len() != 51 {
		t.Fatalf("Len = %d, want 51", e.Len())
	}
	// The inserted point must be findable: query for its neighborhood with
	// a pure attractive query; the nearest point to (0.5, 0.5) includes it.
	spec := query.Spec{
		Point:   []float64{0.5, 0.5},
		K:       1,
		Roles:   []query.Role{query.Attractive, query.Attractive},
		Weights: []float64{1, 1},
	}
	res, err := e.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 50 || res[0].Score != 0 {
		t.Fatalf("inserted point not the nearest: %+v", res[0])
	}
}

func TestBRSValidation(t *testing.T) {
	if _, err := New([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged data accepted")
	}
	e, _ := New(nil)
	if e.Len() != 0 {
		t.Fatal("empty engine Len != 0")
	}
}
