// Package scan is the sequential-scan baseline: exact scores for every
// point, k best kept in a bounded heap. It is both the simplest engine and
// the ground truth every other engine is tested against.
package scan

import (
	"fmt"

	"repro/internal/pq"
	"repro/internal/query"
)

// Engine scans the dataset on every query.
type Engine struct {
	data [][]float64
	dims int
}

// New wraps a dataset (not copied). All points must share one length.
func New(data [][]float64) (*Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	for i, p := range data {
		if len(p) != dims {
			return nil, fmt.Errorf("scan: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	return &Engine{data: data, dims: dims}, nil
}

// Len returns the dataset size.
func (e *Engine) Len() int { return len(e.data) }

// TopK answers the query by scanning every point.
func (e *Engine) TopK(spec query.Spec) ([]query.Result, error) {
	if err := spec.Validate(e.dims); err != nil {
		return nil, err
	}
	// Scan iterates in ID order, so insertion-order tie-breaking already is
	// ascending-ID tie-breaking; the explicit order documents the contract
	// every other engine is held to.
	collector := pq.NewTopKOrdered[int](spec.K, func(a, b int) bool { return a < b })
	for i, p := range e.data {
		collector.Add(i, spec.Score(p))
	}
	scored := collector.Results()
	out := make([]query.Result, len(scored))
	for i, s := range scored {
		out[i] = query.Result{ID: s.Item, Score: s.Score}
	}
	return out, nil
}
