package scan

import (
	"math"
	"testing"

	"repro/internal/query"
)

func TestScanOrdering(t *testing.T) {
	data := [][]float64{
		{0, 0},  // score 0·rep − |0−5| = ... depends on spec below
		{10, 5}, // far in dim0 (repulsive), exact in dim1 (attractive)
		{9, 0},
		{1, 5},
	}
	e, err := New(data)
	if err != nil {
		t.Fatal(err)
	}
	spec := query.Spec{
		Point:   []float64{0, 5},
		K:       4,
		Roles:   []query.Role{query.Repulsive, query.Attractive},
		Weights: []float64{1, 1},
	}
	res, err := e.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	// scores: p0: 0−5=−5; p1: 10−0=10; p2: 9−5=4; p3: 1−0=1
	wantIDs := []int{1, 2, 3, 0}
	wantScores := []float64{10, 4, 1, -5}
	for i := range wantIDs {
		if res[i].ID != wantIDs[i] || math.Abs(res[i].Score-wantScores[i]) > 1e-12 {
			t.Fatalf("result %d = %+v, want id %d score %v", i, res[i], wantIDs[i], wantScores[i])
		}
	}
}

func TestScanValidation(t *testing.T) {
	if _, err := New([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged data accepted")
	}
	e, _ := New([][]float64{{1, 2}})
	spec := query.Spec{Point: []float64{1}, K: 1,
		Roles: []query.Role{query.Repulsive}, Weights: []float64{1}}
	if _, err := e.TopK(spec); err == nil {
		t.Fatal("dims mismatch accepted")
	}
}

func TestScanEmptyAndKOverflow(t *testing.T) {
	e, _ := New(nil)
	if e.Len() != 0 {
		t.Fatal("empty Len != 0")
	}
	e2, _ := New([][]float64{{1}, {2}})
	spec := query.Spec{Point: []float64{0}, K: 10,
		Roles: []query.Role{query.Repulsive}, Weights: []float64{1}}
	res, err := e2.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("k>n returned %d, want 2", len(res))
	}
}
