package pe

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline/scan"
	"repro/internal/dataset"
	"repro/internal/query"
)

func TestPEMatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 25; trial++ {
		dims := 1 + rng.Intn(6)
		data := dataset.Generate(dataset.AntiCorrelated, 100+rng.Intn(300), dims, int64(trial))
		e, err := New(data)
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := scan.New(data)
		spec := query.Spec{
			Point:   make([]float64, dims),
			K:       rng.Intn(10) + 1,
			Roles:   make([]query.Role, dims),
			Weights: make([]float64, dims),
		}
		for d := 0; d < dims; d++ {
			spec.Point[d] = rng.Float64()
			spec.Weights[d] = rng.Float64() + 0.01
			if rng.Intn(2) == 0 {
				spec.Roles[d] = query.Attractive
			} else {
				spec.Roles[d] = query.Repulsive
			}
		}
		got, err := e.TopK(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := truth.TopK(spec)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("trial %d result %d: %v, want %v", trial, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestPEInsert(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 40, 3, 7)
	e, err := New(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Insert([]float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := e.Insert([]float64{0.1}); err == nil {
		t.Fatal("wrong-dims insert accepted")
	}
	if e.Len() != 41 {
		t.Fatalf("Len = %d, want 41", e.Len())
	}
	spec := query.Spec{
		Point:   []float64{0.1, 0.2, 0.3},
		K:       1,
		Roles:   []query.Role{query.Attractive, query.Attractive, query.Attractive},
		Weights: []float64{1, 1, 1},
	}
	res, err := e.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].ID != 40 || res[0].Score != 0 {
		t.Fatalf("inserted point not found as nearest: %+v", res[0])
	}
}

func TestPEValidationAndEmpty(t *testing.T) {
	if _, err := New([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged data accepted")
	}
	e, _ := New(nil)
	if e.Len() != 0 {
		t.Fatal("empty Len != 0")
	}
}

func TestPEKLargerThanN(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 5, 2, 9)
	e, _ := New(data)
	spec := query.Spec{
		Point:   []float64{0.5, 0.5},
		K:       50,
		Roles:   []query.Role{query.Repulsive, query.Attractive},
		Weights: []float64{1, 1},
	}
	res, err := e.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("k>n returned %d, want 5", len(res))
	}
}
