// Package pe is the Progressive Exploration baseline [Xin, Han, Chang,
// SIGMOD 2007] adapted to main memory. The original computes top-k answers
// under ad-hoc ranking functions by progressively and selectively merging
// per-attribute index streams, deferring access to full records until bounds
// prove it necessary.
//
// Substitution note (documented in DESIGN.md): we reproduce that access
// pattern with an NRA-style progressive merge — per-dimension sorted lists
// are consumed in best-contribution order, partial scores are accumulated
// per point, and upper/lower bounds decide termination without random
// access. This preserves the property the paper's comparison exercises: no
// precomputed isolines, per-attribute progressive access, and bound-based
// stopping, with the candidate-bookkeeping overhead that keeps PE in the
// sequential-scan performance band at moderate dimensionality (Figures
// 7a–c). Bookkeeping uses flat per-row arrays recycled across queries;
// termination checks run on a geometric back-off so their cost stays
// O(n log n) overall.
package pe

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dimlist"
	"repro/internal/pq"
	"repro/internal/query"
)

// Engine holds one sorted list per dimension.
type Engine struct {
	data  [][]float64
	dims  int
	lists []*dimlist.List
	// column extrema, for worst-case (lower-bound) contributions
	minVal, maxVal []float64
	scratchPool    sync.Pool
}

// scratch is the per-query bookkeeping, recycled across queries.
type scratch struct {
	partial []float64 // accumulated contribution per row
	seen    []uint64  // bitmask over active-dimension indices per row
	touched []int32   // rows with any accumulation, in first-touch order
}

// New builds the per-dimension access structures.
func New(data [][]float64) (*Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	e := &Engine{data: data, dims: dims,
		minVal: make([]float64, dims), maxVal: make([]float64, dims)}
	for d := range e.minVal {
		e.minVal[d], e.maxVal[d] = math.Inf(1), math.Inf(-1)
	}
	for i, p := range data {
		if len(p) != dims {
			return nil, fmt.Errorf("pe: point %d has %d dims, want %d", i, len(p), dims)
		}
		for d, c := range p {
			e.minVal[d] = math.Min(e.minVal[d], c)
			e.maxVal[d] = math.Max(e.maxVal[d], c)
		}
	}
	e.lists = make([]*dimlist.List, dims)
	for d := 0; d < dims; d++ {
		e.lists[d] = dimlist.Build(data, d)
	}
	e.scratchPool.New = func() any {
		return &scratch{
			partial: make([]float64, len(data)),
			seen:    make([]uint64, len(data)),
		}
	}
	return e, nil
}

// Len returns the dataset size.
func (e *Engine) Len() int { return len(e.data) }

// Insert appends a point to the per-dimension lists (Figure 8b's insertion
// cost: one sorted splice per dimension). Scratch buffers are regrown
// lazily on the next query.
func (e *Engine) Insert(p []float64) error {
	if len(p) != e.dims {
		return fmt.Errorf("pe: point has %d dims, want %d", len(p), e.dims)
	}
	id := int32(len(e.data))
	e.data = append(e.data, p)
	for d := 0; d < e.dims; d++ {
		e.lists[d].Insert(p[d], id)
		e.minVal[d] = math.Min(e.minVal[d], p[d])
		e.maxVal[d] = math.Max(e.maxVal[d], p[d])
	}
	return nil
}

type activeDim struct {
	it    *dimlist.Iter
	worst float64 // minimum possible contribution on this dimension
}

// TopK runs the progressive merge without random access.
func (e *Engine) TopK(spec query.Spec) ([]query.Result, error) {
	if err := spec.Validate(e.dims); err != nil {
		return nil, err
	}
	var active []activeDim
	for d, role := range spec.Roles {
		switch role {
		case query.Attractive:
			worst := -spec.Weights[d] * math.Max(math.Abs(spec.Point[d]-e.minVal[d]), math.Abs(spec.Point[d]-e.maxVal[d]))
			active = append(active, activeDim{e.lists[d].NewIter(spec.Point[d], spec.Weights[d], true), worst})
		case query.Repulsive:
			active = append(active, activeDim{e.lists[d].NewIter(spec.Point[d], spec.Weights[d], false), 0})
		}
	}
	if len(active) > 64 {
		return nil, fmt.Errorf("pe: more than 64 active dimensions")
	}
	if len(e.data) == 0 {
		return nil, nil
	}

	sc := e.scratchPool.Get().(*scratch)
	defer e.release(sc)
	if len(sc.partial) < len(e.data) {
		sc.partial = make([]float64, len(e.data))
		sc.seen = make([]uint64, len(e.data))
	}

	bounds := make([]float64, len(active))
	round, nextCheck := 0, 4
	for {
		round++
		progressed := false
		for ai := range active {
			id, contrib, ok := active[ai].it.Next()
			bounds[ai] = active[ai].it.Bound()
			if !ok {
				continue
			}
			progressed = true
			bit := uint64(1) << uint(ai)
			if sc.seen[id] == 0 {
				sc.touched = append(sc.touched, id)
			}
			if sc.seen[id]&bit == 0 {
				sc.seen[id] |= bit
				sc.partial[id] += contrib
			}
		}
		if !progressed {
			return e.finishExact(spec, sc), nil
		}
		if round >= nextCheck {
			nextCheck *= 2
			if done, results := e.tryFinish(spec, active, bounds, sc); done {
				return results, nil
			}
		}
	}
}

func (e *Engine) release(sc *scratch) {
	for _, id := range sc.touched {
		sc.partial[id] = 0
		sc.seen[id] = 0
	}
	sc.touched = sc.touched[:0]
	e.scratchPool.Put(sc)
}

// tryFinish checks the NRA stopping rule: the k-th best lower bound must
// reach both the upper bound of every other candidate and the upper bound of
// any entirely-unseen point. The pass keeps the k best lower bounds in a
// bounded heap (O(touched · log k)) rather than sorting the candidate set.
func (e *Engine) tryFinish(spec query.Spec, active []activeDim, bounds []float64, sc *scratch) (bool, []query.Result) {
	var unseenUB float64
	for _, b := range bounds {
		unseenUB += b
	}
	k := spec.K
	if k > len(e.data) {
		k = len(e.data)
	}
	if len(sc.touched) < k {
		return false, nil
	}
	lbOf := func(id int32) float64 {
		lb := sc.partial[id]
		for ai := range active {
			if sc.seen[id]&(1<<uint(ai)) == 0 {
				lb += active[ai].worst
			}
		}
		return lb
	}
	top := pq.NewTopK[int32](k)
	for _, id := range sc.touched {
		top.Add(id, lbOf(id))
	}
	kthLB := top.Threshold()
	if len(sc.touched) < len(e.data) && kthLB < unseenUB {
		return false, nil
	}
	winners := top.Results()
	inTop := make(map[int32]bool, k)
	for _, w := range winners {
		inTop[w.Item] = true
	}
	for _, id := range sc.touched {
		if inTop[id] {
			continue
		}
		ub := sc.partial[id]
		for ai := range active {
			if sc.seen[id]&(1<<uint(ai)) == 0 {
				ub += bounds[ai]
			}
		}
		if ub > kthLB {
			return false, nil
		}
	}
	// The top-k membership is decided; resolve exact scores for the
	// winners (the final per-answer record access even NRA performs).
	out := make([]query.Result, 0, k)
	for _, w := range winners {
		out = append(out, query.Result{ID: int(w.Item), Score: spec.Score(e.data[w.Item])})
	}
	sortResults(out)
	return true, out
}

// finishExact scores every touched candidate; used when all streams drained
// (every point has then been seen on every active dimension).
func (e *Engine) finishExact(spec query.Spec, sc *scratch) []query.Result {
	out := make([]query.Result, 0, len(sc.touched))
	for _, id := range sc.touched {
		out = append(out, query.Result{ID: int(id), Score: spec.Score(e.data[id])})
	}
	sortResults(out)
	if len(out) > spec.K {
		out = out[:spec.K]
	}
	return out
}

func sortResults(out []query.Result) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
}
