package ta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline/scan"
	"repro/internal/dataset"
	"repro/internal/query"
)

func TestTAWorkedExample(t *testing.T) {
	// The publishers example of §5 (Figure 6), solved with per-dimension
	// subproblems: price repulsive, hit rate and coverage attractive.
	data := [][]float64{
		{100, 15, 95}, // A: price, hit rate, coverage
		{20, 10, 80},  // B
		{55, 12, 68},  // C
		{75, 14, 50},  // D
	}
	e, err := New(data)
	if err != nil {
		t.Fatal(err)
	}
	spec := query.Spec{
		Point:   []float64{10, 12, 75},
		K:       4,
		Roles:   []query.Role{query.Repulsive, query.Attractive, query.Attractive},
		Weights: []float64{1, 1, 1},
	}
	res, err := e.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := scan.New(data)
	want, _ := truth.TopK(spec)
	for i := range want {
		if res[i].ID != want[i].ID || math.Abs(res[i].Score-want[i].Score) > 1e-12 {
			t.Fatalf("result %d = %+v, want %+v", i, res[i], want[i])
		}
	}
}

func TestTAMatchesScanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 30; trial++ {
		dims := 1 + rng.Intn(6)
		data := dataset.Generate(dataset.Uniform, 100+rng.Intn(200), dims, int64(trial))
		e, err := New(data)
		if err != nil {
			t.Fatal(err)
		}
		truth, _ := scan.New(data)
		spec := query.Spec{
			Point:   make([]float64, dims),
			K:       rng.Intn(8) + 1,
			Roles:   make([]query.Role, dims),
			Weights: make([]float64, dims),
		}
		for d := 0; d < dims; d++ {
			spec.Point[d] = rng.Float64()
			spec.Weights[d] = rng.Float64()
			if rng.Intn(2) == 0 {
				spec.Roles[d] = query.Attractive
			} else {
				spec.Roles[d] = query.Repulsive
			}
		}
		got, err := e.TopK(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := truth.TopK(spec)
		if len(got) != len(want) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("result %d: %v, want %v", i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestTAValidation(t *testing.T) {
	if _, err := New([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged data accepted")
	}
	e, _ := New([][]float64{{1}, {5}})
	spec := query.Spec{Point: []float64{0}, K: 0,
		Roles: []query.Role{query.Repulsive}, Weights: []float64{1}}
	if _, err := e.TopK(spec); err == nil {
		t.Fatal("k=0 accepted")
	}
	if e.Len() != 2 {
		t.Fatalf("Len = %d", e.Len())
	}
}
