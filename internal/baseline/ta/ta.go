// Package ta is the adapted Threshold Algorithm baseline exactly as the
// paper's §6.1 describes it: an ordered list per dimension; at query time a
// binary search fetches the closest points on attractive dimensions and the
// farthest on repulsive ones; fetched points are fully scored by random
// access, and iteration stops when the k-th best score reaches the threshold
// assembled from the per-dimension frontier bounds.
package ta

import (
	"fmt"
	"math"

	"repro/internal/dimlist"
	"repro/internal/pq"
	"repro/internal/query"
)

// Engine holds the dataset and one sorted list per dimension.
type Engine struct {
	data  [][]float64
	dims  int
	lists []*dimlist.List
}

// New builds the per-dimension sorted lists.
func New(data [][]float64) (*Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	e := &Engine{data: data, dims: dims}
	for i, p := range data {
		if len(p) != dims {
			return nil, fmt.Errorf("ta: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	e.lists = make([]*dimlist.List, dims)
	for d := 0; d < dims; d++ {
		e.lists[d] = dimlist.Build(data, d)
	}
	return e, nil
}

// Len returns the dataset size.
func (e *Engine) Len() int { return len(e.data) }

// TopK runs the threshold algorithm, treating every active dimension as its
// own subproblem (the granularity difference the paper's SD-Index improves
// on).
func (e *Engine) TopK(spec query.Spec) ([]query.Result, error) {
	if err := spec.Validate(e.dims); err != nil {
		return nil, err
	}
	var iters []*dimlist.Iter
	for d, role := range spec.Roles {
		switch role {
		case query.Attractive:
			iters = append(iters, e.lists[d].NewIter(spec.Point[d], spec.Weights[d], true))
		case query.Repulsive:
			iters = append(iters, e.lists[d].NewIter(spec.Point[d], spec.Weights[d], false))
		}
	}
	// Ascending-ID tie-breaking matches the sequential scan byte for byte.
	collector := pq.NewTopKOrdered[int](spec.K, func(a, b int) bool { return a < b })
	seen := make(map[int32]bool)
	for {
		exhausted := true
		for _, it := range iters {
			id, _, ok := it.Next()
			if !ok {
				continue
			}
			exhausted = false
			if seen[id] {
				continue
			}
			seen[id] = true
			collector.Add(int(id), spec.Score(e.data[id]))
		}
		if exhausted {
			break
		}
		// Threshold: the sum of the per-dimension frontier bounds is the
		// best score any entirely-unfetched point can still achieve. An
		// exhausted dimension has already surfaced every point, so no
		// unfetched point exists and the threshold collapses to −Inf.
		threshold := 0.0
		for _, it := range iters {
			threshold += it.Bound()
		}
		// Strict: an unseen point tying the k-th best could still enter
		// through the ID tie-break.
		if collector.Full() && (math.IsInf(threshold, -1) || collector.Threshold() > threshold) {
			break
		}
	}
	scored := collector.Results()
	out := make([]query.Result, len(scored))
	for i, s := range scored {
		out[i] = query.Result{ID: s.Item, Score: s.Score}
	}
	return out, nil
}
