package topk

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/pq"
	"repro/internal/query"
)

// Stream enumerates all indexed points in non-increasing SD-score order for
// one query and one pair of raw weights — the incremental form the §5
// multi-dimensional engine consumes as a 2D subproblem.
//
// The default implementation runs a single Algorithm-2 merge whose per-node
// bounds are blended from the two indexed angles bracketing the query angle
// (see blend). StreamAlg4 is the paper's literal Algorithm 4 — a θ_l merge
// whose top set is progressively covered by a θ_u-ordered prefix (Claim 6) —
// kept as an alternative and compared in tests and the ablation benchmarks.
//
// A Stream is reusable: StreamInto rebinds an existing Stream (typically one
// pooled in a query context) to a new query, reusing the cursor slices,
// merge structure, and heap arrays, so the steady-state hot path performs no
// allocation.
type Stream struct {
	q           geom.Point
	alpha, beta float64
	scale       float64

	cur  cursor
	m    merge
	live bool // m holds an active merge

	// Algorithm-4 state (nil unless built by StreamAlg4).
	alg4 *alg4State
}

// Stream returns an iterator over all points in descending
// SD-score(·, q) = alpha·|Δy| − beta·|Δx| order.
func (idx *Index) Stream(q geom.Point, alpha, beta float64) (*Stream, error) {
	s := new(Stream)
	if err := idx.StreamInto(s, q, alpha, beta); err != nil {
		return nil, err
	}
	return s, nil
}

// StreamInto rebinds s to a new query over idx, reusing s's internal
// buffers. Any previous state is released first, so a pooled Stream cycles
// through queries without allocating.
func (idx *Index) StreamInto(s *Stream, q geom.Point, alpha, beta float64) error {
	qa, err := streamChecks(q, alpha, beta)
	if err != nil {
		return err
	}
	s.Close()
	s.q, s.alpha, s.beta = q, alpha, beta
	s.scale = geom.Scale(alpha, beta)
	if idx.root == nil {
		return nil
	}
	s.cur.init(idx, q)
	s.m.init(&s.cur, idx.blendFor(qa))
	s.live = true
	return nil
}

func streamChecks(q geom.Point, alpha, beta float64) (geom.Angle, error) {
	if math.IsNaN(q.X) || math.IsInf(q.X, 0) || math.IsNaN(q.Y) || math.IsInf(q.Y, 0) {
		return geom.Angle{}, fmt.Errorf("topk: query has non-finite coordinates (%v, %v)", q.X, q.Y)
	}
	qa, err := geom.NewAngle(alpha, beta)
	if err != nil {
		return geom.Angle{}, fmt.Errorf("topk: %w", err)
	}
	return qa, nil
}

// rawScore is the SD-score under the stream's raw (unnormalized) weights.
func (s *Stream) rawScore(p geom.Point) float64 {
	return s.alpha*math.Abs(p.Y-s.q.Y) - s.beta*math.Abs(p.X-s.q.X)
}

// Next returns the next point in non-increasing score order.
func (s *Stream) Next() (Result, bool) {
	if s.alg4 != nil {
		return s.alg4.next(s)
	}
	if !s.live {
		return Result{}, false
	}
	p, score, ok := s.m.next()
	if !ok {
		return Result{}, false
	}
	// The raw score is the normalized one rescaled by hypot(α, β).
	return Result{Point: p, Score: score * s.scale}, true
}

// NextBatch bulk-fetches up to len(dst) emissions in non-increasing raw
// score order, returning the count (0 when exhausted) and the raw score the
// next emission will carry — the post-batch frontier bound, −Inf when the
// stream is exhausted. For blended streams the bound is read off the merge's
// already-materialized stream heads (it always equals what PeekScore would
// report), so bound-driven schedulers pay no separate peek. Algorithm-4
// streams report +Inf — peeking would force the covering prefix to extend
// (hidden work), and +Inf is always an admissible upper bound. Emission
// order is identical to repeated Next calls; the batch form drains whole
// runs from the winning merge stream (and, below it, whole leaf-cursor runs)
// instead of paying a four-way comparison and two virtual calls per point.
func (s *Stream) NextBatch(dst []query.Emission) (int, float64) {
	if s.alg4 != nil {
		n := 0
		for n < len(dst) {
			r, ok := s.alg4.next(s)
			if !ok {
				break
			}
			dst[n] = query.Emission{ID: int32(r.Point.ID), Contrib: r.Score}
			n++
		}
		if n < len(dst) {
			return n, math.Inf(-1) // exhausted mid-batch: nothing is left
		}
		return n, math.Inf(1)
	}
	if !s.live {
		return 0, math.Inf(-1)
	}
	n, next := s.m.drainInto(dst, s.scale)
	if math.IsInf(next, -1) {
		return n, next
	}
	return n, next * s.scale
}

// PeekScore returns the raw score the next emission will carry, without
// consuming it — an exact upper bound on every unfetched point. The second
// result is false when the stream is exhausted. Only blended streams
// support peeking; Algorithm-4 streams would have to extend their covering
// prefix to answer, so they panic instead of silently doing hidden work.
func (s *Stream) PeekScore() (float64, bool) {
	if s.alg4 != nil {
		panic("topk: PeekScore is not supported on Algorithm-4 streams")
	}
	if !s.live {
		return 0, false
	}
	sc, ok := s.m.peekScore()
	if !ok {
		return 0, false
	}
	return sc * s.scale, true
}

// Close releases pooled per-query buffers. Optional but recommended on hot
// paths; the stream must not be used afterwards (StreamInto revives it).
// Safe to call more than once.
func (s *Stream) Close() {
	if s.live {
		s.m.release()
		s.live = false
	}
	if s.alg4 != nil {
		s.alg4.lower.release()
		s.alg4.upper.release()
		s.alg4 = nil
	}
}

// alg4State implements the paper's Algorithm 4 incrementally: before the
// i-th emission the θ_u-ordered prefix is extended until it covers the top-i
// points at θ_l; by Claim 6 the prefix then contains the top-i points at the
// query angle. Coverage is decided by score comparison — the θ_u merge is
// advanced while its next normalized score is at least that of the θ_l point
// being covered, which necessarily emits the point itself — so no identity
// bookkeeping is needed.
type alg4State struct {
	q          geom.Point
	upperAngle geom.Angle
	lower      *merge           // at θ_l, ordered by θ_l score
	upper      *merge           // at θ_u, ordered by θ_u score
	cands      *pq.Heap[Result] // fetched but unemitted, by raw score desc
	lowerDone  bool
}

// StreamAlg4 returns a Stream driven by the literal Algorithm 4 instead of
// blended node bounds. Results are identical; the blended stream fetches
// fewer points (no θ_u over-fetch), which the ablation benchmarks quantify.
func (idx *Index) StreamAlg4(q geom.Point, alpha, beta float64) (*Stream, error) {
	qa, err := streamChecks(q, alpha, beta)
	if err != nil {
		return nil, err
	}
	s := &Stream{q: q, alpha: alpha, beta: beta, scale: geom.Scale(alpha, beta)}
	if idx.root == nil {
		return s, nil
	}
	bl := idx.blendFor(qa)
	s.cur.init(idx, q)
	if bl.al == bl.au {
		s.m.init(&s.cur, bl) // exact indexed angle: no bracketing needed
		s.live = true
		return s, nil
	}
	exact := func(ai int) blend {
		return blend{angle: idx.angles[ai], al: ai, au: ai, lambda: 1, mu: 0}
	}
	s.alg4 = &alg4State{
		q:          q,
		upperAngle: idx.angles[bl.au],
		lower:      s.cur.newMerge(exact(bl.al)),
		upper:      s.cur.newMerge(exact(bl.au)),
		cands:      pq.NewHeap(func(a, b Result) bool { return a.Score > b.Score }),
	}
	return s, nil
}

func (a *alg4State) next(s *Stream) (Result, bool) {
	if !a.lowerDone {
		if lp, _, ok := a.lower.next(); ok {
			target := a.upperAngle.Score(lp, a.q)
			for {
				peek, ok := a.upper.peekScore()
				if !ok || peek < target {
					break
				}
				up, _, _ := a.upper.next()
				a.cands.Push(Result{Point: up, Score: s.rawScore(up)})
			}
		} else {
			a.lowerDone = true
		}
	}
	if a.cands.Len() == 0 {
		return Result{}, false
	}
	return a.cands.Pop(), true
}
