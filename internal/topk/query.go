package topk

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/simd"
)

// Result is one query answer: a point and its SD-score under the query's raw
// (unnormalized) weights.
type Result struct {
	Point geom.Point
	Score float64
}

// Query returns the k highest-scoring points for query q under
// SD-score(p, q) = alpha·|Δy| − beta·|Δx|, with alpha, beta ≥ 0 supplied at
// query time.
func (idx *Index) Query(q geom.Point, k int, alpha, beta float64) ([]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: k must be ≥ 1, got %d", k)
	}
	st, err := idx.Stream(q, alpha, beta)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var out []Result
	for len(out) < k {
		r, ok := st.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, nil
}

// matchAngle returns the index of an indexed angle within tolerance of deg,
// or -1.
func (idx *Index) matchAngle(deg float64) int {
	i := sort.SearchFloat64s(idx.degrees, deg)
	for _, j := range []int{i - 1, i} {
		if j >= 0 && j < len(idx.degrees) && math.Abs(idx.degrees[j]-deg) < 1e-9 {
			return j
		}
	}
	return -1
}

// blend expresses an arbitrary query angle as a non-negative combination of
// the two bracketing indexed angles: for θ_l ≤ θ_q ≤ θ_u,
//
//	(cos θ_q, sin θ_q) = λ·(cos θ_l, sin θ_l) + μ·(cos θ_u, sin θ_u)
//	λ = sin(θ_u − θ_q)/sin(θ_u − θ_l) ≥ 0,  μ = sin(θ_q − θ_l)/sin(θ_u − θ_l) ≥ 0,
//
// so every projection intercept — and hence every per-node bound — at θ_q is
// the same combination of the stored θ_l and θ_u values. This is the same
// single-crossing geometry that underlies the paper's Claim 6 (observation 2
// of §4.2), realized as an admissible per-node bound instead of the
// two-merge enumeration of Algorithm 4; see DESIGN.md. Both paths are
// implemented (Stream and StreamAlg4) and tested for agreement.
type blend struct {
	angle      geom.Angle // exact normalized query angle
	al, au     int        // bracketing indexed-angle positions (al == au if exact)
	lambda, mu float64
}

func (idx *Index) blendFor(qa geom.Angle) blend {
	deg := qa.Degrees()
	if ai := idx.matchAngle(deg); ai >= 0 {
		return blend{angle: qa, al: ai, au: ai, lambda: 1, mu: 0}
	}
	au := sort.SearchFloat64s(idx.degrees, deg)
	al := au - 1 // normalizeAngles guarantees 0° and 90° are present
	tl := idx.degrees[al] * math.Pi / 180
	tu := idx.degrees[au] * math.Pi / 180
	tq := deg * math.Pi / 180
	denom := math.Sin(tu - tl)
	return blend{
		angle:  qa,
		al:     al,
		au:     au,
		lambda: math.Sin(tu-tq) / denom,
		mu:     math.Sin(tq-tl) / denom,
	}
}

// cursor materializes the separating path for one query: the subtrees
// entirely right and entirely left of the query axis, plus the path leaf's
// points classified by side. All per-query state lives here, so a shared
// index serves concurrent queries. A cursor is reusable: init resets the
// slices in place, so a pooled Stream pays no per-query allocation for it.
type cursor struct {
	idx      *Index
	q        geom.Point
	right    []*node // subtrees with every point at x ≥ x_q
	left     []*node // subtrees with every point at x < x_q
	rightPts []geom.Point
	leftPts  []geom.Point
}

func (c *cursor) init(idx *Index, q geom.Point) {
	c.idx, c.q = idx, q
	c.right, c.left = c.right[:0], c.left[:0]
	c.rightPts, c.leftPts = c.rightPts[:0], c.leftPts[:0]
	nd := idx.root
	for nd != nil && !nd.leaf() {
		pos := sort.SearchFloat64s(nd.seps, q.X) // first separator ≥ x_q
		c.left = append(c.left, nd.children[:pos]...)
		if pos+1 < len(nd.children) {
			c.right = append(c.right, nd.children[pos+1:]...)
		}
		nd = nd.children[pos]
	}
	if nd != nil {
		for i := range nd.lids {
			if nd.lxs[i] >= q.X {
				c.rightPts = append(c.rightPts, nd.point(i))
			} else {
				c.leftPts = append(c.leftPts, nd.point(i))
			}
		}
	}
}

// newCursor allocates a fresh cursor (test/standalone convenience; hot paths
// reuse the one embedded in a Stream).
func (idx *Index) newCursor(q geom.Point) *cursor {
	c := new(cursor)
	c.init(idx, q)
	return c
}

// leafRunCap is the widest leaf a cursor entry can cover (the 64-bit mask)
// and therefore the longest run a single leaf drain can emit.
const leafRunCap = 64

// stream enumerates one projection type in projection order via best-first
// search over the per-node bounds. Each stream is restricted to the points
// for which Eqn. 6 actually selects its projection kind: the x side is
// enforced structurally by the separating path and the y side is filtered at
// emission, so every point belongs to exactly one of the four streams and
// its stream key differs from its normalized SD-score only by the additive
// constant ±(β·x_q − α·y_q).
//
// Minimizing streams (upper projections) negate their keys so that a single
// max-heap implementation serves all four kinds.
//
// The projection kind is resolved once at init into plain coefficients —
// pointKey(x, y) = cy·y + cx·x and nodeKey = nl·bounds[b1] + nm·bounds[b2] —
// so the hot loops carry no per-point or per-node switch and the leaf scan
// can hand whole coordinate columns to simd.BlendKeys. Folding the
// minimizing kinds' negation into the coefficient signs is bit-identical to
// negating afterwards: IEEE rounding is sign-symmetric, so fl(−a·b) = −fl(a·b)
// and fl(−x + −y) = −fl(x + y).
//
// Streams are value types embedded in a merge so a pooled Stream carries no
// per-query pointers; init resets one in place.
type stream struct {
	bl    blend
	kind  geom.Kind
	qx    float64
	yq    float64
	lower bool // Eqn. 6 y rule: this stream keeps y ≥ y_q (vs y < y_q)

	// alpha, beta mirror bl.angle so the head score — the exact normalized
	// SD-score the merge orders by — is computed in-stream at run-fill time
	// with the same formula (and hence the same bits) as geom.Angle.Score.
	alpha, beta float64

	cx, cy float64 // pointKey coefficients (kind and negation folded in)
	nl, nm float64 // nodeKey blend weights (signed)
	b1, b2 int     // nodeKey bounds offsets for the bracketing angles

	h sheap

	// pts owns the points behind nd==nil sentries (separating-path leaf,
	// oversized duplicate-x spills); sentries refer to them by index, which
	// is what keeps a sentry at three words.
	pts []geom.Point

	// Head: the stream's next emission, pre-scored. The merge reads headID
	// and headScore directly (the drain hot path never materializes a
	// geom.Point); headNd/headIdx record where the point lives so the public
	// one-at-a-time path can materialize it lazily via headPoint.
	headID    int32
	headScore float64
	headOK    bool
	headNd    *node // leaf owning the head; nil → head is pts[headIdx]
	headIdx   int32

	// Pending leaf run: when a leaf cursor is popped and its best exact key
	// still tops the heap, the single mask scan that used to locate one point
	// now drains the whole ≥-heap-top prefix of the leaf in sorted order.
	// Every run entry outranks every remaining heap entry (admissible bounds),
	// so the run is emitted before the heap is consulted again. The run is
	// struct-of-arrays — leaf slot indices plus exact scores — so draining
	// moves 12 bytes per point instead of a 24-byte geom.Point.
	runNd          *node
	runIdx         [leafRunCap]int8
	runScores      [leafRunCap]float64
	runLen, runPos int

	// cacheNd/cacheKeys memoize the blended exact keys of recently scanned
	// leaves: keys depend only on (leaf, query), so a leaf revisited while
	// draining in multiple installments reuses its kernel pass. Four ways
	// with round-robin eviction — the best-first frontier typically
	// alternates between a handful of leaves, which one slot cannot hold.
	cacheNd   [4]*node
	cacheKeys [4][leafRunCap]float64
	cacheVict uint8

	spill []sentry // reusable scratch for oversized duplicate-x leaf spills
}

// nodeKey returns the admissible (possibly negated) bound of an internal
// node for this stream: the blended per-angle extreme of the subtree.
// Points filtered out by the y-side rule only widen the bound, keeping it
// admissible.
func (s *stream) nodeKey(nd *node) float64 {
	return s.nl*nd.bounds[s.b1] + s.nm*nd.bounds[s.b2]
}

// pointKey returns the exact (possibly negated) intercept of p at the query
// angle.
func (s *stream) pointKey(p geom.Point) float64 {
	return s.cy*p.Y + s.cx*p.X
}

// score is the exact normalized SD-score of the point (x, y) against the
// query — bit-identical to bl.angle.Score(p, q), inlined so the run-fill
// loop reads coordinates straight from the leaf columns.
func (s *stream) score(x, y float64) float64 {
	return s.alpha*math.Abs(y-s.yq) - s.beta*math.Abs(x-s.qx)
}

// keeps reports whether p belongs to this stream under Eqn. 6's y rule.
func (s *stream) keeps(p geom.Point) bool {
	return (p.Y >= s.yq) == s.lower
}

// pointSentry parks p in the stream's point scratch and returns a sentry
// referring to it by index.
func (s *stream) pointSentry(p geom.Point) sentry {
	s.pts = append(s.pts, p)
	return sentry{key: s.pointKey(p), mask: uint64(len(s.pts) - 1)}
}

// spillOversized queues the kept points of an oversized duplicate-x leaf
// (beyond the 64-bit cursor mask) as individual entries via the heap's bulk
// path.
func (s *stream) spillOversized(nd *node) {
	s.spill = s.spill[:0]
	for i := range nd.lids {
		if p := nd.point(i); s.keeps(p) {
			s.spill = append(s.spill, s.pointSentry(p))
		}
	}
	s.h.pushAll(s.spill)
}

// sideMask returns a bit per point marking the wrong y side for a stream:
// bit i is set when (ys[i] >= yq) != lower. The comparison compiles
// branch-free, so the unpredictable side pattern of a leaf costs no
// mispredictions.
func sideMask(ys []float64, yq float64, lower bool) uint64 {
	var ge uint64
	for i, y := range ys {
		b := uint64(0)
		if y >= yq {
			b = 1
		}
		ge |= b << uint(i)
	}
	if lower {
		return ^ge & (uint64(1)<<uint(len(ys)) - 1)
	}
	return ge
}

// pushNode queues a subtree. Ordinary leaves become leaf cursors under
// their stored node bound; oversized duplicate-x leaves fall back to
// individual point entries.
func (s *stream) pushNode(nd *node) {
	if nd.leaf() && nd.npts() > leafRunCap {
		s.spillOversized(nd)
		return
	}
	s.h.push(sentry{key: s.nodeKey(nd), nd: nd})
}

// seed queues a subtree during construction without restoring heap order
// (the caller heapifies once at the end).
func (s *stream) seed(nd *node) {
	if nd.leaf() && nd.npts() > leafRunCap {
		for i := range nd.lids {
			if p := nd.point(i); s.keeps(p) {
				s.h.add(s.pointSentry(p))
			}
		}
		return
	}
	s.h.add(sentry{key: s.nodeKey(nd), nd: nd})
}

func (s *stream) init(c *cursor, bl blend, kind geom.Kind) {
	s.bl, s.kind, s.qx, s.yq = bl, kind, c.q.X, c.q.Y
	s.alpha, s.beta = bl.angle.Alpha, bl.angle.Beta
	s.lower = kind.Lower()
	a := bl.angle
	switch kind {
	case geom.LLP: // maximize u = α·y − β·x among right-side points
		s.cx, s.cy = -a.Beta, a.Alpha
		s.nl, s.nm = bl.lambda, bl.mu
		s.b1, s.b2 = 4*bl.al+0, 4*bl.au+0
	case geom.RUP: // minimize u among left-side points (maximize −u)
		s.cx, s.cy = a.Beta, -a.Alpha
		s.nl, s.nm = -bl.lambda, -bl.mu
		s.b1, s.b2 = 4*bl.al+1, 4*bl.au+1
	case geom.RLP: // maximize v = α·y + β·x among left-side points
		s.cx, s.cy = a.Beta, a.Alpha
		s.nl, s.nm = bl.lambda, bl.mu
		s.b1, s.b2 = 4*bl.al+2, 4*bl.au+2
	default: // geom.LUP: minimize v among right-side points (maximize −v)
		s.cx, s.cy = -a.Beta, -a.Alpha
		s.nl, s.nm = -bl.lambda, -bl.mu
		s.b1, s.b2 = 4*bl.al+3, 4*bl.au+3
	}
	s.runNd, s.runLen, s.runPos = nil, 0, 0
	s.cacheNd = [4]*node{}
	s.cacheVict = 0
	s.headOK, s.headNd = false, nil
	s.pts = s.pts[:0]
	nodes, pts := c.right, c.rightPts
	if kind == geom.RLP || kind == geom.RUP {
		nodes, pts = c.left, c.leftPts
	}
	s.h.acquire(len(nodes) + len(pts) + 8)
	for _, nd := range nodes {
		s.seed(nd)
	}
	for _, p := range pts {
		if s.keeps(p) {
			s.h.add(s.pointSentry(p))
		}
	}
	s.h.init()
}

func (c *cursor) newStream(bl blend, kind geom.Kind) *stream {
	s := new(stream)
	s.init(c, bl, kind)
	return s
}

// advance moves the stream's head to its next point in projection order,
// clearing headOK when the stream is exhausted. Emission order and scores
// are identical to the old one-point-at-a-time next: the head is exactly the
// point that call would have returned, with its score computed by the same
// formula.
func (s *stream) advance() {
	if s.runPos < s.runLen {
		i := s.runIdx[s.runPos]
		s.headNd, s.headIdx = s.runNd, int32(i)
		s.headID = s.runNd.lids[i]
		s.headScore = s.runScores[s.runPos]
		s.runPos++
		s.headOK = true
		return
	}
	for s.h.len() > 0 {
		e := s.h.top()
		if e.nd == nil {
			s.h.dropTop()
			p := s.pts[e.mask]
			s.headNd, s.headIdx = nil, int32(e.mask)
			s.headID = int32(p.ID)
			s.headScore = s.score(p.X, p.Y)
			s.headOK = true
			return
		}
		if !e.nd.leaf() {
			// Expansion: the first child replaces the parent at the root
			// (one sift instead of a drop+push pair); the rest are pushed.
			kids := e.nd.children
			if k0 := kids[0]; k0.leaf() && k0.npts() > leafRunCap {
				s.h.dropTop()
				s.spillOversized(k0)
			} else {
				s.h.replaceTop(sentry{key: s.nodeKey(k0), nd: k0})
			}
			for _, child := range kids[1:] {
				s.pushNode(child)
			}
			continue
		}
		// Leaf cursor: a single kernel pass computes every point's exact key
		// from the leaf's coordinate columns (masked slots too — branchless
		// beats exact), then one scan classifies the unconsumed points
		// against the heap's current second-best — the run prefix (exact key
		// at least that, safe to emit now and in order) versus the requeue
		// suffix. The wrong y side is filtered into the mask permanently.
		// The leaf stays at the root while it is scanned (nothing is pushed,
		// so the captured second-best stays valid) and is requeued with a
		// single replaceTop sift instead of a pop+push pair. Keys depend
		// only on (leaf, query), so a revisited leaf reuses the cached
		// kernel pass.
		n := e.nd.npts()
		lxs, lys := e.nd.lxs, e.nd.lys
		mask := e.mask
		top := s.h.secondKey()
		way := -1
		for w := range s.cacheNd {
			if s.cacheNd[w] == e.nd {
				way = w
				break
			}
		}
		if way < 0 {
			way = int(s.cacheVict)
			s.cacheVict = (s.cacheVict + 1) & 3
			s.cacheNd[way] = e.nd
			simd.BlendKeys(s.cacheKeys[way][:n], lxs, lys, s.cx, s.cy)
			// Fold the wrong-y-side points into the mask branchlessly, once;
			// the mask travels with the sentry, so revisits (and re-pushes
			// after a cache eviction, where this recomputation is idempotent)
			// never test y again.
			mask |= sideMask(lys[:n], s.yq, s.lower)
		}
		all := &s.cacheKeys[way]
		var keys [leafRunCap]float64
		var idxs [leafRunCap]int8
		cnt := 0
		below := math.Inf(-1) // best key under the run threshold
		for rem := ^mask & (uint64(1)<<uint(n) - 1); rem != 0; rem &= rem - 1 {
			i := bits.TrailingZeros64(rem)
			k := all[i]
			if k >= top {
				keys[cnt], idxs[cnt] = k, int8(i)
				cnt++
			} else if k > below {
				below = k
			}
		}
		if cnt == 0 {
			if !math.IsInf(below, -1) {
				// The entry key was an upper bound (the node bound on the
				// first visit); the exact best no longer tops the heap.
				s.h.replaceTop(sentry{key: below, nd: e.nd, mask: mask})
			} else {
				s.h.dropTop()
			}
			continue
		}
		// Sort the run by descending key; stable insertion keeps equal keys
		// in ascending leaf order, matching one-at-a-time emission.
		for i := 1; i < cnt; i++ {
			k, id := keys[i], idxs[i]
			j := i
			for j > 0 && keys[j-1] < k {
				keys[j], idxs[j] = keys[j-1], idxs[j-1]
				j--
			}
			keys[j], idxs[j] = k, id
		}
		for j := 0; j < cnt; j++ {
			i := int(idxs[j])
			s.runIdx[j] = idxs[j]
			s.runScores[j] = s.score(lxs[i], lys[i])
			mask |= 1 << uint(i)
		}
		s.runNd = e.nd
		s.runLen, s.runPos = cnt, 1
		if !math.IsInf(below, -1) {
			s.h.replaceTop(sentry{key: below, nd: e.nd, mask: mask})
		} else {
			s.h.dropTop()
		}
		i0 := s.runIdx[0]
		s.headNd, s.headIdx = e.nd, int32(i0)
		s.headID = e.nd.lids[i0]
		s.headScore = s.runScores[0]
		s.headOK = true
		return
	}
	s.headOK = false
}

// next pops and returns the stream's next point in projection order — the
// standalone enumeration form used by tests; the merge drives
// advance/headPoint directly.
func (s *stream) next() (geom.Point, bool) {
	s.advance()
	if !s.headOK {
		return geom.Point{}, false
	}
	return s.headPoint(), true
}

// headPoint materializes the head as a geom.Point — the public
// one-at-a-time emission path; the merge drain never calls it.
func (s *stream) headPoint() geom.Point {
	if s.headNd != nil {
		return s.headNd.point(int(s.headIdx))
	}
	return s.pts[s.headIdx]
}

// merge is the four-way candidate merge of Algorithm 2: at every step the
// best scorer among the four stream heads is emitted and only the winning
// stream advances. Because each stream holds exactly the points whose
// Eqn.-6 projection it enumerates, stream keys translate to exact
// normalized scores and the greedy choice is optimal: the head of a point's
// own stream always scores at least as high as the point itself.
//
// A merge is a value type (streams embedded) so a pooled Stream reuses the
// whole structure across queries without allocation. Stream heads live in
// the streams themselves (headID/headScore, a materializable locator), so
// the drain loop below moves no geom.Point structs.
type merge struct {
	angle   geom.Angle
	q       geom.Point
	streams [4]stream
}

var mergeKinds = [4]geom.Kind{geom.LLP, geom.LUP, geom.RLP, geom.RUP}

// init (re)builds the Algorithm-2 merge for the blended query angle,
// ordered by the exact normalized score at that angle.
func (m *merge) init(c *cursor, bl blend) {
	m.angle, m.q = bl.angle, c.q
	for i, kind := range mergeKinds {
		s := &m.streams[i]
		s.init(c, bl, kind)
		s.advance()
	}
}

// newMerge allocates a merge (test/alg4 convenience).
func (c *cursor) newMerge(bl blend) *merge {
	m := new(merge)
	m.init(c, bl)
	return m
}

// next emits the best remaining point by normalized angle score, returning
// the point and its normalized score.
func (m *merge) next() (geom.Point, float64, bool) {
	best := -1
	var bs float64
	for i := 0; i < 4; i++ {
		s := &m.streams[i]
		if s.headOK && (best == -1 || s.headScore > bs) {
			best, bs = i, s.headScore
		}
	}
	if best == -1 {
		return geom.Point{}, 0, false
	}
	p := m.streams[best].headPoint()
	m.streams[best].advance()
	return p, bs, true
}

// drainInto bulk-emits up to len(dst) points in non-increasing normalized
// score order, writing dataset IDs and rescaled contributions (× scale)
// directly, and returns the filled count plus the normalized score of the
// next unemitted point (−Inf when the merge is exhausted) — the post-drain
// frontier bound, already materialized in the stream heads, so callers that
// schedule by bound pay no separate peek. Instead of a four-way comparison
// per point, it selects the best stream once per run and then drains that
// stream while its head stays ahead of the runner-up's — streams descend, so
// every such point still beats every other stream's head. The emission
// sequence is identical to repeated next calls: at score ties the lowest
// stream index wins both here (the tie-aware break below) and there (the
// strict > scan).
func (m *merge) drainInto(dst []query.Emission, scale float64) (int, float64) {
	filled := 0
	for filled < len(dst) {
		best, second, secondIdx := -1, math.Inf(-1), -1
		var bs float64
		for i := 0; i < 4; i++ {
			s := &m.streams[i]
			if !s.headOK {
				continue
			}
			if best == -1 {
				best, bs = i, s.headScore
			} else if s.headScore > bs {
				second, secondIdx = bs, best
				best, bs = i, s.headScore
			} else if s.headScore > second {
				second, secondIdx = s.headScore, i
			}
		}
		if best == -1 {
			break
		}
		s := &m.streams[best]
		for filled < len(dst) {
			dst[filled] = query.Emission{ID: s.headID, Contrib: s.headScore * scale}
			filled++
			// While the head's leaf run continues, emit straight from the run
			// arrays — the same entries advance would surface, under the same
			// stop test — touching the head fields only at the boundary.
			if rn := s.runNd; rn != nil && s.runPos < s.runLen {
				ids := rn.lids
				pos, ln := s.runPos, s.runLen
				for filled < len(dst) && pos < ln {
					sc := s.runScores[pos]
					if sc < second || (sc == second && secondIdx < best) {
						break
					}
					dst[filled] = query.Emission{ID: ids[s.runIdx[pos]], Contrib: sc * scale}
					filled++
					pos++
				}
				s.runPos = pos
			}
			s.advance()
			if !s.headOK {
				break
			}
			if s.headScore < second || (s.headScore == second && secondIdx < best) {
				break
			}
		}
	}
	if next, ok := m.peekScore(); ok {
		return filled, next
	}
	return filled, math.Inf(-1)
}

// peekScore returns the normalized score the next emission will carry.
func (m *merge) peekScore() (float64, bool) {
	best := -1
	var bs float64
	for i := 0; i < 4; i++ {
		s := &m.streams[i]
		if s.headOK && (best == -1 || s.headScore > bs) {
			best, bs = i, s.headScore
		}
	}
	if best == -1 {
		return 0, false
	}
	return bs, true
}

// release returns the stream heap arrays to the pool. The merge must not be
// used afterwards (until re-init).
func (m *merge) release() {
	for i := range m.streams {
		m.streams[i].h.release()
	}
}
