package topk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/query"
)

// Result is one query answer: a point and its SD-score under the query's raw
// (unnormalized) weights.
type Result struct {
	Point geom.Point
	Score float64
}

// Query returns the k highest-scoring points for query q under
// SD-score(p, q) = alpha·|Δy| − beta·|Δx|, with alpha, beta ≥ 0 supplied at
// query time.
func (idx *Index) Query(q geom.Point, k int, alpha, beta float64) ([]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: k must be ≥ 1, got %d", k)
	}
	st, err := idx.Stream(q, alpha, beta)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var out []Result
	for len(out) < k {
		r, ok := st.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, nil
}

// matchAngle returns the index of an indexed angle within tolerance of deg,
// or -1.
func (idx *Index) matchAngle(deg float64) int {
	i := sort.SearchFloat64s(idx.degrees, deg)
	for _, j := range []int{i - 1, i} {
		if j >= 0 && j < len(idx.degrees) && math.Abs(idx.degrees[j]-deg) < 1e-9 {
			return j
		}
	}
	return -1
}

// blend expresses an arbitrary query angle as a non-negative combination of
// the two bracketing indexed angles: for θ_l ≤ θ_q ≤ θ_u,
//
//	(cos θ_q, sin θ_q) = λ·(cos θ_l, sin θ_l) + μ·(cos θ_u, sin θ_u)
//	λ = sin(θ_u − θ_q)/sin(θ_u − θ_l) ≥ 0,  μ = sin(θ_q − θ_l)/sin(θ_u − θ_l) ≥ 0,
//
// so every projection intercept — and hence every per-node bound — at θ_q is
// the same combination of the stored θ_l and θ_u values. This is the same
// single-crossing geometry that underlies the paper's Claim 6 (observation 2
// of §4.2), realized as an admissible per-node bound instead of the
// two-merge enumeration of Algorithm 4; see DESIGN.md. Both paths are
// implemented (Stream and StreamAlg4) and tested for agreement.
type blend struct {
	angle      geom.Angle // exact normalized query angle
	al, au     int        // bracketing indexed-angle positions (al == au if exact)
	lambda, mu float64
}

func (idx *Index) blendFor(qa geom.Angle) blend {
	deg := qa.Degrees()
	if ai := idx.matchAngle(deg); ai >= 0 {
		return blend{angle: qa, al: ai, au: ai, lambda: 1, mu: 0}
	}
	au := sort.SearchFloat64s(idx.degrees, deg)
	al := au - 1 // normalizeAngles guarantees 0° and 90° are present
	tl := idx.degrees[al] * math.Pi / 180
	tu := idx.degrees[au] * math.Pi / 180
	tq := deg * math.Pi / 180
	denom := math.Sin(tu - tl)
	return blend{
		angle:  qa,
		al:     al,
		au:     au,
		lambda: math.Sin(tu-tq) / denom,
		mu:     math.Sin(tq-tl) / denom,
	}
}

// cursor materializes the separating path for one query: the subtrees
// entirely right and entirely left of the query axis, plus the path leaf's
// points classified by side. All per-query state lives here, so a shared
// index serves concurrent queries. A cursor is reusable: init resets the
// slices in place, so a pooled Stream pays no per-query allocation for it.
type cursor struct {
	idx      *Index
	q        geom.Point
	right    []*node // subtrees with every point at x ≥ x_q
	left     []*node // subtrees with every point at x < x_q
	rightPts []geom.Point
	leftPts  []geom.Point
}

func (c *cursor) init(idx *Index, q geom.Point) {
	c.idx, c.q = idx, q
	c.right, c.left = c.right[:0], c.left[:0]
	c.rightPts, c.leftPts = c.rightPts[:0], c.leftPts[:0]
	nd := idx.root
	for nd != nil && !nd.leaf() {
		pos := sort.SearchFloat64s(nd.seps, q.X) // first separator ≥ x_q
		c.left = append(c.left, nd.children[:pos]...)
		if pos+1 < len(nd.children) {
			c.right = append(c.right, nd.children[pos+1:]...)
		}
		nd = nd.children[pos]
	}
	if nd != nil {
		for _, p := range nd.pts {
			if p.X >= q.X {
				c.rightPts = append(c.rightPts, p)
			} else {
				c.leftPts = append(c.leftPts, p)
			}
		}
	}
}

// newCursor allocates a fresh cursor (test/standalone convenience; hot paths
// reuse the one embedded in a Stream).
func (idx *Index) newCursor(q geom.Point) *cursor {
	c := new(cursor)
	c.init(idx, q)
	return c
}

// leafRunCap is the widest leaf a cursor entry can cover (the 64-bit mask)
// and therefore the longest run a single leaf drain can emit.
const leafRunCap = 64

// stream enumerates one projection type in projection order via best-first
// search over the per-node bounds. Each stream is restricted to the points
// for which Eqn. 6 actually selects its projection kind: the x side is
// enforced structurally by the separating path and the y side is filtered at
// emission, so every point belongs to exactly one of the four streams and
// its stream key differs from its normalized SD-score only by the additive
// constant ±(β·x_q − α·y_q).
//
// Minimizing streams (upper projections) negate their keys so that a single
// max-heap implementation serves all four kinds.
//
// Streams are value types embedded in a merge so a pooled Stream carries no
// per-query pointers; init resets one in place.
type stream struct {
	bl   blend
	kind geom.Kind
	yq   float64
	neg  bool // keys stored negated (minimizing kinds)
	h    sheap

	// Pending leaf run: when a leaf cursor is popped and its best exact key
	// still tops the heap, the single mask scan that used to locate one point
	// now drains the whole ≥-heap-top prefix of the leaf in sorted order.
	// Every run entry outranks every remaining heap entry (admissible bounds),
	// so the run is emitted before the heap is consulted again.
	run            [leafRunCap]geom.Point
	runLen, runPos int

	spill []sentry // reusable scratch for oversized duplicate-x leaf spills
}

// nodeKey returns the admissible (possibly negated) bound of an internal
// node for this stream: the blended per-angle extreme of the subtree.
// Points filtered out by the y-side rule only widen the bound, keeping it
// admissible.
func (s *stream) nodeKey(nd *node) float64 {
	ol, ou := 4*s.bl.al, 4*s.bl.au
	switch s.kind {
	case geom.LLP: // maximize u among right-side points
		return s.bl.lambda*nd.bounds[ol+0] + s.bl.mu*nd.bounds[ou+0]
	case geom.RUP: // minimize u among left-side points
		return -(s.bl.lambda*nd.bounds[ol+1] + s.bl.mu*nd.bounds[ou+1])
	case geom.RLP: // maximize v among left-side points
		return s.bl.lambda*nd.bounds[ol+2] + s.bl.mu*nd.bounds[ou+2]
	default: // geom.LUP: minimize v among right-side points
		return -(s.bl.lambda*nd.bounds[ol+3] + s.bl.mu*nd.bounds[ou+3])
	}
}

// pointKey returns the exact (possibly negated) intercept of p at the query
// angle.
func (s *stream) pointKey(p geom.Point) float64 {
	a := s.bl.angle
	switch s.kind {
	case geom.LLP:
		return a.U(p.X, p.Y)
	case geom.RUP:
		return -a.U(p.X, p.Y)
	case geom.RLP:
		return a.V(p.X, p.Y)
	default: // geom.LUP
		return -a.V(p.X, p.Y)
	}
}

// keeps reports whether p belongs to this stream under Eqn. 6's y rule.
func (s *stream) keeps(p geom.Point) bool {
	if s.kind.Lower() {
		return p.Y >= s.yq
	}
	return p.Y < s.yq
}

// spillOversized queues the kept points of an oversized duplicate-x leaf
// (beyond the 64-bit cursor mask) as individual entries via the heap's bulk
// path.
func (s *stream) spillOversized(nd *node) {
	s.spill = s.spill[:0]
	for _, p := range nd.pts {
		if s.keeps(p) {
			s.spill = append(s.spill, sentry{key: s.pointKey(p), pt: p})
		}
	}
	s.h.pushAll(s.spill)
}

// pushNode queues a subtree. Ordinary leaves become leaf cursors under
// their stored node bound; oversized duplicate-x leaves fall back to
// individual point entries.
func (s *stream) pushNode(nd *node) {
	if nd.leaf() && len(nd.pts) > leafRunCap {
		s.spillOversized(nd)
		return
	}
	s.h.push(sentry{key: s.nodeKey(nd), nd: nd})
}

// seed queues a subtree during construction without restoring heap order
// (the caller heapifies once at the end).
func (s *stream) seed(nd *node) {
	if nd.leaf() && len(nd.pts) > leafRunCap {
		for _, p := range nd.pts {
			if s.keeps(p) {
				s.h.add(sentry{key: s.pointKey(p), pt: p})
			}
		}
		return
	}
	s.h.add(sentry{key: s.nodeKey(nd), nd: nd})
}

func (s *stream) init(c *cursor, bl blend, kind geom.Kind) {
	s.bl, s.kind, s.yq = bl, kind, c.q.Y
	s.neg = kind == geom.RUP || kind == geom.LUP
	s.runLen, s.runPos = 0, 0
	nodes, pts := c.right, c.rightPts
	if kind == geom.RLP || kind == geom.RUP {
		nodes, pts = c.left, c.leftPts
	}
	s.h.acquire(len(nodes) + len(pts) + 8)
	for _, nd := range nodes {
		s.seed(nd)
	}
	for _, p := range pts {
		if s.keeps(p) {
			s.h.add(sentry{key: s.pointKey(p), pt: p})
		}
	}
	s.h.init()
}

func (c *cursor) newStream(bl blend, kind geom.Kind) *stream {
	s := new(stream)
	s.init(c, bl, kind)
	return s
}

// next returns the stream's next point in projection order.
func (s *stream) next() (geom.Point, bool) {
	if s.runPos < s.runLen {
		p := s.run[s.runPos]
		s.runPos++
		return p, true
	}
	for s.h.len() > 0 {
		e := s.h.pop()
		if e.nd == nil {
			return e.pt, true
		}
		if !e.nd.leaf() {
			for _, child := range e.nd.children {
				s.pushNode(child)
			}
			continue
		}
		// Leaf cursor: one scan over the unconsumed points classifies each
		// against the heap's current top — the run prefix (exact key at least
		// the top, safe to emit now and in order) versus the requeue suffix.
		// The wrong y side is filtered into the mask permanently. Because
		// nothing is pushed during the scan, the captured top stays valid.
		pts := e.nd.pts
		mask := e.mask
		top := math.Inf(-1)
		if s.h.len() > 0 {
			top = s.h.topKey()
		}
		var keys [leafRunCap]float64
		var idxs [leafRunCap]int8
		cnt := 0
		below := math.Inf(-1) // best key under the run threshold
		for i := 0; i < len(pts); i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			if !s.keeps(pts[i]) {
				mask |= 1 << uint(i)
				continue
			}
			k := s.pointKey(pts[i])
			if k >= top {
				keys[cnt], idxs[cnt] = k, int8(i)
				cnt++
			} else if k > below {
				below = k
			}
		}
		if cnt == 0 {
			if !math.IsInf(below, -1) {
				// The entry key was an upper bound (the node bound on the
				// first visit); the exact best no longer tops the heap.
				s.h.push(sentry{key: below, nd: e.nd, mask: mask})
			}
			continue
		}
		// Sort the run by descending key; stable insertion keeps equal keys
		// in ascending leaf order, matching one-at-a-time emission.
		for i := 1; i < cnt; i++ {
			k, id := keys[i], idxs[i]
			j := i
			for j > 0 && keys[j-1] < k {
				keys[j], idxs[j] = keys[j-1], idxs[j-1]
				j--
			}
			keys[j], idxs[j] = k, id
		}
		for j := 0; j < cnt; j++ {
			s.run[j] = pts[idxs[j]]
			mask |= 1 << uint(idxs[j])
		}
		s.runLen, s.runPos = cnt, 1
		if !math.IsInf(below, -1) {
			s.h.push(sentry{key: below, nd: e.nd, mask: mask})
		}
		return s.run[0], true
	}
	return geom.Point{}, false
}

// merge is the four-way candidate merge of Algorithm 2: at every step the
// best scorer among the four stream heads is emitted and only the winning
// stream advances. Because each stream holds exactly the points whose
// Eqn.-6 projection it enumerates, stream keys translate to exact
// normalized scores and the greedy choice is optimal: the head of a point's
// own stream always scores at least as high as the point itself.
//
// A merge is a value type (streams embedded) so a pooled Stream reuses the
// whole structure across queries without allocation.
type merge struct {
	angle   geom.Angle
	q       geom.Point
	streams [4]stream
	heads   [4]geom.Point
	scores  [4]float64
	valid   [4]bool
}

var mergeKinds = [4]geom.Kind{geom.LLP, geom.LUP, geom.RLP, geom.RUP}

// init (re)builds the Algorithm-2 merge for the blended query angle,
// ordered by the exact normalized score at that angle.
func (m *merge) init(c *cursor, bl blend) {
	m.angle, m.q = bl.angle, c.q
	for i, kind := range mergeKinds {
		s := &m.streams[i]
		s.init(c, bl, kind)
		if p, ok := s.next(); ok {
			m.heads[i] = p
			m.scores[i] = m.angle.Score(p, m.q)
			m.valid[i] = true
		} else {
			m.valid[i] = false
		}
	}
}

// newMerge allocates a merge (test/alg4 convenience).
func (c *cursor) newMerge(bl blend) *merge {
	m := new(merge)
	m.init(c, bl)
	return m
}

// next emits the best remaining point by normalized angle score, returning
// the point and its normalized score.
func (m *merge) next() (geom.Point, float64, bool) {
	best := -1
	for i := 0; i < 4; i++ {
		if m.valid[i] && (best == -1 || m.scores[i] > m.scores[best]) {
			best = i
		}
	}
	if best == -1 {
		return geom.Point{}, 0, false
	}
	p, score := m.heads[best], m.scores[best]
	if np, ok := m.streams[best].next(); ok {
		m.heads[best] = np
		m.scores[best] = m.angle.Score(np, m.q)
	} else {
		m.valid[best] = false
	}
	return p, score, true
}

// drainInto bulk-emits up to len(dst) points in non-increasing normalized
// score order, writing dataset IDs and rescaled contributions (× scale)
// directly, and returns the filled count plus the normalized score of the
// next unemitted point (−Inf when the merge is exhausted) — the post-drain
// frontier bound, already materialized in the stream heads, so callers that
// schedule by bound pay no separate peek. Instead of a four-way comparison
// per point, it selects the best stream once per run and then drains that
// stream while its head stays ahead of the runner-up's — streams descend, so
// every such point still beats every other stream's head. The emission
// sequence is identical to repeated next calls: at score ties the lowest
// stream index wins both here (the tie-aware break below) and there (the
// strict > scan).
func (m *merge) drainInto(dst []query.Emission, scale float64) (int, float64) {
	filled := 0
	for filled < len(dst) {
		best, second, secondIdx := -1, math.Inf(-1), -1
		for i := 0; i < 4; i++ {
			if !m.valid[i] {
				continue
			}
			if best == -1 {
				best = i
			} else if m.scores[i] > m.scores[best] {
				second, secondIdx = m.scores[best], best
				best = i
			} else if m.scores[i] > second {
				second, secondIdx = m.scores[i], i
			}
		}
		if best == -1 {
			break
		}
		s := &m.streams[best]
		for filled < len(dst) {
			dst[filled] = query.Emission{ID: int32(m.heads[best].ID), Contrib: m.scores[best] * scale}
			filled++
			np, ok := s.next()
			if !ok {
				m.valid[best] = false
				break
			}
			m.heads[best] = np
			m.scores[best] = m.angle.Score(np, m.q)
			if m.scores[best] < second || (m.scores[best] == second && secondIdx < best) {
				break
			}
		}
	}
	if next, ok := m.peekScore(); ok {
		return filled, next
	}
	return filled, math.Inf(-1)
}

// peekScore returns the normalized score the next emission will carry.
func (m *merge) peekScore() (float64, bool) {
	best := -1
	for i := 0; i < 4; i++ {
		if m.valid[i] && (best == -1 || m.scores[i] > m.scores[best]) {
			best = i
		}
	}
	if best == -1 {
		return 0, false
	}
	return m.scores[best], true
}

// release returns the stream heap arrays to the pool. The merge must not be
// used afterwards (until re-init).
func (m *merge) release() {
	for i := range m.streams {
		m.streams[i].h.release()
	}
}
