package topk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Result is one query answer: a point and its SD-score under the query's raw
// (unnormalized) weights.
type Result struct {
	Point geom.Point
	Score float64
}

// Query returns the k highest-scoring points for query q under
// SD-score(p, q) = alpha·|Δy| − beta·|Δx|, with alpha, beta ≥ 0 supplied at
// query time.
func (idx *Index) Query(q geom.Point, k int, alpha, beta float64) ([]Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("topk: k must be ≥ 1, got %d", k)
	}
	st, err := idx.Stream(q, alpha, beta)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	var out []Result
	for len(out) < k {
		r, ok := st.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, nil
}

// matchAngle returns the index of an indexed angle within tolerance of deg,
// or -1.
func (idx *Index) matchAngle(deg float64) int {
	i := sort.SearchFloat64s(idx.degrees, deg)
	for _, j := range []int{i - 1, i} {
		if j >= 0 && j < len(idx.degrees) && math.Abs(idx.degrees[j]-deg) < 1e-9 {
			return j
		}
	}
	return -1
}

// blend expresses an arbitrary query angle as a non-negative combination of
// the two bracketing indexed angles: for θ_l ≤ θ_q ≤ θ_u,
//
//	(cos θ_q, sin θ_q) = λ·(cos θ_l, sin θ_l) + μ·(cos θ_u, sin θ_u)
//	λ = sin(θ_u − θ_q)/sin(θ_u − θ_l) ≥ 0,  μ = sin(θ_q − θ_l)/sin(θ_u − θ_l) ≥ 0,
//
// so every projection intercept — and hence every per-node bound — at θ_q is
// the same combination of the stored θ_l and θ_u values. This is the same
// single-crossing geometry that underlies the paper's Claim 6 (observation 2
// of §4.2), realized as an admissible per-node bound instead of the
// two-merge enumeration of Algorithm 4; see DESIGN.md. Both paths are
// implemented (Stream and StreamAlg4) and tested for agreement.
type blend struct {
	angle      geom.Angle // exact normalized query angle
	al, au     int        // bracketing indexed-angle positions (al == au if exact)
	lambda, mu float64
}

func (idx *Index) blendFor(qa geom.Angle) blend {
	deg := qa.Degrees()
	if ai := idx.matchAngle(deg); ai >= 0 {
		return blend{angle: qa, al: ai, au: ai, lambda: 1, mu: 0}
	}
	au := sort.SearchFloat64s(idx.degrees, deg)
	al := au - 1 // normalizeAngles guarantees 0° and 90° are present
	tl := idx.degrees[al] * math.Pi / 180
	tu := idx.degrees[au] * math.Pi / 180
	tq := deg * math.Pi / 180
	denom := math.Sin(tu - tl)
	return blend{
		angle:  qa,
		al:     al,
		au:     au,
		lambda: math.Sin(tu-tq) / denom,
		mu:     math.Sin(tq-tl) / denom,
	}
}

// cursor materializes the separating path for one query: the subtrees
// entirely right and entirely left of the query axis, plus the path leaf's
// points classified by side. All per-query state lives here, so a shared
// index serves concurrent queries.
type cursor struct {
	idx      *Index
	q        geom.Point
	right    []*node // subtrees with every point at x ≥ x_q
	left     []*node // subtrees with every point at x < x_q
	rightPts []geom.Point
	leftPts  []geom.Point
}

func (idx *Index) newCursor(q geom.Point) *cursor {
	c := &cursor{idx: idx, q: q}
	nd := idx.root
	for nd != nil && !nd.leaf() {
		pos := sort.SearchFloat64s(nd.seps, q.X) // first separator ≥ x_q
		c.left = append(c.left, nd.children[:pos]...)
		if pos+1 < len(nd.children) {
			c.right = append(c.right, nd.children[pos+1:]...)
		}
		nd = nd.children[pos]
	}
	if nd != nil {
		for _, p := range nd.pts {
			if p.X >= q.X {
				c.rightPts = append(c.rightPts, p)
			} else {
				c.leftPts = append(c.leftPts, p)
			}
		}
	}
	return c
}

// stream enumerates one projection type in projection order via best-first
// search over the per-node bounds. Each stream is restricted to the points
// for which Eqn. 6 actually selects its projection kind: the x side is
// enforced structurally by the separating path and the y side is filtered at
// emission, so every point belongs to exactly one of the four streams and
// its stream key differs from its normalized SD-score only by the additive
// constant ±(β·x_q − α·y_q).
//
// Minimizing streams (upper projections) negate their keys so that a single
// max-heap implementation serves all four kinds.
type stream struct {
	bl   blend
	kind geom.Kind
	yq   float64
	neg  bool // keys stored negated (minimizing kinds)
	h    sheap
}

// nodeKey returns the admissible (possibly negated) bound of an internal
// node for this stream: the blended per-angle extreme of the subtree.
// Points filtered out by the y-side rule only widen the bound, keeping it
// admissible.
func (s *stream) nodeKey(nd *node) float64 {
	ol, ou := 4*s.bl.al, 4*s.bl.au
	switch s.kind {
	case geom.LLP: // maximize u among right-side points
		return s.bl.lambda*nd.bounds[ol+0] + s.bl.mu*nd.bounds[ou+0]
	case geom.RUP: // minimize u among left-side points
		return -(s.bl.lambda*nd.bounds[ol+1] + s.bl.mu*nd.bounds[ou+1])
	case geom.RLP: // maximize v among left-side points
		return s.bl.lambda*nd.bounds[ol+2] + s.bl.mu*nd.bounds[ou+2]
	default: // geom.LUP: minimize v among right-side points
		return -(s.bl.lambda*nd.bounds[ol+3] + s.bl.mu*nd.bounds[ou+3])
	}
}

// pointKey returns the exact (possibly negated) intercept of p at the query
// angle.
func (s *stream) pointKey(p geom.Point) float64 {
	a := s.bl.angle
	switch s.kind {
	case geom.LLP:
		return a.U(p.X, p.Y)
	case geom.RUP:
		return -a.U(p.X, p.Y)
	case geom.RLP:
		return a.V(p.X, p.Y)
	default: // geom.LUP
		return -a.V(p.X, p.Y)
	}
}

// keeps reports whether p belongs to this stream under Eqn. 6's y rule.
func (s *stream) keeps(p geom.Point) bool {
	if s.kind.Lower() {
		return p.Y >= s.yq
	}
	return p.Y < s.yq
}

// pushNode queues a subtree. Ordinary leaves become leaf cursors under
// their stored node bound; oversized duplicate-x leaves (beyond the 64-bit
// cursor mask) fall back to individual point entries.
func (s *stream) pushNode(nd *node) {
	if nd.leaf() && len(nd.pts) > 64 {
		for _, p := range nd.pts {
			if s.keeps(p) {
				s.h.push(sentry{key: s.pointKey(p), pt: p})
			}
		}
		return
	}
	s.h.push(sentry{key: s.nodeKey(nd), nd: nd})
}

func (c *cursor) newStream(bl blend, kind geom.Kind) *stream {
	s := &stream{bl: bl, kind: kind, yq: c.q.Y,
		neg: kind == geom.RUP || kind == geom.LUP}
	nodes, pts := c.right, c.rightPts
	if kind == geom.RLP || kind == geom.RUP {
		nodes, pts = c.left, c.leftPts
	}
	s.h.acquire(len(nodes) + len(pts) + 8)
	for _, nd := range nodes {
		s.pushNode(nd)
	}
	for _, p := range pts {
		if s.keeps(p) {
			s.h.push(sentry{key: s.pointKey(p), pt: p})
		}
	}
	return s
}

// next returns the stream's next point in projection order.
func (s *stream) next() (geom.Point, bool) {
	for s.h.len() > 0 {
		e := s.h.pop()
		if e.nd == nil {
			return e.pt, true
		}
		if !e.nd.leaf() {
			for _, child := range e.nd.children {
				s.pushNode(child)
			}
			continue
		}
		// Leaf cursor: scan the unconsumed points once, filtering the
		// wrong y side permanently and locating the best and second-best
		// remaining keys.
		pts := e.nd.pts
		mask := e.mask
		best, remaining := -1, 0
		bestKey, secondKey := math.Inf(-1), math.Inf(-1)
		for i := 0; i < len(pts); i++ {
			if mask&(1<<uint(i)) != 0 {
				continue
			}
			if !s.keeps(pts[i]) {
				mask |= 1 << uint(i)
				continue
			}
			remaining++
			k := s.pointKey(pts[i])
			if k > bestKey {
				secondKey = bestKey
				bestKey, best = k, i
			} else if k > secondKey {
				secondKey = k
			}
		}
		if best < 0 {
			continue // everything filtered or consumed
		}
		// The entry key was an upper bound (the node bound on the first
		// visit); if the exact best no longer tops the heap, requeue.
		if s.h.len() > 0 && bestKey < s.h.topKey() {
			s.h.push(sentry{key: bestKey, nd: e.nd, mask: mask})
			continue
		}
		mask |= 1 << uint(best)
		if remaining > 1 {
			s.h.push(sentry{key: secondKey, nd: e.nd, mask: mask})
		}
		return pts[best], true
	}
	return geom.Point{}, false
}

// merge is the four-way candidate merge of Algorithm 2: at every step the
// best scorer among the four stream heads is emitted and only the winning
// stream advances. Because each stream holds exactly the points whose
// Eqn.-6 projection it enumerates, stream keys translate to exact
// normalized scores and the greedy choice is optimal: the head of a point's
// own stream always scores at least as high as the point itself.
type merge struct {
	angle   geom.Angle
	q       geom.Point
	streams [4]*stream
	heads   [4]geom.Point
	scores  [4]float64
	valid   [4]bool
}

// newMerge builds the Algorithm-2 merge for the blended query angle,
// ordered by the exact normalized score at that angle.
func (c *cursor) newMerge(bl blend) *merge {
	m := &merge{angle: bl.angle, q: c.q}
	for i, kind := range []geom.Kind{geom.LLP, geom.LUP, geom.RLP, geom.RUP} {
		s := c.newStream(bl, kind)
		m.streams[i] = s
		if p, ok := s.next(); ok {
			m.heads[i] = p
			m.scores[i] = m.angle.Score(p, m.q)
			m.valid[i] = true
		}
	}
	return m
}

// next emits the best remaining point by normalized angle score, returning
// the point and its normalized score.
func (m *merge) next() (geom.Point, float64, bool) {
	best := -1
	for i := 0; i < 4; i++ {
		if m.valid[i] && (best == -1 || m.scores[i] > m.scores[best]) {
			best = i
		}
	}
	if best == -1 {
		return geom.Point{}, 0, false
	}
	p, score := m.heads[best], m.scores[best]
	if np, ok := m.streams[best].next(); ok {
		m.heads[best] = np
		m.scores[best] = m.angle.Score(np, m.q)
	} else {
		m.valid[best] = false
	}
	return p, score, true
}

// peekScore returns the normalized score the next emission will carry.
func (m *merge) peekScore() (float64, bool) {
	best := -1
	for i := 0; i < 4; i++ {
		if m.valid[i] && (best == -1 || m.scores[i] > m.scores[best]) {
			best = i
		}
	}
	if best == -1 {
		return 0, false
	}
	return m.scores[best], true
}

// release returns the stream heap arrays to the pool. The merge must not be
// used afterwards.
func (m *merge) release() {
	for _, s := range m.streams {
		if s != nil {
			s.h.release()
		}
	}
}
