// Package topk implements the paper's §4 index structure for top-k SD-queries
// with k and the weighting parameters supplied at query time.
//
// The index is a balanced b-ary tree over the x-values of the points (a 1D
// KD-tree in the paper's terms). Every non-leaf node stores, for each indexed
// projection angle, bounds on the four projection intercepts within its
// subtree:
//
//	maxU = max α·y − β·x   (highest llp — and lowest rup is minU)
//	maxV = max α·y + β·x   (highest rlp — and lowest lup is minV)
//
// Given a query axis x = x_q, the root-to-leaf "separating path" splits the
// tree into subtrees entirely left and entirely right of the axis. Left
// projections (llp, lup) of right-side points and right projections (rlp,
// rup) of left-side points intersect the axis; four best-first streams over
// the per-node bounds then enumerate each projection type in score order
// (Algorithms 2 and 3). Arbitrary query weights are answered by bracketing
// the query angle between two indexed angles (Claim 6, Algorithm 4).
//
// Departure from the paper's presentation: rather than destructively
// updating bounds along the separating path and undoing them after the
// query, each query materializes the path once into pure one-side subtree
// seeds and runs lazy best-first heaps over them. Visit order and
// asymptotics are identical, and a shared index serves concurrent queries.
package topk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// DefaultAngles returns the paper's recommended five indexed angles,
// uniformly covering [0°, 90°]: 0, 23, 45, 67, 90 (§6.1).
func DefaultAngles() []geom.Angle {
	return anglesFromDegrees(0, 23, 45, 67, 90)
}

func anglesFromDegrees(degs ...float64) []geom.Angle {
	out := make([]geom.Angle, len(degs))
	for i, d := range degs {
		a, err := geom.AngleFromDegrees(d)
		if err != nil {
			panic(err)
		}
		out[i] = a
	}
	return out
}

// Config controls index construction.
type Config struct {
	// Branching is the tree fan-out b ≥ 2. Default 8.
	Branching int
	// LeafCap is the number of points a leaf may hold. 1 reproduces the
	// paper's in-memory layout; larger values give the §4 disk-style
	// bulk-loaded packing. Default 1.
	LeafCap int
	// Angles are the indexed projection angles. The set is sorted,
	// deduplicated, and extended with 0° and 90° if absent (the paper's
	// recommendation, and required for Claim 6 to bracket every query).
	// Default: DefaultAngles().
	Angles []geom.Angle
	// RebuildThreshold is θ of §4: when the fraction of leaves on
	// overlong paths exceeds it, the index is rebuilt. Default 0.25.
	RebuildThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Branching == 0 {
		c.Branching = 8
	}
	if c.LeafCap == 0 {
		c.LeafCap = 1
	}
	if len(c.Angles) == 0 {
		c.Angles = DefaultAngles()
	}
	if c.RebuildThreshold == 0 {
		c.RebuildThreshold = 0.25
	}
	return c
}

// node is both internal node and leaf. For leaves lids != nil; for internal
// nodes children is non-empty and seps holds len(children)-1 separators:
// child i contains exactly the points with x in (seps[i-1], seps[i]].
//
// Leaf points are stored struct-of-arrays — parallel x, y, and id columns —
// so the query-time leaf scan can hand the coordinate columns straight to
// the simd.BlendKeys kernel, and the int32 ids cut leaf footprint versus an
// embedded []geom.Point.
type node struct {
	seps     []float64
	children []*node
	lxs      []float64
	lys      []float64
	lids     []int32
	// bounds holds 4 values per indexed angle:
	// [4a+0] maxU, [4a+1] minU, [4a+2] maxV, [4a+3] minV.
	bounds []float64
	depth  int
}

func (n *node) leaf() bool { return n.lids != nil }

func (n *node) npts() int { return len(n.lids) }

// point materializes leaf point i; used on the cold paths (rebuilds,
// updates, spills, run emission) — the hot scan reads the columns directly.
func (n *node) point(i int) geom.Point {
	return geom.Point{ID: int(n.lids[i]), X: n.lxs[i], Y: n.lys[i]}
}

// Index is the §4 top-k structure. It is safe for concurrent queries;
// updates require external synchronization.
type Index struct {
	cfg     Config
	angles  []geom.Angle
	degrees []float64
	root    *node
	size    int
	// rebalance bookkeeping (§4): leaves deeper than the as-built height.
	builtDepth int
	overlong   map[*node]bool
	// arena is non-nil only while a bulk load is in flight.
	arena *buildArena
}

// Build constructs the index. Points must have finite coordinates and IDs
// representable as int32 (they are caller-assigned and not checked for
// uniqueness). An empty point set is allowed.
func Build(points []geom.Point, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if cfg.Branching < 2 {
		return nil, fmt.Errorf("topk: branching factor %d < 2", cfg.Branching)
	}
	if cfg.LeafCap < 1 {
		return nil, fmt.Errorf("topk: leaf capacity %d < 1", cfg.LeafCap)
	}
	if cfg.RebuildThreshold < 0 || cfg.RebuildThreshold > 1 {
		return nil, fmt.Errorf("topk: rebuild threshold %v outside [0, 1]", cfg.RebuildThreshold)
	}
	for _, p := range points {
		if err := checkPoint(p); err != nil {
			return nil, err
		}
	}
	angles, degrees, err := normalizeAngles(cfg.Angles)
	if err != nil {
		return nil, err
	}
	cfg.Angles = angles
	idx := &Index{cfg: cfg, angles: angles, degrees: degrees, overlong: make(map[*node]bool)}
	idx.rebuild(points)
	return idx, nil
}

// BuildColumns builds the index over the implicit point set
// (ID=i, X=xs[i], Y=ys[i]) — the sealed-segment constructor: a segment's
// rows are identified by their local row index, so the caller hands over
// two extracted coordinate columns instead of materializing geom.Points.
func BuildColumns(xs, ys []float64, cfg Config) (*Index, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("topk: %d x values for %d y values", len(xs), len(ys))
	}
	pts := make([]geom.Point, len(xs))
	for i := range pts {
		pts[i] = geom.Point{ID: i, X: xs[i], Y: ys[i]}
	}
	return Build(pts, cfg)
}

func checkPoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("topk: point %d has non-finite coordinates (%v, %v)", p.ID, p.X, p.Y)
	}
	if p.ID < 0 || int64(p.ID) > math.MaxInt32 {
		return fmt.Errorf("topk: point ID %d outside int32 range", p.ID)
	}
	return nil
}

// normalizeAngles sorts, deduplicates, and completes the angle set so that
// it covers [0°, 90°].
func normalizeAngles(in []geom.Angle) ([]geom.Angle, []float64, error) {
	degs := make([]float64, 0, len(in)+2)
	for _, a := range in {
		d := a.Degrees()
		if math.IsNaN(d) || d < -1e-9 || d > 90+1e-9 {
			return nil, nil, fmt.Errorf("topk: indexed angle %v° outside [0, 90]", d)
		}
		degs = append(degs, d)
	}
	degs = append(degs, 0, 90)
	sort.Float64s(degs)
	outD := degs[:0]
	for _, d := range degs {
		if len(outD) == 0 || d-outD[len(outD)-1] > 1e-9 {
			outD = append(outD, d)
		}
	}
	out := make([]geom.Angle, len(outD))
	for i, d := range outD {
		a, err := geom.AngleFromDegrees(math.Min(math.Max(d, 0), 90))
		if err != nil {
			return nil, nil, err
		}
		out[i] = a
		outD[i] = a.Degrees()
	}
	return out, outD, nil
}

// buildArena carves node structs, bounds vectors, and leaf coordinate
// columns out of shared slabs during a bulk load. The query hot path reads
// (child node header, child bounds) for every sibling of an expanded node,
// so siblings are placed adjacently: one cache line then serves several
// children instead of one pointer-chased heap object each. Slabs are
// chunked and never reallocated once an object has been handed out, so
// interior pointers stay valid; the tree keeps the slabs alive through
// those pointers and the arena itself is dropped when the build returns.
// Incremental updates allocate nodes individually as before — every carved
// slice is capacity-clamped, so an append on a leaf column reallocates
// instead of bleeding into a sibling's region.
type buildArena struct {
	nodes  []node
	bounds []float64
	kids   []*node
	xs     []float64
	ys     []float64
	ids    []int32
}

const arenaNodeChunk = 1024

// newNodes returns n adjacent zero node structs. Chunks start small and
// double so an incremental leaf split (a dozen nodes) doesn't pin a
// bulk-sized slab.
func (a *buildArena) newNodes(n int) []node {
	if len(a.nodes)+n > cap(a.nodes) {
		c := 2 * cap(a.nodes)
		if c < 16 {
			c = 16
		}
		if c > arenaNodeChunk {
			c = arenaNodeChunk
		}
		if n > c {
			c = n
		}
		a.nodes = make([]node, 0, c)
	}
	a.nodes = a.nodes[:len(a.nodes)+n]
	return a.nodes[len(a.nodes)-n : len(a.nodes) : len(a.nodes)]
}

// newBounds returns an n-float region; sequential calls within one parent
// yield adjacent regions.
func (a *buildArena) newBounds(n int) []float64 {
	if len(a.bounds)+n > cap(a.bounds) {
		c := 2 * cap(a.bounds)
		if c < 256 {
			c = 256
		}
		if c > 4*arenaNodeChunk {
			c = 4 * arenaNodeChunk
		}
		if n > c {
			c = n
		}
		a.bounds = make([]float64, 0, c)
	}
	a.bounds = a.bounds[:len(a.bounds)+n]
	return a.bounds[len(a.bounds)-n : len(a.bounds) : len(a.bounds)]
}

// newKids returns an n-pointer child array.
func (a *buildArena) newKids(n int) []*node {
	if len(a.kids)+n > cap(a.kids) {
		c := 2 * cap(a.kids)
		if c < 64 {
			c = 64
		}
		if c > arenaNodeChunk {
			c = arenaNodeChunk
		}
		if n > c {
			c = n
		}
		a.kids = make([]*node, 0, c)
	}
	a.kids = a.kids[:len(a.kids)+n]
	return a.kids[len(a.kids)-n : len(a.kids) : len(a.kids)]
}

// newCols carves an n-point leaf's coordinate and id columns. The column
// slabs are pre-sized to the exact point total (every point lands in exactly
// one leaf), so leaves come out packed in x order.
func (a *buildArena) newCols(n int) (xs, ys []float64, ids []int32) {
	lx, ly, li := len(a.xs), len(a.ys), len(a.ids)
	a.xs, a.ys, a.ids = a.xs[:lx+n], a.ys[:ly+n], a.ids[:li+n]
	return a.xs[lx : lx+n : lx+n], a.ys[ly : ly+n : ly+n], a.ids[li : li+n : li+n]
}

// rebuild reconstructs the tree from the given points (bulk load: sort by x,
// split bottom-up balanced, then fill bounds).
func (idx *Index) rebuild(points []geom.Point) {
	pts := append([]geom.Point(nil), points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].ID < pts[j].ID
	})
	idx.size = len(pts)
	idx.overlong = make(map[*node]bool)
	if len(pts) == 0 {
		idx.root = nil
		idx.builtDepth = 0
		return
	}
	idx.arena = &buildArena{
		xs:  make([]float64, 0, len(pts)),
		ys:  make([]float64, 0, len(pts)),
		ids: make([]int32, 0, len(pts)),
	}
	root := &idx.arena.newNodes(1)[0]
	idx.fillNode(root, pts, 0)
	idx.arena = nil
	idx.root = root
	idx.builtDepth = treeDepth(idx.root)
}

// fillNode recursively splits a sorted slice into at most b children,
// building the subtree in place in nd. Runs of equal x never straddle a
// separator, so delete/insert routing by x is exact. Child node structs and
// child bounds vectors are arena-allocated up front, before any recursion,
// so all siblings land adjacent in memory.
func (idx *Index) fillNode(nd *node, pts []geom.Point, depth int) {
	n := len(pts)
	if n <= idx.cfg.LeafCap {
		idx.fillLeaf(nd, pts, depth)
		return
	}
	b := idx.cfg.Branching
	cuts := []int{0}
	for i := 1; i < b; i++ {
		e := i * n / b
		if e <= cuts[len(cuts)-1] {
			continue
		}
		for e < n && pts[e].X == pts[e-1].X {
			e++
		}
		if e >= n {
			break
		}
		cuts = append(cuts, e)
	}
	cuts = append(cuts, n)
	if len(cuts) == 2 {
		// All points share one x (or ties defeated every cut): unsplittable.
		idx.fillLeaf(nd, pts, depth)
		return
	}
	nd.depth = depth
	nc := len(cuts) - 1
	bw := 4 * len(idx.angles)
	kids := idx.arena.newNodes(nc)
	kb := idx.arena.newBounds(nc * bw)
	nd.children = idx.arena.newKids(nc)
	for ci := 0; ci < nc; ci++ {
		chunk := pts[cuts[ci]:cuts[ci+1]]
		child := &kids[ci]
		child.bounds = kb[ci*bw : (ci+1)*bw : (ci+1)*bw]
		idx.fillNode(child, chunk, depth+1)
		nd.children[ci] = child
		if ci+1 < nc {
			nd.seps = append(nd.seps, chunk[len(chunk)-1].X)
		}
	}
	if nd.bounds == nil {
		nd.bounds = idx.arena.newBounds(bw)
	}
	idx.refreshBounds(nd)
}

// buildNode builds a subtree from scratch — the incremental-update entry
// point (leaf splits). It runs the same fill path as a bulk load over a
// transient arena sized to the subtree.
func (idx *Index) buildNode(pts []geom.Point, depth int) *node {
	saved := idx.arena
	idx.arena = &buildArena{
		xs:  make([]float64, 0, len(pts)),
		ys:  make([]float64, 0, len(pts)),
		ids: make([]int32, 0, len(pts)),
	}
	nd := &idx.arena.newNodes(1)[0]
	idx.fillNode(nd, pts, depth)
	idx.arena = saved
	return nd
}

// newLeaf builds a standalone leaf (first insert into an empty index).
func (idx *Index) newLeaf(pts []geom.Point, depth int) *node {
	saved := idx.arena
	idx.arena = &buildArena{
		xs:  make([]float64, 0, len(pts)),
		ys:  make([]float64, 0, len(pts)),
		ids: make([]int32, 0, len(pts)),
	}
	nd := &idx.arena.newNodes(1)[0]
	idx.fillLeaf(nd, pts, depth)
	idx.arena = saved
	return nd
}

func (idx *Index) fillLeaf(nd *node, pts []geom.Point, depth int) {
	nd.depth = depth
	nd.lxs, nd.lys, nd.lids = idx.arena.newCols(len(pts))
	for i, p := range pts {
		nd.lxs[i], nd.lys[i], nd.lids[i] = p.X, p.Y, int32(p.ID)
	}
	if nd.bounds == nil {
		nd.bounds = idx.arena.newBounds(4 * len(idx.angles))
	}
	idx.refreshBounds(nd)
}

// refreshBounds recomputes a node's per-angle bounds from its children (or
// its points, for a leaf).
func (idx *Index) refreshBounds(nd *node) {
	for i := range nd.bounds {
		if i%4 == 0 || i%4 == 2 { // maxima
			nd.bounds[i] = math.Inf(-1)
		} else {
			nd.bounds[i] = math.Inf(1)
		}
	}
	if nd.leaf() {
		for i := range nd.lids {
			idx.mergeCoordBounds(nd, nd.lxs[i], nd.lys[i])
		}
		return
	}
	for _, c := range nd.children {
		for ai := range idx.angles {
			o := 4 * ai
			nd.bounds[o+0] = math.Max(nd.bounds[o+0], c.bounds[o+0])
			nd.bounds[o+1] = math.Min(nd.bounds[o+1], c.bounds[o+1])
			nd.bounds[o+2] = math.Max(nd.bounds[o+2], c.bounds[o+2])
			nd.bounds[o+3] = math.Min(nd.bounds[o+3], c.bounds[o+3])
		}
	}
}

// mergePointBounds widens nd's bounds to cover point p. Used by refresh and
// by the O(log n) insert path.
func (idx *Index) mergePointBounds(nd *node, p geom.Point) {
	idx.mergeCoordBounds(nd, p.X, p.Y)
}

func (idx *Index) mergeCoordBounds(nd *node, x, y float64) {
	for ai, a := range idx.angles {
		u, v := a.U(x, y), a.V(x, y)
		o := 4 * ai
		nd.bounds[o+0] = math.Max(nd.bounds[o+0], u)
		nd.bounds[o+1] = math.Min(nd.bounds[o+1], u)
		nd.bounds[o+2] = math.Max(nd.bounds[o+2], v)
		nd.bounds[o+3] = math.Min(nd.bounds[o+3], v)
	}
}

func treeDepth(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.leaf() {
		return nd.depth
	}
	d := nd.depth
	for _, c := range nd.children {
		if cd := treeDepth(c); cd > d {
			d = cd
		}
	}
	return d
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.size }

// Angles returns the indexed projection angles (sorted by degree).
func (idx *Index) Angles() []geom.Angle { return idx.angles }

// Points returns a copy of all indexed points (used for rebuilds and tests).
func (idx *Index) Points() []geom.Point {
	out := make([]geom.Point, 0, idx.size)
	var walk func(*node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.leaf() {
			for i := range nd.lids {
				out = append(out, nd.point(i))
			}
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(idx.root)
	return out
}
