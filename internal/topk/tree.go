// Package topk implements the paper's §4 index structure for top-k SD-queries
// with k and the weighting parameters supplied at query time.
//
// The index is a balanced b-ary tree over the x-values of the points (a 1D
// KD-tree in the paper's terms). Every non-leaf node stores, for each indexed
// projection angle, bounds on the four projection intercepts within its
// subtree:
//
//	maxU = max α·y − β·x   (highest llp — and lowest rup is minU)
//	maxV = max α·y + β·x   (highest rlp — and lowest lup is minV)
//
// Given a query axis x = x_q, the root-to-leaf "separating path" splits the
// tree into subtrees entirely left and entirely right of the axis. Left
// projections (llp, lup) of right-side points and right projections (rlp,
// rup) of left-side points intersect the axis; four best-first streams over
// the per-node bounds then enumerate each projection type in score order
// (Algorithms 2 and 3). Arbitrary query weights are answered by bracketing
// the query angle between two indexed angles (Claim 6, Algorithm 4).
//
// Departure from the paper's presentation: rather than destructively
// updating bounds along the separating path and undoing them after the
// query, each query materializes the path once into pure one-side subtree
// seeds and runs lazy best-first heaps over them. Visit order and
// asymptotics are identical, and a shared index serves concurrent queries.
package topk

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// DefaultAngles returns the paper's recommended five indexed angles,
// uniformly covering [0°, 90°]: 0, 23, 45, 67, 90 (§6.1).
func DefaultAngles() []geom.Angle {
	return anglesFromDegrees(0, 23, 45, 67, 90)
}

func anglesFromDegrees(degs ...float64) []geom.Angle {
	out := make([]geom.Angle, len(degs))
	for i, d := range degs {
		a, err := geom.AngleFromDegrees(d)
		if err != nil {
			panic(err)
		}
		out[i] = a
	}
	return out
}

// Config controls index construction.
type Config struct {
	// Branching is the tree fan-out b ≥ 2. Default 8.
	Branching int
	// LeafCap is the number of points a leaf may hold. 1 reproduces the
	// paper's in-memory layout; larger values give the §4 disk-style
	// bulk-loaded packing. Default 1.
	LeafCap int
	// Angles are the indexed projection angles. The set is sorted,
	// deduplicated, and extended with 0° and 90° if absent (the paper's
	// recommendation, and required for Claim 6 to bracket every query).
	// Default: DefaultAngles().
	Angles []geom.Angle
	// RebuildThreshold is θ of §4: when the fraction of leaves on
	// overlong paths exceeds it, the index is rebuilt. Default 0.25.
	RebuildThreshold float64
}

func (c Config) withDefaults() Config {
	if c.Branching == 0 {
		c.Branching = 8
	}
	if c.LeafCap == 0 {
		c.LeafCap = 1
	}
	if len(c.Angles) == 0 {
		c.Angles = DefaultAngles()
	}
	if c.RebuildThreshold == 0 {
		c.RebuildThreshold = 0.25
	}
	return c
}

// node is both internal node and leaf. For leaves pts != nil; for internal
// nodes children is non-empty and seps holds len(children)-1 separators:
// child i contains exactly the points with x in (seps[i-1], seps[i]].
type node struct {
	seps     []float64
	children []*node
	pts      []geom.Point
	// bounds holds 4 values per indexed angle:
	// [4a+0] maxU, [4a+1] minU, [4a+2] maxV, [4a+3] minV.
	bounds []float64
	depth  int
}

func (n *node) leaf() bool { return n.pts != nil }

// Index is the §4 top-k structure. It is safe for concurrent queries;
// updates require external synchronization.
type Index struct {
	cfg     Config
	angles  []geom.Angle
	degrees []float64
	root    *node
	size    int
	// rebalance bookkeeping (§4): leaves deeper than the as-built height.
	builtDepth int
	overlong   map[*node]bool
}

// Build constructs the index. Points must have finite coordinates and IDs
// representable as int32 (they are caller-assigned and not checked for
// uniqueness). An empty point set is allowed.
func Build(points []geom.Point, cfg Config) (*Index, error) {
	cfg = cfg.withDefaults()
	if cfg.Branching < 2 {
		return nil, fmt.Errorf("topk: branching factor %d < 2", cfg.Branching)
	}
	if cfg.LeafCap < 1 {
		return nil, fmt.Errorf("topk: leaf capacity %d < 1", cfg.LeafCap)
	}
	if cfg.RebuildThreshold < 0 || cfg.RebuildThreshold > 1 {
		return nil, fmt.Errorf("topk: rebuild threshold %v outside [0, 1]", cfg.RebuildThreshold)
	}
	for _, p := range points {
		if err := checkPoint(p); err != nil {
			return nil, err
		}
	}
	angles, degrees, err := normalizeAngles(cfg.Angles)
	if err != nil {
		return nil, err
	}
	cfg.Angles = angles
	idx := &Index{cfg: cfg, angles: angles, degrees: degrees, overlong: make(map[*node]bool)}
	idx.rebuild(points)
	return idx, nil
}

// BuildColumns builds the index over the implicit point set
// (ID=i, X=xs[i], Y=ys[i]) — the sealed-segment constructor: a segment's
// rows are identified by their local row index, so the caller hands over
// two extracted coordinate columns instead of materializing geom.Points.
func BuildColumns(xs, ys []float64, cfg Config) (*Index, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("topk: %d x values for %d y values", len(xs), len(ys))
	}
	pts := make([]geom.Point, len(xs))
	for i := range pts {
		pts[i] = geom.Point{ID: i, X: xs[i], Y: ys[i]}
	}
	return Build(pts, cfg)
}

func checkPoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsInf(p.X, 0) || math.IsNaN(p.Y) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("topk: point %d has non-finite coordinates (%v, %v)", p.ID, p.X, p.Y)
	}
	if p.ID < 0 || int64(p.ID) > math.MaxInt32 {
		return fmt.Errorf("topk: point ID %d outside int32 range", p.ID)
	}
	return nil
}

// normalizeAngles sorts, deduplicates, and completes the angle set so that
// it covers [0°, 90°].
func normalizeAngles(in []geom.Angle) ([]geom.Angle, []float64, error) {
	degs := make([]float64, 0, len(in)+2)
	for _, a := range in {
		d := a.Degrees()
		if math.IsNaN(d) || d < -1e-9 || d > 90+1e-9 {
			return nil, nil, fmt.Errorf("topk: indexed angle %v° outside [0, 90]", d)
		}
		degs = append(degs, d)
	}
	degs = append(degs, 0, 90)
	sort.Float64s(degs)
	outD := degs[:0]
	for _, d := range degs {
		if len(outD) == 0 || d-outD[len(outD)-1] > 1e-9 {
			outD = append(outD, d)
		}
	}
	out := make([]geom.Angle, len(outD))
	for i, d := range outD {
		a, err := geom.AngleFromDegrees(math.Min(math.Max(d, 0), 90))
		if err != nil {
			return nil, nil, err
		}
		out[i] = a
		outD[i] = a.Degrees()
	}
	return out, outD, nil
}

// rebuild reconstructs the tree from the given points (bulk load: sort by x,
// split bottom-up balanced, then fill bounds).
func (idx *Index) rebuild(points []geom.Point) {
	pts := append([]geom.Point(nil), points...)
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		if pts[i].Y != pts[j].Y {
			return pts[i].Y < pts[j].Y
		}
		return pts[i].ID < pts[j].ID
	})
	idx.size = len(pts)
	idx.overlong = make(map[*node]bool)
	if len(pts) == 0 {
		idx.root = nil
		idx.builtDepth = 0
		return
	}
	idx.root = idx.buildNode(pts, 0)
	idx.builtDepth = treeDepth(idx.root)
}

// buildNode recursively splits a sorted slice into at most b children. Runs
// of equal x never straddle a separator, so delete/insert routing by x is
// exact.
func (idx *Index) buildNode(pts []geom.Point, depth int) *node {
	n := len(pts)
	if n <= idx.cfg.LeafCap {
		return idx.newLeaf(pts, depth)
	}
	b := idx.cfg.Branching
	cuts := []int{0}
	for i := 1; i < b; i++ {
		e := i * n / b
		if e <= cuts[len(cuts)-1] {
			continue
		}
		for e < n && pts[e].X == pts[e-1].X {
			e++
		}
		if e >= n {
			break
		}
		cuts = append(cuts, e)
	}
	cuts = append(cuts, n)
	if len(cuts) == 2 {
		// All points share one x (or ties defeated every cut): unsplittable.
		return idx.newLeaf(pts, depth)
	}
	nd := &node{depth: depth}
	for ci := 0; ci+1 < len(cuts); ci++ {
		chunk := pts[cuts[ci]:cuts[ci+1]]
		nd.children = append(nd.children, idx.buildNode(chunk, depth+1))
		if ci+2 < len(cuts) {
			nd.seps = append(nd.seps, chunk[len(chunk)-1].X)
		}
	}
	nd.bounds = make([]float64, 4*len(idx.angles))
	idx.refreshBounds(nd)
	return nd
}

func (idx *Index) newLeaf(pts []geom.Point, depth int) *node {
	leaf := &node{pts: append([]geom.Point(nil), pts...), depth: depth}
	leaf.bounds = make([]float64, 4*len(idx.angles))
	idx.refreshBounds(leaf)
	return leaf
}

// refreshBounds recomputes a node's per-angle bounds from its children (or
// its points, for a leaf).
func (idx *Index) refreshBounds(nd *node) {
	for i := range nd.bounds {
		if i%4 == 0 || i%4 == 2 { // maxima
			nd.bounds[i] = math.Inf(-1)
		} else {
			nd.bounds[i] = math.Inf(1)
		}
	}
	if nd.leaf() {
		for _, p := range nd.pts {
			idx.mergePointBounds(nd, p)
		}
		return
	}
	for _, c := range nd.children {
		for ai := range idx.angles {
			o := 4 * ai
			nd.bounds[o+0] = math.Max(nd.bounds[o+0], c.bounds[o+0])
			nd.bounds[o+1] = math.Min(nd.bounds[o+1], c.bounds[o+1])
			nd.bounds[o+2] = math.Max(nd.bounds[o+2], c.bounds[o+2])
			nd.bounds[o+3] = math.Min(nd.bounds[o+3], c.bounds[o+3])
		}
	}
}

// mergePointBounds widens nd's bounds to cover point p. Used by refresh and
// by the O(log n) insert path.
func (idx *Index) mergePointBounds(nd *node, p geom.Point) {
	for ai, a := range idx.angles {
		u, v := a.U(p.X, p.Y), a.V(p.X, p.Y)
		o := 4 * ai
		nd.bounds[o+0] = math.Max(nd.bounds[o+0], u)
		nd.bounds[o+1] = math.Min(nd.bounds[o+1], u)
		nd.bounds[o+2] = math.Max(nd.bounds[o+2], v)
		nd.bounds[o+3] = math.Min(nd.bounds[o+3], v)
	}
}

func treeDepth(nd *node) int {
	if nd == nil {
		return 0
	}
	if nd.leaf() {
		return nd.depth
	}
	d := nd.depth
	for _, c := range nd.children {
		if cd := treeDepth(c); cd > d {
			d = cd
		}
	}
	return d
}

// Len returns the number of indexed points.
func (idx *Index) Len() int { return idx.size }

// Angles returns the indexed projection angles (sorted by degree).
func (idx *Index) Angles() []geom.Angle { return idx.angles }

// Points returns a copy of all indexed points (used for rebuilds and tests).
func (idx *Index) Points() []geom.Point {
	out := make([]geom.Point, 0, idx.size)
	var walk func(*node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		if nd.leaf() {
			out = append(out, nd.pts...)
			return
		}
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(idx.root)
	return out
}
