package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

const eps = 1e-9

func scanTopK(pts []geom.Point, q geom.Point, alpha, beta float64, k int) []float64 {
	scores := make([]float64, len(pts))
	for i, p := range pts {
		scores[i] = alpha*math.Abs(p.Y-q.Y) - beta*math.Abs(p.X-q.X)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	if len(scores) > k {
		scores = scores[:k]
	}
	return scores
}

func randomPoints(rng *rand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: i, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
	}
	return pts
}

func checkQuery(t *testing.T, idx *Index, pts []geom.Point, q geom.Point, alpha, beta float64, k int) {
	t.Helper()
	got, err := idx.Query(q, k, alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	want := scanTopK(pts, q, alpha, beta, k)
	if len(got) != len(want) {
		t.Fatalf("query %+v k=%d α=%v β=%v: %d results, want %d", q, k, alpha, beta, len(got), len(want))
	}
	for i := range want {
		tol := eps * math.Max(1, math.Abs(want[i]))
		if math.Abs(got[i].Score-want[i]) > tol {
			t.Fatalf("query %+v k=%d α=%v β=%v result %d: score %v, want %v (point %+v)",
				q, k, alpha, beta, i, got[i].Score, want[i], got[i].Point)
		}
	}
	// Results must be distinct points.
	seen := map[int]bool{}
	for _, r := range got {
		if seen[r.Point.ID] {
			t.Fatalf("duplicate point %d in results", r.Point.ID)
		}
		seen[r.Point.ID] = true
	}
}

func TestBuildValidation(t *testing.T) {
	pts := []geom.Point{{ID: 0, X: 1, Y: 1}}
	if _, err := Build(pts, Config{Branching: 1}); err == nil {
		t.Error("branching 1: want error")
	}
	if _, err := Build(pts, Config{LeafCap: -1}); err == nil {
		t.Error("negative leaf cap: want error")
	}
	if _, err := Build(pts, Config{RebuildThreshold: 2}); err == nil {
		t.Error("threshold > 1: want error")
	}
	if _, err := Build([]geom.Point{{ID: 0, X: math.Inf(1), Y: 0}}, Config{}); err == nil {
		t.Error("infinite coordinate: want error")
	}
	if _, err := Build([]geom.Point{{ID: -3, X: 0, Y: 0}}, Config{}); err == nil {
		t.Error("negative ID: want error")
	}
}

func TestQueryValidation(t *testing.T) {
	idx, err := Build(randomPoints(rand.New(rand.NewSource(1)), 10), Config{})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 0, Y: 0}
	if _, err := idx.Query(q, 0, 1, 1); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := idx.Query(q, 1, -1, 1); err == nil {
		t.Error("negative weight: want error")
	}
	if _, err := idx.Query(q, 1, 0, 0); err == nil {
		t.Error("zero weights: want error")
	}
	if _, err := idx.Query(geom.Point{X: math.NaN(), Y: 0}, 1, 1, 1); err == nil {
		t.Error("NaN query: want error")
	}
}

func TestEmptyIndex(t *testing.T) {
	idx, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Query(geom.Point{X: 0, Y: 0}, 5, 1, 1)
	if err != nil || res != nil {
		t.Fatalf("empty index: got %v, %v; want nil, nil", res, err)
	}
}

func TestAnglesNormalized(t *testing.T) {
	idx, err := Build(nil, Config{Angles: anglesFromDegrees(45)})
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Angles()
	if len(got) != 3 {
		t.Fatalf("angle set size %d, want 3 (0, 45, 90 after completion)", len(got))
	}
	degs := []float64{got[0].Degrees(), got[1].Degrees(), got[2].Degrees()}
	want := []float64{0, 45, 90}
	for i := range want {
		if math.Abs(degs[i]-want[i]) > 1e-9 {
			t.Fatalf("angles = %v, want %v", degs, want)
		}
	}
}

// TestIndexedAngleMatchesScan exercises the direct Algorithm 2/3 path: the
// query angle coincides with an indexed angle.
func TestIndexedAngleMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, branching := range []int{2, 3, 8} {
		for _, leafCap := range []int{1, 4} {
			for trial := 0; trial < 20; trial++ {
				n := rng.Intn(400) + 1
				pts := randomPoints(rng, n)
				idx, err := Build(pts, Config{Branching: branching, LeafCap: leafCap})
				if err != nil {
					t.Fatal(err)
				}
				for _, deg := range []float64{0, 23, 45, 67, 90} {
					a, _ := geom.AngleFromDegrees(deg)
					for qi := 0; qi < 5; qi++ {
						q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
						k := rng.Intn(10) + 1
						checkQuery(t, idx, pts, q, a.Alpha, a.Beta, k)
					}
				}
			}
		}
	}
}

// TestArbitraryWeightsMatchesScan exercises the Claim 6 / Algorithm 4 path:
// weights drawn uniformly, as in the paper's workload.
func TestArbitraryWeightsMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(500) + 1
		pts := randomPoints(rng, n)
		idx, err := Build(pts, Config{Branching: 2 + rng.Intn(7), LeafCap: 1 + rng.Intn(4)})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 10; qi++ {
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
			k := rng.Intn(12) + 1
			checkQuery(t, idx, pts, q, alpha, beta, k)
		}
	}
}

func TestFewIndexedAnglesStillExact(t *testing.T) {
	// Only the mandatory 0° and 90°: every query angle is bracketed by the
	// widest possible interval — the stress case for Claim 6.
	rng := rand.New(rand.NewSource(33))
	pts := randomPoints(rng, 300)
	idx, err := Build(pts, Config{Angles: anglesFromDegrees(0, 90)})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 60; qi++ {
		q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
		alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
		checkQuery(t, idx, pts, q, alpha, beta, 5)
	}
}

func TestDegenerateWeightQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	pts := randomPoints(rng, 200)
	idx, err := Build(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 20; qi++ {
		q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
		checkQuery(t, idx, pts, q, 1, 0, 3) // pure repulsive (θ=0°)
		checkQuery(t, idx, pts, q, 0, 1, 3) // pure attractive (θ=90°)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	var pts []geom.Point
	for i := 0; i < 120; i++ {
		pts = append(pts, geom.Point{ID: i, X: float64(rng.Intn(5)), Y: float64(rng.Intn(5))})
	}
	idx, err := Build(pts, Config{Branching: 3})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 40; qi++ {
		q := geom.Point{X: rng.NormFloat64() * 3, Y: rng.NormFloat64() * 3}
		alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
		checkQuery(t, idx, pts, q, alpha, beta, rng.Intn(8)+1)
	}
}

func TestAllPointsIdentical(t *testing.T) {
	pts := make([]geom.Point, 50)
	for i := range pts {
		pts[i] = geom.Point{ID: i, X: 3, Y: 4}
	}
	idx, err := Build(pts, Config{LeafCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkQuery(t, idx, pts, geom.Point{X: 0, Y: 0}, 1, 1, 5)
	checkQuery(t, idx, pts, geom.Point{X: 3, Y: 4}, 0.3, 0.7, 50)
}

func TestKLargerThanN(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	pts := randomPoints(rng, 7)
	idx, err := Build(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := idx.Query(geom.Point{X: 0, Y: 0}, 100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 7 {
		t.Fatalf("got %d results, want all 7", len(res))
	}
	checkQuery(t, idx, pts, geom.Point{X: 1, Y: 1}, 0.4, 0.9, 100)
}

func TestInsertMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	pts := randomPoints(rng, 60)
	idx, err := Build(pts, Config{Branching: 4, LeafCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		p := geom.Point{ID: 1000 + i, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		if err := idx.Insert(p); err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
		if i%5 == 0 {
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
			checkQuery(t, idx, pts, q, alpha, beta, 5)
		}
	}
	if idx.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", idx.Len(), len(pts))
	}
}

func TestDeleteMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	pts := randomPoints(rng, 250)
	idx, err := Build(pts, Config{Branching: 4})
	if err != nil {
		t.Fatal(err)
	}
	for len(pts) > 0 {
		victim := rng.Intn(len(pts))
		if !idx.Delete(pts[victim]) {
			t.Fatalf("Delete(%+v) = false", pts[victim])
		}
		pts = append(pts[:victim], pts[victim+1:]...)
		if len(pts)%10 == 0 && len(pts) > 0 {
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			checkQuery(t, idx, pts, q, rng.Float64()+1e-6, rng.Float64()+1e-6, 5)
		}
	}
	if idx.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", idx.Len())
	}
	res, err := idx.Query(geom.Point{}, 3, 1, 1)
	if err != nil || len(res) != 0 {
		t.Fatalf("query on emptied index: %v, %v", res, err)
	}
}

func TestDeleteUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	pts := randomPoints(rng, 30)
	idx, err := Build(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Delete(geom.Point{ID: 999, X: 0.123, Y: 0.456}) {
		t.Fatal("deleted a point that was never inserted")
	}
	if idx.Len() != 30 {
		t.Fatalf("Len changed to %d", idx.Len())
	}
}

func TestChurnTriggersRebuildAndStaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	pts := randomPoints(rng, 100)
	idx, err := Build(pts, Config{Branching: 2, RebuildThreshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	builtDepth := idx.BuiltDepth()
	nextID := 1000
	for step := 0; step < 600; step++ {
		if len(pts) > 10 && rng.Intn(3) == 0 {
			victim := rng.Intn(len(pts))
			idx.Delete(pts[victim])
			pts = append(pts[:victim], pts[victim+1:]...)
		} else {
			p := geom.Point{ID: nextID, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
			nextID++
			if err := idx.Insert(p); err != nil {
				t.Fatal(err)
			}
			pts = append(pts, p)
		}
		if step%25 == 0 {
			q := geom.Point{X: rng.NormFloat64() * 8, Y: rng.NormFloat64() * 8}
			checkQuery(t, idx, pts, q, rng.Float64()+1e-6, rng.Float64()+1e-6, 5)
		}
	}
	// With a 5% threshold and 500+ inserts into a b=2 tree, at least one
	// rebuild must have occurred (depth reset to the balanced height).
	if idx.Depth() > builtDepth+400 {
		t.Fatalf("tree degenerated to depth %d; rebuild policy inert", idx.Depth())
	}
	if idx.OverlongLeaves() > int(0.05*float64(idx.Len()))+1 {
		t.Fatalf("overlong set %d exceeds threshold on %d points", idx.OverlongLeaves(), idx.Len())
	}
}

func TestStreamMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pts := randomPoints(rng, 300)
	idx, err := Build(pts, Config{Branching: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := geom.Point{X: 0.5, Y: -0.5}
	cur := idx.newCursor(q)
	for ai := range idx.angles {
		bl := blend{angle: idx.angles[ai], al: ai, au: ai, lambda: 1, mu: 0}
		for _, kind := range []geom.Kind{geom.LLP, geom.LUP, geom.RLP, geom.RUP} {
			s := cur.newStream(bl, kind)
			var prev float64
			first := true
			count := 0
			for {
				p, ok := s.next()
				if !ok {
					break
				}
				count++
				// Side constraint (Eqn. 6): left projections only from
				// right-side points and vice versa.
				if (kind == geom.LLP || kind == geom.LUP) && p.X < q.X {
					t.Fatalf("%v stream emitted left-side point %+v", kind, p)
				}
				if (kind == geom.RLP || kind == geom.RUP) && p.X >= q.X {
					t.Fatalf("%v stream emitted right-side point %+v", kind, p)
				}
				// The y rule (Eqn. 6): lower kinds carry points at or
				// above the query, upper kinds strictly below.
				if kind.Lower() != (p.Y >= q.Y) {
					t.Fatalf("%v stream emitted wrong-y point %+v", kind, p)
				}
				// Keys are negated for minimizing kinds, so every stream
				// emits in non-increasing key order.
				key := s.pointKey(p)
				if !first && key > prev+eps {
					t.Fatalf("%v stream not non-increasing: %v after %v", kind, key, prev)
				}
				prev, first = key, false
			}
			if count == 0 {
				continue
			}
		}
	}
}

func TestBytesGrowsWithAnglesAndShrinksWithBranching(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := randomPoints(rng, 2000)
	idx2, _ := Build(pts, Config{Angles: anglesFromDegrees(0, 90), Branching: 8})
	idx5, _ := Build(pts, Config{Branching: 8})
	if idx5.Bytes() <= idx2.Bytes() {
		t.Fatalf("5-angle index (%d B) not larger than 2-angle (%d B)", idx5.Bytes(), idx2.Bytes())
	}
	idxWide, _ := Build(pts, Config{Branching: 32, LeafCap: 8})
	if idxWide.Bytes() >= idx5.Bytes() {
		t.Fatalf("wide/bulk index (%d B) not smaller than b=8/leaf=1 (%d B)", idxWide.Bytes(), idx5.Bytes())
	}
}

func TestPointsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pts := randomPoints(rng, 500)
	idx, err := Build(pts, Config{Branching: 5, LeafCap: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := idx.Points()
	if len(got) != len(pts) {
		t.Fatalf("Points() returned %d, want %d", len(got), len(pts))
	}
	seen := map[int]bool{}
	for _, p := range got {
		seen[p.ID] = true
	}
	for _, p := range pts {
		if !seen[p.ID] {
			t.Fatalf("point %d missing from Points()", p.ID)
		}
	}
}

// TestSeparatorInvariant: after arbitrary churn, every internal node's
// children respect the separator partition (child i ⊆ (sep[i-1], sep[i]]).
func TestSeparatorInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	pts := randomPoints(rng, 200)
	idx, err := Build(pts, Config{Branching: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if rng.Intn(2) == 0 && len(pts) > 1 {
			v := rng.Intn(len(pts))
			idx.Delete(pts[v])
			pts = append(pts[:v], pts[v+1:]...)
		} else {
			p := geom.Point{ID: 10000 + i, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
			idx.Insert(p)
			pts = append(pts, p)
		}
	}
	var check func(nd *node, lo, hi float64)
	check = func(nd *node, lo, hi float64) {
		if nd == nil {
			return
		}
		if nd.leaf() {
			for _, x := range nd.lxs {
				if x <= lo || x > hi {
					t.Fatalf("leaf point x=%v outside (%v, %v]", x, lo, hi)
				}
			}
			return
		}
		if len(nd.seps) != len(nd.children)-1 {
			t.Fatalf("node has %d seps for %d children", len(nd.seps), len(nd.children))
		}
		prev := lo
		for i, c := range nd.children {
			end := hi
			if i < len(nd.seps) {
				end = nd.seps[i]
			}
			check(c, prev, end)
			prev = end
		}
	}
	check(idx.root, math.Inf(-1), math.Inf(1))
}

// TestBoundsInvariant: every node's stored bounds equal the true extrema of
// its subtree, after churn.
func TestBoundsInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	pts := randomPoints(rng, 150)
	idx, err := Build(pts, Config{Branching: 4, LeafCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if rng.Intn(2) == 0 && len(pts) > 1 {
			v := rng.Intn(len(pts))
			idx.Delete(pts[v])
			pts = append(pts[:v], pts[v+1:]...)
		} else {
			p := geom.Point{ID: 20000 + i, X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
			idx.Insert(p)
			pts = append(pts, p)
		}
	}
	var check func(nd *node)
	check = func(nd *node) {
		if nd == nil {
			return
		}
		sub := subtreePoints(nd)
		for ai, a := range idx.angles {
			maxU, minU := math.Inf(-1), math.Inf(1)
			maxV, minV := math.Inf(-1), math.Inf(1)
			for _, p := range sub {
				u, v := a.U(p.X, p.Y), a.V(p.X, p.Y)
				maxU, minU = math.Max(maxU, u), math.Min(minU, u)
				maxV, minV = math.Max(maxV, v), math.Min(minV, v)
			}
			o := 4 * ai
			// Insert widens exactly and delete recomputes, so bounds must
			// be tight (not merely admissible).
			for j, want := range []float64{maxU, minU, maxV, minV} {
				if math.Abs(nd.bounds[o+j]-want) > eps {
					t.Fatalf("angle %d bound %d: stored %v, true %v", ai, j, nd.bounds[o+j], want)
				}
			}
		}
		for _, c := range nd.children {
			check(c)
		}
	}
	check(idx.root)
}

func subtreePoints(nd *node) []geom.Point {
	if nd.leaf() {
		out := make([]geom.Point, 0, nd.npts())
		for i := range nd.lids {
			out = append(out, nd.point(i))
		}
		return out
	}
	var out []geom.Point
	for _, c := range nd.children {
		out = append(out, subtreePoints(c)...)
	}
	return out
}
