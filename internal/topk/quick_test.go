package topk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

// TestOversizedLeafFallback: leaf capacities beyond the 64-bit cursor mask
// force the per-point fallback path; answers must stay scan-identical.
func TestOversizedLeafFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	pts := randomPoints(rng, 500)
	idx, err := Build(pts, Config{LeafCap: 100, Branching: 4})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 30; qi++ {
		q := geom.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
		checkQuery(t, idx, pts, q, alpha, beta, rng.Intn(10)+1)
	}
}

// TestMassiveDuplicateX: thousands of points sharing one x collapse into a
// single unsplittable oversized leaf; queries and updates must survive.
func TestMassiveDuplicateX(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	pts := make([]geom.Point, 300)
	for i := range pts {
		pts[i] = geom.Point{ID: i, X: 7, Y: rng.NormFloat64() * 5}
	}
	idx, err := Build(pts, Config{LeafCap: 2})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 20; qi++ {
		q := geom.Point{X: rng.NormFloat64() * 10, Y: rng.NormFloat64() * 5}
		checkQuery(t, idx, pts, q, 1, 1, 5)
	}
	victim := pts[13]
	if !idx.Delete(victim) {
		t.Fatal("delete from duplicate-x leaf failed")
	}
	pts = append(pts[:13], pts[14:]...)
	checkQuery(t, idx, pts, geom.Point{X: 3, Y: 0}, 0.5, 0.5, 5)
}

// TestQueryQuickProperty: randomized quick-check — the index agrees with a
// brute-force scan for arbitrary point clouds, queries, and weights.
func TestQueryQuickProperty(t *testing.T) {
	property := func(coords []float64, qx, qy, aRaw, bRaw float64, kRaw uint8) bool {
		sanitize := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0.5
			}
			return math.Mod(x, 100)
		}
		var pts []geom.Point
		for i := 0; i+1 < len(coords); i += 2 {
			pts = append(pts, geom.Point{
				ID: i / 2, X: sanitize(coords[i]), Y: sanitize(coords[i+1]),
			})
		}
		if len(pts) == 0 {
			return true
		}
		idx, err := Build(pts, Config{Branching: 3, LeafCap: 2})
		if err != nil {
			return false
		}
		q := geom.Point{X: sanitize(qx), Y: sanitize(qy)}
		alpha := math.Abs(sanitize(aRaw)) + 1e-3
		beta := math.Abs(sanitize(bRaw)) + 1e-3
		k := int(kRaw)%len(pts) + 1
		got, err := idx.Query(q, k, alpha, beta)
		if err != nil {
			return false
		}
		want := scanTopK(pts, q, alpha, beta, k)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentTreeQueries: one tree, parallel streams.
func TestConcurrentTreeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	pts := randomPoints(rng, 2000)
	idx, err := Build(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 50; i++ {
				q := geom.Point{X: r.NormFloat64() * 5, Y: r.NormFloat64() * 5}
				alpha, beta := r.Float64()+1e-6, r.Float64()+1e-6
				res, err := idx.Query(q, 5, alpha, beta)
				if err != nil {
					done <- err
					return
				}
				want := scanTopK(pts, q, alpha, beta, 5)
				for j := range want {
					if math.Abs(res[j].Score-want[j]) > 1e-9*math.Max(1, math.Abs(want[j])) {
						done <- errMismatch
						return
					}
				}
			}
			done <- nil
		}(int64(w))
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query mismatch" }
