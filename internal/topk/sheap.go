package topk

import (
	"math"
	"sync"
)

// sentry is a best-first stream entry, one of:
//
//   - an internal subtree (nd != nil, !nd.leaf()) under an admissible
//     blended bound key;
//   - a leaf cursor (nd != nil, nd.leaf()): mask marks the points already
//     emitted or filtered out, and key bounds the best remaining point —
//     exact after the first scan, the stored node bound before it;
//   - a concrete point (nd == nil) with its exact key — used for the
//     separating-path leaf and for oversized duplicate-x leaves whose
//     occupancy exceeds the 64-bit mask. The mask field doubles as the
//     point's index into the owning stream's pts scratch: a point entry
//     needs no mask and a leaf cursor no index, so the union keeps the
//     sentry at three words.
//
// Leaf cursors are the reason the query path stays cheap: a leaf of 16
// points costs one heap entry and O(LeafCap) scans instead of 16 heap
// pushes.
type sentry struct {
	key  float64
	nd   *node
	mask uint64
}

// heapPay is the non-key part of a sentry; the heap stores keys and
// payloads in parallel arrays so sifts compare through a densely packed
// float column (four children's keys share a cache line) and move the
// two-word payload only on an actual swap.
type heapPay struct {
	nd   *node
	mask uint64
}

// sheap is a 4-ary max-heap over sentries specialized for the query hot
// path: the comparison is a direct float compare (ascending streams negate
// their keys), the wide fan-out halves sift depth for the pop-heavy
// best-first workload, and the struct-of-arrays layout keeps sift compares
// inside the key column.
type sheap struct {
	keys []float64
	pay  []heapPay
	box  *sheapArrays // pooled backing arrays; kept so release never re-boxes
}

// sheapArrays is the pooled pair of backing arrays.
type sheapArrays struct {
	keys []float64
	pay  []heapPay
}

// sentryPool recycles heap backing arrays across queries: the four stream
// heaps of a merge grow to thousands of entries per query, and reusing their
// arrays removes the dominant per-query allocation. Entries are boxed array
// pairs owned by the sheap between acquire and release, so the round trip
// itself allocates nothing.
var sentryPool = sync.Pool{
	New: func() any {
		return &sheapArrays{
			keys: make([]float64, 0, 256),
			pay:  make([]heapPay, 0, 256),
		}
	},
}

func (h *sheap) acquire(capacity int) {
	if h.box == nil {
		h.box = sentryPool.Get().(*sheapArrays)
	}
	h.keys = h.box.keys[:0]
	h.pay = h.box.pay[:0]
	if cap(h.keys) < capacity {
		h.keys = make([]float64, 0, capacity)
		h.pay = make([]heapPay, 0, capacity)
	}
}

func (h *sheap) release() {
	if h.box == nil {
		return
	}
	h.box.keys = h.keys[:0] // donate the (possibly re-grown) arrays back
	h.box.pay = h.pay[:0]
	sentryPool.Put(h.box)
	h.box, h.keys, h.pay = nil, nil, nil
}

func (h *sheap) len() int { return len(h.keys) }

// topKey returns the key of the maximum entry; callers guard with len.
func (h *sheap) topKey() float64 { return h.keys[0] }

// top returns the maximum entry without removing it; callers guard with len.
func (h *sheap) top() sentry {
	return sentry{key: h.keys[0], nd: h.pay[0].nd, mask: h.pay[0].mask}
}

// secondKey returns the best key excluding the root — in a max-heap
// necessarily among the root's (up to four) children — or −Inf on a
// single-entry heap. It equals what topKey would report after popping the
// root, at a quarter of the cost.
func (h *sheap) secondKey() float64 {
	n := len(h.keys)
	if n > 5 {
		n = 5
	}
	best := math.Inf(-1)
	for c := 1; c < n; c++ {
		if h.keys[c] > best {
			best = h.keys[c]
		}
	}
	return best
}

// add appends an entry without restoring heap order; callers must finish the
// bulk load with init. Paired with init it turns the O(n log n) push-per-seed
// stream construction into an O(n) heapify.
func (h *sheap) add(e sentry) {
	h.keys = append(h.keys, e.key)
	h.pay = append(h.pay, heapPay{nd: e.nd, mask: e.mask})
}

// init establishes heap order over the whole array (Floyd heapify): sift
// down every internal node from the last parent to the root.
func (h *sheap) init() {
	n := len(h.keys)
	if n < 2 {
		return
	}
	for i := (n - 2) / 4; i >= 0; i-- {
		h.down(i)
	}
}

// pushAll bulk-inserts entries — the leaf-spill path for oversized
// duplicate-x leaves whose occupancy exceeds the 64-bit cursor mask. When
// the batch rivals the heap's size a whole-array heapify is cheaper than
// sifting each entry; small batches sift individually.
func (h *sheap) pushAll(es []sentry) {
	if len(es) == 0 {
		return
	}
	if len(es) >= len(h.keys)/2 {
		for _, e := range es {
			h.add(e)
		}
		h.init()
		return
	}
	for _, e := range es {
		h.push(e)
	}
}

func (h *sheap) push(e sentry) {
	h.add(e)
	i := len(h.keys) - 1
	k := h.keys[i]
	for i > 0 {
		parent := (i - 1) / 4
		if h.keys[parent] >= k {
			break
		}
		h.keys[i], h.pay[i] = h.keys[parent], h.pay[parent]
		i = parent
	}
	h.keys[i] = k
	h.pay[i] = heapPay{nd: e.nd, mask: e.mask}
}

// replaceTop overwrites the root in place and restores order with a single
// sift-down — the fused pop+push the leaf revisit cycle uses, saving one
// full sift pair per requeue.
func (h *sheap) replaceTop(e sentry) {
	h.keys[0] = e.key
	h.pay[0] = heapPay{nd: e.nd, mask: e.mask}
	h.down(0)
}

// dropTop removes the root without returning it.
func (h *sheap) dropTop() {
	last := len(h.keys) - 1
	h.keys[0], h.pay[0] = h.keys[last], h.pay[last]
	h.pay[last] = heapPay{}
	h.keys = h.keys[:last]
	h.pay = h.pay[:last]
	if last > 1 {
		h.down(0)
	}
}

// down sifts entry i toward the leaves hole-style: the descending entry
// rides in registers while winning children shift up, and it is stored once
// at its final slot instead of being swapped at every level.
func (h *sheap) down(i int) {
	n := len(h.keys)
	keys := h.keys
	k := keys[i]
	p := h.pay[i]
	start := i
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		var largest int
		var lk float64
		if end := first + 4; end <= n {
			// Interior node: pairwise max tree over the four children. Each
			// step is a compare plus two conditional moves — no data-dependent
			// branch for the (essentially random) winner pattern.
			a, ka := first, keys[first]
			if kb := keys[first+1]; kb > ka {
				a, ka = first+1, kb
			}
			b, kb := first+2, keys[first+2]
			if kc := keys[first+3]; kc > kb {
				b, kb = first+3, kc
			}
			largest, lk = a, ka
			if kb > ka {
				largest, lk = b, kb
			}
		} else {
			largest, lk = first, keys[first]
			for c := first + 1; c < n; c++ {
				if keys[c] > lk {
					largest, lk = c, keys[c]
				}
			}
		}
		if k >= lk {
			break
		}
		keys[i] = lk
		h.pay[i] = h.pay[largest]
		i = largest
	}
	if i != start {
		keys[i] = k
		h.pay[i] = p
	}
}
