package topk

import (
	"sync"

	"repro/internal/geom"
)

// sentry is a best-first stream entry, one of:
//
//   - an internal subtree (nd != nil, !nd.leaf()) under an admissible
//     blended bound key;
//   - a leaf cursor (nd != nil, nd.leaf()): mask marks the points already
//     emitted or filtered out, and key bounds the best remaining point —
//     exact after the first scan, the stored node bound before it;
//   - a concrete point (nd == nil) with its exact key — used for the
//     separating-path leaf and for oversized duplicate-x leaves whose
//     occupancy exceeds the 64-bit mask.
//
// Leaf cursors are the reason the query path stays cheap: a leaf of 16
// points costs one heap entry and O(LeafCap) scans instead of 16 heap
// pushes.
type sentry struct {
	key  float64
	nd   *node
	pt   geom.Point
	mask uint64
}

// sheap is a 4-ary max-heap over sentries specialized for the query hot
// path: the comparison is a direct float compare (ascending streams negate
// their keys), and the wide fan-out halves sift depth for the pop-heavy
// best-first workload.
type sheap struct {
	a   []sentry
	box *[]sentry // pooled header box; kept so release never re-boxes
}

// sentryPool recycles heap backing arrays across queries: the four stream
// heaps of a merge grow to thousands of entries per query, and reusing their
// arrays removes the dominant per-query allocation. Entries are boxed slice
// headers owned by the sheap between acquire and release, so the round trip
// itself allocates nothing.
var sentryPool = sync.Pool{
	New: func() any {
		s := make([]sentry, 0, 256)
		return &s
	},
}

func (h *sheap) acquire(capacity int) {
	if h.box == nil {
		h.box = sentryPool.Get().(*[]sentry)
	}
	h.a = (*h.box)[:0]
	if cap(h.a) < capacity {
		h.a = make([]sentry, 0, capacity)
	}
}

func (h *sheap) release() {
	if h.box == nil {
		return
	}
	*h.box = h.a[:0] // donate the (possibly re-grown) array back
	sentryPool.Put(h.box)
	h.box, h.a = nil, nil
}

func (h *sheap) len() int { return len(h.a) }

// topKey returns the key of the maximum entry; callers guard with len.
func (h *sheap) topKey() float64 { return h.a[0].key }

// add appends an entry without restoring heap order; callers must finish the
// bulk load with init. Paired with init it turns the O(n log n) push-per-seed
// stream construction into an O(n) heapify.
func (h *sheap) add(e sentry) { h.a = append(h.a, e) }

// init establishes heap order over the whole array (Floyd heapify): sift
// down every internal node from the last parent to the root.
func (h *sheap) init() {
	n := len(h.a)
	for i := (n - 2) / 4; i >= 0; i-- {
		h.down(i)
	}
}

// pushAll bulk-inserts entries — the leaf-spill path for oversized
// duplicate-x leaves whose occupancy exceeds the 64-bit cursor mask. When
// the batch rivals the heap's size a whole-array heapify is cheaper than
// sifting each entry; small batches sift individually.
func (h *sheap) pushAll(es []sentry) {
	if len(es) == 0 {
		return
	}
	if len(es) >= len(h.a)/2 {
		h.a = append(h.a, es...)
		h.init()
		return
	}
	for _, e := range es {
		h.push(e)
	}
}

func (h *sheap) push(e sentry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if h.a[parent].key >= h.a[i].key {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *sheap) pop() sentry {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = sentry{}
	h.a = h.a[:last]
	if last > 1 {
		h.down(0)
	}
	return top
}

func (h *sheap) down(i int) {
	n := len(h.a)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		end := first + 4
		if end > n {
			end = n
		}
		largest := first
		for c := first + 1; c < end; c++ {
			if h.a[c].key > h.a[largest].key {
				largest = c
			}
		}
		if h.a[i].key >= h.a[largest].key {
			return
		}
		h.a[i], h.a[largest] = h.a[largest], h.a[i]
		i = largest
	}
}
