package topk

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/query"
)

// TestStreamFullEnumerationSorted: the stream must enumerate every point in
// non-increasing raw-score order, for both indexed and bracketed angles.
func TestStreamFullEnumerationSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(300) + 1
		pts := randomPoints(rng, n)
		idx, err := Build(pts, Config{Branching: 2 + rng.Intn(6), LeafCap: 1 + rng.Intn(3)})
		if err != nil {
			t.Fatal(err)
		}
		q := geom.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		var alpha, beta float64
		if trial%3 == 0 {
			a, _ := geom.AngleFromDegrees([]float64{0, 23, 45, 67, 90}[rng.Intn(5)])
			alpha, beta = a.Alpha, a.Beta
		} else {
			alpha, beta = rng.Float64()+1e-6, rng.Float64()+1e-6
		}
		st, err := idx.Stream(q, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		for {
			r, ok := st.Next()
			if !ok {
				break
			}
			got = append(got, r.Score)
		}
		want := scanTopK(pts, q, alpha, beta, n)
		if len(got) != len(want) {
			t.Fatalf("stream enumerated %d of %d points", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > eps*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("position %d: score %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestAlg4AgreesWithBlendedStream: the literal Algorithm 4 and the
// blended-bound stream must yield identical score sequences.
func TestAlg4AgreesWithBlendedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(400) + 1
		pts := randomPoints(rng, n)
		idx, err := Build(pts, Config{})
		if err != nil {
			t.Fatal(err)
		}
		q := geom.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
		s1, err := idx.Stream(q, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := idx.StreamAlg4(q, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			r1, ok1 := s1.Next()
			r2, ok2 := s2.Next()
			if ok1 != ok2 {
				t.Fatalf("trial %d position %d: blended ok=%v alg4 ok=%v", trial, i, ok1, ok2)
			}
			if !ok1 {
				break
			}
			if math.Abs(r1.Score-r2.Score) > eps*math.Max(1, math.Abs(r1.Score)) {
				t.Fatalf("trial %d position %d: blended %v, alg4 %v", trial, i, r1.Score, r2.Score)
			}
		}
	}
}

// TestBlendCoefficients: λ and μ reconstruct the query angle exactly and are
// non-negative across the bracket.
func TestBlendCoefficients(t *testing.T) {
	idx, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 2000; trial++ {
		alpha, beta := rng.Float64()+1e-9, rng.Float64()+1e-9
		qa := geom.MustAngle(alpha, beta)
		bl := idx.blendFor(qa)
		if bl.lambda < 0 || bl.mu < 0 {
			t.Fatalf("negative blend: %+v", bl)
		}
		al, au := idx.angles[bl.al], idx.angles[bl.au]
		gotCos := bl.lambda*al.Alpha + bl.mu*au.Alpha
		gotSin := bl.lambda*al.Beta + bl.mu*au.Beta
		if math.Abs(gotCos-qa.Alpha) > 1e-9 || math.Abs(gotSin-qa.Beta) > 1e-9 {
			t.Fatalf("blend does not reconstruct the angle: got (%v, %v), want (%v, %v)",
				gotCos, gotSin, qa.Alpha, qa.Beta)
		}
	}
}

// TestBlendExactMatch: indexed angles blend to themselves.
func TestBlendExactMatch(t *testing.T) {
	idx, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, deg := range []float64{0, 23, 45, 67, 90} {
		a, _ := geom.AngleFromDegrees(deg)
		bl := idx.blendFor(a)
		if bl.al != bl.au || bl.lambda != 1 || bl.mu != 0 {
			t.Fatalf("angle %v°: blend %+v, want exact match", deg, bl)
		}
	}
}

// TestStreamEmptyIndex: both stream variants terminate immediately.
func TestStreamEmptyIndex(t *testing.T) {
	idx, err := Build(nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() (*Stream, error){
		func() (*Stream, error) { return idx.Stream(geom.Point{}, 1, 1) },
		func() (*Stream, error) { return idx.StreamAlg4(geom.Point{}, 0.3, 0.7) },
	} {
		st, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := st.Next(); ok {
			t.Fatal("empty index emitted a point")
		}
	}
}

// TestQueryViaAlg4MatchesScan: end-to-end answers through the Algorithm 4
// path agree with scan.
func TestQueryViaAlg4MatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	pts := randomPoints(rng, 500)
	idx, err := Build(pts, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 30; qi++ {
		q := geom.Point{X: rng.NormFloat64() * 5, Y: rng.NormFloat64() * 5}
		alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
		k := rng.Intn(10) + 1
		st, err := idx.StreamAlg4(q, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		for len(got) < k {
			r, ok := st.Next()
			if !ok {
				break
			}
			got = append(got, r.Score)
		}
		want := scanTopK(pts, q, alpha, beta, k)
		if len(got) != len(want) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > eps*math.Max(1, math.Abs(want[i])) {
				t.Fatalf("result %d: %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// sortedScores is a helper mirroring the scan ground truth for streams.
func sortedScores(pts []geom.Point, q geom.Point, alpha, beta float64) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = alpha*math.Abs(p.Y-q.Y) - beta*math.Abs(p.X-q.X)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// TestNextBatchMatchesNext: the batched fetch (merge run drain + leaf-cursor
// run drain) must emit the same ID/score sequence as repeated Next calls,
// across random batch shapes, duplicate-heavy data, bracketed and indexed
// angles, and reused (pooled) streams via StreamInto.
func TestNextBatchMatchesNext(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	var reused Stream
	for trial := 0; trial < 60; trial++ {
		n := rng.Intn(400) + 1
		var pts []geom.Point
		if trial%2 == 0 {
			pts = randomPoints(rng, n)
		} else {
			// Quantized coordinates force duplicate keys and score ties.
			pts = make([]geom.Point, n)
			for i := range pts {
				pts[i] = geom.Point{ID: i, X: float64(rng.Intn(6)) / 4, Y: float64(rng.Intn(6)) / 4}
			}
		}
		idx, err := Build(pts, Config{Branching: 2 + rng.Intn(6), LeafCap: 1 + rng.Intn(64)})
		if err != nil {
			t.Fatal(err)
		}
		q := geom.Point{X: rng.NormFloat64(), Y: rng.NormFloat64()}
		alpha, beta := rng.Float64()+1e-6, rng.Float64()+1e-6
		if trial%3 == 0 {
			a, _ := geom.AngleFromDegrees([]float64{0, 23, 45, 67, 90}[rng.Intn(5)])
			alpha, beta = a.Alpha, a.Beta
		}

		seq, err := idx.Stream(q, alpha, beta)
		if err != nil {
			t.Fatal(err)
		}
		var wantID []int
		var wantScore []float64
		for {
			r, ok := seq.Next()
			if !ok {
				break
			}
			wantID = append(wantID, r.Point.ID)
			wantScore = append(wantScore, r.Score)
		}
		seq.Close()

		if err := idx.StreamInto(&reused, q, alpha, beta); err != nil {
			t.Fatal(err)
		}
		if peek, ok := reused.PeekScore(); len(wantScore) > 0 && (!ok || peek != wantScore[0]) {
			t.Fatalf("trial %d: PeekScore = %v,%v, want %v,true", trial, peek, ok, wantScore[0])
		}
		buf := make([]query.Emission, 1+rng.Intn(64))
		pos := 0
		for {
			if peek, ok := reused.PeekScore(); ok {
				if pos >= len(wantScore) || peek != wantScore[pos] {
					t.Fatalf("trial %d: PeekScore %v disagrees at position %d", trial, peek, pos)
				}
			} else if pos != len(wantScore) {
				t.Fatalf("trial %d: stream exhausted at %d of %d", trial, pos, len(wantScore))
			}
			m, bound := reused.NextBatch(buf[:1+rng.Intn(len(buf))])
			// The returned frontier bound must agree with a post-batch peek.
			if peek, ok := reused.PeekScore(); ok {
				if bound != peek {
					t.Fatalf("trial %d: NextBatch bound %v, PeekScore %v", trial, bound, peek)
				}
			} else if !math.IsInf(bound, -1) {
				t.Fatalf("trial %d: exhausted stream reported bound %v", trial, bound)
			}
			if m == 0 {
				break
			}
			for _, e := range buf[:m] {
				if pos >= len(wantID) {
					t.Fatalf("trial %d: batch over-emitted beyond %d points", trial, len(wantID))
				}
				if int(e.ID) != wantID[pos] || e.Contrib != wantScore[pos] {
					t.Fatalf("trial %d position %d: batch (%d, %v), sequential (%d, %v)",
						trial, pos, e.ID, e.Contrib, wantID[pos], wantScore[pos])
				}
				pos++
			}
		}
		if pos != len(wantID) {
			t.Fatalf("trial %d: batch emitted %d of %d points", trial, pos, len(wantID))
		}
		reused.Close()
	}
}
