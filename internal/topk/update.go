package topk

import (
	"sort"
	"unsafe"

	"repro/internal/geom"
)

// Insert adds a point in O(b·log_b n): it descends by x, appends to (or
// splits) the target leaf, and widens the per-angle bounds along the path.
// Repeated inserts can unbalance the tree; when the fraction of leaves on
// paths longer than the as-built height exceeds the configured threshold θ,
// the index rebuilds itself (§4's |U|/n policy).
func (idx *Index) Insert(p geom.Point) error {
	if err := checkPoint(p); err != nil {
		return err
	}
	idx.size++
	if idx.root == nil {
		idx.root = idx.newLeaf([]geom.Point{p}, 0)
		idx.builtDepth = 0
		return nil
	}
	// Descend, widening bounds as we go (pure additions can only widen).
	nd := idx.root
	var path []*node
	for !nd.leaf() {
		idx.mergePointBounds(nd, p)
		path = append(path, nd)
		pos := sort.SearchFloat64s(nd.seps, p.X)
		nd = nd.children[pos]
	}
	if nd.npts() < idx.cfg.LeafCap || allSameX(nd, p) {
		nd.lxs = append(nd.lxs, p.X)
		nd.lys = append(nd.lys, p.Y)
		nd.lids = append(nd.lids, int32(p.ID))
		idx.mergePointBounds(nd, p)
	} else {
		// Split the full leaf into a small subtree (the paper's "a new
		// non-leaf node replaces l"); equal-x runs stay in one leaf.
		sub := idx.buildNode(sortedWith(nd, p), nd.depth)
		idx.replaceChild(path, nd, sub)
		idx.markOverlong(sub)
	}
	idx.maybeRebuild()
	return nil
}

// allSameX reports whether every existing leaf point and the newcomer share
// one x — such leaves cannot be split and may exceed LeafCap.
func allSameX(nd *node, p geom.Point) bool {
	for _, x := range nd.lxs {
		if x != p.X {
			return false
		}
	}
	return true
}

func sortedWith(nd *node, p geom.Point) []geom.Point {
	out := make([]geom.Point, 0, nd.npts()+1)
	for i := range nd.lids {
		out = append(out, nd.point(i))
	}
	out = append(out, p)
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		if out[i].Y != out[j].Y {
			return out[i].Y < out[j].Y
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (idx *Index) replaceChild(path []*node, old, new *node) {
	if len(path) == 0 {
		idx.root = new
		return
	}
	parent := path[len(path)-1]
	for i, c := range parent.children {
		if c == old {
			parent.children[i] = new
			return
		}
	}
}

// markOverlong records leaves of the subtree that exceed the as-built depth.
func (idx *Index) markOverlong(nd *node) {
	if nd.leaf() {
		if nd.depth > idx.builtDepth {
			idx.overlong[nd] = true
		}
		return
	}
	for _, c := range nd.children {
		idx.markOverlong(c)
	}
}

func (idx *Index) maybeRebuild() {
	if idx.size == 0 || idx.cfg.RebuildThreshold >= 1 {
		return
	}
	if float64(len(idx.overlong))/float64(idx.size) > idx.cfg.RebuildThreshold {
		idx.rebuild(idx.Points())
	}
}

// Delete removes the point matching p's ID at p's coordinates, reporting
// whether it was found. It descends by x, removes the point from its leaf,
// drops empty leaves (collapsing single-child internals), and recomputes the
// bounds along the path in O(b·log_b n).
func (idx *Index) Delete(p geom.Point) bool {
	if idx.root == nil {
		return false
	}
	nd := idx.root
	var path []*node
	for !nd.leaf() {
		path = append(path, nd)
		pos := sort.SearchFloat64s(nd.seps, p.X)
		nd = nd.children[pos]
	}
	at := -1
	for i, id := range nd.lids {
		if int(id) == p.ID && nd.lxs[i] == p.X && nd.lys[i] == p.Y {
			at = i
			break
		}
	}
	if at < 0 {
		return false
	}
	nd.lxs = append(nd.lxs[:at], nd.lxs[at+1:]...)
	nd.lys = append(nd.lys[:at], nd.lys[at+1:]...)
	nd.lids = append(nd.lids[:at], nd.lids[at+1:]...)
	idx.size--
	if nd.npts() == 0 {
		delete(idx.overlong, nd)
		idx.removeEmpty(path, nd)
	} else {
		idx.refreshBounds(nd)
	}
	// Bounds along the path can only have shrunk: recompute bottom-up.
	for i := len(path) - 1; i >= 0; i-- {
		idx.refreshBounds(path[i])
	}
	return true
}

// removeEmpty splices an empty leaf out of its parent, collapsing
// single-child internal nodes.
func (idx *Index) removeEmpty(path []*node, empty *node) {
	if len(path) == 0 {
		idx.root = nil
		return
	}
	parent := path[len(path)-1]
	for i, c := range parent.children {
		if c != empty {
			continue
		}
		parent.children = append(parent.children[:i], parent.children[i+1:]...)
		if len(parent.seps) > 0 {
			s := i
			if s >= len(parent.seps) {
				s = len(parent.seps) - 1
			}
			parent.seps = append(parent.seps[:s], parent.seps[s+1:]...)
		}
		break
	}
	if len(parent.children) == 1 {
		// Collapse: the lone child replaces the parent. Stored depths
		// become stale, which only makes imbalance accounting
		// conservative.
		idx.replaceChild(path[:len(path)-1], parent, parent.children[0])
	}
}

// OverlongLeaves reports the size of the §4 imbalance set U; exposed for
// tests and the update experiments.
func (idx *Index) OverlongLeaves() int { return len(idx.overlong) }

// Bytes estimates the resident size of the index structure: nodes,
// separators, per-angle bounds, and leaf points. This is the quantity
// Figures 8h and 8i plot.
func (idx *Index) Bytes() int {
	var total int
	nodeSize := int(unsafe.Sizeof(node{}))
	var walk func(*node)
	walk = func(nd *node) {
		if nd == nil {
			return
		}
		// Leaf columns: 8 bytes each for x and y, 4 for the int32 id.
		total += nodeSize + len(nd.bounds)*8 + len(nd.seps)*8 + len(nd.children)*8 + nd.npts()*20
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(idx.root)
	return total
}

// Depth returns the maximum leaf depth (root = 0); exposed for tests.
func (idx *Index) Depth() int { return treeDepth(idx.root) }

// BuiltDepth returns the depth of the last full (re)build.
func (idx *Index) BuiltDepth() int { return idx.builtDepth }
