package rstar

import "repro/internal/pq"

// BestFirst is a branch-and-bound iterator over the tree: entries are
// expanded in decreasing order of an admissible upper bound computed on
// their MBRs. If upper(pt, pt) equals the exact score of a point, Next
// yields points in exact non-increasing score order — which is precisely the
// BRS query algorithm: take the first k.
type BestFirst struct {
	upper func(lo, hi []float64) float64
	h     *pq.Heap[bfEntry]
}

type bfEntry struct {
	bound float64
	e     entry
}

// BestFirst starts a traversal with the given bound function. upper must be
// admissible: for any rectangle, no point inside may score higher.
func (t *Tree) BestFirst(upper func(lo, hi []float64) float64) *BestFirst {
	b := &BestFirst{
		upper: upper,
		h:     pq.NewHeap(func(x, y bfEntry) bool { return x.bound > y.bound }),
	}
	if t.size > 0 {
		for _, e := range t.root.entries {
			b.h.Push(bfEntry{bound: upper(e.lo, e.hi), e: e})
		}
	}
	return b
}

// Next returns the next point in non-increasing score order, with its score
// as computed by the bound function on the degenerate rectangle.
func (b *BestFirst) Next() (pt []float64, id int32, score float64, ok bool) {
	for b.h.Len() > 0 {
		be := b.h.Pop()
		if be.e.child == nil {
			return be.e.lo, be.e.id, be.bound, true
		}
		for _, c := range be.e.child.entries {
			b.h.Push(bfEntry{bound: b.upper(c.lo, c.hi), e: c})
		}
	}
	return nil, 0, 0, false
}
