// Package rstar is a from-scratch in-memory R*-tree (Beckmann et al., with
// ChooseSubtree by overlap enlargement, margin-driven split-axis selection,
// and forced reinsertion), built as the substrate for the BRS baseline
// [Tao et al., Information Systems 2007] used in the paper's evaluation.
//
// The tree stores points (degenerate rectangles); the BRS engine runs
// branch-and-bound best-first search over the minimum bounding rectangles
// via BestFirst.
package rstar

import (
	"fmt"
	"math"
	"sort"
)

const defaultMax = 16

// Tree is an R*-tree over points of fixed dimensionality. Not safe for
// concurrent mutation; concurrent reads are fine.
type Tree struct {
	dims      int
	max, min  int
	root      *node
	size      int
	reinserts map[int]bool // levels that already reinserted during the current insert
}

type node struct {
	level   int // 0 = leaf
	entries []entry
}

// entry is either a point (child == nil, lo aliases hi) or a subtree with
// its MBR.
type entry struct {
	lo, hi []float64
	child  *node
	id     int32
}

// New creates a tree for points with dims coordinates and the given maximum
// node capacity (the paper tunes this per dimensionality: 28, 16, 12, 9 for
// d = 2, 4, 6, 8). maxEntries < 4 is raised to 4.
func New(dims, maxEntries int) *Tree {
	if dims < 1 {
		panic(fmt.Sprintf("rstar: dims %d < 1", dims))
	}
	if maxEntries < 4 {
		maxEntries = defaultMax
	}
	minEntries := maxEntries * 2 / 5 // the R* 40% fill guarantee
	if minEntries < 2 {
		minEntries = 2
	}
	return &Tree{
		dims: dims,
		max:  maxEntries,
		min:  minEntries,
		root: &node{level: 0},
	}
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Dims returns the point dimensionality.
func (t *Tree) Dims() int { return t.dims }

// Insert adds a point with an identifier. The point slice is retained (not
// copied); callers must not mutate it afterwards.
func (t *Tree) Insert(pt []float64, id int32) error {
	if len(pt) != t.dims {
		return fmt.Errorf("rstar: point has %d dims, tree has %d", len(pt), t.dims)
	}
	for _, c := range pt {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("rstar: non-finite coordinate %v", c)
		}
	}
	t.reinserts = make(map[int]bool)
	t.insert(entry{lo: pt, hi: pt, id: id}, 0)
	t.size++
	return nil
}

// insert places e at the target level, handling overflow via forced
// reinsertion or split.
func (t *Tree) insert(e entry, level int) {
	nd, path := t.chooseSubtree(e, level)
	nd.entries = append(nd.entries, e)
	t.adjustPath(path)
	if len(nd.entries) > t.max {
		t.overflow(nd, path)
	}
}

// chooseSubtree descends to the node at the target level best suited for e,
// returning it and the path of (parent node, entry index) pairs above it.
func (t *Tree) chooseSubtree(e entry, level int) (*node, []pathStep) {
	nd := t.root
	var path []pathStep
	for nd.level > level {
		var best int
		if nd.level == 1 {
			best = chooseByOverlap(nd.entries, e)
		} else {
			best = chooseByArea(nd.entries, e)
		}
		path = append(path, pathStep{nd, best})
		nd = nd.entries[best].child
	}
	return nd, path
}

type pathStep struct {
	nd *node
	ei int
}

// chooseByOverlap implements the R* leaf-level rule: minimum overlap
// enlargement, ties broken by area enlargement, then by area.
func chooseByOverlap(entries []entry, e entry) int {
	best, bestOverlap, bestAreaEnl, bestArea := -1, math.Inf(1), math.Inf(1), math.Inf(1)
	for i := range entries {
		enlarged := combineRect(entries[i], e)
		var overlap float64
		for j := range entries {
			if j == i {
				continue
			}
			overlap += intersectionArea(enlarged.lo, enlarged.hi, entries[j].lo, entries[j].hi) -
				intersectionArea(entries[i].lo, entries[i].hi, entries[j].lo, entries[j].hi)
		}
		area := rectArea(entries[i].lo, entries[i].hi)
		areaEnl := rectArea(enlarged.lo, enlarged.hi) - area
		if overlap < bestOverlap ||
			(overlap == bestOverlap && areaEnl < bestAreaEnl) ||
			(overlap == bestOverlap && areaEnl == bestAreaEnl && area < bestArea) {
			best, bestOverlap, bestAreaEnl, bestArea = i, overlap, areaEnl, area
		}
	}
	return best
}

// chooseByArea implements the internal-level rule: minimum area enlargement,
// ties broken by area.
func chooseByArea(entries []entry, e entry) int {
	best, bestEnl, bestArea := -1, math.Inf(1), math.Inf(1)
	for i := range entries {
		area := rectArea(entries[i].lo, entries[i].hi)
		enlarged := combineRect(entries[i], e)
		enl := rectArea(enlarged.lo, enlarged.hi) - area
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// overflow applies R* overflow treatment: forced reinsertion once per level
// per insertion, otherwise split — propagating splits upward.
func (t *Tree) overflow(nd *node, path []pathStep) {
	for {
		if len(path) > 0 && !t.reinserts[nd.level] {
			t.reinserts[nd.level] = true
			t.reinsert(nd, path)
			return
		}
		left, right := t.split(nd)
		if len(path) == 0 {
			t.root = &node{level: nd.level + 1, entries: []entry{
				mbrEntry(left), mbrEntry(right),
			}}
			return
		}
		parent := path[len(path)-1]
		parent.nd.entries[parent.ei] = mbrEntry(left)
		parent.nd.entries = append(parent.nd.entries, mbrEntry(right))
		t.adjustPath(path[:len(path)-1])
		if len(parent.nd.entries) <= t.max {
			return
		}
		nd, path = parent.nd, path[:len(path)-1]
	}
}

// reinsert removes the 30% of entries farthest from the node's MBR center
// and re-inserts them top-down (the R* "forced reinsert").
func (t *Tree) reinsert(nd *node, path []pathStep) {
	lo, hi := nodeMBR(nd)
	center := make([]float64, t.dims)
	for d := 0; d < t.dims; d++ {
		center[d] = (lo[d] + hi[d]) / 2
	}
	type distEntry struct {
		dist float64
		e    entry
	}
	des := make([]distEntry, len(nd.entries))
	for i, e := range nd.entries {
		var dist float64
		for d := 0; d < t.dims; d++ {
			c := (e.lo[d] + e.hi[d]) / 2
			dist += (c - center[d]) * (c - center[d])
		}
		des[i] = distEntry{dist, e}
	}
	sort.Slice(des, func(i, j int) bool { return des[i].dist > des[j].dist })
	p := len(des) * 3 / 10
	if p < 1 {
		p = 1
	}
	removed := make([]entry, p)
	for i := 0; i < p; i++ {
		removed[i] = des[i].e
	}
	nd.entries = nd.entries[:0]
	for _, de := range des[p:] {
		nd.entries = append(nd.entries, de.e)
	}
	t.adjustPath(path)
	for _, e := range removed {
		t.insert(e, nd.level)
	}
}

// split implements the R* topological split: choose the axis minimizing the
// total margin over all distributions, then the distribution minimizing
// overlap (ties: minimizing total area).
func (t *Tree) split(nd *node) (*node, *node) {
	entries := nd.entries
	bestAxis, bestMargin := -1, math.Inf(1)
	for d := 0; d < t.dims; d++ {
		sortByAxis(entries, d)
		if m := marginSum(entries, t.min, t.max); m < bestMargin {
			bestAxis, bestMargin = d, m
		}
	}
	sortByAxis(entries, bestAxis)
	bestSplit, bestOverlap, bestArea := -1, math.Inf(1), math.Inf(1)
	for k := t.min; k <= len(entries)-t.min; k++ {
		lo1, hi1 := groupMBR(entries[:k])
		lo2, hi2 := groupMBR(entries[k:])
		overlap := intersectionArea(lo1, hi1, lo2, hi2)
		area := rectArea(lo1, hi1) + rectArea(lo2, hi2)
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestSplit, bestOverlap, bestArea = k, overlap, area
		}
	}
	left := &node{level: nd.level, entries: append([]entry(nil), entries[:bestSplit]...)}
	right := &node{level: nd.level, entries: append([]entry(nil), entries[bestSplit:]...)}
	return left, right
}

func sortByAxis(entries []entry, d int) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].lo[d] != entries[j].lo[d] {
			return entries[i].lo[d] < entries[j].lo[d]
		}
		return entries[i].hi[d] < entries[j].hi[d]
	})
}

func marginSum(entries []entry, min, max int) float64 {
	var sum float64
	for k := min; k <= len(entries)-min; k++ {
		lo1, hi1 := groupMBR(entries[:k])
		lo2, hi2 := groupMBR(entries[k:])
		sum += rectMargin(lo1, hi1) + rectMargin(lo2, hi2)
	}
	return sum
}

// adjustPath tightens the MBRs stored along a root-to-node path, bottom-up.
func (t *Tree) adjustPath(path []pathStep) {
	for i := len(path) - 1; i >= 0; i-- {
		step := path[i]
		lo, hi := nodeMBR(step.nd.entries[step.ei].child)
		step.nd.entries[step.ei].lo = lo
		step.nd.entries[step.ei].hi = hi
	}
}

func mbrEntry(nd *node) entry {
	lo, hi := nodeMBR(nd)
	return entry{lo: lo, hi: hi, child: nd}
}

func nodeMBR(nd *node) ([]float64, []float64) {
	return groupMBR(nd.entries)
}

func groupMBR(entries []entry) ([]float64, []float64) {
	dims := len(entries[0].lo)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	copy(lo, entries[0].lo)
	copy(hi, entries[0].hi)
	for _, e := range entries[1:] {
		for d := 0; d < dims; d++ {
			lo[d] = math.Min(lo[d], e.lo[d])
			hi[d] = math.Max(hi[d], e.hi[d])
		}
	}
	return lo, hi
}

func combineRect(a, b entry) entry {
	dims := len(a.lo)
	lo := make([]float64, dims)
	hi := make([]float64, dims)
	for d := 0; d < dims; d++ {
		lo[d] = math.Min(a.lo[d], b.lo[d])
		hi[d] = math.Max(a.hi[d], b.hi[d])
	}
	return entry{lo: lo, hi: hi}
}

func rectArea(lo, hi []float64) float64 {
	area := 1.0
	for d := range lo {
		area *= hi[d] - lo[d]
	}
	return area
}

func rectMargin(lo, hi []float64) float64 {
	var m float64
	for d := range lo {
		m += hi[d] - lo[d]
	}
	return m
}

func intersectionArea(alo, ahi, blo, bhi []float64) float64 {
	area := 1.0
	for d := range alo {
		w := math.Min(ahi[d], bhi[d]) - math.Max(alo[d], blo[d])
		if w <= 0 {
			return 0
		}
		area *= w
	}
	return area
}

// Delete removes the point with the given coordinates and id, reporting
// whether it was found. Underflowing nodes are dissolved and their entries
// reinserted (the classic condense-tree).
func (t *Tree) Delete(pt []float64, id int32) bool {
	if len(pt) != t.dims {
		return false
	}
	leaf, path := t.findLeaf(t.root, nil, pt, id)
	if leaf == nil {
		return false
	}
	for i, e := range leaf.entries {
		if e.id == id && samePoint(e.lo, pt) {
			leaf.entries = append(leaf.entries[:i], leaf.entries[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf, path)
	return true
}

func (t *Tree) findLeaf(nd *node, path []pathStep, pt []float64, id int32) (*node, []pathStep) {
	if nd.level == 0 {
		for _, e := range nd.entries {
			if e.id == id && samePoint(e.lo, pt) {
				return nd, path
			}
		}
		return nil, nil
	}
	for i, e := range nd.entries {
		if containsPoint(e.lo, e.hi, pt) {
			if leaf, p := t.findLeaf(e.child, append(path, pathStep{nd, i}), pt, id); leaf != nil {
				return leaf, p
			}
		}
	}
	return nil, nil
}

func (t *Tree) condense(nd *node, path []pathStep) {
	var orphans []struct {
		e     entry
		level int
	}
	for len(path) > 0 {
		parent := path[len(path)-1]
		if len(nd.entries) < t.min {
			for _, e := range nd.entries {
				orphans = append(orphans, struct {
					e     entry
					level int
				}{e, nd.level})
			}
			parent.nd.entries = append(parent.nd.entries[:parent.ei], parent.nd.entries[parent.ei+1:]...)
			// Entry indices recorded deeper in the path are now stale,
			// but only the remaining ancestors are touched below.
			t.adjustValid(path[:len(path)-1])
		} else {
			t.adjustPath(path)
		}
		nd, path = parent.nd, path[:len(path)-1]
	}
	if t.root.level > 0 && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if t.root.level > 0 && len(t.root.entries) == 0 {
		t.root = &node{level: 0}
	}
	for _, o := range orphans {
		t.reinserts = make(map[int]bool)
		if o.level > t.root.level {
			// The tree shrank below the orphan's level; re-add its points.
			t.reinsertSubtree(o.e)
			continue
		}
		t.insert(o.e, o.level)
	}
}

// adjustValid re-tightens MBRs along a path whose recorded entry indices are
// still valid (ancestors of a spliced node).
func (t *Tree) adjustValid(path []pathStep) {
	t.adjustPath(path)
}

func (t *Tree) reinsertSubtree(e entry) {
	if e.child == nil {
		t.insert(e, 0)
		return
	}
	for _, c := range e.child.entries {
		t.reinsertSubtree(c)
	}
}

func samePoint(a, b []float64) bool {
	for d := range a {
		if a[d] != b[d] {
			return false
		}
	}
	return true
}

func containsPoint(lo, hi, pt []float64) bool {
	for d := range pt {
		if pt[d] < lo[d] || pt[d] > hi[d] {
			return false
		}
	}
	return true
}

// SearchRange calls fn for every stored point inside [lo, hi] (inclusive),
// stopping early if fn returns false.
func (t *Tree) SearchRange(lo, hi []float64, fn func(pt []float64, id int32) bool) {
	var walk func(nd *node) bool
	walk = func(nd *node) bool {
		for _, e := range nd.entries {
			if !rectsOverlap(e.lo, e.hi, lo, hi) {
				continue
			}
			if e.child == nil {
				if containsPoint(lo, hi, e.lo) && !fn(e.lo, e.id) {
					return false
				}
				continue
			}
			if !walk(e.child) {
				return false
			}
		}
		return true
	}
	if t.size > 0 {
		walk(t.root)
	}
}

func rectsOverlap(alo, ahi, blo, bhi []float64) bool {
	for d := range alo {
		if alo[d] > bhi[d] || ahi[d] < blo[d] {
			return false
		}
	}
	return true
}
