package rstar

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomData(rng *rand.Rand, n, dims int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dims)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func buildTree(t *testing.T, pts [][]float64, maxEntries int) *Tree {
	t.Helper()
	tr := New(len(pts[0]), maxEntries)
	for i, p := range pts {
		if err := tr.Insert(p, int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestInsertValidation(t *testing.T) {
	tr := New(2, 8)
	if err := tr.Insert([]float64{1}, 0); err == nil {
		t.Error("wrong dims: want error")
	}
	if err := tr.Insert([]float64{1, math.NaN()}, 0); err == nil {
		t.Error("NaN: want error")
	}
	if err := tr.Insert([]float64{1, math.Inf(1)}, 0); err == nil {
		t.Error("Inf: want error")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0, 8) did not panic")
		}
	}()
	New(0, 8)
}

// checkInvariants validates structural R*-tree invariants: entry counts,
// uniform leaf level, MBR containment and tightness.
func checkInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	var walk func(nd *node, isRoot bool) int
	walk = func(nd *node, isRoot bool) int {
		if len(nd.entries) > tr.max {
			t.Fatalf("node exceeds max entries: %d > %d", len(nd.entries), tr.max)
		}
		if !isRoot && len(nd.entries) < tr.min {
			t.Fatalf("non-root node underflows: %d < %d (level %d)", len(nd.entries), tr.min, nd.level)
		}
		count := 0
		for _, e := range nd.entries {
			if nd.level == 0 {
				if e.child != nil {
					t.Fatal("leaf entry with child")
				}
				count++
				continue
			}
			if e.child == nil {
				t.Fatal("internal entry without child")
			}
			if e.child.level != nd.level-1 {
				t.Fatalf("child level %d under node level %d", e.child.level, nd.level)
			}
			lo, hi := nodeMBR(e.child)
			for d := range lo {
				if e.lo[d] != lo[d] || e.hi[d] != hi[d] {
					t.Fatalf("stored MBR not tight: [%v,%v] vs computed [%v,%v]", e.lo, e.hi, lo, hi)
				}
			}
			count += walk(e.child, false)
		}
		return count
	}
	if tr.size == 0 {
		return
	}
	if got := walk(tr.root, true); got != tr.size {
		t.Fatalf("tree holds %d points, size says %d", got, tr.size)
	}
}

func TestInvariantsAfterInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, maxE := range []int{4, 9, 16, 28} {
		for _, dims := range []int{2, 4} {
			pts := randomData(rng, 800, dims)
			tr := buildTree(t, pts, maxE)
			checkInvariants(t, tr)
			if tr.Len() != 800 {
				t.Fatalf("Len = %d, want 800", tr.Len())
			}
		}
	}
}

func TestRangeSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	pts := randomData(rng, 1500, 3)
	tr := buildTree(t, pts, 12)
	for trial := 0; trial < 50; trial++ {
		lo := make([]float64, 3)
		hi := make([]float64, 3)
		for d := range lo {
			a, b := rng.Float64(), rng.Float64()
			lo[d], hi[d] = math.Min(a, b), math.Max(a, b)
		}
		want := map[int32]bool{}
		for i, p := range pts {
			if containsPoint(lo, hi, p) {
				want[int32(i)] = true
			}
		}
		got := map[int32]bool{}
		tr.SearchRange(lo, hi, func(_ []float64, id int32) bool {
			got[id] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: range returned %d, want %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: missing id %d", trial, id)
			}
		}
	}
}

func TestRangeSearchEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	pts := randomData(rng, 200, 2)
	tr := buildTree(t, pts, 8)
	count := 0
	tr.SearchRange([]float64{0, 0}, []float64{1, 1}, func(_ []float64, _ int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestDeleteAndInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	pts := randomData(rng, 600, 2)
	tr := buildTree(t, pts, 8)
	perm := rng.Perm(len(pts))
	for i, pi := range perm {
		if !tr.Delete(pts[pi], int32(pi)) {
			t.Fatalf("Delete point %d returned false", pi)
		}
		if tr.Len() != len(pts)-i-1 {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(pts)-i-1)
		}
		if i%100 == 0 {
			checkInvariants(t, tr)
		}
	}
	checkInvariants(t, tr)
	if tr.Delete(pts[0], 0) {
		t.Fatal("delete from empty tree returned true")
	}
}

func TestDeleteUnknown(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	pts := randomData(rng, 100, 2)
	tr := buildTree(t, pts, 8)
	if tr.Delete([]float64{-5, -5}, 3) {
		t.Fatal("deleted a point outside the tree")
	}
	if tr.Delete(pts[3], 9999) {
		t.Fatal("deleted with mismatched id")
	}
	if tr.Len() != 100 {
		t.Fatalf("Len changed to %d", tr.Len())
	}
}

func TestMixedChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	tr := New(2, 6)
	live := map[int32][]float64{}
	next := int32(0)
	for step := 0; step < 3000; step++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			var victim int32
			for id := range live {
				victim = id
				break
			}
			if !tr.Delete(live[victim], victim) {
				t.Fatalf("step %d: delete failed", step)
			}
			delete(live, victim)
		} else {
			p := []float64{rng.Float64(), rng.Float64()}
			if err := tr.Insert(p, next); err != nil {
				t.Fatal(err)
			}
			live[next] = p
			next++
		}
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	checkInvariants(t, tr)
	// Every live point findable.
	for id, p := range live {
		found := false
		tr.SearchRange(p, p, func(_ []float64, got int32) bool {
			if got == id {
				found = true
				return false
			}
			return true
		})
		if !found {
			t.Fatalf("live point %d not found after churn", id)
		}
	}
}

// TestBestFirstEmitsInScoreOrder uses a linear scoring function with its
// exact MBR upper bound and verifies global emission order and completeness.
func TestBestFirstEmitsInScoreOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	pts := randomData(rng, 1000, 2)
	tr := buildTree(t, pts, 10)
	// score = 2x − 3y; admissible bound: 2hi[0] − 3lo[1].
	upper := func(lo, hi []float64) float64 { return 2*hi[0] - 3*lo[1] }
	bf := tr.BestFirst(upper)
	var got []float64
	for {
		_, _, s, ok := bf.Next()
		if !ok {
			break
		}
		got = append(got, s)
	}
	if len(got) != len(pts) {
		t.Fatalf("best-first emitted %d points, want %d", len(got), len(pts))
	}
	want := make([]float64, len(pts))
	for i, p := range pts {
		want[i] = 2*p[0] - 3*p[1]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(want)))
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("emission %d: score %v, want %v", i, got[i], want[i])
		}
	}
}

func TestBestFirstEmptyTree(t *testing.T) {
	tr := New(2, 8)
	bf := tr.BestFirst(func(lo, hi []float64) float64 { return 0 })
	if _, _, _, ok := bf.Next(); ok {
		t.Fatal("empty tree emitted a point")
	}
}

func TestDuplicatePoints(t *testing.T) {
	tr := New(2, 6)
	p := []float64{0.5, 0.5}
	for i := int32(0); i < 50; i++ {
		if err := tr.Insert([]float64{0.5, 0.5}, i); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, tr)
	count := 0
	tr.SearchRange(p, p, func(_ []float64, _ int32) bool {
		count++
		return true
	})
	if count != 50 {
		t.Fatalf("found %d duplicates, want 50", count)
	}
	for i := int32(0); i < 50; i++ {
		if !tr.Delete([]float64{0.5, 0.5}, i) {
			t.Fatalf("failed to delete duplicate %d", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}
