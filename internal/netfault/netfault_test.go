package netfault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes everything back.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()
	return ln.Addr().String()
}

func dial(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPassthrough(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dial(t, p.Addr())
	msg := []byte("hello through the proxy")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dial(t, p.Addr())

	// Warm the connection, then cut the response direction only: the write
	// still lands (echoed into the void) and the read must time out without
	// the socket dying — a half-open partition, not a close.
	p.Partition(false, true)
	if _, err := c.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err == nil {
		t.Fatal("read succeeded across a server->client partition")
	}

	// Heal: the blackholed bytes were buffered at the gate, so they arrive.
	p.Partition(false, false)
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if string(buf) != "lost" {
		t.Fatalf("got %q after heal", buf)
	}
}

func TestResetMidResponse(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dial(t, p.Addr())

	// Arm: connection dies after ~8 more response bytes. Send 64 bytes; the
	// echo crosses the threshold and the read errors before completing.
	p.ResetAfterResponseBytes(8)
	payload := bytes.Repeat([]byte("x"), 64)
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err = io.ReadFull(c, make([]byte, 64))
	if err == nil {
		t.Fatal("full response survived an armed mid-response reset")
	}
}

func TestRefuseAndRecover(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	p.Refuse(true)
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		// Accept+RST: the dial may succeed, but the first use fails fast.
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, rerr := c.Read(make([]byte, 1)); rerr == nil {
			t.Fatal("refused connection served a read")
		}
		c.Close()
	}

	p.Refuse(false)
	c2 := dial(t, p.Addr())
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatalf("recovered proxy does not forward: %v", err)
	}
}

func TestKillActive(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dial(t, p.Addr())
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 2)); err != nil {
		t.Fatal(err)
	}

	p.KillActive()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("connection survived KillActive")
	}

	// The listener is still up: new connections work.
	c2 := dial(t, p.Addr())
	if _, err := c2.Write([]byte("yo")); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(c2, make([]byte, 2)); err != nil {
		t.Fatalf("post-kill connection broken: %v", err)
	}
}

func TestLatencyAndThrottle(t *testing.T) {
	p, err := New(echoServer(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	c := dial(t, p.Addr())

	p.Latency(30 * time.Millisecond)
	start := time.Now()
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	// Two gated chunks (c2s + s2c) → at least ~60ms.
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("latency fault not applied: round trip %v", d)
	}
	p.Latency(0)

	p.Throttle(1024) // 1 KiB/s
	start = time.Now()
	if _, err := c.Write(bytes.Repeat([]byte("z"), 256)); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	// 256 bytes each way at 1024 B/s ≥ ~0.5s total.
	if d := time.Since(start); d < 300*time.Millisecond {
		t.Fatalf("throttle not applied: 512 gated bytes in %v", d)
	}
}
