// Package netfault is a deterministic in-process TCP fault injector for
// tests. A Proxy listens on a loopback port and forwards byte streams to a
// real target address, but every chunk crosses a fault gate that the test
// scripts: asymmetric partitions (blackhole one or both directions without
// closing the socket), added latency, bandwidth throttling, connection
// refusal, mid-body TCP resets after a counted number of response bytes,
// and hard kills of every active connection.
//
// The point is reproducing the network's worst behaviors — not its average
// ones — inside a unit test: half-open connections that neither complete
// nor error, responses that die after the header has been read, SYNs that
// land on a dead port. Chaos suites point HTTP clients at Proxy.Addr()
// instead of the server and flip faults between requests.
//
// All faults apply to in-flight connections immediately (pumps re-check
// the gate every chunk, and a partitioned pump polls for healing), so a
// test can cut a connection's world in half mid-transfer.
package netfault

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// pollInterval is how often a blocked (partitioned) pump re-checks whether
// the partition has healed. Small enough that heals look instant at test
// timescales, large enough to not spin.
const pollInterval = 5 * time.Millisecond

// chunk is the forwarding granularity; faults (latency, throttle, reset
// counting) are applied per chunk.
const chunk = 4096

// Proxy forwards TCP streams to a target through a scriptable fault gate.
type Proxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	refuse    bool
	dropC2S   bool
	dropS2C   bool
	latency   time.Duration
	bytesPerS int
	// resetArmed/resetRemain implement "reset the connection after the
	// server has sent N more bytes": every server→client chunk draws the
	// counter down; crossing zero closes both halves with SO_LINGER(0),
	// which surfaces to the client as a mid-body RST.
	resetArmed  bool
	resetRemain int64
	closed      bool
	conns       map[net.Conn]struct{}
}

// New starts a proxy on an ephemeral loopback port forwarding to target
// (a host:port the test controls, e.g. an httptest listener address).
func New(target string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address; clients dial this instead of
// the target.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Refuse makes the proxy accept and immediately reset new connections
// (true) or forward them normally (false). Existing connections are not
// affected — this models a crashed process whose port answers RST while
// old sockets linger.
func (p *Proxy) Refuse(v bool) {
	p.mu.Lock()
	p.refuse = v
	p.mu.Unlock()
}

// Partition blackholes traffic per direction without closing sockets:
// c2s drops client→server bytes, s2c drops server→client bytes. Setting
// exactly one models an asymmetric partition — requests arrive but
// responses vanish, the nastiest failure for an at-most-once client.
// Healing (false, false) releases blocked pumps within pollInterval.
func (p *Proxy) Partition(c2s, s2c bool) {
	p.mu.Lock()
	p.dropC2S, p.dropS2C = c2s, s2c
	p.mu.Unlock()
}

// Latency adds a fixed delay before each forwarded chunk in both
// directions (0 disables).
func (p *Proxy) Latency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// Throttle caps forwarding bandwidth in bytes/second per direction
// (0 = unlimited). Models a congested or stalling link: bytes keep
// arriving, just slowly enough to trip per-try timeouts.
func (p *Proxy) Throttle(bytesPerSecond int) {
	p.mu.Lock()
	p.bytesPerS = bytesPerSecond
	p.mu.Unlock()
}

// ResetAfterResponseBytes arms a one-shot fault: after n more
// server→client bytes have been forwarded (across all connections), the
// connection carrying the crossing byte is torn down with a TCP RST. With
// n small enough to land mid-body, the client sees a response that starts
// and then dies — the canonical "did my write commit?" ambiguity.
func (p *Proxy) ResetAfterResponseBytes(n int64) {
	p.mu.Lock()
	p.resetArmed = true
	p.resetRemain = n
	p.mu.Unlock()
}

// KillActive hard-closes every in-flight connection (RST where the
// platform allows), leaving the listener up. Models a process crash with
// fast restart.
func (p *Proxy) KillActive() {
	p.mu.Lock()
	for c := range p.conns {
		reset(c)
		c.Close()
	}
	p.mu.Unlock()
}

// Close shuts the listener and all connections down.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	return p.ln.Close()
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			c.Close()
			return
		}
		if p.refuse {
			p.mu.Unlock()
			reset(c)
			c.Close()
			continue
		}
		p.mu.Unlock()
		go p.serve(c)
	}
}

func (p *Proxy) serve(client net.Conn) {
	server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		reset(client)
		client.Close()
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		client.Close()
		server.Close()
		return
	}
	p.conns[client] = struct{}{}
	p.conns[server] = struct{}{}
	p.mu.Unlock()

	done := make(chan struct{}, 2)
	go func() { p.pump(server, client, true); done <- struct{}{} }()  // client → server
	go func() { p.pump(client, server, false); done <- struct{}{} }() // server → client
	<-done
	// One direction died; drop both so the peer sees EOF/RST instead of a
	// half-open socket lingering past the test.
	client.Close()
	server.Close()
	<-done
	p.mu.Lock()
	delete(p.conns, client)
	delete(p.conns, server)
	p.mu.Unlock()
}

// pump forwards src→dst one chunk at a time through the fault gate.
// c2s marks the client→server direction; the server→client direction is
// where reset counting applies.
func (p *Proxy) pump(dst, src net.Conn, c2s bool) {
	buf := make([]byte, chunk)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if !p.gate(dst, src, int64(n), c2s) {
				return
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// gate applies the current faults to a chunk about to be forwarded.
// Returns false when the connection was torn down by a fault.
func (p *Proxy) gate(dst, src net.Conn, n int64, c2s bool) bool {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return false
		}
		blocked := (c2s && p.dropC2S) || (!c2s && p.dropS2C)
		lat := p.latency
		bw := p.bytesPerS
		doReset := false
		if !c2s && p.resetArmed {
			p.resetRemain -= n
			if p.resetRemain < 0 {
				p.resetArmed = false
				doReset = true
			}
		}
		p.mu.Unlock()

		if doReset {
			reset(dst)
			reset(src)
			dst.Close()
			src.Close()
			return false
		}
		if blocked {
			time.Sleep(pollInterval)
			continue // re-check: partition may have healed or escalated
		}
		if lat > 0 {
			time.Sleep(lat)
		}
		if bw > 0 {
			time.Sleep(time.Duration(float64(n) / float64(bw) * float64(time.Second)))
		}
		return true
	}
}

// reset arranges for Close to send RST instead of FIN where possible.
func reset(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
}

// ErrProxyClosed is returned by helpers when the proxy is gone.
var ErrProxyClosed = errors.New("netfault: proxy closed")

// Drain reads and discards until EOF/error; test helper for keeping HTTP
// keep-alive semantics honest when a body is intentionally abandoned.
func Drain(r io.Reader) { io.Copy(io.Discard, r) }
