//go:build sdsimd

#include "textflag.h"

// func blendKeysAsm(dst, xs, ys []float64, cx, cy float64)
//
// dst[i] = cy*ys[i] + cx*xs[i], packed two doubles at a time (SSE2), four
// packed ops per loop body (8 elements). Each multiply and each add rounds
// once, exactly like the scalar expression, so the result is bit-identical
// to blendKeysGeneric. No FMA: fusing would change the rounding.
TEXT ·blendKeysAsm(SB), NOSPLIT, $0-88
	MOVQ  dst_base+0(FP), DI
	MOVQ  dst_len+8(FP), CX
	MOVQ  xs_base+24(FP), SI
	MOVQ  ys_base+48(FP), DX
	MOVSD cx+72(FP), X0
	MOVSD cy+80(FP), X1
	// Broadcast the coefficients into both packed lanes.
	MOVLHPS X0, X0
	MOVLHPS X1, X1

	XORQ AX, AX          // element index
	MOVQ CX, BX
	ANDQ $-8, BX         // BX = len &^ 7: the 8-wide prefix

loop8:
	CMPQ AX, BX
	JGE  tail
	MOVUPD (SI)(AX*8), X2    // xs[i:i+2]
	MOVUPD 16(SI)(AX*8), X4  // xs[i+2:i+4]
	MOVUPD 32(SI)(AX*8), X6  // xs[i+4:i+6]
	MOVUPD 48(SI)(AX*8), X8  // xs[i+6:i+8]
	MOVUPD (DX)(AX*8), X3    // ys[i:i+2]
	MOVUPD 16(DX)(AX*8), X5
	MOVUPD 32(DX)(AX*8), X7
	MOVUPD 48(DX)(AX*8), X9
	MULPD  X0, X2            // cx*xs
	MULPD  X0, X4
	MULPD  X0, X6
	MULPD  X0, X8
	MULPD  X1, X3            // cy*ys
	MULPD  X1, X5
	MULPD  X1, X7
	MULPD  X1, X9
	ADDPD  X2, X3            // cy*ys + cx*xs
	ADDPD  X4, X5
	ADDPD  X6, X7
	ADDPD  X8, X9
	MOVUPD X3, (DI)(AX*8)
	MOVUPD X5, 16(DI)(AX*8)
	MOVUPD X7, 32(DI)(AX*8)
	MOVUPD X9, 48(DI)(AX*8)
	ADDQ   $8, AX
	JMP    loop8

tail:
	CMPQ AX, CX
	JGE  done
	MOVSD (SI)(AX*8), X2
	MOVSD (DX)(AX*8), X3
	MULSD X0, X2
	MULSD X1, X3
	ADDSD X2, X3
	MOVSD X3, (DI)(AX*8)
	INCQ  AX
	JMP   tail

done:
	RET
