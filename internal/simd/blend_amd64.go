//go:build sdsimd && amd64

package simd

// asmActive: the sdsimd build selects the packed-SSE2 kernels. SSE2 is part
// of the amd64 baseline, so no CPU feature detection is needed, and packed
// MULPD/ADDPD round each operation exactly like their scalar forms — the
// kernel is bit-identical to the generic one (pinned by TestKernelBitIdentity
// under both build tags). FMA is deliberately not used: fusing the multiply
// and add would change the rounding.
const asmActive = true

// Accelerated reports whether the assembly kernels are active in this build.
func Accelerated() bool { return true }

// blendKeysAsm computes dst[i] = cy*ys[i] + cx*xs[i] for len(dst) elements.
// Implemented in blend_amd64.s. xs and ys must be at least len(dst) long;
// the caller (BlendKeys) guarantees len(dst) >= 8.
//
//go:noescape
func blendKeysAsm(dst, xs, ys []float64, cx, cy float64)
