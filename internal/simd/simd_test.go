package simd

import (
	"math"
	"math/rand"
	"testing"
)

// scalar reference implementations — the "obvious loop" every kernel must
// match bit for bit.

func blendKeysScalar(dst, xs, ys []float64, cx, cy float64) {
	for i := range dst {
		dst[i] = cy*ys[i] + cx*xs[i]
	}
}

func scoreRowsScalar(dst []float64, flat []float64, dims int, q, signed []float64) {
	for j := range dst {
		var s float64
		row := flat[j*dims : (j+1)*dims]
		for d := 0; d < dims; d++ {
			s += signed[d] * math.Abs(row[d]-q[d])
		}
		dst[j] = s
	}
}

func gatherScoreScalar(dst []float64, cols []float64, rows int, idx []int32, q, signed []float64) {
	for j := range dst {
		var s float64
		for d := range q {
			s += signed[d] * math.Abs(cols[d*rows+int(idx[j])]-q[d])
		}
		dst[j] = s
	}
}

func gatherScore32Scalar(dst []float64, cols []float32, rows int, idx []int32, q, signed []float64) {
	for j := range dst {
		var s float64
		for d := range q {
			s += signed[d] * math.Abs(float64(cols[d*rows+int(idx[j])])-q[d])
		}
		dst[j] = s
	}
}

func randVals(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(16) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = math.Copysign(0, -1)
		default:
			out[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
	}
	return out
}

func requireBitEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: [%d] = %x (%v), want %x (%v)",
				name, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

// TestKernelBitIdentity pins every kernel — whichever implementation the
// build selected — to byte-equality with the scalar reference, across sizes
// that exercise the 8-wide body, the tail, and the empty case.
func TestKernelBitIdentity(t *testing.T) {
	t.Logf("accelerated kernels: %v", Accelerated())
	rng := rand.New(rand.NewSource(9))
	sizes := []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65, 200}
	for _, n := range sizes {
		xs := randVals(rng, n)
		ys := randVals(rng, n)
		cx := rng.Float64() - 0.5
		cy := rng.Float64() - 0.5
		got := make([]float64, n)
		want := make([]float64, n)
		BlendKeys(got, xs, ys, cx, cy)
		blendKeysScalar(want, xs, ys, cx, cy)
		requireBitEqual(t, "BlendKeys", got, want)
	}
	for _, n := range sizes {
		for _, dims := range []int{0, 1, 2, 6, 13} {
			flat := randVals(rng, n*dims)
			q := randVals(rng, dims)
			signed := randVals(rng, dims)
			got := make([]float64, n)
			want := make([]float64, n)
			ScoreRows(got, flat, dims, q, signed)
			scoreRowsScalar(want, flat, dims, q, signed)
			requireBitEqual(t, "ScoreRows", got, want)
		}
	}
	for _, n := range sizes {
		for _, dims := range []int{1, 2, 6, 13} {
			rows := 97
			cols := randVals(rng, rows*dims)
			q := randVals(rng, dims)
			signed := randVals(rng, dims)
			idx := make([]int32, n)
			for i := range idx {
				idx[i] = int32(rng.Intn(rows))
			}
			got := make([]float64, n)
			want := make([]float64, n)
			GatherScore(got, cols, rows, idx, q, signed)
			gatherScoreScalar(want, cols, rows, idx, q, signed)
			requireBitEqual(t, "GatherScore", got, want)

			cols32 := make([]float32, len(cols))
			for i, v := range cols {
				cols32[i] = float32(v)
			}
			GatherScore32(got, cols32, rows, idx, q, signed)
			gatherScore32Scalar(want, cols32, rows, idx, q, signed)
			requireBitEqual(t, "GatherScore32", got, want)
		}
	}
}

// TestBlendKeysGenericMatchesDispatch pins the generic path against the
// dispatched one directly: in an sdsimd build this is the asm-vs-Go
// equivalence proof, in a default build it is a (trivially true) identity.
func TestBlendKeysGenericMatchesDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		xs := randVals(rng, n)
		ys := randVals(rng, n)
		cx := math.Copysign(rng.Float64(), float64(rng.Intn(2)*2-1))
		cy := math.Copysign(rng.Float64(), float64(rng.Intn(2)*2-1))
		got := make([]float64, n)
		want := make([]float64, n)
		BlendKeys(got, xs, ys, cx, cy)
		blendKeysGeneric(want, xs, ys, cx, cy)
		requireBitEqual(t, "BlendKeys vs generic", got, want)
	}
}

// BenchmarkScoreKernel compares the scalar reference loop, the unrolled
// pure-Go kernel, and (in sdsimd builds) the assembly kernel on the
// leaf-scan blend. The dims=6 ScoreRows case mirrors the memtable sweep.
func BenchmarkScoreKernel(b *testing.B) {
	const n = 4096
	rng := rand.New(rand.NewSource(7))
	xs := randVals(rng, n)
	ys := randVals(rng, n)
	dst := make([]float64, n)

	b.Run("blend-scalar", func(b *testing.B) {
		b.SetBytes(n * 16)
		for i := 0; i < b.N; i++ {
			blendKeysScalar(dst, xs, ys, 0.25, 0.75)
		}
	})
	b.Run("blend-unrolled", func(b *testing.B) {
		b.SetBytes(n * 16)
		for i := 0; i < b.N; i++ {
			blendKeysGeneric(dst, xs, ys, 0.25, 0.75)
		}
	})
	if Accelerated() {
		b.Run("blend-asm", func(b *testing.B) {
			b.SetBytes(n * 16)
			for i := 0; i < b.N; i++ {
				blendKeysAsm(dst, xs, ys, 0.25, 0.75)
			}
		})
	}

	const dims = 6
	flat := randVals(rng, n*dims)
	q := randVals(rng, dims)
	signed := randVals(rng, dims)
	b.Run("rows-scalar", func(b *testing.B) {
		b.SetBytes(n * dims * 8)
		for i := 0; i < b.N; i++ {
			scoreRowsScalar(dst, flat, dims, q, signed)
		}
	})
	b.Run("rows-unrolled", func(b *testing.B) {
		b.SetBytes(n * dims * 8)
		for i := 0; i < b.N; i++ {
			ScoreRows(dst, flat, dims, q, signed)
		}
	})
}
