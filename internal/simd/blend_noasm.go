//go:build !sdsimd || !amd64

package simd

// asmActive reports whether the assembly kernels are compiled in. Without
// the sdsimd build tag (or off amd64) every kernel runs the pure-Go path.
const asmActive = false

// Accelerated reports whether the assembly kernels are active in this build.
func Accelerated() bool { return false }

// blendKeysAsm is never called when asmActive is false; the stub keeps the
// dispatch in BlendKeys tag-free.
func blendKeysAsm(dst, xs, ys []float64, cx, cy float64) {
	panic("simd: assembly kernel called without sdsimd build tag")
}
