// Package simd holds the engine's innermost loops — the contribution and
// score kernels every query funnels through — written so the hot work runs
// at hardware speed without giving up the bit-exactness the differential
// harness enforces.
//
// Three design rules govern every kernel here:
//
//  1. Unroll across independent outputs, never within one output. Each
//     output value (a projection key, a row score) is computed with exactly
//     the operation order of the obvious scalar loop, so results are
//     bit-identical to the reference implementation; the 8-wide unrolling
//     only interleaves *independent* computations, which changes no
//     rounding. This is what lets the optional assembly kernels use packed
//     SSE arithmetic (one rounding per multiply and add, same as scalar)
//     while fused-multiply-add — a different rounding — stays forbidden.
//
//  2. Hoist every per-element branch to the call site. The callers
//     pre-resolve projection kinds, weight signs, and column widths into
//     plain coefficients, so the loops are branch-free and the compiler
//     keeps them in registers.
//
//  3. Eliminate bounds checks by reslicing to a length the compiler can
//     reason about ([:8:8] blocks over a len&^7 prefix), not by unsafe.
//
// The assembly variants live behind the `sdsimd` build tag (amd64 only) and
// fall back to the pure-Go kernels elsewhere; TestKernelBitIdentity pins
// byte-equality between the two on every build.
package simd

import "math"

// BlendKeys fills dst[i] = cy*ys[i] + cx*xs[i] — the blended projection
// intercept of every point of a tree leaf at the query angle, the kernel of
// the topk leaf-cursor scan. The caller folds the projection kind into the
// coefficient signs (cy = ±α, cx = ±β), so one kernel serves all four
// streams. xs and ys must be at least len(dst) long.
func BlendKeys(dst, xs, ys []float64, cx, cy float64) {
	if asmActive && len(dst) >= 8 {
		blendKeysAsm(dst, xs, ys, cx, cy)
		return
	}
	blendKeysGeneric(dst, xs, ys, cx, cy)
}

func blendKeysGeneric(dst, xs, ys []float64, cx, cy float64) {
	xs = xs[:len(dst)]
	ys = ys[:len(dst)]
	for len(dst) >= 8 {
		d := dst[:8:8]
		x := xs[:8:8]
		y := ys[:8:8]
		d[0] = cy*y[0] + cx*x[0]
		d[1] = cy*y[1] + cx*x[1]
		d[2] = cy*y[2] + cx*x[2]
		d[3] = cy*y[3] + cx*x[3]
		d[4] = cy*y[4] + cx*x[4]
		d[5] = cy*y[5] + cx*x[5]
		d[6] = cy*y[6] + cx*x[6]
		d[7] = cy*y[7] + cx*x[7]
		dst, xs, ys = dst[8:], xs[8:], ys[8:]
	}
	for i := range dst {
		dst[i] = cy*ys[i] + cx*xs[i]
	}
}

// ScoreRows fills dst[j] with the SD-score of the j-th row of a row-major
// block: dst[j] = Σ_d signed[d]·|flat[j·dims+d] − q[d]|, accumulated in
// ascending dimension order — exactly the scalar per-row loop, so scores
// are bit-identical to it. It is the memtable sweep kernel: eight rows
// advance together, each with its own accumulator chain, so the eight
// |Δ|-multiply-adds per dimension are independent and pipeline.
// flat must hold at least len(dst)·dims values; q and signed at least dims.
func ScoreRows(dst []float64, flat []float64, dims int, q, signed []float64) {
	if dims == 0 {
		for j := range dst {
			dst[j] = 0
		}
		return
	}
	q = q[:dims]
	signed = signed[:dims]
	j := 0
	for ; j+8 <= len(dst); j += 8 {
		base := j * dims
		r0 := flat[base+0*dims : base+1*dims : base+1*dims]
		r1 := flat[base+1*dims : base+2*dims : base+2*dims]
		r2 := flat[base+2*dims : base+3*dims : base+3*dims]
		r3 := flat[base+3*dims : base+4*dims : base+4*dims]
		r4 := flat[base+4*dims : base+5*dims : base+5*dims]
		r5 := flat[base+5*dims : base+6*dims : base+6*dims]
		r6 := flat[base+6*dims : base+7*dims : base+7*dims]
		r7 := flat[base+7*dims : base+8*dims : base+8*dims]
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for d := 0; d < dims; d++ {
			qd, wd := q[d], signed[d]
			s0 += wd * math.Abs(r0[d]-qd)
			s1 += wd * math.Abs(r1[d]-qd)
			s2 += wd * math.Abs(r2[d]-qd)
			s3 += wd * math.Abs(r3[d]-qd)
			s4 += wd * math.Abs(r4[d]-qd)
			s5 += wd * math.Abs(r5[d]-qd)
			s6 += wd * math.Abs(r6[d]-qd)
			s7 += wd * math.Abs(r7[d]-qd)
		}
		out := dst[j : j+8 : j+8]
		out[0], out[1], out[2], out[3] = s0, s1, s2, s3
		out[4], out[5], out[6], out[7] = s4, s5, s6, s7
	}
	for ; j < len(dst); j++ {
		row := flat[j*dims : (j+1)*dims : (j+1)*dims]
		var s float64
		for d := 0; d < dims; d++ {
			s += signed[d] * math.Abs(row[d]-q[d])
		}
		dst[j] = s
	}
}

// GatherScore fills dst[j] with the SD-score of candidate row idx[j] read
// from dimension-major float64 columns (column d is cols[d·rows:(d+1)·rows]).
// The accumulation order per candidate matches the scalar row loop, so
// scores are bit-identical to scoring the same row from a row-major layout.
// This is the sealed-segment batch score kernel: the per-dimension inner
// loops issue independent gathers the memory system overlaps, where the old
// row-at-a-time loop serialized one short dependent chain per candidate.
func GatherScore(dst []float64, cols []float64, rows int, idx []int32, q, signed []float64) {
	dims := len(q)
	idx = idx[:len(dst)]
	for j := range dst {
		dst[j] = 0
	}
	for d := 0; d < dims; d++ {
		col := cols[d*rows : (d+1)*rows : (d+1)*rows]
		qd, wd := q[d], signed[d]
		j := 0
		for ; j+8 <= len(dst); j += 8 {
			i := idx[j : j+8 : j+8]
			o := dst[j : j+8 : j+8]
			o[0] += wd * math.Abs(col[i[0]]-qd)
			o[1] += wd * math.Abs(col[i[1]]-qd)
			o[2] += wd * math.Abs(col[i[2]]-qd)
			o[3] += wd * math.Abs(col[i[3]]-qd)
			o[4] += wd * math.Abs(col[i[4]]-qd)
			o[5] += wd * math.Abs(col[i[5]]-qd)
			o[6] += wd * math.Abs(col[i[6]]-qd)
			o[7] += wd * math.Abs(col[i[7]]-qd)
		}
		for ; j < len(dst); j++ {
			dst[j] += wd * math.Abs(col[idx[j]]-qd)
		}
	}
}

// GatherScore32 is GatherScore over float32 columns: values are widened to
// float64 before any arithmetic, so the only precision loss is the storage
// quantization itself — the error the caller's float-pad machinery absorbs.
// Reading half the bytes per candidate is the point: the hot sweep runs at
// half the memory bandwidth of the float64 columns.
func GatherScore32(dst []float64, cols []float32, rows int, idx []int32, q, signed []float64) {
	dims := len(q)
	idx = idx[:len(dst)]
	for j := range dst {
		dst[j] = 0
	}
	for d := 0; d < dims; d++ {
		col := cols[d*rows : (d+1)*rows : (d+1)*rows]
		qd, wd := q[d], signed[d]
		j := 0
		for ; j+8 <= len(dst); j += 8 {
			i := idx[j : j+8 : j+8]
			o := dst[j : j+8 : j+8]
			o[0] += wd * math.Abs(float64(col[i[0]])-qd)
			o[1] += wd * math.Abs(float64(col[i[1]])-qd)
			o[2] += wd * math.Abs(float64(col[i[2]])-qd)
			o[3] += wd * math.Abs(float64(col[i[3]])-qd)
			o[4] += wd * math.Abs(float64(col[i[4]])-qd)
			o[5] += wd * math.Abs(float64(col[i[5]])-qd)
			o[6] += wd * math.Abs(float64(col[i[6]])-qd)
			o[7] += wd * math.Abs(float64(col[i[7]])-qd)
		}
		for ; j < len(dst); j++ {
			dst[j] += wd * math.Abs(float64(col[idx[j]])-qd)
		}
	}
}
