// Package dataset generates the synthetic workloads used in the paper's
// evaluation (§6.1): uniform, correlated, and anti-correlated point sets of
// up to ten million points, plus a ChEMBL-like molecular dataset for the
// qualitative analysis (Table 1). All generators are deterministic for a
// given seed.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
)

// Distribution names a synthetic point distribution.
type Distribution int

const (
	// Uniform draws every coordinate independently from U[0, 1).
	Uniform Distribution = iota
	// Correlated concentrates points around the main diagonal: dimensions
	// move together, as in the skyline-benchmark generator.
	Correlated
	// AntiCorrelated concentrates points around the hyperplane Σx ≈ d/2:
	// a point good in one dimension tends to be poor in the others.
	AntiCorrelated
)

// String returns the conventional name of the distribution.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anti-correlated"
	}
	return fmt.Sprintf("Distribution(%d)", int(d))
}

// Generate produces n points of dimensionality dims from the distribution,
// with all coordinates in [0, 1]. It panics on non-positive n or dims (these
// are programmer errors in benchmark setup, not runtime conditions).
func Generate(dist Distribution, n, dims int, seed int64) [][]float64 {
	if n <= 0 || dims <= 0 {
		panic(fmt.Sprintf("dataset: invalid shape n=%d dims=%d", n, dims))
	}
	rng := rand.New(rand.NewSource(seed))
	pts := makeMatrix(n, dims)
	switch dist {
	case Uniform:
		for i := range pts {
			for j := range pts[i] {
				pts[i][j] = rng.Float64()
			}
		}
	case Correlated:
		// A shared base value per point with per-dimension jitter yields
		// positive pairwise correlation (ρ ≈ 0.7, the usual strength of
		// the skyline-benchmark generator).
		for i := range pts {
			base := rng.Float64()
			for j := range pts[i] {
				pts[i][j] = clamp01(base + rng.NormFloat64()*0.18)
			}
		}
	case AntiCorrelated:
		// Points near the plane Σx = d/2: a tight base close to 0.5 with
		// zero-sum offsets of large spread gives negative pairwise
		// correlation for every dimension pair.
		for i := range pts {
			base := 0.5 + rng.NormFloat64()*0.04
			offsets := pts[i] // fill in place, then recenter
			var sum float64
			for j := range offsets {
				offsets[j] = rng.Float64() - 0.5
				sum += offsets[j]
			}
			mean := sum / float64(dims)
			for j := range offsets {
				offsets[j] = clamp01(base + 0.7*(offsets[j]-mean))
			}
		}
	default:
		panic(fmt.Sprintf("dataset: unknown distribution %d", int(dist)))
	}
	return pts
}

// Queries draws n query points uniformly from [0, 1]^dims, the paper's
// workload ("100 randomly selected points from a uniform distribution").
func Queries(n, dims int, seed int64) [][]float64 {
	return Generate(Uniform, n, dims, seed)
}

func makeMatrix(n, dims int) [][]float64 {
	backing := make([]float64, n*dims)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i], backing = backing[:dims:dims], backing[dims:]
	}
	return pts
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Correlation returns the sample Pearson correlation between two coordinate
// columns of a point set. Used by tests and the pairing strategies.
func Correlation(pts [][]float64, a, b int) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var meanA, meanB float64
	for _, p := range pts {
		meanA += p[a]
		meanB += p[b]
	}
	meanA /= n
	meanB /= n
	var cov, varA, varB float64
	for _, p := range pts {
		da, db := p[a]-meanA, p[b]-meanB
		cov += da * db
		varA += da * da
		varB += db * db
	}
	if varA == 0 || varB == 0 {
		return 0
	}
	return cov / math.Sqrt(varA*varB)
}

// Variance returns the sample variance of one coordinate column.
func Variance(pts [][]float64, col int) float64 {
	n := float64(len(pts))
	if n < 2 {
		return 0
	}
	var mean float64
	for _, p := range pts {
		mean += p[col]
	}
	mean /= n
	var v float64
	for _, p := range pts {
		d := p[col] - mean
		v += d * d
	}
	return v / (n - 1)
}
