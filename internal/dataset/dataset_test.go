package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestGenerateShapesAndRange(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Correlated, AntiCorrelated} {
		pts := Generate(dist, 500, 4, 1)
		if len(pts) != 500 {
			t.Fatalf("%v: got %d points, want 500", dist, len(pts))
		}
		for i, p := range pts {
			if len(p) != 4 {
				t.Fatalf("%v: point %d has %d dims, want 4", dist, i, len(p))
			}
			for j, c := range p {
				if c < 0 || c > 1 || math.IsNaN(c) {
					t.Fatalf("%v: point %d dim %d = %v outside [0,1]", dist, i, j, c)
				}
			}
		}
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	a := Generate(Correlated, 100, 3, 42)
	b := Generate(Correlated, 100, 3, 42)
	c := Generate(Correlated, 100, 3, 43)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed diverged at [%d][%d]", i, j)
			}
		}
	}
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGeneratePanicsOnBadShape(t *testing.T) {
	for _, bad := range [][2]int{{0, 2}, {2, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Generate(n=%d, d=%d) did not panic", bad[0], bad[1])
				}
			}()
			Generate(Uniform, bad[0], bad[1], 1)
		}()
	}
}

func TestDistributionCorrelationSigns(t *testing.T) {
	n := 20000
	corr := Generate(Correlated, n, 4, 7)
	anti := Generate(AntiCorrelated, n, 4, 7)
	unif := Generate(Uniform, n, 4, 7)
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if c := Correlation(corr, a, b); c < 0.5 {
				t.Errorf("correlated dims (%d,%d): correlation %v, want > 0.5", a, b, c)
			}
			if c := Correlation(anti, a, b); c > -0.1 {
				t.Errorf("anti-correlated dims (%d,%d): correlation %v, want < -0.1", a, b, c)
			}
			if c := Correlation(unif, a, b); math.Abs(c) > 0.05 {
				t.Errorf("uniform dims (%d,%d): correlation %v, want ≈ 0", a, b, c)
			}
		}
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Correlated.String() != "correlated" ||
		AntiCorrelated.String() != "anti-correlated" {
		t.Fatal("Distribution.String misnames a distribution")
	}
	if !strings.Contains(Distribution(99).String(), "99") {
		t.Fatal("unknown distribution should include its numeric value")
	}
}

func TestVariance(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}, {4}, {5}}
	if v := Variance(pts, 0); !closeTo(v, 2.5, 1e-12) {
		t.Fatalf("Variance = %v, want 2.5", v)
	}
	if v := Variance(pts[:1], 0); v != 0 {
		t.Fatalf("Variance of single point = %v, want 0", v)
	}
}

func TestCorrelationDegenerate(t *testing.T) {
	pts := [][]float64{{1, 2}, {1, 3}, {1, 4}}
	if c := Correlation(pts, 0, 1); c != 0 {
		t.Fatalf("constant column correlation = %v, want 0", c)
	}
	if c := Correlation(pts[:1], 0, 1); c != 0 {
		t.Fatalf("single point correlation = %v, want 0", c)
	}
}

func closeTo(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestChEMBLStatisticalSkeleton(t *testing.T) {
	mols := ChEMBL(60000, 3)
	s := Stats(mols)
	// Overall averages should land near the paper's Table 1 first row:
	// drug-likeness 8.94, MW 422.6, PSA 112.14. Allow generous slack — the
	// reproduction needs the same regime, not the same decimals.
	if s.DrugLikeness < 8 || s.DrugLikeness > 10 {
		t.Errorf("overall drug-likeness %v, want ≈ 8.9", s.DrugLikeness)
	}
	if s.MW < 380 || s.MW > 480 {
		t.Errorf("overall MW %v, want ≈ 422", s.MW)
	}
	if s.PSA < 90 || s.PSA > 135 {
		t.Errorf("overall PSA %v, want ≈ 112", s.PSA)
	}
	var nExc int
	for _, m := range mols {
		if m.DrugLikeness > MaxDrugLikeness || m.MW < MinMW {
			t.Fatalf("molecule outside reference ranges: %+v", m)
		}
		if m.Exception {
			nExc++
			if m.MW < 500 {
				t.Fatalf("exception molecule not overweight: %+v", m)
			}
			if m.PSA > 100 {
				t.Fatalf("exception molecule with high PSA: %+v", m)
			}
		}
	}
	frac := float64(nExc) / float64(len(mols))
	if frac < 0.005 || frac > 0.03 {
		t.Errorf("exception fraction %v, want ≈ 0.015", frac)
	}
	// MW↔PSA positive correlation in the bulk population.
	var bulk [][]float64
	for _, m := range mols {
		if !m.Exception {
			bulk = append(bulk, []float64{m.MW, m.PSA})
		}
	}
	if c := Correlation(bulk, 0, 1); c < 0.5 {
		t.Errorf("bulk MW↔PSA correlation %v, want strongly positive", c)
	}
}

func TestMoleculeVectorsNormalized(t *testing.T) {
	mols := ChEMBL(1000, 4)
	vecs := MoleculeVectors(mols)
	if len(vecs) != len(mols) {
		t.Fatalf("got %d vectors, want %d", len(vecs), len(mols))
	}
	for i, v := range vecs {
		if len(v) != 2 || v[0] < 0 || v[0] > 1 || v[1] < 0 || v[1] > 1 {
			t.Fatalf("vector %d = %v not normalized to [0,1]^2", i, v)
		}
		if !closeTo(v[0]*MaxDrugLikeness, mols[i].DrugLikeness, 1e-9) {
			t.Fatalf("vector %d drug-likeness mismatch", i)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Generate(Uniform, 50, 3, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts, []string{"a", "b", "c"}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip: %d rows, want %d", len(got), len(pts))
	}
	for i := range pts {
		for j := range pts[i] {
			if got[i][j] != pts[i][j] {
				t.Fatalf("round trip mismatch at [%d][%d]: %v != %v", i, j, got[i][j], pts[i][j])
			}
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3,nope\n"), false); err == nil {
		t.Error("non-numeric cell: want error")
	}
	// encoding/csv itself rejects ragged rows; confirm the error surfaces.
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n"), false); err == nil {
		t.Error("ragged rows: want error")
	}
	got, err := ReadCSV(strings.NewReader(""), false)
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: got %v, %v; want empty, nil", got, err)
	}
}

func TestQueriesShape(t *testing.T) {
	qs := Queries(100, 6, 5)
	if len(qs) != 100 || len(qs[0]) != 6 {
		t.Fatalf("Queries shape = %dx%d, want 100x6", len(qs), len(qs[0]))
	}
}
