package dataset

import "math/rand"

// The paper's qualitative analysis (Table 1) runs the SD-query against
// ChEMBL v2: 428,913 bioactive molecules with calculated properties. That
// dataset is not redistributable here, so we simulate a molecular library
// with the same statistical skeleton:
//
//   - ranges matched to the paper's reference points: maximum drug-likeness
//     14.22, minimum molecular weight 12.01, overall averages near
//     drug-likeness 8.94, MW 422.6, PSA 112.14;
//   - the well-documented positive correlation between molecular weight and
//     polar surface area in the bulk population;
//   - a drug-likeness score that degrades beyond Lipinski's MW 500 cutoff
//     for ordinary molecules; and
//   - a small "exception" sub-population (macrocycle-like compounds) that is
//     overweight (MW ≫ 500) yet drug-like, with markedly low PSA — the
//     hidden pattern Table 1 reports (top-k PSA far below the global mean).
//
// The substitution preserves the behavior under test: an SD-query asking for
// similar drug-likeness but distant molecular weight must surface the
// exception population, which a pure similarity or distance query cannot.

// ChEMBLSize is the number of molecules in the paper's copy of ChEMBL v2.
const ChEMBLSize = 428913

// Molecule is one simulated compound.
type Molecule struct {
	DrugLikeness float64 // unitless score, max 14.22 as in the paper
	MW           float64 // molecular weight (Da), min 12.01
	PSA          float64 // polar surface area (Å²)
	LogP         float64 // octanol/water partition coefficient
	Exception    bool    // member of the planted overweight drug-like group
}

// MaxDrugLikeness and MinMW are the dataset reference points quoted in §6.3.
const (
	MaxDrugLikeness = 14.22
	MinMW           = 12.01
)

// ChEMBL simulates n molecules. Use n = ChEMBLSize for the paper-scale
// dataset. The generator is deterministic for a given seed.
func ChEMBL(n int, seed int64) []Molecule {
	rng := rand.New(rand.NewSource(seed))
	mols := make([]Molecule, n)
	for i := range mols {
		if rng.Float64() < 0.015 {
			mols[i] = exceptionMolecule(rng)
		} else {
			mols[i] = bulkMolecule(rng)
		}
	}
	return mols
}

func bulkMolecule(rng *rand.Rand) Molecule {
	mw := clampRange(415+rng.NormFloat64()*145, MinMW, 1500)
	// PSA tracks MW in the bulk population (more atoms, more polar surface).
	psa := clampRange(0.27*mw+rng.NormFloat64()*22, 0, 400)
	// Drug-likeness is high for mid-weight compounds and degrades past the
	// Lipinski cutoff of MW 500.
	dl := 9.3 + rng.NormFloat64()*1.25
	if mw > 500 {
		dl -= 2.8 * (mw - 500) / 1000
	}
	dl = clampRange(dl, 0, MaxDrugLikeness)
	logp := clampRange(2.5+rng.NormFloat64()*1.5, -4, 10)
	return Molecule{DrugLikeness: dl, MW: mw, PSA: psa, LogP: logp}
}

func exceptionMolecule(rng *rand.Rand) Molecule {
	mw := clampRange(700+rng.Float64()*500, 600, 1500)
	psa := clampRange(20+rng.NormFloat64()*15, 3, 80)
	dl := clampRange(10.6+rng.NormFloat64()*1.1, 8, MaxDrugLikeness)
	logp := clampRange(4+rng.NormFloat64()*1.2, -4, 10)
	return Molecule{DrugLikeness: dl, MW: mw, PSA: psa, LogP: logp, Exception: true}
}

func clampRange(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MoleculeStats holds column averages over a set of molecules, the quantities
// Table 1 reports.
type MoleculeStats struct {
	DrugLikeness float64
	MW           float64
	PSA          float64
}

// Stats averages the three Table-1 columns over the given molecules.
func Stats(mols []Molecule) MoleculeStats {
	var s MoleculeStats
	if len(mols) == 0 {
		return s
	}
	for _, m := range mols {
		s.DrugLikeness += m.DrugLikeness
		s.MW += m.MW
		s.PSA += m.PSA
	}
	n := float64(len(mols))
	s.DrugLikeness /= n
	s.MW /= n
	s.PSA /= n
	return s
}

// MoleculeVectors projects molecules onto the two query dimensions used in
// §6.3 — [drug-likeness, MW] — normalized to comparable scales so equal
// weights behave sensibly (drug-likeness / 14.22, MW / 1500).
func MoleculeVectors(mols []Molecule) [][]float64 {
	pts := makeMatrix(len(mols), 2)
	for i, m := range mols {
		pts[i][0] = m.DrugLikeness / MaxDrugLikeness
		pts[i][1] = m.MW / 1500
	}
	return pts
}
