package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV writes points as CSV with an optional header row. Coordinates are
// formatted with full float64 round-trip precision.
func WriteCSV(w io.Writer, pts [][]float64, header []string) error {
	cw := csv.NewWriter(w)
	if len(header) > 0 {
		if err := cw.Write(header); err != nil {
			return fmt.Errorf("dataset: write header: %w", err)
		}
	}
	record := make([]string, 0, 8)
	for i, p := range pts {
		record = record[:0]
		for _, c := range p {
			record = append(record, strconv.FormatFloat(c, 'g', -1, 64))
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads points from CSV. If hasHeader is true the first row is
// skipped. All rows must have the same number of columns, all numeric.
func ReadCSV(r io.Reader, hasHeader bool) ([][]float64, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	var pts [][]float64
	row := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read csv: %w", err)
		}
		row++
		if hasHeader && row == 1 {
			continue
		}
		p := make([]float64, len(rec))
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d column %d: %w", row, j+1, err)
			}
			p[j] = v
		}
		if len(pts) > 0 && len(p) != len(pts[0]) {
			return nil, fmt.Errorf("dataset: row %d has %d columns, want %d", row, len(p), len(pts[0]))
		}
		pts = append(pts, p)
	}
	return pts, nil
}
