package pq

// MergeSorted merges already-sorted lists into a single sorted prefix of at
// most limit elements — the bounded k-way heap merge the sharded execution
// layer uses to combine per-shard top-k streams into the exact global top-k.
// Every list must be sorted best-first under less (less(a, b) reports that a
// ranks strictly before b); the output is sorted the same way. A negative
// limit merges everything.
//
// The merge keeps one cursor per non-empty list in a heap keyed by the
// cursor's head element, so the cost is O(out · log(len(lists))) and the
// lists themselves are never copied or mutated. Elements that compare equal
// under less are emitted in ascending list order, which keeps the merge
// deterministic when the caller's less is not a total order.
func MergeSorted[T any](lists [][]T, less func(a, b T) bool, limit int) []T {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if limit < 0 || limit > total {
		limit = total
	}
	if limit == 0 {
		return nil
	}
	type cursor struct {
		list int
		pos  int
	}
	h := NewHeapCap(func(a, b cursor) bool {
		x, y := lists[a.list][a.pos], lists[b.list][b.pos]
		if less(x, y) {
			return true
		}
		if less(y, x) {
			return false
		}
		return a.list < b.list
	}, len(lists))
	for i, l := range lists {
		if len(l) > 0 {
			h.Push(cursor{list: i})
		}
	}
	out := make([]T, 0, limit)
	for len(out) < limit && h.Len() > 0 {
		c := h.Peek()
		out = append(out, lists[c.list][c.pos])
		if c.pos+1 < len(lists[c.list]) {
			h.ReplaceTop(cursor{list: c.list, pos: c.pos + 1})
		} else {
			h.Pop()
		}
	}
	return out
}
