package pq

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func intLess(a, b int) bool { return a < b }

func TestMergeSortedBasics(t *testing.T) {
	cases := []struct {
		name  string
		lists [][]int
		limit int
		want  []int
	}{
		{"empty", nil, 5, nil},
		{"empty lists", [][]int{{}, {}}, 5, nil},
		{"single", [][]int{{1, 3, 5}}, 5, []int{1, 3, 5}},
		{"two", [][]int{{1, 4}, {2, 3}}, -1, []int{1, 2, 3, 4}},
		{"limit truncates", [][]int{{1, 4}, {2, 3}}, 3, []int{1, 2, 3}},
		{"limit zero", [][]int{{1}}, 0, nil},
		{"limit beyond total", [][]int{{2}, {1}}, 10, []int{1, 2}},
		{"uneven", [][]int{{9}, {1, 2, 3, 4}, {}, {5}}, 4, []int{1, 2, 3, 4}},
	}
	for _, c := range cases {
		got := MergeSorted(c.lists, intLess, c.limit)
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s: MergeSorted = %v, want %v", c.name, got, c.want)
		}
	}
}

// Equal elements must come out in ascending list order so the merge is
// deterministic even when less is only a partial order.
func TestMergeSortedTiesByListOrder(t *testing.T) {
	type el struct{ key, list int }
	lists := [][]el{
		{{1, 0}, {2, 0}},
		{{1, 1}, {1, 1}},
		{{0, 2}, {2, 2}},
	}
	got := MergeSorted(lists, func(a, b el) bool { return a.key < b.key }, -1)
	want := []el{{0, 2}, {1, 0}, {1, 1}, {1, 1}, {2, 0}, {2, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("MergeSorted = %v, want %v", got, want)
	}
}

func TestMergeSortedRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nLists := rng.Intn(6)
		lists := make([][]int, nLists)
		var all []int
		for i := range lists {
			n := rng.Intn(8)
			lists[i] = make([]int, n)
			for j := range lists[i] {
				lists[i][j] = rng.Intn(10)
			}
			sort.Ints(lists[i])
			all = append(all, lists[i]...)
		}
		sort.Ints(all)
		limit := rng.Intn(len(all) + 2)
		got := MergeSorted(lists, intLess, limit)
		want := all
		if limit < len(all) {
			want = all[:limit]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d elements, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: MergeSorted = %v, want %v", trial, got, want)
			}
		}
	}
}

// With an ID tie order, the collected set must be independent of insertion
// order: feed the same multiset in many shuffles and demand one answer.
func TestTopKOrderedInsertionOrderIndependent(t *testing.T) {
	type item struct {
		id    int
		score float64
	}
	items := []item{
		{0, 1}, {1, 1}, {2, 1}, {3, 0.5}, {4, 0.5}, {5, 2}, {6, 1}, {7, 0.5},
	}
	var want []Scored[int]
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]item(nil), items...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		tk := NewTopKOrdered[int](4, func(a, b int) bool { return a < b })
		for _, it := range shuffled {
			tk.Add(it.id, it.score)
		}
		got := tk.Results()
		if want == nil {
			want = got
			// Smallest IDs must win ties: 5 (score 2), then 0, 1, 2 (score 1).
			wantIDs := []int{5, 0, 1, 2}
			for i, w := range wantIDs {
				if got[i].Item != w {
					t.Fatalf("Results ids = %v, want %v", got, wantIDs)
				}
			}
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: Results = %v, want %v (insertion-order dependent)", trial, got, want)
		}
	}
}

func TestTopKOrderedThresholdTie(t *testing.T) {
	tk := NewTopKOrdered[int](2, func(a, b int) bool { return a < b })
	tk.Add(3, 1)
	tk.Add(4, 1)
	if !tk.Add(1, 1) {
		t.Fatal("equal-score smaller id must displace the weakest kept item")
	}
	if tk.Add(9, 1) {
		t.Fatal("equal-score larger id must be rejected")
	}
	res := tk.Results()
	if res[0].Item != 1 || res[1].Item != 3 {
		t.Fatalf("Results = %v, want ids [1 3]", res)
	}
}
