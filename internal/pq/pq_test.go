package pq

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHeapOrdersAscending(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	in := []int{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for _, v := range in {
		h.Push(v)
	}
	if h.Len() != len(in) {
		t.Fatalf("Len = %d, want %d", h.Len(), len(in))
	}
	for want := 0; want < len(in); want++ {
		if got := h.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestHeapPeekDoesNotRemove(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	h.Push(2)
	h.Push(1)
	if h.Peek() != 1 || h.Len() != 2 {
		t.Fatalf("Peek=%d Len=%d, want 1 and 2", h.Peek(), h.Len())
	}
}

func TestHeapReplaceTop(t *testing.T) {
	h := NewHeap(func(a, b int) bool { return a < b })
	for _, v := range []int{4, 2, 6} {
		h.Push(v)
	}
	h.ReplaceTop(5) // replaces 2
	got := []int{h.Pop(), h.Pop(), h.Pop()}
	want := []int{4, 5, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after ReplaceTop, pops = %v, want %v", got, want)
		}
	}
}

func TestHeapReset(t *testing.T) {
	h := NewHeapCap(func(a, b int) bool { return a < b }, 4)
	h.Push(1)
	h.Push(2)
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", h.Len())
	}
	h.Push(3)
	if h.Peek() != 3 {
		t.Fatalf("Peek after Reset+Push = %d, want 3", h.Peek())
	}
}

func TestHeapRandomAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		vals := make([]float64, n)
		h := NewHeap(func(a, b float64) bool { return a < b })
		for i := range vals {
			vals[i] = rng.NormFloat64()
			h.Push(vals[i])
		}
		sort.Float64s(vals)
		for i, want := range vals {
			if got := h.Pop(); got != want {
				t.Fatalf("trial %d pop %d = %v, want %v", trial, i, got, want)
			}
		}
	}
}

func TestHeapInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHeap(func(a, b int) bool { return a < b })
	var mirror []int
	for op := 0; op < 2000; op++ {
		if h.Len() == 0 || rng.Intn(2) == 0 {
			v := rng.Intn(1000)
			h.Push(v)
			mirror = append(mirror, v)
			continue
		}
		sort.Ints(mirror)
		want := mirror[0]
		mirror = mirror[1:]
		if got := h.Pop(); got != want {
			t.Fatalf("op %d: Pop = %d, want %d", op, got, want)
		}
	}
}

func TestTopKPanicsOnNonPositiveK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) did not panic")
		}
	}()
	NewTopK[int](0)
}

func TestTopKKeepsBestK(t *testing.T) {
	tk := NewTopK[string](3)
	tk.Add("a", 1)
	tk.Add("b", 5)
	tk.Add("c", 3)
	tk.Add("d", 4)
	tk.Add("e", 0)
	res := tk.Results()
	if len(res) != 3 {
		t.Fatalf("len(Results) = %d, want 3", len(res))
	}
	wantItems := []string{"b", "d", "c"}
	wantScores := []float64{5, 4, 3}
	for i := range res {
		if res[i].Item != wantItems[i] || res[i].Score != wantScores[i] {
			t.Fatalf("Results[%d] = %+v, want {%s %v}", i, res[i], wantItems[i], wantScores[i])
		}
	}
}

func TestTopKTieBreaksByInsertionOrder(t *testing.T) {
	tk := NewTopK[int](2)
	tk.Add(1, 7)
	tk.Add(2, 7)
	tk.Add(3, 7) // same score, later: must NOT displace 1 or 2
	res := tk.Results()
	if res[0].Item != 1 || res[1].Item != 2 {
		t.Fatalf("tie handling wrong: got %+v", res)
	}
}

func TestTopKThreshold(t *testing.T) {
	tk := NewTopK[int](2)
	if got := tk.Threshold(); !math.IsInf(got, -1) {
		t.Fatalf("empty Threshold = %v, want -Inf", got)
	}
	tk.Add(1, 10)
	if got := tk.Threshold(); !math.IsInf(got, -1) {
		t.Fatalf("underfull Threshold = %v, want -Inf", got)
	}
	tk.Add(2, 4)
	if got := tk.Threshold(); got != 4 {
		t.Fatalf("Threshold = %v, want 4", got)
	}
	if !tk.Full() {
		t.Fatal("Full = false, want true")
	}
}

func TestTopKMatchesSortQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60}
	property := func(scores []float64, kSeed uint8) bool {
		if len(scores) == 0 {
			return true
		}
		for i, s := range scores {
			if math.IsNaN(s) {
				scores[i] = 0
			}
		}
		k := int(kSeed)%len(scores) + 1
		tk := NewTopK[int](k)
		for i, s := range scores {
			tk.Add(i, s)
		}
		want := make([]float64, len(scores))
		copy(want, scores)
		sort.Sort(sort.Reverse(sort.Float64Slice(want)))
		res := tk.Results()
		if len(res) != k {
			return false
		}
		for i := 0; i < k; i++ {
			if res[i].Score != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHeapPushPop(b *testing.B) {
	h := NewHeapCap(func(a, b float64) bool { return a < b }, 1024)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Push(vals[i%1024])
		if h.Len() > 512 {
			h.Pop()
		}
	}
}

func BenchmarkTopKAdd(b *testing.B) {
	tk := NewTopK[int](100)
	rng := rand.New(rand.NewSource(4))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Add(i, vals[i%4096])
	}
}
