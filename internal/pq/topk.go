package pq

import (
	"math"
	"sort"
)

// Scored pairs an arbitrary payload with the score that ranks it.
type Scored[T any] struct {
	Item  T
	Score float64
}

// TopK collects the k highest-scoring items seen so far. Ties on score are
// broken by insertion order (earlier wins), which keeps engine outputs
// deterministic for fixed inputs; NewTopKOrdered substitutes an explicit
// tie order that also makes the output independent of insertion order. The
// zero value is not usable; construct with NewTopK or NewTopKOrdered.
type TopK[T any] struct {
	k        int
	seq      int
	outranks func(a, b T) bool // nil: fall back to insertion order
	heap     *Heap[entry[T]]
}

type entry[T any] struct {
	item  T
	score float64
	seq   int
}

// NewTopK returns a collector for the k best items. k must be positive.
func NewTopK[T any](k int) *TopK[T] {
	return NewTopKOrdered[T](k, nil)
}

// NewTopKOrdered returns a collector whose score ties are broken by
// outranks: among equal scores, an item for which outranks(new, kept) holds
// displaces the kept one, and Results orders outranking items first. When
// outranks is a strict total order over the items offered (engines pass
// "smaller dataset ID wins"), the collected set and its order are fully
// determined by the input multiset, independent of insertion order — the
// property the cross-engine differential harness relies on. A nil outranks
// falls back to insertion order (NewTopK's behavior).
func NewTopKOrdered[T any](k int, outranks func(a, b T) bool) *TopK[T] {
	if k <= 0 {
		panic("pq: TopK requires k > 0")
	}
	t := &TopK[T]{k: k, outranks: outranks}
	// Min-heap on strength: the weakest kept item is on top. Among equal
	// scores the outranked item (or, without a tie order, the later
	// arrival) is the weaker one.
	less := func(a, b entry[T]) bool {
		if a.score != b.score {
			return a.score < b.score
		}
		if outranks != nil {
			if outranks(b.item, a.item) {
				return true
			}
			if outranks(a.item, b.item) {
				return false
			}
		}
		return a.seq > b.seq
	}
	t.heap = NewHeapCap(less, k)
	return t
}

// Reset empties the collector and re-arms it for k items, keeping the
// allocated heap capacity and the tie order. It lets query hot paths pool
// one collector per query context instead of allocating one per query.
func (t *TopK[T]) Reset(k int) {
	if k <= 0 {
		panic("pq: TopK requires k > 0")
	}
	t.k = k
	t.seq = 0
	t.heap.Reset()
}

// K returns the collector's capacity.
func (t *TopK[T]) K() int { return t.k }

// Len returns the number of items currently kept.
func (t *TopK[T]) Len() int { return t.heap.Len() }

// Add offers an item; it is kept only if it ranks in the current top k.
// It reports whether the item was kept.
func (t *TopK[T]) Add(item T, score float64) bool {
	e := entry[T]{item: item, score: score, seq: t.seq}
	t.seq++
	if t.heap.Len() < t.k {
		t.heap.Push(e)
		return true
	}
	weakest := t.heap.Peek()
	if weakest.score > e.score {
		return false
	}
	if weakest.score == e.score {
		if t.outranks == nil || !t.outranks(e.item, weakest.item) {
			return false
		}
	}
	t.heap.ReplaceTop(e)
	return true
}

// Threshold returns the score of the weakest kept item, or negative infinity
// while fewer than k items are kept. Once the collection is full an unseen
// item must strictly beat this value to enter — or, under NewTopKOrdered,
// tie it and outrank the weakest kept item.
func (t *TopK[T]) Threshold() float64 {
	if t.heap.Len() < t.k {
		return math.Inf(-1)
	}
	return t.heap.Peek().score
}

// Full reports whether k items have been collected.
func (t *TopK[T]) Full() bool { return t.heap.Len() == t.k }

// DrainInto empties the collector into dst (appended), ordered best-first
// exactly as Results orders them, and leaves the collector empty. Unlike
// Results it performs no sort and — given sufficient capacity in dst — no
// allocation: the heap's weakest-first pop order is the exact reverse of the
// result order, because the heap's less function is the strict total order
// Results sorts by (score, then outranks, then sequence).
func (t *TopK[T]) DrainInto(dst []Scored[T]) []Scored[T] {
	n := t.heap.Len()
	base := len(dst)
	var zero Scored[T]
	for i := 0; i < n; i++ {
		dst = append(dst, zero)
	}
	for i := n - 1; i >= 0; i-- {
		e := t.heap.Pop()
		dst[base+i] = Scored[T]{Item: e.item, Score: e.score}
	}
	return dst
}

// Results returns the kept items ordered best-first. The collector remains
// usable afterwards.
func (t *TopK[T]) Results() []Scored[T] {
	out := make([]Scored[T], 0, t.heap.Len())
	entries := make([]entry[T], len(t.heap.items))
	copy(entries, t.heap.items)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].score != entries[j].score {
			return entries[i].score > entries[j].score
		}
		if t.outranks != nil {
			if t.outranks(entries[i].item, entries[j].item) {
				return true
			}
			if t.outranks(entries[j].item, entries[i].item) {
				return false
			}
		}
		return entries[i].seq < entries[j].seq
	})
	for _, e := range entries {
		out = append(out, Scored[T]{Item: e.item, Score: e.score})
	}
	return out
}
