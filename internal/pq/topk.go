package pq

import (
	"math"
	"sort"
)

// Scored pairs an arbitrary payload with the score that ranks it.
type Scored[T any] struct {
	Item  T
	Score float64
}

// TopK collects the k highest-scoring items seen so far. Ties on score are
// broken by insertion order (earlier wins), which keeps engine outputs
// deterministic for fixed inputs. The zero value is not usable; construct
// with NewTopK.
type TopK[T any] struct {
	k    int
	seq  int
	heap *Heap[entry[T]]
}

type entry[T any] struct {
	item  T
	score float64
	seq   int
}

// NewTopK returns a collector for the k best items. k must be positive.
func NewTopK[T any](k int) *TopK[T] {
	if k <= 0 {
		panic("pq: TopK requires k > 0")
	}
	// Min-heap on (score, -seq): the weakest kept item is on top. A later
	// arrival with an equal score is weaker than an earlier one.
	less := func(a, b entry[T]) bool {
		if a.score != b.score {
			return a.score < b.score
		}
		return a.seq > b.seq
	}
	return &TopK[T]{k: k, heap: NewHeapCap(less, k)}
}

// K returns the collector's capacity.
func (t *TopK[T]) K() int { return t.k }

// Len returns the number of items currently kept.
func (t *TopK[T]) Len() int { return t.heap.Len() }

// Add offers an item; it is kept only if it ranks in the current top k.
// It reports whether the item was kept.
func (t *TopK[T]) Add(item T, score float64) bool {
	e := entry[T]{item: item, score: score, seq: t.seq}
	t.seq++
	if t.heap.Len() < t.k {
		t.heap.Push(e)
		return true
	}
	weakest := t.heap.Peek()
	if weakest.score > e.score || (weakest.score == e.score && weakest.seq < e.seq) {
		return false
	}
	t.heap.ReplaceTop(e)
	return true
}

// Threshold returns the score of the weakest kept item, or negative infinity
// while fewer than k items are kept. An unseen item must strictly beat this
// value to enter the collection once it is full.
func (t *TopK[T]) Threshold() float64 {
	if t.heap.Len() < t.k {
		return math.Inf(-1)
	}
	return t.heap.Peek().score
}

// Full reports whether k items have been collected.
func (t *TopK[T]) Full() bool { return t.heap.Len() == t.k }

// Results returns the kept items ordered best-first. The collector remains
// usable afterwards.
func (t *TopK[T]) Results() []Scored[T] {
	out := make([]Scored[T], 0, t.heap.Len())
	entries := make([]entry[T], len(t.heap.items))
	copy(entries, t.heap.items)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].score != entries[j].score {
			return entries[i].score > entries[j].score
		}
		return entries[i].seq < entries[j].seq
	})
	for _, e := range entries {
		out = append(out, Scored[T]{Item: e.item, Score: e.score})
	}
	return out
}
