// Package pq provides the generic priority-queue machinery shared by the
// index structures and baseline engines: a binary heap parameterized by an
// ordering function and a bounded top-k collector.
//
// The standard library's container/heap forces an interface-based API with
// per-operation allocations; the index structures in this module sit on hot
// query paths, so we use a small generic heap instead.
package pq

// Heap is a binary heap ordered by a user-supplied less function. The zero
// value is not usable; construct with NewHeap.
type Heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

// NewHeap returns an empty heap ordered by less (the minimum element, per
// less, is at the top).
func NewHeap[T any](less func(a, b T) bool) *Heap[T] {
	return &Heap[T]{less: less}
}

// NewHeapCap returns an empty heap with pre-allocated capacity.
func NewHeapCap[T any](less func(a, b T) bool, capacity int) *Heap[T] {
	return &Heap[T]{less: less, items: make([]T, 0, capacity)}
}

// Len reports the number of elements in the heap.
func (h *Heap[T]) Len() int { return len(h.items) }

// Push adds an element to the heap.
func (h *Heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.up(len(h.items) - 1)
}

// Peek returns the top element without removing it. It panics on an empty
// heap; callers guard with Len.
func (h *Heap[T]) Peek() T { return h.items[0] }

// Pop removes and returns the top element. It panics on an empty heap.
func (h *Heap[T]) Pop() T {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero // release references held by pointer-ish payloads
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// ReplaceTop replaces the top element with x and restores heap order. It is
// equivalent to but cheaper than Pop followed by Push.
func (h *Heap[T]) ReplaceTop(x T) {
	h.items[0] = x
	h.down(0)
}

// Reset removes all elements but keeps the allocated capacity.
func (h *Heap[T]) Reset() {
	var zero T
	for i := range h.items {
		h.items[i] = zero
	}
	h.items = h.items[:0]
}

func (h *Heap[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			break
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap[T]) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && h.less(h.items[right], h.items[left]) {
			smallest = right
		}
		if !h.less(h.items[smallest], h.items[i]) {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
