// Package faultfs abstracts the handful of filesystem operations the
// write-ahead log needs (append, fsync, rename, directory listing) behind an
// interface with two implementations: OS, a thin veneer over package os used
// in production, and Mem, an in-memory filesystem that journals every
// mutation so tests can reconstruct the exact on-disk state a crash at any
// byte offset would leave behind — torn writes included — and inject the
// failures (short writes, fsync errors) that durability code exists to
// survive.
package faultfs

import (
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
)

// File is the per-file surface the WAL uses: sequential reads (recovery),
// appending writes (the log), fsync, close. Seeking is deliberately absent —
// the log is append-only and replayed front to back.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	Close() error
}

// FS is the directory-level surface: everything the WAL's rotation,
// checkpointing, and recovery paths touch.
type FS interface {
	MkdirAll(dir string) error
	// OpenFile opens with os-style flags (os.O_RDONLY, os.O_WRONLY,
	// os.O_CREATE, os.O_TRUNC, os.O_APPEND are honored).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// ReadDir lists the names of a directory's immediate children, sorted.
	ReadDir(dir string) ([]string, error)
	// Truncate cuts a file to size bytes (recovery chops torn tails).
	Truncate(name string, size int64) error
	// SyncDir makes directory-entry mutations (create, rename, remove)
	// durable — the fsync-the-directory step of an atomic rename.
	SyncDir(dir string) error
	// Stat reports whether a file exists and its size.
	Stat(name string) (size int64, err error)
}

// OS is the production FS: package os with fsync-the-directory support.
type OS struct{}

func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

func (OS) Stat(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
