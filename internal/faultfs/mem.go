package faultfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Mem is an in-memory FS that records every mutation in an ordered journal.
// The journal is what makes crash testing exact: CrashClone(n) replays it
// with an n-byte budget of written data — the write that crosses the budget
// lands torn, everything after it never happened — reconstructing precisely
// the state a process crash at that point leaves on a real disk (written
// data survives a process crash whether fsynced or not). PowerFailClone
// models the harsher failure: only fsynced bytes survive.
//
// Fault injection: SetWriteErr makes every subsequent write fail (the
// persistent-media-error case that flips a server read-only), SetSyncErr
// does the same for fsync, and ShortWriteOnce makes exactly the next write
// land a prefix and return io.ErrShortWrite (the retry/duplicate-record
// case).
type Mem struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	journal []memOp
	written int64 // cumulative bytes of write-op data, the CrashClone budget axis
	fsyncs  int64

	writeErr   error
	syncErr    error
	shortWrite int // -1 = off; else the next write lands this many bytes
	syncDelay  time.Duration
}

type memFile struct {
	data   []byte
	synced int // durable watermark: bytes that survive power failure
}

type opKind uint8

const (
	opMkdir opKind = iota
	opCreate
	opWrite
	opRename
	opRemove
	opTruncate
)

type memOp struct {
	kind  opKind
	path  string
	path2 string // rename target
	size  int64  // truncate size
	data  []byte // write payload (copied)
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{files: map[string]*memFile{}, dirs: map[string]bool{}, shortWrite: -1}
}

// SetWriteErr injects a sticky write failure: every subsequent Write returns
// err without writing. nil clears it.
func (m *Mem) SetWriteErr(err error) {
	m.mu.Lock()
	m.writeErr = err
	m.mu.Unlock()
}

// SetSyncErr injects a sticky fsync failure. nil clears it.
func (m *Mem) SetSyncErr(err error) {
	m.mu.Lock()
	m.syncErr = err
	m.mu.Unlock()
}

// ShortWriteOnce makes exactly the next Write land only n bytes and return
// io.ErrShortWrite; later writes succeed.
func (m *Mem) ShortWriteOnce(n int) {
	m.mu.Lock()
	m.shortWrite = n
	m.mu.Unlock()
}

// SetSyncDelay makes every Sync take at least d — slow-disk modeling that
// lets group-commit batching show up deterministically in tests.
func (m *Mem) SetSyncDelay(d time.Duration) {
	m.mu.Lock()
	m.syncDelay = d
	m.mu.Unlock()
}

// Written reports the cumulative bytes of file data written so far — the
// axis CrashClone crash points are expressed on.
func (m *Mem) Written() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.written
}

// Fsyncs reports the number of Sync calls that reached stable storage.
func (m *Mem) Fsyncs() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fsyncs
}

// Ops reports the journal length — the axis CrashCloneOps crash points are
// expressed on.
func (m *Mem) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.journal)
}

// CrashClone reconstructs the filesystem a process crash after n bytes of
// written data would leave: journal ops replay in order until the write op
// that crosses the budget, which lands torn (its first n-cum bytes only);
// every later op — writes, renames, creates, removes — never happened.
// n ≥ Written() reproduces the current state.
func (m *Mem) CrashClone(n int64) *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	var cum int64
	for _, op := range m.journal {
		if op.kind == opWrite {
			l := int64(len(op.data))
			if cum+l > n {
				torn := op
				torn.data = op.data[:n-cum]
				c.apply(torn)
				return c
			}
			cum += l
		}
		c.apply(op)
	}
	return c
}

// CrashCloneOps reconstructs the filesystem after the first k journal ops —
// the op-granularity axis that separates, e.g., "checkpoint tmp written" from
// "checkpoint renamed into place" from "old log files retired".
func (m *Mem) CrashCloneOps(k int) *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	for i, op := range m.journal {
		if i >= k {
			break
		}
		c.apply(op)
	}
	return c
}

// PowerFailClone reconstructs the state after power loss right now: each
// file keeps only its fsynced prefix, so acknowledged-but-unsynced data is
// gone. Directory-entry operations are assumed durable (the WAL dir-syncs
// after every rename).
func (m *Mem) PowerFailClone() *Mem {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMem()
	for d := range m.dirs {
		c.dirs[d] = true
	}
	for p, f := range m.files {
		c.files[p] = &memFile{data: append([]byte(nil), f.data[:f.synced]...), synced: f.synced}
	}
	return c
}

// apply replays one journal op onto m (no injection, journaled again so a
// clone is itself fully usable — and crashable — as a live FS). Caller
// holds c's zero-contention lock implicitly (clones are built single-
// threaded).
func (m *Mem) apply(op memOp) {
	m.journal = append(m.journal, op)
	switch op.kind {
	case opMkdir:
		m.dirs[op.path] = true
	case opCreate:
		m.files[op.path] = &memFile{}
	case opWrite:
		f := m.files[op.path]
		if f == nil {
			f = &memFile{}
			m.files[op.path] = f
		}
		f.data = append(f.data, op.data...)
		m.written += int64(len(op.data))
	case opRename:
		if f, ok := m.files[op.path]; ok {
			delete(m.files, op.path)
			m.files[op.path2] = f
		}
	case opRemove:
		delete(m.files, op.path)
	case opTruncate:
		if f, ok := m.files[op.path]; ok && int64(len(f.data)) > op.size {
			f.data = f.data[:op.size]
			if int64(f.synced) > op.size {
				f.synced = int(op.size)
			}
		}
	}
}

func (m *Mem) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.apply(memOp{kind: opMkdir, path: filepath.Clean(dir)})
	return nil
}

func (m *Mem) OpenFile(name string, flag int, _ fs.FileMode) (File, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	writable := flag&(os.O_WRONLY|os.O_RDWR) != 0
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		m.apply(memOp{kind: opCreate, path: name})
		f = m.files[name]
	} else if flag&os.O_TRUNC != 0 {
		m.apply(memOp{kind: opCreate, path: name})
		f = m.files[name]
	}
	return &memHandle{m: m, f: f, path: name, writable: writable}, nil
}

func (m *Mem) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[oldpath]; !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	m.apply(memOp{kind: opRename, path: oldpath, path2: newpath})
	return nil
}

func (m *Mem) Remove(name string) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	m.apply(memOp{kind: opRemove, path: name})
	return nil
}

func (m *Mem) ReadDir(dir string) ([]string, error) {
	dir = filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]bool{}
	found := m.dirs[dir]
	add := func(p string) {
		if filepath.Dir(p) == dir {
			seen[filepath.Base(p)] = true
			found = true
		} else if rel, err := filepath.Rel(dir, p); err == nil && rel != ".." && !filepath.IsAbs(rel) && rel != "." && !startsDotDot(rel) {
			// A deeper descendant: surface its first path element as a child dir.
			seen[firstElem(rel)] = true
			found = true
		}
	}
	for p := range m.files {
		add(p)
	}
	for p := range m.dirs {
		if p != dir {
			add(p)
		}
	}
	if !found {
		return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

func startsDotDot(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}

func firstElem(rel string) string {
	for i := 0; i < len(rel); i++ {
		if rel[i] == filepath.Separator {
			return rel[:i]
		}
	}
	return rel
}

func (m *Mem) Truncate(name string, size int64) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "truncate", Path: name, Err: fs.ErrNotExist}
	}
	m.apply(memOp{kind: opTruncate, path: name, size: size})
	return nil
}

func (m *Mem) SyncDir(string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.syncErr != nil {
		return m.syncErr
	}
	return nil
}

func (m *Mem) Stat(name string) (int64, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

type memHandle struct {
	m        *Mem
	f        *memFile
	path     string
	pos      int
	writable bool
	closed   bool
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if h.pos >= len(h.f.data) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if !h.writable {
		return 0, fmt.Errorf("faultfs: %s opened read-only", h.path)
	}
	if h.m.writeErr != nil {
		return 0, h.m.writeErr
	}
	if k := h.m.shortWrite; k >= 0 {
		h.m.shortWrite = -1
		if k > len(p) {
			k = len(p)
		}
		h.m.apply(memOp{kind: opWrite, path: h.path, data: append([]byte(nil), p[:k]...)})
		return k, io.ErrShortWrite
	}
	h.m.apply(memOp{kind: opWrite, path: h.path, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.m.mu.Lock()
	if h.closed {
		h.m.mu.Unlock()
		return fs.ErrClosed
	}
	if err := h.m.syncErr; err != nil {
		h.m.mu.Unlock()
		return err
	}
	h.f.synced = len(h.f.data)
	h.m.fsyncs++
	d := h.m.syncDelay
	h.m.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	return nil
}

func (h *memHandle) Close() error {
	h.m.mu.Lock()
	defer h.m.mu.Unlock()
	h.closed = true
	return nil
}
