package core

// Background compaction: the write path only ever appends to the memtable
// and flips tombstone bits, so index maintenance — tree builds, sorted-list
// builds, dead-row reclamation — happens here, off both the insert and the
// query path. The compactor runs three policies, all expressed as one
// primitive (compactTail: seal the last nSegs segments plus a memtable
// prefix into one fresh segment):
//
//   - Seal: once the memtable reaches Config.MemtableSize rows, its rows
//     are frozen into a sealed segment, emptying the memtable.
//   - Fold: the stack keeps the invariant that each segment is at least
//     twice the size of its successor; a freshly sealed segment cascades
//     merges until the invariant holds, so the stack stays logarithmic in
//     the insert count and queries plan across O(log n) segments.
//   - Reclaim: a segment whose tombstone fraction crosses half is rewritten
//     (together with the stack suffix below it, preserving the global-ID
//     ordering invariant), dropping dead rows and their index entries.
//
// Exactly one compaction step runs at a time (compactMu); steps build the
// replacement segment OUTSIDE any lock — concurrent queries keep answering
// from the old snapshot, concurrent inserts keep appending behind the
// sealed prefix — and only the final swap takes the writer mutex for a few
// pointer moves. Tombstones that land on a row while its new segment is
// being built are re-applied at swap time, so no Remove is ever lost.

// kickCompactor schedules a background compaction pass if one is not
// already running. Called by Insert past the memtable threshold; cheap
// enough to call spuriously.
func (e *Engine) kickCompactor() {
	if e.noCompact {
		return
	}
	if !e.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		for {
			e.compactMu.Lock()
			e.compactSteps()
			e.maybeCheckpoint()
			e.compactMu.Unlock()
			e.compacting.Store(false)
			// Re-check after unpublishing: an Insert that crossed the
			// threshold between our last step and the Store above saw
			// compacting=true and skipped its kick — pick its work up
			// instead of leaving the memtable over threshold.
			if !e.needsCompaction() || !e.compacting.CompareAndSwap(false, true) {
				return
			}
		}
	}()
}

// needsCompaction reports whether any policy has pending work.
func (e *Engine) needsCompaction() bool {
	if e.noCompact {
		return false
	}
	sn := e.snap.Load()
	return sn.memRows() >= e.memSize || e.foldableTail(sn) > 0
}

// foldableTail returns how many tail segments the fold and reclaim policies
// want merged (0 = none).
func (e *Engine) foldableTail(sn *snapshot) int {
	n := len(sn.segs)
	// Reclaim: rewrite from the shallowest dead-heavy segment to the end of
	// the stack (suffix-only rewrites keep segment ordinals and the
	// ascending global-ID invariant stable).
	for i := 0; i < n; i++ {
		if t := sn.tombs[i]; t != nil && 2*popcount(t) > sn.segs[i].rows {
			return n - i
		}
	}
	// Fold: restore the 2× size-ratio invariant — unless the merged segment
	// would break the configured row cap, which deliberately keeps the stack
	// wide (one segment is the unit of intra-query fan-out). A capped merge
	// would be re-split by compactTail anyway, so skipping it here avoids a
	// fold/re-split livelock.
	if n >= 2 && sn.segs[n-2].rows < 2*sn.segs[n-1].rows &&
		(e.maxSegRows == 0 || sn.segs[n-2].rows+sn.segs[n-1].rows <= e.maxSegRows) {
		return 2
	}
	return 0
}

// compactSteps runs policy steps until none fires. Caller holds compactMu.
func (e *Engine) compactSteps() {
	for {
		sn := e.snap.Load()
		if m := sn.memRows(); m >= e.memSize {
			e.compactTail(0, m)
			continue
		}
		if k := e.foldableTail(sn); k > 0 {
			e.compactTail(k, 0)
			continue
		}
		return
	}
}

// Compact synchronously folds the engine's entire current contents — every
// sealed segment and the whole memtable — into a single fresh segment,
// dropping all tombstoned rows. Queries keep running throughout; rows
// inserted while Compact runs land in the memtable behind it. An engine
// that is already fully compacted (one segment, no tombstones, empty
// memtable) returns without rebuilding anything.
func (e *Engine) Compact() {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()
	sn := e.snap.Load()
	if sn.memRows() == 0 && len(sn.segs) <= 1 &&
		(len(sn.segs) == 0 || sn.tombs[0] == nil) {
		return
	}
	e.compactTail(len(sn.segs), sn.memRows())
}

// memSrc marks a kept row that came from the memtable (vs. a segment
// ordinal) in compactTail's provenance records.
const memSrc = -1

// compactTail seals the last nSegs sealed segments plus the first memUpto
// memtable rows into one replacement segment. Caller holds compactMu, so
// the segment stack cannot change underneath (only this goroutine replaces
// segments); the memtable may grow and tombstones may flip concurrently,
// which the swap step reconciles.
func (e *Engine) compactTail(nSegs, memUpto int) {
	sn := e.snap.Load()
	n := len(sn.segs)
	first := n - nSegs

	// Phase 1 (no locks): gather the live rows — in ascending global-ID
	// order, which the stack invariant reduces to simple concatenation —
	// and build the replacement segments' trees and lists. The output is
	// one segment, or ⌈kept/max⌉ equal chunks under a configured row cap;
	// columns are gathered dimension-major (source segments are already
	// columnar, memtable rows are transposed on the way through).
	type src struct{ seg, local int32 }
	var kept []src
	var ids []int32
	for si := first; si < n; si++ {
		s, tomb := sn.segs[si], sn.tombs[si]
		for l := 0; l < s.rows; l++ {
			if bitGet(tomb, l) {
				continue
			}
			kept = append(kept, src{int32(si), int32(l)})
			ids = append(ids, s.ids[l])
		}
	}
	d := e.dims
	for l := 0; l < memUpto; l++ {
		if bitGet(sn.memDead, l) {
			continue
		}
		kept = append(kept, src{memSrc, int32(l)})
		ids = append(ids, sn.memIDs[l])
	}
	nk := len(kept)
	nchunks := 1
	if e.maxSegRows > 0 && nk > e.maxSegRows {
		nchunks = (nk + e.maxSegRows - 1) / e.maxSegRows
	}
	var builts []*segment
	for ci := 0; ci < nchunks; ci++ {
		clo, chi := ci*nk/nchunks, (ci+1)*nk/nchunks
		rows := chi - clo
		if rows == 0 {
			continue // nothing survived at all
		}
		cols := make([]float64, rows*d)
		for dd := 0; dd < d; dd++ {
			c := cols[dd*rows : (dd+1)*rows]
			for j := range c {
				if k := kept[clo+j]; k.seg == memSrc {
					c[j] = sn.memFlat[int(k.local)*d+dd]
				} else {
					s := sn.segs[k.seg]
					c[j] = s.cols[dd*s.rows+int(k.local)]
				}
			}
		}
		built, err := buildSegment(cols, ids[clo:chi:chi], d, &e.layout, e.treeCfg, e.colWidth)
		if err != nil {
			// Every row was validated at insert time; a build failure here is
			// a bug, but the safe reaction is to leave the current (correct,
			// just uncompacted) snapshot in place.
			return
		}
		builts = append(builts, built)
	}

	// Phase 2: swap. Re-apply tombstones that landed while we were
	// building, then publish the new stack. Chunk boundaries recompute with
	// the same arithmetic as the build above, so a kept row's tombstone
	// lands in the chunk that holds the row.
	e.wrMu.Lock()
	cur := e.snap.Load()
	tombs := make([][]uint64, len(builts))
	if nk > 0 {
		for ci := 0; ci < nchunks; ci++ {
			clo, chi := ci*nk/nchunks, (ci+1)*nk/nchunks
			for j := clo; j < chi; j++ {
				nowDead := false
				if k := kept[j]; k.seg == memSrc {
					nowDead = bitGet(cur.memDead, int(k.local))
				} else {
					nowDead = bitGet(cur.tombs[k.seg], int(k.local))
				}
				if nowDead {
					if tombs[ci] == nil {
						tombs[ci] = make([]uint64, (chi-clo+63)/64)
					}
					tombs[ci][(j-clo)>>6] |= 1 << (uint(j-clo) & 63)
				}
			}
		}
	}
	ns := &snapshot{
		epoch:   cur.epoch + 1,
		segs:    append([]*segment(nil), cur.segs[:first]...),
		tombs:   append([][]uint64(nil), cur.tombs[:first]...),
		memIDs:  cur.memIDs[memUpto:],
		memFlat: cur.memFlat[memUpto*d:],
		memDead: shiftBits(cur.memDead, memUpto, len(cur.memIDs)),
		total:   cur.total,
		live:    cur.live,
		walLSN:  cur.walLSN,
		minVal:  cur.minVal,
		maxVal:  cur.maxVal,
	}
	for ci, built := range builts {
		ns.segs = append(ns.segs, built)
		ns.tombs = append(ns.tombs, tombs[ci])
	}
	e.snap.Store(ns)
	e.wrMu.Unlock()
	e.compactions.Add(1)
	if memUpto > 0 && e.wal != nil {
		// Sealing memtable rows seals their log records' era too: rotate so
		// the next checkpoint (whose snapshot now carries those rows in a
		// sealed segment) can retire the closed file whole.
		e.wal.rotate()
	}
}

// shiftBits re-bases a memtable tombstone bitset after the first `from` rows
// were sealed away: bit i of the result is bit from+i of the input,
// considering rows [from, total). Returns nil when no bit survives.
func shiftBits(bits []uint64, from, total int) []uint64 {
	var out []uint64
	for i := from; i < total; i++ {
		if bitGet(bits, i) {
			if out == nil {
				out = make([]uint64, (total-from+63)/64)
			}
			out[(i-from)>>6] |= 1 << (uint(i-from) & 63)
		}
	}
	return out
}
