package core

import (
	"fmt"
	"math"
	mathbits "math/bits"
	"sort"

	"repro/internal/dimlist"
	"repro/internal/query"
	"repro/internal/topk"
)

// layout is the engine's fixed subproblem structure, decided once at New from
// the build-time roles (and, for the data-dependent pairing strategies, the
// initial dataset) and shared by every sealed segment. Fixing the layout at
// the engine level — rather than re-deriving it per segment — is what keeps
// the per-shape plan cache valid across the whole segment stack: a plan's
// pair and lone indices name the same dimensions in every segment's trees.
type layout struct {
	pairs []Pair
	lone  []int
	// Adaptive grid structure (PairAdaptive within pairGridCap): see Engine.
	adaptive bool
	gridRep  []int
	gridAtt  []int
	gridPos  []int32 // dim → its row/column index (shared: roles disjoint)
}

// segment is one sealed, immutable layer of the engine: a dimension-major
// column block, the global dataset IDs of its rows (ascending), and the
// per-layout index structures built once over the segment's local row space.
// Columns — not rows — are the primary layout: the batch score kernels
// (internal/simd) sweep one dimension's contiguous values for a whole
// candidate batch, so the hot loop streams cache lines instead of striding
// through row-major padding, and tree/list builds slice their input columns
// straight out of the block with no per-dimension copy. Sealed segments are
// never mutated — removals tombstone rows in the owning snapshot, and
// compaction replaces whole segments — so queries walk them without any
// synchronization.
type segment struct {
	ids  []int32   // local row → global dataset ID, strictly ascending
	cols []float64 // dims × rows, dimension-major: column d = cols[d*rows:(d+1)*rows]
	rows int
	dims int

	// cols32 is the optional narrow sweep copy (Config.ColumnWidth 32): the
	// same dimension-major block quantized to float32. The batch kernel
	// sweeps it at half the memory bandwidth, and qerr[d] — the largest
	// |column value − widened float32| per dimension — pads the approximate
	// scores so candidates are only skipped when even the padded approximate
	// score cannot reach the k-th best; survivors are rescored exactly from
	// cols, so answers are byte-identical to a float64 engine. Both are nil
	// on (default) 64-bit engines.
	cols32 []float32
	qerr   []float64

	trees []*topk.Index   // fixed-pairing: parallel to layout.pairs
	grid  []*topk.Index   // adaptive: gridRep × gridAtt trees
	lists []*dimlist.List // parallel to layout.lone

	// structBytes caches the resident size of the index structures (trees,
	// grid, lists); they never change after the build, so Bytes() does not
	// re-walk them.
	structBytes int
}

// col returns dimension d's contiguous column.
func (s *segment) col(d int) []float64 { return s.cols[d*s.rows : (d+1)*s.rows] }

// copyRow gathers one local row's coordinates into dst (len ≥ dims) — the
// random-access path for callers that need a whole row (replication reads,
// compaction gathers); the query path never materializes rows.
func (s *segment) copyRow(local int, dst []float64) {
	for d := 0; d < s.dims; d++ {
		dst[d] = s.cols[d*s.rows+local]
	}
}

// scoreLocal computes one row's exact score from the float64 columns, in the
// same ascending-dimension order as the batch kernels and the old row-major
// kernel — bit-identical to both. It is the rescore path for candidates that
// survive the float32 pre-filter.
func (s *segment) scoreLocal(local int, qpt, signed []float64) float64 {
	var sc float64
	for d := 0; d < s.dims; d++ {
		sc += signed[d] * math.Abs(s.cols[d*s.rows+local]-qpt[d])
	}
	return sc
}

// transposeToCols converts a row-major block to the segment's dimension-major
// layout — the build-time bridge for data that arrives as rows (initial
// datasets, memtable seals, persisted v1/v2 files).
func transposeToCols(flat []float64, rows, dims int) []float64 {
	cols := make([]float64, rows*dims)
	for d := 0; d < dims; d++ {
		c := cols[d*rows : (d+1)*rows]
		for i := range c {
			c[i] = flat[i*dims+d]
		}
	}
	return cols
}

// buildSegment seals rows (cols, dimension-major, with their global IDs) into
// an immutable segment under the engine's layout and tree configuration. IDs
// must be strictly ascending; width is the engine's column width (64, or 32
// for the narrow-sweep layout). An empty row set returns nil.
func buildSegment(cols []float64, ids []int32, dims int, lo *layout, treeCfg topk.Config, width int) (*segment, error) {
	rows := len(ids)
	if rows == 0 {
		return nil, nil
	}
	s := &segment{ids: ids, cols: cols, rows: rows, dims: dims}
	if width == 32 {
		s.cols32 = make([]float32, len(cols))
		s.qerr = make([]float64, dims)
		for d := 0; d < dims; d++ {
			var worst float64
			for i, v := range cols[d*rows : (d+1)*rows] {
				n := float32(v)
				s.cols32[d*rows+i] = n
				if e := math.Abs(v - float64(n)); e > worst {
					worst = e
				}
			}
			s.qerr[d] = worst
		}
	}
	// Trees and lists copy their input columns, so they can slice the block
	// directly — the throwaway per-dimension copies the row-major layout
	// forced are gone.
	colOf := s.col
	if lo.adaptive {
		s.grid = make([]*topk.Index, len(lo.gridRep)*len(lo.gridAtt))
		for ri, r := range lo.gridRep {
			for ai, a := range lo.gridAtt {
				tree, err := topk.BuildColumns(colOf(a), colOf(r), treeCfg)
				if err != nil {
					return nil, fmt.Errorf("core: pair (%d, %d): %w", r, a, err)
				}
				s.grid[ri*len(lo.gridAtt)+ai] = tree
			}
		}
	} else {
		s.trees = make([]*topk.Index, len(lo.pairs))
		for i, pr := range lo.pairs {
			tree, err := topk.BuildColumns(colOf(pr.Attr), colOf(pr.Rep), treeCfg)
			if err != nil {
				return nil, fmt.Errorf("core: pair (%d, %d): %w", pr.Rep, pr.Attr, err)
			}
			s.trees[i] = tree
		}
		s.lists = make([]*dimlist.List, len(lo.lone))
		for i, d := range lo.lone {
			s.lists[i] = dimlist.FromColumn(colOf(d))
		}
	}
	for _, t := range s.trees {
		s.structBytes += t.Bytes()
	}
	for _, t := range s.grid {
		s.structBytes += t.Bytes()
	}
	for _, l := range s.lists {
		s.structBytes += l.Len() * 12 // 8B value + 4B id per entry
	}
	return s, nil
}

// bytes is the segment's resident size: index structures plus the column
// block (and the narrow copy with its per-dimension error pads, when built),
// the global-ID map, and (caller-supplied) tombstone words.
func (s *segment) bytes(tombWords int) int {
	return s.structBytes + 8*len(s.cols) + 4*len(s.cols32) + 8*len(s.qerr) +
		4*len(s.ids) + 8*tombWords
}

// findLocal locates a global ID in the segment by binary search over the
// ascending ids, returning -1 when absent.
func (s *segment) findLocal(id int32) int {
	lo, hi := 0, len(s.ids)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.ids) && s.ids[lo] == id {
		return lo
	}
	return -1
}

// bitset helpers shared by segment tombstones and memtable dead sets. A nil
// bitset reads as all-alive; setBit copies on write (the COW discipline every
// published snapshot relies on), growing to cover the index.
func bitGet(bits []uint64, i int) bool {
	w := i >> 6
	return w < len(bits) && bits[w]&(1<<(uint(i)&63)) != 0
}

// bitSetCopy returns a copy of bits with bit i set, grown as needed. The
// input is never modified — snapshots holding it stay valid.
func bitSetCopy(bits []uint64, i int) []uint64 {
	need := i>>6 + 1
	out := make([]uint64, max(need, len(bits)))
	copy(out, bits)
	out[i>>6] |= 1 << (uint(i) & 63)
	return out
}

// popcount counts set bits — the tombstone density the compactor's
// dead-heavy rewrite policy consults.
func popcount(bits []uint64) int {
	n := 0
	for _, w := range bits {
		n += mathbits.OnesCount64(w)
	}
	return n
}

// makeLayout fixes the engine's subproblem structure from the build-time
// roles, falling back from the adaptive grid exactly as New always has. The
// data parameter feeds the data-dependent pairing strategies only; it may be
// empty, in which case PairByCorrelation and PairByVariance degrade to the
// in-order zip (their statistics are undefined on an empty set).
func makeLayout(data [][]float64, roles []query.Role, pairing Pairing) layout {
	var repulsive, attractive []int
	for d, r := range roles {
		switch r {
		case query.Repulsive:
			repulsive = append(repulsive, d)
		case query.Attractive:
			attractive = append(attractive, d)
		}
	}
	var lo layout
	if pairing == PairAdaptive {
		if len(repulsive) > 0 && len(attractive) > 0 &&
			len(repulsive)*len(attractive) <= pairGridCap {
			lo.adaptive = true
			lo.gridRep = repulsive
			lo.gridAtt = attractive
			lo.gridPos = make([]int32, len(roles))
			for i, d := range repulsive {
				lo.gridPos[d] = int32(i)
			}
			for i, d := range attractive {
				lo.gridPos[d] = int32(i)
			}
			return lo
		}
		// Degenerate or oversized grid: the adaptive planner has nothing to
		// choose from (or too much to index), so fall back to the fixed
		// in-order structure. Answers are identical either way.
		pairing = PairInOrder
	}
	if len(data) == 0 && (pairing == PairByCorrelation || pairing == PairByVariance) {
		pairing = PairInOrder
	}
	lo.pairs = makePairs(data, repulsive, attractive, pairing)
	paired := make(map[int]bool)
	for _, pr := range lo.pairs {
		paired[pr.Rep] = true
		paired[pr.Attr] = true
	}
	for _, d := range append(append([]int(nil), repulsive...), attractive...) {
		if !paired[d] {
			lo.lone = append(lo.lone, d)
		}
	}
	sort.Ints(lo.lone)
	return lo
}

// validRow rejects non-finite coordinates and dimension mismatches — the
// invariant every indexed row satisfies.
func validRow(p []float64, dims int) error {
	if len(p) != dims {
		return fmt.Errorf("core: point has %d dims, want %d", len(p), dims)
	}
	for d, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("core: dim %d is %v", d, c)
		}
	}
	return nil
}
