package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/query"
)

// snapshot is one immutable epoch of the engine's data: the stack of sealed
// segments, their tombstone bitsets, and a bounded view of the mutable
// memtable. Readers obtain the current snapshot with a single atomic load
// and then touch no synchronization at all; writers (Insert, Remove, the
// compactor's swap) build a new snapshot value and publish it atomically.
//
// Sharing discipline: segment structures are immutable forever. Tombstone
// bitsets are copy-on-write — a Remove copies the affected segment's bitset,
// so bitsets reachable from any published snapshot never change. The
// memtable's backing arrays are append-shared: Insert extends memIDs/memFlat
// in place when capacity allows, which is safe because every older snapshot
// bounds its reads by its own slice lengths, and the writer only ever writes
// beyond every published length (writes are serialized by Engine.wrMu).
type snapshot struct {
	// epoch is the snapshot's version number: strictly increasing across
	// every publish (insert, remove, compaction swap), assigned under wrMu
	// as cur.epoch+1. Two loads returning equal epochs therefore prove no
	// snapshot was published in between — the invariant the serve layer's
	// result cache keys on (an answer computed while the epoch held steady
	// is exactly the answer any later query at that epoch would get).
	epoch uint64

	segs  []*segment
	tombs [][]uint64 // parallel to segs; nil = no removals in that segment

	memIDs  []int32   // memtable global IDs, ascending (insertion order)
	memFlat []float64 // memtable rows, row-major
	memDead []uint64  // memtable tombstones (COW, like segment tombs)

	total int // global ID space size: the next Insert's ID lower bound
	live  int // live rows across segments and memtable

	// walLSN is the log sequence number of the last mutation folded into
	// this snapshot — 0 without a WAL. Checkpoints persist it so recovery
	// knows where replay starts; replay skips records at or below it.
	walLSN uint64

	// Per-dimension coordinate extrema over every row ever indexed
	// (removals keep them, which only loosens the bound). They size the
	// float-error pad that keeps tie-breaking deterministic — see slack.
	minVal, maxVal []float64
}

// memRows reports the number of memtable rows this snapshot can see.
func (sn *snapshot) memRows() int { return len(sn.memIDs) }

// bytes is the snapshot's resident size: every sealed segment (structures,
// flat copy, ID map, tombstones), the memtable arrays, and the extrema.
func (sn *snapshot) bytes() int {
	total := 8 * (len(sn.minVal) + len(sn.maxVal))
	for i, s := range sn.segs {
		total += s.bytes(len(sn.tombs[i]))
	}
	total += 4*len(sn.memIDs) + 8*len(sn.memFlat) + 8*len(sn.memDead)
	return total
}

// locate finds a global ID in this snapshot: the owning segment's ordinal
// (or -1 for the memtable) and the local row index, with ok=false when the
// row is absent (never inserted, or dropped by compaction). Tombstoned rows
// are still located; callers check liveness separately.
func (sn *snapshot) locate(id int) (seg int, local int, ok bool) {
	if id < 0 || id >= sn.total {
		return 0, 0, false
	}
	// Global IDs ascend across the stack: every ID in segs[i] is smaller
	// than every ID in segs[i+1], and memtable IDs are the largest. Find
	// the first layer whose max ID covers id, then binary-search within.
	n := len(sn.segs)
	li := sort.Search(n, func(i int) bool {
		s := sn.segs[i]
		return s.ids[s.rows-1] >= int32(id)
	})
	if li < n {
		if l := sn.segs[li].findLocal(int32(id)); l >= 0 {
			return li, l, true
		}
		return 0, 0, false
	}
	ids := sn.memIDs
	l := sort.Search(len(ids), func(i int) bool { return ids[i] >= int32(id) })
	if l < len(ids) && ids[l] == int32(id) {
		return -1, l, true
	}
	return 0, 0, false
}

// alive reports whether a located row is untombstoned.
func (sn *snapshot) alive(seg, local int) bool {
	if seg < 0 {
		return !bitGet(sn.memDead, local)
	}
	return !bitGet(sn.tombs[seg], local)
}

// View is an immutable point-in-time handle over an Engine: queries through
// a View see exactly the rows that were live when the View was acquired, no
// matter how many Inserts, Removes, or compactions run afterwards. The zero
// View is not usable; acquire one with Engine.View.
type View struct {
	e  *Engine
	sn *snapshot
}

// Valid reports whether the View was acquired from an engine.
func (v View) Valid() bool { return v.sn != nil }

// Len reports the number of live rows the View can see.
func (v View) Len() int { return v.sn.live }

// Segments reports the number of sealed segments backing the View, and
// MemRows the number of memtable rows it can see — observability for
// compaction behavior.
func (v View) Segments() int { return len(v.sn.segs) }

// MemRows reports the number of memtable rows visible to the View.
func (v View) MemRows() int { return v.sn.memRows() }

// Epoch reports the version number of the snapshot backing the View. See
// Engine.Epoch.
func (v View) Epoch() uint64 { return v.sn.epoch }

// View acquires the engine's current snapshot: one atomic pointer load, no
// lock. The returned View pins the snapshot's row set for as long as the
// caller holds it (memory is reclaimed by GC once the last View drops).
func (e *Engine) View() View { return View{e: e, sn: e.snap.Load()} }

// TopK answers the query against the View's frozen row set. See Engine.TopK.
func (v View) TopK(spec query.Spec) ([]query.Result, error) {
	res, _, err := v.TopKAppend(nil, spec)
	return res, err
}

// TopKAppend is Engine.TopKAppend evaluated at the View's snapshot.
func (v View) TopKAppend(dst []query.Result, spec query.Spec) ([]query.Result, Stats, error) {
	return v.e.topKAppendAt(v.sn, dst, spec, nil)
}

// TopKAppendCancel is Engine.TopKAppendCancel evaluated at the View's
// snapshot: when done is closed the aggregation stops at its next
// scheduling step and returns ErrCanceled.
func (v View) TopKAppendCancel(dst []query.Result, spec query.Spec, done <-chan struct{}) ([]query.Result, Stats, error) {
	return v.e.topKAppendAt(v.sn, dst, spec, done)
}

// Insert appends a point to the memtable and returns its global dataset ID.
// The write path never touches index structures: sealing and tree builds are
// deferred to the background compactor, so an insert is O(dims) plus one
// snapshot publish (plus, on a WAL-backed engine, one log append and a
// shared group-commit fsync), and in-flight queries are never blocked or
// perturbed. On a WAL-backed engine the call returns only once the record
// is committed per the sync policy; a durability failure returns ErrWAL.
func (e *Engine) Insert(p []float64) (int, error) {
	id, wait, err := e.InsertAsync(p)
	if err != nil {
		return 0, err
	}
	if wait != nil {
		if err := wait(); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// InsertAsync is Insert split in two: the mutation is applied and logged
// before return, but durability is awaited by calling the returned
// CommitWait (nil when there is nothing to wait for). Batching callers —
// the sharded layer — enqueue several inserts and then wait, so one group
// commit covers them all.
func (e *Engine) InsertAsync(p []float64) (int, CommitWait, error) {
	if err := validRow(p, e.dims); err != nil {
		return 0, nil, err
	}
	e.wrMu.Lock()
	cur := e.snap.Load()
	id := cur.total
	if int64(id) > math.MaxInt32 {
		e.wrMu.Unlock()
		return 0, nil, fmt.Errorf("core: dataset ID space exhausted (%d rows)", id)
	}
	wait, err := e.logAndPublishInsert(cur, int32(id), p)
	memRows := len(e.snap.Load().memIDs)
	e.wrMu.Unlock()
	if err != nil {
		return 0, nil, err
	}
	if memRows >= e.memSize {
		e.kickCompactor()
	}
	return id, wait, nil
}

// InsertWithID is Insert with a caller-assigned global ID, which must
// exceed every ID already indexed — the sharded layer deals rows to shard
// engines this way so results carry global IDs natively.
func (e *Engine) InsertWithID(id int, p []float64) error {
	wait, err := e.InsertWithIDAsync(id, p)
	if err != nil {
		return err
	}
	if wait != nil {
		return wait()
	}
	return nil
}

// InsertWithIDAsync is InsertWithID with the durability wait split out —
// see InsertAsync.
func (e *Engine) InsertWithIDAsync(id int, p []float64) (CommitWait, error) {
	if err := validRow(p, e.dims); err != nil {
		return nil, err
	}
	if id < 0 || int64(id) > math.MaxInt32 {
		return nil, fmt.Errorf("core: ID %d outside int32 range", id)
	}
	e.wrMu.Lock()
	cur := e.snap.Load()
	if id < cur.total {
		e.wrMu.Unlock()
		return nil, fmt.Errorf("core: ID %d not above the indexed ID space (%d)", id, cur.total)
	}
	wait, err := e.logAndPublishInsert(cur, int32(id), p)
	memRows := len(e.snap.Load().memIDs)
	e.wrMu.Unlock()
	if err != nil {
		return nil, err
	}
	if memRows >= e.memSize {
		e.kickCompactor()
	}
	return wait, nil
}

// logAndPublishInsert appends the insert's WAL record (if logging) and
// publishes the post-insert snapshot. On a WAL append failure nothing is
// published: the failed mutation is invisible, exactly as if it never
// happened. Caller holds wrMu and has validated the row.
func (e *Engine) logAndPublishInsert(cur *snapshot, id int32, p []float64) (CommitWait, error) {
	lsn := cur.walLSN
	var wait CommitWait
	if e.wal != nil {
		lsn++
		var err error
		if wait, err = e.wal.appendInsert(lsn, int(id), p); err != nil {
			return nil, err
		}
	}
	e.publishInsert(cur, id, p, lsn)
	return wait, nil
}

// publishInsert builds and publishes the post-insert snapshot. Caller holds
// wrMu and has validated the row.
func (e *Engine) publishInsert(cur *snapshot, id int32, p []float64, lsn uint64) {
	ns := &snapshot{
		epoch:   cur.epoch + 1,
		segs:    cur.segs,
		tombs:   cur.tombs,
		memIDs:  append(cur.memIDs, id),
		memFlat: append(cur.memFlat, p...),
		memDead: cur.memDead,
		total:   int(id) + 1,
		live:    cur.live + 1,
		walLSN:  lsn,
		minVal:  cur.minVal,
		maxVal:  cur.maxVal,
	}
	for d, c := range p {
		if c < ns.minVal[d] || c > ns.maxVal[d] {
			// Copy-on-widen: published snapshots keep their extrema.
			ns.minVal = append([]float64(nil), cur.minVal...)
			ns.maxVal = append([]float64(nil), cur.maxVal...)
			for dd, cc := range p {
				ns.minVal[dd] = math.Min(ns.minVal[dd], cc)
				ns.maxVal[dd] = math.Max(ns.maxVal[dd], cc)
			}
			break
		}
	}
	e.snap.Store(ns)
}

// Remove deletes a point by dataset ID (tombstoning its row), reporting
// whether it was live. Sealed segments are never rewritten here: the
// tombstone masks the row at query time, and the compactor reclaims the
// space when the segment's dead fraction crosses its rewrite threshold.
// On a WAL-backed engine Remove waits for durability but drops the error;
// callers that must surface it (the serving layer) use RemoveDurable.
func (e *Engine) Remove(id int) bool {
	ok, wait, _ := e.RemoveAsync(id)
	if wait != nil {
		wait()
	}
	return ok
}

// RemoveDurable is Remove with the durability outcome: ok reports whether
// the row was live, err a WAL append or commit failure (ErrWAL). On an
// append failure the tombstone is not applied.
func (e *Engine) RemoveDurable(id int) (bool, error) {
	ok, wait, err := e.RemoveAsync(id)
	if err != nil {
		return false, err
	}
	if wait != nil {
		if err := wait(); err != nil {
			return ok, err
		}
	}
	return ok, nil
}

// RemoveAsync is Remove with the durability wait split out — see
// InsertAsync. A remove that found no live row returns (false, nil, nil)
// and logs nothing.
func (e *Engine) RemoveAsync(id int) (bool, CommitWait, error) {
	e.wrMu.Lock()
	cur := e.snap.Load()
	seg, local, ok := cur.locate(id)
	if !ok || !cur.alive(seg, local) {
		e.wrMu.Unlock()
		return false, nil, nil
	}
	lsn := cur.walLSN
	var wait CommitWait
	if e.wal != nil {
		lsn++
		var err error
		if wait, err = e.wal.appendRemove(lsn, id); err != nil {
			e.wrMu.Unlock()
			return false, nil, err
		}
	}
	e.removeLocked(cur, id, lsn)
	e.wrMu.Unlock()
	return true, wait, nil
}

// removeLocked publishes the post-remove snapshot for a row known present,
// reporting whether it was live (and therefore tombstoned). Caller holds
// wrMu.
func (e *Engine) removeLocked(cur *snapshot, id int, lsn uint64) bool {
	seg, local, ok := cur.locate(id)
	if !ok || !cur.alive(seg, local) {
		return false
	}
	ns := &snapshot{
		epoch: cur.epoch + 1,
		segs:  cur.segs, tombs: cur.tombs,
		memIDs: cur.memIDs, memFlat: cur.memFlat, memDead: cur.memDead,
		total: cur.total, live: cur.live - 1,
		walLSN: lsn,
		minVal: cur.minVal, maxVal: cur.maxVal,
	}
	if seg < 0 {
		ns.memDead = bitSetCopy(cur.memDead, local)
	} else {
		ns.tombs = append([][]uint64(nil), cur.tombs...)
		ns.tombs[seg] = bitSetCopy(cur.tombs[seg], local)
	}
	e.snap.Store(ns)
	return true
}

// Alive reports whether a dataset ID names a live (inserted, not removed)
// row in the engine's current snapshot.
func (e *Engine) Alive(id int) bool {
	sn := e.snap.Load()
	seg, local, ok := sn.locate(id)
	return ok && sn.alive(seg, local)
}
