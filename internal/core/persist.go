package core

// On-disk persistence: a sealed-segment engine serializes to a versioned
// little-endian binary format and loads back bit-exactly — same answers,
// same Bytes — without re-deriving anything data-dependent. The file
// carries the engine's structural identity (roles, the fixed subproblem
// layout, the tree configuration) plus every segment's raw rows, global
// IDs, and tombstones; index structures (trees, sorted lists) are NOT
// serialized but rebuilt at load, which is deterministic: a segment's trees
// are a pure function of its rows and the tree configuration, so the
// reloaded engine's segment stack is structurally identical to the saved
// one. Runtime knobs (scheduler, plan cache, compaction) are not part of
// the file; Load takes them fresh.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/topk"
)

// persistVersion identifies the core engine's section of the file format.
// Bump on any incompatible change; Load rejects unknown versions outright
// rather than guessing. Version 2 added the snapshot's WAL sequence number
// (walLSN); version-1 files load with walLSN 0. Version 3 switched segment
// coordinate blocks from row-major to the segments' native dimension-major
// column layout and added the engine's column width; v1/v2 files still load
// (their row-major blocks are transposed once at read) and come up as
// 64-bit-column engines.
const persistVersion = 3

// maxPersistDims caps the dimensionality Load will accept — a sanity bound
// that turns a corrupt header into an error instead of an absurd
// allocation.
const maxPersistDims = 1 << 16

// RuntimeOptions are the knobs Load applies to a persisted engine. The
// structural configuration — roles, pairing layout, tree shape — comes from
// the file and cannot be overridden: it determines the answers' exactness
// contract.
type RuntimeOptions struct {
	Scheduler         Scheduler
	DisablePlanCache  bool
	MemtableSize      int
	DisableCompaction bool
	// MaxSegmentRows and Pool mirror the Config fields of the same names:
	// the sealed-segment row cap and the intra-query fan-out runner. Both
	// are runtime concerns (neither changes answers), so Load takes them
	// fresh like the scheduler. Note the column width is NOT here — it is
	// structural (it decides what segment storage is materialized) and comes
	// from the file.
	MaxSegmentRows int
	Pool           Runner
}

type countingWriter struct {
	w   io.Writer
	err error
}

func (cw *countingWriter) write(v any) {
	if cw.err == nil {
		cw.err = binary.Write(cw.w, binary.LittleEndian, v)
	}
}

type countingReader struct {
	r   io.Reader
	err error
}

func (cr *countingReader) read(v any) {
	if cr.err == nil {
		cr.err = binary.Read(cr.r, binary.LittleEndian, v)
	}
}

func (cr *countingReader) u32() uint32 {
	var v uint32
	cr.read(&v)
	return v
}

func (cr *countingReader) u64() uint64 {
	var v uint64
	cr.read(&v)
	return v
}

// Save serializes the engine's current snapshot. It is lock-free like every
// read path: one atomic snapshot load pins the content, and concurrent
// Inserts, Removes, and compactions continue unhindered (they land in later
// snapshots and simply are not part of the file).
func (e *Engine) Save(w io.Writer) error {
	return e.saveSnapshot(w, e.snap.Load())
}

// saveSnapshot serializes one pinned snapshot — Save for the current one,
// the WAL's checkpoint writer for whichever snapshot it pinned.
func (e *Engine) saveSnapshot(w io.Writer, sn *snapshot) error {
	bw := bufio.NewWriter(w)
	cw := &countingWriter{w: bw}

	cw.write(uint32(persistVersion))
	cw.write(uint32(e.dims))
	for _, r := range e.roles {
		cw.write(uint8(r))
	}
	cw.write(uint8(e.pairing))
	cw.write(uint8(e.colWidth))

	// Fixed layout.
	lo := &e.layout
	adaptive := uint8(0)
	if lo.adaptive {
		adaptive = 1
	}
	cw.write(adaptive)
	if lo.adaptive {
		cw.write(uint32(len(lo.gridRep)))
		for _, d := range lo.gridRep {
			cw.write(uint32(d))
		}
		cw.write(uint32(len(lo.gridAtt)))
		for _, d := range lo.gridAtt {
			cw.write(uint32(d))
		}
	} else {
		cw.write(uint32(len(lo.pairs)))
		for _, pr := range lo.pairs {
			cw.write(uint32(pr.Rep))
			cw.write(uint32(pr.Attr))
		}
		cw.write(uint32(len(lo.lone)))
		for _, d := range lo.lone {
			cw.write(uint32(d))
		}
	}

	// Tree configuration: the exact inputs segment rebuilds need. Angles are
	// persisted as their (Alpha, Beta) pairs, not degrees, so the reloaded
	// trees blend over bit-identical projection coefficients.
	cw.write(uint32(e.treeCfg.Branching))
	cw.write(uint32(e.treeCfg.LeafCap))
	cw.write(e.treeCfg.RebuildThreshold)
	cw.write(uint32(len(e.treeCfg.Angles)))
	for _, a := range e.treeCfg.Angles {
		cw.write(a.Alpha)
		cw.write(a.Beta)
	}

	cw.write(sn.minVal)
	cw.write(sn.maxVal)
	cw.write(uint64(sn.total))
	cw.write(uint64(sn.live))
	cw.write(sn.walLSN)

	writeBitset := func(bits []uint64) {
		cw.write(uint64(len(bits)))
		if len(bits) > 0 {
			cw.write(bits)
		}
	}
	cw.write(uint32(len(sn.segs)))
	for i, seg := range sn.segs {
		cw.write(uint64(seg.rows))
		cw.write(seg.ids)
		cw.write(seg.cols) // dimension-major since format v3
		writeBitset(sn.tombs[i])
	}
	cw.write(uint64(len(sn.memIDs)))
	cw.write(sn.memIDs)
	cw.write(sn.memFlat)
	writeBitset(sn.memDead)

	if cw.err != nil {
		return fmt.Errorf("core: save: %w", cw.err)
	}
	return bw.Flush()
}

// Load reconstructs an engine from a Save stream, rebuilding every sealed
// segment's trees and lists deterministically from the persisted rows. The
// reloaded engine answers byte-identically to the one that was saved and
// reports the same Bytes (the only state not round-tripped is runtime: pool
// warmth, plan cache contents, in-flight compaction).
//
// Load consumes exactly the engine's section of the stream — it does not
// buffer ahead — so several engines concatenate in one file (the sharded
// format relies on this). Callers should hand in an already-buffered
// reader.
func Load(r io.Reader, opt RuntimeOptions) (*Engine, error) {
	cr := &countingReader{r: r}
	fail := func(format string, args ...any) (*Engine, error) {
		return nil, fmt.Errorf("core: load: "+format, args...)
	}

	version := cr.u32()
	if cr.err == nil && (version < 1 || version > persistVersion) {
		return fail("unsupported format version %d (have %d)", version, persistVersion)
	}
	dims := int(cr.u32())
	if cr.err == nil && dims > maxPersistDims {
		return fail("implausible dimensionality %d", dims)
	}
	if cr.err != nil {
		return fail("%v", cr.err)
	}
	roles := make([]query.Role, dims)
	for d := range roles {
		var b uint8
		cr.read(&b)
		roles[d] = query.Role(b)
		switch roles[d] {
		case query.Ignored, query.Attractive, query.Repulsive:
		default:
			return fail("unknown role %d for dimension %d", b, d)
		}
	}
	var pairing uint8
	cr.read(&pairing)
	colWidth := 64
	if version >= 3 {
		var wb uint8
		cr.read(&wb)
		if cr.err == nil && wb != 32 && wb != 64 {
			return fail("unsupported column width %d", wb)
		}
		colWidth = int(wb)
	}

	dim := func(v uint32) (int, error) {
		if int(v) >= dims {
			return 0, fmt.Errorf("core: load: dimension %d out of range (%d dims)", v, dims)
		}
		return int(v), nil
	}
	var lo layout
	var adaptive uint8
	cr.read(&adaptive)
	if cr.err == nil && adaptive == 1 {
		lo.adaptive = true
		lo.gridPos = make([]int32, dims)
		nRep := int(cr.u32())
		if cr.err != nil || nRep > dims {
			return fail("bad grid row count")
		}
		lo.gridRep = make([]int, nRep)
		for i := range lo.gridRep {
			d, err := dim(cr.u32())
			if cr.err == nil && err != nil {
				return nil, err
			}
			lo.gridRep[i] = d
			lo.gridPos[d] = int32(i)
		}
		nAtt := int(cr.u32())
		if cr.err != nil || nAtt > dims {
			return fail("bad grid column count")
		}
		lo.gridAtt = make([]int, nAtt)
		for i := range lo.gridAtt {
			d, err := dim(cr.u32())
			if cr.err == nil && err != nil {
				return nil, err
			}
			lo.gridAtt[i] = d
			lo.gridPos[d] = int32(i)
		}
	} else if cr.err == nil {
		nPairs := int(cr.u32())
		if cr.err != nil || nPairs > dims {
			return fail("bad pair count")
		}
		lo.pairs = make([]Pair, nPairs)
		for i := range lo.pairs {
			rp, err1 := dim(cr.u32())
			ap, err2 := dim(cr.u32())
			if cr.err == nil && (err1 != nil || err2 != nil) {
				return fail("pair %d names an out-of-range dimension", i)
			}
			lo.pairs[i] = Pair{Rep: rp, Attr: ap}
		}
		nLone := int(cr.u32())
		if cr.err != nil || nLone > dims {
			return fail("bad lone count")
		}
		lo.lone = make([]int, nLone)
		for i := range lo.lone {
			d, err := dim(cr.u32())
			if cr.err == nil && err != nil {
				return nil, err
			}
			lo.lone[i] = d
		}
	}

	var treeCfg topk.Config
	treeCfg.Branching = int(cr.u32())
	treeCfg.LeafCap = int(cr.u32())
	cr.read(&treeCfg.RebuildThreshold)
	nAngles := int(cr.u32())
	if cr.err != nil || nAngles > 1024 {
		return fail("bad angle count")
	}
	for i := 0; i < nAngles; i++ {
		var a geom.Angle
		cr.read(&a.Alpha)
		cr.read(&a.Beta)
		treeCfg.Angles = append(treeCfg.Angles, a)
	}

	sn := &snapshot{
		minVal: make([]float64, dims),
		maxVal: make([]float64, dims),
	}
	cr.read(sn.minVal)
	cr.read(sn.maxVal)
	sn.total = int(cr.u64())
	sn.live = int(cr.u64())
	if version >= 2 {
		sn.walLSN = cr.u64()
	}
	if cr.err != nil || sn.total < 0 || int64(sn.total) > math.MaxInt32+1 || sn.live < 0 || sn.live > sn.total {
		return fail("implausible row counts (total %d, live %d)", sn.total, sn.live)
	}

	if opt.MemtableSize <= 0 {
		opt.MemtableSize = defaultMemtableSize
	}
	if !opt.Scheduler.valid() {
		return fail("unknown scheduler %v", opt.Scheduler)
	}
	if opt.MaxSegmentRows < 0 {
		return fail("negative segment row cap %d", opt.MaxSegmentRows)
	}
	e := &Engine{
		dims:        dims,
		roles:       roles,
		pairing:     Pairing(pairing),
		layout:      lo,
		treeCfg:     treeCfg,
		sched:       opt.Scheduler,
		memSize:     opt.MemtableSize,
		noCompact:   opt.DisableCompaction,
		colWidth:    colWidth,
		maxSegRows:  opt.MaxSegmentRows,
		pool:        opt.Pool,
		noPlanCache: opt.DisablePlanCache,
	}

	readBitset := func() ([]uint64, error) {
		words := int(cr.u64())
		if cr.err != nil {
			return nil, cr.err
		}
		if words == 0 {
			return nil, nil
		}
		if words > sn.total/64+1 {
			return nil, fmt.Errorf("core: load: implausible bitset size %d", words)
		}
		bits := make([]uint64, words)
		cr.read(bits)
		return bits, cr.err
	}
	readRows := func() (ids []int32, flat []float64, err error) {
		rows := int(cr.u64())
		if cr.err != nil {
			return nil, nil, cr.err
		}
		if rows < 0 || rows > sn.total {
			return nil, nil, fmt.Errorf("core: load: implausible row count %d (total %d)", rows, sn.total)
		}
		ids = make([]int32, rows)
		flat = make([]float64, rows*dims)
		cr.read(ids)
		cr.read(flat)
		if cr.err != nil {
			return nil, nil, cr.err
		}
		for i, id := range ids {
			if id < 0 || (i > 0 && id <= ids[i-1]) || int(id) >= sn.total {
				return nil, nil, fmt.Errorf("core: load: ids not ascending within [0, %d)", sn.total)
			}
		}
		for _, c := range flat {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, nil, fmt.Errorf("core: load: non-finite coordinate %v", c)
			}
		}
		return ids, flat, nil
	}

	nSegs := int(cr.u32())
	if cr.err != nil || nSegs > sn.total+1 {
		return fail("bad segment count")
	}
	for si := 0; si < nSegs; si++ {
		ids, block, err := readRows()
		if err != nil {
			return nil, err
		}
		if len(ids) == 0 {
			return fail("segment %d is empty", si)
		}
		if len(sn.segs) > 0 {
			prev := sn.segs[len(sn.segs)-1]
			if ids[0] <= prev.ids[prev.rows-1] {
				return fail("segment %d breaks the ascending-ID stack invariant", si)
			}
		}
		// v3 blocks are the segments' native dimension-major columns; older
		// files carry row-major blocks and transpose once here.
		cols := block
		if version < 3 {
			cols = transposeToCols(block, len(ids), dims)
		}
		seg, err := buildSegment(cols, ids, dims, &e.layout, e.treeCfg, e.colWidth)
		if err != nil {
			return nil, err
		}
		tomb, err := readBitset()
		if err != nil {
			return fail("%v", err)
		}
		sn.segs = append(sn.segs, seg)
		sn.tombs = append(sn.tombs, tomb)
	}
	var err error
	if sn.memIDs, sn.memFlat, err = readRows(); err != nil {
		return nil, err
	}
	if len(sn.segs) > 0 && len(sn.memIDs) > 0 {
		prev := sn.segs[len(sn.segs)-1]
		if sn.memIDs[0] <= prev.ids[prev.rows-1] {
			return fail("memtable breaks the ascending-ID stack invariant")
		}
	}
	if sn.memDead, err = readBitset(); err != nil {
		return fail("%v", err)
	}
	if cr.err != nil {
		return fail("%v", cr.err)
	}

	// Cross-check the persisted live count against the actual tombstones —
	// a mismatch means a corrupt or truncated file, and live drives Len().
	counted := 0
	for i, seg := range sn.segs {
		counted += seg.rows - popcount(sn.tombs[i])
	}
	counted += len(sn.memIDs) - popcount(sn.memDead)
	if counted != sn.live {
		return fail("live count %d disagrees with tombstones (%d live rows)", sn.live, counted)
	}

	e.snap.Store(sn)
	e.initCtxPool()
	return e, nil
}
