package core

import (
	"fmt"

	"repro/internal/query"
)

// Query planning: deriving, from a query spec, the set of subproblems the §5
// aggregation actually has to consult — the surviving (nonzero-weight) 2D
// pairs, the surviving 1D lone dimensions, the active dimensions whose
// weights feed the signed score kernel, and the dimensions whose reach terms
// size the float-error pad. The derivation is a pure function of the query's
// per-dimension *shape* — its role and whether its weight is zero — never of
// the weight magnitudes or the query point, so engines memoize it per shape
// signature: repeated traffic shapes (the common case for a service fronting
// one application) skip plan derivation entirely and the hot path starts at
// subproblem construction.

// planDim is one active dimension of a plan: the dimension index and the
// sign its weight carries in the folded score kernel (+1 repulsive,
// −1 attractive).
type planDim struct {
	d    int32
	sign int8
}

// queryPlan is the memoized derivation for one query shape. Plans are
// immutable once published to the cache and may be read concurrently; the
// scratch plan embedded in each pooled queryCtx is reused for shapes that
// bypass the cache.
type queryPlan struct {
	// err is the role-compatibility failure for this shape, if any. A shape
	// that queries a dimension under the wrong role always fails, so the
	// error is part of the plan.
	err error
	// active lists the dimensions with an engaged role and a nonzero weight,
	// with the score-kernel sign folded in.
	active []planDim
	// pairs indexes the engine layout's pair list: the 2D subproblems with
	// at least one nonzero weight. Pairs with both weights zero contribute
	// nothing and are dropped; their bound is 0 by omission. The same pairs
	// also name the reach terms of the float pad. Because the layout is
	// fixed at the engine level, the same indices select the right tree in
	// every sealed segment. Fixed-pairing engines only.
	pairs []int32
	// lone lists ordinals into the layout's lone-dimension list (not raw
	// dimension numbers: the ordinal also indexes each segment's sorted
	// lists) whose dimension has nonzero weight. Fixed-pairing engines only.
	lone []int32
	// activeRep and activeAtt split the active set by role, in dimension
	// order — the inputs the adaptive planner's per-query weight sort zips
	// into a bijection. Adaptive engines only.
	activeRep []int32
	activeAtt []int32
}

// maxPlanDims bounds the dimensionality the packed shape signature covers:
// 3 bits per dimension (role plus zero-weight flag) in a uint64. Higher-
// dimensional engines derive plans per query into pooled scratch instead.
const maxPlanDims = 21

// maxPlanCacheEntries caps the published cache. Real traffic has a handful
// of shapes; the cap only matters under adversarial shape churn, where the
// cache stops admitting new entries and extra shapes are derived into
// scratch, keeping memory bounded.
const maxPlanCacheEntries = 1 << 10

// planSignature packs the query's per-dimension shape — role (2 bits) and
// weight-is-zero flag (1 bit) — into a cache key. The second result is false
// when the dimensionality exceeds what the packing covers. Roles have been
// validated by spec.Validate, so each fits its 2 bits.
func planSignature(spec query.Spec) (uint64, bool) {
	if len(spec.Roles) > maxPlanDims {
		return 0, false
	}
	var sig uint64
	for d, r := range spec.Roles {
		b := uint64(r)
		if r != query.Ignored && spec.Weights[d] == 0 {
			b |= 4
		}
		sig |= b << (3 * uint(d))
	}
	return sig, true
}

// derivePlanInto computes the plan for spec's shape into p, reusing p's
// slices. It is the single source of truth both the cached and the scratch
// paths share.
func (e *Engine) derivePlanInto(p *queryPlan, spec query.Spec) {
	p.err = nil
	p.active = p.active[:0]
	p.pairs = p.pairs[:0]
	p.lone = p.lone[:0]
	p.activeRep = p.activeRep[:0]
	p.activeAtt = p.activeAtt[:0]
	for d := 0; d < e.dims; d++ {
		switch spec.Roles[d] {
		case query.Ignored:
			// contributes nothing
		case e.roles[d]:
			if spec.Weights[d] != 0 {
				sign := int8(-1)
				if e.roles[d] == query.Repulsive {
					sign = 1
				}
				p.active = append(p.active, planDim{d: int32(d), sign: sign})
				if e.layout.adaptive {
					if sign > 0 {
						p.activeRep = append(p.activeRep, int32(d))
					} else {
						p.activeAtt = append(p.activeAtt, int32(d))
					}
				}
			}
		default:
			p.err = fmt.Errorf("core: dimension %d queried as %v but indexed as %v",
				d, spec.Roles[d], e.roles[d])
			return
		}
	}
	if e.layout.adaptive {
		return // pair selection happens per query over activeRep/activeAtt
	}
	// effW mirrors the weight the aggregation will use: the spec weight when
	// the dimension's role is engaged, zero when demoted to Ignored.
	effW := func(d int) float64 {
		if spec.Roles[d] == e.roles[d] {
			return spec.Weights[d]
		}
		return 0
	}
	for i, pr := range e.layout.pairs {
		if effW(pr.Rep) != 0 || effW(pr.Attr) != 0 {
			p.pairs = append(p.pairs, int32(i))
		}
	}
	for li, d := range e.layout.lone {
		if effW(d) != 0 {
			p.lone = append(p.lone, int32(li))
		}
	}
}

// planFor resolves the plan for spec: a cache hit returns the published
// immutable plan, a miss derives and (size cap permitting) publishes a fresh
// one, and shapes outside the signature's coverage — or engines built with
// the cache disabled — derive into the pooled scratch plan. The hit path
// performs no allocation and no locking (an atomic pointer load plus one map
// read), which is what keeps TopKAppend zero-alloc in steady state.
func (e *Engine) planFor(spec query.Spec, scratch *queryPlan) (pl *queryPlan, hit bool) {
	if e.noPlanCache {
		e.derivePlanInto(scratch, spec)
		return scratch, false
	}
	sig, ok := planSignature(spec)
	if !ok {
		e.derivePlanInto(scratch, spec)
		return scratch, false
	}
	if m := e.plans.Load(); m != nil {
		if p, ok := (*m)[sig]; ok {
			return p, true
		}
	}
	p := new(queryPlan)
	e.derivePlanInto(p, spec)
	// Error plans are not published: failing shapes are a cold path that is
	// cheap to re-derive, and caching them would let invalid-shape churn
	// fill the capped cache and permanently lock legitimate shapes out.
	if p.err == nil {
		e.publishPlan(sig, p)
	}
	return p, false
}

// publishPlan inserts a plan under the copy-on-write discipline: readers
// load the map pointer atomically and never see a map being written, writers
// serialize on planMu and install a fresh copy. Concurrent misses on the
// same signature publish equivalent plans; last write wins.
func (e *Engine) publishPlan(sig uint64, p *queryPlan) {
	e.planMu.Lock()
	defer e.planMu.Unlock()
	old := e.plans.Load()
	n := 0
	if old != nil {
		if _, exists := (*old)[sig]; !exists && len(*old) >= maxPlanCacheEntries {
			return // cap reached: serve this shape from derivation
		}
		n = len(*old)
	}
	m := make(map[uint64]*queryPlan, n+1)
	if old != nil {
		for k, v := range *old {
			m[k] = v
		}
	}
	m[sig] = p
	e.plans.Store(&m)
}
