package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baseline/brs"
	"repro/internal/baseline/pe"
	"repro/internal/baseline/scan"
	"repro/internal/baseline/ta"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/topk"
)

const eps = 1e-9

// engineUnderTest is satisfied by every engine in the module.
type engineUnderTest interface {
	TopK(query.Spec) ([]query.Result, error)
}

func randomSpec(rng *rand.Rand, data [][]float64, roles []query.Role) query.Spec {
	dims := len(roles)
	spec := query.Spec{
		Point:   make([]float64, dims),
		K:       rng.Intn(10) + 1,
		Roles:   append([]query.Role(nil), roles...),
		Weights: make([]float64, dims),
	}
	for d := 0; d < dims; d++ {
		spec.Point[d] = rng.Float64()*1.4 - 0.2 // mostly inside, sometimes outside [0,1]
		spec.Weights[d] = rng.Float64()
	}
	_ = data
	return spec
}

// randomRoles generates a role vector with at least one active dimension.
func randomRoles(rng *rand.Rand, dims int) []query.Role {
	for {
		roles := make([]query.Role, dims)
		active := 0
		for d := range roles {
			switch rng.Intn(4) {
			case 0:
				roles[d] = query.Ignored
			case 1:
				roles[d] = query.Attractive
				active++
			default:
				roles[d] = query.Repulsive
				active++
			}
		}
		if active > 0 {
			return roles
		}
	}
}

func checkAgainst(t *testing.T, name string, eng engineUnderTest, truth *scan.Engine, spec query.Spec) {
	t.Helper()
	got, err := eng.TopK(spec)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	want, err := truth.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d (spec %+v)", name, len(got), len(want), spec)
	}
	for i := range want {
		tol := eps * math.Max(1, math.Abs(want[i].Score))
		if math.Abs(got[i].Score-want[i].Score) > tol {
			t.Fatalf("%s: result %d score %v, want %v (spec roles=%v weights=%v k=%d)",
				name, i, got[i].Score, want[i].Score, spec.Roles, spec.Weights, spec.K)
		}
		// Scores must be consistent with the reported IDs.
		if recomputed := spec.Score(truthData(truth, got[i].ID)); math.Abs(recomputed-got[i].Score) > tol {
			t.Fatalf("%s: result %d reports score %v but point %d scores %v",
				name, i, got[i].Score, got[i].ID, recomputed)
		}
	}
}

// truthData reaches into the scan engine's dataset via a tiny shim: scan
// engines are built over the same slice the test holds, so the test passes
// it explicitly instead. Kept as a package-level variable to avoid capturing
// in every call.
var currentData [][]float64

func truthData(_ *scan.Engine, id int) []float64 { return currentData[id] }

// TestAllEnginesAgreeWithScan is the module's central integration test:
// every engine must produce scan-identical score sequences on randomized
// workloads over all three distributions, dimensionalities 2–8, random
// roles, weights, and k.
func TestAllEnginesAgreeWithScan(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	dists := []dataset.Distribution{dataset.Uniform, dataset.Correlated, dataset.AntiCorrelated}
	for trial := 0; trial < 25; trial++ {
		dims := 2 + rng.Intn(7)
		n := 50 + rng.Intn(400)
		data := dataset.Generate(dists[trial%3], n, dims, int64(trial))
		currentData = data
		roles := randomRoles(rng, dims)

		truth, err := scan.New(data)
		if err != nil {
			t.Fatal(err)
		}
		taEng, err := ta.New(data)
		if err != nil {
			t.Fatal(err)
		}
		brsEng, err := brs.New(data)
		if err != nil {
			t.Fatal(err)
		}
		peEng, err := pe.New(data)
		if err != nil {
			t.Fatal(err)
		}
		sdEng, err := New(data, Config{Roles: roles, Tree: topk.Config{Branching: 2 + rng.Intn(7)}})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 8; qi++ {
			spec := randomSpec(rng, data, roles)
			checkAgainst(t, "ta", taEng, truth, spec)
			checkAgainst(t, "brs", brsEng, truth, spec)
			checkAgainst(t, "pe", peEng, truth, spec)
			checkAgainst(t, "sd", sdEng, truth, spec)
		}
	}
}

// TestPairingStrategiesAllCorrect: every pairing strategy yields the same
// (scan-identical) answers — the mapping only affects performance.
func TestPairingStrategiesAllCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	data := dataset.Generate(dataset.AntiCorrelated, 300, 6, 5)
	currentData = data
	roles := []query.Role{
		query.Repulsive, query.Repulsive, query.Repulsive,
		query.Attractive, query.Attractive, query.Attractive,
	}
	truth, _ := scan.New(data)
	for _, pairing := range []Pairing{PairAdaptive, PairInOrder, PairByCorrelation, PairByVariance, PairNone} {
		eng, err := New(data, Config{Roles: roles, Pairing: pairing})
		if err != nil {
			t.Fatalf("%v: %v", pairing, err)
		}
		wantPairs := 3
		if pairing == PairNone || pairing == PairAdaptive {
			wantPairs = 0 // adaptive defers the bijection to plan time
		}
		if got := len(eng.Pairs()); got != wantPairs {
			t.Fatalf("%v: %d pairs, want %d", pairing, got, wantPairs)
		}
		if got, want := eng.Adaptive(), pairing == PairAdaptive; got != want {
			t.Fatalf("%v: Adaptive() = %v, want %v", pairing, got, want)
		}
		for qi := 0; qi < 10; qi++ {
			spec := randomSpec(rng, data, roles)
			checkAgainst(t, pairing.String(), eng, truth, spec)
		}
	}
}

func TestPairingUnbalancedRoles(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	data := dataset.Generate(dataset.Uniform, 200, 6, 9)
	currentData = data
	truth, _ := scan.New(data)
	// 0..3 attractive dimensions of 6 (the Figure 7i/7j sweep): pairs =
	// min(a, 6-a) under the fixed in-order zip; the adaptive default must
	// answer identically with its plan-time bijection.
	for a := 0; a <= 3; a++ {
		roles := make([]query.Role, 6)
		for d := range roles {
			if d < a {
				roles[d] = query.Attractive
			} else {
				roles[d] = query.Repulsive
			}
		}
		eng, err := New(data, Config{Roles: roles, Pairing: PairInOrder})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(eng.Pairs()), a; got != want {
			t.Fatalf("a=%d: %d pairs, want %d", a, got, want)
		}
		adEng, err := New(data, Config{Roles: roles})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := adEng.Adaptive(), a > 0; got != want {
			// With zero attractive dims the grid is empty and the adaptive
			// default falls back to the fixed structure.
			t.Fatalf("a=%d: Adaptive() = %v, want %v", a, got, want)
		}
		for qi := 0; qi < 6; qi++ {
			spec := randomSpec(rng, data, roles)
			checkAgainst(t, "sd", eng, truth, spec)
			checkAgainst(t, "sd-adaptive", adEng, truth, spec)
		}
	}
}

func TestRoleDemotionAndFlip(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 100, 3, 11)
	currentData = data
	roles := []query.Role{query.Repulsive, query.Attractive, query.Repulsive}
	eng, err := New(data, Config{Roles: roles})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := scan.New(data)
	// Demoting an active dimension to Ignored is allowed.
	spec := query.Spec{
		Point:   []float64{0.5, 0.5, 0.5},
		K:       3,
		Roles:   []query.Role{query.Repulsive, query.Ignored, query.Repulsive},
		Weights: []float64{1, 0, 0.5},
	}
	checkAgainst(t, "demoted", eng, truth, spec)
	// Flipping a role is rejected.
	spec.Roles = []query.Role{query.Attractive, query.Ignored, query.Repulsive}
	if _, err := eng.TopK(spec); err == nil {
		t.Fatal("role flip accepted")
	}
}

func TestZeroWeights(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 60, 2, 13)
	currentData = data
	roles := []query.Role{query.Repulsive, query.Attractive}
	eng, err := New(data, Config{Roles: roles})
	if err != nil {
		t.Fatal(err)
	}
	truth, _ := scan.New(data)
	// One zero weight: the pair degenerates to a 1D problem (θ = 0° / 90°).
	for _, w := range [][]float64{{1, 0}, {0, 1}} {
		spec := query.Spec{Point: []float64{0.3, 0.7}, K: 5, Roles: roles, Weights: w}
		checkAgainst(t, "zero-weight", eng, truth, spec)
	}
	// All-zero weights: every point ties at score 0.
	spec := query.Spec{Point: []float64{0.3, 0.7}, K: 5, Roles: roles, Weights: []float64{0, 0}}
	res, err := eng.TopK(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("all-zero weights: %d results, want 5", len(res))
	}
	for _, r := range res {
		if r.Score != 0 {
			t.Fatalf("all-zero weights: score %v, want 0", r.Score)
		}
	}
}

func TestBuildValidation(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}}
	if _, err := New(data, Config{Roles: []query.Role{query.Repulsive}}); err == nil {
		t.Error("roles length mismatch accepted")
	}
	if _, err := New(data, Config{Roles: []query.Role{query.Repulsive, query.Role(77)}}); err == nil {
		t.Error("unknown role accepted")
	}
	if _, err := New([][]float64{{1, math.NaN()}}, Config{Roles: []query.Role{query.Repulsive, query.Attractive}}); err == nil {
		t.Error("NaN coordinate accepted")
	}
	if _, err := New([][]float64{{1, 2}, {3}}, Config{Roles: []query.Role{query.Repulsive, query.Attractive}}); err == nil {
		t.Error("ragged data accepted")
	}
}

func TestEmptyDataset(t *testing.T) {
	eng, err := New(nil, Config{Roles: nil})
	if err != nil {
		t.Fatal(err)
	}
	spec := query.Spec{Point: nil, K: 1, Roles: nil, Weights: nil}
	if _, err := eng.TopK(spec); err == nil {
		t.Fatal("spec with no dims accepted")
	}
}

func TestInsertRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	data := dataset.Generate(dataset.Uniform, 80, 4, 17)
	roles := []query.Role{query.Repulsive, query.Attractive, query.Repulsive, query.Attractive}
	eng, err := New(data, Config{Roles: roles})
	if err != nil {
		t.Fatal(err)
	}
	live := map[int][]float64{}
	for i, p := range data {
		live[i] = p
	}
	for step := 0; step < 120; step++ {
		if rng.Intn(3) == 0 && len(live) > 5 {
			var victim int
			for id := range live {
				victim = id
				break
			}
			if !eng.Remove(victim) {
				t.Fatalf("Remove(%d) = false", victim)
			}
			delete(live, victim)
		} else {
			p := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			id, err := eng.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			live[id] = p
		}
	}
	if eng.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", eng.Len(), len(live))
	}
	// Compare against a scan over the live rows.
	var liveData [][]float64
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	for _, id := range ids {
		liveData = append(liveData, live[id])
	}
	truth, _ := scan.New(liveData)
	for qi := 0; qi < 10; qi++ {
		spec := randomSpec(rng, liveData, roles)
		got, err := eng.TopK(spec)
		if err != nil {
			t.Fatal(err)
		}
		want, err := truth.TopK(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("after churn: %d results, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > eps*math.Max(1, math.Abs(want[i].Score)) {
				t.Fatalf("after churn result %d: %v, want %v", i, got[i].Score, want[i].Score)
			}
			if !eng.Alive(got[i].ID) {
				t.Fatalf("tombstoned point %d returned", got[i].ID)
			}
		}
	}
	if eng.Remove(eng.snap.Load().total + 5) {
		t.Fatal("removed an out-of-range id")
	}
}

func TestBytesPositive(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 500, 4, 19)
	roles := []query.Role{query.Repulsive, query.Attractive, query.Repulsive, query.Repulsive}
	eng, err := New(data, Config{Roles: roles})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Bytes() <= 0 {
		t.Fatal("Bytes() not positive")
	}
}

// TestBytesEstimate pins the resident-size formula layer by layer: every
// sealed segment contributes its index structures (trees or grid, lists),
// its flat row block, its global-ID map, and its tombstone bitset; the
// memtable contributes its ID, row, and dead arrays; the engine adds the
// per-dimension extrema. A drifting estimate silently breaks capacity
// planning.
func TestBytesEstimate(t *testing.T) {
	const n, dims = 500, 4
	data := dataset.Generate(dataset.Uniform, n, dims, 19)
	roles := []query.Role{query.Repulsive, query.Attractive, query.Repulsive, query.Repulsive}
	eng, err := New(data, Config{Roles: roles, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	perLayer := func(sn *snapshot) (structures, want int) {
		for i, seg := range sn.segs {
			segStruct := 0
			for _, tr := range seg.trees {
				segStruct += tr.Bytes()
			}
			for _, tr := range seg.grid {
				segStruct += tr.Bytes()
			}
			for _, l := range seg.lists {
				segStruct += l.Len() * 12
			}
			structures += segStruct
			want += segStruct
			want += 8 * len(seg.cols)    // dimension-major column block
			want += 4 * len(seg.cols32)  // narrow sweep copy (float32 engines)
			want += 8 * len(seg.qerr)    // per-dimension quantization pads
			want += 4 * len(seg.ids)     // global-ID map
			want += 8 * len(sn.tombs[i]) // tombstone bitset words
		}
		want += 4 * len(sn.memIDs)  // memtable IDs
		want += 8 * len(sn.memFlat) // memtable rows
		want += 8 * len(sn.memDead) // memtable tombstone words
		want += 8 * 2 * dims        // minVal + maxVal
		return structures, want
	}
	structures, want := perLayer(eng.snap.Load())
	if got := eng.Bytes(); got != want {
		t.Fatalf("Bytes() = %d, want %d (structures %d)", got, want, structures)
	}
	// The dataset-side arrays must actually be counted: the estimate has to
	// exceed the index structures alone by at least the flat copy.
	if got := eng.Bytes(); got < structures+8*n*dims {
		t.Fatalf("Bytes() = %d undercounts the flat copy (structures alone: %d)", got, structures)
	}
	// Inserts land in the memtable: the estimate grows by at least the
	// appended row and keeps matching the per-layer formula.
	before := eng.Bytes()
	if _, err := eng.Insert([]float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := eng.Bytes(); got < before+8*dims {
		t.Fatalf("Bytes() after Insert = %d, want ≥ %d", got, before+8*dims)
	}
	if _, want := perLayer(eng.snap.Load()); eng.Bytes() != want {
		t.Fatalf("Bytes() after Insert = %d, per-layer formula says %d", eng.Bytes(), want)
	}
	// Removes add tombstone words; compaction folds every layer into one
	// sealed segment and the formula still holds exactly.
	if !eng.Remove(3) {
		t.Fatal("Remove(3) = false")
	}
	if _, want := perLayer(eng.snap.Load()); eng.Bytes() != want {
		t.Fatalf("Bytes() after Remove = %d, per-layer formula says %d", eng.Bytes(), want)
	}
	eng.Compact()
	if segs, mem := eng.Segments(); segs != 1 || mem != 0 {
		t.Fatalf("after Compact: %d segments, %d memtable rows", segs, mem)
	}
	if _, want := perLayer(eng.snap.Load()); eng.Bytes() != want {
		t.Fatalf("Bytes() after Compact = %d, per-layer formula says %d", eng.Bytes(), want)
	}
}

func TestKLargerThanDataset(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 6, 2, 23)
	currentData = data
	roles := []query.Role{query.Repulsive, query.Attractive}
	eng, _ := New(data, Config{Roles: roles})
	truth, _ := scan.New(data)
	spec := query.Spec{Point: []float64{0.5, 0.5}, K: 50, Roles: roles, Weights: []float64{1, 1}}
	checkAgainst(t, "k>n", eng, truth, spec)
}
