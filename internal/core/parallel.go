package core

import (
	"math"
	"sync/atomic"

	"repro/internal/query"
)

// Intra-query segment parallelism: with a Runner configured (Config.Pool),
// one query's sealed segments are fanned out as one task per segment. Each
// task acquires a pooled query context of its own, builds the plan's
// subproblems for just its segment, and runs the engine's configured
// scheduler loop over them into a private collector. The tasks cooperate
// through a single shared word — the threshold floor below — and the parent
// merges the per-segment candidate sets deterministically afterwards.
//
// Why the merged answer is byte-identical to sequential execution. Every
// point of the global top-k living in segment s is, a fortiori, in s's local
// top-k under the same score-then-ascending-ID order, so each kid's
// collector retains every globally relevant candidate of its segment; the
// parent re-Adds all retained candidates into the query's main collector,
// whose content is insertion-order-independent. Pruning inside a kid uses
// max(local k-th best, shared floor): both are lower bounds on the final
// global k-th best (an order statistic only rises as candidates are added),
// so the prune and retirement inequalities discard only points that the
// sequential aggregation also proves irrelevant. Stats, by contrast, are
// timing-dependent — how deep each segment fetches before the floor rises
// depends on sibling progress — which is why the sequential path (Pool nil)
// remains the default and keeps its fully deterministic trace.

// Runner executes f(0), …, f(n−1), possibly concurrently, returning when all
// calls have finished. It is the engine's only parallelism dependency — the
// public layer plugs in its shared worker pool, so one process-wide set of
// goroutines serves both inter-query batch fan-out and intra-query segment
// fan-out.
type Runner interface {
	Do(n int, f func(i int))
}

// qfloor is the shared termination-threshold floor of one parallel query:
// the highest local k-th-best score any segment task has published. Floats
// are CAS-maxed through their IEEE bits; all published values come from
// full collectors, hence are finite, and the −Inf reset loses every
// comparison, so ordering floats and ordering their bit patterns agree.
type qfloor struct {
	bits atomic.Uint64
}

func (f *qfloor) reset()        { f.bits.Store(math.Float64bits(math.Inf(-1))) }
func (f *qfloor) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *qfloor) raise(v float64) {
	nb := math.Float64bits(v)
	for {
		ob := f.bits.Load()
		if math.Float64frombits(ob) >= v {
			return
		}
		if f.bits.CompareAndSwap(ob, nb) {
			return
		}
	}
}

// pruneLine returns the score the prune, retirement, and termination
// inequalities compare against, and whether any line exists yet. Sequentially
// (floor nil) it is exactly the collector's k-th best once full — the
// scheduler loops behave bit-for-bit as before. On the parallel path it is
// raised to the shared floor, which may exist before the local collector
// fills: both candidates are lower bounds on the final global k-th best, so
// every strict-inequality discard they justify is one the sequential
// aggregation also proves (possibly later), and no global top-k member is
// ever dropped.
func (c *queryCtx) pruneLine() (float64, bool) {
	t := math.Inf(-1)
	ok := false
	if c.coll.Full() {
		t, ok = c.coll.Threshold(), true
	}
	if c.floor != nil {
		if f := c.floor.load(); f > t {
			t, ok = f, true
		}
	}
	return t, ok
}

// runParallel is the parallel form of the scheduler dispatch in topKAppendAt:
// one task per sealed segment on the engine's Runner. The memtable has
// already been scored into the parent's collector, so a full parent collector
// seeds the shared floor and every task starts with a live prune line. Each
// task runs in a pooled context of its own (runKid); afterwards the parent
// merges the retained candidate sets — the ordered collector's content is
// insertion-order-independent, so the merge order does not affect the answer
// — propagates the smallest-index error deterministically, and sums the
// per-task work counters. Stats on this path are timing-dependent (how deep
// a segment fetches depends on when siblings raise the floor); the returned
// top-k is not.
func (c *queryCtx) runParallel(pl *queryPlan, spec query.Spec, stats *Stats) error {
	nseg := len(c.sn.segs)
	c.floorStore.reset()
	if c.coll.Full() {
		c.floorStore.raise(c.coll.Threshold())
	}
	if cap(c.kidCtx) < nseg {
		c.kidCtx = make([]*queryCtx, nseg)
		c.kidStats = make([]Stats, nseg)
		c.kidErr = make([]error, nseg)
	}
	c.kidCtx = c.kidCtx[:nseg]
	c.kidStats = c.kidStats[:nseg]
	c.kidErr = c.kidErr[:nseg]
	for i := range c.kidCtx {
		c.kidCtx[i] = nil
		c.kidStats[i] = Stats{}
		c.kidErr[i] = nil
	}
	c.parPl, c.parSpec = pl, spec
	c.e.pool.Do(nseg, c.parFn)
	c.parPl, c.parSpec = nil, query.Spec{} // never pin the caller's slices
	var err error
	for i := 0; i < nseg; i++ {
		k := c.kidCtx[i]
		c.kidCtx[i] = nil
		if c.kidErr[i] != nil && err == nil {
			err = c.kidErr[i]
		}
		c.kidErr[i] = nil
		if k == nil {
			continue
		}
		if k.canceled {
			c.canceled = true
		}
		st := &c.kidStats[i]
		stats.Subproblems += st.Subproblems
		stats.Rounds += st.Rounds
		stats.Fetched += st.Fetched
		stats.Scored += st.Scored
		k.drain = k.coll.DrainInto(k.drain[:0])
		for _, s := range k.drain {
			c.coll.Add(s.Item, s.Score)
		}
		c.e.putCtx(k)
	}
	return err
}

// runKid is one parallel query's per-segment task: acquire a pooled context,
// bind the plan's subproblems to segment i alone, and run the engine's
// configured scheduler loop against a private collector plus the shared
// floor. The parent's seen bitset is NOT shared — a point lives in exactly
// one segment, so per-task bitsets partition the ID space and first-emission
// semantics are preserved. The context is recorded for the parent to drain
// and release; a task that fails to bind records its error and releases its
// context itself.
func (c *queryCtx) runKid(i int) {
	e := c.e
	k := e.getCtx(c.sn)
	k.done = c.done
	k.floor = &c.floorStore
	copy(k.w, c.w)
	copy(k.signed, c.signed)
	k.coll.Reset(c.parSpec.K)
	for s := range k.segPad[:len(c.sn.segs)] {
		k.segPad[s] = 0
	}
	pl, spec := c.parPl, c.parSpec
	k.prepSubs(pl)
	if err := k.buildSegSubs(pl, spec, i); err != nil {
		c.kidErr[i] = err
		e.putCtx(k)
		return
	}
	c.kidCtx[i] = k
	st := &c.kidStats[i]
	st.Subproblems = len(k.subs)
	if len(k.subs) > 0 {
		if e.sched == SchedRoundRobin {
			k.runRoundRobin(spec.Point, st)
		} else {
			k.runBoundDriven(spec.Point, st)
		}
	}
}
