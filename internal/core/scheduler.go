package core

import (
	"fmt"
	"math"

	"repro/internal/simd"
)

// Scheduler selects the order in which the §5 Threshold-Algorithm
// aggregation spends sorted accesses across its subproblems.
type Scheduler int

const (
	// SchedBoundDriven (the default) schedules sorted accesses by the
	// subproblems' frontier-bound telemetry: every step bulk-fetches from
	// the subproblem whose bound is measured to be falling fastest per
	// access (see runBoundDriven for why descent rate, not bound level, is
	// the right greedy signal). The termination threshold is re-checked
	// after every batch rather than once per rotation, so the loop stops
	// the moment the k-th best score clears it, and the final batches are
	// clamped to the predicted accesses-to-termination.
	SchedBoundDriven Scheduler = iota
	// SchedRoundRobin is the paper's literal §5 loop — every round fetches
	// one adaptive batch from every subproblem in fixed rotation, and the
	// threshold is re-evaluated per round. Kept as an explicit ablation so
	// the scheduling win stays benchmarkable (cmd/sdbench reports both).
	SchedRoundRobin
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedBoundDriven:
		return "bound-driven"
	case SchedRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// valid reports whether s names an implemented scheduler.
func (s Scheduler) valid() bool {
	return s == SchedBoundDriven || s == SchedRoundRobin
}

// Why any access order is sound — now per segment. Every subproblem emits
// its segment's points in non-increasing contribution order, so at any
// moment bounds[j] — the contribution of subproblem j's next unfetched
// emission — is an upper bound on the contribution of every point j has not
// yet emitted, no matter how the scheduler has interleaved fetches so far.
// A point lives in exactly one segment and receives contributions only from
// that segment's subproblems, so the two decisions the aggregation makes
// consult sibling bounds within the owning segment alone:
//
//   - Prune at first emission: when a point p first surfaces (from
//     subproblem i of segment s), it has by definition not been emitted by
//     any sibling j ≠ i of s, so contrib_j(p) ≤ bounds[j] for every such
//     sibling — visited or not, because unvisited frontiers only ever bound
//     from above. If contrib_i(p) + Σ_{j≠i, j∈s} bounds[j] + pad_s is still
//     below the k-th best, p's full score cannot reach the top k now or
//     later (the k-th best only rises), and p is discarded for good.
//   - Termination: any point of segment s never emitted anywhere has full
//     score ≤ Σ_{j∈s} bounds[j]; once the k-th best strictly exceeds the
//     padded per-segment sum of EVERY segment still in play, no unseen
//     point can displace a kept one. Memtable rows need no bound — they
//     were all scored exactly before scheduling began.
//
// Neither argument references the order in which frontiers were advanced —
// only that each frontier descends — so the bound-driven schedule returns
// byte-identical answers to the round-robin one (the property test and the
// differential harness enforce this), and on a single-segment engine both
// loops reproduce the pre-segment behaviour access for access. The
// bound-driven loop additionally initializes bounds from cheap frontier
// peeks (PeekScore / Bound, no fetch) instead of +Inf, which only tightens
// the same inequalities.

// rateWindow is the minimum number of sorted accesses a frontier's descent
// rate is measured over. Longer windows smooth across plateaus of duplicate
// contributions but probe unwanted frontiers deeper and react later; on the
// evaluation workload fetch counts are nearly flat from 4 to 32 (≈1890 to
// ≈1903 mean accesses), and 8 sits on the flat part while keeping the
// forced probe of a useless frontier cheap.
const rateWindow = 8

// pollCancel reports whether the query's cancellation signal has fired,
// latching the result into c.canceled. Both scheduler loops poll it once
// per scheduling step — a nil-guarded non-blocking receive, free on the
// uncancellable hot path — so a cancelled query stops within one adaptive
// batch instead of running its aggregation to termination.
func (c *queryCtx) pollCancel() bool {
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		c.canceled = true
		return true
	default:
		return false
	}
}

// runBoundDriven is the SchedBoundDriven aggregation loop. The schedule is
// driven by the subproblems' frontier-bound telemetry: each step drains the
// subproblem whose bound is falling fastest per sorted access (the measured
// descent rate of its frontier, the Quick-Combine heuristic), breaking rate
// ties toward the higher frontier bound and then the lower index. The
// termination threshold is the worst per-segment bound sum, so the steepest
// frontier is the one whose next batch buys the largest threshold decrease
// per access; picking by bound level alone stalls on plateaus (many points
// sharing a contribution), where draining the flat maximum spends accesses
// without moving the threshold while a steeper sibling would.
func (c *queryCtx) runBoundDriven(qpt []float64, stats *Stats) {
	subs := c.subs
	ns := len(subs)
	bounds := c.bounds[:ns]
	bsize := c.bsize[:ns]
	rate := c.rate[:ns]
	anchorB := c.anchorB[:ns]
	sinceN := c.sinceN[:ns]
	refs := c.refs
	nseg := len(c.sn.segs)
	segSum := c.segSum[:nseg]
	segDone := c.segDone[:nseg]
	segPad := c.segPad[:nseg]
	// Segments owning no subproblem are born retired: on the sequential path
	// every segment owns the plan's full subproblem set, so this is the old
	// all-false init, while a parallel segment task binds exactly one
	// segment and must never consult the others' (unbound) sums.
	for s := range segDone {
		segDone[s] = true
	}
	for i, s := range subs {
		bounds[i] = s.bound() // peek, no fetch: live prune line from step one
		bsize[i] = 1
		rate[i] = math.Inf(1) // unknown until a full probe window is measured
		anchorB[i] = bounds[i]
		sinceN[i] = 0
		segDone[refs[i].ord] = false
	}
	for {
		if c.pollCancel() {
			return
		}
		// A subproblem exhausts only after emitting every point of its
		// segment, so one exhausted frontier retires the whole segment:
		// everything in it has been scored or soundly discarded.
		for i, b := range bounds {
			if math.IsInf(b, -1) {
				segDone[refs[i].ord] = true
			}
		}
		// Per-segment frontier sums, recomputed fresh each step — an
		// incrementally maintained sum would accumulate rounding drift the
		// pad does not budget for.
		for s := range segSum {
			segSum[s] = 0
		}
		for i, b := range bounds {
			if !segDone[refs[i].ord] {
				segSum[refs[i].ord] += b
			}
		}
		// Retire every segment whose padded frontier sum has fallen
		// strictly below the k-th best: nothing unseen in it can reach the
		// top k anymore (its sum only falls, the k-th best only rises), so
		// fetching from it would be pure waste. This is the per-segment
		// form of the old single-stack termination test — when the last
		// segment retires, the query is done. Strict inequality, for the
		// same tie-at-the-k-th-rank reason as the prune. The line is
		// pruneLine, not the raw local threshold: a parallel segment task
		// also retires against the shared floor its siblings have raised.
		if line, ok := c.pruneLine(); ok {
			for s := range segSum {
				if !segDone[s] && line > segSum[s]+segPad[s] {
					segDone[s] = true
				}
			}
		}
		// The steepest live frontier across all remaining segments. All
		// tie-breaks are deterministic, so the schedule — and every Stats
		// counter — is a pure function of the query and the snapshot.
		best := -1
		for i, b := range bounds {
			if segDone[refs[i].ord] {
				continue
			}
			if best == -1 || rate[i] > rate[best] ||
				(rate[i] == rate[best] && b > bounds[best]) {
				best = i
			}
		}
		if best == -1 {
			break // every segment fully enumerated or retired
		}
		bs := refs[best].ord
		// The sibling sum is re-summed directly, not derived as
		// segSum − bounds[best]: that subtraction re-rounds and can land an
		// ulp BELOW the true sibling sum, making the first-emission prune
		// slightly aggressive — enough, in an exact tie at the k-th rank
		// with pad 0 (1D-only subproblems), to discard a point the oracle
		// keeps. Left-to-right summation over the siblings is the form the
		// soundness argument (and the pad budget) is stated for. Note the
		// prune/score TRACE still differs between schedulers — frontiers sit
		// at different depths when a given point first surfaces — only the
		// returned top-k is schedule-independent.
		other := 0.0
		for j, b := range bounds {
			if j != best && refs[j].ord == bs {
				other += b
			}
		}
		// Near termination the adaptive batch overshoots: a 64-wide drain
		// keeps fetching after the threshold has already fallen past the
		// k-th best. The measured rate predicts how many accesses the
		// remaining gap needs if this frontier keeps its slope, so the batch
		// is clamped to that estimate (never below 1; growth bookkeeping in
		// runBatch is untouched, so a frontier that flattens out re-expands).
		size := bsize[best]
		if math.IsInf(rate[best], 1) {
			// Probe phase: stop exactly at the window edge, so an unwanted
			// frontier costs rateWindow accesses, not a doubled overshoot.
			if rem := rateWindow - sinceN[best]; size > rem {
				size = rem
			}
		} else if r := rate[best]; r > 0 {
			if line, ok := c.pruneLine(); ok {
				if gap := segSum[bs] + segPad[bs] - line; gap/r < float64(size-1) {
					size = int(gap/r) + 1
				}
			}
		}
		if n := c.runBatch(best, size, qpt, segPad[bs], other, stats); n > 0 {
			// Rates are measured over completed windows of at least
			// rateWindow accesses, not per batch: a single-access sample on
			// a plateau of duplicate contributions would read as rate 0 and
			// starve that frontier forever — even when the steepest descent
			// of all lies just past its plateau (the failure mode that made
			// naive greedy 2.4× worse than optimal on real queries). Until
			// its first window completes a frontier keeps rate +Inf, so
			// every subproblem is probed rateWindow deep (highest bound
			// first) before the greedy phase begins. An exhausted frontier
			// stops updating, but exhaustion retires its segment above
			// before its rate is consulted.
			sinceN[best] += n
			if sinceN[best] >= rateWindow {
				rate[best] = (anchorB[best] - bounds[best]) / float64(sinceN[best])
				anchorB[best] = bounds[best]
				sinceN[best] = 0
			}
		}
	}
}

// runRoundRobin reproduces the paper's rotation exactly: bounds start at
// +Inf (nothing may be pruned against a frontier that has not emitted),
// every round fetches one adaptive batch from every subproblem in rotation,
// and the threshold is re-evaluated once per round — per segment, as the
// soundness argument above requires.
func (c *queryCtx) runRoundRobin(qpt []float64, stats *Stats) {
	subs := c.subs
	ns := len(subs)
	bounds := c.bounds[:ns]
	bsize := c.bsize[:ns]
	refs := c.refs
	nseg := len(c.sn.segs)
	segSum := c.segSum[:nseg]
	segPad := c.segPad[:nseg]
	segDone := c.segDone[:nseg]
	// As in runBoundDriven, segments owning no subproblem are born retired
	// and excluded from the termination sum — on the sequential path that
	// excludes nothing; a parallel segment task binds only its own segment.
	for s := range segDone {
		segDone[s] = true
	}
	for i := range bounds {
		bounds[i] = math.Inf(1)
		bsize[i] = 1
		segDone[refs[i].ord] = false
	}
	for {
		if c.pollCancel() {
			return
		}
		progressed := false
		for i := range subs {
			other := 0.0
			for j, b := range bounds {
				if j != i && refs[j].ord == refs[i].ord {
					other += b
				}
			}
			if c.runBatch(i, c.bsize[i], qpt, segPad[refs[i].ord], other, stats) > 0 {
				progressed = true
			}
		}
		if !progressed {
			break // every subproblem exhausted: all points were seen
		}
		// Stop only once the k-th best strictly beats every segment's padded
		// frontier sum: an unseen point that could tie it (exactly, or
		// within the float slack of the projection bounds) might still
		// displace a kept one through the ID tie-break. A segment with an
		// exhausted subproblem sums to −Inf — fully enumerated, nothing
		// unseen left in it.
		for s := range segSum {
			segSum[s] = 0
		}
		for i, b := range bounds {
			segSum[refs[i].ord] += b
		}
		if line, ok := c.pruneLine(); ok {
			worst := math.Inf(-1)
			for s, sum := range segSum {
				if segDone[s] {
					continue
				}
				if t := sum + segPad[s]; t > worst {
					worst = t
				}
			}
			if math.IsInf(worst, -1) || line > worst {
				break
			}
		}
	}
}

// runBatch performs one scheduling step on subproblem i: bulk-fetch up to
// size emissions, handle each exactly once (tombstone mask, first-emission
// prune against the segment-sibling frontiers, or exact random-access
// scoring), refresh bounds[i] from the batch's returned frontier bound, and
// adapt bsize[i]. otherBounds is Σ bounds over the sibling subproblems of
// the same segment — constant across the batch, since sibling frontiers do
// not move while this one drains. It returns the number of emissions
// fetched.
//
// Scoring is batch-deferred: survivors of the masks and the prune are
// collected first and then scored with one column-sweep kernel call over the
// segment's dimension-major columns, instead of a strided row gather per
// point. Deferral means every survivor is pruned against the threshold as of
// its collection, not after its predecessors' Adds — a point the strictly
// sequential loop would have pruned can therefore still be scored and Added
// here. That Add is always a no-op: the prune inequality proves the point's
// exact score sits strictly below the then-current k-th best, which only
// rises, and the collector ignores entries strictly below its k-th best.
// The answer is byte-identical either way (the ordered collector's content
// is insertion-order-independent); only Scored can read marginally higher.
func (c *queryCtx) runBatch(i, size int, qpt []float64, pad, otherBounds float64, stats *Stats) int {
	n, nb := c.subs[i].nextBatch(c.emit[:size])
	c.bounds[i] = nb
	stats.Rounds++
	if n == 0 {
		return 0
	}
	stats.Fetched += n
	ref := &c.refs[i]
	seg := ref.seg
	coll := c.coll
	// The prune line is hoisted out of the loop: Adds are deferred past it,
	// so the local threshold cannot move mid-batch — behaviour is identical
	// to the per-emission consult — and on the parallel path the hoist also
	// caps the shared-floor atomics at one load per batch.
	line, lineOK := c.pruneLine()
	nc := 0
	for _, em := range c.emit[:n] {
		gid := seg.ids[em.ID]
		if !c.markSeen(gid) {
			continue // already scored or soundly discarded
		}
		if bitGet(ref.tomb, int(em.ID)) {
			continue // tombstoned: removed after this segment sealed
		}
		if lineOK && em.Contrib+otherBounds+pad < line {
			continue // cannot enter the top k, now or later
		}
		c.candRow[nc] = em.ID
		c.candGID[nc] = gid
		nc++
	}
	if nc > 0 {
		stats.Scored += nc
		scores := c.candScore[:nc]
		if seg.cols32 != nil {
			// Narrow sweep: approximate scores from the float32 columns at
			// half the bandwidth, then skip candidates whose padded
			// approximate score cannot reach the k-th best even on an exact
			// tie (strict <, like every prune) and rescore the rest exactly.
			// qpad covers quantization per active dimension; the segment pad
			// covers the two summation chains' rounding difference.
			simd.GatherScore32(scores, seg.cols32, seg.rows, c.candRow[:nc], qpt, c.signed)
			qpad := pad
			for d, w := range c.w {
				qpad += w * seg.qerr[d]
			}
			for j := 0; j < nc; j++ {
				if coll.Full() && scores[j]+qpad < coll.Threshold() {
					continue
				}
				coll.Add(int(c.candGID[j]), seg.scoreLocal(int(c.candRow[j]), qpt, c.signed))
			}
		} else {
			simd.GatherScore(scores, seg.cols, seg.rows, c.candRow[:nc], qpt, c.signed)
			for j := 0; j < nc; j++ {
				coll.Add(int(c.candGID[j]), scores[j])
			}
		}
	}
	// The batch size adapts: it doubles toward the leaf cap while the
	// subproblem's frontier stays above the prune line (a subproblem that
	// keeps producing viable candidates is drained in whole leaf runs), and
	// snaps back to 1 the moment its entire remaining stream became
	// prunable.
	if grow := !coll.Full() || c.bounds[i]+otherBounds+pad >= coll.Threshold(); grow {
		if c.bsize[i] < maxBatch {
			c.bsize[i] *= 2
			if c.bsize[i] > maxBatch {
				c.bsize[i] = maxBatch
			}
		}
	} else {
		c.bsize[i] = 1
	}
	// Publish this task's k-th best to the parallel query's shared floor so
	// sibling segment tasks can prune against it. raise is an atomic load
	// plus an early return unless the floor actually rises, so the cost in
	// steady state is one uncontended load per batch.
	if c.floor != nil && coll.Full() {
		c.floor.raise(coll.Threshold())
	}
	return n
}
