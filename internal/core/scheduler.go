package core

import (
	"fmt"
	"math"
)

// Scheduler selects the order in which the §5 Threshold-Algorithm
// aggregation spends sorted accesses across its subproblems.
type Scheduler int

const (
	// SchedBoundDriven (the default) schedules sorted accesses by the
	// subproblems' frontier-bound telemetry: every step bulk-fetches from
	// the subproblem whose bound is measured to be falling fastest per
	// access (see runBoundDriven for why descent rate, not bound level, is
	// the right greedy signal). The termination threshold Σ bounds is
	// re-checked after every batch rather than once per rotation, so the
	// loop stops the moment the k-th best score clears it, and the final
	// batches are clamped to the predicted accesses-to-termination.
	SchedBoundDriven Scheduler = iota
	// SchedRoundRobin is the paper's literal §5 loop — every round fetches
	// one adaptive batch from every subproblem in fixed rotation, and the
	// threshold is re-evaluated per round. Kept as an explicit ablation so
	// the scheduling win stays benchmarkable (cmd/sdbench reports both).
	SchedRoundRobin
)

// String names the scheduler.
func (s Scheduler) String() string {
	switch s {
	case SchedBoundDriven:
		return "bound-driven"
	case SchedRoundRobin:
		return "round-robin"
	}
	return fmt.Sprintf("Scheduler(%d)", int(s))
}

// valid reports whether s names an implemented scheduler.
func (s Scheduler) valid() bool {
	return s == SchedBoundDriven || s == SchedRoundRobin
}

// Why any access order is sound. Every subproblem emits its points in
// non-increasing contribution order, so at any moment bounds[j] — the
// contribution of subproblem j's next unfetched emission — is an upper bound
// on the contribution of every point j has not yet emitted, no matter how
// the scheduler has interleaved fetches so far. The two decisions the
// aggregation makes only ever consult bounds in positions where that
// inequality applies:
//
//   - Prune at first emission: when a point p first surfaces (from
//     subproblem i), it has by definition not been emitted by any sibling
//     j ≠ i, so contrib_j(p) ≤ bounds[j] for every sibling — visited or
//     not, because unvisited frontiers only ever bound from above. If
//     contrib_i(p) + Σ_{j≠i} bounds[j] + pad is still below the k-th best,
//     p's full score cannot reach the top k now or later (the k-th best
//     only rises), and p is discarded for good.
//   - Termination: any point never emitted anywhere has full score
//     ≤ Σ_j bounds[j]; once the k-th best strictly exceeds that padded sum,
//     no unseen point can displace a kept one.
//
// Neither argument references the order in which frontiers were advanced —
// only that each frontier descends — so the bound-driven schedule returns
// byte-identical answers to the round-robin one (the property test and the
// differential harness enforce this). The bound-driven loop additionally
// initializes bounds from cheap frontier peeks (PeekScore / Bound, no fetch)
// instead of +Inf, which only tightens the same inequalities.

// rateWindow is the minimum number of sorted accesses a frontier's descent
// rate is measured over. Longer windows smooth across plateaus of duplicate
// contributions but probe unwanted frontiers deeper and react later; on the
// evaluation workload fetch counts are nearly flat from 4 to 32 (≈1890 to
// ≈1903 mean accesses), and 8 sits on the flat part while keeping the
// forced probe of a useless frontier cheap.
const rateWindow = 8

// runBoundDriven is the SchedBoundDriven aggregation loop. The schedule is
// driven by the subproblems' frontier-bound telemetry: each step drains the
// subproblem whose bound is falling fastest per sorted access (the measured
// descent rate of its frontier, the Quick-Combine heuristic), breaking rate
// ties toward the higher frontier bound and then the lower index. The
// termination threshold is Σ bounds, so the steepest frontier is the one
// whose next batch buys the largest threshold decrease per access; picking
// by bound level alone stalls on plateaus (many points sharing a
// contribution), where draining the flat maximum spends accesses without
// moving the threshold while a steeper sibling would.
func (c *queryCtx) runBoundDriven(qpt []float64, pad float64, stats *Stats) {
	subs := c.subs
	bounds := c.bounds[:len(subs)]
	bsize := c.bsize[:len(subs)]
	rate := c.rate[:len(subs)]
	anchorB := c.anchorB[:len(subs)]
	sinceN := c.sinceN[:len(subs)]
	for i, s := range subs {
		bounds[i] = s.bound() // peek, no fetch: live prune line from step one
		bsize[i] = 1
		rate[i] = math.Inf(1) // unknown until a full probe window is measured
		anchorB[i] = bounds[i]
		sinceN[i] = 0
	}
	coll := c.coll
	for {
		// One pass finds the steepest frontier and the exact threshold
		// Σ bounds (recomputed fresh each step — an incrementally maintained
		// sum would accumulate rounding drift the pad does not budget for).
		// All tie-breaks are deterministic, so the schedule — and every
		// Stats counter — is a pure function of the query.
		best, sum := -1, 0.0
		exhausted := false
		for i, b := range bounds {
			if math.IsInf(b, -1) {
				exhausted = true
				break
			}
			sum += b
			if best == -1 || rate[i] > rate[best] ||
				(rate[i] == rate[best] && b > bounds[best]) {
				best = i
			}
		}
		// A subproblem exhausts only after emitting every live point, so one
		// exhausted frontier means every point has already been scored or
		// soundly discarded — nothing is left to fetch anywhere.
		if exhausted || best == -1 {
			break
		}
		if coll.Full() && coll.Threshold() > sum+pad {
			break
		}
		// The sibling sum is re-summed directly, not derived as
		// sum − bounds[best]: that subtraction re-rounds and can land an ulp
		// BELOW the true sibling sum, making the first-emission prune
		// slightly aggressive — enough, in an exact tie at the k-th rank
		// with pad 0 (1D-only subproblems), to discard a point the oracle
		// keeps. Left-to-right summation over the siblings is the form the
		// soundness argument (and the pad budget) is stated for. Note the
		// prune/score TRACE still differs between schedulers — frontiers sit
		// at different depths when a given point first surfaces — only the
		// returned top-k is schedule-independent.
		other := 0.0
		for j, b := range bounds {
			if j != best {
				other += b
			}
		}
		// Near termination the adaptive batch overshoots: a 64-wide drain
		// keeps fetching after the threshold has already fallen past the
		// k-th best. The measured rate predicts how many accesses the
		// remaining gap needs if this frontier keeps its slope, so the batch
		// is clamped to that estimate (never below 1; growth bookkeeping in
		// runBatch is untouched, so a frontier that flattens out re-expands).
		size := bsize[best]
		if math.IsInf(rate[best], 1) {
			// Probe phase: stop exactly at the window edge, so an unwanted
			// frontier costs rateWindow accesses, not a doubled overshoot.
			if rem := rateWindow - sinceN[best]; size > rem {
				size = rem
			}
		} else if r := rate[best]; coll.Full() && r > 0 {
			if gap := sum + pad - coll.Threshold(); gap/r < float64(size-1) {
				size = int(gap/r) + 1
			}
		}
		if n := c.runBatch(best, size, qpt, pad, other, stats); n > 0 {
			// Rates are measured over completed windows of at least
			// rateWindow accesses, not per batch: a single-access sample on
			// a plateau of duplicate contributions would read as rate 0 and
			// starve that frontier forever — even when the steepest descent
			// of all lies just past its plateau (the failure mode that made
			// naive greedy 2.4× worse than optimal on real queries). Until
			// its first window completes a frontier keeps rate +Inf, so
			// every subproblem is probed rateWindow deep (highest bound
			// first) before the greedy phase begins. An exhausted frontier
			// stops updating, but exhaustion ends the loop above before its
			// rate is consulted.
			sinceN[best] += n
			if sinceN[best] >= rateWindow {
				rate[best] = (anchorB[best] - bounds[best]) / float64(sinceN[best])
				anchorB[best] = bounds[best]
				sinceN[best] = 0
			}
		}
	}
}

// runRoundRobin reproduces the pre-scheduler behaviour exactly: bounds start
// at +Inf (nothing may be pruned against a frontier that has not emitted),
// every round fetches one adaptive batch from every subproblem in rotation,
// and the threshold is re-evaluated once per round.
func (c *queryCtx) runRoundRobin(qpt []float64, pad float64, stats *Stats) {
	subs := c.subs
	bounds := c.bounds[:len(subs)]
	bsize := c.bsize[:len(subs)]
	for i := range bounds {
		bounds[i] = math.Inf(1)
		bsize[i] = 1
	}
	coll := c.coll
	for {
		progressed := false
		for i := range subs {
			other := 0.0
			for j, b := range bounds {
				if j != i {
					other += b
				}
			}
			if c.runBatch(i, c.bsize[i], qpt, pad, other, stats) > 0 {
				progressed = true
			}
		}
		if !progressed {
			break // every subproblem exhausted: all points were seen
		}
		threshold := 0.0
		for _, b := range bounds {
			threshold += b
		}
		// Stop only once the k-th best strictly beats the padded frontier:
		// an unseen point that could tie it (exactly, or within the float
		// slack of the projection bounds) might still displace a kept one
		// through the ID tie-break.
		if coll.Full() && (math.IsInf(threshold, -1) || coll.Threshold() > threshold+pad) {
			break
		}
	}
}

// runBatch performs one scheduling step on subproblem i: bulk-fetch up to
// size emissions, handle each exactly once (first-emission prune against
// the sibling frontiers, or exact random-access scoring), refresh bounds[i]
// from the batch's returned frontier bound, and adapt bsize[i]. otherBounds
// is Σ bounds over the sibling subproblems — constant across the batch,
// since sibling frontiers do not move while this one drains. It returns the
// number of emissions fetched.
func (c *queryCtx) runBatch(i, size int, qpt []float64, pad, otherBounds float64, stats *Stats) int {
	n, nb := c.subs[i].nextBatch(c.emit[:size])
	c.bounds[i] = nb
	stats.Rounds++
	if n == 0 {
		return 0
	}
	stats.Fetched += n
	coll := c.coll
	for _, em := range c.emit[:n] {
		if !c.markSeen(em.ID) {
			continue // already scored or soundly discarded
		}
		if coll.Full() && em.Contrib+otherBounds+pad < coll.Threshold() {
			continue // cannot enter the top k, now or later
		}
		stats.Scored++
		coll.Add(int(em.ID), c.scoreOf(qpt, em.ID))
	}
	// The batch size adapts: it doubles toward the leaf cap while the
	// subproblem's frontier stays above the prune line (a subproblem that
	// keeps producing viable candidates is drained in whole leaf runs), and
	// snaps back to 1 the moment its entire remaining stream became
	// prunable.
	if grow := !coll.Full() || c.bounds[i]+otherBounds+pad >= coll.Threshold(); grow {
		if c.bsize[i] < maxBatch {
			c.bsize[i] *= 2
			if c.bsize[i] > maxBatch {
				c.bsize[i] = maxBatch
			}
		}
	} else {
		c.bsize[i] = 1
	}
	return n
}
