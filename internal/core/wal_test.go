package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/query"
)

// walRoles is the fixed role vector the WAL tests query under.
var walRoles = []query.Role{query.Repulsive, query.Attractive, query.Repulsive, query.Attractive}

// walMutation is one scripted engine mutation: a remove when remove is set,
// an insert of row otherwise.
type walMutation struct {
	remove bool
	id     int // remove target
	row    []float64
}

// walScript builds a deterministic mutation mix: inserts with occasional
// removes of already-inserted rows.
func walScript(n int, seed int64) []walMutation {
	rng := rand.New(rand.NewSource(seed))
	var muts []walMutation
	nextID := 0
	var ids []int
	for len(muts) < n {
		if len(ids) > 4 && rng.Intn(4) == 0 {
			victim := ids[rng.Intn(len(ids))]
			muts = append(muts, walMutation{remove: true, id: victim})
		} else {
			row := make([]float64, len(walRoles))
			for d := range row {
				row[d] = rng.Float64()
			}
			muts = append(muts, walMutation{row: row})
			ids = append(ids, nextID)
			nextID++
		}
	}
	return muts
}

// applyScript runs the first m mutations against an engine.
func applyScript(t *testing.T, e *Engine, muts []walMutation) {
	t.Helper()
	for i, mu := range muts {
		if mu.remove {
			if _, err := e.RemoveDurable(mu.id); err != nil {
				t.Fatalf("mutation %d: remove %d: %v", i, mu.id, err)
			}
		} else if _, err := e.Insert(mu.row); err != nil {
			t.Fatalf("mutation %d: insert: %v", i, err)
		}
	}
}

// oracleFor replays the first m mutations on a fresh, WAL-less engine with
// compaction disabled — the ground truth a recovered engine must match.
func oracleFor(t *testing.T, muts []walMutation, m int) *Engine {
	t.Helper()
	e, err := New(nil, Config{Roles: walRoles, DisableCompaction: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mu := range muts[:m] {
		if mu.remove {
			e.Remove(mu.id)
		} else if _, err := e.Insert(mu.row); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

// walSpecs is a deterministic query battery exercising ties, ignored
// dimensions, and k larger than the live count.
func walSpecs() []query.Spec {
	rng := rand.New(rand.NewSource(99))
	specs := make([]query.Spec, 0, 6)
	for i := 0; i < 6; i++ {
		sp := query.Spec{
			Point:   make([]float64, len(walRoles)),
			K:       1 + rng.Intn(12),
			Roles:   append([]query.Role(nil), walRoles...),
			Weights: make([]float64, len(walRoles)),
		}
		for d := range sp.Point {
			sp.Point[d] = rng.Float64()
			sp.Weights[d] = rng.Float64()
		}
		specs = append(specs, sp)
	}
	return specs
}

// answersMustMatch asserts got answers byte-identically to want on the
// battery: same IDs, bit-equal scores, same Len.
func answersMustMatch(t *testing.T, label string, got, want *Engine) {
	t.Helper()
	if g, w := got.Len(), want.Len(); g != w {
		t.Fatalf("%s: Len = %d, want %d", label, g, w)
	}
	for si, sp := range walSpecs() {
		gr, err := got.TopK(sp)
		if err != nil {
			t.Fatalf("%s: spec %d: %v", label, si, err)
		}
		wr, err := want.TopK(sp)
		if err != nil {
			t.Fatalf("%s: spec %d oracle: %v", label, si, err)
		}
		if len(gr) != len(wr) {
			t.Fatalf("%s: spec %d: %d results, want %d", label, si, len(gr), len(wr))
		}
		for i := range wr {
			if gr[i].ID != wr[i].ID || math.Float64bits(gr[i].Score) != math.Float64bits(wr[i].Score) {
				t.Fatalf("%s: spec %d result %d: (%d, %x) want (%d, %x)",
					label, si, i, gr[i].ID, math.Float64bits(gr[i].Score), wr[i].ID, math.Float64bits(wr[i].Score))
			}
		}
	}
}

func newWALEngine(t *testing.T, fs faultfs.FS, dir string, wc WALConfig) *Engine {
	t.Helper()
	wc.Dir = dir
	wc.FS = fs
	e, err := New(nil, Config{Roles: walRoles, MemtableSize: 16, WAL: &wc})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// waitCompactIdle waits for the background compactor to drain.
func waitCompactIdle(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.compacting.Load() || e.needsCompaction() {
		if time.Now().After(deadline) {
			t.Fatal("compactor never went idle")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestWALReopenRoundTrip(t *testing.T) {
	fs := faultfs.NewMem()
	muts := walScript(300, 1)
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways, CheckpointBytes: 1 << 10})
	applyScript(t, e, muts)
	waitCompactIdle(t, e)
	st := e.WALStats()
	if !st.Enabled || st.Appends == 0 || st.Err != nil {
		t.Fatalf("stats before close: %+v", st)
	}
	if st.Rotations == 0 || st.Checkpoints == 0 {
		t.Fatalf("expected rotations and checkpoints with a 16-row memtable: %+v", st)
	}
	wantLSN := st.LSN
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	answersMustMatch(t, "reopened", re, oracleFor(t, muts, len(muts)))
	if lsn := re.WALStats().LSN; lsn != wantLSN {
		t.Fatalf("recovered LSN = %d, want %d", lsn, wantLSN)
	}
	// The reopened engine keeps accepting durable writes.
	if _, err := re.Insert([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWALHardDropRecoversAcknowledged(t *testing.T) {
	fs := faultfs.NewMem()
	muts := walScript(120, 2)
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways})
	applyScript(t, e, muts)
	// Hard drop: no Close, no Sync — the handle is simply abandoned, as a
	// killed process would leave it. SyncAlways acknowledged every mutation
	// only after its group commit, so recovery owes us all of them.
	re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	answersMustMatch(t, "hard-drop", re, oracleFor(t, muts, len(muts)))
}

func TestWALTornTailTruncates(t *testing.T) {
	fs := faultfs.NewMem()
	muts := walScript(40, 3)
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways})
	applyScript(t, e, muts)
	waitCompactIdle(t, e)
	e.Close()

	// Tear the tail: append garbage to the newest (live-tail) log file —
	// the file a mid-append crash would actually tear.
	names, err := fs.ReadDir("idx")
	if err != nil {
		t.Fatal(err)
	}
	tail := ""
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".wal" && n > tail {
			tail = n
		}
	}
	if tail == "" {
		t.Fatal("no wal files")
	}
	tail = "idx/" + tail
	f, err := fs.OpenFile(tail, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01})
	f.Close()
	before, _ := fs.Stat(tail)

	re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatalf("recovery errored on a torn tail: %v", err)
	}
	answersMustMatch(t, "torn-tail", re, oracleFor(t, muts, len(muts)))
	after, _ := fs.Stat(tail)
	if after != before-5 {
		t.Fatalf("torn tail not physically truncated: %d bytes, want %d", after, before-5)
	}
}

// writeRecord appends one encoded WAL record to buf.
func writeRecord(buf []byte, lsn uint64, payload []byte) []byte {
	var hdr [recHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], lsn)
	crc := crc32.Checksum(hdr[4:], castagnoli)
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[0:4], crc)
	return append(append(buf, hdr[:]...), payload...)
}

func insertPayload(id int, row []float64) []byte {
	p := []byte{opInsert}
	p = binary.LittleEndian.AppendUint64(p, uint64(id))
	for _, c := range row {
		p = binary.LittleEndian.AppendUint64(p, math.Float64bits(c))
	}
	return p
}

// seedWALDir creates a recoverable directory (checkpoint of an empty
// engine) and returns the fs to craft log files into.
func seedWALDir(t *testing.T) *faultfs.Mem {
	t.Helper()
	fs := faultfs.NewMem()
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncNever})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Remove("idx/000000001.wal")
	return fs
}

// craftLog writes a log file from raw record bytes.
func craftLog(t *testing.T, fs faultfs.FS, path string, records []byte) {
	t.Helper()
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(append([]byte(nil), walMagic[:]...), records...)); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestWALReplayIdempotentOnDuplicates(t *testing.T) {
	fs := seedWALDir(t)
	rows := [][]float64{
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.6, 0.7, 0.8},
		{0.9, 0.1, 0.2, 0.3},
	}
	var recs []byte
	recs = writeRecord(recs, 1, insertPayload(0, rows[0]))
	recs = writeRecord(recs, 2, insertPayload(1, rows[1]))
	recs = writeRecord(recs, 2, insertPayload(1, rows[1])) // duplicated retry
	recs = writeRecord(recs, 3, insertPayload(2, rows[2]))
	craftLog(t, fs, "idx/000000001.wal", recs)

	e, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (duplicate applied twice?)", e.Len())
	}
	if st := e.WALStats(); st.ReplayRecords != 3 || st.LSN != 3 {
		t.Fatalf("replay stats %+v, want 3 records to LSN 3", st)
	}
}

func TestWALReplayStopsAtLSNGap(t *testing.T) {
	fs := seedWALDir(t)
	row := []float64{0.1, 0.2, 0.3, 0.4}
	var recs []byte
	recs = writeRecord(recs, 1, insertPayload(0, row))
	recs = writeRecord(recs, 2, insertPayload(1, row))
	recs = writeRecord(recs, 4, insertPayload(2, row)) // gap: LSN 3 missing
	recs = writeRecord(recs, 5, insertPayload(3, row))
	craftLog(t, fs, "idx/000000001.wal", recs)

	e, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2: replay must stop at the gap", e.Len())
	}
}

func TestWALMissingFinalFile(t *testing.T) {
	fs := faultfs.NewMem()
	// Exactly one memtable's worth of inserts: the seal drains the memtable
	// completely, so after the rotation the live tail file holds no records.
	rng := rand.New(rand.NewSource(4))
	var muts []walMutation
	for i := 0; i < 16; i++ {
		row := make([]float64, len(walRoles))
		for d := range row {
			row[d] = rng.Float64()
		}
		muts = append(muts, walMutation{row: row})
	}
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways, CheckpointBytes: 1 << 40})
	applyScript(t, e, muts)
	waitCompactIdle(t, e)
	st := e.WALStats()
	if st.Rotations == 0 {
		t.Fatalf("no rotation after sealing: %+v", st)
	}
	e.Close()
	// Crash mid-rotation: the freshly created final file vanishes (its
	// directory entry was never fsynced). It holds no records — every
	// mutation since the last seal is in the sealed files — so recovery
	// owes the full history regardless.
	last := fmt.Sprintf("idx/%09d.wal", st.Rotations+1)
	sz, err := fs.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if sz != walHeaderLen {
		t.Skipf("final file has records (%d bytes); scenario needs an empty tail", sz)
	}
	if err := fs.Remove(last); err != nil {
		t.Fatal(err)
	}
	re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatalf("recovery errored on a missing final file: %v", err)
	}
	answersMustMatch(t, "missing-final", re, oracleFor(t, muts, len(muts)))
}

func TestWALSyncErrorDegradesToReadOnly(t *testing.T) {
	fs := faultfs.NewMem()
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways})
	muts := walScript(20, 5)
	applyScript(t, e, muts)

	fs.SetSyncErr(errors.New("disk gone"))
	if _, err := e.Insert([]float64{0.5, 0.5, 0.5, 0.5}); !errors.Is(err, ErrWAL) {
		t.Fatalf("insert under fsync failure: %v, want ErrWAL", err)
	}
	if st := e.WALStats(); st.Err == nil || !errors.Is(st.Err, ErrWAL) {
		t.Fatalf("engine not degraded: %+v", st)
	}
	// Sticky: later mutations fail fast, reads keep working.
	if _, err := e.Insert([]float64{0.5, 0.5, 0.5, 0.5}); !errors.Is(err, ErrWAL) {
		t.Fatalf("second insert: %v, want ErrWAL", err)
	}
	live := -1
	for id := 0; id < 20; id++ {
		if e.Alive(id) {
			live = id
			break
		}
	}
	if live < 0 {
		t.Fatal("no live id to remove")
	}
	if _, err := e.RemoveDurable(live); !errors.Is(err, ErrWAL) {
		t.Fatalf("remove: %v, want ErrWAL", err)
	}
	if _, err := e.TopK(walSpecs()[0]); err != nil {
		t.Fatalf("reads must survive degradation: %v", err)
	}
}

func TestWALWriteErrorPublishesNothing(t *testing.T) {
	fs := faultfs.NewMem()
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways})
	applyScript(t, e, walScript(10, 6))
	before := e.Len()
	fs.SetWriteErr(errors.New("io error"))
	if _, err := e.Insert([]float64{0.5, 0.5, 0.5, 0.5}); !errors.Is(err, ErrWAL) {
		t.Fatalf("insert: %v, want ErrWAL", err)
	}
	if e.Len() != before {
		t.Fatalf("failed insert became visible: Len %d, want %d", e.Len(), before)
	}
}

func TestWALShortWriteRepairsAndRetries(t *testing.T) {
	fs := faultfs.NewMem()
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways})
	muts := walScript(10, 7)
	applyScript(t, e, muts)

	fs.ShortWriteOnce(5) // the next record lands a 5-byte torn prefix
	if _, err := e.Insert([]float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatalf("insert with one short write must repair and succeed: %v", err)
	}
	if st := e.WALStats(); st.Err != nil {
		t.Fatalf("one-shot short write poisoned the log: %v", st.Err)
	}
	// The repair truncated the torn prefix: recovery sees a clean log and
	// exactly one copy of the record.
	re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := oracleFor(t, muts, len(muts))
	if _, err := want.Insert([]float64{0.5, 0.5, 0.5, 0.5}); err != nil {
		t.Fatal(err)
	}
	answersMustMatch(t, "short-write", re, want)
}

func TestWALGroupCommitSharesFsyncs(t *testing.T) {
	fs := faultfs.NewMem()
	fs.SetSyncDelay(2 * time.Millisecond) // slow disk: commit windows fill up
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways})
	const writers, each = 8, 16
	done := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func() {
			for i := 0; i < each; i++ {
				if _, err := e.Insert([]float64{0.1, 0.2, 0.3, 0.4}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < writers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := e.WALStats()
	if st.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*each)
	}
	if st.Fsyncs >= st.Appends {
		t.Fatalf("no group commit: %d fsyncs for %d appends", st.Fsyncs, st.Appends)
	}
	e.Close()
	re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if re.Len() != writers*each {
		t.Fatalf("recovered %d rows, want %d", re.Len(), writers*each)
	}
}

func TestWALCheckpointRetiresFiles(t *testing.T) {
	fs := faultfs.NewMem()
	muts := walScript(200, 8)
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncAlways, CheckpointBytes: 1})
	applyScript(t, e, muts)
	waitCompactIdle(t, e)
	st := e.WALStats()
	if st.Checkpoints == 0 {
		t.Fatalf("no checkpoint despite 1-byte trigger: %+v", st)
	}
	names, err := fs.ReadDir("idx")
	if err != nil {
		t.Fatal(err)
	}
	walFiles := 0
	for _, n := range names {
		if len(n) > 4 && n[len(n)-4:] == ".wal" {
			walFiles++
		}
	}
	// Every sealed-and-covered file is retired; only the live tail (and at
	// most one sealed file raced past the last checkpoint) remain.
	if walFiles > 2 {
		t.Fatalf("%d log files survive aggressive checkpointing: %v", walFiles, names)
	}
	e.Close()
	re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	answersMustMatch(t, "checkpointed", re, oracleFor(t, muts, len(muts)))
}

func TestWALSyncPoliciesAndPowerFailure(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncInterval, SyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			fs := faultfs.NewMem()
			wc := WALConfig{Policy: policy, Interval: time.Hour} // the ticker never fires on its own
			e := newWALEngine(t, fs, "idx", wc)
			// Stay below the memtable seal threshold: a seal would rotate the
			// log, and rotation fsyncs — which would make rows durable and
			// spoil the power-failure half of the test.
			muts := walScript(10, 9)
			applyScript(t, e, muts)

			// Power failure without a flush: acknowledged-but-unsynced rows are
			// gone — the policy's documented trade-off. (A mere process crash
			// would keep them: CrashClone-style state retains written bytes.)
			lost, err := Open(WALConfig{Dir: "idx", FS: fs.PowerFailClone()}, RuntimeOptions{})
			if err != nil {
				t.Fatalf("recovery after power failure: %v", err)
			}
			if lost.Len() != 0 {
				t.Fatalf("unsynced rows survived power failure: Len = %d", lost.Len())
			}
			// A process crash (no power loss) keeps everything written.
			kept, err := Open(WALConfig{Dir: "idx", FS: fs.CrashClone(fs.Written())}, RuntimeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			answersMustMatch(t, "process-crash", kept, oracleFor(t, muts, len(muts)))

			// Sync is the drain path: after it, power failure loses nothing.
			if err := e.Sync(); err != nil {
				t.Fatal(err)
			}
			synced, err := Open(WALConfig{Dir: "idx", FS: fs.PowerFailClone()}, RuntimeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			answersMustMatch(t, "post-sync", synced, oracleFor(t, muts, len(muts)))
		})
	}
}

func TestWALFreshDirRefusesOverwrite(t *testing.T) {
	fs := faultfs.NewMem()
	e := newWALEngine(t, fs, "idx", WALConfig{Policy: SyncNever})
	e.Close()
	wc := WALConfig{Dir: "idx", FS: fs}
	if _, err := New(nil, Config{Roles: walRoles, WAL: &wc}); err == nil {
		t.Fatal("New over an existing WAL directory must refuse to clobber it")
	}
}

func TestWALOpenRequiresCheckpoint(t *testing.T) {
	fs := faultfs.NewMem()
	fs.MkdirAll("idx")
	if _, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{}); err == nil {
		t.Fatal("Open of a checkpoint-less directory must fail")
	}
}
