package core

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/query"
)

func replTestEngine(t *testing.T, fs faultfs.FS, dir string) *Engine {
	t.Helper()
	data := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	cfg := Config{
		Roles: []query.Role{query.Attractive, query.Repulsive},
		WAL:   &WALConfig{Dir: dir, FS: fs, Policy: SyncNever},
	}
	e, err := New(data, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

// snapshotThenTail bootstraps a follower engine from SaveWithLSN and applies
// the leader's WALTail from that LSN — the full replication round trip.
func TestReplSnapshotPlusTailRoundTrip(t *testing.T) {
	fs := faultfs.NewMem()
	e := replTestEngine(t, fs, "wal")
	defer e.Close()
	for i := 0; i < 20; i++ {
		if _, err := e.Insert([]float64{float64(i), float64(-i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	e.Remove(5)

	var snap bytes.Buffer
	lsn, err := e.SaveWithLSN(&snap)
	if err != nil {
		t.Fatalf("SaveWithLSN: %v", err)
	}
	if lsn != e.LastLSN() {
		t.Fatalf("snapshot LSN %d != LastLSN %d", lsn, e.LastLSN())
	}

	// More churn after the snapshot: the tail must carry it.
	for i := 0; i < 7; i++ {
		if _, err := e.Insert([]float64{100, float64(i)}); err != nil {
			t.Fatalf("post-snapshot insert: %v", err)
		}
	}
	e.Remove(1)

	f, err := Load(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatalf("Load snapshot: %v", err)
	}
	if f.LastLSN() != lsn {
		t.Fatalf("follower bootstrap LSN %d, want %d", f.LastLSN(), lsn)
	}

	var tail bytes.Buffer
	info, err := e.WALTail(&tail, f.LastLSN(), 0)
	if err != nil {
		t.Fatalf("WALTail: %v", err)
	}
	if info.Gap {
		t.Fatalf("unexpected gap: %+v", info)
	}
	if info.Last != e.LastLSN() || info.LeaderLSN != e.LastLSN() {
		t.Fatalf("tail reached %d (leader %d), want %d", info.Last, info.LeaderLSN, e.LastLSN())
	}
	applied, n, err := f.ApplyWALStream(bytes.NewReader(tail.Bytes()))
	if err != nil {
		t.Fatalf("ApplyWALStream: %v", err)
	}
	if applied != e.LastLSN() || n != info.Records {
		t.Fatalf("applied to %d (%d records), want %d (%d)", applied, n, e.LastLSN(), info.Records)
	}

	// The follower must now answer exactly like the leader.
	spec := query.Spec{Point: []float64{2, 2}, K: 10,
		Roles:   []query.Role{query.Attractive, query.Repulsive},
		Weights: []float64{1, 1}}
	want, err := e.TopK(spec)
	if err != nil {
		t.Fatalf("leader TopK: %v", err)
	}
	got, err := f.TopK(spec)
	if err != nil {
		t.Fatalf("follower TopK: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("follower %d results, leader %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: follower %+v, leader %+v", i, got[i], want[i])
		}
	}
	if f.Len() != e.Len() || f.Total() != e.Total() {
		t.Fatalf("follower len/total %d/%d, leader %d/%d", f.Len(), f.Total(), e.Len(), e.Total())
	}

	// Re-applying the same tail is a no-op (idempotence by LSN).
	applied2, n2, err := f.ApplyWALStream(bytes.NewReader(tail.Bytes()))
	if err != nil || applied2 != applied || n2 != 0 {
		t.Fatalf("re-apply: applied %d records %d err %v, want %d/0/nil", applied2, n2, err, applied)
	}
}

// A follower ahead of the leader (leader restart lost its tail) must see a
// gap, not an empty tail it could mistake for being caught up.
func TestReplTailFollowerAheadIsGap(t *testing.T) {
	fs := faultfs.NewMem()
	e := replTestEngine(t, fs, "wal")
	defer e.Close()
	var buf bytes.Buffer
	info, err := e.WALTail(&buf, e.LastLSN()+10, 0)
	if err != nil {
		t.Fatalf("WALTail: %v", err)
	}
	if !info.Gap {
		t.Fatalf("from > leader LSN must report a gap: %+v", info)
	}
}

// Checkpointing retires covered log files; a tail request from before the
// checkpoint must then report a gap (the follower re-bootstraps), never an
// incomplete stream that looks complete.
func TestReplTailAfterCheckpointRetireIsGap(t *testing.T) {
	fs := faultfs.NewMem()
	e := replTestEngine(t, fs, "wal")
	defer e.Close()
	for i := 0; i < 10; i++ {
		if _, err := e.Insert([]float64{float64(i), 0}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	// Seal the current log file so the checkpoint can retire it, then write
	// more so the leader LSN moves past the retired range.
	e.wal.rotate()
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := e.Insert([]float64{0, float64(i)}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	var buf bytes.Buffer
	info, err := e.WALTail(&buf, 0, 0)
	if err != nil {
		t.Fatalf("WALTail: %v", err)
	}
	if !info.Gap {
		t.Fatalf("tail across a retired range must report a gap: %+v", info)
	}
	// From the checkpoint's LSN the tail is contiguous again.
	buf.Reset()
	info, err = e.WALTail(&buf, 10, 0)
	if err != nil || info.Gap || info.Last != e.LastLSN() {
		t.Fatalf("tail from checkpoint LSN: info %+v err %v", info, err)
	}
}

// A capped tail must stop cleanly at a record boundary without reporting a
// gap, and resuming from Last chunk by chunk must reconstruct exactly the
// state one unbounded tail would have — the discipline that keeps the
// leader's per-request buffer bounded for a far-behind follower.
func TestReplTailCappedResumes(t *testing.T) {
	fs := faultfs.NewMem()
	e := replTestEngine(t, fs, "wal")
	defer e.Close()

	var snap bytes.Buffer
	lsn, err := e.SaveWithLSN(&snap)
	if err != nil {
		t.Fatalf("SaveWithLSN: %v", err)
	}
	for i := 0; i < 50; i++ {
		if _, err := e.Insert([]float64{float64(i), float64(-i)}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}

	f, err := Load(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	cursor := lsn
	chunks := 0
	for {
		var chunk bytes.Buffer
		// Small enough that one chunk holds only a few of the 50 records.
		info, err := e.WALTail(&chunk, cursor, 64)
		if err != nil {
			t.Fatalf("WALTail chunk %d: %v", chunks, err)
		}
		if info.Gap {
			t.Fatalf("capped tail reported a gap: %+v", info)
		}
		if info.Capped && info.Last >= info.LeaderLSN {
			t.Fatalf("Capped with nothing missing: %+v", info)
		}
		if _, _, err := f.ApplyWALStream(bytes.NewReader(chunk.Bytes())); err != nil {
			t.Fatalf("apply chunk %d: %v", chunks, err)
		}
		if f.LastLSN() != info.Last {
			t.Fatalf("chunk %d applied to %d, tail said %d", chunks, f.LastLSN(), info.Last)
		}
		cursor = info.Last
		chunks++
		if !info.Capped {
			if info.Last != e.LastLSN() {
				t.Fatalf("uncapped final chunk reached %d, leader at %d", info.Last, e.LastLSN())
			}
			break
		}
		if chunks > 200 {
			t.Fatal("capped tail never completed")
		}
	}
	if chunks < 2 {
		t.Fatalf("cap of 64 bytes produced only %d chunk(s); the cap did nothing", chunks)
	}
	if f.Len() != e.Len() || f.LastLSN() != e.LastLSN() {
		t.Fatalf("follower len/lsn %d/%d, leader %d/%d", f.Len(), f.LastLSN(), e.Len(), e.LastLSN())
	}
}

// A truncated stream must fail to apply, and a stream with an LSN gap must
// fail with ErrReplGap.
func TestReplApplyRejectsDamage(t *testing.T) {
	fs := faultfs.NewMem()
	e := replTestEngine(t, fs, "wal")
	defer e.Close()
	var snap bytes.Buffer
	if _, err := e.SaveWithLSN(&snap); err != nil {
		t.Fatalf("SaveWithLSN: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Insert([]float64{float64(i), 1}); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	var tail bytes.Buffer
	if info, err := e.WALTail(&tail, 0, 0); err != nil || info.Gap {
		t.Fatalf("WALTail: %+v %v", info, err)
	}

	// Truncated mid-record.
	f, err := Load(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	cut := tail.Len() - 5
	if _, _, err := f.ApplyWALStream(bytes.NewReader(tail.Bytes()[:cut])); !errors.Is(err, ErrReplGap) {
		t.Fatalf("truncated stream: err %v, want ErrReplGap", err)
	}

	// LSN gap: skip the first record after the header.
	f2, err := Load(bytes.NewReader(snap.Bytes()), RuntimeOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	raw := tail.Bytes()
	// First record starts after the 8-byte magic; its length is at +4.
	plen := int(uint32(raw[12]) | uint32(raw[13])<<8 | uint32(raw[14])<<16 | uint32(raw[15])<<24)
	gapped := append(append([]byte(nil), raw[:8]...), raw[8+16+plen:]...)
	if _, _, err := f2.ApplyWALStream(bytes.NewReader(gapped)); !errors.Is(err, ErrReplGap) {
		t.Fatalf("gapped stream: err %v, want ErrReplGap", err)
	}
}
