package core

// Write-ahead logging: crash safety for the memtable. Save/Load persists
// sealed segments, but every row between two seals lives only in memory —
// so each engine appends a checksummed, length-prefixed record per Insert
// and Remove to a log file before publishing the mutation, and Open replays
// the live tail over the last checkpoint. The log is structured for the
// three failure modes recovery must absorb:
//
//   - Torn tails. A crash mid-append leaves a half-written record. Every
//     record carries a CRC over its length, LSN, and payload; replay stops
//     at the first record that fails the check and physically truncates the
//     file there. A torn tail is never an error — it is the expected shape
//     of a crashed log.
//   - Duplicated records. A failed append is repaired (truncate the torn
//     prefix, rewrite the record) or, if the caller retried at a higher
//     level, appended again. Every record carries the mutation's LSN and
//     replay is idempotent: a record whose LSN is not exactly the successor
//     of the last applied LSN is skipped (duplicate) or treated as
//     corruption (gap).
//   - Mid-rotation crashes. Log files seal in lockstep with memtable seals
//     (compaction rotates to a fresh file) and a checkpoint retires files
//     whose records are all covered; a crash between those steps leaves
//     stale or missing files, which recovery tolerates: fully-covered files
//     replay as no-ops, and a missing final file just means the tail was
//     empty.
//
// Group commit: writers append under the log's mutex (cheap memory copies),
// then wait for durability OUTSIDE the engine's writer lock. A single
// committer goroutine fsyncs once per commit window; every writer whose
// record landed before that fsync shares it. Under SyncAlways an insert's
// latency includes one (shared) fsync; under SyncInterval the committer
// fsyncs on a timer and acknowledgment only promises the record is in the
// OS's hands; under SyncNever only rotation, checkpointing, and Close sync.
//
// Failure policy: a write or fsync error poisons the log (sticky ErrWAL).
// Mutations fail fast from then on — the engine's data stays queryable, and
// the serving layer degrades to read-only instead of crashing.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultfs"
)

// ErrWAL marks a sticky write-ahead-log failure: the record (or a
// subsequent fsync) could not be made durable, and every later mutation on
// the engine fails fast with the same error. Reads are unaffected. Check
// with errors.Is.
var ErrWAL = errors.New("core: write-ahead log failure")

// SyncPolicy selects when appended WAL records are fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs before a mutation is acknowledged. One fsync covers
	// every writer blocked in the same commit window (group commit), so
	// concurrent writers share the cost.
	SyncAlways SyncPolicy = iota
	// SyncInterval acknowledges after the record is written to the OS and
	// fsyncs on a timer: a process crash loses nothing, a power failure
	// loses at most the last interval.
	SyncInterval
	// SyncNever leaves fsync to rotation, checkpointing, and Close.
	SyncNever
)

// String names the policy (the -sync flag values).
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", int(p))
}

// WALConfig attaches a write-ahead log to an engine.
type WALConfig struct {
	// Dir holds the engine's log files and checkpoint. Required.
	Dir string
	// FS is the filesystem the log talks to; nil selects the real one.
	// Tests inject faultfs.Mem to crash and fault the log deterministically.
	FS faultfs.FS
	// Policy is the fsync policy. Default SyncAlways.
	Policy SyncPolicy
	// Interval is SyncInterval's fsync cadence. Default 100ms.
	Interval time.Duration
	// CheckpointBytes triggers a background checkpoint (write the full
	// snapshot, retire covered log files) once sealed log files exceed this
	// many bytes. Default 4 MiB.
	CheckpointBytes int64
}

// CommitWait blocks until the mutation that returned it is durable per the
// engine's sync policy; it returns the commit window's error if the fsync
// failed. A nil CommitWait means there is nothing to wait for.
type CommitWait func() error

// WALStats is the observable state of an engine's write-ahead log.
type WALStats struct {
	// Enabled reports whether the engine has a WAL at all.
	Enabled bool
	// Appends counts records written; Fsyncs counts fsync calls issued
	// (group commit makes Fsyncs ≤ Appends under concurrency); Bytes counts
	// record bytes appended.
	Appends, Fsyncs, Bytes uint64
	// ReplayRecords counts records applied during Open's recovery.
	ReplayRecords uint64
	// Rotations counts log-file seals, Checkpoints completed checkpoints.
	Rotations, Checkpoints uint64
	// LSN is the last applied mutation's log sequence number.
	LSN uint64
	// Err is the sticky failure that degraded the log, nil when healthy.
	Err error
}

const (
	walHeaderLen = 8       // file header: magic + version
	recHeaderLen = 16      // crc32 u32 | payload len u32 | lsn u64
	maxWALRecord = 1 << 24 // payload sanity cap: larger lengths are corruption
	opInsert     = 1
	opRemove     = 2

	ckptName = "CHECKPOINT"
)

var (
	walMagic   = [8]byte{'S', 'D', 'W', 'L', 0, 0, 0, 1}
	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// walFile describes a sealed (no longer written) log file.
type walFile struct {
	seq    uint64
	maxLSN uint64
	bytes  int64
}

// walLog is one engine's group-committed log.
type walLog struct {
	fs       faultfs.FS
	dir      string
	policy   SyncPolicy
	interval time.Duration
	ckptBy   int64

	mu        sync.Mutex
	f         faultfs.File
	seq       uint64
	fileBytes int64
	maxLSN    uint64 // highest LSN in the current file (0 = empty)
	sealed    []walFile
	batch     *commitBatch
	dirty     bool // written since last fsync
	failed    error

	ckptMu sync.Mutex // serializes checkpoints

	buf  []byte // record scratch, reused under mu
	wake chan struct{}
	quit chan struct{}
	done chan struct{}
	stop sync.Once

	appends, fsyncs, bytes, replayed, rotations, checkpoints atomic.Uint64
}

// commitBatch is one group-commit window: every writer whose record landed
// while the window was open shares its fsync and its error.
type commitBatch struct {
	done chan struct{}
	err  error
}

func (wc *WALConfig) withDefaults() WALConfig {
	c := *wc
	if c.FS == nil {
		c.FS = faultfs.OS{}
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.CheckpointBytes <= 0 {
		c.CheckpointBytes = 4 << 20
	}
	return c
}

func newWALLog(c WALConfig) *walLog {
	return &walLog{
		fs:       c.FS,
		dir:      c.Dir,
		policy:   c.Policy,
		interval: c.Interval,
		ckptBy:   c.CheckpointBytes,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

func (l *walLog) pathFor(seq uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%09d.wal", seq))
}

// openSeq creates log file seq and writes its header. Caller holds mu (or
// is single-threaded setup).
func (l *walLog) openSeq(seq uint64) (faultfs.File, error) {
	f, err := l.fs.OpenFile(l.pathFor(seq), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(walMagic[:]); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// start opens the current log file (seq) and launches the committer.
func (l *walLog) start(seq uint64) error {
	f, err := l.openSeq(seq)
	if err != nil {
		return fmt.Errorf("%w: open %s: %v", ErrWAL, l.pathFor(seq), err)
	}
	l.f = f
	l.seq = seq
	l.fileBytes = walHeaderLen
	go l.run()
	return nil
}

// poison records the first hard failure; later mutations fail fast with it.
// Caller holds mu.
func (l *walLog) poison(op string, err error) error {
	l.failed = fmt.Errorf("%w: %s: %v", ErrWAL, op, err)
	return l.failed
}

// appendInsert logs an insert. Called under the engine's writer lock; the
// returned CommitWait must be awaited after releasing it.
func (l *walLog) appendInsert(lsn uint64, id int, p []float64) (CommitWait, error) {
	return l.append(lsn, func(buf []byte) []byte {
		buf = append(buf, opInsert)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
		for _, c := range p {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c))
		}
		return buf
	})
}

// appendRemove logs a remove.
func (l *walLog) appendRemove(lsn uint64, id int) (CommitWait, error) {
	return l.append(lsn, func(buf []byte) []byte {
		buf = append(buf, opRemove)
		return binary.LittleEndian.AppendUint64(buf, uint64(id))
	})
}

func (l *walLog) append(lsn uint64, payload func([]byte) []byte) (CommitWait, error) {
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return nil, err
	}
	buf := append(l.buf[:0], make([]byte, 8)...) // crc + len placeholders
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = payload(buf)
	l.buf = buf
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(buf)-recHeaderLen))
	binary.LittleEndian.PutUint32(buf[0:4], crc32.Checksum(buf[4:], castagnoli))

	start := l.fileBytes
	if n, err := l.f.Write(buf); err != nil || n < len(buf) {
		if err == nil {
			err = io.ErrShortWrite
		}
		// Repair-and-retry: chop whatever torn prefix landed, then write the
		// whole record once more. Leaving the torn prefix in place would make
		// replay stop there and discard this (and every later) record; the
		// truncate keeps the log physically clean. If repair fails too, the
		// log is poisoned and the engine degrades to read-only.
		if terr := l.fs.Truncate(l.pathFor(l.seq), start); terr != nil {
			perr := l.poison("append", fmt.Errorf("%v (repair truncate: %v)", err, terr))
			l.mu.Unlock()
			return nil, perr
		}
		if n, err = l.f.Write(buf); err != nil || n < len(buf) {
			if err == nil {
				err = io.ErrShortWrite
			}
			perr := l.poison("append retry", err)
			l.mu.Unlock()
			return nil, perr
		}
	}
	l.fileBytes = start + int64(len(buf))
	l.maxLSN = lsn
	l.dirty = true
	l.appends.Add(1)
	l.bytes.Add(uint64(len(buf)))

	if l.policy != SyncAlways {
		l.mu.Unlock()
		return nil, nil
	}
	b := l.batch
	if b == nil {
		b = &commitBatch{done: make(chan struct{})}
		l.batch = b
	}
	l.mu.Unlock()
	select {
	case l.wake <- struct{}{}:
	default:
	}
	return func() error { <-b.done; return b.err }, nil
}

// run is the committer: it owns the fsync that closes each commit window.
func (l *walLog) run() {
	defer close(l.done)
	var tickC <-chan time.Time
	if l.policy == SyncInterval {
		t := time.NewTicker(l.interval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-l.quit:
			l.flushWindow()
			return
		case <-l.wake:
			l.flushWindow()
		case <-tickC:
			l.flushWindow()
		}
	}
}

// flushWindow closes the open commit window: one fsync covers every record
// appended since the last one, and every waiter in the window shares the
// outcome.
func (l *walLog) flushWindow() {
	l.mu.Lock()
	b := l.batch
	l.batch = nil
	err := l.failed
	if err == nil && l.dirty && l.f != nil {
		if serr := l.f.Sync(); serr != nil {
			err = l.poison("fsync", serr)
		} else {
			l.dirty = false
			l.fsyncs.Add(1)
		}
	}
	l.mu.Unlock()
	if b != nil {
		b.err = err
		close(b.done)
	}
}

// sync force-fsyncs the current file regardless of policy (the drain path).
func (l *walLog) sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	if l.f == nil || !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return l.poison("fsync", err)
	}
	l.dirty = false
	l.fsyncs.Add(1)
	return nil
}

// rotate seals the current log file and opens the next — called when the
// compactor seals the memtable, so sealed segments and sealed log files
// advance in lockstep and checkpoints can retire whole files.
func (l *walLog) rotate() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil || l.f == nil || l.maxLSN == 0 {
		return // degraded, closed, or nothing logged since the last seal
	}
	if l.dirty {
		if err := l.f.Sync(); err != nil {
			l.poison("rotate fsync", err)
			return
		}
		l.dirty = false
		l.fsyncs.Add(1)
	}
	l.f.Close()
	l.sealed = append(l.sealed, walFile{seq: l.seq, maxLSN: l.maxLSN, bytes: l.fileBytes})
	f, err := l.openSeq(l.seq + 1)
	if err != nil {
		l.f = nil
		l.poison("rotate open", err)
		return
	}
	l.f = f
	l.seq++
	l.fileBytes = walHeaderLen
	l.maxLSN = 0
	l.rotations.Add(1)
}

// sealedBytes is the volume of sealed, unretired log — the checkpoint
// trigger's input.
func (l *walLog) sealedBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var n int64
	for _, s := range l.sealed {
		n += s.bytes
	}
	return n
}

// retire deletes sealed log files entirely covered by a checkpoint at lsn.
func (l *walLog) retire(lsn uint64) {
	l.mu.Lock()
	var del []uint64
	keep := l.sealed[:0]
	for _, s := range l.sealed {
		if s.maxLSN <= lsn {
			del = append(del, s.seq)
		} else {
			keep = append(keep, s)
		}
	}
	l.sealed = keep
	l.mu.Unlock()
	for _, seq := range del {
		l.fs.Remove(l.pathFor(seq))
	}
	if len(del) > 0 {
		l.fs.SyncDir(l.dir)
	}
}

// close stops the committer, flushes, and closes the current file.
func (l *walLog) close() error {
	l.stop.Do(func() {
		close(l.quit)
		<-l.done
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.failed
	}
	var err error
	if l.dirty && l.failed == nil {
		if err = l.f.Sync(); err != nil {
			err = l.poison("close fsync", err)
		} else {
			l.dirty = false
			l.fsyncs.Add(1)
		}
	}
	cerr := l.f.Close()
	l.f = nil
	if err == nil {
		err = l.failed
	}
	if err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Engine integration.

// attachWAL wires a fresh (empty-log) WAL under an engine that was just
// built: it writes the initial checkpoint — the WAL directory invariantly
// holds a loadable checkpoint from the first moment on — and opens log file
// seq for appends.
func (e *Engine) attachWAL(c WALConfig, seq uint64) error {
	c = c.withDefaults()
	if c.Dir == "" {
		return fmt.Errorf("%w: no directory configured", ErrWAL)
	}
	if err := c.FS.MkdirAll(c.Dir); err != nil {
		return fmt.Errorf("%w: mkdir: %v", ErrWAL, err)
	}
	if _, err := c.FS.Stat(filepath.Join(c.Dir, ckptName)); err == nil {
		return fmt.Errorf("%w: %s already holds a checkpoint; recover it with Open instead of overwriting", ErrWAL, c.Dir)
	}
	l := newWALLog(c)
	e.wal = l
	if err := e.Checkpoint(); err != nil {
		e.wal = nil
		return err
	}
	if err := l.start(seq); err != nil {
		e.wal = nil
		return err
	}
	return nil
}

// AttachWAL wires a write-ahead log under an engine that has none — the
// promotion path: a replica built from snapshot streams (no WAL) is elected
// leader and must become durable before it accepts writes. The directory
// must be fresh (attach writes the initial checkpoint, which covers every
// mutation applied so far, and refuses a directory already holding one);
// subsequent mutations log from the engine's current LSN onward, so a
// follower of the promoted engine sees one contiguous history. The caller
// must guarantee no mutations are in flight during the attach.
func (e *Engine) AttachWAL(c WALConfig) error {
	if e.wal != nil {
		return fmt.Errorf("%w: engine already has a write-ahead log", ErrWAL)
	}
	return e.attachWAL(c, 1)
}

// Checkpoint writes the engine's current snapshot to the WAL directory
// (atomically: tmp + fsync + rename + dir sync) and retires every sealed
// log file the checkpoint covers. The background compactor triggers it once
// sealed log volume passes WALConfig.CheckpointBytes; it is also safe to
// call explicitly. No-op without a WAL.
func (e *Engine) Checkpoint() error {
	l := e.wal
	if l == nil {
		return nil
	}
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()
	sn := e.snap.Load()
	tmp := filepath.Join(l.dir, ckptName+".tmp")
	f, err := l.fs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	err = e.saveSnapshot(f, sn)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, ckptName)); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("core: checkpoint: %w", err)
	}
	l.checkpoints.Add(1)
	l.retire(sn.walLSN)
	return nil
}

// maybeCheckpoint runs a checkpoint when enough sealed log has piled up.
// Best-effort: on failure the log files stay put and the next trigger
// retries. Called from the compactor.
func (e *Engine) maybeCheckpoint() {
	if e.wal == nil || e.wal.sealedBytes() < e.wal.ckptBy {
		return
	}
	e.Checkpoint()
}

// Sync force-fsyncs the WAL regardless of sync policy — the drain path: a
// server shutting down under SyncInterval/SyncNever calls it so every
// acknowledged mutation survives power loss too. No-op without a WAL.
func (e *Engine) Sync() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.sync()
}

// Close flushes and closes the engine's WAL. The engine stays queryable
// (reads never touch the log) but every later mutation fails. No-op without
// a WAL.
func (e *Engine) Close() error {
	if e.wal == nil {
		return nil
	}
	return e.wal.close()
}

// WALStats reports the WAL's counters and health. Engines without a WAL
// report Enabled=false.
func (e *Engine) WALStats() WALStats {
	l := e.wal
	if l == nil {
		return WALStats{}
	}
	st := WALStats{
		Enabled:       true,
		Appends:       l.appends.Load(),
		Fsyncs:        l.fsyncs.Load(),
		Bytes:         l.bytes.Load(),
		ReplayRecords: l.replayed.Load(),
		Rotations:     l.rotations.Load(),
		Checkpoints:   l.checkpoints.Load(),
		LSN:           e.snap.Load().walLSN,
	}
	l.mu.Lock()
	st.Err = l.failed
	l.mu.Unlock()
	return st
}

// Total reports the engine's global-ID-space size: every past insert's ID is
// below it, and the next caller-assigned ID must not be. The sharded layer
// rebuilds its ID-routing table against it after recovery.
func (e *Engine) Total() int { return e.snap.Load().total }

// RangeIDs calls f with every global ID the engine still locates — live or
// tombstoned — in ascending order.
func (e *Engine) RangeIDs(f func(id int32)) {
	sn := e.snap.Load()
	for _, s := range sn.segs {
		for _, id := range s.ids {
			f(id)
		}
	}
	for _, id := range sn.memIDs {
		f(id)
	}
}

// Open recovers a WAL-backed engine from its directory: load the
// checkpoint, replay the log tail (idempotently, by LSN), truncate at the
// first corrupt record, and come back up appending to a fresh log file.
// Recovery never fails on a torn tail — that is the normal shape of a
// crashed log; it fails only when the directory is structurally unusable
// (no checkpoint, unreadable checkpoint).
func Open(c WALConfig, opt RuntimeOptions) (*Engine, error) {
	c = c.withDefaults()
	if c.Dir == "" {
		return nil, fmt.Errorf("%w: no directory configured", ErrWAL)
	}
	ckf, err := c.FS.OpenFile(filepath.Join(c.Dir, ckptName), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", c.Dir, err)
	}
	e, err := Load(bufio.NewReader(ckf), opt)
	ckf.Close()
	if err != nil {
		return nil, fmt.Errorf("core: open %s: checkpoint: %w", c.Dir, err)
	}
	ckptLSN := e.snap.Load().walLSN

	l := newWALLog(c)
	seqs, err := listWALFiles(c.FS, c.Dir)
	if err != nil {
		return nil, fmt.Errorf("core: open %s: %w", c.Dir, err)
	}
	if err := e.replayWAL(l, seqs); err != nil {
		return nil, err
	}
	nextSeq := uint64(1)
	if n := len(seqs); n > 0 {
		nextSeq = seqs[n-1] + 1
	}
	e.wal = l
	if err := l.start(nextSeq); err != nil {
		e.wal = nil
		return nil, err
	}
	// Files fully covered by the checkpoint we just loaded may be left over
	// from a crash between checkpoint install and retirement — drop them now.
	l.retire(ckptLSN)
	if e.needsCompaction() {
		e.kickCompactor()
	}
	return e, nil
}

// listWALFiles returns the directory's log-file sequence numbers, ascending.
func listWALFiles(ffs faultfs.FS, dir string) ([]uint64, error) {
	names, err := ffs.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		var seq uint64
		if _, err := fmt.Sscanf(name, "%d.wal", &seq); err == nil && name == fmt.Sprintf("%09d.wal", seq) {
			seqs = append(seqs, seq)
		}
	}
	return seqs, nil
}

// replayWAL applies the log tail to a checkpoint-loaded engine, populating
// l.sealed with the scanned files. At the first corruption it truncates
// that file at the last valid record and deletes every later file — nothing
// is ever replayed past a corruption.
func (e *Engine) replayWAL(l *walLog, seqs []uint64) error {
	applied := e.snap.Load().walLSN
	for i, seq := range seqs {
		path := l.pathFor(seq)
		end, corrupt, fileMax, err := e.replayFile(l, path, &applied)
		if err != nil {
			return err
		}
		if fileMax > 0 {
			l.sealed = append(l.sealed, walFile{seq: seq, maxLSN: fileMax, bytes: end})
		}
		if corrupt {
			// Corruption: physically chop the tail, drop every later file
			// (their records are past the corruption and cannot be trusted
			// to be a prefix of the acknowledged history), and stop.
			if terr := l.fs.Truncate(path, end); terr != nil {
				return fmt.Errorf("%w: truncate torn tail of %s: %v", ErrWAL, path, terr)
			}
			for _, later := range seqs[i+1:] {
				l.fs.Remove(l.pathFor(later))
			}
			if derr := l.fs.SyncDir(l.dir); derr != nil {
				return fmt.Errorf("%w: sync dir: %v", ErrWAL, derr)
			}
			return nil
		}
	}
	return nil
}

// replayFile replays one log file. end is the byte offset of the last valid
// record's end, corrupt reports whether a bad record (torn, checksum
// mismatch, implausible length, LSN gap) was found past it, and fileMax is
// the highest LSN seen among valid records (0 = none). The error return is
// for infrastructure failures only (the file cannot be opened), never
// corruption.
func (e *Engine) replayFile(l *walLog, path string, applied *uint64) (end int64, corrupt bool, fileMax uint64, err error) {
	f, err := l.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return 0, false, 0, fmt.Errorf("%w: open %s: %v", ErrWAL, path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil || hdr != walMagic {
		return 0, true, 0, nil // torn or alien header: the whole file is tail
	}
	off := int64(walHeaderLen)
	var rec [recHeaderLen]byte
	payload := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return off, false, fileMax, nil // clean end at a record boundary
			}
			return off, true, fileMax, nil // torn header
		}
		plen := binary.LittleEndian.Uint32(rec[4:8])
		if plen > maxWALRecord {
			return off, true, fileMax, nil // implausible length: corruption
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return off, true, fileMax, nil // torn payload
		}
		crc := crc32.Checksum(rec[4:], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(rec[0:4]) {
			return off, true, fileMax, nil // bad checksum
		}
		lsn := binary.LittleEndian.Uint64(rec[8:16])
		switch {
		case lsn <= *applied:
			// Duplicate (retried append, or a file fully covered by the
			// checkpoint): already applied, skip.
		case lsn == *applied+1:
			if !e.applyRecord(payload, lsn) {
				// CRC-valid but semantically invalid (colliding corruption):
				// treat exactly like a bad checksum.
				return off, true, fileMax, nil
			}
			*applied = lsn
			l.replayed.Add(1)
		default:
			return off, true, fileMax, nil // LSN gap: records are missing, stop
		}
		if lsn > fileMax {
			fileMax = lsn
		}
		off += recHeaderLen + int64(plen)
	}
}

// applyRecord applies one valid WAL record to the engine, reporting whether
// its payload was semantically sound.
func (e *Engine) applyRecord(payload []byte, lsn uint64) bool {
	if len(payload) < 9 {
		return false
	}
	op, id := payload[0], binary.LittleEndian.Uint64(payload[1:9])
	switch op {
	case opInsert:
		if len(payload) != 9+8*e.dims || id > math.MaxInt32 {
			return false
		}
		p := make([]float64, e.dims)
		for d := range p {
			p[d] = math.Float64frombits(binary.LittleEndian.Uint64(payload[9+8*d:]))
		}
		return e.replayInsert(int(id), p, lsn)
	case opRemove:
		if len(payload) != 9 || id > math.MaxInt32 {
			return false
		}
		e.replayRemove(int(id), lsn)
		return true
	}
	return false
}

// replayInsert applies a recovered insert without logging it again.
func (e *Engine) replayInsert(id int, p []float64, lsn uint64) bool {
	if validRow(p, e.dims) != nil {
		return false
	}
	e.wrMu.Lock()
	defer e.wrMu.Unlock()
	cur := e.snap.Load()
	if id < cur.total {
		return false // IDs are assigned ascending; a replayed ID below the space is corruption
	}
	e.publishInsert(cur, int32(id), p, lsn)
	return true
}

// replayRemove applies a recovered remove. A remove of an absent or already
// dead row still advances the LSN (the acknowledged history said "not
// removed", which replay reproduces exactly).
func (e *Engine) replayRemove(id int, lsn uint64) {
	e.wrMu.Lock()
	defer e.wrMu.Unlock()
	cur := e.snap.Load()
	if !e.removeLocked(cur, id, lsn) {
		ns := *cur
		ns.epoch = cur.epoch + 1
		ns.walLSN = lsn
		e.snap.Store(&ns)
	}
}
