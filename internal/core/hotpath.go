package core

import (
	"fmt"
	"math"

	"repro/internal/dimlist"
	"repro/internal/geom"
	"repro/internal/pq"
	"repro/internal/query"
	"repro/internal/simd"
	"repro/internal/topk"
)

// maxBatch is the widest per-subproblem bulk fetch: the engine's leaf-cursor
// cap, so one adaptive batch can drain a whole packed leaf run.
const maxBatch = 64

// subproblem is one term of Eqn. 10 evaluated over one sealed segment: an
// iterator over the segment's points in decreasing contribution order plus
// an upper bound on the contribution of any point it has not yet produced.
// The contract is batch-oriented: nextBatch fills dst with up to len(dst)
// emissions per call (0 when exhausted) and returns the post-batch frontier
// bound, so the aggregation loop pays one virtual dispatch per run instead
// of per point; bound peeks the same value without fetching, which the
// bound-driven scheduler uses to seed its ordering before the first access.
// Emission IDs are segment-local rows; the aggregation translates them to
// global dataset IDs through the segment's ID map.
type subproblem interface {
	nextBatch(dst []query.Emission) (n int, bound float64)
	bound() float64
}

// pairSub adapts a 2D §4 stream. The Stream is stored by value so a pooled
// query context reuses its cursor, merge, and heap storage across queries.
type pairSub struct {
	st topk.Stream
}

func (p *pairSub) nextBatch(dst []query.Emission) (int, float64) { return p.st.NextBatch(dst) }

func (p *pairSub) bound() float64 {
	if sc, ok := p.st.PeekScore(); ok {
		return sc
	}
	return math.Inf(-1)
}

// dimSub adapts a 1D sorted-list iterator, also stored by value.
type dimSub struct {
	it dimlist.Iter
}

func (d *dimSub) nextBatch(dst []query.Emission) (int, float64) { return d.it.NextBatch(dst) }

func (d *dimSub) bound() float64 { return d.it.Bound() }

// subRef carries the per-subproblem segment context the aggregation needs at
// emission time: the owning segment (ID translation, random-access rows),
// its snapshot tombstones, and its ordinal in the snapshot stack (the
// scheduler groups sibling bounds per segment).
type subRef struct {
	seg  *segment
	tomb []uint64
	ord  int32
}

// intAscending is the collector's tie order (ascending global dataset ID),
// shared so pooled collectors carry no per-query closure.
func intAscending(a, b int) bool { return a < b }

// queryCtx is the pooled per-query state of TopKAppend: weights, signed
// weights, subproblem storage, frontier bounds, batch sizes, per-segment
// sums and pads, the emission buffer, the seen bitset, the collector with
// its drain buffer, and the scratch plan for shapes the engine's plan cache
// does not cover. One context cycles through queries via the engine's
// sync.Pool; on a compacted engine (one sealed segment, empty memtable) a
// warm context replays queries with zero heap allocations.
type queryCtx struct {
	e      *Engine
	sn     *snapshot // the query's frozen epoch
	w      []float64 // effective weights under build-time roles
	signed []float64 // +w repulsive / −w attractive, folding the role branch

	pairSubs []pairSub // value storage; subs holds pointers into it
	dimSubs  []dimSub
	nPair    int // pairSubs in use (their streams need closing)
	nDim     int
	subs     []subproblem
	refs     []subRef // parallel to subs

	bounds  []float64
	bsize   []int
	rate    []float64 // measured frontier descent per access (scheduler.go)
	anchorB []float64 // bound at the start of the current rate window
	sinceN  []int     // accesses accumulated in the current rate window

	segSum  []float64 // per-segment Σ bounds (scheduler scratch)
	segPad  []float64 // per-segment float-error pad
	segDone []bool    // segment fully enumerated (one sub exhausted)

	emit [maxBatch]query.Emission
	// Candidate batch scratch: runBatch defers the emissions that survive its
	// masks and prune to these arrays and scores the whole batch with one
	// column-sweep kernel call instead of a strided per-row loop.
	candRow   [maxBatch]int32
	candGID   [maxBatch]int32
	candScore [maxBatch]float64
	seen      []uint64 // bitset over global dataset IDs
	coll      *pq.TopK[int]
	drain     []pq.Scored[int]
	scratch   queryPlan // plan storage for uncached shapes
	sortRep   []int32   // adaptive planner scratch: active dims by weight
	sortAtt   []int32

	// done is the query's optional cancellation signal (a context's Done
	// channel on the serving path); nil means the query runs to completion.
	// The scheduler loops poll it once per scheduling step, so cancellation
	// latency is one adaptive batch (≤ maxBatch sorted accesses), and the
	// context is released back to the pool on every exit path — a cancelled
	// query leaks no pooled buffers.
	done     <-chan struct{}
	canceled bool

	// Intra-query parallel state (parallel.go). floor is set only while the
	// context runs as one segment's task of a parallel query: both scheduler
	// loops then prune and terminate against max(local k-th best, floor).
	// The remaining fields belong to the parent: floorStore is the query's
	// shared floor, parPl/parSpec stage the plan for the segment tasks, the
	// kid* arrays collect per-task contexts, stats, and errors, and parFn is
	// the method value handed to the Runner — bound once at pool-construction
	// time so dispatching a parallel query allocates nothing.
	floor      *qfloor
	floorStore qfloor
	parPl      *queryPlan
	parSpec    query.Spec
	kidCtx     []*queryCtx
	kidStats   []Stats
	kidErr     []error
	parFn      func(i int)
}

// initCtxPool wires the engine's context pool; called once at build time,
// after the layout is fixed.
func (e *Engine) initCtxPool() {
	e.ctxPool.New = func() any {
		c := &queryCtx{
			e:       e,
			w:       make([]float64, e.dims),
			signed:  make([]float64, e.dims),
			coll:    pq.NewTopKOrdered[int](1, intAscending),
			sortRep: make([]int32, 0, len(e.layout.gridRep)),
			sortAtt: make([]int32, 0, len(e.layout.gridAtt)),
		}
		c.parFn = c.runKid
		return c
	}
}

// subsPerSegment is the worst-case subproblem count one segment contributes
// under the engine's layout.
func (e *Engine) subsPerSegment() (npair, ndim int) {
	lo := &e.layout
	if lo.adaptive {
		// Matched pairs plus degenerate leftovers never exceed the larger
		// active role set.
		npair = len(lo.gridRep)
		if len(lo.gridAtt) > npair {
			npair = len(lo.gridAtt)
		}
		return npair, 0
	}
	return len(lo.pairs), len(lo.lone)
}

// getCtx acquires a context sized for the given snapshot: the pooled bitset
// covers the snapshot's whole global ID space, and the subproblem and
// scheduler arrays cover every segment in the stack. Pooled capacity is kept
// across queries, so in steady state (a stable segment count) nothing here
// allocates.
func (e *Engine) getCtx(sn *snapshot) *queryCtx {
	c := e.ctxPool.Get().(*queryCtx)
	c.sn = sn
	if need := (sn.total + 63) / 64; len(c.seen) < need {
		c.seen = make([]uint64, need)
	}
	npair, ndim := e.subsPerSegment()
	nseg := len(sn.segs)
	for len(c.pairSubs) < npair*nseg {
		c.pairSubs = append(c.pairSubs, pairSub{})
	}
	for len(c.dimSubs) < ndim*nseg {
		c.dimSubs = append(c.dimSubs, dimSub{})
	}
	nsub := (npair + ndim) * nseg
	if cap(c.bounds) < nsub {
		c.bounds = make([]float64, nsub)
		c.bsize = make([]int, nsub)
		c.rate = make([]float64, nsub)
		c.anchorB = make([]float64, nsub)
		c.sinceN = make([]int, nsub)
	}
	if cap(c.segSum) < nseg {
		c.segSum = make([]float64, nseg)
		c.segPad = make([]float64, nseg)
		c.segDone = make([]bool, nseg)
	}
	return c
}

// putCtx releases per-query resources (stream heaps back to their pool, the
// bitset cleared) and returns the context.
func (e *Engine) putCtx(c *queryCtx) {
	for i := 0; i < c.nPair; i++ {
		c.pairSubs[i].st.Close()
	}
	c.nPair, c.nDim = 0, 0
	c.subs = c.subs[:0]
	c.refs = c.refs[:0]
	c.sn = nil
	c.done, c.canceled = nil, false // never pin a request's Done channel
	c.floor = nil
	clear(c.seen)
	e.ctxPool.Put(c)
}

// markSeen reports "newly seen" for a global dataset ID. Every emission's ID
// is below the snapshot's total, which the bitset covers by construction.
func (c *queryCtx) markSeen(id int32) bool {
	w := int(id) >> 6
	b := uint64(1) << (uint(id) & 63)
	if c.seen[w]&b != 0 {
		return false
	}
	c.seen[w] |= b
	return true
}

// TopKAppend is TopKWithStats appending into dst: with a caller-reused dst
// the steady-state query path performs no allocation. Results are appended
// best-first; dst's existing elements are preserved.
//
// The flow is snapshot, plan, build, schedule: one atomic load freezes the
// engine's segment stack (no lock is taken anywhere on this path), the
// query's shape resolves to a plan (usually a cache hit — see plan.go)
// naming the surviving subproblems, the plan's subproblems are bound to
// every sealed segment, the memtable's rows are scored exactly up front,
// and the engine's configured scheduler (scheduler.go) drives the §5
// aggregation to the exact answer.
func (e *Engine) TopKAppend(dst []query.Result, spec query.Spec) ([]query.Result, Stats, error) {
	return e.topKAppendAt(e.snap.Load(), dst, spec, nil)
}

// TopKAppendCancel is TopKAppend with a cancellation signal: when done is
// closed, the aggregation stops at its next scheduling step — at most one
// adaptive batch of sorted accesses later — releases every pooled resource,
// and returns ErrCanceled. A nil done behaves exactly like TopKAppend (the
// zero-allocation hot path is unchanged; the poll is nil-guarded). This is
// the deadline plumbing the serving layer's per-request timeouts stand on.
func (e *Engine) TopKAppendCancel(dst []query.Result, spec query.Spec, done <-chan struct{}) ([]query.Result, Stats, error) {
	return e.topKAppendAt(e.snap.Load(), dst, spec, done)
}

// topKAppendAt is TopKAppend evaluated at a pinned snapshot (the View query
// path and the default path share it).
func (e *Engine) topKAppendAt(sn *snapshot, dst []query.Result, spec query.Spec, done <-chan struct{}) ([]query.Result, Stats, error) {
	var stats Stats
	if err := spec.Validate(e.dims); err != nil {
		return dst, stats, err
	}
	c := e.getCtx(sn)
	defer e.putCtx(c)
	c.done = done
	if c.pollCancel() { // already-cancelled requests pay for nothing
		return dst, stats, ErrCanceled
	}

	pl, hit := e.planFor(spec, &c.scratch)
	if pl.err != nil {
		return dst, stats, pl.err
	}
	if hit {
		stats.PlanCacheHits = 1
	}
	clear(c.w)
	clear(c.signed)
	for _, ad := range pl.active {
		w := spec.Weights[ad.d]
		c.w[ad.d] = w
		c.signed[ad.d] = float64(ad.sign) * w
	}

	// Ties are broken by ascending global dataset ID, exactly like the
	// sequential scan: every engine answer is then byte-identical to the
	// oracle's, and per-shard answers merge into the exact global top-k.
	coll := c.coll
	coll.Reset(spec.K)
	stats.Segments = len(sn.segs)
	if len(pl.active) == 0 {
		// Every active dimension weighs zero: all live points tie at 0.
		for si, seg := range sn.segs {
			tomb := sn.tombs[si]
			for l := 0; l < seg.rows; l++ {
				if !bitGet(tomb, l) {
					coll.Add(int(seg.ids[l]), 0)
				}
			}
		}
		for i, id := range sn.memIDs {
			if !bitGet(sn.memDead, i) {
				coll.Add(int(id), 0)
			}
		}
		return c.appendResults(dst), stats, nil
	}

	// Bind the plan's subproblems to every sealed segment. pad bounds the
	// absolute floating-point error between a pair stream's emitted
	// scores/bounds (computed in normalized projection space and rescaled)
	// and the exact contribution α·|Δy| − β·|Δx| the random-access rescoring
	// uses. Points are only discarded, and iteration only stopped, when they
	// are worse than the k-th best by more than this pad — so a point in an
	// exact tie at the k-th rank can never be lost to an ulp of projection
	// arithmetic, and answers stay byte-identical to the scan oracle. The 1D
	// list subproblems emit exact contributions, but they still contribute
	// their weighted reach to the pad: the prune and retirement tests sum
	// contributions and sibling bounds in SUBPROBLEM order, which rounds
	// differently than the score kernel's dimension-order sum — on an exact
	// tie at the k-th rank that one-ulp difference is enough to discard a
	// point the oracle keeps (found by fuzzing; regression seed
	// testdata/fuzz/FuzzTopKChurn/89b7ba70eb2254e4). floatSlack times the
	// summed weighted reach budgets the whole summation chain with orders
	// of magnitude to spare. Pads are tracked per segment: a point's
	// unknown contributions come only from its own segment's subproblems.
	par := e.pool != nil && len(sn.segs) > 1
	if !par {
		for s := 0; s < len(sn.segs); s++ {
			c.segPad[s] = 0
		}
		c.prepSubs(pl)
		for si := range sn.segs {
			if err := c.buildSegSubs(pl, spec, si); err != nil {
				return dst, stats, err
			}
		}
	}

	// The memtable is scored exactly, up front: its rows are few (bounded by
	// the compaction threshold), they live in no index structure, and
	// seeding the collector with their exact scores only tightens the
	// threshold the segment aggregation prunes against. Scoring runs through
	// the same unrolled batch kernel as the sealed segments (in row-major
	// form — the memtable is append-oriented), a block at a time through the
	// pooled candidate scratch; dead rows are skipped at collection, so
	// scoring them costs arithmetic but never correctness.
	d := e.dims
	for base := 0; base < len(sn.memIDs); base += maxBatch {
		nb := len(sn.memIDs) - base
		if nb > maxBatch {
			nb = maxBatch
		}
		scores := c.candScore[:nb]
		simd.ScoreRows(scores, sn.memFlat[base*d:(base+nb)*d], d, spec.Point, c.signed)
		for i := 0; i < nb; i++ {
			if bitGet(sn.memDead, base+i) {
				continue
			}
			stats.Scored++
			coll.Add(int(sn.memIDs[base+i]), scores[i])
		}
	}

	if par {
		if err := c.runParallel(pl, spec, &stats); err != nil {
			return dst, stats, err
		}
	} else {
		stats.Subproblems = len(c.subs)
		if len(c.subs) > 0 {
			if e.sched == SchedRoundRobin {
				c.runRoundRobin(spec.Point, &stats)
			} else {
				c.runBoundDriven(spec.Point, &stats)
			}
		}
	}
	if c.canceled {
		// The partial collector state is meaningless to the caller; the
		// deferred putCtx still closes every stream and returns the context
		// to the pool, so cancellation leaks nothing.
		return dst, stats, ErrCanceled
	}
	return c.appendResults(dst), stats, nil
}

// addPairSub binds one 2D subproblem — tree, dimension pair, weights — into
// the context, accumulating its float-pad reach terms into the owning
// segment's pad. Degenerate pairs (one zero weight) are valid: they
// enumerate a single dimension's frontier through the same tree, which is
// how adaptive engines run leftover dimensions without sorted lists.
func (c *queryCtx) addPairSub(tree *topk.Index, ref subRef, rep, attr int, wr, wa float64, qpt []float64) error {
	q2 := geom.Point{X: qpt[attr], Y: qpt[rep]}
	ps := &c.pairSubs[c.nPair]
	if err := tree.StreamInto(&ps.st, q2, wr, wa); err != nil {
		return fmt.Errorf("core: pair (%d, %d): %w", rep, attr, err)
	}
	c.nPair++
	c.segPad[ref.ord] += floatSlack * (wr*c.sn.reach(rep, qpt[rep]) + wa*c.sn.reach(attr, qpt[attr]))
	c.subs = append(c.subs, ps)
	c.refs = append(c.refs, ref)
	return nil
}

// prepSubs computes the per-query, segment-independent part of subproblem
// binding. On adaptive layouts that is the plan-time bijection: the active
// dimensions of each role are sorted by descending weight (ties to the lower
// dimension, so the schedule is deterministic), to be zipped
// strongest-with-strongest by buildSegSubs. Matching strong with strong makes
// each matched pair's frontier fall steeply — measured on the evaluation
// workload, the access floor of this zip is within ~1.5% of the per-query
// optimal bijection. Fixed layouts need no preparation.
func (c *queryCtx) prepSubs(pl *queryPlan) {
	if !c.e.layout.adaptive {
		return
	}
	rep := append(c.sortRep[:0], pl.activeRep...)
	att := append(c.sortAtt[:0], pl.activeAtt...)
	c.sortRep, c.sortAtt = rep, att // keep grown capacity pooled
	sortByWeightDesc(rep, c.w)
	sortByWeightDesc(att, c.w)
}

// buildSegSubs binds the plan's subproblems to one sealed segment,
// accumulating that segment's float-error pad. Callers run prepSubs first.
// The split into prepare-once and bind-per-segment is what lets a parallel
// query's segment tasks each bind exactly their own segment (parallel.go)
// while the sequential path loops over the stack.
//
// Adaptive layouts zip the sorted role lists strongest-with-strongest;
// leftover dimensions of the longer side run as degenerate pairs with a zero
// weight on the missing role, reusing the first grid dimension of that role
// purely as tree storage.
func (c *queryCtx) buildSegSubs(pl *queryPlan, spec query.Spec, si int) error {
	e := c.e
	seg := c.sn.segs[si]
	ref := subRef{seg: seg, tomb: c.sn.tombs[si], ord: int32(si)}
	if !e.layout.adaptive {
		for _, pi := range pl.pairs {
			pr := e.layout.pairs[pi]
			if err := c.addPairSub(seg.trees[pi], ref, pr.Rep, pr.Attr, c.w[pr.Rep], c.w[pr.Attr], spec.Point); err != nil {
				return err
			}
		}
		for _, li := range pl.lone {
			d := e.layout.lone[li]
			ds := &c.dimSubs[c.nDim]
			c.nDim++
			seg.lists[li].InitIter(&ds.it, spec.Point[d], c.w[d], e.roles[d] == query.Attractive)
			c.segPad[ref.ord] += floatSlack * c.w[d] * c.sn.reach(d, spec.Point[d])
			c.subs = append(c.subs, ds)
			c.refs = append(c.refs, ref)
		}
		return nil
	}
	lo := &e.layout
	rep, att := c.sortRep, c.sortAtt
	m := len(rep)
	if len(att) < m {
		m = len(att)
	}
	na := len(lo.gridAtt)
	for i := 0; i < m; i++ {
		r, a := int(rep[i]), int(att[i])
		tree := seg.grid[int(lo.gridPos[r])*na+int(lo.gridPos[a])]
		if err := c.addPairSub(tree, ref, r, a, c.w[r], c.w[a], spec.Point); err != nil {
			return err
		}
	}
	for _, ri := range rep[m:] {
		r, a := int(ri), lo.gridAtt[0]
		tree := seg.grid[int(lo.gridPos[r])*na+0]
		if err := c.addPairSub(tree, ref, r, a, c.w[r], 0, spec.Point); err != nil {
			return err
		}
	}
	for _, ai := range att[m:] {
		r, a := lo.gridRep[0], int(ai)
		tree := seg.grid[0*na+int(lo.gridPos[a])]
		if err := c.addPairSub(tree, ref, r, a, 0, c.w[a], spec.Point); err != nil {
			return err
		}
	}
	return nil
}

// sortByWeightDesc orders dims by descending w[d], breaking ties toward the
// lower dimension index. Insertion sort: the lists are tiny (≤ the role-set
// size) and the scratch is pooled, so this is allocation-free.
func sortByWeightDesc(dims []int32, w []float64) {
	for i := 1; i < len(dims); i++ {
		d := dims[i]
		wd := w[d]
		j := i
		for j > 0 && (w[dims[j-1]] < wd || (w[dims[j-1]] == wd && dims[j-1] > d)) {
			dims[j] = dims[j-1]
			j--
		}
		dims[j] = d
	}
}

// appendResults drains the collector into dst best-first via the pooled
// drain buffer.
func (c *queryCtx) appendResults(dst []query.Result) []query.Result {
	c.drain = c.coll.DrainInto(c.drain[:0])
	for _, s := range c.drain {
		dst = append(dst, query.Result{ID: s.Item, Score: s.Score})
	}
	return dst
}
