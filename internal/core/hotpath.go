package core

import (
	"fmt"
	"math"

	"repro/internal/dimlist"
	"repro/internal/geom"
	"repro/internal/pq"
	"repro/internal/query"
	"repro/internal/topk"
)

// maxBatch is the widest per-subproblem bulk fetch: the engine's leaf-cursor
// cap, so one adaptive batch can drain a whole packed leaf run.
const maxBatch = 64

// subproblem is one term of Eqn. 10: an iterator over points in decreasing
// contribution order plus an upper bound on the contribution of any point it
// has not yet produced. The contract is batch-oriented: nextBatch fills dst
// with up to len(dst) emissions per call (0 when exhausted), so the
// aggregation loop pays one virtual dispatch per run instead of per point.
type subproblem interface {
	nextBatch(dst []query.Emission) int
	bound() float64
}

// pairSub adapts a 2D §4 stream. The Stream is stored by value so a pooled
// query context reuses its cursor, merge, and heap storage across queries.
type pairSub struct {
	st topk.Stream
}

func (p *pairSub) nextBatch(dst []query.Emission) int { return p.st.NextBatch(dst) }

func (p *pairSub) bound() float64 {
	if sc, ok := p.st.PeekScore(); ok {
		return sc
	}
	return math.Inf(-1)
}

// dimSub adapts a 1D sorted-list iterator, also stored by value.
type dimSub struct {
	it dimlist.Iter
}

func (d *dimSub) nextBatch(dst []query.Emission) int { return d.it.NextBatch(dst) }

func (d *dimSub) bound() float64 { return d.it.Bound() }

// intAscending is the collector's tie order (ascending dataset ID), shared
// so pooled collectors carry no per-query closure.
func intAscending(a, b int) bool { return a < b }

// queryCtx is the pooled per-query state of TopKAppend: weights, signed
// weights, subproblem storage, frontier bounds, batch sizes, the emission
// buffer, the seen bitset, and the collector with its drain buffer. One
// context cycles through queries via the engine's sync.Pool, replacing the
// ~10 per-query allocations (and the scoreOf/markSeen closures) the
// unbatched hot path paid.
type queryCtx struct {
	e        *Engine
	w        []float64 // effective weights under build-time roles
	signed   []float64 // +w repulsive / −w attractive, folding the role branch
	pairSubs []pairSub // value storage; subs holds pointers into it
	dimSubs  []dimSub
	nPair    int // pairSubs in use (their streams need closing)
	subs     []subproblem
	bounds   []float64
	bsize    []int
	emit     [maxBatch]query.Emission
	seen     []uint64 // bitset over dataset rows
	overflow map[int32]bool
	coll     *pq.TopK[int]
	drain    []pq.Scored[int]
}

// initCtxPool wires the engine's context pool; called once at build time,
// after pairs and lone dimensions are fixed.
func (e *Engine) initCtxPool() {
	e.ctxPool.New = func() any {
		nsub := len(e.pairs) + len(e.lone)
		return &queryCtx{
			e:        e,
			w:        make([]float64, e.dims),
			signed:   make([]float64, e.dims),
			pairSubs: make([]pairSub, len(e.pairs)),
			dimSubs:  make([]dimSub, len(e.lone)),
			subs:     make([]subproblem, 0, nsub),
			bounds:   make([]float64, nsub),
			bsize:    make([]int, nsub),
			seen:     make([]uint64, (len(e.data)+63)/64),
			coll:     pq.NewTopKOrdered[int](1, intAscending),
		}
	}
}

// getCtx acquires a context sized for the engine's *current* dataset:
// pooled bitsets are regrown to cover rows appended by Insert since the
// context was created, so post-build rows never fall into the per-query
// overflow map.
func (e *Engine) getCtx() *queryCtx {
	c := e.ctxPool.Get().(*queryCtx)
	if need := (len(e.data) + 63) / 64; len(c.seen) < need {
		c.seen = make([]uint64, need)
	}
	return c
}

// putCtx releases per-query resources (stream heaps back to their pool, the
// bitset cleared) and returns the context.
func (e *Engine) putCtx(c *queryCtx) {
	for i := 0; i < c.nPair; i++ {
		c.pairSubs[i].st.Close()
	}
	c.nPair = 0
	c.subs = c.subs[:0]
	clear(c.seen)
	if len(c.overflow) > 0 {
		clear(c.overflow)
	}
	e.ctxPool.Put(c)
}

// markSeen reports "newly seen". Rows beyond the bitset (only possible when
// rows are inserted mid-query, which the engine's concurrency contract
// excludes) fall back to the overflow map.
func (c *queryCtx) markSeen(id int32) bool {
	if w := int(id) >> 6; w < len(c.seen) {
		b := uint64(1) << (uint(id) & 63)
		if c.seen[w]&b != 0 {
			return false
		}
		c.seen[w] |= b
		return true
	}
	if c.overflow[id] {
		return false
	}
	if c.overflow == nil {
		c.overflow = make(map[int32]bool)
	}
	c.overflow[id] = true
	return true
}

// scoreOf is the devirtualized random-access score kernel: one tight pass
// over the flat row-major array with the signed weights folding the role
// branch into the arithmetic. math.Abs compiles to a bit mask, so the loop
// is branch-free; the re-slicing below lets the compiler drop bounds checks.
func (c *queryCtx) scoreOf(qpt []float64, id int32) float64 {
	d := c.e.dims
	base := int(id) * d
	row := c.e.flat[base : base+d : base+d]
	sg := c.signed[:len(row)]
	qp := qpt[:len(row)]
	var s float64
	for k := 0; k < len(row); k++ {
		s += sg[k] * math.Abs(row[k]-qp[k])
	}
	return s
}

// TopKAppend is TopKWithStats appending into dst: with a caller-reused dst
// the steady-state query path performs no allocation. Results are appended
// best-first; dst's existing elements are preserved.
func (e *Engine) TopKAppend(dst []query.Result, spec query.Spec) ([]query.Result, Stats, error) {
	var stats Stats
	if err := spec.Validate(e.dims); err != nil {
		return dst, stats, err
	}
	c := e.getCtx()
	defer e.putCtx(c)

	for d := 0; d < e.dims; d++ {
		c.w[d] = 0
		switch spec.Roles[d] {
		case query.Ignored:
			// stays 0
		case e.roles[d]:
			c.w[d] = spec.Weights[d]
		default:
			return dst, stats, fmt.Errorf("core: dimension %d queried as %v but indexed as %v",
				d, spec.Roles[d], e.roles[d])
		}
		if e.roles[d] == query.Repulsive {
			c.signed[d] = c.w[d]
		} else {
			c.signed[d] = -c.w[d]
		}
	}

	// pad bounds the absolute floating-point error between a pair stream's
	// emitted scores/bounds (computed in normalized projection space and
	// rescaled) and the exact contribution α·|Δy| − β·|Δx| the random-access
	// rescoring uses. Points are only discarded, and iteration only stopped,
	// when they are worse than the k-th best by more than this pad — so a
	// point in an exact tie at the k-th rank can never be lost to an ulp of
	// projection arithmetic, and answers stay byte-identical to the scan
	// oracle. The 1D list subproblems use the exact arithmetic directly and
	// need no pad.
	var pad float64
	for i, pr := range e.pairs {
		if c.w[pr.Rep] == 0 && c.w[pr.Attr] == 0 {
			continue // contributes nothing; bound is 0 by omission
		}
		q2 := geom.Point{X: spec.Point[pr.Attr], Y: spec.Point[pr.Rep]}
		ps := &c.pairSubs[c.nPair]
		if err := e.trees[i].StreamInto(&ps.st, q2, c.w[pr.Rep], c.w[pr.Attr]); err != nil {
			return dst, stats, fmt.Errorf("core: pair (%d, %d): %w", pr.Rep, pr.Attr, err)
		}
		c.nPair++
		pad += floatSlack * (c.w[pr.Rep]*e.reach(pr.Rep, spec.Point[pr.Rep]) +
			c.w[pr.Attr]*e.reach(pr.Attr, spec.Point[pr.Attr]))
		c.subs = append(c.subs, ps)
	}
	nd := 0
	for _, d := range e.lone {
		if c.w[d] == 0 {
			continue
		}
		ds := &c.dimSubs[nd]
		nd++
		e.lists[d].InitIter(&ds.it, spec.Point[d], c.w[d], e.roles[d] == query.Attractive)
		c.subs = append(c.subs, ds)
	}

	// Ties are broken by ascending dataset ID, exactly like the sequential
	// scan: every engine answer is then byte-identical to the oracle's, and
	// per-shard answers merge into the exact global top-k.
	coll := c.coll
	coll.Reset(spec.K)
	subs := c.subs
	stats.Subproblems = len(subs)
	if len(subs) == 0 {
		// Every active dimension weighs zero: all live points tie at 0.
		for id := range e.data {
			if !e.dead[id] {
				coll.Add(id, 0)
			}
		}
		return c.appendResults(dst), stats, nil
	}

	// Round-robin over the subproblems, as in §5: every round bulk-fetches
	// the next best run of each subproblem, fully scores candidates by
	// random access, and re-evaluates the threshold against the post-batch
	// bounds. Three standard refinements keep the loop lean without
	// changing the answer:
	//
	//   - at a point's FIRST emission from any subproblem, if its best
	//     possible full score (its contribution plus the other
	//     subproblems' frontier bounds) is strictly below the current k-th
	//     best by more than the float pad, it is discarded unscored and
	//     for good — the decision is sound exactly there, because a point
	//     no frontier has passed is bounded by every frontier, and the
	//     k-th best only rises;
	//   - every point is handled (scored or discarded) at most once (the
	//     seen bitset), so later emissions of the same point are dropped
	//     without re-deciding against frontiers that have already moved
	//     past it and no longer bound its contributions;
	//   - the per-subproblem batch size adapts: it starts at 1 and doubles
	//     toward the leaf cap while the subproblem's frontier stays above
	//     the prune line (so a subproblem that keeps producing viable
	//     candidates is drained in whole leaf runs), and snaps back to 1
	//     the moment its entire remaining stream became prunable.
	//
	// Bounds start at +Inf: until a subproblem has emitted once, nothing
	// may be pruned against it. (A subproblem exhausts — bound −Inf — only
	// after emitting every live point, so an exhausted sibling can never
	// appear in a first-emission prune.)
	bounds := c.bounds[:len(subs)]
	bsize := c.bsize[:len(subs)]
	for i := range bounds {
		bounds[i] = math.Inf(1)
		bsize[i] = 1
	}
	for {
		progressed := false
		for i, s := range subs {
			n := s.nextBatch(c.emit[:bsize[i]])
			bounds[i] = s.bound()
			if n == 0 {
				continue
			}
			progressed = true
			stats.Fetched += n
			// Σ bounds − bounds[i] is constant across this batch (sibling
			// frontiers do not move), so it is computed lazily at most once
			// — but only lazily: the collector can first fill mid-batch.
			otherBounds, obValid := 0.0, false
			sumOther := func() {
				if obValid {
					return
				}
				for j, b := range bounds {
					if j != i {
						otherBounds += b
					}
				}
				obValid = true
			}
			for _, em := range c.emit[:n] {
				if !c.markSeen(em.ID) {
					continue // already scored or soundly discarded
				}
				if coll.Full() {
					sumOther()
					if em.Contrib+otherBounds+pad < coll.Threshold() {
						continue // cannot enter the top k, now or later
					}
				}
				stats.Scored++
				coll.Add(int(em.ID), c.scoreOf(spec.Point, em.ID))
			}
			if coll.Full() {
				sumOther()
			}
			if grow := !coll.Full() || bounds[i]+otherBounds+pad >= coll.Threshold(); grow {
				if bsize[i] < maxBatch {
					bsize[i] *= 2
					if bsize[i] > maxBatch {
						bsize[i] = maxBatch
					}
				}
			} else {
				bsize[i] = 1
			}
		}
		if !progressed {
			break // every subproblem exhausted: all points were seen
		}
		threshold := 0.0
		for _, b := range bounds {
			threshold += b
		}
		// Stop only once the k-th best strictly beats the padded frontier:
		// an unseen point that could tie it (exactly, or within the float
		// slack of the projection bounds) might still displace a kept one
		// through the ID tie-break.
		if coll.Full() && (math.IsInf(threshold, -1) || coll.Threshold() > threshold+pad) {
			break
		}
	}
	return c.appendResults(dst), stats, nil
}

// appendResults drains the collector into dst best-first via the pooled
// drain buffer.
func (c *queryCtx) appendResults(dst []query.Result) []query.Result {
	c.drain = c.coll.DrainInto(c.drain[:0])
	for _, s := range c.drain {
		dst = append(dst, query.Result{ID: s.Item, Score: s.Score})
	}
	return dst
}
