package core

import (
	"fmt"
	"math"

	"repro/internal/dimlist"
	"repro/internal/geom"
	"repro/internal/pq"
	"repro/internal/query"
	"repro/internal/topk"
)

// maxBatch is the widest per-subproblem bulk fetch: the engine's leaf-cursor
// cap, so one adaptive batch can drain a whole packed leaf run.
const maxBatch = 64

// subproblem is one term of Eqn. 10: an iterator over points in decreasing
// contribution order plus an upper bound on the contribution of any point it
// has not yet produced. The contract is batch-oriented: nextBatch fills dst
// with up to len(dst) emissions per call (0 when exhausted) and returns the
// post-batch frontier bound, so the aggregation loop pays one virtual
// dispatch per run instead of per point; bound peeks the same value without
// fetching, which the bound-driven scheduler uses to seed its ordering
// before the first access.
type subproblem interface {
	nextBatch(dst []query.Emission) (n int, bound float64)
	bound() float64
}

// pairSub adapts a 2D §4 stream. The Stream is stored by value so a pooled
// query context reuses its cursor, merge, and heap storage across queries.
type pairSub struct {
	st topk.Stream
}

func (p *pairSub) nextBatch(dst []query.Emission) (int, float64) { return p.st.NextBatch(dst) }

func (p *pairSub) bound() float64 {
	if sc, ok := p.st.PeekScore(); ok {
		return sc
	}
	return math.Inf(-1)
}

// dimSub adapts a 1D sorted-list iterator, also stored by value.
type dimSub struct {
	it dimlist.Iter
}

func (d *dimSub) nextBatch(dst []query.Emission) (int, float64) { return d.it.NextBatch(dst) }

func (d *dimSub) bound() float64 { return d.it.Bound() }

// intAscending is the collector's tie order (ascending dataset ID), shared
// so pooled collectors carry no per-query closure.
func intAscending(a, b int) bool { return a < b }

// queryCtx is the pooled per-query state of TopKAppend: weights, signed
// weights, subproblem storage, frontier bounds, batch sizes, the emission
// buffer, the seen bitset, the collector with its drain buffer, and the
// scratch plan for shapes the engine's plan cache does not cover. One
// context cycles through queries via the engine's sync.Pool, replacing the
// ~10 per-query allocations (and the scoreOf/markSeen closures) the
// unbatched hot path paid.
type queryCtx struct {
	e        *Engine
	w        []float64 // effective weights under build-time roles
	signed   []float64 // +w repulsive / −w attractive, folding the role branch
	pairSubs []pairSub // value storage; subs holds pointers into it
	dimSubs  []dimSub
	nPair    int // pairSubs in use (their streams need closing)
	subs     []subproblem
	bounds   []float64
	bsize    []int
	rate     []float64 // measured frontier descent per access (scheduler.go)
	anchorB  []float64 // bound at the start of the current rate window
	sinceN   []int     // accesses accumulated in the current rate window
	emit     [maxBatch]query.Emission
	seen     []uint64 // bitset over dataset rows
	overflow map[int32]bool
	coll     *pq.TopK[int]
	drain    []pq.Scored[int]
	scratch  queryPlan // plan storage for uncached shapes
	sortRep  []int32   // adaptive planner scratch: active dims by weight
	sortAtt  []int32
}

// initCtxPool wires the engine's context pool; called once at build time,
// after pairs and lone dimensions (or the adaptive grid) are fixed.
func (e *Engine) initCtxPool() {
	npair, nsub := len(e.pairs), len(e.pairs)+len(e.lone)
	if e.adaptive {
		// Matched pairs plus degenerate leftovers never exceed the larger
		// active role set.
		npair = len(e.gridRep)
		if len(e.gridAtt) > npair {
			npair = len(e.gridAtt)
		}
		nsub = npair
	}
	e.ctxPool.New = func() any {
		return &queryCtx{
			e:        e,
			w:        make([]float64, e.dims),
			signed:   make([]float64, e.dims),
			pairSubs: make([]pairSub, npair),
			dimSubs:  make([]dimSub, len(e.lone)),
			subs:     make([]subproblem, 0, nsub),
			bounds:   make([]float64, nsub),
			bsize:    make([]int, nsub),
			rate:     make([]float64, nsub),
			anchorB:  make([]float64, nsub),
			sinceN:   make([]int, nsub),
			seen:     make([]uint64, (len(e.data)+63)/64),
			coll:     pq.NewTopKOrdered[int](1, intAscending),
			sortRep:  make([]int32, 0, len(e.gridRep)),
			sortAtt:  make([]int32, 0, len(e.gridAtt)),
		}
	}
}

// getCtx acquires a context sized for the engine's *current* dataset:
// pooled bitsets are regrown to cover rows appended by Insert since the
// context was created, so post-build rows never fall into the per-query
// overflow map.
func (e *Engine) getCtx() *queryCtx {
	c := e.ctxPool.Get().(*queryCtx)
	if need := (len(e.data) + 63) / 64; len(c.seen) < need {
		c.seen = make([]uint64, need)
	}
	return c
}

// putCtx releases per-query resources (stream heaps back to their pool, the
// bitset cleared) and returns the context.
func (e *Engine) putCtx(c *queryCtx) {
	for i := 0; i < c.nPair; i++ {
		c.pairSubs[i].st.Close()
	}
	c.nPair = 0
	c.subs = c.subs[:0]
	clear(c.seen)
	if len(c.overflow) > 0 {
		clear(c.overflow)
	}
	e.ctxPool.Put(c)
}

// markSeen reports "newly seen". Rows beyond the bitset (only possible when
// rows are inserted mid-query, which the engine's concurrency contract
// excludes) fall back to the overflow map.
func (c *queryCtx) markSeen(id int32) bool {
	if w := int(id) >> 6; w < len(c.seen) {
		b := uint64(1) << (uint(id) & 63)
		if c.seen[w]&b != 0 {
			return false
		}
		c.seen[w] |= b
		return true
	}
	if c.overflow[id] {
		return false
	}
	if c.overflow == nil {
		c.overflow = make(map[int32]bool)
	}
	c.overflow[id] = true
	return true
}

// scoreOf is the devirtualized random-access score kernel: one tight pass
// over the flat row-major array with the signed weights folding the role
// branch into the arithmetic. math.Abs compiles to a bit mask, so the loop
// is branch-free; the re-slicing below lets the compiler drop bounds checks.
func (c *queryCtx) scoreOf(qpt []float64, id int32) float64 {
	d := c.e.dims
	base := int(id) * d
	row := c.e.flat[base : base+d : base+d]
	sg := c.signed[:len(row)]
	qp := qpt[:len(row)]
	var s float64
	for k := 0; k < len(row); k++ {
		s += sg[k] * math.Abs(row[k]-qp[k])
	}
	return s
}

// TopKAppend is TopKWithStats appending into dst: with a caller-reused dst
// the steady-state query path performs no allocation. Results are appended
// best-first; dst's existing elements are preserved.
//
// The flow is plan, build, schedule: the query's shape resolves to a plan
// (usually a cache hit — see plan.go) naming the surviving subproblems, the
// plan's subproblems are bound to this query's point and weights, and the
// engine's configured scheduler (scheduler.go) drives the §5 aggregation to
// the exact answer.
func (e *Engine) TopKAppend(dst []query.Result, spec query.Spec) ([]query.Result, Stats, error) {
	var stats Stats
	if err := spec.Validate(e.dims); err != nil {
		return dst, stats, err
	}
	c := e.getCtx()
	defer e.putCtx(c)

	pl, hit := e.planFor(spec, &c.scratch)
	if pl.err != nil {
		return dst, stats, pl.err
	}
	if hit {
		stats.PlanCacheHits = 1
	}
	clear(c.w)
	clear(c.signed)
	for _, ad := range pl.active {
		w := spec.Weights[ad.d]
		c.w[ad.d] = w
		c.signed[ad.d] = float64(ad.sign) * w
	}

	// pad bounds the absolute floating-point error between a pair stream's
	// emitted scores/bounds (computed in normalized projection space and
	// rescaled) and the exact contribution α·|Δy| − β·|Δx| the random-access
	// rescoring uses. Points are only discarded, and iteration only stopped,
	// when they are worse than the k-th best by more than this pad — so a
	// point in an exact tie at the k-th rank can never be lost to an ulp of
	// projection arithmetic, and answers stay byte-identical to the scan
	// oracle. The 1D list subproblems use the exact arithmetic directly and
	// need no pad.
	var pad float64
	if e.adaptive {
		p, err := c.buildAdaptiveSubs(pl, spec)
		if err != nil {
			return dst, stats, err
		}
		pad = p
	} else {
		for _, pi := range pl.pairs {
			pr := e.pairs[pi]
			if err := c.addPairSub(e.trees[pi], pr.Rep, pr.Attr, c.w[pr.Rep], c.w[pr.Attr], spec.Point, &pad); err != nil {
				return dst, stats, err
			}
		}
		nd := 0
		for _, di := range pl.lone {
			d := int(di)
			ds := &c.dimSubs[nd]
			nd++
			e.lists[d].InitIter(&ds.it, spec.Point[d], c.w[d], e.roles[d] == query.Attractive)
			c.subs = append(c.subs, ds)
		}
	}

	// Ties are broken by ascending dataset ID, exactly like the sequential
	// scan: every engine answer is then byte-identical to the oracle's, and
	// per-shard answers merge into the exact global top-k.
	coll := c.coll
	coll.Reset(spec.K)
	stats.Subproblems = len(c.subs)
	if len(c.subs) == 0 {
		// Every active dimension weighs zero: all live points tie at 0.
		for id := range e.data {
			if !e.dead[id] {
				coll.Add(id, 0)
			}
		}
		return c.appendResults(dst), stats, nil
	}

	if e.sched == SchedRoundRobin {
		c.runRoundRobin(spec.Point, pad, &stats)
	} else {
		c.runBoundDriven(spec.Point, pad, &stats)
	}
	return c.appendResults(dst), stats, nil
}

// addPairSub binds one 2D subproblem — tree, dimension pair, weights — into
// the context, accumulating its float-pad reach terms. Degenerate pairs
// (one zero weight) are valid: they enumerate a single dimension's frontier
// through the same tree, which is how adaptive engines run leftover
// dimensions without sorted lists.
func (c *queryCtx) addPairSub(tree *topk.Index, rep, attr int, wr, wa float64, qpt []float64, pad *float64) error {
	e := c.e
	q2 := geom.Point{X: qpt[attr], Y: qpt[rep]}
	ps := &c.pairSubs[c.nPair]
	if err := tree.StreamInto(&ps.st, q2, wr, wa); err != nil {
		return fmt.Errorf("core: pair (%d, %d): %w", rep, attr, err)
	}
	c.nPair++
	*pad += floatSlack * (wr*e.reach(rep, qpt[rep]) + wa*e.reach(attr, qpt[attr]))
	c.subs = append(c.subs, ps)
	return nil
}

// buildAdaptiveSubs realizes the plan-time bijection: the active dimensions
// of each role are sorted by descending weight (ties to the lower dimension,
// so the schedule is deterministic) and zipped strongest-with-strongest;
// leftover dimensions of the longer side run as degenerate pairs with a
// zero weight on the missing role, reusing the first grid dimension of that
// role purely as tree storage. Matching strong with strong makes each
// matched pair's frontier fall steeply — measured on the evaluation
// workload, the access floor of this zip is within ~1.5% of the per-query
// optimal bijection.
func (c *queryCtx) buildAdaptiveSubs(pl *queryPlan, spec query.Spec) (float64, error) {
	e := c.e
	rep := append(c.sortRep[:0], pl.activeRep...)
	att := append(c.sortAtt[:0], pl.activeAtt...)
	c.sortRep, c.sortAtt = rep, att // keep grown capacity pooled
	sortByWeightDesc(rep, c.w)
	sortByWeightDesc(att, c.w)
	m := len(rep)
	if len(att) < m {
		m = len(att)
	}
	na := len(e.gridAtt)
	var pad float64
	for i := 0; i < m; i++ {
		r, a := int(rep[i]), int(att[i])
		tree := e.grid[int(e.gridPos[r])*na+int(e.gridPos[a])]
		if err := c.addPairSub(tree, r, a, c.w[r], c.w[a], spec.Point, &pad); err != nil {
			return pad, err
		}
	}
	for _, ri := range rep[m:] {
		r, a := int(ri), e.gridAtt[0]
		tree := e.grid[int(e.gridPos[r])*na+0]
		if err := c.addPairSub(tree, r, a, c.w[r], 0, spec.Point, &pad); err != nil {
			return pad, err
		}
	}
	for _, ai := range att[m:] {
		r, a := e.gridRep[0], int(ai)
		tree := e.grid[0*na+int(e.gridPos[a])]
		if err := c.addPairSub(tree, r, a, 0, c.w[a], spec.Point, &pad); err != nil {
			return pad, err
		}
	}
	return pad, nil
}

// sortByWeightDesc orders dims by descending w[d], breaking ties toward the
// lower dimension index. Insertion sort: the lists are tiny (≤ the role-set
// size) and the scratch is pooled, so this is allocation-free.
func sortByWeightDesc(dims []int32, w []float64) {
	for i := 1; i < len(dims); i++ {
		d := dims[i]
		wd := w[d]
		j := i
		for j > 0 && (w[dims[j-1]] < wd || (w[dims[j-1]] == wd && dims[j-1] > d)) {
			dims[j] = dims[j-1]
			j--
		}
		dims[j] = d
	}
}

// appendResults drains the collector into dst best-first via the pooled
// drain buffer.
func (c *queryCtx) appendResults(dst []query.Result) []query.Result {
	c.drain = c.coll.DrainInto(c.drain[:0])
	for _, s := range c.drain {
		dst = append(dst, query.Result{ID: s.Item, Score: s.Score})
	}
	return dst
}
