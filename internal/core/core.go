// Package core implements the paper's §5 multi-dimensional SD-Query engine —
// the SD-Index proper. The query's repulsive dimensions D and attractive
// dimensions S are paired into min(|D|, |S|) two-dimensional subproblems
// (Eqn. 10), each answered incrementally by a §4 top-k tree; leftover
// dimensions become 1D subproblems over sorted lists with bidirectional
// frontiers. A Threshold-Algorithm aggregation fetches the next best point
// of every subproblem per round, scores fetched points exactly by random
// access, and stops once the k-th best exact score reaches the sum of the
// per-subproblem frontier bounds.
//
// The granularity of the subproblems — two dimensions instead of TA's one —
// is the source of the paper's reported speedups and dimension scalability.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/dataset"
	"repro/internal/dimlist"
	"repro/internal/geom"
	"repro/internal/pq"
	"repro/internal/query"
	"repro/internal/topk"
)

// Pairing selects the strategy mapping repulsive to attractive dimensions
// (the bijection f of Eqn. 10).
type Pairing int

const (
	// PairInOrder zips D and S in index order — the paper's "arbitrary"
	// mapping.
	PairInOrder Pairing = iota
	// PairByCorrelation greedily pairs the most strongly correlated
	// (repulsive, attractive) dimensions first — the guided mapping the
	// paper's future-work section asks about.
	PairByCorrelation
	// PairByVariance pairs dimensions by descending variance rank.
	PairByVariance
	// PairNone builds no 2D subproblems; every dimension is solved alone.
	// The engine then degenerates into the adapted Threshold Algorithm —
	// the paper's observation for 0 attractive dimensions, exposed as an
	// explicit ablation.
	PairNone
)

// String names the strategy.
func (p Pairing) String() string {
	switch p {
	case PairInOrder:
		return "in-order"
	case PairByCorrelation:
		return "by-correlation"
	case PairByVariance:
		return "by-variance"
	case PairNone:
		return "none"
	}
	return fmt.Sprintf("Pairing(%d)", int(p))
}

// Pair is one 2D subproblem: the repulsive dimension is the tree's y axis,
// the attractive one its x axis.
type Pair struct {
	Rep, Attr int
}

// Config controls engine construction.
type Config struct {
	// Roles fixes each dimension's role at build time (the evaluation's
	// setting; the per-pair trees depend on it). Queries may demote an
	// active dimension to Ignored but may not flip roles.
	Roles []query.Role
	// Pairing selects the dimension-mapping strategy. Default PairInOrder.
	Pairing Pairing
	// Tree configures the per-pair §4 indexes.
	Tree topk.Config
}

// Engine is the SD-Index.
type Engine struct {
	data     [][]float64
	flat     []float64 // row-major copy, stride dims: one cache line per random access
	dims     int
	roles    []query.Role
	pairing  Pairing
	pairs    []Pair
	trees    []*topk.Index
	lone     []int // dimensions solved as 1D subproblems
	lists    map[int]*dimlist.List
	dead     []bool // tombstones for removed rows
	live     int
	seenPool sync.Pool // *[]uint64 bitsets over dataset rows
	// Per-dimension coordinate extrema over every row ever indexed
	// (removals keep them, which only loosens the bound). They size the
	// float-error pad that keeps tie-breaking deterministic — see slack.
	minVal, maxVal []float64
}

// New builds the SD-Index over the dataset.
func New(data [][]float64, cfg Config) (*Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	if len(cfg.Roles) != dims {
		return nil, fmt.Errorf("core: %d roles for %d dims", len(cfg.Roles), dims)
	}
	for i, p := range data {
		if len(p) != dims {
			return nil, fmt.Errorf("core: point %d has %d dims, want %d", i, len(p), dims)
		}
		for d, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("core: point %d dim %d is %v", i, d, c)
			}
		}
	}
	e := &Engine{
		data:    data,
		dims:    dims,
		roles:   append([]query.Role(nil), cfg.Roles...),
		pairing: cfg.Pairing,
		lists:   make(map[int]*dimlist.List),
		dead:    make([]bool, len(data)),
		live:    len(data),
		minVal:  make([]float64, dims),
		maxVal:  make([]float64, dims),
	}
	for d := 0; d < dims; d++ {
		e.minVal[d], e.maxVal[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range data {
		for d, c := range p {
			e.minVal[d] = math.Min(e.minVal[d], c)
			e.maxVal[d] = math.Max(e.maxVal[d], c)
		}
	}
	var repulsive, attractive []int
	for d, r := range cfg.Roles {
		switch r {
		case query.Repulsive:
			repulsive = append(repulsive, d)
		case query.Attractive:
			attractive = append(attractive, d)
		case query.Ignored:
		default:
			return nil, fmt.Errorf("core: dimension %d has unknown role %d", d, r)
		}
	}
	// The engine defaults its per-pair trees to packed leaves: the tree
	// semantics are identical (the paper's §4 disk-style layout), and the
	// 64-point leaves — the widest the leaf-cursor bitmask supports — cut
	// both heap traffic on the query path and node overhead by an order
	// of magnitude. Callers can force single-point leaves (the paper's
	// in-memory layout) through Config.Tree.LeafCap.
	if cfg.Tree.LeafCap == 0 {
		cfg.Tree.LeafCap = 64
	}
	e.seenPool.New = func() any {
		s := make([]uint64, (len(data)+63)/64)
		return &s
	}
	if dims > 0 {
		e.flat = make([]float64, 0, len(data)*dims)
		for _, p := range data {
			e.flat = append(e.flat, p...)
		}
	}
	e.pairs = makePairs(data, repulsive, attractive, cfg.Pairing)
	paired := make(map[int]bool)
	for _, pr := range e.pairs {
		paired[pr.Rep] = true
		paired[pr.Attr] = true
	}
	for _, d := range append(append([]int(nil), repulsive...), attractive...) {
		if !paired[d] {
			e.lone = append(e.lone, d)
			e.lists[d] = dimlist.Build(data, d)
		}
	}
	sort.Ints(e.lone)
	for _, pr := range e.pairs {
		pts := make([]geom.Point, len(data))
		for i, p := range data {
			pts[i] = geom.Point{ID: i, X: p[pr.Attr], Y: p[pr.Rep]}
		}
		tree, err := topk.Build(pts, cfg.Tree)
		if err != nil {
			return nil, fmt.Errorf("core: pair (%d, %d): %w", pr.Rep, pr.Attr, err)
		}
		e.trees = append(e.trees, tree)
	}
	return e, nil
}

// makePairs applies the pairing strategy (|pairs| = min(|D|, |S|), Eqn. 10).
func makePairs(data [][]float64, repulsive, attractive []int, strategy Pairing) []Pair {
	n := len(repulsive)
	if len(attractive) < n {
		n = len(attractive)
	}
	if n == 0 || strategy == PairNone {
		return nil
	}
	rep := append([]int(nil), repulsive...)
	attr := append([]int(nil), attractive...)
	switch strategy {
	case PairByVariance:
		sortByVarianceDesc(data, rep)
		sortByVarianceDesc(data, attr)
	case PairByCorrelation:
		return greedyCorrelationPairs(data, rep, attr, n)
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = Pair{Rep: rep[i], Attr: attr[i]}
	}
	return pairs
}

func sortByVarianceDesc(data [][]float64, dims []int) {
	vars := make(map[int]float64, len(dims))
	for _, d := range dims {
		vars[d] = dataset.Variance(data, d)
	}
	sort.Slice(dims, func(i, j int) bool {
		if vars[dims[i]] != vars[dims[j]] {
			return vars[dims[i]] > vars[dims[j]]
		}
		return dims[i] < dims[j]
	})
}

func greedyCorrelationPairs(data [][]float64, rep, attr []int, n int) []Pair {
	type scored struct {
		r, a int
		c    float64
	}
	var all []scored
	for _, r := range rep {
		for _, a := range attr {
			all = append(all, scored{r, a, math.Abs(dataset.Correlation(data, r, a))})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		if all[i].r != all[j].r {
			return all[i].r < all[j].r
		}
		return all[i].a < all[j].a
	})
	usedR, usedA := map[int]bool{}, map[int]bool{}
	var pairs []Pair
	for _, s := range all {
		if len(pairs) == n {
			break
		}
		if usedR[s.r] || usedA[s.a] {
			continue
		}
		usedR[s.r], usedA[s.a] = true, true
		pairs = append(pairs, Pair{Rep: s.r, Attr: s.a})
	}
	return pairs
}

// floatSlack, times a query's weighted coordinate reach, bounds the drift
// between the pair trees' projection-space score arithmetic (normalize,
// blend, rescale: a handful of roundings per term) and the exact
// contribution. 64 ulps per unit of term magnitude is far above anything
// the ~10-operation chain can accumulate while staying many orders of
// magnitude below real score gaps.
const floatSlack = 64 * 0x1p-52

// reach returns an upper bound on |p_d − q_d| over every indexed row —
// the magnitude that scales dimension d's score terms.
func (e *Engine) reach(d int, qv float64) float64 {
	if e.minVal[d] > e.maxVal[d] { // no rows indexed yet
		return 0
	}
	return math.Max(math.Abs(e.minVal[d]-qv), math.Abs(e.maxVal[d]-qv))
}

// Pairs returns the chosen dimension pairing (for inspection and tests).
func (e *Engine) Pairs() []Pair { return append([]Pair(nil), e.pairs...) }

// Len returns the number of live points.
func (e *Engine) Len() int { return e.live }

// Bytes estimates the resident size of the index structures (trees + lists).
func (e *Engine) Bytes() int {
	total := 0
	for _, t := range e.trees {
		total += t.Bytes()
	}
	for _, l := range e.lists {
		total += l.Len() * 12 // 8B value + 4B id per entry
	}
	return total
}

// subproblem is one term of Eqn. 10: an iterator over points in decreasing
// contribution order plus an upper bound on the contribution of any point it
// has not yet produced.
type subproblem interface {
	next() (id int32, contrib float64, ok bool)
	bound() float64
}

type pairSub struct {
	st   *topk.Stream
	last float64
	done bool
}

func (p *pairSub) next() (int32, float64, bool) {
	r, ok := p.st.Next()
	if !ok {
		p.done = true
		return 0, 0, false
	}
	p.last = r.Score
	return int32(r.Point.ID), r.Score, true
}

func (p *pairSub) bound() float64 {
	if p.done {
		return math.Inf(-1)
	}
	return p.last
}

func (p *pairSub) close() { p.st.Close() }

type dimSub struct {
	it *dimlist.Iter
}

func (d *dimSub) next() (int32, float64, bool) {
	return d.it.Next()
}

func (d *dimSub) bound() float64 { return d.it.Bound() }

// Stats reports the work one query performed — the quantities the paper's
// analysis argues about (fetches per subproblem versus a full scan).
type Stats struct {
	// Subproblems actually consulted (zero-weight ones are skipped).
	Subproblems int
	// Fetched counts sorted-access emissions across all subproblems.
	Fetched int
	// Scored counts distinct points scored by random access.
	Scored int
}

// TopK answers the SD-Query. spec.Roles must match the build-time roles,
// except that active dimensions may be demoted to Ignored (equivalent to a
// zero weight).
func (e *Engine) TopK(spec query.Spec) ([]query.Result, error) {
	res, _, err := e.TopKWithStats(spec)
	return res, err
}

// TopKWithStats is TopK plus per-query work counters.
func (e *Engine) TopKWithStats(spec query.Spec) ([]query.Result, Stats, error) {
	var stats Stats
	if err := spec.Validate(e.dims); err != nil {
		return nil, stats, err
	}
	w := make([]float64, e.dims) // effective weights under build-time roles
	for d := 0; d < e.dims; d++ {
		switch spec.Roles[d] {
		case query.Ignored:
			// stays 0
		case e.roles[d]:
			w[d] = spec.Weights[d]
		default:
			return nil, stats, fmt.Errorf("core: dimension %d queried as %v but indexed as %v",
				d, spec.Roles[d], e.roles[d])
		}
	}

	var subs []subproblem
	var pairSubs []*pairSub
	defer func() {
		for _, ps := range pairSubs {
			ps.close()
		}
	}()
	// pad bounds the absolute floating-point error between a pair stream's
	// emitted scores/bounds (computed in normalized projection space and
	// rescaled) and the exact contribution α·|Δy| − β·|Δx| the random-access
	// rescoring uses. Points are only discarded, and iteration only stopped,
	// when they are worse than the k-th best by more than this pad — so a
	// point in an exact tie at the k-th rank can never be lost to an ulp of
	// projection arithmetic, and answers stay byte-identical to the scan
	// oracle. The 1D list subproblems use the exact arithmetic directly and
	// need no pad.
	var pad float64
	for i, pr := range e.pairs {
		if w[pr.Rep] == 0 && w[pr.Attr] == 0 {
			continue // contributes nothing; bound is 0 by omission
		}
		q2 := geom.Point{X: spec.Point[pr.Attr], Y: spec.Point[pr.Rep]}
		st, err := e.trees[i].Stream(q2, w[pr.Rep], w[pr.Attr])
		if err != nil {
			return nil, stats, fmt.Errorf("core: pair (%d, %d): %w", pr.Rep, pr.Attr, err)
		}
		pad += floatSlack * (w[pr.Rep]*e.reach(pr.Rep, spec.Point[pr.Rep]) +
			w[pr.Attr]*e.reach(pr.Attr, spec.Point[pr.Attr]))
		ps := &pairSub{st: st}
		pairSubs = append(pairSubs, ps)
		subs = append(subs, ps)
	}
	for _, d := range e.lone {
		if w[d] == 0 {
			continue
		}
		subs = append(subs, &dimSub{it: e.lists[d].NewIter(spec.Point[d], w[d], e.roles[d] == query.Attractive)})
	}

	// Signed weights fold the role branch into the arithmetic; the flat
	// row-major array keeps each random access within one cache line.
	signed := make([]float64, e.dims)
	for d := 0; d < e.dims; d++ {
		if e.roles[d] == query.Repulsive {
			signed[d] = w[d]
		} else {
			signed[d] = -w[d]
		}
	}
	scoreOf := func(id int32) float64 {
		row := e.flat[int(id)*e.dims : (int(id)+1)*e.dims]
		var s float64
		for d, c := range row {
			s += signed[d] * math.Abs(c-spec.Point[d])
		}
		return s
	}

	// Ties are broken by ascending dataset ID, exactly like the sequential
	// scan: every engine answer is then byte-identical to the oracle's, and
	// per-shard answers merge into the exact global top-k.
	collector := pq.NewTopKOrdered[int](spec.K, func(a, b int) bool { return a < b })
	stats.Subproblems = len(subs)
	if len(subs) == 0 {
		// Every active dimension weighs zero: all live points tie at 0.
		for id := range e.data {
			if !e.dead[id] {
				collector.Add(id, 0)
			}
		}
		return resultsOf(collector), stats, nil
	}
	// seen is a pooled bitset over dataset rows; rows appended after build
	// (Insert) fall back to the overflow map.
	seenPtr := e.seenPool.Get().(*[]uint64)
	seen := *seenPtr
	var overflow map[int32]bool
	defer func() {
		clear(seen)
		e.seenPool.Put(seenPtr)
	}()
	markSeen := func(id int32) bool { // reports "newly seen"
		if int(id)>>6 < len(seen) {
			w, b := id>>6, uint64(1)<<(uint(id)&63)
			if seen[w]&b != 0 {
				return false
			}
			seen[w] |= b
			return true
		}
		if overflow[id] {
			return false
		}
		if overflow == nil {
			overflow = make(map[int32]bool)
		}
		overflow[id] = true
		return true
	}
	// Round-robin over the subproblems, as in §5: every iteration fetches
	// the next best point of each subproblem, fully scores it by random
	// access, and re-evaluates the threshold. Two standard refinements
	// keep the loop lean without changing the answer:
	//
	//   - at a point's FIRST emission from any subproblem, if its best
	//     possible full score (its contribution plus the other
	//     subproblems' frontier bounds) is strictly below the current k-th
	//     best by more than the float pad, it is discarded unscored and
	//     for good — the decision is sound exactly there, because a point
	//     no frontier has passed is bounded by every frontier, and the
	//     k-th best only rises;
	//   - every point is handled (scored or discarded) at most once (the
	//     seen bitset), so later emissions of the same point are dropped
	//     without re-deciding against frontiers that have already moved
	//     past it and no longer bound its contributions.
	//
	// Bounds start at +Inf: until a subproblem has emitted once, nothing
	// may be pruned against it. (A subproblem exhausts — bound −Inf — only
	// after emitting every live point, so an exhausted sibling can never
	// appear in a first-emission prune.)
	bounds := make([]float64, len(subs))
	for i := range bounds {
		bounds[i] = math.Inf(1)
	}
	var otherBounds float64 // Σ bounds − bounds[i], maintained per fetch
	for {
		progressed := false
		threshold := 0.0
		for i, s := range subs {
			id, contrib, ok := s.next()
			bounds[i] = s.bound()
			if !ok {
				continue
			}
			progressed = true
			stats.Fetched++
			if !markSeen(id) {
				continue // already scored or soundly discarded
			}
			if collector.Full() {
				otherBounds = 0
				for j, b := range bounds {
					if j != i {
						otherBounds += b
					}
				}
				if contrib+otherBounds+pad < collector.Threshold() {
					continue // cannot enter the top k, now or later
				}
			}
			stats.Scored++
			collector.Add(int(id), scoreOf(id))
		}
		if !progressed {
			break // every subproblem exhausted: all points were seen
		}
		for _, b := range bounds {
			threshold += b
		}
		// Stop only once the k-th best strictly beats the padded frontier:
		// an unseen point that could tie it (exactly, or within the float
		// slack of the projection bounds) might still displace a kept one
		// through the ID tie-break.
		if collector.Full() && (math.IsInf(threshold, -1) || collector.Threshold() > threshold+pad) {
			break
		}
	}
	return resultsOf(collector), stats, nil
}

func resultsOf(collector *pq.TopK[int]) []query.Result {
	scored := collector.Results()
	out := make([]query.Result, len(scored))
	for i, s := range scored {
		out[i] = query.Result{ID: s.Item, Score: s.Score}
	}
	return out
}

// Insert appends a point, updating every per-pair tree and sorted list.
// It returns the new point's dataset ID.
func (e *Engine) Insert(p []float64) (int, error) {
	if len(p) != e.dims {
		return 0, fmt.Errorf("core: point has %d dims, want %d", len(p), e.dims)
	}
	for d, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return 0, fmt.Errorf("core: dim %d is %v", d, c)
		}
	}
	id := len(e.data)
	e.data = append(e.data, p)
	e.flat = append(e.flat, p...)
	e.dead = append(e.dead, false)
	e.live++
	for d, c := range p {
		e.minVal[d] = math.Min(e.minVal[d], c)
		e.maxVal[d] = math.Max(e.maxVal[d], c)
	}
	for i, pr := range e.pairs {
		if err := e.trees[i].Insert(geom.Point{ID: id, X: p[pr.Attr], Y: p[pr.Rep]}); err != nil {
			return 0, err
		}
	}
	for _, d := range e.lone {
		e.lists[d].Insert(p[d], int32(id))
	}
	return id, nil
}

// Remove deletes a point by dataset ID (tombstoning its row), reporting
// whether it was live.
func (e *Engine) Remove(id int) bool {
	if id < 0 || id >= len(e.data) || e.dead[id] {
		return false
	}
	p := e.data[id]
	for i, pr := range e.pairs {
		e.trees[i].Delete(geom.Point{ID: id, X: p[pr.Attr], Y: p[pr.Rep]})
	}
	for _, d := range e.lone {
		e.lists[d].Delete(p[d], int32(id))
	}
	e.dead[id] = true
	e.live--
	return true
}
