// Package core implements the paper's §5 multi-dimensional SD-Query engine —
// the SD-Index proper. The query's repulsive dimensions D and attractive
// dimensions S are paired into min(|D|, |S|) two-dimensional subproblems
// (Eqn. 10), each answered incrementally by a §4 top-k tree; leftover
// dimensions become 1D subproblems over sorted lists with bidirectional
// frontiers. A Threshold-Algorithm aggregation fetches the next best point
// of every subproblem per round, scores fetched points exactly by random
// access, and stops once the k-th best exact score reaches the sum of the
// per-subproblem frontier bounds.
//
// Storage architecture: the engine is an epoch-versioned stack of immutable
// sealed segments — flat data, per-pair trees, sorted lists, built once and
// never mutated — plus a small mutable memtable absorbing recent Inserts.
// Queries acquire a copy-on-write snapshot with one atomic load and hold no
// lock at all: every sealed segment contributes its subproblem streams to
// the §5 aggregation (tombstones mask removed rows at emission), and the
// memtable's few rows are scored exactly up front. A background compactor
// seals the memtable into a segment past a size threshold and folds small
// segments together, amortizing tree builds off both the query and the
// insert path. Sealed segments serialize to a versioned binary format
// (Save / Load), so a persisted index restarts without rebuilding.
//
// The granularity of the subproblems — two dimensions instead of TA's one —
// is the source of the paper's reported speedups and dimension scalability.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/topk"
)

// ErrCanceled is returned by the cancellation-aware query paths
// (TopKAppendCancel) when the caller's done channel closes before the
// aggregation terminates. The public API wrappers translate it into the
// originating context's error.
var ErrCanceled = errors.New("core: query canceled")

// Pairing selects the strategy mapping repulsive to attractive dimensions
// (the bijection f of Eqn. 10).
type Pairing int

const (
	// PairAdaptive (the default) defers the bijection to query time: the
	// engine indexes the full repulsive × attractive pair-tree grid (within
	// pairGridCap) and the planner zips the active dimensions of each role
	// in descending weight order per query — the strongest α with the
	// strongest β, and so on. Matching strong with strong makes each pair's
	// frontier bound fall steeply (the large β erodes the large α's bound),
	// which is what the Threshold-Algorithm aggregation converges on; on
	// the evaluation workload the measured access floor of weight-sorted
	// pairing is within ~1.5% of the per-query optimal bijection, against
	// ~20% above it for the fixed in-order zip. This is the guided mapping
	// the paper's future-work section asks about, made affordable by plan-
	// time selection. Beyond pairGridCap — or when a role set is empty at
	// build — the engine falls back to PairInOrder's fixed structure.
	PairAdaptive Pairing = iota
	// PairInOrder zips D and S in index order — the paper's "arbitrary"
	// mapping.
	PairInOrder
	// PairByCorrelation greedily pairs the most strongly correlated
	// (repulsive, attractive) dimensions first at build time.
	PairByCorrelation
	// PairByVariance pairs dimensions by descending variance rank.
	PairByVariance
	// PairNone builds no 2D subproblems; every dimension is solved alone.
	// The engine then degenerates into the adapted Threshold Algorithm —
	// the paper's observation for 0 attractive dimensions, exposed as an
	// explicit ablation.
	PairNone
)

// pairGridCap bounds the adaptive pair-tree grid: |D| × |S| trees are built
// only up to this many (each tree is O(n) memory), past which PairAdaptive
// falls back to the fixed in-order zip.
const pairGridCap = 32

// defaultMemtableSize is the memtable row count past which the background
// compactor seals it into a segment. Small enough that the per-query exact
// scan of the memtable stays a rounding error next to the indexed
// subproblems, large enough that tree builds amortize over many inserts.
const defaultMemtableSize = 1024

// String names the strategy.
func (p Pairing) String() string {
	switch p {
	case PairAdaptive:
		return "adaptive"
	case PairInOrder:
		return "in-order"
	case PairByCorrelation:
		return "by-correlation"
	case PairByVariance:
		return "by-variance"
	case PairNone:
		return "none"
	}
	return fmt.Sprintf("Pairing(%d)", int(p))
}

// Pair is one 2D subproblem: the repulsive dimension is the tree's y axis,
// the attractive one its x axis.
type Pair struct {
	Rep, Attr int
}

// Config controls engine construction.
type Config struct {
	// Roles fixes each dimension's role at build time (the evaluation's
	// setting; the per-pair trees depend on it). Queries may demote an
	// active dimension to Ignored but may not flip roles.
	Roles []query.Role
	// Pairing selects the dimension-mapping strategy. Default PairAdaptive.
	Pairing Pairing
	// Tree configures the per-pair §4 indexes.
	Tree topk.Config
	// Scheduler selects the sorted-access order of the §5 aggregation.
	// Default SchedBoundDriven; SchedRoundRobin is the pre-scheduler
	// behaviour, kept as an ablation. Answers are identical either way.
	Scheduler Scheduler
	// DisablePlanCache turns off the per-engine query-plan cache (plan.go),
	// deriving every query's plan from scratch — the ablation baseline for
	// the cache's hit-rate statistics.
	DisablePlanCache bool
	// MemtableSize is the memtable row count past which the background
	// compactor seals it into an immutable segment. Default 1024.
	MemtableSize int
	// DisableCompaction turns the background compactor off entirely: the
	// memtable grows without bound (queries stay correct, scanning it
	// exactly) and segments are only ever folded by an explicit Compact.
	DisableCompaction bool
	// ColumnWidth selects the sealed segments' sweep-column precision: 0 or
	// 64 stores float64 columns only (the default); 32 additionally stores a
	// float32 copy the batch score kernel sweeps at half the memory
	// bandwidth, with per-dimension quantization pads guaranteeing that
	// candidates are skipped only when even the padded approximate score
	// cannot reach the k-th best — survivors are rescored from the float64
	// columns, so answers are byte-identical at either width.
	ColumnWidth int
	// MaxSegmentRows caps the rows of any sealed segment: the initial build
	// splits the dataset into ⌈n/max⌉ equal segments and compaction never
	// folds segments into an output larger than the cap. 0 (the default)
	// leaves segment sizing to the compactor's 2× stack invariant. The cap
	// exists for intra-query parallelism (see Config.Pool): one segment is
	// the unit of fan-out, so a capped stack gives one query enough segments
	// to spread across cores.
	MaxSegmentRows int
	// Pool, when non-nil, fans the sealed segments of a single query out to
	// the supplied runner (one task per segment, each running the full
	// scheduler loop over that segment's subproblems with a shared
	// termination-threshold floor), merging the per-segment candidates
	// deterministically. Answers are byte-identical to sequential execution;
	// only the Stats trace varies with timing. Nil (the default) keeps the
	// fully sequential, deterministic-stats path.
	Pool Runner
	// WAL, when non-nil, makes every mutation durable: Insert and Remove
	// append checksummed records to a per-engine log before publishing, and
	// Open replays the tail over the last checkpoint after a crash. See
	// wal.go.
	WAL *WALConfig
}

// Engine is the SD-Index. All read paths (TopK and friends, Len, Bytes,
// View) are lock-free: they load the current snapshot with a single atomic
// pointer load. Insert, Remove, and compaction serialize among themselves
// on internal mutexes and publish new snapshots; they never block readers.
type Engine struct {
	dims    int
	roles   []query.Role
	pairing Pairing // requested strategy (data layout may have fallen back)
	layout  layout
	treeCfg topk.Config
	sched   Scheduler

	// snap is the engine's current epoch. Queries, Len, and Bytes read it
	// with one atomic load; writers build a successor and Store it.
	snap atomic.Pointer[snapshot]

	// wrMu serializes snapshot publication (Insert, Remove, compactor
	// swaps). It is never taken on a read path.
	wrMu sync.Mutex

	// Compaction state — see compact.go.
	compactMu   sync.Mutex
	compacting  atomic.Bool
	compactions atomic.Uint64 // completed seal/fold/reclaim steps, for ops telemetry
	memSize     int
	noCompact   bool

	colWidth   int    // sealed-segment sweep precision: 64, or 32 for the narrow copy
	maxSegRows int    // sealed-segment row cap, 0 = unbounded
	pool       Runner // intra-query segment fan-out, nil = sequential

	// wal is the engine's write-ahead log, nil when durability is off —
	// see wal.go. Mutations append to it under wrMu and wait for the group
	// commit outside it.
	wal *walLog

	ctxPool sync.Pool // *queryCtx — see hotpath.go

	// Plan cache (plan.go): immutable per-shape plans behind an atomic
	// pointer to a copy-on-write map, shared by every pooled query context.
	// Plans depend only on the build-time layout and roles — which never
	// change after New — so Insert, Remove, and compaction need no
	// invalidation.
	noPlanCache bool
	planMu      sync.Mutex
	plans       atomic.Pointer[map[uint64]*queryPlan]
}

// New builds the SD-Index over the dataset, sealing it into the engine's
// first immutable segment. The dimensionality is len(cfg.Roles); every row
// must match it.
func New(data [][]float64, cfg Config) (*Engine, error) {
	ids := make([]int32, len(data))
	for i := range ids {
		ids[i] = int32(i)
	}
	return NewWithIDs(data, ids, cfg)
}

// NewWithIDs is New with caller-assigned global dataset IDs (strictly
// ascending). The sharded execution layer deals rows to shard engines this
// way, so every engine's results — and its ascending-ID tie-break — are in
// terms of the same global ID space.
func NewWithIDs(data [][]float64, ids []int32, cfg Config) (*Engine, error) {
	dims := len(cfg.Roles)
	if len(ids) != len(data) {
		return nil, fmt.Errorf("core: %d ids for %d rows", len(ids), len(data))
	}
	for i, p := range data {
		if err := validRow(p, dims); err != nil {
			return nil, fmt.Errorf("core: point %d: %w", i, err)
		}
		if ids[i] < 0 || (i > 0 && ids[i] <= ids[i-1]) {
			return nil, fmt.Errorf("core: ids must be ascending and non-negative (id %d at row %d)", ids[i], i)
		}
	}
	for _, r := range cfg.Roles {
		switch r {
		case query.Repulsive, query.Attractive, query.Ignored:
		default:
			return nil, fmt.Errorf("core: unknown role %d", r)
		}
	}
	if !cfg.Scheduler.valid() {
		return nil, fmt.Errorf("core: unknown scheduler %v", cfg.Scheduler)
	}
	if cfg.MemtableSize <= 0 {
		cfg.MemtableSize = defaultMemtableSize
	}
	if cfg.ColumnWidth == 0 {
		cfg.ColumnWidth = 64
	}
	if cfg.ColumnWidth != 32 && cfg.ColumnWidth != 64 {
		return nil, fmt.Errorf("core: unsupported column width %d (want 32 or 64)", cfg.ColumnWidth)
	}
	if cfg.MaxSegmentRows < 0 {
		return nil, fmt.Errorf("core: negative segment row cap %d", cfg.MaxSegmentRows)
	}
	// The engine defaults its per-pair trees to packed leaves: the tree
	// semantics are identical (the paper's §4 disk-style layout), and the
	// 64-point leaves — the widest the leaf-cursor bitmask supports — cut
	// both heap traffic on the query path and node overhead by an order
	// of magnitude. Callers can force single-point leaves (the paper's
	// in-memory layout) through Config.Tree.LeafCap.
	if cfg.Tree.LeafCap == 0 {
		cfg.Tree.LeafCap = 64
	}
	e := &Engine{
		dims:        dims,
		roles:       append([]query.Role(nil), cfg.Roles...),
		pairing:     cfg.Pairing,
		layout:      makeLayout(data, cfg.Roles, cfg.Pairing),
		treeCfg:     cfg.Tree,
		sched:       cfg.Scheduler,
		memSize:     cfg.MemtableSize,
		noCompact:   cfg.DisableCompaction,
		colWidth:    cfg.ColumnWidth,
		maxSegRows:  cfg.MaxSegmentRows,
		pool:        cfg.Pool,
		noPlanCache: cfg.DisablePlanCache,
	}
	sn := &snapshot{
		total:  0,
		live:   len(data),
		minVal: make([]float64, dims),
		maxVal: make([]float64, dims),
	}
	for d := 0; d < dims; d++ {
		sn.minVal[d], sn.maxVal[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range data {
		for d, c := range p {
			sn.minVal[d] = math.Min(sn.minVal[d], c)
			sn.maxVal[d] = math.Max(sn.maxVal[d], c)
		}
	}
	if n := len(ids); n > 0 {
		sn.total = int(ids[n-1]) + 1
		// One sealed segment unless a row cap splits the initial build into
		// ⌈n/max⌉ equal chunks (ascending-ID order, so the stack invariant
		// holds by construction). Columns are gathered dimension-major
		// straight from the caller's rows — the segment's primary layout.
		nchunks := 1
		if e.maxSegRows > 0 && n > e.maxSegRows {
			nchunks = (n + e.maxSegRows - 1) / e.maxSegRows
		}
		for ci := 0; ci < nchunks; ci++ {
			lo, hi := ci*n/nchunks, (ci+1)*n/nchunks
			rows := hi - lo
			cols := make([]float64, rows*dims)
			for d := 0; d < dims; d++ {
				c := cols[d*rows : (d+1)*rows]
				for i := range c {
					c[i] = data[lo+i][d]
				}
			}
			seg, err := buildSegment(cols, ids[lo:hi:hi], dims, &e.layout, e.treeCfg, e.colWidth)
			if err != nil {
				return nil, err
			}
			sn.segs = append(sn.segs, seg)
			sn.tombs = append(sn.tombs, nil)
		}
	}
	e.snap.Store(sn)
	e.initCtxPool()
	if cfg.WAL != nil {
		// A fresh WAL directory gets its initial checkpoint before the first
		// mutation is accepted, so the directory invariantly recovers.
		if err := e.attachWAL(*cfg.WAL, 1); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// makePairs applies the pairing strategy (|pairs| = min(|D|, |S|), Eqn. 10).
func makePairs(data [][]float64, repulsive, attractive []int, strategy Pairing) []Pair {
	n := len(repulsive)
	if len(attractive) < n {
		n = len(attractive)
	}
	if n == 0 || strategy == PairNone {
		return nil
	}
	rep := append([]int(nil), repulsive...)
	attr := append([]int(nil), attractive...)
	switch strategy {
	case PairByVariance:
		sortByVarianceDesc(data, rep)
		sortByVarianceDesc(data, attr)
	case PairByCorrelation:
		return greedyCorrelationPairs(data, rep, attr, n)
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = Pair{Rep: rep[i], Attr: attr[i]}
	}
	return pairs
}

func sortByVarianceDesc(data [][]float64, dims []int) {
	vars := make(map[int]float64, len(dims))
	for _, d := range dims {
		vars[d] = dataset.Variance(data, d)
	}
	sort.Slice(dims, func(i, j int) bool {
		if vars[dims[i]] != vars[dims[j]] {
			return vars[dims[i]] > vars[dims[j]]
		}
		return dims[i] < dims[j]
	})
}

func greedyCorrelationPairs(data [][]float64, rep, attr []int, n int) []Pair {
	type scored struct {
		r, a int
		c    float64
	}
	var all []scored
	for _, r := range rep {
		for _, a := range attr {
			all = append(all, scored{r, a, math.Abs(dataset.Correlation(data, r, a))})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		if all[i].r != all[j].r {
			return all[i].r < all[j].r
		}
		return all[i].a < all[j].a
	})
	usedR, usedA := map[int]bool{}, map[int]bool{}
	var pairs []Pair
	for _, s := range all {
		if len(pairs) == n {
			break
		}
		if usedR[s.r] || usedA[s.a] {
			continue
		}
		usedR[s.r], usedA[s.a] = true, true
		pairs = append(pairs, Pair{Rep: s.r, Attr: s.a})
	}
	return pairs
}

// floatSlack, times a query's weighted coordinate reach, bounds the drift
// between the pair trees' projection-space score arithmetic (normalize,
// blend, rescale: a handful of roundings per term) and the exact
// contribution. 64 ulps per unit of term magnitude is far above anything
// the ~10-operation chain can accumulate while staying many orders of
// magnitude below real score gaps.
const floatSlack = 64 * 0x1p-52

// reach returns an upper bound on |p_d − q_d| over every indexed row —
// the magnitude that scales dimension d's score terms.
func (sn *snapshot) reach(d int, qv float64) float64 {
	if sn.minVal[d] > sn.maxVal[d] { // no rows indexed yet
		return 0
	}
	return math.Max(math.Abs(sn.minVal[d]-qv), math.Abs(sn.maxVal[d]-qv))
}

// Pairs returns the chosen dimension pairing (for inspection and tests).
// Adaptive engines have no static pairing — the planner selects a bijection
// per query — and return nil.
func (e *Engine) Pairs() []Pair { return append([]Pair(nil), e.layout.pairs...) }

// Adaptive reports whether the engine selects its dimension pairing at plan
// time over the full pair-tree grid.
func (e *Engine) Adaptive() bool { return e.layout.adaptive }

// Roles returns the build-time dimension roles.
func (e *Engine) Roles() []query.Role { return append([]query.Role(nil), e.roles...) }

// Len returns the number of live points.
func (e *Engine) Len() int { return e.snap.Load().live }

// Epoch returns the version number of the engine's current snapshot: 0 at
// construction (and after Load), bumped by every Insert, Remove, and
// compaction swap. Because epochs are assigned under the writer lock and
// strictly increase, two Epoch calls returning the same value prove no
// snapshot was published between them — which makes the epoch a free cache
// invalidation key: any answer computed while the epoch held steady is
// exactly the answer a fresh query at that epoch would compute.
func (e *Engine) Epoch() uint64 { return e.snap.Load().epoch }

// Segments reports the number of sealed segments in the current snapshot
// and the number of memtable rows — the observable shape of the storage
// stack, which compaction continuously reorganizes.
func (e *Engine) Segments() (segments, memRows int) {
	sn := e.snap.Load()
	return len(sn.segs), sn.memRows()
}

// Compactions reports how many compaction steps (memtable seals, stack
// folds, dead-row reclaims — background or explicit) the engine has
// completed since construction. A monotonic counter for the serving layer's
// metrics surface; it never resets.
func (e *Engine) Compactions() uint64 { return e.compactions.Load() }

// Bytes estimates the resident size of the engine: every sealed segment's
// index structures, flat row block, global-ID map, and tombstone bitset,
// plus the memtable arrays and the per-dimension extrema — everything the
// engine itself retains beyond the caller's dataset, so capacity planning
// numbers are honest.
func (e *Engine) Bytes() int { return e.snap.Load().bytes() }

// Stats reports the work one query performed — the quantities the paper's
// analysis argues about (fetches per subproblem versus a full scan).
type Stats struct {
	// Subproblems actually consulted (zero-weight ones are skipped),
	// summed across every sealed segment.
	Subproblems int
	// Segments counts the sealed segments the query planned across.
	Segments int
	// Fetched counts sorted-access emissions across all subproblems.
	Fetched int
	// Scored counts distinct points scored by random access (memtable rows
	// included — they are always scored exactly).
	Scored int
	// Rounds counts scheduler steps: one adaptive batch dispatched to one
	// subproblem (under either scheduler), so the figure is comparable
	// across scheduling modes.
	Rounds int
	// PlanCacheHits is 1 when the query's plan came from the engine's plan
	// cache, 0 when it was derived. Sharded engines sum it across shards.
	PlanCacheHits int
}

// TopK answers the SD-Query. spec.Roles must match the build-time roles,
// except that active dimensions may be demoted to Ignored (equivalent to a
// zero weight).
func (e *Engine) TopK(spec query.Spec) ([]query.Result, error) {
	res, _, err := e.TopKWithStats(spec)
	return res, err
}

// TopKWithStats is TopK plus per-query work counters. Callers that reuse a
// result buffer should prefer TopKAppend (hotpath.go), which this wraps.
func (e *Engine) TopKWithStats(spec query.Spec) ([]query.Result, Stats, error) {
	res, stats, err := e.TopKAppend(nil, spec)
	if err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}
