// Package core implements the paper's §5 multi-dimensional SD-Query engine —
// the SD-Index proper. The query's repulsive dimensions D and attractive
// dimensions S are paired into min(|D|, |S|) two-dimensional subproblems
// (Eqn. 10), each answered incrementally by a §4 top-k tree; leftover
// dimensions become 1D subproblems over sorted lists with bidirectional
// frontiers. A Threshold-Algorithm aggregation fetches the next best point
// of every subproblem per round, scores fetched points exactly by random
// access, and stops once the k-th best exact score reaches the sum of the
// per-subproblem frontier bounds.
//
// The granularity of the subproblems — two dimensions instead of TA's one —
// is the source of the paper's reported speedups and dimension scalability.
package core

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/dimlist"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/topk"
)

// Pairing selects the strategy mapping repulsive to attractive dimensions
// (the bijection f of Eqn. 10).
type Pairing int

const (
	// PairAdaptive (the default) defers the bijection to query time: the
	// engine indexes the full repulsive × attractive pair-tree grid (within
	// pairGridCap) and the planner zips the active dimensions of each role
	// in descending weight order per query — the strongest α with the
	// strongest β, and so on. Matching strong with strong makes each pair's
	// frontier bound fall steeply (the large β erodes the large α's bound),
	// which is what the Threshold-Algorithm aggregation converges on; on
	// the evaluation workload the measured access floor of weight-sorted
	// pairing is within ~1.5% of the per-query optimal bijection, against
	// ~20% above it for the fixed in-order zip. This is the guided mapping
	// the paper's future-work section asks about, made affordable by plan-
	// time selection. Beyond pairGridCap — or when a role set is empty at
	// build — the engine falls back to PairInOrder's fixed structure.
	PairAdaptive Pairing = iota
	// PairInOrder zips D and S in index order — the paper's "arbitrary"
	// mapping.
	PairInOrder
	// PairByCorrelation greedily pairs the most strongly correlated
	// (repulsive, attractive) dimensions first at build time.
	PairByCorrelation
	// PairByVariance pairs dimensions by descending variance rank.
	PairByVariance
	// PairNone builds no 2D subproblems; every dimension is solved alone.
	// The engine then degenerates into the adapted Threshold Algorithm —
	// the paper's observation for 0 attractive dimensions, exposed as an
	// explicit ablation.
	PairNone
)

// pairGridCap bounds the adaptive pair-tree grid: |D| × |S| trees are built
// only up to this many (each tree is O(n) memory), past which PairAdaptive
// falls back to the fixed in-order zip.
const pairGridCap = 32

// String names the strategy.
func (p Pairing) String() string {
	switch p {
	case PairAdaptive:
		return "adaptive"
	case PairInOrder:
		return "in-order"
	case PairByCorrelation:
		return "by-correlation"
	case PairByVariance:
		return "by-variance"
	case PairNone:
		return "none"
	}
	return fmt.Sprintf("Pairing(%d)", int(p))
}

// Pair is one 2D subproblem: the repulsive dimension is the tree's y axis,
// the attractive one its x axis.
type Pair struct {
	Rep, Attr int
}

// Config controls engine construction.
type Config struct {
	// Roles fixes each dimension's role at build time (the evaluation's
	// setting; the per-pair trees depend on it). Queries may demote an
	// active dimension to Ignored but may not flip roles.
	Roles []query.Role
	// Pairing selects the dimension-mapping strategy. Default PairInOrder.
	Pairing Pairing
	// Tree configures the per-pair §4 indexes.
	Tree topk.Config
	// Scheduler selects the sorted-access order of the §5 aggregation.
	// Default SchedBoundDriven; SchedRoundRobin is the pre-scheduler
	// behaviour, kept as an ablation. Answers are identical either way.
	Scheduler Scheduler
	// DisablePlanCache turns off the per-engine query-plan cache (plan.go),
	// deriving every query's plan from scratch — the ablation baseline for
	// the cache's hit-rate statistics.
	DisablePlanCache bool
}

// Engine is the SD-Index.
type Engine struct {
	data    [][]float64
	flat    []float64 // row-major copy, stride dims: one cache line per random access
	dims    int
	roles   []query.Role
	pairing Pairing
	pairs   []Pair
	trees   []*topk.Index
	lone    []int // dimensions solved as 1D subproblems
	lists   map[int]*dimlist.List
	// Adaptive pair-tree grid (PairAdaptive within pairGridCap): one §4
	// tree per (repulsive, attractive) dimension combination, indexed
	// grid[ri*len(gridAtt)+ai]. The planner picks min(active) matched pairs
	// per query by descending weight; leftover active dimensions run as
	// degenerate pairs with one zero weight (a 1D frontier over the same
	// trees), so adaptive engines build no sorted lists at all.
	adaptive bool
	grid     []*topk.Index
	gridRep  []int // repulsive dims in grid row order
	gridAtt  []int // attractive dims in grid column order
	gridPos  []int32 // dim → its row/column index (shared: roles disjoint)
	dead     []bool  // tombstones for removed rows
	live     int
	ctxPool sync.Pool // *queryCtx — see hotpath.go
	sched   Scheduler

	// Plan cache (plan.go): immutable per-shape plans behind an atomic
	// pointer to a copy-on-write map, shared by every pooled query context.
	// Plans depend only on the build-time pairing and roles — which never
	// change after New — so Insert and Remove need no invalidation.
	noPlanCache bool
	planMu      sync.Mutex
	plans       atomic.Pointer[map[uint64]*queryPlan]
	// Per-dimension coordinate extrema over every row ever indexed
	// (removals keep them, which only loosens the bound). They size the
	// float-error pad that keeps tie-breaking deterministic — see slack.
	minVal, maxVal []float64
}

// New builds the SD-Index over the dataset.
func New(data [][]float64, cfg Config) (*Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	if len(cfg.Roles) != dims {
		return nil, fmt.Errorf("core: %d roles for %d dims", len(cfg.Roles), dims)
	}
	for i, p := range data {
		if len(p) != dims {
			return nil, fmt.Errorf("core: point %d has %d dims, want %d", i, len(p), dims)
		}
		for d, c := range p {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("core: point %d dim %d is %v", i, d, c)
			}
		}
	}
	if !cfg.Scheduler.valid() {
		return nil, fmt.Errorf("core: unknown scheduler %v", cfg.Scheduler)
	}
	e := &Engine{
		data:        data,
		dims:        dims,
		roles:       append([]query.Role(nil), cfg.Roles...),
		pairing:     cfg.Pairing,
		lists:       make(map[int]*dimlist.List),
		dead:        make([]bool, len(data)),
		live:        len(data),
		minVal:      make([]float64, dims),
		maxVal:      make([]float64, dims),
		sched:       cfg.Scheduler,
		noPlanCache: cfg.DisablePlanCache,
	}
	for d := 0; d < dims; d++ {
		e.minVal[d], e.maxVal[d] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range data {
		for d, c := range p {
			e.minVal[d] = math.Min(e.minVal[d], c)
			e.maxVal[d] = math.Max(e.maxVal[d], c)
		}
	}
	var repulsive, attractive []int
	for d, r := range cfg.Roles {
		switch r {
		case query.Repulsive:
			repulsive = append(repulsive, d)
		case query.Attractive:
			attractive = append(attractive, d)
		case query.Ignored:
		default:
			return nil, fmt.Errorf("core: dimension %d has unknown role %d", d, r)
		}
	}
	// The engine defaults its per-pair trees to packed leaves: the tree
	// semantics are identical (the paper's §4 disk-style layout), and the
	// 64-point leaves — the widest the leaf-cursor bitmask supports — cut
	// both heap traffic on the query path and node overhead by an order
	// of magnitude. Callers can force single-point leaves (the paper's
	// in-memory layout) through Config.Tree.LeafCap.
	if cfg.Tree.LeafCap == 0 {
		cfg.Tree.LeafCap = 64
	}
	if dims > 0 {
		e.flat = make([]float64, 0, len(data)*dims)
		for _, p := range data {
			e.flat = append(e.flat, p...)
		}
	}
	pairing := cfg.Pairing
	if pairing == PairAdaptive {
		if len(repulsive) > 0 && len(attractive) > 0 &&
			len(repulsive)*len(attractive) <= pairGridCap {
			e.adaptive = true
			e.gridRep = repulsive
			e.gridAtt = attractive
			e.gridPos = make([]int32, dims)
			for i, d := range repulsive {
				e.gridPos[d] = int32(i)
			}
			for i, d := range attractive {
				e.gridPos[d] = int32(i)
			}
			e.grid = make([]*topk.Index, len(repulsive)*len(attractive))
			for ri, r := range repulsive {
				for ai, a := range attractive {
					pts := make([]geom.Point, len(data))
					for i, p := range data {
						pts[i] = geom.Point{ID: i, X: p[a], Y: p[r]}
					}
					tree, err := topk.Build(pts, cfg.Tree)
					if err != nil {
						return nil, fmt.Errorf("core: pair (%d, %d): %w", r, a, err)
					}
					e.grid[ri*len(attractive)+ai] = tree
				}
			}
			e.initCtxPool()
			return e, nil
		}
		// Degenerate or oversized grid: the adaptive planner has nothing to
		// choose from (or too much to index), so fall back to the fixed
		// in-order structure. Answers are identical either way.
		pairing = PairInOrder
	}
	e.pairs = makePairs(data, repulsive, attractive, pairing)
	paired := make(map[int]bool)
	for _, pr := range e.pairs {
		paired[pr.Rep] = true
		paired[pr.Attr] = true
	}
	for _, d := range append(append([]int(nil), repulsive...), attractive...) {
		if !paired[d] {
			e.lone = append(e.lone, d)
			e.lists[d] = dimlist.Build(data, d)
		}
	}
	sort.Ints(e.lone)
	for _, pr := range e.pairs {
		pts := make([]geom.Point, len(data))
		for i, p := range data {
			pts[i] = geom.Point{ID: i, X: p[pr.Attr], Y: p[pr.Rep]}
		}
		tree, err := topk.Build(pts, cfg.Tree)
		if err != nil {
			return nil, fmt.Errorf("core: pair (%d, %d): %w", pr.Rep, pr.Attr, err)
		}
		e.trees = append(e.trees, tree)
	}
	e.initCtxPool()
	return e, nil
}

// makePairs applies the pairing strategy (|pairs| = min(|D|, |S|), Eqn. 10).
func makePairs(data [][]float64, repulsive, attractive []int, strategy Pairing) []Pair {
	n := len(repulsive)
	if len(attractive) < n {
		n = len(attractive)
	}
	if n == 0 || strategy == PairNone {
		return nil
	}
	rep := append([]int(nil), repulsive...)
	attr := append([]int(nil), attractive...)
	switch strategy {
	case PairByVariance:
		sortByVarianceDesc(data, rep)
		sortByVarianceDesc(data, attr)
	case PairByCorrelation:
		return greedyCorrelationPairs(data, rep, attr, n)
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = Pair{Rep: rep[i], Attr: attr[i]}
	}
	return pairs
}

func sortByVarianceDesc(data [][]float64, dims []int) {
	vars := make(map[int]float64, len(dims))
	for _, d := range dims {
		vars[d] = dataset.Variance(data, d)
	}
	sort.Slice(dims, func(i, j int) bool {
		if vars[dims[i]] != vars[dims[j]] {
			return vars[dims[i]] > vars[dims[j]]
		}
		return dims[i] < dims[j]
	})
}

func greedyCorrelationPairs(data [][]float64, rep, attr []int, n int) []Pair {
	type scored struct {
		r, a int
		c    float64
	}
	var all []scored
	for _, r := range rep {
		for _, a := range attr {
			all = append(all, scored{r, a, math.Abs(dataset.Correlation(data, r, a))})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		if all[i].r != all[j].r {
			return all[i].r < all[j].r
		}
		return all[i].a < all[j].a
	})
	usedR, usedA := map[int]bool{}, map[int]bool{}
	var pairs []Pair
	for _, s := range all {
		if len(pairs) == n {
			break
		}
		if usedR[s.r] || usedA[s.a] {
			continue
		}
		usedR[s.r], usedA[s.a] = true, true
		pairs = append(pairs, Pair{Rep: s.r, Attr: s.a})
	}
	return pairs
}

// floatSlack, times a query's weighted coordinate reach, bounds the drift
// between the pair trees' projection-space score arithmetic (normalize,
// blend, rescale: a handful of roundings per term) and the exact
// contribution. 64 ulps per unit of term magnitude is far above anything
// the ~10-operation chain can accumulate while staying many orders of
// magnitude below real score gaps.
const floatSlack = 64 * 0x1p-52

// reach returns an upper bound on |p_d − q_d| over every indexed row —
// the magnitude that scales dimension d's score terms.
func (e *Engine) reach(d int, qv float64) float64 {
	if e.minVal[d] > e.maxVal[d] { // no rows indexed yet
		return 0
	}
	return math.Max(math.Abs(e.minVal[d]-qv), math.Abs(e.maxVal[d]-qv))
}

// Pairs returns the chosen dimension pairing (for inspection and tests).
// Adaptive engines have no static pairing — the planner selects a bijection
// per query — and return nil.
func (e *Engine) Pairs() []Pair { return append([]Pair(nil), e.pairs...) }

// Adaptive reports whether the engine selects its dimension pairing at plan
// time over the full pair-tree grid.
func (e *Engine) Adaptive() bool { return e.adaptive }

// Len returns the number of live points.
func (e *Engine) Len() int { return e.live }

// Bytes estimates the resident size of the engine: the per-pair trees, the
// per-dimension sorted lists, the flat row-major copy backing random
// accesses, the tombstone array, and the per-dimension extrema — everything
// the engine itself retains beyond the caller's dataset, so capacity
// planning numbers are honest.
func (e *Engine) Bytes() int {
	total := 8*len(e.flat) + len(e.dead) + 8*(len(e.minVal)+len(e.maxVal))
	for _, t := range e.trees {
		total += t.Bytes()
	}
	for _, t := range e.grid {
		total += t.Bytes()
	}
	for _, l := range e.lists {
		total += l.Len() * 12 // 8B value + 4B id per entry
	}
	return total
}

// Stats reports the work one query performed — the quantities the paper's
// analysis argues about (fetches per subproblem versus a full scan).
type Stats struct {
	// Subproblems actually consulted (zero-weight ones are skipped).
	Subproblems int
	// Fetched counts sorted-access emissions across all subproblems.
	Fetched int
	// Scored counts distinct points scored by random access.
	Scored int
	// Rounds counts scheduler steps: one adaptive batch dispatched to one
	// subproblem (under either scheduler), so the figure is comparable
	// across scheduling modes.
	Rounds int
	// PlanCacheHits is 1 when the query's plan came from the engine's plan
	// cache, 0 when it was derived. Sharded engines sum it across shards.
	PlanCacheHits int
}

// TopK answers the SD-Query. spec.Roles must match the build-time roles,
// except that active dimensions may be demoted to Ignored (equivalent to a
// zero weight).
func (e *Engine) TopK(spec query.Spec) ([]query.Result, error) {
	res, _, err := e.TopKWithStats(spec)
	return res, err
}

// TopKWithStats is TopK plus per-query work counters. Callers that reuse a
// result buffer should prefer TopKAppend (hotpath.go), which this wraps.
func (e *Engine) TopKWithStats(spec query.Spec) ([]query.Result, Stats, error) {
	res, stats, err := e.TopKAppend(nil, spec)
	if err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}

// Insert appends a point, updating every per-pair tree and sorted list.
// It returns the new point's dataset ID.
func (e *Engine) Insert(p []float64) (int, error) {
	if len(p) != e.dims {
		return 0, fmt.Errorf("core: point has %d dims, want %d", len(p), e.dims)
	}
	for d, c := range p {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return 0, fmt.Errorf("core: dim %d is %v", d, c)
		}
	}
	id := len(e.data)
	e.data = append(e.data, p)
	e.flat = append(e.flat, p...)
	e.dead = append(e.dead, false)
	e.live++
	for d, c := range p {
		e.minVal[d] = math.Min(e.minVal[d], c)
		e.maxVal[d] = math.Max(e.maxVal[d], c)
	}
	for ri, r := range e.gridRep {
		for ai, a := range e.gridAtt {
			if err := e.grid[ri*len(e.gridAtt)+ai].Insert(geom.Point{ID: id, X: p[a], Y: p[r]}); err != nil {
				return 0, err
			}
		}
	}
	for i, pr := range e.pairs {
		if err := e.trees[i].Insert(geom.Point{ID: id, X: p[pr.Attr], Y: p[pr.Rep]}); err != nil {
			return 0, err
		}
	}
	for _, d := range e.lone {
		e.lists[d].Insert(p[d], int32(id))
	}
	return id, nil
}

// Remove deletes a point by dataset ID (tombstoning its row), reporting
// whether it was live.
func (e *Engine) Remove(id int) bool {
	if id < 0 || id >= len(e.data) || e.dead[id] {
		return false
	}
	p := e.data[id]
	for ri, r := range e.gridRep {
		for ai, a := range e.gridAtt {
			e.grid[ri*len(e.gridAtt)+ai].Delete(geom.Point{ID: id, X: p[a], Y: p[r]})
		}
	}
	for i, pr := range e.pairs {
		e.trees[i].Delete(geom.Point{ID: id, X: p[pr.Attr], Y: p[pr.Rep]})
	}
	for _, d := range e.lone {
		e.lists[d].Delete(p[d], int32(id))
	}
	e.dead[id] = true
	e.live--
	return true
}
