package core

// Replication streaming: the engine-level primitives a leader uses to ship
// its state to a follower and a follower uses to apply it. The wire reuses
// the two formats the engine already trusts with durability — a snapshot
// stream is exactly the checkpoint format (persist.go), and a WAL tail
// stream is exactly the log-record framing (wal.go: magic header, then
// crc | len | lsn | payload records) — so replication inherits their
// validation for free and a follower is bootstrapped by the same Load and
// advanced by the same idempotent-by-LSN apply that crash recovery uses.
//
// The contract is pull-based and stateless on the leader: a follower asks
// for "records after LSN x" and the leader scans its log files. Checkpoints
// retire covered log files, so a follower that lags past the oldest
// retained record cannot be caught up incrementally — the tail reports a
// gap and the follower re-bootstraps from a fresh snapshot (the same
// recovery shape as Redis PSYNC falling back to full sync or Raft's
// InstallSnapshot).

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// ErrReplGap reports that a WAL tail could not be served or applied
// contiguously: the requested LSN range is no longer retained (checkpoint
// retired it), the stream skipped sequence numbers, or the follower is
// ahead of the leader (a leader restart that lost unacknowledged tail).
// The only safe continuation is a full re-bootstrap from a snapshot.
var ErrReplGap = errors.New("core: replication gap: WAL tail is not contiguous with the applied state")

// LastLSN reports the log sequence number of the last mutation folded into
// the engine's current snapshot — the follower's replication cursor and the
// leader's lag reference. 0 on an engine with no logged mutations.
func (e *Engine) LastLSN() uint64 { return e.snap.Load().walLSN }

// SaveWithLSN streams the engine's current snapshot in the checkpoint/Save
// format and reports the WAL LSN that snapshot covers, atomically with the
// bytes: a follower that loads the stream and then tails the log from the
// returned LSN observes every mutation exactly once.
func (e *Engine) SaveWithLSN(w io.Writer) (uint64, error) {
	sn := e.snap.Load()
	if err := e.saveSnapshot(w, sn); err != nil {
		return 0, err
	}
	return sn.walLSN, nil
}

// Row returns a copy of the coordinates indexed under a global ID, live or
// tombstoned, with ok=false when the ID locates nowhere (never inserted, or
// removed and physically reclaimed by compaction). The replication layer
// uses it to prove idempotence: a retried caller-assigned insert is a
// duplicate exactly when the occupying row's coordinates match.
func (e *Engine) Row(id int) ([]float64, bool) {
	sn := e.snap.Load()
	seg, local, ok := sn.locate(id)
	if !ok {
		return nil, false
	}
	out := make([]float64, e.dims)
	if seg < 0 {
		copy(out, sn.memFlat[local*e.dims:(local+1)*e.dims])
	} else {
		sn.segs[seg].copyRow(local, out)
	}
	return out, true
}

// WALTailInfo describes one WALTail export.
type WALTailInfo struct {
	// From is the cursor the tail was requested after; Last is the highest
	// LSN written to the stream (== From when nothing newer was retained).
	From, Last uint64
	// LeaderLSN is the engine's own last LSN at the time of the scan — the
	// follower's lag is LeaderLSN − Last.
	LeaderLSN uint64
	// Records is the number of records written to the stream.
	Records int
	// Gap reports that the stream does NOT reach LeaderLSN contiguously:
	// records after From were retired by a checkpoint, or From is ahead of
	// the leader entirely. The caller must re-bootstrap from a snapshot; the
	// records that were written (if any) must be discarded.
	Gap bool
	// Capped reports that the export stopped at the caller's size limit
	// rather than at LeaderLSN. The stream is a clean contiguous prefix —
	// apply it and ask again from Last; Capped and Gap are mutually
	// exclusive.
	Capped bool
}

// WALTail streams retained WAL records with LSN > from, in order, in the
// log's own framing (file magic header, then crc|len|lsn|payload records),
// and reports how far the stream reaches. It requires a WAL.
//
// maxBytes bounds the export: once at least that many record bytes are
// written the scan stops cleanly at a record boundary and reports Capped —
// a far-behind follower is caught up over several bounded responses instead
// of one response materializing the whole retained log. 0 (or negative)
// streams everything.
//
// The scan holds the checkpoint lock — checkpoints retire log files, and a
// file must not disappear mid-scan — but not the append lock: records
// published before the scan started are fully written (appends complete
// before their snapshot publishes), and a torn in-flight append past
// LeaderLSN merely ends the scan early without a gap.
func (e *Engine) WALTail(w io.Writer, from uint64, maxBytes int) (WALTailInfo, error) {
	l := e.wal
	if l == nil {
		return WALTailInfo{}, fmt.Errorf("core: WALTail: engine has no write-ahead log")
	}
	l.ckptMu.Lock()
	defer l.ckptMu.Unlock()

	info := WALTailInfo{From: from, Last: from, LeaderLSN: e.snap.Load().walLSN}
	if from > info.LeaderLSN {
		info.Gap = true
		return info, nil
	}
	if _, err := w.Write(walMagic[:]); err != nil {
		return info, err
	}
	seqs, err := listWALFiles(l.fs, l.dir)
	if err != nil {
		return info, fmt.Errorf("core: WALTail: %w", err)
	}
	expect := from + 1
	written := 0
	var werr error
scan:
	for _, seq := range seqs {
		f, err := l.fs.OpenFile(l.pathFor(seq), os.O_RDONLY, 0)
		if err != nil {
			// Racing a concurrent retire is impossible (we hold ckptMu); an
			// unopenable file is a hard error.
			return info, fmt.Errorf("core: WALTail: open %s: %w", l.pathFor(seq), err)
		}
		br := bufio.NewReader(f)
		var fhdr [walHeaderLen]byte
		if _, err := io.ReadFull(br, fhdr[:]); err != nil || fhdr != walMagic {
			f.Close()
			break scan // torn file header: this file is all in-flight tail
		}
		clean := scanWALRecords(br, func(lsn uint64, rec, payload []byte) bool {
			switch {
			case lsn < expect:
				return true // duplicate or already-applied record: skip
			case lsn == expect:
				if _, werr = w.Write(rec); werr != nil {
					return false
				}
				if _, werr = w.Write(payload); werr != nil {
					return false
				}
				expect++
				info.Records++
				written += len(rec) + len(payload)
				if maxBytes > 0 && written >= maxBytes {
					info.Capped = true
					return false
				}
				return true
			default:
				info.Gap = true // LSNs jumped: the range in between was retired
				return false
			}
		})
		f.Close()
		if werr != nil {
			return info, werr
		}
		if info.Gap || info.Capped || !clean {
			// A gap ends the export; so does hitting the size cap; a torn
			// record is the current file's in-flight tail and also ends it
			// (nothing valid follows).
			break scan
		}
	}
	info.Last = expect - 1
	// The stream must reach the LSN the engine had already published when
	// the scan began; stopping short means records the follower needs were
	// retired (or lost), which only a re-bootstrap can repair — unless the
	// stop was the caller's own size cap, which the caller resumes past.
	if info.Last < info.LeaderLSN && !info.Capped {
		info.Gap = true
	}
	if info.Capped && info.Last >= info.LeaderLSN {
		// The cap landed exactly on the leader's position: nothing is
		// actually missing.
		info.Capped = false
	}
	return info, nil
}

// ApplyWALStream reads a WALTail stream and applies it to the engine with
// crash recovery's idempotent-by-LSN discipline: records at or below the
// engine's LastLSN are skipped, the successor record applies, anything else
// is a gap. Unlike recovery, a torn or corrupt record is an error — the
// transport below the stream is reliable, so damage means protocol
// violation, and the caller must re-bootstrap. Returns the number of
// records applied (skips excluded) and the new LastLSN.
func (e *Engine) ApplyWALStream(r io.Reader) (applied uint64, records int, err error) {
	br := bufio.NewReader(r)
	var hdr [walHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil || hdr != walMagic {
		return e.LastLSN(), 0, fmt.Errorf("%w: bad stream header", ErrReplGap)
	}
	cursor := e.LastLSN()
	var applyErr error
	clean := scanWALRecords(br, func(lsn uint64, rec, payload []byte) bool {
		switch {
		case lsn <= cursor:
			return true
		case lsn == cursor+1:
			if !e.applyRecord(payload, lsn) {
				applyErr = fmt.Errorf("%w: record %d is semantically invalid", ErrReplGap, lsn)
				return false
			}
			cursor = lsn
			records++
			return true
		default:
			applyErr = fmt.Errorf("%w: record %d follows %d", ErrReplGap, lsn, cursor)
			return false
		}
	})
	if applyErr != nil {
		return cursor, records, applyErr
	}
	if !clean {
		return cursor, records, fmt.Errorf("%w: truncated or corrupt record in stream", ErrReplGap)
	}
	return cursor, records, nil
}

// scanWALRecords reads length-prefixed, CRC-checked records from r, calling
// emit with each valid record's LSN, its raw 16-byte framing header, and its
// payload (both valid only during the call). It stops at the first invalid
// record or when emit returns false; clean reports ending at EOF on a record
// boundary with emit never having declined.
func scanWALRecords(r *bufio.Reader, emit func(lsn uint64, rec, payload []byte) bool) (clean bool) {
	var rec [recHeaderLen]byte
	payload := make([]byte, 0, 256)
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return err == io.EOF
		}
		plen := binary.LittleEndian.Uint32(rec[4:8])
		if plen > maxWALRecord {
			return false
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(r, payload); err != nil {
			return false
		}
		crc := crc32.Checksum(rec[4:], castagnoli)
		crc = crc32.Update(crc, castagnoli, payload)
		if crc != binary.LittleEndian.Uint32(rec[0:4]) {
			return false
		}
		if !emit(binary.LittleEndian.Uint64(rec[8:16]), rec[:], payload) {
			return false
		}
	}
}
