package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"testing"
)

// fuzzValidLog builds a well-formed log image (file header + 3 insert
// records, LSNs 1..3) — the base the seed corpus mutates.
func fuzzValidLog() []byte {
	rows := [][]float64{
		{0.1, 0.2, 0.3, 0.4},
		{0.5, 0.6, 0.7, 0.8},
		{0.9, 0.1, 0.2, 0.3},
	}
	var recs []byte
	for i, r := range rows {
		recs = writeRecord(recs, uint64(i+1), insertPayload(i, r))
	}
	return append(append([]byte(nil), walMagic[:]...), recs...)
}

// refParseApplied is an independent reference parser: the number of
// LSN-advancing records a structurally maximal replay of raw could apply.
// It is deliberately at least as permissive as the engine's replay (it
// skips the semantic payload checks), so it upper-bounds ReplayRecords:
// replaying MORE than this means replay ran past the first structural
// corruption.
func refParseApplied(raw []byte) uint64 {
	if len(raw) < walHeaderLen || !bytes.Equal(raw[:walHeaderLen], walMagic[:]) {
		return 0
	}
	off := walHeaderLen
	var applied uint64
	for {
		if off+recHeaderLen > len(raw) {
			return applied
		}
		plen := binary.LittleEndian.Uint32(raw[off+4:])
		lsn := binary.LittleEndian.Uint64(raw[off+8:])
		if plen > maxWALRecord || off+recHeaderLen+int(plen) > len(raw) {
			return applied
		}
		crc := crc32.Checksum(raw[off+4:off+recHeaderLen], castagnoli)
		crc = crc32.Update(crc, castagnoli, raw[off+recHeaderLen:off+recHeaderLen+int(plen)])
		if crc != binary.LittleEndian.Uint32(raw[off:]) {
			return applied
		}
		switch {
		case lsn <= applied:
			// Duplicate: replay skips it and keeps going.
		case lsn == applied+1:
			applied = lsn
		default:
			// Gap: replay stops.
			return applied
		}
		off += recHeaderLen + int(plen)
	}
}

// FuzzWALReplay feeds arbitrary bytes as the entire live log file of an
// otherwise-valid WAL directory. Whatever the bytes, recovery must never
// panic and never error (a corrupt tail is the normal shape of a crashed
// log), must never apply records past the first structural corruption, and
// must be idempotent — recovering its own repaired output reproduces the
// same state.
func FuzzWALReplay(f *testing.F) {
	valid := fuzzValidLog()
	f.Add(append([]byte(nil), valid...))
	// Torn tail: the last record loses its final 5 bytes.
	f.Add(append([]byte(nil), valid[:len(valid)-5]...))
	// Bit flip in the middle of a payload.
	flip := append([]byte(nil), valid...)
	flip[len(flip)/2] ^= 0x40
	f.Add(flip)
	// Truncated-length attack: a header promising more payload than exists.
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[walHeaderLen+4:], 1<<23)
	f.Add(huge)
	// Header-only and empty files.
	f.Add(append([]byte(nil), walMagic[:]...))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		fs := seedWALDir(t)
		fh, err := fs.OpenFile("idx/000000001.wal", os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		fh.Write(raw)
		fh.Close()

		re, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{DisableCompaction: true})
		if err != nil {
			t.Fatalf("recovery must never error on log corruption: %v", err)
		}
		maxApply := refParseApplied(raw)
		st := re.WALStats()
		if st.ReplayRecords > maxApply {
			t.Fatalf("replayed %d records, but only %d precede the first corruption", st.ReplayRecords, maxApply)
		}
		if st.LSN > maxApply {
			t.Fatalf("recovered LSN %d past the first corruption (max %d)", st.LSN, maxApply)
		}
		n := re.Len()
		re.Close()

		// Idempotence: recovery truncated the corruption away; a second
		// recovery sees a clean log and lands on the same state.
		re2, err := Open(WALConfig{Dir: "idx", FS: fs}, RuntimeOptions{DisableCompaction: true})
		if err != nil {
			t.Fatalf("second recovery errored: %v", err)
		}
		if st2 := re2.WALStats(); st2.LSN != st.LSN || re2.Len() != n {
			t.Fatalf("recovery not idempotent: LSN %d→%d, Len %d→%d", st.LSN, st2.LSN, n, re2.Len())
		}
		re2.Close()
	})
}
