package core

import (
	"fmt"
	"testing"

	"repro/internal/faultfs"
)

// Crash-recovery differential suite: drive a scripted mutation mix through
// a WAL engine on the fault-injecting in-memory filesystem, then crash the
// filesystem at many points — every journaled operation boundary, every
// acknowledgment byte watermark (±2 bytes, straddling record boundaries),
// and a byte stride over the whole write history — and require of every
// crash state that
//
//  1. Open never errors (torn tails truncate; partial checkpoints fall
//     back to the previous one);
//  2. the recovered engine is byte-identical in its answers to a fresh,
//     log-less oracle engine holding exactly some prefix of the mutation
//     script — no half-applied mutation is ever visible;
//  3. the prefix covers at least every mutation acknowledged before the
//     crash point (durability: an acknowledged mutation survives); and
//  4. recovering the recovered directory again reproduces the same state
//     (recovery is idempotent — crashing during crash recovery is safe).
//
// Crashes here are CrashClone states: all written bytes up to the budget
// survive, including torn prefixes of interrupted writes — a process-kill
// model. TestWALSyncPoliciesAndPowerFailure covers the harsher power-loss
// model where only fsynced bytes survive.

// crashRun drives muts through a fresh WAL engine, recording the global
// byte and op watermarks plus the engine LSN after each acknowledged
// mutation.
type crashRun struct {
	fs   *faultfs.Mem
	muts []walMutation
	// after mutation i is acknowledged: bytes written, journal ops, LSN.
	ackBytes []int64
	ackOps   []int
	lsns     []uint64
	// watermarks right after engine creation: crash points before these are
	// interrupted *creations*, which Open rejects by design (no checkpoint
	// yet) — the sdquery manifest is the creation commit point.
	baseBytes int64
	baseOps   int
	// lsnPrefix maps a recovered LSN to the mutation-prefix length whose
	// oracle it must match.
	lsnPrefix map[uint64]int
}

func newCrashRun(t *testing.T, n int, seed int64) *crashRun {
	t.Helper()
	r := &crashRun{fs: faultfs.NewMem(), muts: walScript(n, seed)}
	e := newWALEngine(t, r.fs, "idx", WALConfig{Policy: SyncAlways, CheckpointBytes: 1 << 11})
	r.baseBytes = r.fs.Written()
	r.baseOps = r.fs.Ops()
	r.lsnPrefix = map[uint64]int{0: 0}
	for i, mu := range r.muts {
		if mu.remove {
			if _, err := e.RemoveDurable(mu.id); err != nil {
				t.Fatalf("mutation %d: remove %d: %v", i, mu.id, err)
			}
		} else if _, err := e.Insert(mu.row); err != nil {
			t.Fatalf("mutation %d: insert: %v", i, err)
		}
		r.ackBytes = append(r.ackBytes, r.fs.Written())
		r.ackOps = append(r.ackOps, r.fs.Ops())
		lsn := e.WALStats().LSN
		r.lsns = append(r.lsns, lsn)
		r.lsnPrefix[lsn] = i + 1
	}
	waitCompactIdle(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return r
}

// minLSNBytes returns the highest LSN that must survive a crash after
// `bytes` written: the LSN of the last mutation acknowledged within the
// budget.
func (r *crashRun) minLSNBytes(bytes int64) uint64 {
	var min uint64
	for i, a := range r.ackBytes {
		if a <= bytes {
			min = r.lsns[i]
		}
	}
	return min
}

func (r *crashRun) minLSNOps(ops int) uint64 {
	var min uint64
	for i, a := range r.ackOps {
		if a <= ops {
			min = r.lsns[i]
		}
	}
	return min
}

// checkCrashState opens the crashed filesystem and asserts the four suite
// properties. Oracles are memoized per prefix in oracles.
func checkCrashState(t *testing.T, label string, r *crashRun, cfs *faultfs.Mem, minLSN uint64, oracles map[int]*Engine) {
	t.Helper()
	opt := RuntimeOptions{DisableCompaction: true}
	re, err := Open(WALConfig{Dir: "idx", FS: cfs}, opt)
	if err != nil {
		t.Fatalf("%s: recovery errored: %v", label, err)
	}
	lsn := re.WALStats().LSN
	if lsn < minLSN {
		t.Fatalf("%s: recovered LSN %d below acknowledged %d — durability lost", label, lsn, minLSN)
	}
	m, ok := r.lsnPrefix[lsn]
	if !ok {
		t.Fatalf("%s: recovered LSN %d matches no mutation prefix", label, lsn)
	}
	oracle := oracles[m]
	if oracle == nil {
		oracle = oracleFor(t, r.muts, m)
		oracles[m] = oracle
	}
	answersMustMatch(t, label, re, oracle)
	if err := re.Close(); err != nil {
		t.Fatalf("%s: close: %v", label, err)
	}

	// Idempotence: recovery already repaired the directory (truncated the
	// torn tail, dropped dead files); recovering it again must land on the
	// same state.
	re2, err := Open(WALConfig{Dir: "idx", FS: cfs}, opt)
	if err != nil {
		t.Fatalf("%s: second recovery errored: %v", label, err)
	}
	if got := re2.WALStats().LSN; got != lsn {
		t.Fatalf("%s: second recovery LSN %d, first %d", label, got, lsn)
	}
	answersMustMatch(t, label+"/again", re2, oracle)
	re2.Close()
}

// TestCrashRecoveryDifferentialBytes kills the filesystem at byte
// watermarks: every acknowledgment offset ±2 (the record boundaries) plus
// a stride across the full history, torn mid-record writes included.
func TestCrashRecoveryDifferentialBytes(t *testing.T) {
	r := newCrashRun(t, 80, 21)
	total := r.fs.Written()
	oracles := map[int]*Engine{}

	points := map[int64]bool{}
	for _, a := range r.ackBytes {
		for d := int64(-2); d <= 2; d++ {
			if n := a + d; n >= r.baseBytes && n <= total {
				points[n] = true
			}
		}
	}
	stride := total / 200
	if stride < 1 {
		stride = 1
	}
	for n := r.baseBytes; n <= total; n += stride {
		points[n] = true
	}
	points[total] = true

	for n := range points {
		checkCrashState(t, fmt.Sprintf("crash@%dB", n), r, r.fs.CrashClone(n), r.minLSNBytes(n), oracles)
	}
}

// TestCrashRecoveryDifferentialOps kills the filesystem at every journaled
// operation boundary — separating, among others, the
// checkpoint-tmp-written / tmp-renamed / old-logs-retired states and the
// mid-rotation file dance.
func TestCrashRecoveryDifferentialOps(t *testing.T) {
	r := newCrashRun(t, 60, 22)
	totalOps := r.fs.Ops()
	oracles := map[int]*Engine{}
	for k := r.baseOps; k <= totalOps; k++ {
		checkCrashState(t, fmt.Sprintf("crash@op%d", k), r, r.fs.CrashCloneOps(k), r.minLSNOps(k), oracles)
	}
}
