// Scaffold hopping: the chemoinformatics scenario from the paper's
// introduction and §6.3. Given a query molecule, find compounds with
// *similar drug-likeness* (attractive — we want the same biological
// behavior) but *very different molecular weight* (repulsive — a different
// chemical scaffold), then inspect what the answers have in common.
//
// The dataset is the ChEMBL-like simulator used by the Table 1 experiment:
// it plants a sub-population of overweight yet drug-like molecules with low
// polar surface area (PSA), the hidden pattern the paper reports. Neither
// a pure similarity query nor a pure distance query can surface it.
//
// Run with:
//
//	go run ./examples/scaffoldhop
package main

import (
	"fmt"
	"log"

	sdquery "repro"
	"repro/internal/dataset"
)

func main() {
	const n = 100_000
	mols := dataset.ChEMBL(n, 11)
	overall := dataset.Stats(mols)
	fmt.Printf("library: %d molecules   avg drug-likeness %.2f   avg MW %.0f   avg PSA %.1f\n\n",
		n, overall.DrugLikeness, overall.MW, overall.PSA)

	// Query dimensions: drug-likeness (attractive), molecular weight
	// (repulsive), both normalized to comparable scales.
	data := dataset.MoleculeVectors(mols)
	roles := []sdquery.Role{sdquery.Attractive, sdquery.Repulsive}
	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		log.Fatal(err)
	}

	// The §6.3 query: a light, very drug-like lead compound
	// (drug-likeness 11, MW 250). We want equally drug-like molecules on
	// completely different scaffolds (much heavier).
	q := sdquery.Query{
		Point:   []float64{11 / dataset.MaxDrugLikeness, 250.0 / 1500},
		K:       25,
		Roles:   roles,
		Weights: []float64{1, 1},
	}
	res, err := idx.TopK(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top scaffold-hopping candidates (drug-like but far heavier):")
	var top []dataset.Molecule
	exceptions := 0
	for i, r := range res {
		m := mols[r.ID]
		top = append(top, m)
		if m.Exception {
			exceptions++
		}
		if i < 8 {
			fmt.Printf("%2d. drug-likeness %5.2f  MW %6.1f  PSA %6.1f  logP %4.1f\n",
				i+1, m.DrugLikeness, m.MW, m.PSA, m.LogP)
		}
	}
	s := dataset.Stats(top)
	fmt.Printf("\nanswer-set averages: drug-likeness %.2f (overall %.2f), MW %.0f (overall %.0f), PSA %.1f (overall %.1f)\n",
		s.DrugLikeness, overall.DrugLikeness, s.MW, overall.MW, s.PSA, overall.PSA)
	fmt.Printf("planted exception molecules found: %d of %d\n", exceptions, len(top))
	fmt.Println("\nthe hidden pattern of Table 1: overweight drug-like molecules share a LOW polar surface area —")
	fmt.Println("a known proxy for absorption, invisible to plain similarity or distance queries.")
}
