// Quickstart: build an SD-Index over synthetic data, run one query, and
// cross-check the answer against the sequential-scan baseline.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	sdquery "repro"
)

func main() {
	// A dataset of 100k points over four dimensions. Imagine columns:
	// 0 quality (attractive: we want similar quality),
	// 1 price   (repulsive:  we want a very different price),
	// 2 rating  (attractive),
	// 3 latency (repulsive).
	rng := rand.New(rand.NewSource(42))
	const n, dims = 100_000, 4
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	roles := []sdquery.Role{sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive}

	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		log.Fatal(err)
	}

	q := sdquery.Query{
		Point:   []float64{0.8, 0.9, 0.7, 0.1},
		K:       5,
		Roles:   roles,
		Weights: []float64{1.0, 0.8, 0.5, 0.6},
	}
	results, err := idx.TopK(q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top-5 by SD-score (similar quality/rating, distant price/latency):")
	for i, r := range results {
		p := data[r.ID]
		fmt.Printf("%d. row %-6d score %+.4f   quality %.2f price %.2f rating %.2f latency %.2f\n",
			i+1, r.ID, r.Score, p[0], p[1], p[2], p[3])
	}

	// Every engine in the package answers the same queries; verify against
	// the exact scan.
	scan, err := sdquery.NewScan(data)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := scan.TopK(q)
	if err != nil {
		log.Fatal(err)
	}
	for i := range results {
		if diff := results[i].Score - exact[i].Score; diff > 1e-9 || diff < -1e-9 {
			log.Fatalf("index disagrees with scan at rank %d: %v vs %v",
				i, results[i].Score, exact[i].Score)
		}
	}
	fmt.Println("\nverified: identical scores to sequential scan.")
}
