// Advertising: the online-advertising scenario from the paper's
// introduction and §5 (Figure 6). An advertiser knows a top publisher it
// cannot afford and wants publishers with a *similar hit rate* and *similar
// audience coverage* (attractive) but a *very different price* (repulsive) —
// cheaper alternatives delivering comparable traffic.
//
// The query mixes a 2D subproblem (price paired with hit rate) with a 1D
// subproblem (coverage), exercising the §5 decomposition end to end.
//
// Run with:
//
//	go run ./examples/advertising
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	sdquery "repro"
)

type publisher struct {
	name     string
	price    float64 // $ per thousand impressions
	hitRate  float64 // clicks per thousand impressions
	coverage float64 // % of target audience reached
}

func main() {
	rng := rand.New(rand.NewSource(7))

	// A synthetic marketplace: price correlates with hit rate (premium
	// publishers charge more), with idiosyncratic spread. A handful of
	// "hidden gem" publishers deliver premium hit rates at mid-tier
	// prices — exactly what the SD-query should surface.
	publishers := make([]publisher, 0, 5000)
	for i := 0; i < 5000; i++ {
		quality := rng.Float64()
		price := 2 + 48*quality + rng.NormFloat64()*4
		hit := 1 + 14*quality + rng.NormFloat64()*1.2
		cov := 20 + 60*quality + rng.NormFloat64()*8
		if i%250 == 0 { // hidden gems
			price *= 0.45
		}
		publishers = append(publishers, publisher{
			name:     fmt.Sprintf("pub-%04d", i),
			price:    clamp(price, 1, 60),
			hitRate:  clamp(hit, 0.5, 16),
			coverage: clamp(cov, 5, 95),
		})
	}

	// Normalize columns to [0, 1] so weights are comparable.
	data := make([][]float64, len(publishers))
	for i, p := range publishers {
		data[i] = []float64{p.price / 60, p.hitRate / 16, p.coverage / 95}
	}
	roles := []sdquery.Role{sdquery.Repulsive, sdquery.Attractive, sdquery.Attractive}

	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		log.Fatal(err)
	}

	// The reference publisher: a premium outlet the advertiser benchmarks
	// against — high price, high hit rate, broad coverage.
	reference := publisher{name: "premium-reference", price: 55, hitRate: 14.5, coverage: 88}
	fmt.Printf("reference: %s  price $%.0f  hit rate %.1f  coverage %.0f%%\n\n",
		reference.name, reference.price, reference.hitRate, reference.coverage)

	res, err := idx.TopK(sdquery.Query{
		Point:   []float64{reference.price / 60, reference.hitRate / 16, reference.coverage / 95},
		K:       8,
		Roles:   roles,
		Weights: []float64{1.0, 1.4, 0.6}, // price distance matters, hit-rate similarity matters more
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("publishers with similar traffic but very different (lower) price:")
	for i, r := range res {
		p := publishers[r.ID]
		fmt.Printf("%d. %-9s score %+.3f  price $%5.1f  hit rate %5.1f  coverage %4.1f%%\n",
			i+1, p.name, r.Score, p.price, p.hitRate, p.coverage)
	}

	// Sanity summary: the answer set should be dramatically cheaper than
	// the reference while keeping hit rates close to it.
	var prices, hits []float64
	for _, r := range res {
		prices = append(prices, publishers[r.ID].price)
		hits = append(hits, publishers[r.ID].hitRate)
	}
	sort.Float64s(prices)
	fmt.Printf("\nmedian price of answers: $%.1f (reference $%.0f); hit rates within %.1f of reference\n",
		prices[len(prices)/2], reference.price, maxAbsDiff(hits, reference.hitRate))
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

func maxAbsDiff(xs []float64, ref float64) float64 {
	var m float64
	for _, x := range xs {
		d := x - ref
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
