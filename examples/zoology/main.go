// Zoology: the species-evolution scenario from the paper's introduction
// (Figure 1). Each species is a point with a phylogeny coordinate and a
// habitat coordinate; a zoologist looks for species with *similar phylogeny*
// (attractive) evolving in *distant habitats* (repulsive).
//
// This example reproduces the worked answers of the paper: for query q1 the
// top-1 is p1 (same phylogeny, very different habitat) and for q2 it is p3.
// It uses the fixed-parameter Top1Index (§3), since k = 1 and the weights
// are known up front.
//
// Run with:
//
//	go run ./examples/zoology
package main

import (
	"fmt"
	"log"

	sdquery "repro"
)

func main() {
	// Columns: phylogeny (attractive), habitat (repulsive) — the Figure 1
	// layout, with species p1..p5.
	species := []struct {
		name      string
		phylogeny float64
		habitat   float64
	}{
		{"p1", 1, 4},
		{"p2", 2.5, 5},
		{"p3", 5, 3},
		{"p4", 2, 2},
		{"p5", 4, 1},
	}
	data := make([][]float64, len(species))
	for i, s := range species {
		data[i] = []float64{s.phylogeny, s.habitat}
	}

	idx, err := sdquery.NewTop1Index(data, sdquery.Top1Config{
		AttractiveWeight: 1, // phylogeny similarity
		RepulsiveWeight:  1, // habitat distance
		K:                1,
	})
	if err != nil {
		log.Fatal(err)
	}

	queries := []struct {
		name      string
		phylogeny float64
		habitat   float64
		expect    string
	}{
		{"q1", 1, 1, "p1"},
		{"q2", 5, 1, "p3"},
	}
	for _, q := range queries {
		res, err := idx.TopK([]float64{q.phylogeny, q.habitat})
		if err != nil {
			log.Fatal(err)
		}
		best := species[res[0].ID]
		fmt.Printf("%s (phylogeny %.0f, habitat %.0f): most similar-yet-distant species is %s (SD-score %.0f)\n",
			q.name, q.phylogeny, q.habitat, best.name, res[0].Score)
		if best.name != q.expect {
			log.Fatalf("expected %s per the paper's Figure 1 discussion", q.expect)
		}
	}
	fmt.Println("\nBoth answers match the paper's worked example.")
}
