package sdquery

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// ShardedIndex is the parallel execution layer over the SD-Index: the
// dataset is partitioned round-robin across P shards, each backed by an
// independent core engine, and every query fans out to per-shard goroutines
// on a reusable worker pool. Because the SD-score of a point depends only on
// that point, the exact global top-k is contained in the union of the
// per-shard top-k answers; a bounded allocation-free merge over the
// per-shard heads recovers it, with ties broken by ascending dataset ID
// exactly like the sequential scan — the sharded answer is byte-identical
// to the single-engine one.
//
// Shard engines index rows under their global dataset IDs directly (build
// rows keep their row index, Insert returns the next global ID), so results
// from every engine in the package refer to the same points with no
// translation layer. Queries hold no lock on any shard: each shard engine
// answers from an atomically loaded snapshot of its immutable segment
// stack, so TopK and BatchTopK proceed concurrently with Insert, Remove,
// and background compaction on every shard. Insert and Remove serialize
// only on the index's small routing table.
//
// Close releases the worker pool's goroutines; the index remains usable
// afterwards, degrading to sequential execution on the caller's goroutine.
type ShardedIndex struct {
	roles []Role
	pool  *workerPool

	// mu guards the routing table and the insert cursor — writer-side state
	// only; queries never take it.
	mu       sync.Mutex
	byGlobal []int32 // global ID → owning shard
	next     int     // round-robin insert cursor

	shards []*shard

	// ctxPool recycles fan-out state — per-(query × shard) result buffers,
	// spec tables, merge cursors — across TopK and BatchTopK calls, so the
	// sharded grid reuses contexts instead of allocating per call.
	ctxPool sync.Pool
}

// shardedCtx is the pooled fan-out state of one TopK or BatchTopK call.
type shardedCtx struct {
	bufs  [][]query.Result // one reusable result buffer per (query × shard) task
	specs []query.Spec
	pos   []int        // merge cursors, one per shard
	stats []core.Stats // per-shard counters for the stats-reporting surface
}

func (s *ShardedIndex) getCtx(tasks int) *shardedCtx {
	c, _ := s.ctxPool.Get().(*shardedCtx)
	if c == nil {
		c = &shardedCtx{pos: make([]int, len(s.shards))}
	}
	for len(c.bufs) < tasks {
		c.bufs = append(c.bufs, nil)
	}
	return c
}

func (s *ShardedIndex) putCtx(c *shardedCtx) {
	// Specs reference caller-owned Point/Weights slices; drop them so a
	// pooled idle context never pins a request buffer. Result buffers hold
	// no pointers and stay for reuse.
	clear(c.specs)
	c.specs = c.specs[:0]
	s.ctxPool.Put(c)
}

type shard struct {
	eng *core.Engine
}

// NewShardedIndex builds a sharded SD-Index over data (row-major, n × d)
// with the given build-time roles. WithShards and WithWorkers size the
// partition and the pool; the remaining SDOptions configure every per-shard
// engine exactly as they configure NewSDIndex. Shard engines are built
// concurrently.
//
// Points are dealt round-robin: global row i lives on shard i mod P. Data-
// dependent pairing strategies (PairByCorrelation, PairByVariance) are
// computed per shard and may choose different pairings on different shards;
// answers are unaffected, only per-shard convergence speed.
func NewShardedIndex(data [][]float64, roles []Role, opts ...SDOption) (*ShardedIndex, error) {
	var cfg sdConfig
	for _, o := range opts {
		o(&cfg)
	}
	p := cfg.shards
	if p <= 0 {
		p = defaultParallelism()
	}
	if p > len(data) {
		p = len(data)
	}
	if p < 1 {
		p = 1
	}
	coreCfg, err := cfg.coreConfig(roles)
	if err != nil {
		return nil, err
	}
	if cfg.walDir != "" {
		if err := writeManifest(&cfg, manifestKindSharded, p); err != nil {
			return nil, err
		}
	}
	s := &ShardedIndex{
		roles:    append([]Role(nil), roles...),
		byGlobal: make([]int32, len(data)),
		shards:   make([]*shard, p),
	}
	parts := make([][][]float64, p)
	ids := make([][]int32, p)
	for i, row := range data {
		si := i % p
		parts[si] = append(parts[si], row)
		ids[si] = append(ids[si], int32(i))
		s.byGlobal[i] = int32(si)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for si := 0; si < p; si++ {
		s.shards[si] = &shard{}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			cc := coreCfg
			if cfg.walDir != "" {
				cc.WAL = cfg.walConfig(shardWALDir(cfg.walDir, si))
			}
			eng, err := core.NewWithIDs(parts[si], ids[si], cc)
			if err != nil {
				errs[si] = fmt.Errorf("shard %d: %w", si, err)
				return
			}
			s.shards[si].eng = eng
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.pool = newWorkerPool(cfg.workers)
	return s, nil
}

// resultBetter is the global answer order: score descending, dataset ID
// ascending — the scan baseline's order, which every deterministic engine in
// the package reproduces.
func resultBetter(a, b query.Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.ID < b.ID
}

// mergeShards merges per-shard best-first lists into dst under the global
// answer order, emitting at most k results. Shard counts are small, so a
// linear scan over the heads beats a heap, and it allocates nothing (it
// replaced the generic k-way heap merge the sharding layer originally
// used). Global IDs are distinct, so resultBetter is a total order and the
// merge is deterministic.
func mergeShards(dst []Result, lists [][]query.Result, pos []int, k int) []Result {
	for i := range lists {
		pos[i] = 0
	}
	for n := 0; n < k; n++ {
		best := -1
		var bestRes query.Result
		for i, l := range lists {
			if pos[i] >= len(l) {
				continue
			}
			if best == -1 || resultBetter(l[pos[i]], bestRes) {
				best, bestRes = i, l[pos[i]]
			}
		}
		if best == -1 {
			break
		}
		pos[best]++
		dst = append(dst, Result{ID: bestRes.ID, Score: bestRes.Score})
	}
	return dst
}

// TopK answers the query, fanning out to every shard on the worker pool and
// merging the per-shard streams into the exact global top k. See Engine.
func (s *ShardedIndex) TopK(q Query) ([]Result, error) {
	return s.TopKAppend(nil, q)
}

// fanOutQuery runs spec on every shard through the pool, filling c.bufs with
// per-shard answers under the batchErr first-error discipline. With a
// non-nil views slice the query runs against those pinned per-shard
// snapshots instead of each shard's live head (the ShardedSnapshot path).
// Shard engines answer lock-free either way — one atomic snapshot load per
// shard. When stats is non-nil it receives shard si's work counters at
// index si; the zero-alloc fast path passes nil. A non-nil done channel
// cancels every shard's aggregation at its next scheduling step (the
// TopKContext path); nil costs nothing.
func (s *ShardedIndex) fanOutQuery(spec query.Spec, c *shardedCtx, stats []core.Stats, views []core.View, done <-chan struct{}) error {
	var be batchErr
	s.pool.do(len(s.shards), func(si int) {
		if be.shouldSkip(si) {
			return
		}
		var (
			res []query.Result
			st  core.Stats
			err error
		)
		if views != nil {
			res, st, err = views[si].TopKAppendCancel(c.bufs[si][:0], spec, done)
		} else {
			res, st, err = s.shards[si].eng.TopKAppendCancel(c.bufs[si][:0], spec, done)
		}
		c.bufs[si] = res[:0] // keep grown capacity pooled
		if err != nil {
			be.record(si, err)
			return
		}
		c.bufs[si] = res
		if stats != nil {
			stats[si] = st
		}
	})
	return be.first()
}

// TopKAppend is TopK appending into dst: with a caller-reused dst and warm
// pools the whole sharded fan-out allocates only the worker dispatch state.
// (context.Background's Done channel is nil, so the delegation costs
// nothing on the uncancellable hot path.)
func (s *ShardedIndex) TopKAppend(dst []Result, q Query) ([]Result, error) {
	return s.TopKAppendContext(context.Background(), dst, q)
}

// TopKWithStats answers the query and reports the work counters summed over
// every shard: total sorted accesses, scored points, subproblems, segments,
// and scheduler rounds across the fan-out, plus how many shard engines
// answered from their plan cache (each shard keeps its own cache, so a
// fully warm fan-out reports PlanCacheHits == Shards()). The diagnostic
// surface behind the per-workload fetched/scored means the benchmark report
// emits for sharded workloads.
func (s *ShardedIndex) TopKWithStats(q Query) ([]Result, QueryStats, error) {
	spec := q.spec()
	p := len(s.shards)
	c := s.getCtx(p)
	defer s.putCtx(c)
	for len(c.stats) < p {
		c.stats = append(c.stats, core.Stats{})
	}
	if err := s.fanOutQuery(spec, c, c.stats[:p], nil, nil); err != nil {
		return nil, QueryStats{}, err
	}
	var total QueryStats
	for _, st := range c.stats[:p] {
		total.Subproblems += st.Subproblems
		total.Segments += st.Segments
		total.Fetched += st.Fetched
		total.Scored += st.Scored
		total.Rounds += st.Rounds
		total.PlanCacheHits += st.PlanCacheHits
	}
	return mergeShards(make([]Result, 0, q.K), c.bufs[:p], c.pos, q.K), total, nil
}

// BatchTopK answers many queries, pipelining every (query, shard) unit of
// work across the pool at once rather than looping over queries serially:
// with Q queries and P shards, up to Q·P independent tasks keep every worker
// busy even when individual shard scans are short. Per-task result buffers
// and spec tables come from the index's context pool, so contexts are
// reused across the whole (query × shard) grid. Results are returned in
// query order; the first error (lowest query index, then lowest shard)
// aborts the batch.
func (s *ShardedIndex) BatchTopK(queries []Query) ([][]Result, error) {
	return s.batchTopK(queries, nil)
}

// batchTopK is the shared BatchTopK/BatchTopKContext body; a non-nil done
// channel cancels every in-flight shard aggregation at its next scheduling
// step.
func (s *ShardedIndex) batchTopK(queries []Query, done <-chan struct{}) ([][]Result, error) {
	out := make([][]Result, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	p := len(s.shards)
	c := s.getCtx(len(queries) * p)
	defer s.putCtx(c)
	c.specs = c.specs[:0]
	for _, q := range queries {
		c.specs = append(c.specs, q.spec())
	}
	var be batchErr
	s.pool.do(len(queries)*p, func(t int) {
		if be.shouldSkip(t) {
			return
		}
		qi, si := t/p, t%p
		res, _, err := s.shards[si].eng.TopKAppendCancel(c.bufs[t][:0], c.specs[qi], done)
		c.bufs[t] = res[:0]
		if err != nil {
			be.record(t, fmt.Errorf("query %d: %w", qi, err))
			return
		}
		c.bufs[t] = res
	})
	if err := be.first(); err != nil {
		return nil, err
	}
	// Merging runs on the caller's goroutine: each merge is O(k·P) over
	// already-fetched rows, and the per-shard merge cursors live in the
	// shared context.
	for qi := range queries {
		out[qi] = mergeShards(make([]Result, 0, queries[qi].K), c.bufs[qi*p:(qi+1)*p], c.pos, queries[qi].K)
	}
	return out, nil
}

// Insert adds a point to the next shard in round-robin order and returns its
// global dataset ID. The shard engine indexes the row under that global ID
// directly; only the routing table is locked, so in-flight queries are
// never blocked.
//
// On a WithWAL index the routing lock covers only the log append and
// snapshot publish; the durability wait (the fsync, under SyncAlways)
// happens after the lock is released, so concurrent inserts — even ones
// routed to different shards — stack up in the same commit window and
// share one fsync per shard (group commit). An ErrWAL return means the
// mutation was not acknowledged; it may or may not survive a concurrent
// crash, exactly like an unacknowledged network write.
func (s *ShardedIndex) Insert(p []float64) (int, error) {
	s.mu.Lock()
	si := s.next
	global := len(s.byGlobal)
	wait, err := s.shards[si].eng.InsertWithIDAsync(global, p)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.byGlobal = append(s.byGlobal, int32(si))
	s.next = (si + 1) % len(s.shards)
	s.mu.Unlock()
	if wait != nil {
		if err := wait(); err != nil {
			return 0, err
		}
	}
	return global, nil
}

// Remove deletes a point by global dataset ID, reporting whether it was
// live. The owning shard tombstones the row in its current snapshot;
// background compaction reclaims the space later. On a WAL index Remove
// waits for durability like Insert but drops the error; use RemoveDurable
// when the caller must distinguish "not live" from "log failed".
func (s *ShardedIndex) Remove(id int) bool {
	ok, _ := s.RemoveDurable(id)
	return ok
}

// RemoveDurable is Remove with the WAL verdict: on a WithWAL index it
// returns ErrWAL when the tombstone could not be made durable, and the
// reported bool is authoritative only when err is nil. Without a WAL it is
// exactly Remove.
func (s *ShardedIndex) RemoveDurable(id int) (bool, error) {
	s.mu.Lock()
	if id < 0 || id >= len(s.byGlobal) || s.byGlobal[id] < 0 {
		// Out of range, or (after recovery) an ID whose row was removed and
		// physically reclaimed before the checkpoint — provably not live.
		s.mu.Unlock()
		return false, nil
	}
	sh := s.shards[s.byGlobal[id]]
	s.mu.Unlock()
	return sh.eng.RemoveDurable(id)
}

// Sync force-fsyncs every shard's write-ahead log regardless of sync
// policy — the shutdown drain: a server running SyncInterval or SyncNever
// calls it so every acknowledged mutation survives power loss too. No-op
// without a WAL; the first error is returned but every shard is synced.
func (s *ShardedIndex) Sync() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.eng.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Checkpoint writes every shard's current snapshot into its WAL directory
// and retires the log files covered. The background compactors checkpoint
// automatically as sealed log volume accumulates; an explicit call bounds
// recovery time before a planned restart. No-op without a WAL.
func (s *ShardedIndex) Checkpoint() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.eng.Checkpoint(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WALStats sums the write-ahead-log counters over every shard; Enabled is
// false without WithWAL. LSN is the maximum shard LSN (shards log
// independently); Err is the first shard's sticky failure, so a non-nil
// Err means at least one shard refuses writes and the index should be
// treated as read-only.
func (s *ShardedIndex) WALStats() WALStats {
	var total WALStats
	for _, sh := range s.shards {
		st := sh.eng.WALStats()
		if !st.Enabled {
			continue
		}
		total.Enabled = true
		total.Appends += st.Appends
		total.Fsyncs += st.Fsyncs
		total.Bytes += st.Bytes
		total.ReplayRecords += st.ReplayRecords
		total.Rotations += st.Rotations
		total.Checkpoints += st.Checkpoints
		if st.LSN > total.LSN {
			total.LSN = st.LSN
		}
		if total.Err == nil {
			total.Err = st.Err
		}
	}
	return total
}

// Compact synchronously folds every shard's segment stack and memtable into
// one sealed segment per shard, dropping tombstoned rows. Queries keep
// flowing throughout.
func (s *ShardedIndex) Compact() {
	for _, sh := range s.shards {
		sh.eng.Compact()
	}
}

// Len reports the number of live points across all shards (one atomic
// snapshot load per shard; no locks).
func (s *ShardedIndex) Len() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.eng.Len()
	}
	return total
}

// Epoch returns the version number of the index's visible state: the sum of
// every shard engine's snapshot epoch (one atomic load per shard, no lock).
// Each component is monotonic, so the sum strictly increases whenever any
// shard publishes a new snapshot (insert, remove, compaction) and two equal
// Epoch readings prove that no shard changed between them — even though the
// per-shard loads are not mutually atomic, a publish landing mid-read can
// only inflate the later reading, never restore an earlier value. That
// makes the epoch a safe cache invalidation key for the serving layer.
func (s *ShardedIndex) Epoch() uint64 {
	var e uint64
	for _, sh := range s.shards {
		e += sh.eng.Epoch()
	}
	return e
}

// Bytes estimates the resident size of all per-shard index structures.
func (s *ShardedIndex) Bytes() int {
	total := 0
	for _, sh := range s.shards {
		total += sh.eng.Bytes()
	}
	return total
}

// Roles returns the build-time dimension roles.
func (s *ShardedIndex) Roles() []Role { return append([]Role(nil), s.roles...) }

// Shards reports the number of data shards.
func (s *ShardedIndex) Shards() int { return len(s.shards) }

// Workers reports the size of the worker pool.
func (s *ShardedIndex) Workers() int { return s.pool.workers }

// Close releases the worker pool's goroutines and flushes and closes every
// shard's write-ahead log. The index remains queryable — subsequent queries
// execute sequentially on the caller's goroutine and reads never touch the
// log — but on a WithWAL index every later mutation fails with ErrWAL.
// Close is idempotent and safe to call concurrently with queries.
func (s *ShardedIndex) Close() {
	s.pool.close()
	for _, sh := range s.shards {
		sh.eng.Close()
	}
}

var _ Engine = (*ShardedIndex)(nil)
