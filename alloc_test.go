package sdquery

// Steady-state allocation tests: the batched hot path promises that once
// the per-engine context pools are warm, a query performs zero heap
// allocations. These assertions are what keeps future changes honest — a
// regression here silently re-introduces per-query GC pressure long before
// it shows up in wall-clock benchmarks.

import (
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/query"
)

func allocRoles() []Role {
	return []Role{Repulsive, Attractive, Repulsive, Attractive}
}

func allocQuery() Query {
	return Query{
		Point:   []float64{0.3, 0.7, 0.1, 0.9},
		K:       10,
		Roles:   allocRoles(),
		Weights: []float64{0.8, 0.5, 0.3, 0.9},
	}
}

// measureAllocs warms f, forces a GC so pool clearing cannot land inside the
// measurement window, and returns the average allocations per run.
func measureAllocs(f func()) float64 {
	for i := 0; i < 20; i++ {
		f()
	}
	runtime.GC()
	return testing.AllocsPerRun(100, f)
}

func TestTopKAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise alloc-free paths")
	}
	data := dataset.Generate(dataset.Uniform, 10_000, 4, 1)
	idx, err := NewSDIndex(data, allocRoles())
	if err != nil {
		t.Fatal(err)
	}
	q := allocQuery()
	var buf []Result
	avg := measureAllocs(func() {
		var err error
		buf, err = idx.TopKAppend(buf[:0], q)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("SDIndex.TopKAppend allocates %.2f objects per query in steady state, want 0", avg)
	}
	if len(buf) != q.K {
		t.Fatalf("got %d results, want %d", len(buf), q.K)
	}
}

func TestShardQueryPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise alloc-free paths")
	}
	data := dataset.Generate(dataset.Uniform, 10_000, 4, 1)
	idx, err := NewShardedIndex(data, allocRoles(), WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	spec := query.Spec{
		Point:   []float64{0.3, 0.7, 0.1, 0.9},
		K:       10,
		Roles:   allocRoles(),
		Weights: []float64{0.8, 0.5, 0.3, 0.9},
	}
	// The per-shard query path — one lock-free shard-engine top-k into a
	// reused buffer, already in global-ID space — is the unit BatchTopK
	// schedules Q×P times; it must stay allocation-free for the batch
	// layer's pooling to matter.
	for si, sh := range idx.shards {
		var buf []query.Result
		avg := measureAllocs(func() {
			var err error
			buf, _, err = sh.eng.TopKAppend(buf[:0], spec)
			if err != nil {
				t.Fatal(err)
			}
		})
		if avg != 0 {
			t.Fatalf("shard %d query path allocates %.2f objects per query in steady state, want 0", si, avg)
		}
	}
}

// TestTopKAppendZeroAllocsParallel pins the intra-query fan-out: with
// WithWorkers and a segment cap forcing a multi-segment stack, a warm query
// still allocates nothing — the per-segment task contexts come from the
// engine's context pool, the dispatch state (claim counter, barrier, claim
// closure) is pooled inside the worker pool, and the parent's merge drains
// through pooled buffers.
func TestTopKAppendZeroAllocsParallel(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise alloc-free paths")
	}
	data := dataset.Generate(dataset.Uniform, 10_000, 4, 1)
	idx, err := NewSDIndex(data, allocRoles(), WithWorkers(2), WithMaxSegmentRows(2_500))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if segs, _ := idx.Segments(); segs != 4 {
		t.Fatalf("expected 4 sealed segments under the row cap, have %d", segs)
	}
	q := allocQuery()
	var buf []Result
	avg := measureAllocs(func() {
		var err error
		buf, err = idx.TopKAppend(buf[:0], q)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("parallel TopKAppend allocates %.2f objects per query in steady state, want 0", avg)
	}
	if len(buf) != q.K {
		t.Fatalf("got %d results, want %d", len(buf), q.K)
	}
}

// TestTopKAppendZeroAllocsAfterInsert pins the memtable query path: rows
// appended by Insert are covered by regrown pooled bitsets and scored by
// the exact memtable scan, neither of which may allocate in steady state.
// Compaction is disabled so the memtable is guaranteed to hold rows during
// the measurement (a background seal mid-window would be charged to the
// query by testing.AllocsPerRun's global counters).
func TestTopKAppendZeroAllocsAfterInsert(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise alloc-free paths")
	}
	data := dataset.Generate(dataset.Uniform, 2_000, 4, 1)
	idx, err := NewSDIndex(data, allocRoles(), WithCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	q := allocQuery()
	// Warm the context pool at the build-time dataset size, then grow the
	// dataset well past the original bitset coverage.
	var buf []Result
	for i := 0; i < 8; i++ {
		if buf, err = idx.TopKAppend(buf[:0], q); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1_000; i++ {
		if _, err := idx.Insert([]float64{0.5, 0.5, 0.5, 0.5}); err != nil {
			t.Fatal(err)
		}
	}
	if _, mem := idx.Segments(); mem != 1_000 {
		t.Fatalf("expected 1000 memtable rows, have %d", mem)
	}
	avg := measureAllocs(func() {
		var err error
		buf, err = idx.TopKAppend(buf[:0], q)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("post-Insert queries allocate %.2f objects per query (memtable scan or stale bitset regression), want 0", avg)
	}
}

// TestTopKAppendZeroAllocsCompacted pins the acceptance contract of the
// segment refactor: after update churn and an explicit Compact — one sealed
// segment, empty memtable — the hot path is exactly as allocation-free as a
// freshly built index, snapshot acquisition included (a single atomic
// load).
func TestTopKAppendZeroAllocsCompacted(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on otherwise alloc-free paths")
	}
	data := dataset.Generate(dataset.Uniform, 10_000, 4, 1)
	idx, err := NewSDIndex(data, allocRoles(), WithMemtableSize(256))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2_000; i++ {
		if _, err := idx.Insert([]float64{0.1, 0.9, 0.4, 0.6}); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			idx.Remove(i * 4 % 10_000)
		}
	}
	idx.Compact()
	if segs, mem := idx.Segments(); segs != 1 || mem != 0 {
		t.Fatalf("after Compact: %d segments, %d memtable rows, want 1, 0", segs, mem)
	}
	q := allocQuery()
	var buf []Result
	avg := measureAllocs(func() {
		var err error
		buf, err = idx.TopKAppend(buf[:0], q)
		if err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("compacted-index queries allocate %.2f objects per query in steady state, want 0", avg)
	}
	if len(buf) != q.K {
		t.Fatalf("got %d results, want %d", len(buf), q.K)
	}
}
