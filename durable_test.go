package sdquery

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/faultfs"
)

// durableRoles is the fixed 4-dim role set of the durability tests.
var durableRoles = []Role{Repulsive, Attractive, Repulsive, Attractive}

// durableMutate drives n random inserts/removes through idx and mirrors
// them onto the oracle dataset, returning the appended data and dead mask.
func durableMutate(t *testing.T, idx interface {
	Insert(p []float64) (int, error)
	Remove(id int) bool
}, data [][]float64, dead []bool, n int, seed int64) ([][]float64, []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if rng.Intn(4) == 0 && len(data) > 0 {
			victim := rng.Intn(len(data))
			got := idx.Remove(victim)
			if got == dead[victim] {
				t.Fatalf("remove %d: got %v with oracle dead=%v", victim, got, dead[victim])
			}
			dead[victim] = true
			continue
		}
		row := make([]float64, len(durableRoles))
		for d := range row {
			row[d] = float64(rng.Intn(5)) / 4
		}
		id, err := idx.Insert(row)
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		if id != len(data) {
			t.Fatalf("insert id %d, want %d", id, len(data))
		}
		data = append(data, row)
		dead = append(dead, false)
	}
	return data, dead
}

// durableCheck compares idx against the oracle dataset on a deterministic
// query battery.
func durableCheck(t *testing.T, label string, idx Engine, data [][]float64, dead []bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 12; i++ {
		q := randomQuery(rng, durableRoles, len(data))
		got, err := idx.TopK(q)
		if err != nil {
			t.Fatalf("%s: query %d: %v", label, i, err)
		}
		sameResults(t, label, got, oracleTopK(data, dead, q))
	}
}

func TestDurableSDIndexRoundTrip(t *testing.T) {
	fs := faultfs.NewMem()
	data := tieProneData(60, len(durableRoles), 1)
	idx, err := NewSDIndex(data, durableRoles,
		WithWAL("idx"), WithWALFS(fs), WithMemtableSize(16))
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, len(data))
	data, dead = durableMutate(t, idx, data, dead, 80, 2)
	idx.Close()

	re, err := OpenSDIndex("idx", WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	durableCheck(t, "reopened sdindex", re, data, dead)
	if st := re.WALStats(); !st.Enabled {
		t.Fatal("reopened index lost its WAL")
	}
	// The reopened index keeps logging: mutate more, reopen again.
	data, dead = durableMutate(t, re, data, dead, 20, 3)
	re.Close()
	re2, err := OpenSDIndex("idx", WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	durableCheck(t, "twice-reopened sdindex", re2, data, dead)
}

func TestDurableShardedIndexRoundTrip(t *testing.T) {
	fs := faultfs.NewMem()
	data := tieProneData(90, len(durableRoles), 4)
	idx, err := NewShardedIndex(data, durableRoles,
		WithWAL("idx"), WithWALFS(fs), WithShards(3), WithMemtableSize(16))
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, len(data))
	data, dead = durableMutate(t, idx, data, dead, 100, 5)
	idx.Close()

	re, err := OpenShardedIndex("idx", WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", re.Shards())
	}
	durableCheck(t, "reopened sharded", re, data, dead)
	data, dead = durableMutate(t, re, data, dead, 30, 6)
	durableCheck(t, "reopened sharded after writes", re, data, dead)
}

func TestDurableShardedHardDrop(t *testing.T) {
	// No Close, no Sync: the index is simply abandoned mid-flight, like a
	// killed process. SyncAlways acknowledged every mutation after its group
	// commit, so recovery owes all of them.
	fs := faultfs.NewMem()
	data := tieProneData(40, len(durableRoles), 7)
	idx, err := NewShardedIndex(data, durableRoles,
		WithWAL("idx"), WithWALFS(fs), WithShards(2), WithMemtableSize(8))
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, len(data))
	data, dead = durableMutate(t, idx, data, dead, 60, 8)

	re, err := OpenShardedIndex("idx", WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	durableCheck(t, "hard-drop sharded", re, data, dead)
}

func TestDurableOpenDispatchesOnKind(t *testing.T) {
	fs := faultfs.NewMem()
	data := tieProneData(20, len(durableRoles), 9)
	if _, err := NewSDIndex(data, durableRoles, WithWAL("one"), WithWALFS(fs)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewShardedIndex(data, durableRoles, WithWAL("many"), WithWALFS(fs), WithShards(2)); err != nil {
		t.Fatal(err)
	}
	e1, err := Open("one", WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e1.(*SDIndex); !ok {
		t.Fatalf("Open(one) = %T, want *SDIndex", e1)
	}
	e2, err := Open("many", WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(*ShardedIndex); !ok {
		t.Fatalf("Open(many) = %T, want *ShardedIndex", e2)
	}
	// Kind-specific opens refuse the other kind.
	if _, err := OpenSDIndex("many", WithWALFS(fs)); err == nil {
		t.Fatal("OpenSDIndex on a sharded dir must fail")
	}
	if _, err := OpenShardedIndex("one", WithWALFS(fs)); err == nil {
		t.Fatal("OpenShardedIndex on an sdindex dir must fail")
	}
}

func TestDurableCreateRefusesExistingDir(t *testing.T) {
	fs := faultfs.NewMem()
	data := tieProneData(10, len(durableRoles), 10)
	if _, err := NewSDIndex(data, durableRoles, WithWAL("idx"), WithWALFS(fs)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSDIndex(data, durableRoles, WithWAL("idx"), WithWALFS(fs)); err == nil {
		t.Fatal("re-creating over a durable dir must fail")
	}
	if _, err := NewShardedIndex(data, durableRoles, WithWAL("idx"), WithWALFS(fs)); err == nil {
		t.Fatal("re-creating over a durable dir must fail")
	}
}

func TestDurableRemovedReclaimedIDsRouteNowhere(t *testing.T) {
	// Remove rows, force compaction to physically reclaim them, checkpoint,
	// reopen: the reclaimed IDs are absent from every shard and must route
	// to "not live" without panicking.
	fs := faultfs.NewMem()
	data := tieProneData(30, len(durableRoles), 11)
	idx, err := NewShardedIndex(data, durableRoles,
		WithWAL("idx"), WithWALFS(fs), WithShards(2), WithMemtableSize(8))
	if err != nil {
		t.Fatal(err)
	}
	dead := make([]bool, len(data))
	for id := 0; id < 10; id++ {
		if !idx.Remove(id) {
			t.Fatalf("remove %d reported not live", id)
		}
		dead[id] = true
	}
	idx.Compact()
	if err := idx.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	idx.Close()

	re, err := OpenShardedIndex("idx", WithWALFS(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for id := 0; id < 10; id++ {
		if re.Remove(id) {
			t.Fatalf("reclaimed id %d reported live after reopen", id)
		}
	}
	durableCheck(t, "post-reclaim sharded", re, data, dead)
	// Fresh inserts keep extending the global ID space past the reclaimed
	// prefix.
	id, err := re.Insert(make([]float64, len(durableRoles)))
	if err != nil {
		t.Fatal(err)
	}
	if id != len(data) {
		t.Fatalf("post-reopen insert id %d, want %d", id, len(data))
	}
}

func TestDurableShardedSyncErrorDegradesToReadOnly(t *testing.T) {
	fs := faultfs.NewMem()
	data := tieProneData(20, len(durableRoles), 12)
	idx, err := NewShardedIndex(data, durableRoles,
		WithWAL("idx"), WithWALFS(fs), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	fs.SetSyncErr(errors.New("disk gone"))
	if _, err := idx.Insert(make([]float64, len(durableRoles))); !errors.Is(err, ErrWAL) {
		t.Fatalf("insert under fsync failure: %v, want ErrWAL", err)
	}
	if st := idx.WALStats(); st.Err == nil {
		t.Fatalf("index not degraded: %+v", st)
	}
	// Reads keep working.
	durableCheckReadsOnly(t, idx, data)
}

func durableCheckReadsOnly(t *testing.T, idx Engine, data [][]float64) {
	t.Helper()
	q := Query{Point: make([]float64, len(durableRoles)), K: 5,
		Roles: durableRoles, Weights: []float64{1, 1, 1, 1}}
	if _, err := idx.TopK(q); err != nil {
		t.Fatalf("read after degradation: %v", err)
	}
}
