package sdquery

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// workerPool is a reusable fixed set of goroutines executing submitted
// closures. It backs every parallel execution path in the package: a
// ShardedIndex keeps one for the lifetime of the index (per-query shard
// fan-out and batch pipelining), and SDIndex.TopKBatch spins up a transient
// one per batch. The pool bounds the helper goroutines only — every do
// caller works through its own task list too (see do), so one call runs on
// up to workers+1 goroutines and concurrent calls add their callers on top.
type workerPool struct {
	tasks      chan func()
	quit       chan struct{}
	workers    int
	once       sync.Once
	dispatches sync.Pool // *dispatch — per-do state, pooled so do allocates nothing
}

// dispatch is the pooled per-call state of do: the claim counter, the batch
// barrier, and a permanent claim-loop closure bound to this struct, so a
// steady-state do call allocates nothing (the closure, counter, and wait
// group it used to heap-allocate per call were a measurable share of the
// intra-query fan-out).
//
// Reuse is made safe by parking the counter: between calls it holds
// dispatchParked, so a worker goroutine still inside run from a previous
// call — it has incremented past the end but not yet returned — reads an
// index far above any real n and leaves without touching f or the wait
// group. do reopens the window with an atomic Store(0) only after f, n, and
// the wait-group add are in place; a claimer can only obtain i < n by
// incrementing the reopened counter, which orders those writes before its
// reads, so a late straggler that wanders into the next call behaves
// exactly like a freshly recruited worker. n is atomic because parked
// stragglers legitimately read it concurrently with the next call's store.
type dispatch struct {
	next atomic.Int64
	n    atomic.Int64
	f    func(i int)
	wg   sync.WaitGroup
	run  func()
}

// dispatchParked closes a dispatch's claim window between do calls: large
// enough that no real batch size reaches it, small enough that straggler
// increments cannot overflow int64.
const dispatchParked = int64(1) << 62

func newDispatch() *dispatch {
	d := &dispatch{}
	d.next.Store(dispatchParked)
	d.run = func() {
		for {
			i := d.next.Add(1) - 1
			if i >= d.n.Load() {
				return
			}
			d.f(int(i))
			d.wg.Done()
		}
	}
	return d
}

// defaultParallelism is the pool and shard-count default.
func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

// poolRunner adapts a workerPool to the engine's core.Runner interface, the
// hook intra-query segment parallelism fans out through. Each SDIndex built
// WithWorkers owns its pool outright, so the engine's per-segment tasks are
// the only do callers on it and the no-nested-do rule below holds by
// construction (a ShardedIndex's shard engines deliberately get no Runner —
// their queries already run inside the shard fan-out's do).
type poolRunner struct{ p *workerPool }

func (r poolRunner) Do(n int, f func(i int)) { r.p.do(n, f) }

func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = defaultParallelism()
	}
	p := &workerPool{
		tasks:   make(chan func()),
		quit:    make(chan struct{}),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go func() {
			for {
				select {
				case <-p.quit:
					return
				case f := <-p.tasks:
					f()
				}
			}
		}()
	}
	return p
}

// do runs f(0), …, f(n−1) on the pool and blocks until all have finished.
// Indices are claimed from a shared atomic counter by up to workers idle
// goroutines plus the caller itself, so a call costs one closure and one
// wait group however large n is — the per-task closure the previous
// implementation allocated was a measurable share of the batched query
// path. Tasks must not themselves call do on the same pool (the nested
// wait could starve). After close — or when every worker is busy — the
// claim loop runs entirely on the caller's goroutine, so the pool degrades
// to sequential execution rather than blocking.
func (p *workerPool) do(n int, f func(i int)) {
	if n == 0 {
		return
	}
	d, _ := p.dispatches.Get().(*dispatch)
	if d == nil {
		d = newDispatch()
	}
	d.f = f
	d.n.Store(int64(n))
	d.wg.Add(n)
	d.next.Store(0) // open the claim window; everything above is now visible
	// Recruitment: burst-dispatch the claim loop to every idle worker up
	// front (an idle pool reaches full parallelism immediately), then keep
	// retrying one non-blocking send per caller-claimed index (workers
	// freed mid-batch — say, by a concurrent call finishing — still join
	// instead of the rest of the batch running sequentially). A send only
	// succeeds when a worker is parked in receive, so a busy or closed
	// pool costs one failed non-blocking send per task and the caller,
	// which always participates, keeps the call live. At most n−1 recruits:
	// the last index might as well run here.
	recruited := 0
	limit := p.workers
	if limit > n-1 {
		limit = n - 1
	}
burst:
	for ; recruited < limit; recruited++ {
		select {
		case p.tasks <- d.run:
		default:
			break burst
		}
	}
	// Panic containment: if f panics on the caller's goroutine and some
	// upstream caller recovers, the unwind must not race recruited workers
	// still claiming indices — callers like TopKAppend return pooled
	// contexts in defers that would run while workers keep writing into
	// them. Poison the counter, settle the wait group's accounting (the
	// panicked index plus every never-claimed one), wait for in-flight
	// workers to drain, then re-panic; the dispatch is parked again but
	// not repooled. (A panic inside a pool worker is unrecovered and
	// crashes the process, as before.)
	defer func() {
		if r := recover(); r != nil {
			claimed := d.next.Swap(int64(n))
			if claimed > int64(n) {
				claimed = int64(n)
			}
			d.wg.Add(-(n - int(claimed))) // indices no one will ever claim
			d.wg.Done()                   // the index whose f panicked
			d.wg.Wait()
			d.next.Store(dispatchParked)
			panic(r)
		}
	}()
	for {
		i := int(d.next.Add(1)) - 1
		if i >= n {
			break
		}
		if recruited < limit {
			select {
			case p.tasks <- d.run:
				recruited++
			default:
			}
		}
		f(i)
		d.wg.Done()
	}
	d.wg.Wait()
	// All n indices are done and every straggler's next claim reads the
	// parked counter, so f can no longer be called; drop it so a pooled
	// dispatch never pins a finished batch's captures.
	d.next.Store(dispatchParked)
	d.f = nil
	p.dispatches.Put(d)
}

// close releases the worker goroutines. Idempotent.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.quit) })
}

// batchErr tracks the first error of a parallel batch deterministically: the
// error with the smallest task index wins regardless of goroutine timing.
// Once any error is recorded, tasks with larger indices than the recorded
// one skip their remaining work — tasks with smaller indices still run, so
// the smallest-index error is always the one that could still displace the
// record, keeping the reported failure schedule-independent.
type batchErr struct {
	mu     sync.Mutex
	index  int
	err    error
	failed atomic.Bool
}

func (b *batchErr) record(index int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil || index < b.index {
		b.index, b.err = index, err
	}
	b.failed.Store(true)
}

// shouldSkip reports whether the task at index may be abandoned: only when
// an error at a strictly smaller index is already recorded, which this task
// could not displace.
func (b *batchErr) shouldSkip(index int) bool {
	if !b.failed.Load() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err != nil && b.index < index
}

func (b *batchErr) first() error { return b.err }

// QueryStats reports the work one query performed — the quantities the
// paper's analysis reasons about when comparing subproblem granularities.
type QueryStats struct {
	// Subproblems consulted (2D pairs plus 1D leftovers; zero-weight ones
	// are skipped), summed across every sealed segment.
	Subproblems int
	// Segments counts the sealed segments the query planned across (on a
	// ShardedIndex, summed over shards). A freshly built or Compact-ed
	// engine reports 1 per engine; sustained insert traffic grows it until
	// the background compactor folds the stack back down.
	Segments int
	// Fetched counts sorted-access emissions across all subproblems.
	Fetched int
	// Scored counts distinct points scored by random access.
	Scored int
	// Rounds counts scheduler steps — one adaptive batch dispatched to one
	// subproblem — under either scheduling mode (WithScheduler).
	Rounds int
	// PlanCacheHits is 1 when the query's derived plan came from the
	// engine's plan cache and 0 when it was derived afresh; on a
	// ShardedIndex it is summed across shards (each shard keeps its own
	// cache), so full fan-out hits report the shard count.
	PlanCacheHits int
}

// TopKWithStats answers the query and reports its work counters. Useful for
// understanding convergence on a given dataset (see EXPERIMENTS.md for how
// fetch counts scale against dataset size and correlation).
func (s *SDIndex) TopKWithStats(q Query) ([]Result, QueryStats, error) {
	res, st, err := s.eng.TopKWithStats(q.spec())
	if err != nil {
		return nil, QueryStats{}, err
	}
	return convertResults(res), QueryStats(core.Stats(st)), nil
}

// TopKBatch answers many queries concurrently on the shared index using up
// to parallelism pool goroutines plus the calling goroutine, which always
// participates (≤ 0 selects GOMAXPROCS). Results are returned in query
// order; the first error (lowest query index) aborts the batch.
func (s *SDIndex) TopKBatch(queries []Query, parallelism int) ([][]Result, error) {
	out := make([][]Result, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	pool := newWorkerPool(parallelism)
	defer pool.close()
	var be batchErr
	pool.do(len(queries), func(i int) {
		if be.shouldSkip(i) {
			return
		}
		res, err := s.TopK(queries[i])
		if err != nil {
			be.record(i, fmt.Errorf("query %d: %w", i, err))
			return
		}
		out[i] = res
	})
	if err := be.first(); err != nil {
		return nil, err
	}
	return out, nil
}
