package sdquery

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// workerPool is a reusable fixed set of goroutines executing submitted
// closures. It backs every parallel execution path in the package: a
// ShardedIndex keeps one for the lifetime of the index (per-query shard
// fan-out and batch pipelining), and SDIndex.TopKBatch spins up a transient
// one per batch.
type workerPool struct {
	tasks   chan func()
	quit    chan struct{}
	workers int
	once    sync.Once
}

// defaultParallelism is the pool and shard-count default.
func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

func newWorkerPool(workers int) *workerPool {
	if workers <= 0 {
		workers = defaultParallelism()
	}
	p := &workerPool{
		tasks:   make(chan func()),
		quit:    make(chan struct{}),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go func() {
			for {
				select {
				case <-p.quit:
					return
				case f := <-p.tasks:
					f()
				}
			}
		}()
	}
	return p
}

// do runs f(0), …, f(n−1) on the pool and blocks until all have finished.
// Tasks must not themselves call do on the same pool (the nested wait could
// starve). After close, tasks degrade to running inline on the caller's
// goroutine, so a closed pool stays correct — just sequential.
func (p *workerPool) do(n int, f func(i int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		task := func() {
			defer wg.Done()
			f(i)
		}
		select {
		case p.tasks <- task:
		case <-p.quit:
			task()
		}
	}
	wg.Wait()
}

// close releases the worker goroutines. Idempotent.
func (p *workerPool) close() {
	p.once.Do(func() { close(p.quit) })
}

// batchErr tracks the first error of a parallel batch deterministically: the
// error with the smallest task index wins regardless of goroutine timing.
// Once any error is recorded, tasks with larger indices than the recorded
// one skip their remaining work — tasks with smaller indices still run, so
// the smallest-index error is always the one that could still displace the
// record, keeping the reported failure schedule-independent.
type batchErr struct {
	mu     sync.Mutex
	index  int
	err    error
	failed atomic.Bool
}

func (b *batchErr) record(index int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil || index < b.index {
		b.index, b.err = index, err
	}
	b.failed.Store(true)
}

// shouldSkip reports whether the task at index may be abandoned: only when
// an error at a strictly smaller index is already recorded, which this task
// could not displace.
func (b *batchErr) shouldSkip(index int) bool {
	if !b.failed.Load() {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err != nil && b.index < index
}

func (b *batchErr) first() error { return b.err }

// QueryStats reports the work one query performed — the quantities the
// paper's analysis reasons about when comparing subproblem granularities.
type QueryStats struct {
	// Subproblems consulted (2D pairs plus 1D leftovers; zero-weight ones
	// are skipped).
	Subproblems int
	// Fetched counts sorted-access emissions across all subproblems.
	Fetched int
	// Scored counts distinct points scored by random access.
	Scored int
}

// TopKWithStats answers the query and reports its work counters. Useful for
// understanding convergence on a given dataset (see EXPERIMENTS.md for how
// fetch counts scale against dataset size and correlation).
func (s *SDIndex) TopKWithStats(q Query) ([]Result, QueryStats, error) {
	res, st, err := s.eng.TopKWithStats(q.spec())
	if err != nil {
		return nil, QueryStats{}, err
	}
	return convertResults(res), QueryStats(core.Stats(st)), nil
}

// TopKBatch answers many queries concurrently on the shared index using up
// to parallelism goroutines (≤ 0 selects GOMAXPROCS). Results are returned
// in query order; the first error (lowest query index) aborts the batch.
func (s *SDIndex) TopKBatch(queries []Query, parallelism int) ([][]Result, error) {
	out := make([][]Result, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	pool := newWorkerPool(parallelism)
	defer pool.close()
	var be batchErr
	pool.do(len(queries), func(i int) {
		if be.shouldSkip(i) {
			return
		}
		res, err := s.TopK(queries[i])
		if err != nil {
			be.record(i, fmt.Errorf("query %d: %w", i, err))
			return
		}
		out[i] = res
	})
	if err := be.first(); err != nil {
		return nil, err
	}
	return out, nil
}
