package sdquery

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
)

// QueryStats reports the work one query performed — the quantities the
// paper's analysis reasons about when comparing subproblem granularities.
type QueryStats struct {
	// Subproblems consulted (2D pairs plus 1D leftovers; zero-weight ones
	// are skipped).
	Subproblems int
	// Fetched counts sorted-access emissions across all subproblems.
	Fetched int
	// Scored counts distinct points scored by random access.
	Scored int
}

// TopKWithStats answers the query and reports its work counters. Useful for
// understanding convergence on a given dataset (see EXPERIMENTS.md for how
// fetch counts scale against dataset size and correlation).
func (s *SDIndex) TopKWithStats(q Query) ([]Result, QueryStats, error) {
	res, st, err := s.eng.TopKWithStats(q.spec())
	if err != nil {
		return nil, QueryStats{}, err
	}
	return convertResults(res), QueryStats(core.Stats(st)), nil
}

// TopKBatch answers many queries concurrently on the shared index using up
// to parallelism goroutines (≤ 0 selects GOMAXPROCS). Results are returned
// in query order; the first error aborts the batch.
func (s *SDIndex) TopKBatch(queries []Query, parallelism int) ([][]Result, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}
	out := make([][]Result, len(queries))
	if len(queries) == 0 {
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	claim := func() int {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= len(queries) {
			return -1
		}
		i := next
		next++
		return i
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = fmt.Errorf("query %d: %w", i, err)
		}
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := claim()
				if i < 0 {
					return
				}
				res, err := s.TopK(queries[i])
				if err != nil {
					fail(i, err)
					return
				}
				out[i] = res
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
