package sdquery

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/top1"
)

// Top1Index is the paper's §3 structure: a two-dimensional SD-Query index
// for workloads where the answer size k and the weights are known before the
// index is built (for example, a screening pipeline that always asks for the
// single best candidate). Queries cost O(log n + k); the index stores only
// envelope-region leaders plus the point set needed for updates.
//
// The first data column is the attractive dimension, the second the
// repulsive one.
type Top1Index struct {
	idx *top1.Index
}

// Top1Config fixes the build-time parameters of a Top1Index.
type Top1Config struct {
	// AttractiveWeight is β, the weight of column 0 (closeness rewarded).
	AttractiveWeight float64
	// RepulsiveWeight is α, the weight of column 1 (distance rewarded).
	RepulsiveWeight float64
	// K is the fixed answer size (≥ 1).
	K int
}

// NewTop1Index builds the index over two-column data: column 0 attractive,
// column 1 repulsive.
func NewTop1Index(data [][]float64, cfg Top1Config) (*Top1Index, error) {
	pts := make([]geom.Point, len(data))
	for i, p := range data {
		if len(p) != 2 {
			return nil, fmt.Errorf("sdquery: Top1Index requires 2 columns, row %d has %d", i, len(p))
		}
		pts[i] = geom.Point{ID: i, X: p[0], Y: p[1]}
	}
	idx, err := top1.Build(pts, top1.Config{
		Alpha: cfg.RepulsiveWeight,
		Beta:  cfg.AttractiveWeight,
		K:     cfg.K,
	})
	if err != nil {
		return nil, err
	}
	return &Top1Index{idx: idx}, nil
}

// TopK returns the fixed-k answer set for a 2-coordinate query point
// (column order as in the data: attractive, repulsive), best first.
func (t *Top1Index) TopK(point []float64) ([]Result, error) {
	if len(point) != 2 {
		return nil, fmt.Errorf("sdquery: Top1Index query needs 2 coordinates, got %d", len(point))
	}
	res := t.idx.Query(geom.Point{X: point[0], Y: point[1]})
	out := make([]Result, len(res))
	for i, r := range res {
		out[i] = Result{ID: r.Point.ID, Score: r.Score}
	}
	return out, nil
}

// Len reports the number of indexed points.
func (t *Top1Index) Len() int { return t.idx.Len() }

// K returns the fixed answer size.
func (t *Top1Index) K() int { return t.idx.K() }

// Insert adds a point (2 columns, attractive then repulsive) with the given
// ID. IDs are caller-managed; reusing a live ID leads to ambiguous deletes.
func (t *Top1Index) Insert(id int, point []float64) error {
	if len(point) != 2 {
		return fmt.Errorf("sdquery: Top1Index insert needs 2 coordinates, got %d", len(point))
	}
	return t.idx.Insert(geom.Point{ID: id, X: point[0], Y: point[1]})
}

// Delete removes the point with the given ID at the given coordinates,
// reporting whether it was found.
func (t *Top1Index) Delete(id int, point []float64) bool {
	if len(point) != 2 {
		return false
	}
	return t.idx.Delete(geom.Point{ID: id, X: point[0], Y: point[1]})
}

// Bytes estimates the size of the query-time region index (the quantity the
// paper's storage analysis bounds by O(kn)).
func (t *Top1Index) Bytes() int { return t.idx.RegionBytes() }
