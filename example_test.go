package sdquery_test

import (
	"fmt"

	sdquery "repro"
)

// The species table from the paper's introduction: phylogeny is attractive
// (similar lineage wanted), habitat is repulsive (different region wanted).
func ExampleSDIndex() {
	data := [][]float64{
		{1, 4},   // p1: same lineage as the query, far habitat
		{2.5, 5}, // p2
		{5, 3},   // p3
		{2, 2},   // p4
		{4, 1},   // p5
	}
	roles := []sdquery.Role{sdquery.Attractive, sdquery.Repulsive}
	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		panic(err)
	}
	res, err := idx.TopK(sdquery.Query{
		Point:   []float64{1, 1}, // query species q1
		K:       1,
		Roles:   roles,
		Weights: []float64{1, 1},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("best match: row %d with SD-score %.0f\n", res[0].ID, res[0].Score)
	// Output: best match: row 0 with SD-score 3
}

// A fixed-parameter workload: k = 1 and unit weights known at build time,
// answered by the §3 envelope-region index in O(log n).
func ExampleTop1Index() {
	data := [][]float64{
		{0.1, 0.9}, {0.5, 0.5}, {0.52, 0.1}, {0.9, 0.4},
	}
	idx, err := sdquery.NewTop1Index(data, sdquery.Top1Config{
		AttractiveWeight: 1,
		RepulsiveWeight:  1,
		K:                1,
	})
	if err != nil {
		panic(err)
	}
	res, err := idx.TopK([]float64{0.5, 0.95})
	if err != nil {
		panic(err)
	}
	fmt.Printf("top-1: row %d\n", res[0].ID)
	// Output: top-1: row 2
}

// Every engine shares the Query/Result API, so baselines are drop-in.
func ExampleNewScan() {
	data := [][]float64{{0, 0}, {1, 1}, {2, 0.5}}
	eng, err := sdquery.NewScan(data)
	if err != nil {
		panic(err)
	}
	res, err := eng.TopK(sdquery.Query{
		Point:   []float64{0, 0},
		K:       2,
		Roles:   []sdquery.Role{sdquery.Repulsive, sdquery.Attractive},
		Weights: []float64{1, 1},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range res {
		fmt.Printf("row %d score %.1f\n", r.ID, r.Score)
	}
	// Output:
	// row 2 score 1.5
	// row 0 score 0.0
}
