package sdquery

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
)

// Replication surface: what a leader exports so a follower can mirror it,
// and what a follower (or any caller assembling an index from replicated
// state) needs to apply the stream. The unit of replication is the shard
// engine — each shard ships an independent snapshot + WAL-tail pair, and
// freshness is a per-shard LSN vector (shards log independently, so no
// scalar position describes the whole index; comparing vectors
// componentwise is what makes "replica is at least as fresh as X" sound).
//
// See internal/core/repl.go for the stream formats and the gap contract;
// package serve wires these methods to the /v1/repl/{manifest,segment,wal}
// endpoints and runs the follower's pull loop.

// ErrReplGap reports a non-contiguous WAL tail: the range a follower needs
// was retired by a checkpoint, or the stream itself was damaged. The only
// safe continuation is a full re-bootstrap from a fresh snapshot.
var ErrReplGap = core.ErrReplGap

// ErrIDExists reports an InsertWithID whose ID is not above the index's ID
// space: the slot was already assigned (by this writer or an earlier
// incarnation of it). Callers implementing idempotent retries compare the
// occupying row with PointByID to distinguish their own duplicate from a
// genuine collision.
var ErrIDExists = fmt.Errorf("sdquery: ID already within the indexed ID space")

// ReplTail describes one shard's WAL-tail export; see core.WALTailInfo.
type ReplTail struct {
	From, Last uint64
	LeaderLSN  uint64
	Records    int
	Gap        bool
	Capped     bool
}

// ReplShards reports how many independently-replicated shard streams the
// index exports.
func (s *ShardedIndex) ReplShards() int { return len(s.shards) }

// ShardLSNs returns the per-shard last-applied LSN vector — the index's
// replication position. Componentwise comparison of two vectors orders two
// replicas' states; a sum does not (two shards can trade equal record
// counts while holding different histories).
func (s *ShardedIndex) ShardLSNs() []uint64 {
	out := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.eng.LastLSN()
	}
	return out
}

// ReplSnapshot streams shard si's current snapshot in the checkpoint format
// and returns the WAL LSN the stream covers.
func (s *ShardedIndex) ReplSnapshot(si int, w io.Writer) (uint64, error) {
	if si < 0 || si >= len(s.shards) {
		return 0, fmt.Errorf("sdquery: shard %d of %d", si, len(s.shards))
	}
	return s.shards[si].eng.SaveWithLSN(w)
}

// ReplWALTail streams shard si's WAL records after LSN from, writing at
// most maxBytes of records per call (0 = unbounded; a capped export sets
// Capped and the caller resumes from Last); see core.Engine.WALTail for the
// gap contract.
func (s *ShardedIndex) ReplWALTail(si int, from uint64, w io.Writer, maxBytes int) (ReplTail, error) {
	if si < 0 || si >= len(s.shards) {
		return ReplTail{}, fmt.Errorf("sdquery: shard %d of %d", si, len(s.shards))
	}
	info, err := s.shards[si].eng.WALTail(w, from, maxBytes)
	return ReplTail(info), err
}

// ApplyReplWAL applies a ReplWALTail stream to shard si, idempotently by
// LSN, and reports how many records actually applied. The index must have
// been built from the same leader's snapshots (NewFollowerIndex); applying
// an unrelated stream fails with ErrReplGap. The applied mutations bypass
// the routing table — a follower index is read-only by contract, queried
// but never written directly.
func (s *ShardedIndex) ApplyReplWAL(si int, r io.Reader) (int, error) {
	if si < 0 || si >= len(s.shards) {
		return 0, fmt.Errorf("sdquery: shard %d of %d", si, len(s.shards))
	}
	_, n, err := s.shards[si].eng.ApplyWALStream(r)
	return n, err
}

// AttachWAL makes a follower index durable in place — the promotion path:
// an index assembled from a leader's snapshot streams (NewFollowerIndex)
// owns no log, and a replica elected leader must become durable before it
// accepts writes. AttachWAL writes a fresh MANIFEST under dir and attaches
// one WAL per shard, each seeded with a checkpoint of the shard's current
// state; mutations from here on log at the LSNs the replicated history left
// off at, so the index's own followers see one contiguous stream. dir must
// not already hold a durable index. The option list supplies the WAL knobs
// to run with (WithSyncPolicy, WithSyncInterval, WithWALFS); the caller
// must guarantee no mutations are in flight during the attach.
func (s *ShardedIndex) AttachWAL(dir string, opts ...SDOption) error {
	var cfg sdConfig
	for _, o := range opts {
		o(&cfg)
	}
	cfg.walDir = dir
	if err := writeManifest(&cfg, manifestKindSharded, len(s.shards)); err != nil {
		return err
	}
	for si, sh := range s.shards {
		if err := sh.eng.AttachWAL(*cfg.walConfig(shardWALDir(dir, si))); err != nil {
			return fmt.Errorf("sdquery: attach wal: shard %d: %w", si, err)
		}
	}
	return nil
}

// Total reports the size of the index's global ID space: every indexed ID
// is below it, and the next caller-assigned ID must not be. (Len counts
// live rows; Total counts the space, removals included.)
func (s *ShardedIndex) Total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byGlobal)
}

// Dims reports the index's dimensionality.
func (s *ShardedIndex) Dims() int { return len(s.roles) }

// InsertWithID inserts p under a caller-assigned global ID, which must be
// above every ID the index has seen (IDs are append-only and ascending, the
// same contract the core engines enforce); an ID already inside the space
// fails with ErrIDExists. A distributed writer (cmd/sdrouter) assigns
// cluster-unique ascending IDs and retries ambiguous failures under the
// same ID — the ErrIDExists + PointByID pair is what makes that retry
// provably idempotent. Durability matches Insert.
func (s *ShardedIndex) InsertWithID(id int, p []float64) error {
	s.mu.Lock()
	if id < len(s.byGlobal) {
		s.mu.Unlock()
		return ErrIDExists
	}
	si := id % len(s.shards)
	wait, err := s.shards[si].eng.InsertWithIDAsync(id, p)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	for len(s.byGlobal) < id {
		s.byGlobal = append(s.byGlobal, -1)
	}
	s.byGlobal = append(s.byGlobal, int32(si))
	s.mu.Unlock()
	if wait != nil {
		return wait()
	}
	return nil
}

// PointByID returns a copy of the coordinates indexed under a global ID —
// live or tombstoned — with ok=false when the ID locates nowhere (never
// inserted, or reclaimed by compaction after removal).
func (s *ShardedIndex) PointByID(id int) ([]float64, bool) {
	s.mu.Lock()
	if id < 0 || id >= len(s.byGlobal) || s.byGlobal[id] < 0 {
		s.mu.Unlock()
		return nil, false
	}
	eng := s.shards[s.byGlobal[id]].eng
	s.mu.Unlock()
	return eng.Row(id)
}

// NewShardedIndexWithIDs is NewShardedIndex for a dataset that carries its
// own global IDs — the constructor a cluster partition uses, so a node
// holding rows {3, 17, 40, …} of the logical dataset answers queries with
// those original IDs and the scatter-gather merge over partitions is
// byte-identical to one index over the whole dataset. ids must be strictly
// ascending, one per row.
func NewShardedIndexWithIDs(data [][]float64, ids []int, roles []Role, opts ...SDOption) (*ShardedIndex, error) {
	if len(data) != len(ids) {
		return nil, fmt.Errorf("sdquery: %d rows but %d ids", len(data), len(ids))
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("sdquery: empty dataset")
	}
	if ids[0] < 0 || !sort.IntsAreSorted(ids) {
		return nil, fmt.Errorf("sdquery: ids must be non-negative and strictly ascending")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] == ids[i-1] {
			return nil, fmt.Errorf("sdquery: duplicate id %d", ids[i])
		}
	}
	var cfg sdConfig
	for _, o := range opts {
		o(&cfg)
	}
	p := cfg.shards
	if p <= 0 {
		p = defaultParallelism()
	}
	if p > len(data) {
		p = len(data)
	}
	if p < 1 {
		p = 1
	}
	coreCfg, err := cfg.coreConfig(roles)
	if err != nil {
		return nil, err
	}
	if cfg.walDir != "" {
		if err := writeManifest(&cfg, manifestKindSharded, p); err != nil {
			return nil, err
		}
	}
	s := &ShardedIndex{
		roles:    append([]Role(nil), roles...),
		byGlobal: make([]int32, ids[len(ids)-1]+1),
		shards:   make([]*shard, p),
	}
	for i := range s.byGlobal {
		s.byGlobal[i] = -1
	}
	parts := make([][][]float64, p)
	partIDs := make([][]int32, p)
	// Dealing ascending rows round-robin keeps every shard's ID sequence
	// ascending, which the core engines require.
	for i, row := range data {
		si := i % p
		parts[si] = append(parts[si], row)
		partIDs[si] = append(partIDs[si], int32(ids[i]))
		s.byGlobal[ids[i]] = int32(si)
	}
	errs := make([]error, p)
	var wg sync.WaitGroup
	for si := 0; si < p; si++ {
		s.shards[si] = &shard{}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			cc := coreCfg
			if cfg.walDir != "" {
				cc.WAL = cfg.walConfig(shardWALDir(cfg.walDir, si))
			}
			eng, err := core.NewWithIDs(parts[si], partIDs[si], cc)
			if err != nil {
				errs[si] = fmt.Errorf("shard %d: %w", si, err)
				return
			}
			s.shards[si].eng = eng
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	s.next = len(ids) % p
	s.pool = newWorkerPool(cfg.workers)
	return s, nil
}

// NewFollowerIndex assembles a ShardedIndex from per-shard snapshot streams
// (a leader's ReplSnapshot output, one reader per shard, in shard order).
// The result serves reads exactly like the leader's index did at those
// snapshots; advance it with ApplyReplWAL as the leader's logs grow. The
// option list supplies runtime knobs only (workers, scheduler, memtable);
// structure comes from the streams.
func NewFollowerIndex(snaps []io.Reader, opts ...SDOption) (*ShardedIndex, error) {
	if len(snaps) == 0 {
		return nil, fmt.Errorf("sdquery: no snapshot streams")
	}
	opt, cfg := runtimeOptions(opts)
	engines := make([]*core.Engine, len(snaps))
	for si, r := range snaps {
		eng, err := core.Load(r, opt)
		if err != nil {
			return nil, fmt.Errorf("sdquery: follower shard %d: %w", si, err)
		}
		engines[si] = eng
	}
	return assembleSharded(engines, cfg.workers), nil
}

// assembleSharded builds the ShardedIndex wrapper around recovered or
// replicated shard engines, rebuilding the global-ID routing table from
// their contents so no separate routing state can disagree with the data.
func assembleSharded(engines []*core.Engine, workers int) *ShardedIndex {
	s := &ShardedIndex{shards: make([]*shard, len(engines))}
	total := 0
	for si, eng := range engines {
		s.shards[si] = &shard{eng: eng}
		if t := eng.Total(); t > total {
			total = t
		}
	}
	s.byGlobal = make([]int32, total)
	for i := range s.byGlobal {
		s.byGlobal[i] = -1
	}
	for si, sh := range s.shards {
		sh.eng.RangeIDs(func(id int32) { s.byGlobal[id] = int32(si) })
	}
	s.next = total % len(s.shards)
	s.roles = s.shards[0].eng.Roles()
	s.pool = newWorkerPool(workers)
	return s
}

// Single-engine (SDIndex) replication surface: one shard stream.

// ReplShards reports 1 — an SDIndex replicates as a single shard stream.
func (s *SDIndex) ReplShards() int { return 1 }

// ShardLSNs returns the one-element LSN vector. See ShardedIndex.ShardLSNs.
func (s *SDIndex) ShardLSNs() []uint64 { return []uint64{s.eng.LastLSN()} }

// ReplSnapshot streams the index snapshot (shard must be 0).
func (s *SDIndex) ReplSnapshot(si int, w io.Writer) (uint64, error) {
	if si != 0 {
		return 0, fmt.Errorf("sdquery: shard %d of 1", si)
	}
	return s.eng.SaveWithLSN(w)
}

// ReplWALTail streams WAL records after LSN from (shard must be 0), writing
// at most maxBytes of records per call (0 = unbounded).
func (s *SDIndex) ReplWALTail(si int, from uint64, w io.Writer, maxBytes int) (ReplTail, error) {
	if si != 0 {
		return ReplTail{}, fmt.Errorf("sdquery: shard %d of 1", si)
	}
	info, err := s.eng.WALTail(w, from, maxBytes)
	return ReplTail(info), err
}

// ApplyReplWAL applies a WAL-tail stream (shard must be 0).
func (s *SDIndex) ApplyReplWAL(si int, r io.Reader) (int, error) {
	if si != 0 {
		return 0, fmt.Errorf("sdquery: shard %d of 1", si)
	}
	_, n, err := s.eng.ApplyWALStream(r)
	return n, err
}

// Total reports the global-ID-space size. See ShardedIndex.Total.
func (s *SDIndex) Total() int { return s.eng.Total() }

// Dims reports the index's dimensionality.
func (s *SDIndex) Dims() int { return len(s.roles) }

// InsertWithID inserts p under a caller-assigned ascending global ID. See
// ShardedIndex.InsertWithID.
func (s *SDIndex) InsertWithID(id int, p []float64) error {
	if id < s.eng.Total() {
		return ErrIDExists
	}
	return s.eng.InsertWithID(id, p)
}

// PointByID returns the coordinates indexed under a global ID. See
// ShardedIndex.PointByID.
func (s *SDIndex) PointByID(id int) ([]float64, bool) { return s.eng.Row(id) }
