// Native Go fuzzing over the SD-Index query surface: random datasets, query
// weights, k, and role demotions, differentially checked against the
// sequential scan — the same oracle the enginetest harness uses, here driven
// by coverage-guided input generation instead of a fixed workload table.
// The seed corpus lives under testdata/fuzz/FuzzTopK.
package sdquery_test

import (
	"math/rand"
	"sort"
	"testing"

	sdquery "repro"
)

// fuzzDataset derives a small deterministic dataset and role set. Half the
// coordinates snap to a 4-step grid so exact score ties are common.
func fuzzDataset(seed int64, n, dims int) ([][]float64, []sdquery.Role) {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dims)
		for d := range row {
			if rng.Intn(2) == 0 {
				row[d] = float64(rng.Intn(4)) / 4
			} else {
				row[d] = rng.Float64()
			}
		}
		data[i] = row
	}
	roles := make([]sdquery.Role, dims)
	for d := range roles {
		roles[d] = []sdquery.Role{sdquery.Attractive, sdquery.Repulsive, sdquery.Ignored}[rng.Intn(3)]
	}
	roles[rng.Intn(dims)] = sdquery.Repulsive // at least one active dimension
	return data, roles
}

// FuzzTopKChurn drives the storage layer: a tiny memtable (so coverage-
// guided inputs force seals, folds, and tombstone masking through the
// background compactor) under an interleaved insert/remove/query stream,
// with a snapshot pinned mid-churn. Every live answer must match the oracle
// over the current row set; the pinned snapshot must keep matching the
// oracle frozen at its acquisition.
func FuzzTopKChurn(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(3), uint8(5), int64(2), uint8(30))
	f.Add(int64(9), uint8(60), uint8(5), uint8(2), int64(3), uint8(80))
	f.Add(int64(4), uint8(10), uint8(2), uint8(9), int64(7), uint8(255))
	f.Fuzz(func(t *testing.T, dataSeed int64, nRaw, dimsRaw, kRaw uint8, opSeed int64, opsRaw uint8) {
		n := 1 + int(nRaw)%64
		dims := 1 + int(dimsRaw)%5
		data, roles := fuzzDataset(dataSeed, n, dims)

		idx, err := sdquery.NewSDIndex(data, roles, sdquery.WithMemtableSize(4))
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		// A float32-column twin churns through the same seals and folds: its
		// narrow sealed segments must answer identically throughout.
		idx32, err := sdquery.NewSDIndex(data, roles,
			sdquery.WithMemtableSize(4), sdquery.WithColumnWidth(32))
		if err != nil {
			t.Fatalf("build float32: %v", err)
		}
		mirror := append([][]float64(nil), data...)
		dead := make([]bool, len(mirror))

		oracleTopK := func(mir [][]float64, dd []bool, q sdquery.Query) []sdquery.Result {
			var all []sdquery.Result
			for id, p := range mir {
				if dd[id] {
					continue
				}
				all = append(all, sdquery.Result{ID: id, Score: q.Score(p)})
			}
			sort.Slice(all, func(i, j int) bool {
				if all[i].Score != all[j].Score {
					return all[i].Score > all[j].Score
				}
				return all[i].ID < all[j].ID
			})
			if len(all) > q.K {
				all = all[:q.K]
			}
			return all
		}
		rng := rand.New(rand.NewSource(opSeed))
		newQuery := func() sdquery.Query {
			q := sdquery.Query{
				Point:   make([]float64, dims),
				K:       1 + int(kRaw)%(len(mirror)+2),
				Roles:   append([]sdquery.Role(nil), roles...),
				Weights: make([]float64, dims),
			}
			for d := 0; d < dims; d++ {
				q.Point[d] = float64(rng.Intn(9)) / 8
				if rng.Intn(3) == 0 {
					q.Weights[d] = 1
				} else {
					q.Weights[d] = rng.Float64()
				}
			}
			return q
		}
		checkOne := func(label string, got, want []sdquery.Result) {
			if len(got) != len(want) {
				t.Fatalf("%s: %d results, oracle has %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: rank %d differs\ngot  %v\nwant %v", label, i, got, want)
				}
			}
		}

		snap := idx.Snapshot()
		snapMirror := append([][]float64(nil), mirror...)
		snapDead := append([]bool(nil), dead...)

		ops := 1 + int(opsRaw)%96
		for op := 0; op < ops; op++ {
			switch rng.Intn(4) {
			case 0:
				p := make([]float64, dims)
				for d := range p {
					p[d] = float64(rng.Intn(4)) / 4
				}
				id, err := idx.Insert(p)
				if err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				if id != len(mirror) {
					t.Fatalf("op %d: insert returned %d, want %d", op, id, len(mirror))
				}
				if id32, err := idx32.Insert(p); err != nil || id32 != id {
					t.Fatalf("op %d: float32 insert returned %d, %v; want %d", op, id32, err, id)
				}
				mirror = append(mirror, p)
				dead = append(dead, false)
			case 1:
				id := rng.Intn(len(mirror))
				if idx.Remove(id) != !dead[id] {
					t.Fatalf("op %d: Remove(%d) disagrees with mirror", op, id)
				}
				if idx32.Remove(id) != !dead[id] {
					t.Fatalf("op %d: float32 Remove(%d) disagrees with mirror", op, id)
				}
				dead[id] = true
			case 2:
				q := newQuery()
				got, err := idx.TopK(q)
				if err != nil {
					t.Fatalf("op %d: query: %v", op, err)
				}
				want := oracleTopK(mirror, dead, q)
				checkOne("live", got, want)
				got32, err := idx32.TopK(q)
				if err != nil {
					t.Fatalf("op %d: float32 query: %v", op, err)
				}
				checkOne("live-float32", got32, want)
			default:
				q := newQuery()
				got, err := snap.TopK(q)
				if err != nil {
					t.Fatalf("op %d: snapshot query: %v", op, err)
				}
				checkOne("snapshot", got, oracleTopK(snapMirror, snapDead, q))
			}
		}
	})
}

func FuzzTopK(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(3), uint8(5), uint16(0), int64(2))
	f.Add(int64(7), uint8(64), uint8(6), uint8(64), uint16(0b10), int64(9))
	f.Add(int64(3), uint8(1), uint8(1), uint8(1), uint16(0xffff), int64(4))
	f.Add(int64(11), uint8(30), uint8(4), uint8(33), uint16(0b101), int64(5))
	f.Fuzz(func(t *testing.T, dataSeed int64, nRaw, dimsRaw, kRaw uint8, demote uint16, qSeed int64) {
		n := 1 + int(nRaw)%64
		dims := 1 + int(dimsRaw)%6
		data, roles := fuzzDataset(dataSeed, n, dims)

		idx, err := sdquery.NewSDIndex(data, roles)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		// Same dataset through the narrow float32 scoring columns: the
		// approximate sweep plus exact rescore must match the oracle too.
		idx32, err := sdquery.NewSDIndex(data, roles, sdquery.WithColumnWidth(32))
		if err != nil {
			t.Fatalf("build float32: %v", err)
		}
		oracle, err := sdquery.NewScan(data)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}

		rng := rand.New(rand.NewSource(qSeed))
		q := sdquery.Query{
			Point:   make([]float64, dims),
			K:       1 + int(kRaw)%(n+2),
			Roles:   append([]sdquery.Role(nil), roles...),
			Weights: make([]float64, dims),
		}
		for d := 0; d < dims; d++ {
			q.Point[d] = float64(rng.Intn(9)) / 8
			switch rng.Intn(3) {
			case 0:
				q.Weights[d] = 0
			case 1:
				q.Weights[d] = 1
			default:
				q.Weights[d] = rng.Float64()
			}
		}
		// Demote active dimensions by bitmask, keeping at least one active.
		active := 0
		for _, r := range q.Roles {
			if r != sdquery.Ignored {
				active++
			}
		}
		for d := 0; d < dims && active > 1; d++ {
			if q.Roles[d] != sdquery.Ignored && demote&(1<<uint(d)) != 0 {
				q.Roles[d] = sdquery.Ignored
				active--
			}
		}

		want, err := oracle.TopK(q)
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		for _, eng := range []struct {
			name string
			idx  *sdquery.SDIndex
		}{{"sdindex", idx}, {"sdindex-float32", idx32}} {
			got, err := eng.idx.TopK(q)
			if err != nil {
				t.Fatalf("%s: %v", eng.name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s returned %d results, scan %d\nq=%+v\ngot  %v\nwant %v",
					eng.name, len(got), len(want), q, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: rank %d differs\nq=%+v\ngot  %v\nwant %v", eng.name, i, q, got, want)
				}
			}
		}
	})
}
