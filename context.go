package sdquery

import (
	"context"
	"errors"

	"repro/internal/core"
)

// Context-aware query paths. The serving layer (package serve) enforces
// per-request deadlines through these: the engine's aggregation loop polls
// the context's Done channel once per scheduling step, so a cancelled or
// timed-out query stops within one adaptive batch (≤ 64 sorted accesses per
// subproblem) instead of running to termination. Cancellation releases every
// pooled resource — stream heaps, bitsets, result buffers — exactly like a
// completed query, so a storm of cancelled requests leaves the
// zero-allocation steady state intact (TestTopKContext pins this).
//
// The non-context paths (TopK, TopKAppend) are unchanged and pay nothing:
// the cancellation poll is nil-guarded.

// ctxErr translates the engine's internal cancellation sentinel into the
// context's own error (context.Canceled or context.DeadlineExceeded), which
// is what callers select on.
func ctxErr(ctx context.Context, err error) error {
	if errors.Is(err, core.ErrCanceled) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}

// TopKContext answers the query, stopping early with ctx.Err() if the
// context is cancelled or its deadline passes mid-aggregation. See Engine.
func (s *SDIndex) TopKContext(ctx context.Context, q Query) ([]Result, error) {
	return s.TopKAppendContext(ctx, nil, q)
}

// TopKAppendContext is TopKAppend honoring the context's cancellation and
// deadline. On cancellation it returns dst unextended and ctx.Err(); pooled
// per-query state is released either way.
func (s *SDIndex) TopKAppendContext(ctx context.Context, dst []Result, q Query) ([]Result, error) {
	res, err := s.appendVia(s.eng.View(), dst, q, ctx.Done())
	return res, ctxErr(ctx, err)
}

// TopKContext answers the query across every shard, stopping early with
// ctx.Err() if the context is cancelled or its deadline passes: each
// shard's aggregation polls the same Done channel, so the whole fan-out
// unwinds within one scheduling step per shard.
func (s *ShardedIndex) TopKContext(ctx context.Context, q Query) ([]Result, error) {
	return s.TopKAppendContext(ctx, nil, q)
}

// TopKAppendContext is TopKAppend honoring the context's cancellation and
// deadline across the shard fan-out. TopKAppend delegates here with
// context.Background (whose nil Done channel keeps the poll free), so this
// is the one sharded single-query fan-out body.
func (s *ShardedIndex) TopKAppendContext(ctx context.Context, dst []Result, q Query) ([]Result, error) {
	spec := q.spec()
	p := len(s.shards)
	c := s.getCtx(p)
	defer s.putCtx(c)
	if err := s.fanOutQuery(spec, c, nil, nil, ctx.Done()); err != nil {
		return dst, ctxErr(ctx, err)
	}
	return mergeShards(dst, c.bufs[:p], c.pos, q.K), nil
}

// BatchTopKContext is BatchTopK honoring the context's cancellation and
// deadline: every in-flight (query × shard) task polls the same Done
// channel, so a cancelled batch unwinds within one scheduling step per
// task. The serving layer's coalescer runs its batches through this, so a
// batch whose every waiter has timed out stops consuming the engine.
func (s *ShardedIndex) BatchTopKContext(ctx context.Context, queries []Query) ([][]Result, error) {
	out, err := s.batchTopK(queries, ctx.Done())
	if err != nil {
		return nil, ctxErr(ctx, err)
	}
	return out, nil
}

// Compactions reports how many compaction steps (memtable seals, stack
// folds, dead-row reclaims — background or explicit) the engine has
// completed since construction. Monotonic; the serving layer exports it on
// /metrics.
func (s *SDIndex) Compactions() uint64 { return s.eng.Compactions() }

// Segments reports the sealed-segment count and memtable rows summed over
// every shard's current snapshot — the observable shape of the storage
// stack that background compaction continuously reorganizes (one atomic
// snapshot load per shard; no locks).
func (s *ShardedIndex) Segments() (segments, memRows int) {
	for _, sh := range s.shards {
		segs, mem := sh.eng.Segments()
		segments += segs
		memRows += mem
	}
	return segments, memRows
}

// Compactions reports completed compaction steps summed over every shard.
func (s *ShardedIndex) Compactions() uint64 {
	var total uint64
	for _, sh := range s.shards {
		total += sh.eng.Compactions()
	}
	return total
}
