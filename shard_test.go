package sdquery

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// oracleTopK is the exhaustive reference answer over a mutable dataset:
// score every live row, order by score descending then ID ascending, keep k.
func oracleTopK(data [][]float64, dead []bool, q Query) []Result {
	var all []Result
	for id, p := range data {
		if dead != nil && dead[id] {
			continue
		}
		all = append(all, Result{ID: id, Score: q.Score(p)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > q.K {
		all = all[:q.K]
	}
	return all
}

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\ngot  %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d: got %+v, want %+v\ngot  %v\nwant %v",
				label, i, got[i], want[i], got, want)
		}
	}
}

// tieProneData quantizes coordinates onto a small grid so duplicate
// SD-scores are common — the regime where tie-breaking determinism matters.
func tieProneData(n, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		row := make([]float64, dims)
		for d := range row {
			row[d] = float64(rng.Intn(4)) / 4
		}
		data[i] = row
	}
	return data
}

func randomQuery(rng *rand.Rand, roles []Role, n int) Query {
	d := len(roles)
	q := Query{
		Point:   make([]float64, d),
		K:       1 + rng.Intn(n+3), // sometimes k > n
		Roles:   append([]Role(nil), roles...),
		Weights: make([]float64, d),
	}
	for i := 0; i < d; i++ {
		q.Point[i] = float64(rng.Intn(5)) / 4
		q.Weights[i] = float64(rng.Intn(3)) // 0 weights included
	}
	return q
}

func TestShardedIndexMatchesScanByteForByte(t *testing.T) {
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	for _, shards := range []int{1, 2, 3, 7} {
		data := tieProneData(500, len(roles), int64(shards))
		idx, err := NewShardedIndex(data, roles, WithShards(shards), WithWorkers(3))
		if err != nil {
			t.Fatal(err)
		}
		defer idx.Close()
		if idx.Len() != len(data) {
			t.Fatalf("Len = %d, want %d", idx.Len(), len(data))
		}
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 50; i++ {
			q := randomQuery(rng, roles, len(data))
			got, err := idx.TopK(q)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "sharded vs oracle", got, oracleTopK(data, nil, q))
		}
	}
}

func TestShardedIndexInsertRemove(t *testing.T) {
	roles := []Role{Repulsive, Attractive, Attractive}
	data := tieProneData(120, len(roles), 5)
	idx, err := NewShardedIndex(data, roles, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()

	mirror := append([][]float64(nil), data...)
	dead := make([]bool, len(data))
	rng := rand.New(rand.NewSource(6))
	for step := 0; step < 200; step++ {
		switch rng.Intn(3) {
		case 0: // insert
			p := []float64{float64(rng.Intn(4)) / 4, rng.Float64(), rng.Float64()}
			id, err := idx.Insert(p)
			if err != nil {
				t.Fatal(err)
			}
			if id != len(mirror) {
				t.Fatalf("Insert returned id %d, want %d (global IDs must be dense)", id, len(mirror))
			}
			mirror = append(mirror, p)
			dead = append(dead, false)
		case 1: // remove
			id := rng.Intn(len(mirror) + 5) // sometimes out of range
			got := idx.Remove(id)
			want := id < len(mirror) && !dead[id]
			if got != want {
				t.Fatalf("Remove(%d) = %v, want %v", id, got, want)
			}
			if got {
				dead[id] = true
			}
		default: // query
			q := randomQuery(rng, roles, len(mirror))
			got, err := idx.TopK(q)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "after updates", got, oracleTopK(mirror, dead, q))
		}
	}
	live := 0
	for _, d := range dead {
		if !d {
			live++
		}
	}
	if idx.Len() != live {
		t.Fatalf("Len = %d, want %d live points", idx.Len(), live)
	}
}

func TestShardedIndexBatchMatchesTopK(t *testing.T) {
	roles := []Role{Repulsive, Attractive}
	data := tieProneData(300, len(roles), 8)
	idx, err := NewShardedIndex(data, roles, WithShards(3), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewSource(21))
	queries := make([]Query, 40)
	for i := range queries {
		queries[i] = randomQuery(rng, roles, len(data))
	}
	batch, err := idx.BatchTopK(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "batch vs single", batch[i], single)
	}
}

func TestShardedIndexBatchReportsLowestFailingQuery(t *testing.T) {
	roles := []Role{Repulsive, Attractive}
	data := tieProneData(50, len(roles), 9)
	idx, err := NewShardedIndex(data, roles, WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewSource(3))
	queries := make([]Query, 10)
	for i := range queries {
		queries[i] = randomQuery(rng, roles, len(data))
	}
	queries[4].K = 0 // invalid
	queries[7].K = -1
	if _, err := idx.BatchTopK(queries); err == nil || !strings.Contains(err.Error(), "query 4") {
		t.Fatalf("BatchTopK error = %v, want failure attributed to query 4", err)
	}
}

func TestShardedIndexShardAndWorkerKnobs(t *testing.T) {
	roles := []Role{Repulsive, Attractive}
	data := tieProneData(10, len(roles), 1)
	idx, err := NewShardedIndex(data, roles, WithShards(64), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if idx.Shards() != len(data) {
		t.Fatalf("Shards = %d, want clamp to dataset size %d", idx.Shards(), len(data))
	}
	if idx.Workers() != 2 {
		t.Fatalf("Workers = %d, want 2", idx.Workers())
	}
	if got := idx.Roles(); len(got) != len(roles) || got[0] != roles[0] || got[1] != roles[1] {
		t.Fatalf("Roles = %v, want %v", got, roles)
	}
	if idx.Bytes() <= 0 {
		t.Fatal("Bytes must be positive for a non-empty index")
	}
}

func TestShardedIndexUsableAfterClose(t *testing.T) {
	roles := []Role{Repulsive, Attractive}
	data := tieProneData(60, len(roles), 2)
	idx, err := NewShardedIndex(data, roles, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	idx.Close()
	idx.Close() // idempotent
	rng := rand.New(rand.NewSource(12))
	q := randomQuery(rng, roles, len(data))
	got, err := idx.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "after close", got, oracleTopK(data, nil, q))
	if _, err := idx.BatchTopK([]Query{q, q}); err != nil {
		t.Fatal(err)
	}
}
