// Scheduler and plan-cache tests: the bound-driven schedule and the plan
// cache are pure performance features — answers must stay byte-identical to
// the round-robin ablation (and hence to the scan oracle) under every knob
// combination, and the performance claims (fewer sorted accesses, cache
// hits) are pinned so they cannot silently rot.
package sdquery_test

import (
	"math/rand"
	"testing"

	sdquery "repro"
	"repro/internal/dataset"
)

// TestSchedulerEquivalenceProperty drives random specs through the same
// dataset under every scheduler × plan-cache × pairing combination and
// requires byte-identical answers. This is the re-proof of the
// prune-at-first-emission argument for non-uniform access order, run as a
// property: a point's first emission is bounded by every sibling frontier
// regardless of the order frontiers were advanced in, so no schedule may
// change what is pruned, scored, or returned.
func TestSchedulerEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 12; trial++ {
		n := 30 + rng.Intn(400)
		dims := 1 + rng.Intn(6)
		dist := []dataset.Distribution{dataset.Uniform, dataset.Correlated, dataset.AntiCorrelated}[trial%3]
		data := dataset.Generate(dist, n, dims, int64(trial))
		// Quantize half the trials so exact score ties are common — the
		// regime where a scheduling difference would first leak into
		// answers through the ID tie-break.
		if trial%2 == 0 {
			for _, row := range data {
				for d := range row {
					row[d] = float64(int(row[d]*4)) / 4
				}
			}
		}
		roles := make([]sdquery.Role, dims)
		active := false
		for d := range roles {
			roles[d] = sdquery.Role(rng.Intn(3))
			active = active || roles[d] != sdquery.Ignored
		}
		if !active {
			roles[rng.Intn(dims)] = sdquery.Repulsive
		}

		type variant struct {
			name string
			eng  *sdquery.SDIndex
		}
		var variants []variant
		for _, v := range []struct {
			name string
			opts []sdquery.SDOption
		}{
			{"bound-driven", nil},
			{"round-robin", []sdquery.SDOption{sdquery.WithScheduler(sdquery.SchedRoundRobin)}},
			{"no-plan-cache", []sdquery.SDOption{sdquery.WithPlanCache(false)}},
			{"round-robin/no-cache/in-order", []sdquery.SDOption{
				sdquery.WithScheduler(sdquery.SchedRoundRobin),
				sdquery.WithPlanCache(false),
				sdquery.WithPairing(sdquery.PairInOrder),
			}},
			// Intra-query segment parallelism is a scheduling choice too: the
			// segment tasks' interleaving (and the shared floor's timing) must
			// not leak into answers. Small segment caps force real multi-
			// segment stacks on these tiny datasets.
			{"parallel", []sdquery.SDOption{
				sdquery.WithWorkers(2),
				sdquery.WithMaxSegmentRows(32),
			}},
			{"parallel/round-robin/float32", []sdquery.SDOption{
				sdquery.WithWorkers(3),
				sdquery.WithMaxSegmentRows(17),
				sdquery.WithScheduler(sdquery.SchedRoundRobin),
				sdquery.WithColumnWidth(32),
			}},
		} {
			eng, err := sdquery.NewSDIndex(data, roles, v.opts...)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v.name, err)
			}
			variants = append(variants, variant{v.name, eng})
		}

		for qi := 0; qi < 12; qi++ {
			q := sdquery.Query{
				Point:   make([]float64, dims),
				K:       1 + rng.Intn(n+2),
				Roles:   append([]sdquery.Role(nil), roles...),
				Weights: make([]float64, dims),
			}
			for d := 0; d < dims; d++ {
				q.Point[d] = float64(rng.Intn(9)) / 8
				switch rng.Intn(4) {
				case 0:
					q.Weights[d] = 0
				case 1:
					q.Weights[d] = 1
				default:
					q.Weights[d] = rng.Float64()
				}
			}
			want, err := variants[0].eng.TopK(q)
			if err != nil {
				t.Fatalf("trial %d query %d %s: %v", trial, qi, variants[0].name, err)
			}
			for _, v := range variants[1:] {
				got, err := v.eng.TopK(q)
				if err != nil {
					t.Fatalf("trial %d query %d %s: %v", trial, qi, v.name, err)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d query %d: %s returned %d results, %s returned %d\nq=%+v",
						trial, qi, v.name, len(got), variants[0].name, len(want), q)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d query %d rank %d: %s got %+v, %s got %+v\nq=%+v",
							trial, qi, i, v.name, got[i], variants[0].name, want[i], q)
					}
				}
			}
		}
		for _, v := range variants {
			v.eng.Close() // release the parallel variants' worker pools
		}
	}
}

// TestBoundDrivenFetchesLess pins the scheduling win where it is most
// pronounced: skewed weights make one subproblem's frontier dominate, the
// situation a fixed rotation wastes accesses on. The bound-driven schedule
// must perform strictly fewer sorted accesses than round-robin on the same
// engine configuration, at identical answers.
func TestBoundDrivenFetchesLess(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 10_000, 6, 7)
	roles := []sdquery.Role{
		sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive,
		sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive,
	}
	// One dominant pair, two weak ones: rotation keeps draining the weak
	// frontiers long after they stopped mattering.
	q := sdquery.Query{
		Point:   []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5},
		K:       5,
		Roles:   roles,
		Weights: []float64{10, 10, 0.1, 0.1, 0.1, 0.1},
	}

	fetched := map[sdquery.SchedulerMode]int{}
	var answers [][]sdquery.Result
	for _, mode := range []sdquery.SchedulerMode{sdquery.SchedBoundDriven, sdquery.SchedRoundRobin} {
		idx, err := sdquery.NewSDIndex(data, roles, sdquery.WithScheduler(mode))
		if err != nil {
			t.Fatal(err)
		}
		res, st, err := idx.TopKWithStats(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.Rounds == 0 {
			t.Fatalf("%v: Stats.Rounds not reported", mode)
		}
		fetched[mode] = st.Fetched
		answers = append(answers, res)
	}
	for i := range answers[0] {
		if answers[0][i] != answers[1][i] {
			t.Fatalf("schedulers disagree at rank %d: %+v vs %+v", i, answers[0][i], answers[1][i])
		}
	}
	if bd, rr := fetched[sdquery.SchedBoundDriven], fetched[sdquery.SchedRoundRobin]; bd >= rr {
		t.Fatalf("bound-driven fetched %d, round-robin %d: scheduling win regressed", bd, rr)
	}
}

// TestPlanCache pins the cache contract: repeated shapes hit, distinct
// shapes (different zero-weight or role patterns) miss then hit, disabling
// the cache reports no hits, and a cached role-mismatch error is still an
// error on every repetition.
func TestPlanCache(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 500, 4, 11)
	roles := []sdquery.Role{sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive}
	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	q := sdquery.Query{
		Point:   []float64{0.1, 0.2, 0.3, 0.4},
		K:       3,
		Roles:   roles,
		Weights: []float64{1, 0.5, 0.25, 2},
	}
	_, st, err := idx.TopKWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 0 {
		t.Fatalf("first query of a shape reported a cache hit")
	}
	// Same shape, different weights and point: must hit.
	q2 := q
	q2.Point = []float64{0.9, 0.8, 0.7, 0.6}
	q2.Weights = []float64{2, 1, 0.125, 0.5}
	_, st, err = idx.TopKWithStats(q2)
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 1 {
		t.Fatalf("repeated shape missed the plan cache (hits = %d)", st.PlanCacheHits)
	}
	// A zero weight changes the shape: miss, then hit.
	q3 := q
	q3.Weights = []float64{1, 0, 0.25, 2}
	if _, st, err = idx.TopKWithStats(q3); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 0 {
		t.Fatalf("new shape (zero weight) reported a cache hit")
	}
	if _, st, err = idx.TopKWithStats(q3); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 1 {
		t.Fatalf("repeated zero-weight shape missed the plan cache")
	}
	// Role flips are errors on every repetition, cached or not.
	bad := q
	bad.Roles = []sdquery.Role{sdquery.Attractive, sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive}
	for i := 0; i < 2; i++ {
		if _, _, err := idx.TopKWithStats(bad); err == nil {
			t.Fatalf("role flip accepted (attempt %d)", i+1)
		}
	}
	// Error shapes are not published, so legitimate shapes still cache after
	// error churn (invalid-shape traffic must not fill the capped cache).
	after := q
	after.Weights = []float64{1, 0.5, 0, 2}
	if _, st, err = idx.TopKWithStats(after); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 0 {
		t.Fatalf("fresh shape after error churn reported a hit")
	}
	if _, st, err = idx.TopKWithStats(after); err != nil {
		t.Fatal(err)
	}
	if st.PlanCacheHits != 1 {
		t.Fatalf("shape published after error churn missed the cache")
	}

	// Disabled cache: never hits, same answers.
	off, err := sdquery.NewSDIndex(data, roles, sdquery.WithPlanCache(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, st, err := off.TopKWithStats(q)
		if err != nil {
			t.Fatal(err)
		}
		if st.PlanCacheHits != 0 {
			t.Fatalf("disabled plan cache reported hits")
		}
	}
	want, err := idx.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := off.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plan cache changed answers at rank %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestShardedStats: the sharded stats surface must sum per-shard work and
// report per-shard plan-cache hits, with answers identical to the fast path.
func TestShardedStats(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 4_000, 4, 13)
	roles := []sdquery.Role{sdquery.Repulsive, sdquery.Attractive, sdquery.Repulsive, sdquery.Attractive}
	idx, err := sdquery.NewShardedIndex(data, roles, sdquery.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	q := sdquery.Query{
		Point:   []float64{0.3, 0.7, 0.1, 0.9},
		K:       7,
		Roles:   roles,
		Weights: []float64{0.8, 0.5, 0.3, 0.9},
	}
	if _, _, err := idx.TopKWithStats(q); err != nil { // warm per-shard caches
		t.Fatal(err)
	}
	res, st, err := idx.TopKWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fetched <= 0 || st.Scored <= 0 || st.Rounds <= 0 {
		t.Fatalf("sharded stats not aggregated: %+v", st)
	}
	if st.Subproblems < idx.Shards() {
		t.Fatalf("Subproblems %d < shard count %d", st.Subproblems, idx.Shards())
	}
	if st.PlanCacheHits != idx.Shards() {
		t.Fatalf("warm sharded query reported %d plan-cache hits, want one per shard (%d)",
			st.PlanCacheHits, idx.Shards())
	}
	want, err := idx.TopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want) {
		t.Fatalf("stats path returned %d results, fast path %d", len(res), len(want))
	}
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("stats path diverges at rank %d: %+v vs %+v", i, res[i], want[i])
		}
	}
}
