package sdquery

import (
	"sync"
	"time"

	"repro/internal/baseline/brs"
	"repro/internal/baseline/pe"
	"repro/internal/baseline/scan"
	"repro/internal/baseline/ta"
	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/geom"
	"repro/internal/query"
	"repro/internal/topk"
)

// PairingStrategy selects how repulsive dimensions are mapped to attractive
// ones for the 2D subproblems (the bijection of Eqn. 10).
type PairingStrategy = core.Pairing

// Pairing strategies. PairAdaptive — the default — indexes the full
// repulsive × attractive pair-tree grid (within an internal size budget) and
// lets the query planner zip the active dimensions of each role in
// descending weight order per query, the guided mapping the paper's
// future-work discussion asks about; measured on the evaluation workload its
// sorted-access floor is within ~1.5% of the per-query optimal bijection.
// PairInOrder is the paper's arbitrary build-time mapping (and what
// PairAdaptive falls back to past its grid budget); PairByCorrelation and
// PairByVariance are build-time guided mappings; PairNone disables pairing
// entirely, degenerating the engine into the adapted Threshold Algorithm.
const (
	PairAdaptive      = core.PairAdaptive
	PairInOrder       = core.PairInOrder
	PairByCorrelation = core.PairByCorrelation
	PairByVariance    = core.PairByVariance
	PairNone          = core.PairNone
)

// SchedulerMode selects how the §5 aggregation orders its sorted accesses
// across subproblems (the scheduling layer of the Threshold Algorithm).
type SchedulerMode = core.Scheduler

// Scheduler modes. SchedBoundDriven (the default) always drains the
// subproblem whose frontier bound is highest, lowering the termination
// threshold as fast as possible per sorted access and re-checking it after
// every batch; SchedRoundRobin is the paper's fixed rotation with per-round
// threshold checks, kept as an ablation so the scheduling win stays
// benchmarkable. Both modes return byte-identical answers.
const (
	SchedBoundDriven = core.SchedBoundDriven
	SchedRoundRobin  = core.SchedRoundRobin
)

// SyncPolicy selects when write-ahead-log records are fsynced — the
// durability/latency trade of WithWAL indexes. See the constants.
type SyncPolicy = core.SyncPolicy

// Sync policies. SyncAlways (the default) fsyncs before acknowledging a
// mutation — one group commit covers every writer blocked in the same
// window, so concurrent writers share the fsync. SyncInterval acknowledges
// once the record reaches the OS and fsyncs on a timer (process crashes
// lose nothing; power failures lose at most the last interval). SyncNever
// leaves fsync to log rotation, checkpoints, Sync, and Close.
const (
	SyncAlways   = core.SyncAlways
	SyncInterval = core.SyncInterval
	SyncNever    = core.SyncNever
)

// ErrWAL marks mutations rejected because the index's write-ahead log
// failed (disk full, I/O error). The failure is sticky: the index keeps
// answering queries but refuses further writes until reopened.
var ErrWAL = core.ErrWAL

// WALStats is the observable state of an index's write-ahead log; see
// SDIndex.WALStats and ShardedIndex.WALStats.
type WALStats = core.WALStats

// SDOption configures NewSDIndex.
type SDOption func(*sdConfig)

type sdConfig struct {
	pairing      PairingStrategy
	tree         topk.Config
	angleDegrees []float64
	useAngles    bool
	shards       int
	workers      int
	workersSet   bool
	columnWidth  int
	maxSegRows   int
	sched        SchedulerMode
	noPlanCache  bool
	memSize      int
	noCompact    bool
	walDir       string
	walFS        faultfs.FS
	syncPolicy   SyncPolicy
	syncInterval time.Duration
}

// walConfig materializes the WAL option set for one engine logging under
// dir; nil when WithWAL was not given.
func (c *sdConfig) walConfig(dir string) *core.WALConfig {
	if c.walDir == "" {
		return nil
	}
	return &core.WALConfig{Dir: dir, FS: c.walFS, Policy: c.syncPolicy, Interval: c.syncInterval}
}

// coreConfig materializes the option set into the internal engine
// configuration for one (sub-)dataset with the given roles.
func (c *sdConfig) coreConfig(roles []Role) (core.Config, error) {
	cfg := core.Config{Roles: roles, Pairing: c.pairing, Tree: c.tree,
		Scheduler: c.sched, DisablePlanCache: c.noPlanCache,
		MemtableSize: c.memSize, DisableCompaction: c.noCompact,
		ColumnWidth: c.columnWidth, MaxSegmentRows: c.maxSegRows}
	if c.useAngles {
		cfg.Tree.Angles = nil
		for _, d := range c.angleDegrees {
			a, err := geom.AngleFromDegrees(d)
			if err != nil {
				return core.Config{}, err
			}
			cfg.Tree.Angles = append(cfg.Tree.Angles, a)
		}
		if len(cfg.Tree.Angles) == 0 {
			// An explicit empty set falls back to 0° and 90° only.
			cfg.Tree.Angles = []geom.Angle{{Alpha: 1, Beta: 0}, {Alpha: 0, Beta: 1}}
		}
	}
	return cfg, nil
}

// WithPairing selects the dimension-pairing strategy (default PairAdaptive).
// Pairing never changes answers — only index memory and sorted-access
// counts; WithPairing(PairInOrder) restores the previous fixed mapping and
// its smaller min(|D|, |S|)-tree footprint.
func WithPairing(p PairingStrategy) SDOption {
	return func(c *sdConfig) { c.pairing = p }
}

// WithBranching sets the fan-out b of the per-pair projection trees
// (default 8).
func WithBranching(b int) SDOption {
	return func(c *sdConfig) { c.tree.Branching = b }
}

// WithLeafCapacity sets the number of points per tree leaf (default 1; the
// paper's disk-style bulk packing uses larger leaves).
func WithLeafCapacity(cap int) SDOption {
	return func(c *sdConfig) { c.tree.LeafCap = cap }
}

// WithAngles sets the indexed projection angles in degrees. 0 and 90 are
// always added if absent. Default: {0, 23, 45, 67, 90} (§6.1).
func WithAngles(degrees ...float64) SDOption {
	return func(c *sdConfig) {
		c.useAngles = true
		c.angleDegrees = append([]float64(nil), degrees...)
	}
}

// WithRebuildThreshold sets the imbalance fraction θ that triggers a tree
// rebuild after updates (default 0.25).
func WithRebuildThreshold(theta float64) SDOption {
	return func(c *sdConfig) { c.tree.RebuildThreshold = theta }
}

// WithScheduler selects the sorted-access scheduling mode of the §5
// aggregation (default SchedBoundDriven). Scheduling never changes answers —
// only how many sorted accesses a query spends — so the knob exists for
// ablation benchmarks and regression comparisons. A ShardedIndex applies the
// mode to every shard engine.
func WithScheduler(m SchedulerMode) SDOption {
	return func(c *sdConfig) { c.sched = m }
}

// WithPlanCache enables or disables the per-engine query-plan cache
// (default enabled). The cache memoizes the derived plan — surviving
// subproblems, active weight signs — per query shape (which dimensions are
// active, which roles engaged, which weights are zero), so repeated traffic
// shapes skip plan derivation; QueryStats.PlanCacheHits reports hits. Each
// shard of a ShardedIndex keeps its own cache, shared across its pooled
// query contexts.
func WithPlanCache(enabled bool) SDOption {
	return func(c *sdConfig) { c.noPlanCache = !enabled }
}

// WithMemtableSize sets the memtable row count past which the background
// compactor seals recent inserts into an immutable segment (default 1024).
// Smaller values seal more eagerly — less per-query memtable scanning, more
// frequent tree builds; larger values batch more inserts per seal. Queries
// are exact at every setting. A ShardedIndex applies the threshold to every
// shard engine.
func WithMemtableSize(rows int) SDOption {
	return func(c *sdConfig) { c.memSize = rows }
}

// WithCompaction enables or disables background compaction (default
// enabled). With compaction disabled the memtable grows without bound —
// queries stay exact, scanning it row by row — and segments are only ever
// folded by an explicit Compact call; useful for tests and for bulk-load
// phases that end with one big Compact.
func WithCompaction(enabled bool) SDOption {
	return func(c *sdConfig) { c.noCompact = !enabled }
}

// WithWAL gives the index a crash-safe write-ahead log rooted at dir.
// Every Insert and Remove is appended — checksummed and length-prefixed —
// to a per-engine log before it is acknowledged, so a crash (process kill
// or, under SyncAlways, power loss) never loses an acknowledged mutation:
// Open/OpenSDIndex/OpenShardedIndex recover the directory by loading its
// last checkpoint and replaying the log tail, truncating torn tails
// instead of failing. dir must be empty or nonexistent at creation; an
// existing durable index is recovered with the Open functions, never
// overwritten. A ShardedIndex keeps one independently group-committed log
// per shard under dir.
func WithWAL(dir string) SDOption {
	return func(c *sdConfig) { c.walDir = dir }
}

// WithSyncPolicy selects the WAL fsync policy (default SyncAlways). Only
// meaningful together with WithWAL.
func WithSyncPolicy(p SyncPolicy) SDOption {
	return func(c *sdConfig) { c.syncPolicy = p }
}

// WithSyncInterval sets SyncInterval's fsync cadence (default 100ms). Only
// meaningful together with WithWAL and WithSyncPolicy(SyncInterval).
func WithSyncInterval(d time.Duration) SDOption {
	return func(c *sdConfig) { c.syncInterval = d }
}

// WithWALFS replaces the filesystem the WAL talks to — the fault-injection
// hook the crash-recovery suites use (internal/faultfs.Mem simulates torn
// writes, fsync failures, and power loss deterministically). Production
// indexes leave it unset and get the real filesystem.
func WithWALFS(fs faultfs.FS) SDOption {
	return func(c *sdConfig) { c.walFS = fs }
}

// WithShards sets the number of data shards NewShardedIndex partitions the
// dataset into (≤ 0 selects GOMAXPROCS; the count is capped at the dataset
// size). NewSDIndex ignores it.
func WithShards(n int) SDOption {
	return func(c *sdConfig) { c.shards = n }
}

// WithWorkers sets the size of the worker pool queries fan out on (≤ 0
// selects GOMAXPROCS). The calling goroutine always participates in its own
// query's fan-out, so the effective parallelism of one call is up to
// workers+1, and concurrent calls each add their calling goroutine on top
// of the shared pool — the pool bounds the extra goroutines, not total CPU
// use.
//
// On a ShardedIndex the pool carries the per-shard fan-out, as before. On
// NewSDIndex (and LoadSDIndex/OpenSDIndex) the option now enables
// intra-query segment parallelism: one query's sealed segments are
// aggregated concurrently, cooperating through a shared termination
// threshold, and the per-segment candidate sets merge into answers
// byte-identical to the sequential schedule. Omitting the option keeps
// the sequential path with its fully deterministic Stats trace; an index
// with a single sealed segment (the compacted steady state) runs
// sequentially either way. Shard engines inside a ShardedIndex always
// aggregate sequentially — the shard fan-out already occupies the pool,
// and nesting batches on one pool could starve it.
func WithWorkers(n int) SDOption {
	return func(c *sdConfig) { c.workers = n; c.workersSet = true }
}

// WithColumnWidth selects the precision of the sealed segments' scoring
// columns: 64 (the default) stores the sweep columns as float64; 32 adds a
// float32 copy the batch kernels sweep at half the memory bandwidth,
// rescoring survivors against the exact rows so answers remain byte-identical
// to the float64 path. The narrow copy costs ~50% extra column memory and is
// structural: persisted indexes record it, and Load restores it from the
// file.
func WithColumnWidth(bits int) SDOption {
	return func(c *sdConfig) { c.columnWidth = bits }
}

// WithMaxSegmentRows caps the rows of any sealed segment: the initial bulk
// build and every compaction split their output into ⌈rows/cap⌉ segments
// instead of one. A cap turns the single-segment steady state into a stack
// of bounded segments — the unit WithWorkers' intra-query parallelism fans
// out over. 0 (the default) leaves segments unbounded; answers are
// unaffected either way.
func WithMaxSegmentRows(rows int) SDOption {
	return func(c *sdConfig) { c.maxSegRows = rows }
}

// SDIndex is the paper's SD-Index: the general top-k engine with k and
// weights supplied at query time.
type SDIndex struct {
	eng   *core.Engine
	roles []Role
	pool  *workerPool // owned intra-query fan-out pool; nil without WithWorkers
	buf   sync.Pool   // *[]query.Result scratch for the Append paths
}

// NewSDIndex builds the SD-Index over data (row-major, n × d) with the
// given build-time roles. Queries may later demote an active dimension to
// Ignored but may not flip attractive and repulsive.
func NewSDIndex(data [][]float64, roles []Role, opts ...SDOption) (*SDIndex, error) {
	var cfg sdConfig
	for _, o := range opts {
		o(&cfg)
	}
	coreCfg, err := cfg.coreConfig(roles)
	if err != nil {
		return nil, err
	}
	if cfg.walDir != "" {
		if err := writeManifest(&cfg, manifestKindSDIndex, 1); err != nil {
			return nil, err
		}
		coreCfg.WAL = cfg.walConfig(shardWALDir(cfg.walDir, 0))
	}
	var pool *workerPool
	if cfg.workersSet {
		pool = newWorkerPool(cfg.workers)
		coreCfg.Pool = poolRunner{pool}
	}
	eng, err := core.New(data, coreCfg)
	if err != nil {
		if pool != nil {
			pool.close()
		}
		return nil, err
	}
	return &SDIndex{eng: eng, roles: append([]Role(nil), roles...), pool: pool}, nil
}

// TopK answers the query. See Engine.
func (s *SDIndex) TopK(q Query) ([]Result, error) {
	return s.TopKAppend(nil, q)
}

// TopKAppend answers the query, appending the results (best first) to dst
// and returning the extended slice. With a caller-reused dst the
// steady-state query path performs no allocation: all per-query state lives
// in pooled contexts inside the engine. dst's existing elements are
// preserved; a nil dst behaves like TopK. The whole path is lock-free —
// snapshot acquisition is a single atomic load (see Snapshot).
func (s *SDIndex) TopKAppend(dst []Result, q Query) ([]Result, error) {
	return s.appendVia(s.eng.View(), dst, q, nil)
}

// Len reports the number of live points.
func (s *SDIndex) Len() int { return s.eng.Len() }

// Epoch returns the version number of the index's current snapshot: 0 at
// construction, bumped by every Insert, Remove, and compaction step (one
// atomic load, no lock). Epochs strictly increase, so equal values from two
// calls prove the visible row set did not change in between — the free
// invalidation key the serving layer's result cache relies on.
func (s *SDIndex) Epoch() uint64 { return s.eng.Epoch() }

// Roles returns the build-time dimension roles.
func (s *SDIndex) Roles() []Role { return append([]Role(nil), s.roles...) }

// Insert adds a point and returns its dataset ID. The row lands in the
// engine's memtable — O(d) work, no index maintenance — and becomes part of
// a sealed segment when the background compactor next runs; queries see it
// immediately either way. Insert never blocks queries.
func (s *SDIndex) Insert(p []float64) (int, error) { return s.eng.Insert(p) }

// Remove deletes a point by dataset ID, reporting whether it was live. The
// row is tombstoned in the current snapshot (removed rows are masked at
// query time) and physically reclaimed by a later compaction. On a WAL
// index Remove waits for durability like Insert but drops the error; use
// RemoveDurable when the caller must distinguish "not live" from "log
// failed".
func (s *SDIndex) Remove(id int) bool { return s.eng.Remove(id) }

// RemoveDurable is Remove with the WAL verdict: on a WithWAL index it
// returns ErrWAL when the tombstone could not be made durable, and the
// reported bool is authoritative only when err is nil. Without a WAL it is
// exactly Remove.
func (s *SDIndex) RemoveDurable(id int) (bool, error) { return s.eng.RemoveDurable(id) }

// Sync force-fsyncs the index's write-ahead log regardless of sync policy —
// the shutdown drain: a server running SyncInterval or SyncNever calls it
// so every acknowledged mutation survives power loss too. No-op without a
// WAL.
func (s *SDIndex) Sync() error { return s.eng.Sync() }

// Checkpoint writes the index's current snapshot into the WAL directory and
// retires the log files it covers. The background compactor checkpoints
// automatically as sealed log volume accumulates; an explicit call bounds
// recovery time before a planned restart. No-op without a WAL.
func (s *SDIndex) Checkpoint() error { return s.eng.Checkpoint() }

// Close flushes and closes the index's write-ahead log and releases the
// WithWorkers pool's goroutines. The index stays queryable — reads never
// touch the log, and a closed pool degrades queries to the sequential
// schedule (same answers) rather than failing — but every later mutation
// fails with ErrWAL on a WAL index. Idempotent.
func (s *SDIndex) Close() {
	if s.pool != nil {
		s.pool.close()
	}
	s.eng.Close()
}

// WALStats reports the write-ahead log's counters and health; Enabled is
// false without WithWAL. A non-nil Err means the log failed and the index
// is read-only (every mutation returns ErrWAL) until reopened.
func (s *SDIndex) WALStats() WALStats { return s.eng.WALStats() }

// Compact synchronously folds the index's segment stack and memtable into a
// single sealed segment, dropping tombstoned rows. Queries keep flowing
// throughout; use it to finish a bulk-load phase or to pin the zero-alloc
// steady state before latency-critical serving.
func (s *SDIndex) Compact() { s.eng.Compact() }

// Segments reports the number of sealed segments and memtable rows in the
// index's current snapshot — the observable shape of the storage stack that
// background compaction continuously reorganizes.
func (s *SDIndex) Segments() (segments, memRows int) { return s.eng.Segments() }

// Bytes estimates the resident size of the index structures.
func (s *SDIndex) Bytes() int { return s.eng.Bytes() }

// NewScan returns the sequential-scan engine — the exact baseline every
// other engine is validated against.
func NewScan(data [][]float64) (Engine, error) {
	eng, err := scan.New(data)
	if err != nil {
		return nil, err
	}
	return &wrapped{topk: eng.TopK, length: eng.Len}, nil
}

// NewTA returns the adapted Threshold Algorithm baseline (per-dimension
// sorted lists, one subproblem per dimension).
func NewTA(data [][]float64) (Engine, error) {
	eng, err := ta.New(data)
	if err != nil {
		return nil, err
	}
	return &wrapped{topk: eng.TopK, length: eng.Len}, nil
}

// NewBRS returns the branch-and-bound ranked search baseline over an
// in-memory R*-tree. nodeCapacity ≤ 0 selects the paper's tuned capacity
// for the data's dimensionality.
func NewBRS(data [][]float64, nodeCapacity int) (Engine, error) {
	dims := 0
	if len(data) > 0 {
		dims = len(data[0])
	}
	if nodeCapacity <= 0 {
		nodeCapacity = brs.NodeCapacityFor(dims)
	}
	eng, err := brs.NewWithCapacity(data, nodeCapacity)
	if err != nil {
		return nil, err
	}
	return &wrapped{topk: eng.TopK, length: eng.Len}, nil
}

// NewPE returns the progressive-exploration baseline (NRA-style progressive
// merge over per-dimension lists).
func NewPE(data [][]float64) (Engine, error) {
	eng, err := pe.New(data)
	if err != nil {
		return nil, err
	}
	return &wrapped{topk: eng.TopK, length: eng.Len}, nil
}

type wrapped struct {
	topk   func(query.Spec) ([]query.Result, error)
	length func() int
}

func (w *wrapped) TopK(q Query) ([]Result, error) {
	res, err := w.topk(q.spec())
	if err != nil {
		return nil, err
	}
	return convertResults(res), nil
}

func (w *wrapped) Len() int { return w.length() }

// Engines must keep satisfying the interface.
var (
	_ Engine = (*SDIndex)(nil)
	_ Engine = (*wrapped)(nil)
)
