package sdquery

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/faultfs"
)

// Durable index directories. A WithWAL index lives in a directory of its
// own:
//
//	dir/MANIFEST        JSON: format version, index kind, shard count
//	dir/shard-000/      one WAL directory per engine (CHECKPOINT + *.wal)
//	dir/shard-001/      ... (sharded indexes only)
//
// Each shard directory is a self-contained core WAL: a full-snapshot
// checkpoint plus the log tail of mutations since. The Open functions
// recover the whole index from the directory — checkpoints load, tails
// replay idempotently, torn tails truncate — so a crashed process restarts
// with exactly the acknowledged mutations (per the sync policy it ran
// with) and nothing else. The MANIFEST is written once at creation and
// never rewritten; it is the commit point of index creation, so Open on a
// directory whose creation crashed before the manifest landed fails
// cleanly instead of recovering half an index.

const (
	manifestName   = "MANIFEST"
	manifestFormat = "sdquery-wal/v1"

	manifestKindSDIndex = "sdindex"
	manifestKindSharded = "sharded"
)

type manifest struct {
	Format string `json:"format"`
	Kind   string `json:"kind"`
	Shards int    `json:"shards"`
}

// shardWALDir names shard si's WAL directory under the index root.
func shardWALDir(root string, si int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", si))
}

// writeManifest creates the index directory and atomically installs its
// MANIFEST (tmp + fsync + rename + dir sync). It refuses a directory that
// already holds one: durable indexes are recovered with Open, never
// re-created over.
func writeManifest(cfg *sdConfig, kind string, shards int) error {
	ffs := cfg.walFS
	if ffs == nil {
		ffs = faultfs.OS{}
	}
	if err := ffs.MkdirAll(cfg.walDir); err != nil {
		return fmt.Errorf("sdquery: wal dir: %w", err)
	}
	path := filepath.Join(cfg.walDir, manifestName)
	if _, err := ffs.Stat(path); err == nil {
		return fmt.Errorf("sdquery: %s already holds a durable index; recover it with Open instead of creating over it", cfg.walDir)
	}
	data, err := json.Marshal(manifest{Format: manifestFormat, Kind: kind, Shards: shards})
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := ffs.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("sdquery: manifest: %w", err)
	}
	_, err = f.Write(append(data, '\n'))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		ffs.Remove(tmp)
		return fmt.Errorf("sdquery: manifest: %w", err)
	}
	if err := ffs.Rename(tmp, path); err != nil {
		return fmt.Errorf("sdquery: manifest: %w", err)
	}
	if err := ffs.SyncDir(cfg.walDir); err != nil {
		return fmt.Errorf("sdquery: manifest: %w", err)
	}
	return nil
}

// readManifest loads and validates dir's MANIFEST.
func readManifest(ffs faultfs.FS, dir string) (manifest, error) {
	f, err := ffs.OpenFile(filepath.Join(dir, manifestName), os.O_RDONLY, 0)
	if err != nil {
		return manifest{}, fmt.Errorf("sdquery: open %s: %w", dir, err)
	}
	data, err := io.ReadAll(f)
	f.Close()
	if err != nil {
		return manifest{}, fmt.Errorf("sdquery: open %s: manifest: %w", dir, err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("sdquery: open %s: manifest: %w", dir, err)
	}
	if m.Format != manifestFormat {
		return manifest{}, fmt.Errorf("sdquery: open %s: unsupported manifest format %q (have %s)", dir, m.Format, manifestFormat)
	}
	if m.Shards < 1 || m.Shards > 1<<20 {
		return manifest{}, fmt.Errorf("sdquery: open %s: implausible shard count %d", dir, m.Shards)
	}
	switch m.Kind {
	case manifestKindSDIndex, manifestKindSharded:
	default:
		return manifest{}, fmt.Errorf("sdquery: open %s: unknown index kind %q", dir, m.Kind)
	}
	return m, nil
}

// openPrep resolves the option list for the Open functions and reads the
// manifest. WithWAL on the option list is ignored — dir is authoritative.
func openPrep(dir string, opts []SDOption) (manifest, core.RuntimeOptions, sdConfig, error) {
	opt, cfg := runtimeOptions(opts)
	cfg.walDir = dir
	if cfg.walFS == nil {
		cfg.walFS = faultfs.OS{}
	}
	m, err := readManifest(cfg.walFS, dir)
	if err != nil {
		return manifest{}, core.RuntimeOptions{}, sdConfig{}, err
	}
	return m, opt, cfg, nil
}

// OpenSDIndex recovers a durable SDIndex from its WithWAL directory:
// checkpoint load, idempotent log replay, torn-tail truncation. Structural
// options are in the checkpoint; the option list supplies runtime knobs
// (scheduler, plan cache, memtable size, compaction) and the WAL knobs to
// run with from here on (WithSyncPolicy, WithSyncInterval, WithWALFS).
func OpenSDIndex(dir string, opts ...SDOption) (*SDIndex, error) {
	m, opt, cfg, err := openPrep(dir, opts)
	if err != nil {
		return nil, err
	}
	if m.Kind != manifestKindSDIndex {
		return nil, fmt.Errorf("sdquery: open %s: directory holds a sharded index; use OpenShardedIndex or Open", dir)
	}
	var pool *workerPool
	if cfg.workersSet {
		pool = newWorkerPool(cfg.workers)
		opt.Pool = poolRunner{pool}
	}
	eng, err := core.Open(*cfg.walConfig(shardWALDir(dir, 0)), opt)
	if err != nil {
		if pool != nil {
			pool.close()
		}
		return nil, err
	}
	return &SDIndex{eng: eng, roles: eng.Roles(), pool: pool}, nil
}

// OpenShardedIndex recovers a durable ShardedIndex from its WithWAL
// directory. Every shard recovers independently (concurrently) from its
// own log; the global-ID routing table is rebuilt from the shard engines'
// recovered contents, so no separate routing persistence can disagree
// with the data. WithShards is ignored — the partition is fixed at
// creation; WithWorkers and the runtime knobs apply.
func OpenShardedIndex(dir string, opts ...SDOption) (*ShardedIndex, error) {
	m, opt, cfg, err := openPrep(dir, opts)
	if err != nil {
		return nil, err
	}
	if m.Kind != manifestKindSharded {
		return nil, fmt.Errorf("sdquery: open %s: directory holds a single-engine index; use OpenSDIndex or Open", dir)
	}
	p := m.Shards
	engines := make([]*core.Engine, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for si := 0; si < p; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			eng, err := core.Open(*cfg.walConfig(shardWALDir(dir, si)), opt)
			if err != nil {
				errs[si] = fmt.Errorf("shard %d: %w", si, err)
				return
			}
			engines[si] = eng
		}(si)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	// assembleSharded rebuilds the routing table from the recovered shards:
	// the global ID space spans [0, max Total()); IDs whose rows were removed
	// and physically reclaimed by compaction locate nowhere and route to -1
	// (Remove reports them not-live without consulting any shard).
	return assembleSharded(engines, cfg.workers), nil
}

// Open recovers whichever durable index kind dir holds, dispatching on its
// MANIFEST — the convenient form for tools that serve any durable index
// (cmd/sdserver -wal-dir).
func Open(dir string, opts ...SDOption) (Engine, error) {
	var probe sdConfig
	for _, o := range opts {
		o(&probe)
	}
	ffs := probe.walFS
	if ffs == nil {
		ffs = faultfs.OS{}
	}
	m, err := readManifest(ffs, dir)
	if err != nil {
		return nil, err
	}
	if m.Kind == manifestKindSDIndex {
		return OpenSDIndex(dir, opts...)
	}
	return OpenShardedIndex(dir, opts...)
}
