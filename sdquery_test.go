package sdquery

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// TestPublicEnginesAgree runs every public engine on the same workload and
// demands identical score sequences.
func TestPublicEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	data := dataset.Generate(dataset.Uniform, 400, 4, 1)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}

	scanEng, err := NewScan(data)
	if err != nil {
		t.Fatal(err)
	}
	taEng, err := NewTA(data)
	if err != nil {
		t.Fatal(err)
	}
	brsEng, err := NewBRS(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	peEng, err := NewPE(data)
	if err != nil {
		t.Fatal(err)
	}
	sdEng, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	engines := map[string]Engine{"ta": taEng, "brs": brsEng, "pe": peEng, "sd": sdEng}

	for qi := 0; qi < 15; qi++ {
		q := Query{
			Point:   []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			K:       rng.Intn(8) + 1,
			Roles:   roles,
			Weights: []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
		}
		want, err := scanEng.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		for name, eng := range engines {
			got, err := eng.TopK(q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s: %d results, want %d", name, len(got), len(want))
			}
			for i := range want {
				if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("%s result %d: score %v, want %v", name, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestQueryScoreMatchesDefinition(t *testing.T) {
	q := Query{
		Point:   []float64{0, 10},
		K:       1,
		Roles:   []Role{Attractive, Repulsive},
		Weights: []float64{2, 3},
	}
	// p = (1, 14): −2·|1−0| + 3·|14−10| = −2 + 12 = 10
	if got := q.Score([]float64{1, 14}); math.Abs(got-10) > 1e-12 {
		t.Fatalf("Score = %v, want 10", got)
	}
}

func TestSDIndexOptions(t *testing.T) {
	data := dataset.Generate(dataset.Correlated, 300, 4, 2)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	scanEng, _ := NewScan(data)
	variants := map[string]*SDIndex{}
	for name, opts := range map[string][]SDOption{
		"default":     nil,
		"correlation": {WithPairing(PairByCorrelation)},
		"variance":    {WithPairing(PairByVariance)},
		"nopairs":     {WithPairing(PairNone)},
		"branch32":    {WithBranching(32), WithLeafCapacity(8)},
		"angles2":     {WithAngles(0, 90)},
		"angles9":     {WithAngles(0, 11, 22, 33, 45, 56, 67, 79, 90)},
		"rebuild":     {WithRebuildThreshold(0.9)},
	} {
		idx, err := NewSDIndex(data, roles, opts...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		variants[name] = idx
	}
	rng := rand.New(rand.NewSource(92))
	for qi := 0; qi < 10; qi++ {
		q := Query{
			Point:   []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			K:       5,
			Roles:   roles,
			Weights: []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
		}
		want, _ := scanEng.TopK(q)
		for name, idx := range variants {
			got, err := idx.TopK(q)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i := range want {
				if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
					t.Fatalf("%s result %d: %v, want %v", name, i, got[i].Score, want[i].Score)
				}
			}
		}
	}
}

func TestSDIndexBadAngles(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 10, 2, 3)
	if _, err := NewSDIndex(data, []Role{Repulsive, Attractive}, WithAngles(120)); err == nil {
		t.Fatal("angle 120° accepted")
	}
	if _, err := NewSDIndex(data, []Role{Repulsive, Attractive}, WithAngles(-5)); err == nil {
		t.Fatal("angle -5° accepted")
	}
}

func TestSDIndexUpdates(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 100, 2, 4)
	roles := []Role{Attractive, Repulsive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	id, err := idx.Insert([]float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if idx.Len() != 101 {
		t.Fatalf("Len = %d, want 101", idx.Len())
	}
	if !idx.Remove(id) {
		t.Fatal("Remove of fresh insert failed")
	}
	if idx.Remove(id) {
		t.Fatal("double Remove succeeded")
	}
	if idx.Bytes() <= 0 {
		t.Fatal("Bytes not positive")
	}
	if got := idx.Roles(); len(got) != 2 || got[0] != Attractive {
		t.Fatalf("Roles = %v", got)
	}
}

func TestTop1IndexPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	data := dataset.Generate(dataset.Uniform, 500, 2, 5)
	cfg := Top1Config{AttractiveWeight: 1, RepulsiveWeight: 1, K: 3}
	idx, err := NewTop1Index(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if idx.K() != 3 || idx.Len() != 500 {
		t.Fatalf("K=%d Len=%d", idx.K(), idx.Len())
	}
	scanEng, _ := NewScan(data)
	roles := []Role{Attractive, Repulsive}
	for qi := 0; qi < 25; qi++ {
		pt := []float64{rng.Float64(), rng.Float64()}
		got, err := idx.TopK(pt)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := scanEng.TopK(Query{Point: pt, K: 3, Roles: roles, Weights: []float64{1, 1}})
		if len(got) != len(want) {
			t.Fatalf("%d results, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("result %d: %v, want %v", i, got[i].Score, want[i].Score)
			}
		}
	}
	// Update path.
	if err := idx.Insert(1000, []float64{0.5, 2}); err != nil {
		t.Fatal(err)
	}
	res, _ := idx.TopK([]float64{0.5, 0})
	if res[0].ID != 1000 {
		t.Fatalf("dominant inserted point not top-1: %+v", res[0])
	}
	if !idx.Delete(1000, []float64{0.5, 2}) {
		t.Fatal("Delete failed")
	}
	if _, err := idx.TopK([]float64{0.5}); err == nil {
		t.Fatal("1-coordinate query accepted")
	}
	if err := idx.Insert(1, []float64{1}); err == nil {
		t.Fatal("1-coordinate insert accepted")
	}
	if idx.Delete(1, []float64{1}) {
		t.Fatal("1-coordinate delete succeeded")
	}
}

func TestTop1IndexValidation(t *testing.T) {
	if _, err := NewTop1Index([][]float64{{1, 2, 3}}, Top1Config{AttractiveWeight: 1, RepulsiveWeight: 1, K: 1}); err == nil {
		t.Fatal("3-column data accepted")
	}
	if _, err := NewTop1Index(nil, Top1Config{AttractiveWeight: 1, RepulsiveWeight: 1, K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestEngineErrorsSurface(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 10, 2, 6)
	for name, mk := range map[string]func() (Engine, error){
		"scan": func() (Engine, error) { return NewScan(data) },
		"ta":   func() (Engine, error) { return NewTA(data) },
		"brs":  func() (Engine, error) { return NewBRS(data, 0) },
		"pe":   func() (Engine, error) { return NewPE(data) },
	} {
		eng, err := mk()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := eng.TopK(Query{Point: []float64{1}, K: 1,
			Roles: []Role{Repulsive}, Weights: []float64{1}}); err == nil {
			t.Fatalf("%s accepted mismatched dims", name)
		}
		if eng.Len() != 10 {
			t.Fatalf("%s Len = %d", name, eng.Len())
		}
	}
}
