// Package sdquery answers top-k queries over a mixture of attractive and
// repulsive dimensions — a Go implementation of Ranu & Singh, "Answering
// Top-k Queries Over a Mixture of Attractive and Repulsive Dimensions",
// PVLDB 5(3), 2011.
//
// An SD-Query compares every database point p to a user-supplied query
// object q under the non-monotonic scoring function
//
//	SD-score(p, q) = Σ_{i∈D} α_i·|p_i − q_i|  −  Σ_{j∈S} β_j·|p_j − q_j|
//
// where D holds the repulsive dimensions (distance is rewarded: "different
// habitat", "lower price") and S the attractive ones (closeness is rewarded:
// "same phylogeny", "similar hit rate"). Classic top-k machinery assumes
// monotonic scoring and cannot index this function; this package provides
// the paper's isoline-projection indexes:
//
//   - SDIndex — the general engine (§4 + §5): per-pair 2D projection trees
//     with multi-angle bounds, 1D bidirectional lists for unpaired
//     dimensions, and Threshold-Algorithm aggregation. k and all weights are
//     chosen at query time.
//   - Top1Index — the specialized 2D structure (§3) for workloads where k
//     and the weights are fixed up front: O(log n) queries over precomputed
//     envelope regions.
//   - ShardedIndex — the parallel execution layer: the dataset is
//     partitioned across P shards (WithShards, default GOMAXPROCS), each
//     backed by an independent SD-Index engine indexing its rows under
//     their global dataset IDs; TopK fans out to per-shard goroutines on a
//     reusable worker pool (WithWorkers) and a bounded merge recovers the
//     exact global answer, byte-identical to the single engine's. BatchTopK
//     pipelines whole query batches across the (query × shard) grid.
//
// # Storage: segments, snapshots, compaction
//
// Every engine is an epoch-versioned stack of immutable sealed segments —
// flat rows, global IDs, and the per-pair index structures, built once and
// never mutated — plus a small mutable memtable absorbing recent Inserts.
// The engine's state is a single atomic pointer to an immutable snapshot,
// so the query path holds no lock at all: TopK/TopKAppend load the
// snapshot once and plan across every sealed segment (tombstones mask
// removed rows at emission; the memtable's rows are scored exactly up
// front). Insert appends to the memtable in O(d) with no index
// maintenance, Remove flips a copy-on-write tombstone bit, and neither
// ever blocks a reader. A background compactor — kicked past
// WithMemtableSize rows, disabled by WithCompaction(false) — seals the
// memtable into a segment, keeps the stack logarithmic (each segment at
// least twice its successor), and rewrites dead-heavy segments; Compact
// forces a synchronous full fold. SDIndex.Snapshot / ShardedIndex.Snapshot
// pin a point-in-time view that keeps answering byte-identically to the
// scan oracle at its acquisition instant while churn proceeds underneath.
//
// # Persistence
//
// Save serializes an index's snapshot to a versioned binary format — the
// structural configuration plus every segment's rows, IDs, and tombstones;
// index structures rebuild deterministically at load, so LoadSDIndex /
// LoadShardedIndex / Load reconstruct an index that answers byte-
// identically and reports the same Bytes, with no data re-ingestion:
//
//	f, _ := os.Create("points.sdx")
//	err := idx.Save(f) // lock-free, snapshot-consistent
//	f.Close()
//	...
//	f, _ = os.Open("points.sdx")
//	idx2, err := sdquery.LoadSDIndex(f) // serves immediately; updates resume
//
// cmd/sdquery exposes the same flow: -save persists an index built from
// CSV, -index serves a persisted one without any rebuild.
//
// # Durability
//
// Save captures a moment; WithWAL makes every mutation crash-safe. An index
// built with WithWAL(dir) appends each Insert/Remove as a checksummed,
// LSN-sequenced record to a per-shard write-ahead log before publishing it,
// and Open(dir) (or OpenSDIndex / OpenShardedIndex) reconstructs the index
// after a crash — checkpoint first, then the live log tail:
//
//	idx, err := sdquery.NewShardedIndex(data, roles, sdquery.WithWAL("/var/lib/sd"))
//	id, err := idx.Insert(row) // returns only after the record is committed
//	...                        // power fails here
//	idx2, err := sdquery.Open("/var/lib/sd") // every acknowledged write intact
//
// WithSyncPolicy picks the durability/throughput point. SyncAlways (the
// default) acknowledges a mutation only after an fsync covers it; a
// group-commit batcher shares each fsync across every mutation that arrived
// in the commit window, so concurrent writers pay far less than one fsync
// each. SyncInterval fsyncs on a timer (WithSyncInterval, bounding loss to
// one interval), SyncNever only on rotation, checkpoint, and Close.
//
// Recovery is deliberately forgiving of the shapes crashes actually leave:
// a torn tail (half-written final record) is truncated at the first bad
// checksum, duplicated records replay idempotently by LSN, and a crash
// mid-checkpoint or mid-rotation falls back to the previous consistent
// state. It refuses to guess only when the directory itself is damaged
// (missing MANIFEST, corrupt checkpoint). The internal/faultfs harness
// proves the contract differentially: the crash suite kills a
// fault-injecting filesystem at every operation boundary and byte watermark
// and requires the reopened index to answer byte-identically to an oracle
// holding exactly the acknowledged prefix; FuzzWALReplay feeds arbitrary
// bytes as the log and requires recovery to never panic, never error, and
// never replay past the first corruption.
//
// When a log write or fsync fails persistently, the index degrades rather
// than lies: the failed mutation (and every later one) returns an error
// wrapping ErrWAL, reads keep serving, and WALStats reports the sticky
// error. The serving layer (below) maps this to read-only mode — writes
// answer 503, /healthz and /metrics advertise the degraded state.
//
// # Serving
//
// Package repro/serve and cmd/sdserver put the engine behind an HTTP/JSON
// API (POST /v1/topk, /v1/batch, /v1/insert, DELETE /v1/points/{id}, plus
// /healthz, /metrics in Prometheus text format, and /statz). The serving
// layer coalesces concurrently-arriving single queries into BatchTopK
// calls (bounded window and batch size, riding the pooled batch path
// above), answers 429 with Retry-After when its bounded admission queue
// fills, and enforces per-request deadlines through TopKContext /
// TopKAppendContext: the aggregation loop polls the context's Done channel
// once per scheduling step, so a cancelled or timed-out query stops within
// one adaptive batch and releases every pooled buffer. POST /v1/admin/swap
// loads a persisted index and publishes it with one atomic pointer store —
// in-flight queries finish on the index they grabbed, so no request ever
// observes a torn index — and SIGTERM drains gracefully (healthz flips to
// 503, in-flight requests finish, then the process exits). A hot-query
// result cache (serve.WithResultCache) sits between admission and the
// engine: entries are keyed on canonical query bytes and versioned by the
// snapshot epoch every publish bumps, so swap/compaction invalidation is
// free and hits stay byte-identical to the live engine; a HeavyKeeper
// frequency sketch admits only the traffic's hot head, and the hit path
// allocates nothing. /statz and /metrics expose the hit rate. The JSON
// wire format is documented in serve/wire.go, next to this binary format.
//
// Scan, SDIndex, TA, and ShardedIndex break score ties by ascending dataset
// ID, so their answers are byte-identical to each other; BRS and PE resolve
// exact ties at the k-th rank arbitrarily but return the same score
// sequence. The internal/enginetest differential harness (and a native fuzz
// target) enforces both contracts against an exhaustive-scan oracle.
//
// The baselines the paper evaluates against are included, sharing the same
// Query/Result API, so applications can benchmark on their own data:
// sequential scan, the adapted Threshold Algorithm (TA), branch-and-bound
// ranked search over an R*-tree (BRS), and progressive exploration (PE).
//
// # Cluster
//
// Past one machine (or one failure domain), sdserver nodes form leader
// groups: a WAL-backed leader streams its snapshot and live WAL tail over
// /v1/repl/{manifest,segment,wal}, and followers (sdserver -follow, or
// serve.NewFollower) bootstrap from the snapshot, apply WAL records
// idempotently by LSN, serve reads from their own copy, and refuse writes
// with a 503 + Retry-After + X-SD-Leader hint. A checkpoint that retires
// log files a lagging follower still needs — or a leader restart into a
// new history, detected by its source token — triggers a clean
// re-bootstrap, never a silent fork.
//
// cmd/sdrouter (package serve/router) is the cluster front door: the ID
// space folds onto partitions by rendezvous hashing over stable partition
// names, reads scatter to every partition and merge exactly (the SD-score
// of a point depends on no other point, so the router's answers are
// byte-identical to a single node over all rows), and writes route to the
// owning leader under router-assigned cluster-unique IDs, which make
// ambiguous-write retries provably idempotent (duplicate 200 / conflict
// 409); inserts bound for one partition are forwarded in ID-allocation
// order, since a node admits a caller-assigned ID only above its current
// ID space. Failures are handled per try: capped jittered backoff, p99-
// triggered hedged reads against replicas, consecutive-failure ejection
// with half-open recovery, and failover from a dead leader to the
// freshest replica — gated by per-shard LSN write watermarks, so a stale
// follower never answers a read that misses an acknowledged write. When
// a whole partition is unreachable reads fail fast with 503; the
// ?allow_partial=1 flag opts into the survivors' merged answer, marked
// "degraded":true — incomplete answers are opt-in and marked, never
// silent. Steady-state reads load-balance by power-of-two-choices over
// the leader and every replica whose cached LSN vector covers the write
// watermark (Config.NoReadBalance pins reads to the leader).
//
// Leader loss heals itself: when a leader stays ejected past
// Config.PromoteAfter the router promotes the most caught-up live
// replica — one whose LSN vector covers the write watermark and every
// other live replica — via POST /v1/admin/promote, fenced by a
// generation number allocated strictly above any the cluster has
// reported. Writes are stamped with the topology's generation and nodes
// refuse mismatches, so a deposed leader can't take writes; when it
// rejoins still claiming leadership at a stale generation, the router
// demotes it into a follower of the current leader. A follower needs
// WithPromotionWALDir to be promotable — an undurable node never
// becomes a leader. The internal/netfault chaos suite (asymmetric
// partitions, mid-body TCP resets, throttling, hard kills) enforces all
// of this differentially against a single-node oracle, under the race
// detector in CI — including a hard leader kill healed by promotion
// with no acked-write loss and no split-brain.
//
// # Performance
//
// A query is snapshotted, planned, scheduled, and batch-executed. The
// snapshot is one atomic load (see above). The planner resolves
// the query's shape (active dimensions, roles, zero weights) to the
// surviving subproblem set, memoized per shape in a per-engine plan cache
// (WithPlanCache to disable; QueryStats.PlanCacheHits to observe). Under
// the default PairAdaptive strategy the planner also picks the
// repulsive↔attractive bijection per query by zipping the active
// dimensions of each role in descending weight order over a pre-built
// pair-tree grid — the guided mapping of the paper's future-work
// discussion, measured within ~1.5% of the per-query optimal bijection's
// sorted-access floor on the evaluation workload.
//
// The Threshold-Algorithm aggregation is driven by a bound-driven
// scheduler: each step bulk-fetches from the subproblem — across every
// sealed segment — whose frontier bound is falling fastest per sorted
// access, with sibling bounds, float pads, and retirement tracked per
// segment and the termination threshold re-checked after every batch
// (WithScheduler(SchedRoundRobin) restores the paper's rotation as an
// ablation). Every subproblem implements a bulk fetch that drains whole
// runs and returns its post-batch frontier bound for free. Together,
// plan-time pairing and bound-driven scheduling cut sorted accesses on
// the default 50k × 6 workload by ~32% against the round-robin in-order
// baseline, at answers byte-identical to the scan oracle (property-tested
// and fuzzed).
//
// All per-query state — weights, bounds, descent rates, emission buffers,
// the seen bitset, stream cursors and heaps, the result collector, the
// plan scratch — lives in per-engine sync.Pool contexts. SDIndex.TopKAppend
// and ShardedIndex.TopKAppend append results into a caller-reused buffer;
// on a compacted index (one sealed segment, empty memtable — the steady
// state background compaction converges to) they perform zero heap
// allocations per query, which alloc_test.go asserts with
// testing.AllocsPerRun. The TopK convenience forms allocate only the
// returned slice.
//
// Below the scheduler, sealed segments store their coordinates in
// dimension-major columns and every bulk scoring site — packed leaf
// scans, random-access rescores, the memtable sweep — runs through
// 8-wide unrolled kernels over those columns (internal/simd; the sdsimd
// build tag swaps in AVX assembly on amd64, bit-identical to the pure-Go
// kernels and gated so in CI). WithColumnWidth(32) stores scoring
// columns as float32 — half the memory traffic — while keeping answers
// exact: candidates within the narrow columns' error bound of the
// pruning threshold are rescored against the float64 originals.
//
// WithWorkers additionally parallelizes a single query across its sealed
// segments: each segment's subproblems run as an independent task on the
// index's worker pool, cooperating through a shared prune floor (the
// best k-th score any task has proven), and the per-segment top-k sets
// merge deterministically — answers stay byte-identical to the
// sequential schedule, enforced by the differential suites and a
// scheduler-equivalence property test. The fan-out only helps when there
// are multiple sealed segments (sustained insert traffic, a segment row
// cap via WithMaxSegmentRows, or a freshly loaded multi-segment file)
// and spare cores; on one core, or on the compacted single-segment
// steady state, the sequential path is already optimal. QueryStats
// remains accurate in total but its per-counter split becomes
// timing-dependent under the fan-out.
//
// Reproduce the numbers with `go test -bench 'BenchmarkTopK$' -benchmem .`
// or regenerate the machine-readable trajectory with
// `go run ./cmd/sdbench -json BENCH_sdbench.json`; the committed
// BENCH_sdbench.json is the baseline future changes compare against, and
// `-baseline BENCH_sdbench.json` turns a fresh report into a regression
// gate (CI's bench-smoke job runs exactly that).
//
// # Quick start
//
//	data := [][]float64{ ... }            // n × d
//	roles := []sdquery.Role{sdquery.Repulsive, sdquery.Attractive}
//	idx, err := sdquery.NewSDIndex(data, roles)
//	...
//	res, err := idx.TopK(sdquery.Query{
//		Point:   []float64{0.3, 0.7},
//		K:       5,
//		Roles:   roles,
//		Weights: []float64{1, 1},
//	})
//
// See examples/ for runnable scenarios: the zoology example from the paper's
// introduction, online-advertising publisher selection, and chemical
// scaffold hopping.
package sdquery
