// Package sdquery answers top-k queries over a mixture of attractive and
// repulsive dimensions — a Go implementation of Ranu & Singh, "Answering
// Top-k Queries Over a Mixture of Attractive and Repulsive Dimensions",
// PVLDB 5(3), 2011.
//
// An SD-Query compares every database point p to a user-supplied query
// object q under the non-monotonic scoring function
//
//	SD-score(p, q) = Σ_{i∈D} α_i·|p_i − q_i|  −  Σ_{j∈S} β_j·|p_j − q_j|
//
// where D holds the repulsive dimensions (distance is rewarded: "different
// habitat", "lower price") and S the attractive ones (closeness is rewarded:
// "same phylogeny", "similar hit rate"). Classic top-k machinery assumes
// monotonic scoring and cannot index this function; this package provides
// the paper's isoline-projection indexes:
//
//   - SDIndex — the general engine (§4 + §5): per-pair 2D projection trees
//     with multi-angle bounds, 1D bidirectional lists for unpaired
//     dimensions, and Threshold-Algorithm aggregation. k and all weights are
//     chosen at query time.
//   - Top1Index — the specialized 2D structure (§3) for workloads where k
//     and the weights are fixed up front: O(log n) queries over precomputed
//     envelope regions.
//   - ShardedIndex — the parallel execution layer: the dataset is
//     partitioned across P shards (WithShards, default GOMAXPROCS), each
//     backed by an independent SD-Index engine; TopK fans out to per-shard
//     goroutines on a reusable worker pool (WithWorkers) and a bounded
//     k-way merge recovers the exact global answer, byte-identical to the
//     single engine's. BatchTopK pipelines whole query batches across the
//     (query × shard) grid, and Insert/Remove lock only the shard they
//     touch, so reads and writes proceed concurrently.
//
// Scan, SDIndex, TA, and ShardedIndex break score ties by ascending dataset
// ID, so their answers are byte-identical to each other; BRS and PE resolve
// exact ties at the k-th rank arbitrarily but return the same score
// sequence. The internal/enginetest differential harness (and a native fuzz
// target) enforces both contracts against an exhaustive-scan oracle.
//
// The baselines the paper evaluates against are included, sharing the same
// Query/Result API, so applications can benchmark on their own data:
// sequential scan, the adapted Threshold Algorithm (TA), branch-and-bound
// ranked search over an R*-tree (BRS), and progressive exploration (PE).
//
// # Performance
//
// The query hot path is batched and allocation-free in steady state. Every
// subproblem of the §5 aggregation (2D projection streams and 1D list
// iterators) implements a bulk fetch that drains whole runs — the winning
// merge stream while it stays ahead of the runner-up, whole leaf-cursor
// runs below it, and both list frontiers — and the Threshold-Algorithm
// round-robin fetches an adaptive batch per subproblem (starting at 1 and
// doubling toward the leaf cap while the subproblem's frontier stays above
// the prune line). All per-query state — weights, bounds, emission buffers,
// the seen bitset, stream cursors and heaps, the result collector — lives
// in per-engine sync.Pool contexts.
//
// SDIndex.TopKAppend and ShardedIndex.TopKAppend append results into a
// caller-reused buffer; with warm pools they perform zero heap allocations
// per query, which alloc_test.go asserts with testing.AllocsPerRun. The
// TopK convenience forms allocate only the returned slice. Batched answers
// are byte-identical to the unbatched (and scan-oracle) answers; the
// differential harness and fuzz corpus enforce this.
//
// Reproduce the numbers with `go test -bench 'BenchmarkTopK$' -benchmem .`
// or regenerate the machine-readable trajectory with
// `go run ./cmd/sdbench -json BENCH_sdbench.json`; the committed
// BENCH_sdbench.json is the baseline future changes compare against.
//
// # Quick start
//
//	data := [][]float64{ ... }            // n × d
//	roles := []sdquery.Role{sdquery.Repulsive, sdquery.Attractive}
//	idx, err := sdquery.NewSDIndex(data, roles)
//	...
//	res, err := idx.TopK(sdquery.Query{
//		Point:   []float64{0.3, 0.7},
//		K:       5,
//		Roles:   roles,
//		Weights: []float64{1, 1},
//	})
//
// See examples/ for runnable scenarios: the zoology example from the paper's
// introduction, online-advertising publisher selection, and chemical
// scaffold hopping.
package sdquery
