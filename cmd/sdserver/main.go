// Command sdserver serves SD-Queries over HTTP: the production front end of
// the engine (package serve), with request coalescing, a hot-query result
// cache, backpressure, and zero-downtime index swaps.
//
// Serve a CSV dataset (roles as one letter per column — a/r/i):
//
//	sdserver -addr :8080 -data points.csv -roles rrraaa
//
// Serve a persisted index (cmd/sdquery -save, or a previous sdserver's
// swap source) with no rebuild:
//
//	sdserver -addr :8080 -index points.sdx
//
// Query it:
//
//	curl -s localhost:8080/v1/topk -d '{"point":[0.1,0.2,0.3,0.4,0.5,0.6],
//	    "k":5,"roles":["r","r","r","a","a","a"]}'
//
// Swap the serving index live (queries keep flowing; no request observes a
// torn index):
//
//	curl -s localhost:8080/v1/admin/swap -d '{"path":"tomorrow.sdx"}'
//
// Serve durably: every insert/delete is group-committed to a per-shard
// write-ahead log before its 200, and a restart pointed at the same
// directory recovers every acknowledged write (torn tails included):
//
//	sdserver -addr :8080 -data points.csv -roles rrraaa -wal-dir /var/lib/sd
//	sdserver -addr :8080 -wal-dir /var/lib/sd   # later: recover, no CSV
//
// Serve as a read replica of another sdserver — bootstrap from the leader's
// snapshot, tail its WAL live, answer reads from the local copy, and refuse
// writes with a leader hint (the leader needs -wal-dir; replication streams
// ride the WAL):
//
//	sdserver -addr :8081 -follow http://leader:8080
//
// On SIGINT/SIGTERM the server drains gracefully: /healthz flips to 503 so
// load balancers stop routing, in-flight requests finish (bounded by
// -drain-timeout), then the WAL is synced and sealed and the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	sdquery "repro"
	"repro/internal/dataset"
	"repro/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		path    = flag.String("data", "", "CSV file of points (required unless -index)")
		header  = flag.Bool("header", false, "CSV has a header row")
		rolesF  = flag.String("roles", "", "one letter per column: a/r/i (required unless -index)")
		indexF  = flag.String("index", "", "serve a persisted index from this file instead of building from CSV")
		shards  = flag.Int("shards", 0, "data shards (≤ 0 selects GOMAXPROCS)")
		workers = flag.Int("workers", 0, "worker-pool size (≤ 0 selects GOMAXPROCS)")

		walDir   = flag.String("wal-dir", "", "write-ahead-log directory: recover the durable index living there, or (with -data) create one and log every write")
		syncF    = flag.String("sync", "always", "WAL fsync policy: always (fsync before each 200), interval (timer), never (rotation/shutdown only)")
		syncIntF = flag.Duration("sync-interval", 100*time.Millisecond, "fsync cadence under -sync interval")

		window   = flag.Duration("coalesce-window", 500*time.Microsecond, "how long the first query of a batch waits for company (0 batches only what is queued; negative disables coalescing)")
		maxBatch = flag.Int("max-batch", 64, "maximum queries per coalesced batch")
		queue    = flag.Int("queue", 1024, "admission queue depth for /v1/topk (full queue answers 429)")
		execs    = flag.Int("executors", 0, "concurrent coalesced batches (≤ 0 selects GOMAXPROCS)")
		timeout  = flag.Duration("timeout", 0, "per-request deadline enforced mid-query (0 disables)")
		drainT   = flag.Duration("drain-timeout", 15*time.Second, "maximum graceful-drain wait on SIGTERM")

		cache    = flag.Bool("cache", true, "hot-query result cache with heavy-hitter admission")
		cacheCap = flag.Int("cache-capacity", 1024, "maximum resident cached answers")

		follow     = flag.String("follow", "", "run as a read replica of this leader URL (excludes -data/-index/-wal-dir)")
		followInt  = flag.Duration("follow-interval", 200*time.Millisecond, "replication pull cadence under -follow")
		promoteDir = flag.String("promote-wal-dir", "", "directory where this node opens its own write-ahead log if a router promotes it to leader (one fresh subdirectory per promotion)")
	)
	flag.Parse()

	opts := []serve.Option{
		serve.WithCoalesceWindow(*window),
		serve.WithPromotionWALDir(*promoteDir),
		serve.WithMaxBatch(*maxBatch),
		serve.WithQueueDepth(*queue),
		serve.WithRequestTimeout(*timeout),
		serve.WithResultCache(*cache),
		serve.WithCacheCapacity(*cacheCap),
		serve.WithLoadOptions(sdquery.WithWorkers(*workers)),
	}
	if *execs > 0 {
		opts = append(opts, serve.WithExecutors(*execs))
	}
	var srv *serve.Server
	if *follow != "" {
		if *path != "" || *indexF != "" || *walDir != "" {
			fatal(fmt.Errorf("-follow excludes -data, -index, and -wal-dir: a replica's only data source is its leader"))
		}
		var err error
		srv, err = serve.NewFollower(*follow, append(opts, serve.WithFollowInterval(*followInt))...)
		if err != nil {
			fatal(fmt.Errorf("follow %s: %w", *follow, err))
		}
	} else {
		sync, err := parseSync(*syncF)
		if err != nil {
			fatal(err)
		}
		idx, err := buildIndex(*path, *header, *rolesF, *indexF, *shards, *workers,
			*walDir, sync, *syncIntF)
		if err != nil {
			fatal(err)
		}
		srv = serve.New(idx, opts...)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe(*addr) }()
	if *follow != "" {
		fmt.Fprintf(os.Stderr, "sdserver: following %s, serving %d points on %s\n",
			*follow, srv.Index().Len(), *addr)
	} else {
		fmt.Fprintf(os.Stderr, "sdserver: serving %d points on %s\n", srv.Index().Len(), *addr)
	}

	select {
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Fprintf(os.Stderr, "sdserver: draining (up to %s)\n", *drainT)
		dctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		// Shutdown already force-synced the WAL; Close flushes the group-commit
		// queue and seals the log files so the next Open replays a clean tail.
		if cl, ok := srv.Index().(interface{ Close() }); ok {
			cl.Close()
		}
		fmt.Fprintln(os.Stderr, "sdserver: drained")
	}
}

func parseSync(s string) (sdquery.SyncPolicy, error) {
	switch s {
	case "always":
		return sdquery.SyncAlways, nil
	case "interval":
		return sdquery.SyncInterval, nil
	case "never":
		return sdquery.SyncNever, nil
	}
	return 0, fmt.Errorf("-sync %q: use always, interval, or never", s)
}

// buildIndex constructs the serving index from a CSV, a persisted file, or —
// when -wal-dir is set — a durable directory: recovered if it already holds a
// MANIFEST, created from the CSV otherwise.
func buildIndex(path string, header bool, rolesF, indexF string, shards, workers int,
	walDir string, sync sdquery.SyncPolicy, syncInt time.Duration) (serve.Index, error) {
	if walDir != "" {
		if indexF != "" {
			return nil, fmt.Errorf("-wal-dir and -index are mutually exclusive (a durable directory is its own persistence)")
		}
		if _, err := os.Stat(walDir + "/MANIFEST"); err == nil {
			fmt.Fprintf(os.Stderr, "sdserver: recovering durable index from %s\n", walDir)
			eng, err := sdquery.Open(walDir,
				sdquery.WithWorkers(workers),
				sdquery.WithSyncPolicy(sync), sdquery.WithSyncInterval(syncInt))
			if err != nil {
				return nil, err
			}
			return serve.AsIndex(eng)
		}
	}
	if indexF != "" {
		f, err := os.Open(indexF)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		eng, err := sdquery.Load(f, sdquery.WithWorkers(workers))
		if err != nil {
			return nil, err
		}
		return serve.AsIndex(eng)
	}
	if path == "" || rolesF == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	data, err := dataset.ReadCSV(f, header)
	f.Close()
	if err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("no data rows in %s", path)
	}
	roles := make([]sdquery.Role, len(rolesF))
	for i, c := range strings.ToLower(rolesF) {
		switch c {
		case 'a':
			roles[i] = sdquery.Attractive
		case 'r':
			roles[i] = sdquery.Repulsive
		case 'i':
			roles[i] = sdquery.Ignored
		default:
			return nil, fmt.Errorf("role %q: use a, r, or i", c)
		}
	}
	sdOpts := []sdquery.SDOption{
		sdquery.WithShards(shards), sdquery.WithWorkers(workers),
	}
	if walDir != "" {
		sdOpts = append(sdOpts, sdquery.WithWAL(walDir),
			sdquery.WithSyncPolicy(sync), sdquery.WithSyncInterval(syncInt))
	}
	return sdquery.NewShardedIndex(data, roles, sdOpts...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdserver:", err)
	os.Exit(1)
}
