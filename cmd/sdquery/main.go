// Command sdquery answers ad-hoc SD-Queries over a CSV file or a persisted
// index.
//
// Roles are given as one letter per column: a (attractive), r (repulsive),
// i (ignored). Weights default to 1 for every active column.
//
//	sdquery -data points.csv -roles rrraaa -point 0.1,0.2,0.3,0.4,0.5,0.6 -k 5
//	sdquery -data points.csv -header -roles ra -point 10,250 -weights 1,0.5 -engine scan
//
// An index built from CSV can be persisted with -save and served later with
// -index, skipping both the CSV parse and the index build entirely (roles
// come from the file):
//
//	sdquery -data points.csv -roles rrraaa -save points.sdx
//	sdquery -index points.sdx -point 0.1,0.2,0.3,0.4,0.5,0.6 -k 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sdquery "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		path    = flag.String("data", "", "CSV file of points (required unless -index)")
		header  = flag.Bool("header", false, "CSV has a header row")
		rolesF  = flag.String("roles", "", "one letter per column: a/r/i (required unless -index)")
		pointF  = flag.String("point", "", "query point, comma-separated (required unless only -save)")
		weightF = flag.String("weights", "", "weights, comma-separated (default all 1)")
		k       = flag.Int("k", 5, "answer size")
		engine  = flag.String("engine", "sd", "sd | sharded | scan | ta | brs | pe")
		saveF   = flag.String("save", "", "persist the built index (engine sd or sharded) to this file")
		indexF  = flag.String("index", "", "serve a persisted index from this file instead of building from CSV")
	)
	flag.Parse()
	if *indexF == "" && (*path == "" || *rolesF == "") {
		flag.Usage()
		os.Exit(2)
	}
	if *pointF == "" && (*indexF != "" || *saveF == "") {
		flag.Usage()
		os.Exit(2)
	}

	var (
		eng   sdquery.Engine
		data  [][]float64
		roles []sdquery.Role
		err   error
	)
	if *indexF != "" {
		// Serve the persisted index: no CSV parse, no index build. Roles
		// come from the file; -data/-roles/-engine/-save are ignored.
		f, err := os.Open(*indexF)
		if err != nil {
			fatal(err)
		}
		eng, err = sdquery.Load(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		roles = loadedRoles(eng)
	} else {
		f, err := os.Open(*path)
		if err != nil {
			fatal(err)
		}
		data, err = dataset.ReadCSV(f, *header)
		f.Close()
		if err != nil {
			fatal(err)
		}
		if len(data) == 0 {
			fatal(fmt.Errorf("no data rows in %s", *path))
		}
		roles = make([]sdquery.Role, len(*rolesF))
		for i, c := range strings.ToLower(*rolesF) {
			switch c {
			case 'a':
				roles[i] = sdquery.Attractive
			case 'r':
				roles[i] = sdquery.Repulsive
			case 'i':
				roles[i] = sdquery.Ignored
			default:
				fatal(fmt.Errorf("role %q: use a, r, or i", c))
			}
		}
		switch *engine {
		case "sd":
			eng, err = sdquery.NewSDIndex(data, roles)
		case "sharded":
			eng, err = sdquery.NewShardedIndex(data, roles)
		case "scan":
			eng, err = sdquery.NewScan(data)
		case "ta":
			eng, err = sdquery.NewTA(data)
		case "brs":
			eng, err = sdquery.NewBRS(data, 0)
		case "pe":
			eng, err = sdquery.NewPE(data)
		default:
			err = fmt.Errorf("unknown engine %q", *engine)
		}
		if err != nil {
			fatal(err)
		}
		if *saveF != "" {
			if err := saveIndex(eng, *saveF); err != nil {
				fatal(err)
			}
			fmt.Fprintf(os.Stderr, "sdquery: saved %d-point index to %s\n", eng.Len(), *saveF)
			if *pointF == "" {
				return
			}
		}
	}

	point, err := parseFloats(*pointF)
	if err != nil {
		fatal(err)
	}
	weights := make([]float64, len(roles))
	for i := range weights {
		weights[i] = 1
	}
	if *weightF != "" {
		if weights, err = parseFloats(*weightF); err != nil {
			fatal(err)
		}
	}

	res, err := eng.TopK(sdquery.Query{Point: point, K: *k, Roles: roles, Weights: weights})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rank  row      score\n")
	for i, r := range res {
		if data != nil {
			fmt.Printf("%-4d  %-7d  %+.6g    %v\n", i+1, r.ID, r.Score, data[r.ID])
		} else {
			fmt.Printf("%-4d  %-7d  %+.6g\n", i+1, r.ID, r.Score)
		}
	}
}

// saveIndex persists an index that supports it.
func saveIndex(eng sdquery.Engine, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var saveErr error
	switch e := eng.(type) {
	case *sdquery.SDIndex:
		saveErr = e.Save(f)
	case *sdquery.ShardedIndex:
		saveErr = e.Save(f)
	default:
		saveErr = fmt.Errorf("-save supports the sd and sharded engines only")
	}
	if err := f.Close(); saveErr == nil {
		saveErr = err
	}
	return saveErr
}

// loadedRoles extracts the build-time roles a persisted index carries.
func loadedRoles(eng sdquery.Engine) []sdquery.Role {
	switch e := eng.(type) {
	case *sdquery.SDIndex:
		return e.Roles()
	case *sdquery.ShardedIndex:
		return e.Roles()
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdquery:", err)
	os.Exit(1)
}
