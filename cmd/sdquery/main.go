// Command sdquery answers ad-hoc SD-Queries over a CSV file.
//
// Roles are given as one letter per column: a (attractive), r (repulsive),
// i (ignored). Weights default to 1 for every active column.
//
//	sdquery -data points.csv -roles rrraaa -point 0.1,0.2,0.3,0.4,0.5,0.6 -k 5
//	sdquery -data points.csv -header -roles ra -point 10,250 -weights 1,0.5 -engine scan
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	sdquery "repro"
	"repro/internal/dataset"
)

func main() {
	var (
		path    = flag.String("data", "", "CSV file of points (required)")
		header  = flag.Bool("header", false, "CSV has a header row")
		rolesF  = flag.String("roles", "", "one letter per column: a/r/i (required)")
		pointF  = flag.String("point", "", "query point, comma-separated (required)")
		weightF = flag.String("weights", "", "weights, comma-separated (default all 1)")
		k       = flag.Int("k", 5, "answer size")
		engine  = flag.String("engine", "sd", "sd | scan | ta | brs | pe")
	)
	flag.Parse()
	if *path == "" || *rolesF == "" || *pointF == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	data, err := dataset.ReadCSV(f, *header)
	if err != nil {
		fatal(err)
	}
	if len(data) == 0 {
		fatal(fmt.Errorf("no data rows in %s", *path))
	}

	roles := make([]sdquery.Role, len(*rolesF))
	for i, c := range strings.ToLower(*rolesF) {
		switch c {
		case 'a':
			roles[i] = sdquery.Attractive
		case 'r':
			roles[i] = sdquery.Repulsive
		case 'i':
			roles[i] = sdquery.Ignored
		default:
			fatal(fmt.Errorf("role %q: use a, r, or i", c))
		}
	}
	point, err := parseFloats(*pointF)
	if err != nil {
		fatal(err)
	}
	weights := make([]float64, len(roles))
	for i := range weights {
		weights[i] = 1
	}
	if *weightF != "" {
		if weights, err = parseFloats(*weightF); err != nil {
			fatal(err)
		}
	}

	var eng sdquery.Engine
	switch *engine {
	case "sd":
		eng, err = sdquery.NewSDIndex(data, roles)
	case "scan":
		eng, err = sdquery.NewScan(data)
	case "ta":
		eng, err = sdquery.NewTA(data)
	case "brs":
		eng, err = sdquery.NewBRS(data, 0)
	case "pe":
		eng, err = sdquery.NewPE(data)
	default:
		err = fmt.Errorf("unknown engine %q", *engine)
	}
	if err != nil {
		fatal(err)
	}

	res, err := eng.TopK(sdquery.Query{Point: point, K: *k, Roles: roles, Weights: weights})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("rank  row      score\n")
	for i, r := range res {
		fmt.Printf("%-4d  %-7d  %+.6g    %v\n", i+1, r.ID, r.Score, data[r.ID])
	}
}

func parseFloats(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("parse %q: %w", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdquery:", err)
	os.Exit(1)
}
