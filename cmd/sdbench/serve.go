package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	sdquery "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/serve"
)

// Serve load workload: spin the HTTP serving layer up in-process, drive it
// with a closed-loop client pool over real TCP connections, and report
// end-to-end request latency (mean/p50/p99), throughput, and the mean
// coalesced batch size. This is the end-to-end figure the serving layer is
// accountable for — engine time plus coalescing delay plus HTTP overhead —
// and the coalesced_batch_mean > 1 expectation is what proves the admission
// layer actually batches under concurrent load (the diff gate enforces it
// against the committed baseline).

// serveClients is the closed-loop client count: enough concurrency to keep
// batches forming on small CI machines without drowning them.
func serveClients() int {
	c := 2 * runtime.GOMAXPROCS(0)
	if c < 8 {
		c = 8
	}
	return c
}

// runServeLoad builds the default evaluation workload, serves it, and
// hammers it with serveClients() closed-loop clients for totalOps requests.
func runServeLoad(scale float64, queryCount int, seed int64, totalOps int) (workloadJSON, error) {
	var w workloadJSON
	n := int(50_000 * scale)
	if n < 1000 {
		n = 1000
	}
	if queryCount <= 0 {
		queryCount = 64
	}
	const dims, attractive, k = 6, 3, 5
	data := dataset.Generate(dataset.Uniform, n, dims, seed)
	specs, roles := bench.BatchSpecs(dims, attractive, k, queryCount, seed+1)

	idx, err := sdquery.NewShardedIndex(data, roles)
	if err != nil {
		return w, err
	}
	defer idx.Close()
	srv := serve.New(idx,
		serve.WithCoalesceWindow(time.Millisecond),
		serve.WithQueueDepth(8192))
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return w, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/v1/topk"

	// Pre-marshal every request body: the harness measures the server, not
	// the client's JSON encoder.
	bodies := make([][]byte, len(specs))
	for i, sp := range specs {
		names := make([]string, dims)
		for d, r := range sp.Roles {
			names[d] = r.String()
		}
		bodies[i] = []byte(fmt.Sprintf(
			`{"point":%s,"k":%d,"roles":%s,"weights":%s}`,
			jsonFloats(sp.Point), sp.K, jsonStrings(names), jsonFloats(sp.Weights)))
	}

	clients := serveClients()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	doOne := func(body []byte) (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		var sink [512]byte
		for {
			if _, err := resp.Body.Read(sink[:]); err != nil {
				break
			}
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("serve load: status %d", resp.StatusCode)
		}
		return time.Since(t0), nil
	}
	// Warm-up: connections, engine pools, plan caches.
	for i := 0; i < clients; i++ {
		if _, err := doOne(bodies[i%len(bodies)]); err != nil {
			return w, err
		}
	}

	perClient := totalOps / clients
	if perClient < 1 {
		perClient = 1
	}
	lats := make([][]int64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			mine := make([]int64, 0, perClient)
			for i := 0; i < perClient; i++ {
				d, err := doOne(bodies[(c*perClient+i)%len(bodies)])
				if err != nil {
					errs[c] = err
					return
				}
				mine = append(mine, d.Nanoseconds())
			}
			lats[c] = mine
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return w, err
		}
	}

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum int64
	for _, l := range all {
		sum += l
	}
	st := srv.Statz()
	w.N, w.Dims, w.K, w.Queries = n, dims, k, queryCount
	w.NsPerOp = sum / int64(len(all))
	w.P50NsPerOp = all[len(all)/2]
	w.P99NsPerOp = all[len(all)*99/100]
	w.AllocsPerOp = -1 // cross-goroutine HTTP path: no per-op attribution
	w.BytesPerOp = -1
	w.QPS = float64(len(all)) / wall.Seconds()
	w.CoalescedBatchMean = st.CoalescedBatchMean
	return w, nil
}

// runServeStandalone is the human-facing `sdbench -serve` mode.
func runServeStandalone(scale float64, queryCount int, seed int64) {
	prev := runtime.GOMAXPROCS(0)
	if runtime.NumCPU() > prev {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
	}
	w, err := runServeLoad(scale, queryCount, seed, 4096)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdbench: serve load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("== serve load: n=%d, d=%d, k=%d, %d closed-loop clients, GOMAXPROCS=%d\n",
		w.N, w.Dims, w.K, serveClients(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-22s %12.0f\n", "qps", w.QPS)
	fmt.Printf("%-22s %12.2f\n", "mean latency (ms)", float64(w.NsPerOp)/1e6)
	fmt.Printf("%-22s %12.2f\n", "p50 latency (ms)", float64(w.P50NsPerOp)/1e6)
	fmt.Printf("%-22s %12.2f\n", "p99 latency (ms)", float64(w.P99NsPerOp)/1e6)
	fmt.Printf("%-22s %12.2f\n", "mean coalesced batch", w.CoalescedBatchMean)
}

func jsonFloats(vals []float64) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(']')
	return b.String()
}

func jsonStrings(vals []string) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q", v)
	}
	b.WriteByte(']')
	return b.String()
}
