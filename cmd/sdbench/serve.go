package main

import (
	"bytes"
	"fmt"
	mrand "math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/serve"
)

// Serve load workload: spin the HTTP serving layer up in-process, drive it
// with a closed-loop client pool over real TCP connections, and report
// end-to-end request latency (mean/p50/p99), throughput, and the mean
// coalesced batch size. This is the end-to-end figure the serving layer is
// accountable for — engine time plus coalescing delay plus HTTP overhead —
// and the coalesced_batch_mean > 1 expectation is what proves the admission
// layer actually batches under concurrent load (the diff gate enforces it
// against the committed baseline).

// serveClients is the closed-loop client count: enough concurrency to keep
// batches forming on small CI machines without drowning them.
func serveClients() int {
	c := 2 * runtime.GOMAXPROCS(0)
	if c < 8 {
		c = 8
	}
	return c
}

// hotCacheCapacity is the serve/hot workload's result-cache bound:
// deliberately smaller than the query-set size, so the HeavyKeeper
// admission sketch has real work to do — the Zipf head must earn and keep
// its cache slots against the long tail, exactly the production shape the
// cache is built for.
const hotCacheCapacity = 32

// runServeLoad builds the default evaluation workload, serves it, and
// hammers it with serveClients() closed-loop clients for totalOps requests.
// With hot=true it becomes the serve/hot workload: the result cache is
// enabled and clients draw queries from a Zipf distribution instead of
// round-robin, reporting the achieved cache hit rate and the measured
// allocation count of the cache hit path.
func runServeLoad(scale float64, queryCount int, seed int64, totalOps int, hot bool) (workloadJSON, error) {
	var w workloadJSON
	n := int(50_000 * scale)
	if n < 1000 {
		n = 1000
	}
	if queryCount <= 0 {
		queryCount = 64
	}
	const dims, attractive, k = 6, 3, 5
	data := dataset.Generate(dataset.Uniform, n, dims, seed)
	specs, roles := bench.BatchSpecs(dims, attractive, k, queryCount, seed+1)

	idx, err := sdquery.NewShardedIndex(data, roles)
	if err != nil {
		return w, err
	}
	defer idx.Close()
	srvOpts := []serve.Option{
		serve.WithCoalesceWindow(time.Millisecond),
		serve.WithQueueDepth(8192),
	}
	if hot {
		srvOpts = append(srvOpts, serve.WithResultCache(true), serve.WithCacheCapacity(hotCacheCapacity))
	}
	srv := serve.New(idx, srvOpts...)
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return w, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	url := "http://" + ln.Addr().String() + "/v1/topk"

	// Pre-marshal every request body: the harness measures the server, not
	// the client's JSON encoder.
	bodies := make([][]byte, len(specs))
	for i, sp := range specs {
		names := make([]string, dims)
		for d, r := range sp.Roles {
			names[d] = r.String()
		}
		bodies[i] = []byte(fmt.Sprintf(
			`{"point":%s,"k":%d,"roles":%s,"weights":%s}`,
			jsonFloats(sp.Point), sp.K, jsonStrings(names), jsonFloats(sp.Weights)))
	}

	clients := serveClients()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients,
		MaxIdleConnsPerHost: clients,
	}}
	doOne := func(body []byte) (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		var sink [512]byte
		for {
			if _, err := resp.Body.Read(sink[:]); err != nil {
				break
			}
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("serve load: status %d", resp.StatusCode)
		}
		return time.Since(t0), nil
	}
	// Warm-up: connections, engine pools, plan caches.
	for i := 0; i < clients; i++ {
		if _, err := doOne(bodies[i%len(bodies)]); err != nil {
			return w, err
		}
	}

	perClient := totalOps / clients
	if perClient < 1 {
		perClient = 1
	}
	lats := make([][]int64, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Query selection: round-robin for the uncached baseline (every
			// query equally hot — the cache-hostile shape), Zipf for the hot
			// workload (a heavy head over a long tail — the cache-friendly
			// production shape). Per-client seeded generators keep runs
			// reproducible.
			var zipf *mrand.Zipf
			if hot {
				zipf = mrand.NewZipf(mrand.New(mrand.NewSource(seed+int64(c))), 1.3, 1, uint64(len(bodies)-1))
			}
			<-start
			mine := make([]int64, 0, perClient)
			for i := 0; i < perClient; i++ {
				bi := (c*perClient + i) % len(bodies)
				if zipf != nil {
					bi = int(zipf.Uint64())
				}
				d, err := doOne(bodies[bi])
				if err != nil {
					errs[c] = err
					return
				}
				mine = append(mine, d.Nanoseconds())
			}
			lats[c] = mine
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	for _, err := range errs {
		if err != nil {
			return w, err
		}
	}

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum int64
	for _, l := range all {
		sum += l
	}
	st := srv.Statz()
	w.N, w.Dims, w.K, w.Queries = n, dims, k, queryCount
	w.NsPerOp = sum / int64(len(all))
	w.P50NsPerOp = all[len(all)/2]
	w.P99NsPerOp = all[len(all)*99/100]
	w.AllocsPerOp = -1 // cross-goroutine HTTP path: no per-op attribution
	w.BytesPerOp = -1
	w.QPS = float64(len(all)) / wall.Seconds()
	w.CoalescedBatchMean = st.CoalescedBatchMean
	if hot {
		w.CacheHitRate = st.CacheHitRate
		// The hit path's allocation count IS attributable: ProbeCache runs
		// the exact serving fast path (pooled key buffer, canonical encode,
		// hash, versioned lookup) in-process. Reported through AllocsPerOp so
		// the diff gate's exact zero-alloc rule covers it — the Zipf head is
		// resident after the load, so probing the hottest query measures a
		// hit, and the committed baseline of 0 makes any allocation a
		// regression.
		hottest := sdquery.Query{Point: specs[0].Point, K: specs[0].K, Roles: specs[0].Roles, Weights: specs[0].Weights}
		if !srv.ProbeCache(hottest) {
			return w, fmt.Errorf("serve/hot: Zipf-hottest query not resident in the cache after %d ops (hit rate %.2f)",
				len(all), st.CacheHitRate)
		}
		w.AllocsPerOp = int64(testing.AllocsPerRun(500, func() {
			srv.ProbeCache(hottest)
		}))
	}
	return w, nil
}

// runServeStandalone is the human-facing `sdbench -serve` mode.
func runServeStandalone(scale float64, queryCount int, seed int64) {
	prev := runtime.GOMAXPROCS(0)
	if runtime.NumCPU() > prev {
		runtime.GOMAXPROCS(runtime.NumCPU())
		defer runtime.GOMAXPROCS(prev)
	}
	w, err := runServeLoad(scale, queryCount, seed, 4096, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sdbench: serve load: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("== serve load: n=%d, d=%d, k=%d, %d closed-loop clients, GOMAXPROCS=%d\n",
		w.N, w.Dims, w.K, serveClients(), runtime.GOMAXPROCS(0))
	fmt.Printf("%-22s %12.0f\n", "qps", w.QPS)
	fmt.Printf("%-22s %12.2f\n", "mean latency (ms)", float64(w.NsPerOp)/1e6)
	fmt.Printf("%-22s %12.2f\n", "p50 latency (ms)", float64(w.P50NsPerOp)/1e6)
	fmt.Printf("%-22s %12.2f\n", "p99 latency (ms)", float64(w.P99NsPerOp)/1e6)
	fmt.Printf("%-22s %12.2f\n", "mean coalesced batch", w.CoalescedBatchMean)
}

func jsonFloats(vals []float64) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(']')
	return b.String()
}

func jsonStrings(vals []string) string {
	var b bytes.Buffer
	b.WriteByte('[')
	for i, v := range vals {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q", v)
	}
	b.WriteByte(']')
	return b.String()
}
