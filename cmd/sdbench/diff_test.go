package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, b benchJSON) string {
	t.Helper()
	raw, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestDiffAgainstBaseline pins the CI gate's rules: pass within tolerance,
// fail on >20% ns/op growth, fail on any allocation in a zero-alloc
// workload, fail on dropped workloads, and refuse scale/schema mismatches.
func TestDiffAgainstBaseline(t *testing.T) {
	base := benchJSON{
		Schema: benchJSONSchema,
		Scale:  1,
		Workloads: []workloadJSON{
			{Name: "topk/sdindex-append", NsPerOp: 1_000_000, AllocsPerOp: 0, FetchedMean: 2000},
			{Name: "topk/sdindex", NsPerOp: 1_000_000, AllocsPerOp: 4},
			{Name: "batch/sharded-gomaxprocs", NsPerOp: 1_000_000, AllocsPerOp: 70, FetchedMean: 2000},
			{Name: "serve/hot", NsPerOp: 1_000_000, AllocsPerOp: 0, CacheHitRate: 0.8},
			{Name: "cluster/failover", NsPerOp: 1_000_000, AllocsPerOp: -1, Availability: 0.999, WriteUnavailableMs: 800},
		},
	}
	path := writeBaseline(t, base)

	ok := benchJSON{Schema: benchJSONSchema, Scale: 1, Workloads: []workloadJSON{
		{Name: "topk/sdindex-append", NsPerOp: 1_150_000, AllocsPerOp: 0, FetchedMean: 2040},       // +15% ns, +2% fetched: within tolerance
		{Name: "topk/sdindex", NsPerOp: 900_000, AllocsPerOp: 6},                                   // allocs gated only at baseline 0
		{Name: "batch/sharded-gomaxprocs", NsPerOp: 1_000_000, AllocsPerOp: 70, FetchedMean: 9000}, // sharded counters follow CPU count: exempt
		{Name: "serve/hot", NsPerOp: 1_400_000, AllocsPerOp: 0, CacheHitRate: 0.5},                 // noisy latency gate, hit rate above half of baseline
		{Name: "cluster/failover", NsPerOp: 1_400_000, AllocsPerOp: -1,
			Availability: 0.996, WriteUnavailableMs: 4_500}, // both absolute gates: above the floor, under the ceiling
		{Name: "topk/new-workload", NsPerOp: 1, AllocsPerOp: 99}, // extra workloads are fine
	}}
	if err := diffAgainstBaseline(path, ok); err != nil {
		t.Fatalf("within-tolerance report rejected: %v", err)
	}

	for _, tc := range []struct {
		name string
		mut  func(*benchJSON)
		want string
	}{
		{"ns regression", func(b *benchJSON) { b.Workloads[0].NsPerOp = 1_250_000 }, "exceeds baseline"},
		{"alloc regression", func(b *benchJSON) { b.Workloads[0].AllocsPerOp = 1 }, "guarantees 0"},
		{"fetched regression", func(b *benchJSON) { b.Workloads[0].FetchedMean = 2200 }, "hardware-independent"},
		{"queries mismatch", func(b *benchJSON) { b.Workloads[0].Queries = 128 }, "not comparable"},
		{"hit rate collapse", func(b *benchJSON) { b.Workloads[3].CacheHitRate = 0.3 }, "cache_hit_rate"},
		{"hit path allocates", func(b *benchJSON) { b.Workloads[3].AllocsPerOp = 2 }, "guarantees 0"},
		{"availability floor", func(b *benchJSON) { b.Workloads[4].Availability = 0.985 }, "below the 0.99 floor"},
		{"availability collapse", func(b *benchJSON) { b.Workloads[4].Availability = 0.991 }, "collapsed from baseline"},
		{"write-unavailability ceiling", func(b *benchJSON) { b.Workloads[4].WriteUnavailableMs = 30_000 }, "ceiling"},
		{"missing workload", func(b *benchJSON) { b.Workloads = b.Workloads[1:] }, "missing from report"},
		{"scale mismatch", func(b *benchJSON) { b.Scale = 0.25 }, "not comparable"},
		{"schema mismatch", func(b *benchJSON) { b.Schema = "sdbench/v1" }, "regenerate the baseline"},
	} {
		fresh := benchJSON{Schema: benchJSONSchema, Scale: 1,
			Workloads: append([]workloadJSON(nil), ok.Workloads...)}
		tc.mut(&fresh)
		err := diffAgainstBaseline(path, fresh)
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDiffScalingCollapseGate pins the self-referential gate on the
// intra-query parallelism curve: a flat scaling-4 on a multi-core machine
// fails even when the baseline (committed from a small machine) is flat
// too, and a flat curve below the CPU floor passes — one core cannot scale.
func TestDiffScalingCollapseGate(t *testing.T) {
	// Baseline as committed from a 1-CPU container: a physically flat curve.
	base := benchJSON{Schema: benchJSONSchema, Scale: 1, NumCPU: 1, Workloads: []workloadJSON{
		{Name: "topk/scaling-1", NsPerOp: 4_000_000},
		{Name: "topk/scaling-4", NsPerOp: 4_000_000},
	}}
	path := writeBaseline(t, base)
	fresh := func(cpu int, s1, s4 int64) benchJSON {
		return benchJSON{Schema: benchJSONSchema, Scale: 1, NumCPU: cpu, Workloads: []workloadJSON{
			{Name: "topk/scaling-1", NsPerOp: s1},
			{Name: "topk/scaling-4", NsPerOp: s4},
		}}
	}
	if err := diffAgainstBaseline(path, fresh(1, 4_000_000, 4_000_000)); err != nil {
		t.Fatalf("flat curve on a 1-CPU machine rejected: %v", err)
	}
	if err := diffAgainstBaseline(path, fresh(8, 4_000_000, 1_900_000)); err != nil {
		t.Fatalf("2.1x speedup on an 8-CPU machine rejected: %v", err)
	}
	err := diffAgainstBaseline(path, fresh(8, 4_000_000, 4_000_000))
	if err == nil {
		t.Fatal("flat curve on an 8-CPU machine accepted")
	}
	if !strings.Contains(err.Error(), "not scaling") {
		t.Fatalf("flat-curve error %q does not mention the scaling gate", err)
	}
	if err := diffAgainstBaseline(path, fresh(4, 4_000_000, 2_100_000)); err == nil {
		t.Fatal("1.9x speedup on a 4-CPU machine accepted")
	}
}
