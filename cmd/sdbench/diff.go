package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// nsRegressionTolerance is the fractional ns/op increase a workload may show
// against the committed baseline before the diff fails. 20% absorbs
// machine-to-machine and run-to-run noise while still catching real
// regressions; the allocs/op gate below is exact, because the zero-alloc
// guarantee is an invariant, not a measurement.
const nsRegressionTolerance = 0.20

// mixedNsRegressionTolerance is the looser ns/op gate for the mixed
// read/write workload and the HTTP serve load workload: their latencies are
// measured under concurrent churn (a writer goroutine plus the background
// compactor, or a closed-loop client pool over real sockets), so run-to-run
// variance is inherently higher than the read-only workloads'. 50% still
// catches the failure modes these workloads exist to guard — queries
// serializing behind the write path, or the serving layer stalling its
// admission pipeline — which are multiples, not percentages.
const mixedNsRegressionTolerance = 0.50

// noisyWorkload reports whether a workload gets the looser latency gate.
func noisyWorkload(name string) bool {
	return strings.HasPrefix(name, "mixed") || strings.HasPrefix(name, "serve") ||
		strings.HasPrefix(name, "cluster")
}

// availabilityFloor is the absolute availability the cluster failover
// workload must clear regardless of the baseline: at least 99% of reads
// answered across a window containing a hard leader kill. Failing it means
// failover is broken in a way no latency tolerance expresses.
const availabilityFloor = 0.99

// availabilitySlack is the run-to-run noise allowance against the committed
// baseline (half a percent of reads).
const availabilitySlack = 0.005

// writeUnavailableCeilingMs is the absolute cap on the cluster failover
// workload's write-unavailability window: the hard leader kill must be healed
// by automated replica promotion within this many milliseconds, or writes to
// the killed partition are effectively down. The workload runs with
// PromoteAfter at 750ms, so a healthy promotion lands well under a second;
// 5s absorbs a slow machine's probe/health-check jitter while still failing
// a promotion path that silently stopped firing (the workload reports a
// 30,000ms sentinel when writes never recover).
const writeUnavailableCeilingMs = 5000

// scalingSpeedupFloor is the minimum topk/scaling-1 ÷ topk/scaling-4
// speedup the fresh report must show on a machine with at least
// scalingGateMinCPU CPUs. Unlike every other gate it compares the fresh
// report against itself, not against the baseline: a baseline committed
// from a small machine records a flat curve (scaling on one core is
// physically impossible), and diffing flat-vs-flat would let intra-query
// parallelism silently die on the multi-core machines it exists for. Below
// the CPU floor the gate is off — the curve is legitimately flat there.
const scalingSpeedupFloor = 2.0

// scalingGateMinCPU is the CPU count at which the scaling gate arms: with
// four cores and four claimers over eight segments, a healthy fan-out
// clears 2× with room to spare.
const scalingGateMinCPU = 4

// fetchedRegressionTolerance gates the hardware-independent signal: on
// single-engine workloads the sorted-access count is a deterministic
// function of the seeded workload and the algorithm, identical on every
// machine, so it catches algorithmic regressions that timing noise would
// hide. The small headroom only keeps a deliberate off-by-a-few change from
// blocking CI; any real change to fetch behaviour must regenerate the
// baseline in the same commit.
const fetchedRegressionTolerance = 0.05

// diffAgainstBaseline loads the committed baseline report and fails (with
// every violation listed) when the fresh report regresses:
//
//   - a workload present in the baseline is missing from the fresh report
//     (renames must update the baseline, not silently drop coverage);
//   - ns/op grew by more than nsRegressionTolerance;
//   - a workload that was allocation-free in the baseline allocates;
//   - a single-engine ("topk/…") workload's fetched_mean grew by more than
//     fetchedRegressionTolerance — the deterministic, hardware-independent
//     regression signal. Sharded workloads are exempt: their counters sum
//     over a shard count that follows the machine's CPU count.
//
// The scales must match — ns/op across different dataset sizes is
// meaningless — and so must the schema.
func diffAgainstBaseline(baselinePath string, fresh benchJSON) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchJSON
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	if base.Schema != fresh.Schema {
		return fmt.Errorf("baseline schema %q != report schema %q: regenerate the baseline", base.Schema, fresh.Schema)
	}
	if base.Scale != fresh.Scale {
		return fmt.Errorf("baseline scale %g != report scale %g: ns/op is not comparable across scales", base.Scale, fresh.Scale)
	}
	byName := make(map[string]workloadJSON, len(fresh.Workloads))
	for _, w := range fresh.Workloads {
		byName[w.Name] = w
	}
	var violations []string
	for _, b := range base.Workloads {
		f, ok := byName[b.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("workload %q: present in baseline, missing from report", b.Name))
			continue
		}
		// Batch ns/op and the per-query counter means both scale with the
		// query count, so a -queries mismatch would fake (or mask) a
		// regression exactly like a scale mismatch.
		if b.Queries != f.Queries {
			violations = append(violations, fmt.Sprintf(
				"workload %q: %d queries, baseline has %d: not comparable", b.Name, f.Queries, b.Queries))
			continue
		}
		nsTol := nsRegressionTolerance
		if noisyWorkload(b.Name) {
			nsTol = mixedNsRegressionTolerance
		}
		if limit := float64(b.NsPerOp) * (1 + nsTol); float64(f.NsPerOp) > limit {
			violations = append(violations, fmt.Sprintf(
				"workload %q: ns/op %d exceeds baseline %d by more than %.0f%%",
				b.Name, f.NsPerOp, b.NsPerOp, nsTol*100))
		}
		// Tail-latency gate for workloads that report percentiles (mixed
		// read/write): the p99 regressing while the mean holds is exactly
		// the "writer stalls a few unlucky queries" signature.
		if b.P99NsPerOp > 0 && f.P99NsPerOp > 0 {
			if limit := float64(b.P99NsPerOp) * (1 + mixedNsRegressionTolerance); float64(f.P99NsPerOp) > limit {
				violations = append(violations, fmt.Sprintf(
					"workload %q: p99 ns/op %d exceeds baseline %d by more than %.0f%%",
					b.Name, f.P99NsPerOp, b.P99NsPerOp, mixedNsRegressionTolerance*100))
			}
		}
		// AllocsPerOp < 0 marks an unattributable measurement (concurrent
		// writer sharing the global counters) — no alloc invariant to gate.
		if b.AllocsPerOp == 0 && f.AllocsPerOp > 0 {
			violations = append(violations, fmt.Sprintf(
				"workload %q: %d allocs/op, baseline guarantees 0", b.Name, f.AllocsPerOp))
		}
		// Coalescing gate: a baseline that batched concurrent traffic
		// (mean coalesced batch size > 1) must keep batching. A collapse to
		// ≤ 1 means every request executes its own fan-out again — the
		// admission layer has silently stopped doing its job, whatever the
		// latency numbers say.
		if b.CoalescedBatchMean > 1 && f.CoalescedBatchMean <= 1 {
			violations = append(violations, fmt.Sprintf(
				"workload %q: coalesced_batch_mean %.2f, baseline %.2f — request coalescing stopped batching",
				b.Name, f.CoalescedBatchMean, b.CoalescedBatchMean))
		}
		// Cache gate: a baseline that achieved a real hit rate under Zipf
		// traffic must not collapse to under half of it. Hit-rate noise
		// run-to-run is small (the workload is seeded); a halving means the
		// cache stopped admitting, started invalidating everything, or the
		// sketch stopped tracking the head — all silent correctness-adjacent
		// failures the latency tolerances are too loose to catch.
		if b.CacheHitRate > 0 && f.CacheHitRate < b.CacheHitRate*0.5 {
			violations = append(violations, fmt.Sprintf(
				"workload %q: cache_hit_rate %.3f collapsed from baseline %.3f",
				b.Name, f.CacheHitRate, b.CacheHitRate))
		}
		// Group-commit gate: a durable workload whose baseline shows commit
		// windows being shared (fsyncs/op well below one mutation) must keep
		// sharing them. fsyncs/op drifting up to ~1 means every writer fsyncs
		// alone again — the group-commit batcher has silently stopped
		// batching, which the loose latency tolerances won't catch. Exact
		// batching ratios are timing-dependent, so the gate allows a doubling
		// plus absolute headroom before failing; it also fails in the other
		// direction, on a durable-always baseline whose fresh report stops
		// fsyncing entirely.
		if b.FsyncsPerOp > 0 {
			if limit := b.FsyncsPerOp*2 + 0.1; f.FsyncsPerOp > limit {
				violations = append(violations, fmt.Sprintf(
					"workload %q: fsyncs/op %.3f vs baseline %.3f — group commit stopped collapsing fsyncs",
					b.Name, f.FsyncsPerOp, b.FsyncsPerOp))
			}
			if strings.HasSuffix(b.Name, "durable-always") && f.FsyncsPerOp == 0 {
				violations = append(violations, fmt.Sprintf(
					"workload %q: 0 fsyncs under SyncAlways, baseline %.3f — writes are no longer durable",
					b.Name, b.FsyncsPerOp))
			}
		}
		// Availability gate: the failover workload must keep ~every read
		// answered across the leader kill — both absolutely (the 99% floor)
		// and relative to the committed baseline (no silent erosion). A drop
		// here means retries, ejection, or replica failover stopped masking
		// the kill, whatever the latency numbers say.
		if b.Availability > 0 {
			if f.Availability < availabilityFloor {
				violations = append(violations, fmt.Sprintf(
					"workload %q: availability %.4f below the %.2f floor — failover is not masking node loss",
					b.Name, f.Availability, availabilityFloor))
			} else if f.Availability < b.Availability-availabilitySlack {
				violations = append(violations, fmt.Sprintf(
					"workload %q: availability %.4f collapsed from baseline %.4f",
					b.Name, f.Availability, b.Availability))
			}
		}
		// Write-unavailability gate: absolute, like the availability floor.
		// The baseline carrying the field arms the gate; the fresh number is
		// judged against the fixed ceiling, not the baseline, because the
		// quantity is mostly the PromoteAfter constant plus jitter — a
		// lucky-fast baseline must not ratchet the requirement.
		if b.WriteUnavailableMs > 0 && f.WriteUnavailableMs > writeUnavailableCeilingMs {
			violations = append(violations, fmt.Sprintf(
				"workload %q: write-unavailability window %.0fms exceeds the %dms ceiling — automated promotion is not healing the killed partition",
				b.Name, f.WriteUnavailableMs, writeUnavailableCeilingMs))
		}
		if strings.HasPrefix(b.Name, "topk/") && b.FetchedMean > 0 {
			if limit := b.FetchedMean * (1 + fetchedRegressionTolerance); f.FetchedMean > limit {
				violations = append(violations, fmt.Sprintf(
					"workload %q: fetched_mean %.1f exceeds baseline %.1f by more than %.0f%% (hardware-independent)",
					b.Name, f.FetchedMean, b.FetchedMean, fetchedRegressionTolerance*100))
			}
		}
	}
	// Scaling-collapse gate: on a multi-core machine the intra-query
	// parallelism curve must show real speedup. See scalingSpeedupFloor for
	// why this checks the fresh report against itself.
	if fresh.NumCPU >= scalingGateMinCPU {
		s1, ok1 := byName["topk/scaling-1"]
		s4, ok4 := byName["topk/scaling-4"]
		if ok1 && ok4 && s4.NsPerOp > 0 &&
			float64(s1.NsPerOp) < float64(s4.NsPerOp)*scalingSpeedupFloor {
			violations = append(violations, fmt.Sprintf(
				"workload %q: %.2f× over topk/scaling-1 (%d vs %d ns/op) on a %d-CPU machine, want ≥ %.1f× — intra-query parallelism is not scaling",
				"topk/scaling-4", float64(s1.NsPerOp)/float64(s4.NsPerOp),
				s4.NsPerOp, s1.NsPerOp, fresh.NumCPU, scalingSpeedupFloor))
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("benchmark regression vs %s:\n  %s", baselinePath, strings.Join(violations, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "sdbench: no regression vs %s (%d workloads, ns tolerance %.0f%%)\n",
		baselinePath, len(base.Workloads), nsRegressionTolerance*100)
	return nil
}
