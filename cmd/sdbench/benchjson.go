package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
)

// benchJSON is the machine-readable benchmark report written by -json: the
// perf trajectory future PRs compare against (BENCH_sdbench.json at the repo
// root holds the committed baseline). Absolute numbers are
// hardware-dependent; the trajectory of ns/op, the allocs/op invariants, and
// the work counters (fetched/scored/rounds, which are hardware-independent)
// are the regression signal. The -baseline flag diffs a fresh report against
// a committed one and fails on regression — see diff.go for the gate rules.
type benchJSON struct {
	Schema    string         `json:"schema"`
	Generated string         `json:"generated"`
	GoVersion string         `json:"go"`
	NumCPU    int            `json:"num_cpu"`
	Scale     float64        `json:"scale"`
	Workloads []workloadJSON `json:"workloads"`
}

type workloadJSON struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Dims    int    `json:"dims"`
	K       int    `json:"k"`
	Queries int    `json:"queries"`
	// GOMAXPROCS is the effective value the workload ran under. Parallel
	// workloads elevate it to NumCPU for their measurement, so a report
	// generated in a GOMAXPROCS-restricted environment still exercises —
	// and records — the parallelism it claims to measure.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Per-op figures from testing.Benchmark; for batch workloads one op is
	// the whole batch. AllocsPerOp is -1 when the workload cannot attribute
	// allocations to the measured path (mixed read/write workloads run a
	// concurrent writer whose allocations land in the same global
	// counters); the diff gate skips negative baselines.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Latency percentiles over individually timed queries — reported by the
	// mixed read/write workload, where tail latency under concurrent write
	// churn (memtable scans, segment stacks, background compaction) is the
	// signal a mean would hide.
	P50NsPerOp int64 `json:"p50_ns_per_op,omitempty"`
	P99NsPerOp int64 `json:"p99_ns_per_op,omitempty"`
	// WriterOps counts the remove+insert pairs the concurrent writer
	// completed during the measurement window (mixed workloads only) —
	// context for judging the write pressure behind the latency figures.
	WriterOps int64 `json:"writer_ops,omitempty"`
	// QPS is the end-to-end throughput of the serve load workload: requests
	// completed per wall second by the closed-loop client pool. For the
	// durable mixed workloads it is the writers' durable-mutation throughput.
	QPS float64 `json:"qps,omitempty"`
	// FsyncsPerOp is the durable mixed workloads' WAL fsync count per
	// acknowledged mutation. Under SyncAlways with concurrent writers, group
	// commit keeps it well below 1 (one fsync acknowledges a whole commit
	// window); the diff gate fails if it collapses toward one-fsync-per-write.
	FsyncsPerOp float64 `json:"fsyncs_per_op,omitempty"`
	// CoalescedBatchMean is the serve workload's mean coalesced batch size —
	// queries per BatchTopK call executed by the admission layer. > 1 means
	// request coalescing is actually batching concurrent traffic; the diff
	// gate fails if it collapses back to 1.
	CoalescedBatchMean float64 `json:"coalesced_batch_mean,omitempty"`
	// Availability is the cluster failover workload's fraction of reads
	// answered 200 across a measurement window that contains a hard leader
	// kill. The router's retry/failover machinery is what holds it at ~1.0;
	// the diff gate fails if it drops below 0.99 or collapses against the
	// committed baseline.
	Availability float64 `json:"availability,omitempty"`
	// WriteUnavailableMs is the cluster failover workload's write-unavailability
	// window: milliseconds from the hard leader kill to the last failed write
	// probe, after which writes to the killed partition succeed again via the
	// router's automated replica promotion. The diff gate fails if it exceeds
	// an absolute ceiling — promotion that never fires shows up here, not in
	// read availability.
	WriteUnavailableMs float64 `json:"write_unavailable_ms,omitempty"`
	// CacheHitRate is the serve/hot workload's achieved result-cache hit
	// rate (hits / lookups) under Zipf traffic. The diff gate fails if it
	// collapses to under half the baseline: the cache silently admitting
	// nothing (or invalidating everything) halves no latency number as
	// loudly as it should.
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`
	// Work counters averaged over the query set. For sharded workloads the
	// counters are summed across shards first, so scheduler and plan-cache
	// wins stay visible end-to-end.
	FetchedMean     float64 `json:"fetched_mean,omitempty"`
	ScoredMean      float64 `json:"scored_mean,omitempty"`
	SubproblemsMean float64 `json:"subproblems_mean,omitempty"`
	RoundsMean      float64 `json:"rounds_mean,omitempty"`
	// PlanCacheHitRate is hits / (queries × engines consulted): 1.0 means
	// every query after the warm-up answered from a cached plan.
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate,omitempty"`
}

const benchJSONSchema = "sdbench/v9"

// statsSource is the work-counter surface shared by SDIndex and
// ShardedIndex.
type statsSource interface {
	TopKWithStats(sdquery.Query) ([]sdquery.Result, sdquery.QueryStats, error)
}

// collectStats runs the query set once and averages the counters.
// cacheDenom is the hit-rate denominator per query (engines consulted: 1 for
// a single engine, the shard count for a sharded index).
func collectStats(src statsSource, queries []sdquery.Query, cacheDenom int) (w workloadJSON, err error) {
	var total sdquery.QueryStats
	for _, q := range queries {
		_, st, err := src.TopKWithStats(q)
		if err != nil {
			return w, err
		}
		total.Fetched += st.Fetched
		total.Scored += st.Scored
		total.Subproblems += st.Subproblems
		total.Rounds += st.Rounds
		total.PlanCacheHits += st.PlanCacheHits
	}
	qn := float64(len(queries))
	w.FetchedMean = float64(total.Fetched) / qn
	w.ScoredMean = float64(total.Scored) / qn
	w.SubproblemsMean = float64(total.Subproblems) / qn
	w.RoundsMean = float64(total.Rounds) / qn
	w.PlanCacheHitRate = float64(total.PlanCacheHits) / (qn * float64(cacheDenom))
	return w, nil
}

// runMixedRW measures single-query latency percentiles under sustained
// concurrent write churn. The writer cycles over a working set of 5% of the
// build rows, removing and reinserting each as fast as the engine admits
// writes; every query is timed individually so the report captures the
// tail, not just the mean. Queries run through TopKAppend with a reused
// buffer — the same zero-allocation path the read-only workloads measure —
// but AllocsPerOp is reported as -1: the concurrent writer (and the
// background compactor it keeps busy) shares the process-wide counters, so
// per-query attribution would be fiction.
func runMixedRW(data [][]float64, roles []sdquery.Role, queries []sdquery.Query) (workloadJSON, error) {
	var w workloadJSON
	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		return w, err
	}
	churn := len(data) / 20
	if churn < 1 {
		churn = 1
	}
	// Slots hold the current dataset ID of each churned row; removal and
	// reinsertion keep the live count constant at len(data).
	slots := make([]int, churn)
	rows := make([][]float64, churn)
	for i := range slots {
		slots[i] = len(data) - churn + i
		rows[i] = data[slots[i]]
	}
	stop := make(chan struct{})
	var writerOps int64
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i = (i + 1) % churn {
			select {
			case <-stop:
				return
			default:
			}
			idx.Remove(slots[i])
			id, err := idx.Insert(rows[i])
			if err != nil {
				// A dead writer silently turns this into a read-only
				// measurement; fail the workload instead.
				writerErr = err
				return
			}
			slots[i] = id
			writerOps++
		}
	}()

	const measureOps = 512
	var buf []sdquery.Result
	for i := 0; i < 32; i++ { // warm pools under churn
		if buf, err = idx.TopKAppend(buf[:0], queries[i%len(queries)]); err != nil {
			close(stop)
			wg.Wait()
			return w, err
		}
	}
	lats := make([]int64, 0, measureOps)
	for i := 0; i < measureOps; i++ {
		q := queries[i%len(queries)]
		t0 := time.Now()
		buf, err = idx.TopKAppend(buf[:0], q)
		lat := time.Since(t0)
		if err != nil {
			close(stop)
			wg.Wait()
			return w, err
		}
		lats = append(lats, lat.Nanoseconds())
	}
	close(stop)
	wg.Wait()
	if writerErr != nil {
		return w, fmt.Errorf("mixed-rw writer died after %d ops: %w", writerOps, writerErr)
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum int64
	for _, l := range lats {
		sum += l
	}
	w.NsPerOp = sum / int64(len(lats))
	w.P50NsPerOp = lats[len(lats)/2]
	w.P99NsPerOp = lats[len(lats)*99/100]
	w.AllocsPerOp = -1
	w.BytesPerOp = -1
	w.WriterOps = writerOps
	return w, nil
}

// runDurableMixedRW measures the write-ahead log's cost, and group commit's
// recovery of it, under the given sync policy. Four writer goroutines churn
// durable remove+insert pairs through a WAL-backed sharded index on the real
// filesystem while the read path is timed exactly as in runMixedRW; the
// report carries read p50/p99 (the WAL must be write-path-only — these track
// the log-less mixed-rw figures), writer throughput as QPS, and the WAL
// fsync count per acknowledged mutation. Under SyncAlways the concurrent
// writers share commit windows, so fsyncs/op sits well below 1; that
// collapse ratio, not the absolute latency, is the hardware-independent
// signal the diff gate protects.
func runDurableMixedRW(data [][]float64, roles []sdquery.Role, queries []sdquery.Query,
	policy sdquery.SyncPolicy) (workloadJSON, error) {
	var w workloadJSON
	dir, err := os.MkdirTemp("", "sdbench-wal-*")
	if err != nil {
		return w, err
	}
	defer os.RemoveAll(dir)
	idx, err := sdquery.NewShardedIndex(data, roles,
		sdquery.WithShards(2),
		sdquery.WithWAL(dir+"/idx"),
		sdquery.WithSyncPolicy(policy),
		sdquery.WithSyncInterval(2*time.Millisecond))
	if err != nil {
		return w, err
	}
	defer idx.Close()

	const writers = 4
	churn := len(data) / 20 / writers
	if churn < 1 {
		churn = 1
	}
	stop := make(chan struct{})
	var writerOps atomic.Int64
	writerErrs := make([]error, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			slots := make([]int, churn)
			rows := make([][]float64, churn)
			for i := range slots {
				slots[i] = len(data) - (g+1)*churn + i
				rows[i] = data[slots[i]]
			}
			for i := 0; ; i = (i + 1) % churn {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := idx.RemoveDurable(slots[i]); err != nil {
					writerErrs[g] = err
					return
				}
				id, err := idx.Insert(rows[i])
				if err != nil {
					writerErrs[g] = err
					return
				}
				slots[i] = id
				writerOps.Add(2) // remove + insert, each individually durable
			}
		}(g)
	}

	const measureOps = 512
	var buf []sdquery.Result
	for i := 0; i < 32; i++ { // warm pools under durable churn
		if buf, err = idx.TopKAppend(buf[:0], queries[i%len(queries)]); err != nil {
			close(stop)
			wg.Wait()
			return w, err
		}
	}
	opsBefore := writerOps.Load()
	fsyncsBefore := idx.WALStats().Fsyncs
	wall := time.Now()
	lats := make([]int64, 0, measureOps)
	for i := 0; i < measureOps; i++ {
		q := queries[i%len(queries)]
		t0 := time.Now()
		buf, err = idx.TopKAppend(buf[:0], q)
		lat := time.Since(t0)
		if err != nil {
			close(stop)
			wg.Wait()
			return w, err
		}
		lats = append(lats, lat.Nanoseconds())
	}
	elapsed := time.Since(wall)
	ops := writerOps.Load() - opsBefore
	fsyncs := idx.WALStats().Fsyncs - fsyncsBefore
	close(stop)
	wg.Wait()
	for g, werr := range writerErrs {
		if werr != nil {
			return w, fmt.Errorf("durable writer %d died: %w", g, werr)
		}
	}

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum int64
	for _, l := range lats {
		sum += l
	}
	w.NsPerOp = sum / int64(len(lats))
	w.P50NsPerOp = lats[len(lats)/2]
	w.P99NsPerOp = lats[len(lats)*99/100]
	w.AllocsPerOp = -1
	w.BytesPerOp = -1
	w.WriterOps = ops
	if s := elapsed.Seconds(); s > 0 && ops > 0 {
		w.QPS = float64(ops) / s
	}
	if ops > 0 {
		w.FsyncsPerOp = float64(fsyncs) / float64(ops)
	}
	return w, nil
}

// runBenchJSON measures the core micro-workloads and writes the JSON report,
// optionally gating against a committed baseline. Workload sizes follow the
// default evaluation shape (uniform data, mixed roles, U(0,1) weights)
// scaled by -scale.
func runBenchJSON(path, baselinePath string, scale float64, queryCount int, seed int64) error {
	n := int(50_000 * scale)
	if n < 1000 {
		n = 1000
	}
	if queryCount <= 0 {
		queryCount = 64
	}
	const dims, attractive, k = 6, 3, 5
	data := dataset.Generate(dataset.Uniform, n, dims, seed)
	specs, roles := bench.BatchSpecs(dims, attractive, k, queryCount, seed+1)
	queries := make([]sdquery.Query, len(specs))
	for i, sp := range specs {
		queries[i] = sdquery.Query{Point: sp.Point, K: sp.K, Roles: sp.Roles, Weights: sp.Weights}
	}

	report := benchJSON{
		Schema:    benchJSONSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     scale,
	}
	add := func(name string, r testing.BenchmarkResult, stats workloadJSON, procs int) {
		stats.Name = name
		stats.N, stats.Dims, stats.K, stats.Queries = n, dims, k, len(queries)
		stats.GOMAXPROCS = procs
		stats.NsPerOp = r.NsPerOp()
		stats.AllocsPerOp = r.AllocsPerOp()
		stats.BytesPerOp = r.AllocedBytesPerOp()
		report.Workloads = append(report.Workloads, stats)
	}

	// Single-query hot path: TopKAppend into a reused buffer (the
	// zero-allocation guarantee), plus the work counters of the query set —
	// under the default bound-driven scheduler and under the round-robin
	// ablation, so the scheduling delta is part of the committed trajectory.
	for _, mode := range []struct {
		name  string
		sched sdquery.SchedulerMode
	}{
		{"topk/sdindex-append", sdquery.SchedBoundDriven},
		{"topk/sdindex-append-roundrobin", sdquery.SchedRoundRobin},
	} {
		idx, err := sdquery.NewSDIndex(data, roles, sdquery.WithScheduler(mode.sched))
		if err != nil {
			return err
		}
		stats, err := collectStats(idx, queries, 1)
		if err != nil {
			return err
		}
		var buf []sdquery.Result
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = idx.TopKAppend(buf[:0], queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		add(mode.name, r, stats, runtime.GOMAXPROCS(0))
	}

	// The allocating convenience API, for the conversion-cost trajectory.
	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		return err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.TopK(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("topk/sdindex", r, workloadJSON{}, runtime.GOMAXPROCS(0))

	// Intra-query segment parallelism scaling curve: the identical
	// multi-segment index (a row cap splits the build into 8 sealed
	// segments) measured sequentially (scaling-1) and with each query's
	// segments fanned out across 2, 4, and 8 claimers (the caller plus
	// width−1 pool workers). Each width pins GOMAXPROCS to
	// min(width, NumCPU) for its whole lifetime so the curve is a genuine
	// CPU-scaling measurement, and every parallel width's answers are
	// checked byte-identical to the sequential run before being timed. Work
	// counters are omitted: on the parallel path the shared prune floor
	// makes fetch depth timing-dependent, and the fetched_mean gate would
	// trip on pure scheduling noise. The diff gate instead checks the curve
	// itself — on a ≥ 4-CPU machine, scaling-4 must beat scaling-1 by ≥ 2×.
	segCap := (n + 7) / 8
	var seqAnswers [][]sdquery.Result
	for _, width := range []int{1, 2, 4, 8} {
		if err := func() error {
			prev := runtime.GOMAXPROCS(0)
			procs := width
			if procs > runtime.NumCPU() {
				procs = runtime.NumCPU()
			}
			if procs != prev {
				runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev) // restored on every path, errors included
			}
			opts := []sdquery.SDOption{sdquery.WithMaxSegmentRows(segCap)}
			if width > 1 {
				opts = append(opts, sdquery.WithWorkers(width-1))
			}
			pidx, err := sdquery.NewSDIndex(data, roles, opts...)
			if err != nil {
				return err
			}
			defer pidx.Close()
			if width == 1 {
				seqAnswers = make([][]sdquery.Result, len(queries))
				for i, q := range queries {
					if seqAnswers[i], err = pidx.TopK(q); err != nil {
						return err
					}
				}
			} else {
				for i, q := range queries {
					got, err := pidx.TopK(q)
					if err != nil {
						return err
					}
					if len(got) != len(seqAnswers[i]) {
						return fmt.Errorf("topk/scaling-%d: query %d returned %d results, sequential run has %d",
							width, i, len(got), len(seqAnswers[i]))
					}
					for rank := range got {
						if got[rank] != seqAnswers[i][rank] {
							return fmt.Errorf("topk/scaling-%d: query %d rank %d diverges from the sequential answer",
								width, i, rank)
						}
					}
				}
			}
			var buf []sdquery.Result
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					var err error
					buf, err = pidx.TopKAppend(buf[:0], queries[i%len(queries)])
					if err != nil {
						b.Fatal(err)
					}
				}
			})
			add(fmt.Sprintf("topk/scaling-%d", width), r, workloadJSON{}, procs)
			return nil
		}(); err != nil {
			return err
		}
	}

	// Sharded batch pipeline: one op = the whole batch, at 1 shard (pure
	// overhead measurement) and at NumCPU shards. The parallel workload
	// elevates GOMAXPROCS to NumCPU for its whole lifetime (build, warm-up,
	// stats, measurement): a harness invoked under GOMAXPROCS=1 previously
	// built a 1-shard "gomaxprocs" index and recorded timings identical to
	// the 1-shard run, silently measuring nothing.
	for _, shards := range []int{1, 0} {
		if err := func() error {
			prev := runtime.GOMAXPROCS(0)
			procs := prev
			if shards == 0 && runtime.NumCPU() > procs {
				procs = runtime.NumCPU()
				runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev) // restored on every path, errors included
			}
			sidx, err := sdquery.NewShardedIndex(data, roles, sdquery.WithShards(shards))
			if err != nil {
				return err
			}
			defer sidx.Close()
			if _, err := sidx.BatchTopK(queries); err != nil { // warm pools
				return err
			}
			stats, err := collectStats(sidx, queries, sidx.Shards())
			if err != nil {
				return err
			}
			r = testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sidx.BatchTopK(queries); err != nil {
						b.Fatal(err)
					}
				}
			})
			name := fmt.Sprintf("batch/sharded-%d", sidx.Shards())
			if shards == 0 {
				name = "batch/sharded-gomaxprocs"
			}
			add(name, r, stats, procs)
			return nil
		}(); err != nil {
			return err
		}
	}

	// Mixed read/write: p50/p99 TopK latency on the lock-free read path
	// while a writer goroutine continuously churns 5% of the rows
	// (remove + reinsert), driving memtable fills, background seals, and
	// segment folds for the whole measurement window. This is the workload
	// the segment architecture exists for; before it, the same writer
	// stalled every query behind a lock.
	mixed, err := runMixedRW(data, roles, queries)
	if err != nil {
		return err
	}
	mixed.Name = "mixed-rw"
	mixed.N, mixed.Dims, mixed.K, mixed.Queries = n, dims, k, len(queries)
	mixed.GOMAXPROCS = runtime.GOMAXPROCS(0)
	report.Workloads = append(report.Workloads, mixed)

	// Durable mixed read/write: the same read-under-churn shape with every
	// mutation group-committed to a per-shard WAL on the real filesystem,
	// once per sync policy. always vs interval vs off quantifies what each
	// durability level costs the writers (QPS, fsyncs/op) — and the read
	// percentiles document that it costs the read path nothing.
	for _, pol := range []struct {
		name   string
		policy sdquery.SyncPolicy
	}{
		{"mixed-rw/durable-always", sdquery.SyncAlways},
		{"mixed-rw/durable-interval", sdquery.SyncInterval},
		{"mixed-rw/durable-off", sdquery.SyncNever},
	} {
		dw, err := runDurableMixedRW(data, roles, queries, pol.policy)
		if err != nil {
			return err
		}
		dw.Name = pol.name
		dw.N, dw.Dims, dw.K, dw.Queries = n, dims, k, len(queries)
		dw.GOMAXPROCS = runtime.GOMAXPROCS(0)
		report.Workloads = append(report.Workloads, dw)
	}

	// Serve load: end-to-end HTTP latency/throughput through the coalescing
	// admission layer, closed-loop clients over real TCP. Like the sharded
	// batch workload it elevates GOMAXPROCS to NumCPU for its lifetime —
	// the serving layer's whole point is concurrent traffic.
	if err := func() error {
		prev := runtime.GOMAXPROCS(0)
		procs := prev
		if runtime.NumCPU() > procs {
			procs = runtime.NumCPU()
			runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
		}
		sw, err := runServeLoad(scale, len(queries), seed, 4096, false)
		if err != nil {
			return err
		}
		sw.Name = "serve/topk"
		sw.Queries = len(queries)
		sw.GOMAXPROCS = procs
		report.Workloads = append(report.Workloads, sw)

		// Serve hot: the same serving stack with the result cache enabled and
		// Zipf-skewed traffic — the hot-head/long-tail shape production top-k
		// traffic has. Reports the achieved hit rate (gated against collapse)
		// and the cache hit path's allocation count (gated exactly at the
		// committed baseline of zero, via AllocsPerOp).
		hw, err := runServeLoad(scale, len(queries), seed, 4096, true)
		if err != nil {
			return err
		}
		hw.Name = "serve/hot"
		hw.Queries = len(queries)
		hw.GOMAXPROCS = procs
		report.Workloads = append(report.Workloads, hw)

		// Cluster failover: a two-partition replicated cluster behind the
		// scatter-gather router, read under closed-loop load while one
		// leader is hard-killed mid-window. Reports availability (reads
		// answered across the kill) alongside qps and percentiles — the
		// robustness figure the single-node workloads cannot express.
		cw, err := runClusterFailover(scale, len(queries), seed)
		if err != nil {
			return err
		}
		cw.Name = "cluster/failover"
		cw.Queries = len(queries)
		cw.GOMAXPROCS = procs
		report.Workloads = append(report.Workloads, cw)
		return nil
	}(); err != nil {
		return err
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
	} else {
		err = os.WriteFile(path, out, 0o644)
	}
	if err != nil {
		return err
	}
	if baselinePath != "" {
		return diffAgainstBaseline(baselinePath, report)
	}
	return nil
}
