package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
)

// benchJSON is the machine-readable benchmark report written by -json: the
// perf trajectory future PRs compare against (BENCH_sdbench.json at the repo
// root holds the committed baseline). Absolute numbers are
// hardware-dependent; the trajectory of ns/op and the allocs/op invariants
// are the regression signal.
type benchJSON struct {
	Schema     string         `json:"schema"`
	Generated  string         `json:"generated"`
	GoVersion  string         `json:"go"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Scale      float64        `json:"scale"`
	Workloads  []workloadJSON `json:"workloads"`
}

type workloadJSON struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Dims    int    `json:"dims"`
	K       int    `json:"k"`
	Queries int    `json:"queries"`
	// Per-op figures from testing.Benchmark; for batch workloads one op is
	// the whole batch.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Work counters averaged over the query set (single-engine workloads).
	FetchedMean     float64 `json:"fetched_mean,omitempty"`
	ScoredMean      float64 `json:"scored_mean,omitempty"`
	SubproblemsMean float64 `json:"subproblems_mean,omitempty"`
}

const benchJSONSchema = "sdbench/v1"

// runBenchJSON measures the core micro-workloads and writes the JSON report.
// Workload sizes follow the default evaluation shape (uniform data, mixed
// roles, U(0,1) weights) scaled by -scale.
func runBenchJSON(path string, scale float64, queryCount int, seed int64) error {
	n := int(50_000 * scale)
	if n < 1000 {
		n = 1000
	}
	if queryCount <= 0 {
		queryCount = 64
	}
	const dims, attractive, k = 6, 3, 5
	data := dataset.Generate(dataset.Uniform, n, dims, seed)
	specs, roles := bench.BatchSpecs(dims, attractive, k, queryCount, seed+1)
	queries := make([]sdquery.Query, len(specs))
	for i, sp := range specs {
		queries[i] = sdquery.Query{Point: sp.Point, K: sp.K, Roles: sp.Roles, Weights: sp.Weights}
	}

	report := benchJSON{
		Schema:     benchJSONSchema,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
	}
	add := func(name string, qCount int, r testing.BenchmarkResult, st *sdquery.QueryStats) {
		w := workloadJSON{
			Name: name, N: n, Dims: dims, K: k, Queries: qCount,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if st != nil {
			w.FetchedMean = float64(st.Fetched) / float64(qCount)
			w.ScoredMean = float64(st.Scored) / float64(qCount)
			w.SubproblemsMean = float64(st.Subproblems) / float64(qCount)
		}
		report.Workloads = append(report.Workloads, w)
	}

	// Single-query hot path: TopKAppend into a reused buffer (the
	// zero-allocation guarantee), plus the work counters of the query set.
	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		return err
	}
	var total sdquery.QueryStats
	for _, q := range queries {
		_, st, err := idx.TopKWithStats(q)
		if err != nil {
			return err
		}
		total.Fetched += st.Fetched
		total.Scored += st.Scored
		total.Subproblems += st.Subproblems
	}
	var buf []sdquery.Result
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			buf, err = idx.TopKAppend(buf[:0], queries[i%len(queries)])
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	add("topk/sdindex-append", len(queries), r, &total)

	// The allocating convenience API, for the conversion-cost trajectory.
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.TopK(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("topk/sdindex", len(queries), r, nil)

	// Sharded batch pipeline: one op = the whole batch, at 1 shard (pure
	// overhead measurement) and at GOMAXPROCS shards.
	for _, shards := range []int{1, 0} {
		sidx, err := sdquery.NewShardedIndex(data, roles, sdquery.WithShards(shards))
		if err != nil {
			return err
		}
		if _, err := sidx.BatchTopK(queries); err != nil { // warm pools
			sidx.Close()
			return err
		}
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sidx.BatchTopK(queries); err != nil {
					b.Fatal(err)
				}
			}
		})
		name := fmt.Sprintf("batch/sharded-%d", sidx.Shards())
		if shards == 0 {
			name = "batch/sharded-gomaxprocs"
		}
		add(name, len(queries), r, nil)
		sidx.Close()
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}
