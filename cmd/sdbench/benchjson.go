package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	sdquery "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
)

// benchJSON is the machine-readable benchmark report written by -json: the
// perf trajectory future PRs compare against (BENCH_sdbench.json at the repo
// root holds the committed baseline). Absolute numbers are
// hardware-dependent; the trajectory of ns/op, the allocs/op invariants, and
// the work counters (fetched/scored/rounds, which are hardware-independent)
// are the regression signal. The -baseline flag diffs a fresh report against
// a committed one and fails on regression — see diff.go for the gate rules.
type benchJSON struct {
	Schema    string  `json:"schema"`
	Generated string  `json:"generated"`
	GoVersion string  `json:"go"`
	NumCPU    int     `json:"num_cpu"`
	Scale     float64 `json:"scale"`
	Workloads []workloadJSON `json:"workloads"`
}

type workloadJSON struct {
	Name    string `json:"name"`
	N       int    `json:"n"`
	Dims    int    `json:"dims"`
	K       int    `json:"k"`
	Queries int    `json:"queries"`
	// GOMAXPROCS is the effective value the workload ran under. Parallel
	// workloads elevate it to NumCPU for their measurement, so a report
	// generated in a GOMAXPROCS-restricted environment still exercises —
	// and records — the parallelism it claims to measure.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Per-op figures from testing.Benchmark; for batch workloads one op is
	// the whole batch.
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Work counters averaged over the query set. For sharded workloads the
	// counters are summed across shards first, so scheduler and plan-cache
	// wins stay visible end-to-end.
	FetchedMean     float64 `json:"fetched_mean,omitempty"`
	ScoredMean      float64 `json:"scored_mean,omitempty"`
	SubproblemsMean float64 `json:"subproblems_mean,omitempty"`
	RoundsMean      float64 `json:"rounds_mean,omitempty"`
	// PlanCacheHitRate is hits / (queries × engines consulted): 1.0 means
	// every query after the warm-up answered from a cached plan.
	PlanCacheHitRate float64 `json:"plan_cache_hit_rate,omitempty"`
}

const benchJSONSchema = "sdbench/v2"

// statsSource is the work-counter surface shared by SDIndex and
// ShardedIndex.
type statsSource interface {
	TopKWithStats(sdquery.Query) ([]sdquery.Result, sdquery.QueryStats, error)
}

// collectStats runs the query set once and averages the counters.
// cacheDenom is the hit-rate denominator per query (engines consulted: 1 for
// a single engine, the shard count for a sharded index).
func collectStats(src statsSource, queries []sdquery.Query, cacheDenom int) (w workloadJSON, err error) {
	var total sdquery.QueryStats
	for _, q := range queries {
		_, st, err := src.TopKWithStats(q)
		if err != nil {
			return w, err
		}
		total.Fetched += st.Fetched
		total.Scored += st.Scored
		total.Subproblems += st.Subproblems
		total.Rounds += st.Rounds
		total.PlanCacheHits += st.PlanCacheHits
	}
	qn := float64(len(queries))
	w.FetchedMean = float64(total.Fetched) / qn
	w.ScoredMean = float64(total.Scored) / qn
	w.SubproblemsMean = float64(total.Subproblems) / qn
	w.RoundsMean = float64(total.Rounds) / qn
	w.PlanCacheHitRate = float64(total.PlanCacheHits) / (qn * float64(cacheDenom))
	return w, nil
}

// runBenchJSON measures the core micro-workloads and writes the JSON report,
// optionally gating against a committed baseline. Workload sizes follow the
// default evaluation shape (uniform data, mixed roles, U(0,1) weights)
// scaled by -scale.
func runBenchJSON(path, baselinePath string, scale float64, queryCount int, seed int64) error {
	n := int(50_000 * scale)
	if n < 1000 {
		n = 1000
	}
	if queryCount <= 0 {
		queryCount = 64
	}
	const dims, attractive, k = 6, 3, 5
	data := dataset.Generate(dataset.Uniform, n, dims, seed)
	specs, roles := bench.BatchSpecs(dims, attractive, k, queryCount, seed+1)
	queries := make([]sdquery.Query, len(specs))
	for i, sp := range specs {
		queries[i] = sdquery.Query{Point: sp.Point, K: sp.K, Roles: sp.Roles, Weights: sp.Weights}
	}

	report := benchJSON{
		Schema:    benchJSONSchema,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Scale:     scale,
	}
	add := func(name string, r testing.BenchmarkResult, stats workloadJSON, procs int) {
		stats.Name = name
		stats.N, stats.Dims, stats.K, stats.Queries = n, dims, k, len(queries)
		stats.GOMAXPROCS = procs
		stats.NsPerOp = r.NsPerOp()
		stats.AllocsPerOp = r.AllocsPerOp()
		stats.BytesPerOp = r.AllocedBytesPerOp()
		report.Workloads = append(report.Workloads, stats)
	}

	// Single-query hot path: TopKAppend into a reused buffer (the
	// zero-allocation guarantee), plus the work counters of the query set —
	// under the default bound-driven scheduler and under the round-robin
	// ablation, so the scheduling delta is part of the committed trajectory.
	for _, mode := range []struct {
		name  string
		sched sdquery.SchedulerMode
	}{
		{"topk/sdindex-append", sdquery.SchedBoundDriven},
		{"topk/sdindex-append-roundrobin", sdquery.SchedRoundRobin},
	} {
		idx, err := sdquery.NewSDIndex(data, roles, sdquery.WithScheduler(mode.sched))
		if err != nil {
			return err
		}
		stats, err := collectStats(idx, queries, 1)
		if err != nil {
			return err
		}
		var buf []sdquery.Result
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = idx.TopKAppend(buf[:0], queries[i%len(queries)])
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		add(mode.name, r, stats, runtime.GOMAXPROCS(0))
	}

	// The allocating convenience API, for the conversion-cost trajectory.
	idx, err := sdquery.NewSDIndex(data, roles)
	if err != nil {
		return err
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.TopK(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	})
	add("topk/sdindex", r, workloadJSON{}, runtime.GOMAXPROCS(0))

	// Sharded batch pipeline: one op = the whole batch, at 1 shard (pure
	// overhead measurement) and at NumCPU shards. The parallel workload
	// elevates GOMAXPROCS to NumCPU for its whole lifetime (build, warm-up,
	// stats, measurement): a harness invoked under GOMAXPROCS=1 previously
	// built a 1-shard "gomaxprocs" index and recorded timings identical to
	// the 1-shard run, silently measuring nothing.
	for _, shards := range []int{1, 0} {
		if err := func() error {
			prev := runtime.GOMAXPROCS(0)
			procs := prev
			if shards == 0 && runtime.NumCPU() > procs {
				procs = runtime.NumCPU()
				runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev) // restored on every path, errors included
			}
			sidx, err := sdquery.NewShardedIndex(data, roles, sdquery.WithShards(shards))
			if err != nil {
				return err
			}
			defer sidx.Close()
			if _, err := sidx.BatchTopK(queries); err != nil { // warm pools
				return err
			}
			stats, err := collectStats(sidx, queries, sidx.Shards())
			if err != nil {
				return err
			}
			r = testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := sidx.BatchTopK(queries); err != nil {
						b.Fatal(err)
					}
				}
			})
			name := fmt.Sprintf("batch/sharded-%d", sidx.Shards())
			if shards == 0 {
				name = "batch/sharded-gomaxprocs"
			}
			add(name, r, stats, procs)
			return nil
		}(); err != nil {
			return err
		}
	}

	out, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
	} else {
		err = os.WriteFile(path, out, 0o644)
	}
	if err != nil {
		return err
	}
	if baselinePath != "" {
		return diffAgainstBaseline(baselinePath, report)
	}
	return nil
}
