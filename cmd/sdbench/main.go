// Command sdbench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment prints the same series the paper plots;
// absolute times depend on hardware, but the shapes — who wins, by what
// factor, where crossovers fall — are the reproduction target (see
// EXPERIMENTS.md).
//
// Usage:
//
//	sdbench -list
//	sdbench -exp fig7a [-scale 0.25] [-queries 100] [-seed 1] [-v]
//	sdbench -all -scale 0.1
//	sdbench -json BENCH_sdbench.json [-scale 1] [-queries 64]
//	sdbench -json report.json -baseline BENCH_sdbench.json   # regression gate
//	sdbench -serve                                           # HTTP serve load test
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	sdquery "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		exp        = flag.String("exp", "", "experiment id to run (e.g. fig7a, table1, ablation-angles)")
		all        = flag.Bool("all", false, "run every experiment")
		shardSweep = flag.Bool("shardsweep", false, "sweep shard counts for the sharded batch execution layer")
		serveLoad  = flag.Bool("serve", false, "load-test the HTTP serving layer in-process (closed-loop client pool)")
		jsonOut    = flag.String("json", "", "write the machine-readable micro-benchmark report to this path (\"-\" for stdout)")
		baseline   = flag.String("baseline", "", "with -json: diff the fresh report against this committed baseline and exit non-zero on regression")
		scale      = flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = paper scale)")
		queries    = flag.Int("queries", 100, "query points per measurement")
		seed       = flag.Int64("seed", 1, "random seed")
		verbose    = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	if *jsonOut != "" {
		// The micro-benchmark default (64 queries) differs from the
		// figures' (100); an explicit -queries always wins.
		qn := 64
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "queries" {
				qn = *queries
			}
		})
		if err := runBenchJSON(*jsonOut, *baseline, *scale, qn, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "sdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serveLoad {
		runServeStandalone(*scale, *queries, *seed)
		return
	}

	if *shardSweep {
		runShardSweep(*scale, *queries, *seed)
		return
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Queries: *queries, Log: log}

	var toRun []bench.Experiment
	switch {
	case *all:
		toRun = bench.All()
	case *exp != "":
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sdbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []bench.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "sdbench: need -exp <id>, -all, or -list")
		os.Exit(2)
	}

	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s: %s (scale %g)\n", e.ID, e.Title, *scale)
		report := e.Run(cfg)
		report.Print(os.Stdout)
	}
}

// runShardSweep measures batch top-k throughput against the shard count:
// one ShardedIndex per power-of-two P up to 2·GOMAXPROCS over the same
// uniform workload, reporting wall milliseconds per batch and the speedup
// over P = 1. On a machine with GOMAXPROCS ≥ 4 the sweep shows the sharded
// pipeline overtaking the single-shard engine; on a single core it shows
// the sharding overhead instead.
func runShardSweep(scale float64, queries int, seed int64) {
	if queries <= 0 {
		queries = 100 // the experiments' default, as bench.Config applies it
	}
	n := int(200_000 * scale)
	if n < 1000 {
		n = 1000
	}
	const dims, attractive, k = 6, 3, 10
	fmt.Printf("== shardsweep: batch of %d queries, n=%d, d=%d, k=%d, GOMAXPROCS=%d\n",
		queries, n, dims, k, runtime.GOMAXPROCS(0))
	data := dataset.Generate(dataset.Uniform, n, dims, seed)
	specs, roles := bench.BatchSpecs(dims, attractive, k, queries, seed+1)
	qs := make([]sdquery.Query, len(specs))
	for i, sp := range specs {
		qs[i] = sdquery.Query{Point: sp.Point, K: sp.K, Roles: sp.Roles, Weights: sp.Weights}
	}

	fmt.Printf("%-8s %-12s %-10s\n", "shards", "batch-ms", "speedup")
	base := 0.0
	for p := 1; p <= 2*runtime.GOMAXPROCS(0); p *= 2 {
		idx, err := sdquery.NewShardedIndex(data, roles, sdquery.WithShards(p))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sdbench: shards=%d: %v\n", p, err)
			os.Exit(1)
		}
		// One warm-up batch, then the timed one.
		if _, err := idx.BatchTopK(qs); err != nil {
			fmt.Fprintf(os.Stderr, "sdbench: shards=%d: %v\n", p, err)
			os.Exit(1)
		}
		start := time.Now()
		if _, err := idx.BatchTopK(qs); err != nil {
			fmt.Fprintf(os.Stderr, "sdbench: shards=%d: %v\n", p, err)
			os.Exit(1)
		}
		ms := float64(time.Since(start).Nanoseconds()) / 1e6
		idx.Close()
		if base == 0 {
			base = ms
		}
		fmt.Printf("%-8d %-12.2f %-10.2f\n", p, ms, base/ms)
	}
}
