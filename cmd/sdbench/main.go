// Command sdbench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment prints the same series the paper plots;
// absolute times depend on hardware, but the shapes — who wins, by what
// factor, where crossovers fall — are the reproduction target (see
// EXPERIMENTS.md).
//
// Usage:
//
//	sdbench -list
//	sdbench -exp fig7a [-scale 0.25] [-queries 100] [-seed 1] [-v]
//	sdbench -all -scale 0.1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list experiments and exit")
		exp     = flag.String("exp", "", "experiment id to run (e.g. fig7a, table1, ablation-angles)")
		all     = flag.Bool("all", false, "run every experiment")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier (1.0 = paper scale)")
		queries = flag.Int("queries", 100, "query points per measurement")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "log progress to stderr")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	var log io.Writer
	if *verbose {
		log = os.Stderr
	}
	cfg := bench.Config{Scale: *scale, Seed: *seed, Queries: *queries, Log: log}

	var toRun []bench.Experiment
	switch {
	case *all:
		toRun = bench.All()
	case *exp != "":
		e, ok := bench.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "sdbench: unknown experiment %q (use -list)\n", *exp)
			os.Exit(2)
		}
		toRun = []bench.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "sdbench: need -exp <id>, -all, or -list")
		os.Exit(2)
	}

	for i, e := range toRun {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s: %s (scale %g)\n", e.ID, e.Title, *scale)
		report := e.Run(cfg)
		report.Print(os.Stdout)
	}
}
