package main

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	sdquery "repro"
	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/serve"
	"repro/serve/router"
)

// Cluster failover workload: a two-partition cluster (each a WAL-backed
// leader with one live follower) behind the scatter-gather router, driven by
// a closed-loop read pool — and halfway through the measurement window,
// partition 0's leader is hard-killed. The reported figures are the ones a
// cluster is accountable for: read qps and latency percentiles through the
// router, availability — the fraction of reads answered 200 across the
// window that contains the kill — and the write-unavailability window, the
// time from the kill until the router's automated replica promotion has
// writes to the killed partition succeeding again. The router's
// retry/failover machinery keeps availability at ~1.0 and the diff gate
// fails the build if it drops below 99% or collapses against the committed
// baseline; the write window is gated against an absolute 5s ceiling.

// clusterReadOps is the closed-loop read count for the failover window.
// Small enough for CI, large enough that the kill lands mid-stream with
// plenty of traffic on both sides of it.
const clusterReadOps = 1536

// runClusterFailover measures the cluster's behavior across a leader kill.
func runClusterFailover(scale float64, queryCount int, seed int64) (workloadJSON, error) {
	var w workloadJSON
	n := int(20_000 * scale)
	if n < 1000 {
		n = 1000
	}
	if queryCount <= 0 {
		queryCount = 64
	}
	const dims, attractive, k = 6, 3, 5
	data := dataset.Generate(dataset.Uniform, n, dims, seed)
	specs, roles := bench.BatchSpecs(dims, attractive, k, queryCount, seed+1)

	dir, err := os.MkdirTemp("", "sdbench-cluster-*")
	if err != nil {
		return w, err
	}
	defer os.RemoveAll(dir)

	// Two partitions; seed rows deal out round-robin (strictly ascending IDs
	// per partition, as the ID-preserving constructor requires). Reads don't
	// care how rows are placed — every partition is consulted — and the
	// write phase routes by ownership on its own.
	const nParts = 2
	partRows := make([][][]float64, nParts)
	partIDs := make([][]int, nParts)
	for id, row := range data {
		partRows[id%nParts] = append(partRows[id%nParts], row)
		partIDs[id%nParts] = append(partIDs[id%nParts], id)
	}

	type nodeProc struct {
		srv *serve.Server
		hs  *http.Server
		url string
	}
	startNode := func(s *serve.Server) (*nodeProc, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		hs := &http.Server{Handler: s.Handler()}
		go hs.Serve(ln)
		return &nodeProc{srv: s, hs: hs, url: "http://" + ln.Addr().String()}, nil
	}

	leaders := make([]*nodeProc, nParts)
	followers := make([]*nodeProc, nParts)
	cfg := router.Config{
		Slots: 64, Seed: seed,
		Retries: 3, BackoffBase: 5 * time.Millisecond,
		TryTimeout: 2 * time.Second, HealthInterval: 50 * time.Millisecond,
		FailAfter: 2, ReopenAfter: 500 * time.Millisecond,
		PromoteAfter: 750 * time.Millisecond,
	}
	defer func() {
		for _, np := range append(append([]*nodeProc{}, leaders...), followers...) {
			if np != nil {
				np.hs.Close()
				np.srv.Close()
			}
		}
	}()
	for pi := 0; pi < nParts; pi++ {
		idx, err := sdquery.NewShardedIndexWithIDs(partRows[pi], partIDs[pi], roles,
			sdquery.WithShards(2),
			sdquery.WithWAL(fmt.Sprintf("%s/p%d", dir, pi)),
			sdquery.WithSyncPolicy(sdquery.SyncInterval),
			sdquery.WithSyncInterval(50*time.Millisecond))
		if err != nil {
			return w, err
		}
		if leaders[pi], err = startNode(serve.New(idx)); err != nil {
			return w, err
		}
		fs, err := serve.NewFollower(leaders[pi].url,
			serve.WithFollowInterval(50*time.Millisecond),
			serve.WithPromotionWALDir(fmt.Sprintf("%s/promote%d", dir, pi)))
		if err != nil {
			return w, err
		}
		if followers[pi], err = startNode(fs); err != nil {
			return w, err
		}
		cfg.Partitions = append(cfg.Partitions, router.Partition{
			Name:     fmt.Sprintf("p%d", pi),
			Leader:   leaders[pi].url,
			Replicas: []string{followers[pi].url},
		})
	}
	rt, err := router.New(cfg)
	if err != nil {
		return w, err
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return w, err
	}
	rhs := &http.Server{Handler: rt.Handler()}
	go rhs.Serve(rln)
	defer rhs.Close()
	routerURL := "http://" + rln.Addr().String()

	clients := serveClients()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}

	// Write phase: a burst of inserts through the router, so the measurement
	// runs against a cluster whose write path (ID assignment, ownership
	// routing, watermark tracking) has actually been exercised.
	writeRows := dataset.Generate(dataset.Uniform, 64, dims, seed+7)
	for i, row := range writeRows {
		body := []byte(fmt.Sprintf(`{"point":%s}`, jsonFloats(row)))
		resp, err := client.Post(routerURL+"/v1/insert", "application/json", bytes.NewReader(body))
		if err != nil {
			return w, fmt.Errorf("cluster write %d: %w", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return w, fmt.Errorf("cluster write %d: status %d", i, resp.StatusCode)
		}
	}

	// Quiesce: both followers caught up, so the post-kill replica holds every
	// acked write and the failover serves complete answers.
	for pi := 0; pi < nParts; pi++ {
		if err := waitReplCaughtUp(leaders[pi].srv, followers[pi].srv, 15*time.Second); err != nil {
			return w, err
		}
	}

	bodies := make([][]byte, len(specs))
	for i, sp := range specs {
		names := make([]string, dims)
		for d, r := range sp.Roles {
			names[d] = r.String()
		}
		bodies[i] = []byte(fmt.Sprintf(
			`{"point":%s,"k":%d,"roles":%s,"weights":%s}`,
			jsonFloats(sp.Point), sp.K, jsonStrings(names), jsonFloats(sp.Weights)))
	}
	doOne := func(body []byte) (time.Duration, bool, error) {
		t0 := time.Now()
		resp, err := client.Post(routerURL+"/v1/topk", "application/json", bytes.NewReader(body))
		if err != nil {
			// Transport-level failure against the router itself: count as an
			// unavailable read, not a harness error.
			return 0, false, nil
		}
		var sink [512]byte
		for {
			if _, err := resp.Body.Read(sink[:]); err != nil {
				break
			}
		}
		resp.Body.Close()
		return time.Since(t0), resp.StatusCode == http.StatusOK, nil
	}
	for i := 0; i < clients; i++ { // warm-up
		if _, ok, err := doOne(bodies[i%len(bodies)]); err != nil || !ok {
			return w, fmt.Errorf("cluster warm-up read failed (ok=%v err=%v)", ok, err)
		}
	}

	// Measurement: closed-loop reads; once half the ops have completed, kill
	// partition 0's leader hard (listener and every connection die).
	perClient := clusterReadOps / clients
	if perClient < 1 {
		perClient = 1
	}
	var completed atomic.Int64
	var killed atomic.Bool
	var killTime time.Time // written before killedCh closes; read after
	killedCh := make(chan struct{})
	killAt := int64(clients * perClient / 2)

	// Write-unavailability prober: from the instant of the kill, fire a
	// one-shot auto-ID insert every ~20ms and record when writes stop
	// failing. Roughly half the probes land on the killed partition, so a
	// long run of consecutive successes — not a single success — is the
	// signal that promotion restored the whole write path (16 in a row is a
	// ~2^-16 false positive if the dead partition were still refusing). The
	// window is kill → last observed failure; capped at 30s if writes never
	// recover, which the diff gate then fails.
	const probeSuccessRun = 16
	probeRows := dataset.Generate(dataset.Uniform, 512, dims, seed+9)
	writeUnavailable := make(chan float64, 1)
	go func() {
		<-killedCh
		kt := killTime
		deadline := kt.Add(30 * time.Second)
		var lastFail time.Time
		consec := 0
		for i := 0; consec < probeSuccessRun; i++ {
			if time.Now().After(deadline) {
				writeUnavailable <- 30_000 // never recovered: report the cap
				return
			}
			body := []byte(fmt.Sprintf(`{"point":%s}`, jsonFloats(probeRows[i%len(probeRows)])))
			ok := false
			if resp, err := client.Post(routerURL+"/v1/insert", "application/json", bytes.NewReader(body)); err == nil {
				resp.Body.Close()
				ok = resp.StatusCode == http.StatusOK
			}
			if ok {
				consec++
			} else {
				consec = 0
				lastFail = time.Now()
			}
			time.Sleep(20 * time.Millisecond)
		}
		if lastFail.IsZero() {
			writeUnavailable <- 0
			return
		}
		writeUnavailable <- float64(lastFail.Sub(kt)) / float64(time.Millisecond)
	}()
	lats := make([][]int64, clients)
	var okReads, totalReads atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			<-start
			mine := make([]int64, 0, perClient)
			for i := 0; i < perClient; i++ {
				if completed.Add(1) >= killAt && killed.CompareAndSwap(false, true) {
					killTime = time.Now()
					leaders[0].hs.Close() // the kill: mid-window, no drain
					close(killedCh)
				}
				d, ok, _ := doOne(bodies[(c*perClient+i)%len(bodies)])
				totalReads.Add(1)
				if ok {
					okReads.Add(1)
					mine = append(mine, d.Nanoseconds())
				}
			}
			lats[c] = mine
		}(c)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	wall := time.Since(t0)
	if !killed.Load() {
		return w, fmt.Errorf("cluster failover: the kill never fired (%d ops)", completed.Load())
	}
	wums := <-writeUnavailable

	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return w, fmt.Errorf("cluster failover: no read succeeded")
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var sum int64
	for _, l := range all {
		sum += l
	}
	w.N, w.Dims, w.K, w.Queries = n, dims, k, queryCount
	w.NsPerOp = sum / int64(len(all))
	w.P50NsPerOp = all[len(all)/2]
	w.P99NsPerOp = all[len(all)*99/100]
	w.AllocsPerOp = -1 // cross-process HTTP path: no per-op attribution
	w.BytesPerOp = -1
	w.QPS = float64(len(all)) / wall.Seconds()
	w.Availability = float64(okReads.Load()) / float64(totalReads.Load())
	w.WriteUnavailableMs = wums
	return w, nil
}

// waitReplCaughtUp polls until follower's applied LSN vector covers the
// leader's, componentwise.
func waitReplCaughtUp(leader, follower *serve.Server, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		ls := leader.Statz().ReplLSNs
		fs := follower.Statz().ReplLSNs
		ok := len(ls) > 0 && len(ls) == len(fs)
		for i := range ls {
			ok = ok && fs[i] >= ls[i]
		}
		if ok {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("cluster failover: follower never caught up (leader %v, follower %v)",
		leader.Statz().ReplLSNs, follower.Statz().ReplLSNs)
}
