// Command sdrouter is the cluster front door for a fleet of sdservers: it
// partitions the ID space across leader groups with rendezvous hashing,
// scatter-gathers reads into exact global top-k answers, retries and hedges
// around slow or dead nodes, and routes every write to the owning
// partition's leader under a cluster-unique ID (package serve/router).
//
// Topology is given as one -partition flag per leader group: the partition
// name, then the leader URL, then any replica URLs, comma-separated. A
// two-partition cluster where each leader has one follower:
//
//	sdrouter -addr :9000 \
//	    -partition p0=http://node1:8080,http://node2:8080 \
//	    -partition p1=http://node3:8080,http://node4:8080
//
// Query the cluster exactly as one sdserver (same wire format, byte-identical
// answers):
//
//	curl -s localhost:9000/v1/topk -d '{"point":[...],"k":5,"roles":[...]}'
//
// When a whole partition is unreachable, reads answer 503 by default; a
// client that prefers availability over completeness may opt into the
// survivors' merged answer, marked "degraded":true, with ?allow_partial=1.
//
// Partition names are the rendezvous identity: keep them stable across
// restarts and reconfigurations, or slots (and therefore row ownership)
// will move.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/serve/router"
)

// partitionFlags collects repeated -partition name=leader[,replica...] flags.
type partitionFlags []router.Partition

func (p *partitionFlags) String() string { return fmt.Sprintf("%d partitions", len(*p)) }

func (p *partitionFlags) Set(v string) error {
	name, urls, ok := strings.Cut(v, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=leaderURL[,replicaURL...], got %q", v)
	}
	parts := strings.Split(urls, ",")
	for i, u := range parts {
		parts[i] = strings.TrimSpace(u)
		if !strings.HasPrefix(parts[i], "http://") && !strings.HasPrefix(parts[i], "https://") {
			return fmt.Errorf("partition %s: node %q is not an http(s) URL", name, parts[i])
		}
		parts[i] = strings.TrimRight(parts[i], "/")
	}
	*p = append(*p, router.Partition{Name: name, Leader: parts[0], Replicas: parts[1:]})
	return nil
}

func main() {
	var partitions partitionFlags
	var (
		addr     = flag.String("addr", ":9000", "listen address")
		slots    = flag.Int("slots", 64, "rendezvous slots the ID space folds into (all routers over one cluster must agree)")
		tryTO    = flag.Duration("try-timeout", 2*time.Second, "per-attempt deadline")
		retries  = flag.Int("retries", 2, "retries after a failed attempt (0 disables retries)")
		backoff  = flag.Duration("backoff-base", 10*time.Millisecond, "first retry backoff (doubles per retry, jittered)")
		backoffC = flag.Duration("backoff-cap", 500*time.Millisecond, "retry backoff ceiling")
		hedge    = flag.Duration("hedge-delay", 0, "hedged-read trigger delay (0 adapts to each node's p99; negative disables hedging)")
		healthI  = flag.Duration("health-interval", 250*time.Millisecond, "active health-check cadence")
		failN    = flag.Int("fail-after", 3, "consecutive failures before a node is ejected")
		reopen   = flag.Duration("reopen-after", time.Second, "ejection time before a node is retried half-open")
		promote  = flag.Duration("promote-after", 3*time.Second, "continuous leader unhealthiness before the most caught-up replica is promoted (0 disables automated promotion)")
		noBal    = flag.Bool("no-read-balance", false, "disable replica-aware read load balancing (reads pin to the leader)")
		drainT   = flag.Duration("drain-timeout", 15*time.Second, "maximum graceful-drain wait on SIGTERM")
	)
	flag.Var(&partitions, "partition", "name=leaderURL[,replicaURL...] (repeat per partition)")
	flag.Parse()

	if len(partitions) == 0 {
		fmt.Fprintln(os.Stderr, "sdrouter: at least one -partition is required")
		flag.Usage()
		os.Exit(2)
	}
	// In Config the zero value means "default"; the CLI says what it means,
	// so 0 maps to the explicit "disabled" sentinel for both knobs.
	cfgRetries := *retries
	if cfgRetries == 0 {
		cfgRetries = -1
	}
	cfgPromote := *promote
	if cfgPromote == 0 {
		cfgPromote = -1
	}
	rt, err := router.New(router.Config{
		Partitions:     partitions,
		Slots:          *slots,
		TryTimeout:     *tryTO,
		Retries:        cfgRetries,
		BackoffBase:    *backoff,
		BackoffCap:     *backoffC,
		HedgeDelay:     *hedge,
		HealthInterval: *healthI,
		FailAfter:      *failN,
		ReopenAfter:    *reopen,
		PromoteAfter:   cfgPromote,
		NoReadBalance:  *noBal,
	})
	if err != nil {
		fatal(err)
	}
	defer rt.Close()

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sdrouter: routing %d partitions (%d slots) on %s\n",
		len(partitions), *slots, *addr)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		fmt.Fprintf(os.Stderr, "sdrouter: draining (up to %s)\n", *drainT)
		dctx, cancel := context.WithTimeout(context.Background(), *drainT)
		defer cancel()
		if err := hs.Shutdown(dctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		fmt.Fprintln(os.Stderr, "sdrouter: drained")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdrouter:", err)
	os.Exit(1)
}
