// Command sdgen writes synthetic datasets to CSV: the three distributions of
// the paper's evaluation plus the ChEMBL-like molecular library.
//
// Usage:
//
//	sdgen -dist uniform -n 100000 -dims 6 -seed 1 > points.csv
//	sdgen -dist chembl -n 428913 > molecules.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro/internal/dataset"
)

func main() {
	var (
		dist = flag.String("dist", "uniform", "uniform | correlated | anti-correlated | chembl")
		n    = flag.Int("n", 100000, "number of points")
		dims = flag.Int("dims", 6, "dimensionality (ignored for chembl)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *dist == "chembl" {
		mols := dataset.ChEMBL(*n, *seed)
		fmt.Fprintln(out, "drug_likeness,mw,psa,logp,exception")
		for _, m := range mols {
			fmt.Fprintf(out, "%s,%s,%s,%s,%t\n",
				strconv.FormatFloat(m.DrugLikeness, 'g', -1, 64),
				strconv.FormatFloat(m.MW, 'g', -1, 64),
				strconv.FormatFloat(m.PSA, 'g', -1, 64),
				strconv.FormatFloat(m.LogP, 'g', -1, 64),
				m.Exception)
		}
		return
	}

	var d dataset.Distribution
	switch *dist {
	case "uniform":
		d = dataset.Uniform
	case "correlated":
		d = dataset.Correlated
	case "anti-correlated":
		d = dataset.AntiCorrelated
	default:
		fmt.Fprintf(os.Stderr, "sdgen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	pts := dataset.Generate(d, *n, *dims, *seed)
	header := make([]string, *dims)
	for i := range header {
		header[i] = fmt.Sprintf("d%d", i)
	}
	if err := dataset.WriteCSV(out, pts, header); err != nil {
		fmt.Fprintln(os.Stderr, "sdgen:", err)
		os.Exit(1)
	}
}
