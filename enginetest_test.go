// Cross-engine differential tests: every public engine, and the sharded
// execution layer at several shard counts, runs the internal/enginetest
// oracle workloads. This is the module's §6 validation strategy as a
// first-class harness — any engine change that perturbs an answer fails
// here with the workload and rank that diverged.
package sdquery_test

import (
	"testing"

	sdquery "repro"
	"repro/internal/enginetest"
)

func TestDifferentialScan(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name:          "scan",
		Deterministic: true,
		New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
			return sdquery.NewScan(data)
		},
	})
}

func TestDifferentialSDIndex(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name:          "sdindex",
		Deterministic: true,
		New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
			return sdquery.NewSDIndex(data, roles)
		},
	})
}

func TestDifferentialSDIndexPairings(t *testing.T) {
	for _, p := range []sdquery.PairingStrategy{
		sdquery.PairInOrder, sdquery.PairByCorrelation, sdquery.PairByVariance, sdquery.PairNone,
	} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			enginetest.Run(t, enginetest.Factory{
				Name:          "sdindex-" + p.String(),
				Deterministic: true,
				New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
					return sdquery.NewSDIndex(data, roles, sdquery.WithPairing(p))
				},
			})
		})
	}
}

// TestDifferentialSDIndexScheduling runs the full oracle workloads against
// the scheduling/plan ablation knobs: the round-robin rotation and the
// uncached planner must answer byte-identically to the oracle, exactly like
// the bound-driven cached default (covered by TestDifferentialSDIndex).
func TestDifferentialSDIndexScheduling(t *testing.T) {
	t.Run("round-robin", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-roundrobin",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles, sdquery.WithScheduler(sdquery.SchedRoundRobin))
			},
		})
	})
	t.Run("no-plan-cache", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-nocache",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles, sdquery.WithPlanCache(false))
			},
		})
	})
}

// TestDifferentialSDIndexStorage runs the oracle workloads against the
// storage-layer knobs: a tiny memtable forces the update phase through many
// background seals and folds (multi-segment planning, tombstone masking,
// snapshot isolation across compaction), while disabled compaction forces
// every inserted row through the memtable scan path. Answers must stay
// byte-identical to the oracle in both regimes.
func TestDifferentialSDIndexStorage(t *testing.T) {
	t.Run("tiny-memtable", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-tiny-memtable",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles, sdquery.WithMemtableSize(4))
			},
		})
	})
	t.Run("no-compaction", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-no-compaction",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles, sdquery.WithCompaction(false))
			},
		})
	})
	t.Run("tiny-memtable-roundrobin", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-tiny-memtable-roundrobin",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles,
					sdquery.WithMemtableSize(4), sdquery.WithScheduler(sdquery.SchedRoundRobin))
			},
		})
	})
}

// TestDifferentialSDIndexColumns runs the oracle workloads over the narrow
// float32 scoring columns: the approximate sweep plus exact rescore must
// answer byte-identically to the float64 default, including across the
// update phase's seals and folds.
func TestDifferentialSDIndexColumns(t *testing.T) {
	t.Run("float32", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-float32",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles, sdquery.WithColumnWidth(32))
			},
		})
	})
	t.Run("float32-tiny-memtable", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-float32-tiny-memtable",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles,
					sdquery.WithColumnWidth(32), sdquery.WithMemtableSize(4))
			},
		})
	})
}

// TestDifferentialSDIndexParallel runs the oracle workloads with intra-query
// segment parallelism on: a segment row cap forces multi-segment stacks and
// WithWorkers fans each query's segments out to the pool. Answers must stay
// byte-identical to the oracle under both schedulers however the segment
// tasks interleave.
func TestDifferentialSDIndexParallel(t *testing.T) {
	t.Run("bound-driven", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-parallel",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles,
					sdquery.WithWorkers(3), sdquery.WithMaxSegmentRows(24))
			},
		})
	})
	t.Run("round-robin-float32", func(t *testing.T) {
		enginetest.Run(t, enginetest.Factory{
			Name:          "sdindex-parallel-roundrobin-float32",
			Deterministic: true,
			New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
				return sdquery.NewSDIndex(data, roles,
					sdquery.WithWorkers(2), sdquery.WithMaxSegmentRows(24),
					sdquery.WithScheduler(sdquery.SchedRoundRobin),
					sdquery.WithColumnWidth(32))
			},
		})
	})
}

func TestDifferentialTA(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name:          "ta",
		Deterministic: true,
		New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
			return sdquery.NewTA(data)
		},
	})
}

func TestDifferentialBRS(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name: "brs", // best-first heap order resolves ties arbitrarily
		New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
			return sdquery.NewBRS(data, 0)
		},
	})
}

func TestDifferentialPE(t *testing.T) {
	enginetest.Run(t, enginetest.Factory{
		Name: "pe", // NRA lower-bound ties resolve arbitrarily at the k-th rank
		New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
			return sdquery.NewPE(data)
		},
	})
}

func TestDifferentialShardedIndex(t *testing.T) {
	for _, shards := range []int{1, 2, 5} {
		shards := shards
		t.Run(map[int]string{1: "one", 2: "two", 5: "five"}[shards], func(t *testing.T) {
			enginetest.Run(t, enginetest.Factory{
				Name:          "sharded",
				Deterministic: true,
				New: func(data [][]float64, roles []sdquery.Role) (sdquery.Engine, error) {
					return sdquery.NewShardedIndex(data, roles,
						sdquery.WithShards(shards), sdquery.WithWorkers(3))
				},
			})
		})
	}
}
