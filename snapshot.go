package sdquery

import (
	"repro/internal/core"
	"repro/internal/query"
)

// Snapshot is an immutable point-in-time view of an SDIndex: queries
// through it see exactly the rows that were live when Snapshot was called,
// no matter how many Inserts, Removes, or background compactions run
// afterwards. Acquiring one costs a single atomic load — no lock — and a
// Snapshot never blocks writers; it pins its row set only against the
// garbage collector, so drop it when done.
//
// Snapshot isolation is what the engine's differential harness leans on:
// every answer through a Snapshot is byte-identical to a sequential scan of
// the rows live at acquisition time.
type Snapshot struct {
	s    *SDIndex
	view core.View
}

// Snapshot acquires the index's current snapshot.
func (s *SDIndex) Snapshot() *Snapshot {
	return &Snapshot{s: s, view: s.eng.View()}
}

// Len reports the number of live rows the snapshot can see.
func (sn *Snapshot) Len() int { return sn.view.Len() }

// Segments reports the sealed-segment count and memtable rows frozen in
// the snapshot.
func (sn *Snapshot) Segments() (segments, memRows int) {
	return sn.view.Segments(), sn.view.MemRows()
}

// TopK answers the query against the snapshot's frozen row set. See
// Engine.TopK.
func (sn *Snapshot) TopK(q Query) ([]Result, error) {
	return sn.TopKAppend(nil, q)
}

// TopKAppend is TopK appending into dst; it shares the parent index's
// pooled buffers, so with a caller-reused dst the steady-state path
// performs no allocation.
func (sn *Snapshot) TopKAppend(dst []Result, q Query) ([]Result, error) {
	return sn.s.appendVia(sn.view, dst, q, nil)
}

// ShardedSnapshot is the cross-shard analogue of Snapshot: one pinned
// per-shard view for every shard, acquired atomically with respect to the
// index's writers, so the set of global rows it sees is a consistent cut.
// Queries fan out over the pinned views on the index's worker pool exactly
// like live queries, still without taking any shard lock.
type ShardedSnapshot struct {
	s     *ShardedIndex
	views []core.View
}

// Snapshot acquires a consistent cross-shard snapshot. It briefly takes the
// index's routing lock — serializing only against Insert and Remove, never
// against queries — so a write is either visible on its shard's view or not
// yet routed at all.
func (s *ShardedIndex) Snapshot() *ShardedSnapshot {
	sn := &ShardedSnapshot{s: s, views: make([]core.View, len(s.shards))}
	s.mu.Lock()
	for i, sh := range s.shards {
		sn.views[i] = sh.eng.View()
	}
	s.mu.Unlock()
	return sn
}

// Len reports the number of live rows across the snapshot's shard views.
func (sn *ShardedSnapshot) Len() int {
	total := 0
	for _, v := range sn.views {
		total += v.Len()
	}
	return total
}

// TopK answers the query against the snapshot's frozen row set, merging
// per-shard answers exactly like the live path.
func (sn *ShardedSnapshot) TopK(q Query) ([]Result, error) {
	s := sn.s
	spec := q.spec()
	p := len(s.shards)
	c := s.getCtx(p)
	defer s.putCtx(c)
	if err := s.fanOutQuery(spec, c, nil, sn.views, nil); err != nil {
		return nil, err
	}
	return mergeShards(make([]Result, 0, q.K), c.bufs[:p], c.pos, q.K), nil
}

// appendVia is the shared SDIndex/Snapshot append path: run the core query
// against the given view into a pooled scratch buffer, then convert into
// dst. A non-nil done channel cancels the aggregation (the TopKContext
// path); nil costs nothing.
func (s *SDIndex) appendVia(view core.View, dst []Result, q Query, done <-chan struct{}) ([]Result, error) {
	bp, _ := s.buf.Get().(*[]query.Result)
	if bp == nil {
		bp = new([]query.Result)
	}
	res, _, err := view.TopKAppendCancel((*bp)[:0], q.spec(), done)
	*bp = res[:0] // keep the grown capacity pooled either way
	if err != nil {
		s.buf.Put(bp)
		return dst, err
	}
	if dst == nil {
		// The TopK convenience path: one exact-size allocation instead of
		// letting append double a nil slice through ~log k regrowths.
		dst = make([]Result, 0, len(res))
	}
	for _, r := range res {
		dst = append(dst, Result{ID: r.ID, Score: r.Score})
	}
	s.buf.Put(bp)
	return dst, nil
}
