package sdquery

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/dataset"
)

func TestTopKBatchMatchesSequential(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 20_000, 4, 21)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	queries := make([]Query, 40)
	for i := range queries {
		queries[i] = Query{
			Point:   []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
			K:       1 + rng.Intn(8),
			Roles:   roles,
			Weights: []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()},
		}
	}
	batch, err := idx.TopKBatch(queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		want, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if math.Abs(batch[i][j].Score-want[j].Score) > 1e-12 {
				t.Fatalf("query %d rank %d: %v vs %v", i, j, batch[i][j].Score, want[j].Score)
			}
		}
	}
}

func TestTopKBatchPropagatesErrors(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 100, 2, 23)
	roles := []Role{Repulsive, Attractive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{
		{Point: []float64{0.5, 0.5}, K: 1, Roles: roles, Weights: []float64{1, 1}},
		{Point: []float64{0.5}, K: 1, Roles: roles[:1], Weights: []float64{1}}, // bad dims
	}
	if _, err := idx.TopKBatch(queries, 2); err == nil {
		t.Fatal("batch with an invalid query did not fail")
	}
	empty, err := idx.TopKBatch(nil, 3)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: %v, %v", empty, err)
	}
}

func TestTopKWithStats(t *testing.T) {
	data := dataset.Generate(dataset.Uniform, 10_000, 4, 24)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{
		Point:   []float64{0.5, 0.5, 0.5, 0.5},
		K:       5,
		Roles:   roles,
		Weights: []float64{1, 1, 1, 1},
	}
	res, stats, err := idx.TopKWithStats(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results, want 5", len(res))
	}
	if stats.Subproblems != 2 { // two (repulsive, attractive) pairs
		t.Fatalf("Subproblems = %d, want 2", stats.Subproblems)
	}
	if stats.Fetched < 5 || stats.Scored < 5 || stats.Scored > stats.Fetched {
		t.Fatalf("implausible stats: %+v", stats)
	}
	// The point of the index: far fewer fetches than a scan.
	if stats.Fetched >= idx.Len() {
		t.Fatalf("fetched %d of %d points — no pruning", stats.Fetched, idx.Len())
	}
	if _, _, err := idx.TopKWithStats(Query{Point: []float64{1}, K: 1,
		Roles: roles[:1], Weights: []float64{1}}); err == nil {
		t.Fatal("invalid query accepted")
	}
}

// TestWorkerPoolDoPanicContainment: a panic in f on the caller's goroutine
// must re-propagate only after the pool's accounting is settled, so a
// recovering caller cannot race still-running workers over pooled state.
// A closed pool makes the path deterministic: everything runs inline.
func TestWorkerPoolDoPanicContainment(t *testing.T) {
	p := newWorkerPool(2)
	p.close()
	ran := make([]bool, 8)
	got := func() (r any) {
		defer func() { r = recover() }()
		p.do(len(ran), func(i int) {
			if i == 3 {
				panic("boom")
			}
			ran[i] = true
		})
		return nil
	}()
	if got != "boom" {
		t.Fatalf("recovered %v, want the original panic value", got)
	}
	for i := 0; i < 3; i++ {
		if !ran[i] {
			t.Fatalf("index %d did not run before the panic", i)
		}
	}
	for i := 4; i < len(ran); i++ {
		if ran[i] {
			t.Fatalf("index %d ran after the panic on a closed pool", i)
		}
	}
	// The pool (and a fresh do call) keeps working after the failure.
	var n atomic.Int32
	p.do(5, func(i int) { n.Add(1) })
	if n.Load() != 5 {
		t.Fatalf("follow-up do ran %d of 5 tasks", n.Load())
	}
}
