package sdquery

// One benchmark per table and figure of the paper's evaluation, each running
// the corresponding internal/bench experiment at reduced scale (Go
// benchmarks are repeated by the framework; paper-scale runs belong to
// cmd/sdbench). Micro-benchmarks for the public API follow.

import (
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/dataset"
)

// benchScale keeps each experiment iteration around a second.
const benchScale = 0.02

func runExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := bench.Config{Scale: benchScale, Seed: 1, Queries: 20}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.Run(cfg)
	}
}

func BenchmarkFig7a(b *testing.B)  { runExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B)  { runExperiment(b, "fig7b") }
func BenchmarkFig7c(b *testing.B)  { runExperiment(b, "fig7c") }
func BenchmarkFig7d(b *testing.B)  { runExperiment(b, "fig7d") }
func BenchmarkFig7e(b *testing.B)  { runExperiment(b, "fig7e") }
func BenchmarkFig7f(b *testing.B)  { runExperiment(b, "fig7f") }
func BenchmarkFig7g(b *testing.B)  { runExperiment(b, "fig7g") }
func BenchmarkFig7h(b *testing.B)  { runExperiment(b, "fig7h") }
func BenchmarkFig7i(b *testing.B)  { runExperiment(b, "fig7i") }
func BenchmarkFig7j(b *testing.B)  { runExperiment(b, "fig7j") }
func BenchmarkFig8a(b *testing.B)  { runExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)  { runExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)  { runExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B)  { runExperiment(b, "fig8d") }
func BenchmarkFig8e(b *testing.B)  { runExperiment(b, "fig8e") }
func BenchmarkFig8f(b *testing.B)  { runExperiment(b, "fig8f") }
func BenchmarkFig8g(b *testing.B)  { runExperiment(b, "fig8g") }
func BenchmarkFig8h(b *testing.B)  { runExperiment(b, "fig8h") }
func BenchmarkFig8i(b *testing.B)  { runExperiment(b, "fig8i") }
func BenchmarkFig8j(b *testing.B)  { runExperiment(b, "fig8j") }
func BenchmarkTable1(b *testing.B) { runExperiment(b, "table1") }

func BenchmarkAblationAngles(b *testing.B)      { runExperiment(b, "ablation-angles") }
func BenchmarkAblationPairing(b *testing.B)     { runExperiment(b, "ablation-pairing") }
func BenchmarkAblationGranularity(b *testing.B) { runExperiment(b, "ablation-granularity") }
func BenchmarkAblationBranching(b *testing.B)   { runExperiment(b, "ablation-branching") }
func BenchmarkAblationBulk(b *testing.B)        { runExperiment(b, "ablation-bulk") }
func BenchmarkAblationAlg4(b *testing.B)        { runExperiment(b, "ablation-alg4") }

// --- Micro-benchmarks: per-query cost of the public engines -------------

func benchQueries(n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive, Repulsive, Attractive}
	out := make([]Query, n)
	for i := range out {
		q := Query{
			Point:   make([]float64, 6),
			K:       5,
			Roles:   roles,
			Weights: make([]float64, 6),
		}
		for d := 0; d < 6; d++ {
			q.Point[d] = rng.Float64()
			q.Weights[d] = rng.Float64()
		}
		out[i] = q
	}
	return out
}

func benchEngine(b *testing.B, build func(data [][]float64) (Engine, error)) {
	b.Helper()
	data := dataset.Generate(dataset.Uniform, 50_000, 6, 1)
	eng, err := build(data)
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueries(64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.TopK(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuerySDIndex(b *testing.B) {
	benchEngine(b, func(data [][]float64) (Engine, error) {
		return NewSDIndex(data, []Role{Repulsive, Attractive, Repulsive, Attractive, Repulsive, Attractive})
	})
}

// BenchmarkTopK is the zero-allocation steady-state hot path: TopKAppend
// into a reused buffer on the default workload (50k × 6, k = 5). This is the
// benchmark the BENCH_sdbench.json trajectory records; it must stay at
// 0 allocs/op.
func BenchmarkTopK(b *testing.B) {
	data := dataset.Generate(dataset.Uniform, 50_000, 6, 1)
	idx, err := NewSDIndex(data, []Role{Repulsive, Attractive, Repulsive, Attractive, Repulsive, Attractive})
	if err != nil {
		b.Fatal(err)
	}
	queries := benchQueries(64, 2)
	var buf []Result
	for i := 0; i < len(queries); i++ { // warm the context pools
		if buf, err = idx.TopKAppend(buf[:0], queries[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err = idx.TopKAppend(buf[:0], queries[i%len(queries)])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryScan(b *testing.B) { benchEngine(b, NewScan) }
func BenchmarkQueryTA(b *testing.B)   { benchEngine(b, NewTA) }
func BenchmarkQueryBRS(b *testing.B) {
	benchEngine(b, func(data [][]float64) (Engine, error) { return NewBRS(data, 0) })
}
func BenchmarkQueryPE(b *testing.B) { benchEngine(b, NewPE) }

func BenchmarkQueryTop1(b *testing.B) {
	data := dataset.Generate(dataset.Uniform, 200_000, 2, 1)
	idx, err := NewTop1Index(data, Top1Config{AttractiveWeight: 1, RepulsiveWeight: 1, K: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pts := make([][]float64, 64)
	for i := range pts {
		pts[i] = []float64{rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.TopK(pts[i%len(pts)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Batch benchmarks: the sharded execution layer ---------------------
//
// The acceptance comparison for the sharding PR: the same batch workload on
// a serial SDIndex loop, the query-parallel SDIndex batch, a single-shard
// ShardedIndex (pure overhead measurement), and a GOMAXPROCS-sharded one.
// At GOMAXPROCS ≥ 4 the sharded pipeline must beat the single-shard runs.

func batchWorkload() ([][]float64, []Role, []Query) {
	data := dataset.Generate(dataset.Uniform, 50_000, 6, 1)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive, Repulsive, Attractive}
	return data, roles, benchQueries(64, 2)
}

func BenchmarkBatchSerialSDIndex(b *testing.B) {
	data, roles, queries := batchWorkload()
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := idx.TopK(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkBatchParallelSDIndex(b *testing.B) {
	data, roles, queries := batchWorkload()
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.TopKBatch(queries, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkBatchSharded(b *testing.B, shards int) {
	data, roles, queries := batchWorkload()
	idx, err := NewShardedIndex(data, roles, WithShards(shards))
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	if _, err := idx.BatchTopK(queries); err != nil { // warm the context pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := idx.BatchTopK(queries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBatchSharded1(b *testing.B) { benchmarkBatchSharded(b, 1) }
func BenchmarkBatchSharded(b *testing.B)  { benchmarkBatchSharded(b, 0) } // GOMAXPROCS shards

func BenchmarkBuildSDIndex(b *testing.B) {
	data := dataset.Generate(dataset.Uniform, 20_000, 6, 1)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive, Repulsive, Attractive}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSDIndex(data, roles); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertSDIndex(b *testing.B) {
	data := dataset.Generate(dataset.Uniform, 20_000, 6, 1)
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive, Repulsive, Attractive}
	idx, err := NewSDIndex(data, roles)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		if _, err := idx.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
}
