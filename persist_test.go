// Persistence round-trip tests: a saved index must reload bit-exactly —
// same answers (ascending-ID tie-breaks included), same Bytes, same
// liveness — and a reloaded index must keep serving updates with the same
// global ID sequence. The double-save check is the strongest form: because
// segments round-trip verbatim and tree rebuilds are deterministic, saving
// the reloaded index must reproduce the file byte for byte.
package sdquery

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/dataset"
)

// churn builds a messy storage stack: interleaved inserts and removes over
// a small memtable threshold, leaving sealed segments, tombstones, and a
// partially filled memtable behind.
func churn(t *testing.T, idx interface {
	Insert([]float64) (int, error)
	Remove(int) bool
}, dims, steps int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < steps; i++ {
		if rng.Intn(3) == 0 {
			idx.Remove(rng.Intn(200))
		} else {
			p := make([]float64, dims)
			for d := range p {
				p[d] = float64(rng.Intn(8)) / 8
			}
			if _, err := idx.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func persistQueries(dims int, roles []Role, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 24)
	for i := range out {
		q := Query{
			Point:   make([]float64, dims),
			K:       1 + rng.Intn(20),
			Roles:   append([]Role(nil), roles...),
			Weights: make([]float64, dims),
		}
		for d := 0; d < dims; d++ {
			q.Point[d] = rng.Float64()
			q.Weights[d] = float64(rng.Intn(5)) / 4
		}
		out[i] = q
	}
	return out
}

func TestSaveLoadSDIndexRoundTrip(t *testing.T) {
	roles := []Role{Repulsive, Attractive, Repulsive, Attractive}
	data := dataset.Generate(dataset.Uniform, 600, len(roles), 41)
	idx, err := NewSDIndex(data, roles, WithMemtableSize(64), WithCompaction(false))
	if err != nil {
		t.Fatal(err)
	}
	churn(t, idx, len(roles), 300, 42)
	idx.Compact() // seal part of the history...
	churn(t, idx, len(roles), 90, 43)
	// ...and leave live tombstones plus memtable rows on top.

	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := append([]byte(nil), buf.Bytes()...)
	loaded, err := LoadSDIndex(bytes.NewReader(saved), WithCompaction(false))
	if err != nil {
		t.Fatal(err)
	}

	if loaded.Len() != idx.Len() {
		t.Fatalf("Len: loaded %d, saved %d", loaded.Len(), idx.Len())
	}
	if loaded.Bytes() != idx.Bytes() {
		t.Fatalf("Bytes: loaded %d, saved %d", loaded.Bytes(), idx.Bytes())
	}
	if ls, lm := loaded.Segments(); true {
		if os, om := idx.Segments(); ls != os || lm != om {
			t.Fatalf("stack shape: loaded (%d segs, %d mem), saved (%d, %d)", ls, lm, os, om)
		}
	}
	for qi, q := range persistQueries(len(roles), roles, 44) {
		want, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "loaded vs saved", got, want)
		_ = qi
	}

	// Deterministic rebuild ⇒ saving the loaded index reproduces the file.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saved, buf2.Bytes()) {
		t.Fatalf("double save differs: %d vs %d bytes", len(saved), buf2.Len())
	}

	// The loaded index keeps serving updates under the continued global ID
	// sequence.
	id, err := loaded.Insert([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := idx.Insert([]float64{0.5, 0.5, 0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if id != wantID {
		t.Fatalf("post-load Insert returned ID %d, original returns %d", id, wantID)
	}
}

func TestSaveLoadShardedRoundTrip(t *testing.T) {
	roles := []Role{Repulsive, Attractive, Repulsive}
	data := dataset.Generate(dataset.Uniform, 500, len(roles), 51)
	idx, err := NewShardedIndex(data, roles, WithShards(3), WithMemtableSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	churn(t, idx, len(roles), 250, 52)

	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	eng, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	loaded, ok := eng.(*ShardedIndex)
	if !ok {
		t.Fatalf("Load returned %T, want *ShardedIndex", eng)
	}
	defer loaded.Close()
	if loaded.Shards() != idx.Shards() {
		t.Fatalf("shards: loaded %d, saved %d", loaded.Shards(), idx.Shards())
	}
	if loaded.Len() != idx.Len() {
		t.Fatalf("Len: loaded %d, saved %d", loaded.Len(), idx.Len())
	}
	if loaded.Bytes() != idx.Bytes() {
		t.Fatalf("Bytes: loaded %d, saved %d", loaded.Bytes(), idx.Bytes())
	}
	for _, q := range persistQueries(len(roles), roles, 53) {
		want, err := idx.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.TopK(q)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, "loaded vs saved", got, want)
	}
	// Round-robin insert routing resumes where the saved index left off.
	id, err := loaded.Insert([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	wantID, err := idx.Insert([]float64{0.1, 0.2, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if id != wantID {
		t.Fatalf("post-load Insert returned ID %d, original returns %d", id, wantID)
	}
	if !loaded.Remove(id) {
		t.Fatal("post-load Remove of the fresh row failed")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index file at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	roles := []Role{Repulsive, Attractive}
	idx, err := NewSDIndex(dataset.Generate(dataset.Uniform, 50, 2, 61), roles)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Kind mismatch is a clear error, not a misparse.
	if _, err := LoadShardedIndex(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("LoadShardedIndex accepted a single-engine file")
	}
	// Truncation anywhere fails loudly.
	for _, cut := range []int{5, buf.Len() / 2, buf.Len() - 3} {
		if _, err := LoadSDIndex(bytes.NewReader(buf.Bytes()[:cut])); err == nil {
			t.Fatalf("truncated file (%d of %d bytes) accepted", cut, buf.Len())
		}
	}
}
